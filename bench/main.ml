(* Benchmark harness regenerating every table and figure of the paper's
   evaluation section (see DESIGN.md for the per-experiment index).

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- --quick      # reduced scale
     dune exec bench/main.exe -- fig13 fig15  # a subset
     dune exec bench/main.exe -- --op delete  # another update kind *)

let () =
  let quick = ref false in
  let tdbu_only = ref false in
  let selected = ref [] in
  let op = ref `Insert in
  let json = ref None in
  let usage = "main.exe [--quick] [--json FILE] [--op insert|delete|replace|rename] [fig12 fig13 fig14 fig15 ablation micro]" in
  Arg.parse
    [ ("--quick", Arg.Set quick, " reduced document sizes");
      ("--tdbu-only", Arg.Set tdbu_only, " micro: skip bechamel, measure only TD-BU ns/node");
      ("--csv", Arg.String Timing.set_csv_dir, "DIR also write each table as CSV into DIR");
      ("--json", Arg.String (fun f -> json := Some f), "FILE write micro results as JSON to FILE");
      ( "--op",
        Arg.String
          (fun s ->
            op :=
              match s with
              | "insert" -> `Insert
              | "delete" -> `Delete
              | "replace" -> `Replace
              | "rename" -> `Rename
              | _ -> raise (Arg.Bad ("unknown update kind " ^ s))),
        " update kind for fig12/13/14 (default insert)" ) ]
    (fun what -> selected := what :: !selected)
    usage;
  let selected = if !selected = [] then [ "fig12"; "fig13"; "fig14"; "fig15"; "ablation"; "micro" ] else List.rev !selected in
  let kind = !op in

  print_endline "Querying XML with Update Syntax (SIGMOD 2007) — benchmark harness";
  print_endline "Embedded XPath queries (Fig. 11):";
  List.iter
    (fun u -> Printf.printf "  %-4s %s\n" u.Workloads.name u.Workloads.path)
    Workloads.all;

  let t0 = Unix.gettimeofday () in
  List.iter
    (fun what ->
      match what with
      | "fig12" ->
        let factor = if !quick then 0.005 else 0.02 in
        Fig12.run ~factor ~reps:(if !quick then 1 else 3) ~kind
      | "fig13" ->
        let factors =
          if !quick then [ 0.005; 0.01; 0.02 ] else [ 0.02; 0.06; 0.1; 0.14; 0.18 ]
        in
        Fig13.run ~factors ~reps:(if !quick then 1 else 2) ~kind
      | "fig14" ->
        let factors = if !quick then [ 0.05; 0.1; 0.2 ] else [ 0.2; 0.5; 1.0; 1.5; 2.0 ] in
        Fig14.run ~factors ~kind
      | "fig15" ->
        let factors =
          if !quick then [ 0.005; 0.01; 0.02 ] else [ 0.02; 0.06; 0.1; 0.14; 0.18 ]
        in
        Fig15.run ~factors ~reps:(if !quick then 1 else 2)
      | "ablation" -> Ablation.run ~factor:(if !quick then 0.01 else 0.05)
      | "micro" -> Micro.run ?json:!json ~quick:!quick ~tdbu_only:!tdbu_only ()
      | other -> Printf.eprintf "unknown experiment %S\n" other)
    selected;
  Printf.printf "\ntotal bench wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
