(* Bechamel microbenches for the building blocks: NFA construction,
   nextStates transitions, QualDP evaluation, SAX parsing throughput —
   plus an end-to-end ns-per-node measurement for TD-BU on XMark with
   the qualifier-heavy query subset (the hot path the bitset NFA and
   transition memo target).

   With [~json] the results are also written as a machine-readable JSON
   file (one object per measurement), seeding the BENCH trajectory. *)
open Bechamel
open Toolkit

let p1 =
  "/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text"

let tests () =
  let path = Xut_xpath.Parser.parse p1 in
  let nfa = Xut_automata.Selecting_nfa.of_path path in
  let doc = Xut_xmark.Generator.generate ~factor:0.001 () in
  let doc_text = Xut_xml.Serialize.element_to_string doc in
  let start = Xut_automata.Selecting_nfa.start nfa in
  let labels = [| "site"; "open_auctions"; "open_auction"; "bidder"; "increase"; "x" |] in
  let syms = Array.map Xut_xml.Sym.intern labels in
  let b = Xut_xpath.Lq.create_builder () in
  let qi =
    Xut_xpath.Lq.add_qual b
      (Xut_xpath.Parser.parse_qual "bidder/increase > 5 and not(annotation/happiness < 20)")
  in
  let lq = Xut_xpath.Lq.freeze b in
  [ Test.make ~name:"selecting-NFA construction"
      (Staged.stage (fun () -> Xut_automata.Selecting_nfa.of_path path));
    Test.make ~name:"nextStates (6 transitions)"
      (Staged.stage (fun () ->
           Array.fold_left
             (fun s l -> Xut_automata.Selecting_nfa.next nfa ~checkp:(fun _ -> true) s l)
             start syms));
    Test.make ~name:"QualDP at one node"
      (Staged.stage (fun () ->
           Xut_xpath.Lq.eval_at lq ~name:"open_auction" ~attrs:[ ("id", "x") ] ~text:"12"
             ~csat:(fun _ -> false) ~wanted:[ qi ]));
    Test.make ~name:"SAX parse (50 KB doc)"
      (Staged.stage (fun () -> Xut_xml.Sax.parse_string doc_text (fun _ -> ())));
    Test.make ~name:"DOM parse (50 KB doc)"
      (Staged.stage (fun () -> Xut_xml.Dom.parse_string doc_text));
    (* the escape fast path: almost all of XMark text is escape-free, so
       serialization time is dominated by run scanning + whole-run blits *)
    Test.make ~name:"serialize to string (50 KB doc)"
      (Staged.stage (fun () -> Xut_xml.Serialize.element_to_string doc));
    Test.make ~name:"serialize via sink (50 KB doc)"
      (Staged.stage (fun () ->
           let sink = Xut_xml.Serialize.Sink.create (fun _ -> ()) in
           Xut_xml.Serialize.Sink.element sink doc;
           Xut_xml.Serialize.Sink.close sink));
    (let plain = String.concat " " (List.init 400 (fun _ -> "no escapes here")) in
     Test.make ~name:"escape plain text (6 KB)"
       (Staged.stage (fun () -> Xut_xml.Serialize.to_string (Xut_xml.Node.Text plain))));
    (let spicy =
       String.concat " " (List.init 400 (fun i -> if i mod 4 = 0 then "a<b&c" else "plain"))
     in
     Test.make ~name:"escape 25% spicy text (2.5 KB)"
       (Staged.stage (fun () -> Xut_xml.Serialize.to_string (Xut_xml.Node.Text spicy)))) ]

(* ---- end-to-end ns/node: TD-BU over XMark, qualifier-heavy queries ---- *)

let qualifier_heavy = [ "U2"; "U3"; "U7"; "U8"; "U9"; "U10" ]

let tdbu_ns_per_node ~factor ~reps =
  let root = Xut_xmark.Generator.generate ~factor () in
  let nodes = Xut_xml.Node.element_count (Xut_xml.Node.Element root) in
  let queries =
    List.filter (fun u -> List.mem u.Workloads.name qualifier_heavy) Workloads.all
  in
  List.map
    (fun u ->
      let update = Workloads.delete_of u in
      let nfa = Xut_automata.Selecting_nfa.of_path (Xut_xpath.Parser.parse u.Workloads.path) in
      (* one warmup run outside the clock (fills transition memos the way
         a cached plan in the service layer would) *)
      ignore (Sys.opaque_identity (Core.Two_pass.run nfa update root));
      let dt =
        Timing.measure ~reps (fun () ->
            ignore (Sys.opaque_identity (Core.Two_pass.run nfa update root)))
      in
      (u.Workloads.name, dt *. 1e9 /. float_of_int nodes))
    queries

(* ---- annotator ns/node A/B: schema skip-sets on vs off ----------------

   The bottom-up annotation pass over XMark, with and without the
   NFA x schema skip-set oracle.  The schema-selective query confines
   its matches to one arm of the site tree, so the oracle prunes the
   other arms without a visit; the broad query reaches almost every arm,
   so the oracle is a no-op and the A/B doubles as a regression guard
   for the per-node skip check. *)

let annotator_queries =
  [ ("selective", p1); ("broad", "/site//date") ]

let annotator_ab ~factor ~reps =
  Xut_xmark.Site_schema.register ();
  let schema =
    match Xut_schema.Schema.find Xut_xmark.Site_schema.schema_name with
    | Some s -> s
    | None -> assert false
  in
  let root = Xut_xmark.Generator.generate ~factor () in
  let nodes = Xut_xml.Node.element_count (Xut_xml.Node.Element root) in
  List.map
    (fun (label, path_s) ->
      let nfa = Xut_automata.Selecting_nfa.of_path (Xut_xpath.Parser.parse path_s) in
      let product = Xut_schema.Schema.product schema nfa in
      let skip e = Xut_schema.Schema.skippable product (Xut_xml.Node.sym e) in
      ignore (Sys.opaque_identity (Xut_automata.Annotator.annotate nfa root));
      ignore (Sys.opaque_identity (Xut_automata.Annotator.annotate ~skip nfa root));
      let off =
        Timing.measure ~reps (fun () ->
            ignore (Sys.opaque_identity (Xut_automata.Annotator.annotate nfa root)))
      in
      let on =
        Timing.measure ~reps (fun () ->
            ignore (Sys.opaque_identity (Xut_automata.Annotator.annotate ~skip nfa root)))
      in
      ( label,
        Xut_schema.Schema.skip_count product,
        off *. 1e9 /. float_of_int nodes,
        on *. 1e9 /. float_of_int nodes ))
    annotator_queries

(* ---- JSON output ------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    match (status, line) with Unix.WEXITED 0, l when l <> "" -> l | _ -> "unknown"
  with _ -> "unknown"

let iso_date () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1)
    t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

let write_json path ~factor ~micro ~tdbu ~annot =
  Out_channel.with_open_text path (fun oc ->
      output_string oc "{\n";
      Printf.fprintf oc "  \"bench\": \"micro\",\n";
      Printf.fprintf oc
        "  \"meta\": { \"commit\": \"%s\", \"date\": \"%s\", \"cores\": %d, \"os\": \"%s\" },\n"
        (git_commit ()) (iso_date ())
        (Domain.recommended_domain_count ())
        Sys.os_type;
      Printf.fprintf oc "  \"xmark_factor\": %g,\n" factor;
      Printf.fprintf oc "  \"micro_ns_per_run\": {\n";
      List.iteri
        (fun i (name, ns) ->
          Printf.fprintf oc "    \"%s\": %.1f%s\n" (json_escape name) ns
            (if i = List.length micro - 1 then "" else ","))
        micro;
      Printf.fprintf oc "  },\n";
      Printf.fprintf oc "  \"tdbu_ns_per_node\": {\n";
      List.iteri
        (fun i (name, ns) ->
          Printf.fprintf oc "    \"%s\": %.2f%s\n" (json_escape name) ns
            (if i = List.length tdbu - 1 then "" else ","))
        tdbu;
      Printf.fprintf oc "  },\n";
      Printf.fprintf oc "  \"annotator_ns_per_node\": [\n";
      List.iteri
        (fun i (label, skips, off, on) ->
          Printf.fprintf oc
            "    { \"query\": \"%s\", \"skip_set_size\": %d, \"skip_off\": %.2f, \
             \"skip_on\": %.2f }%s\n"
            (json_escape label) skips off on
            (if i = List.length annot - 1 then "" else ","))
        annot;
      Printf.fprintf oc "  ],\n";
      let mean =
        List.fold_left (fun acc (_, ns) -> acc +. ns) 0. tdbu
        /. float_of_int (max 1 (List.length tdbu))
      in
      Printf.fprintf oc "  \"tdbu_ns_per_node_mean\": %.2f\n" mean;
      output_string oc "}\n");
  Printf.printf "  [json: %s]\n" path

let run ?json ?(quick = false) ?(tdbu_only = false) () =
  let micro_results = ref [] in
  if not tdbu_only then begin
    print_endline "\n== Microbenchmarks (bechamel) ==";
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    List.iter
      (fun test ->
        let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
        let analyzed = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
              micro_results := (name, est) :: !micro_results;
              Printf.printf "  %-32s %12.1f ns/run\n" name est
            | _ -> Printf.printf "  %-32s (no estimate)\n" name)
          analyzed)
      (tests ())
  end;
  let factor = if quick then 0.0005 else 0.002 in
  let reps = if quick then 3 else 5 in
  Printf.printf "\n== TD-BU ns/node (XMark f=%g, qualifier-heavy queries) ==\n" factor;
  let tdbu = tdbu_ns_per_node ~factor ~reps in
  List.iter (fun (name, ns) -> Printf.printf "  %-6s %10.2f ns/node\n" name ns) tdbu;
  let mean =
    List.fold_left (fun acc (_, ns) -> acc +. ns) 0. tdbu
    /. float_of_int (max 1 (List.length tdbu))
  in
  Printf.printf "  %-6s %10.2f ns/node\n" "mean" mean;
  Printf.printf "\n== Annotator ns/node, schema skip-sets off vs on (XMark f=%g) ==\n" factor;
  let annot = annotator_ab ~factor ~reps in
  List.iter
    (fun (label, skips, off, on) ->
      Printf.printf "  %-10s skip_set=%-3d off %8.2f ns/node   on %8.2f ns/node  (%.2fx)\n"
        label skips off on
        (if on > 0. then off /. on else 0.))
    annot;
  match json with
  | Some path -> write_json path ~factor ~micro:(List.rev !micro_results) ~tdbu ~annot
  | None -> ()
