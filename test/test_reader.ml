(* The chunked reader and the streaming property of the SAX parser:
   events must be identical for any chunk size, including pathological
   1-byte chunks that split every token across refills. *)
open Xut_xml

let events_of source =
  let acc = ref [] in
  source (fun ev -> acc := ev :: !acc);
  List.rev !acc

let with_temp_doc text f =
  let tmp = Filename.temp_file "xut_rd" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_bin tmp (fun oc -> output_string oc text);
      f tmp)

let check_chunked text =
  let expected = events_of (Sax.parse_string text) in
  List.iter
    (fun chunk_size ->
      with_temp_doc text (fun tmp ->
          let got =
            events_of (fun h ->
                In_channel.with_open_bin tmp (fun ic ->
                    Sax.parse_reader (Reader.of_channel ~chunk_size ic) h))
          in
          Alcotest.(check int)
            (Printf.sprintf "event count (chunk=%d)" chunk_size)
            (List.length expected) (List.length got);
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                (Printf.sprintf "event equal (chunk=%d)" chunk_size)
                true (Sax.equal_event a b))
            expected got))
    [ 1; 2; 3; 7; 64 ]

let test_chunk_boundaries () =
  check_chunked "<a x=\"1\" y='two'><b>text &amp; more &#65;</b><!-- c --><?pi data?><![CDATA[<r>]]><c/></a>"

let test_chunked_xmark () =
  let doc = Xut_xmark.Generator.generate ~factor:0.001 () in
  check_chunked (Serialize.element_to_string doc)

let test_reader_basics () =
  let r = Reader.of_string "ab\ncd" in
  Alcotest.(check char) "peek" 'a' (Reader.peek r);
  Alcotest.(check char) "next" 'a' (Reader.next r);
  Alcotest.(check int) "line 1" 1 (Reader.line r);
  ignore (Reader.next r);
  ignore (Reader.next r);
  Alcotest.(check int) "line 2 after newline" 2 (Reader.line r);
  Alcotest.(check int) "col" 1 (Reader.col r);
  ignore (Reader.next r);
  ignore (Reader.next r);
  Alcotest.(check bool) "eof" true (Reader.eof r);
  Alcotest.(check char) "peek at eof" '\000' (Reader.peek r);
  Alcotest.(check int) "bytes read" 5 (Reader.bytes_read r)

let test_error_position () =
  (* the unknown entity is on line 3 *)
  match Sax.parse_string "<a>\n<b>\n&bogus;</b></a>" (fun _ -> ()) with
  | exception Sax.Parse_error { line; _ } -> Alcotest.(check int) "line" 3 line
  | _ -> Alcotest.fail "should not parse"

let test_streaming_transform_tiny_chunks () =
  (* the full two-pass streaming pipeline over 16-byte chunks *)
  let doc = Fixtures.parts_doc () in
  let text = Serialize.element_to_string doc in
  with_temp_doc text (fun tmp ->
      let update =
        Core.Transform_parser.parse_update "delete $a//supplier[country = 'A']/price"
      in
      let nfa = Xut_automata.Selecting_nfa.of_path (Core.Transform_ast.path update) in
      let out = Buffer.create 256 in
      let source h =
        In_channel.with_open_bin tmp (fun ic ->
            Sax.parse_reader (Reader.of_channel ~chunk_size:16 ic) h)
      in
      let _ = Core.Sax_transform.run nfa update ~source ~sink:(Serialize.event_sink out) in
      let got = Dom.parse_string (Buffer.contents out) in
      let expected = Core.Engine.transform Core.Engine.Reference update doc in
      Alcotest.(check bool) "chunked streaming = reference" true
        (Node.equal_element expected got))

(* Chunk-boundary property: for random XMark documents, the event
   stream must not depend on where the reader's refills land — chunk
   size 1 puts a boundary inside every token, 2/3/7 shear multi-byte
   constructs (entity references, CDATA markers, comments) at varying
   offsets, 64 exercises ordinary refills. *)
let prop_chunked_equals_string =
  QCheck2.Test.make ~name:"of_channel ~chunk_size:k = of_string on random XMark docs"
    ~count:8
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 2 12))
    (fun (seed, size) ->
      let factor = float_of_int size /. 10_000. in
      let doc = Xut_xmark.Generator.generate ~seed:(Int64.of_int seed) ~factor () in
      let text = Serialize.element_to_string doc in
      let expected = events_of (Sax.parse_string text) in
      with_temp_doc text (fun tmp ->
          List.for_all
            (fun chunk_size ->
              let got =
                events_of (fun h ->
                    In_channel.with_open_bin tmp (fun ic ->
                        Sax.parse_reader (Reader.of_channel ~chunk_size ic) h))
              in
              List.length expected = List.length got
              && List.for_all2 Sax.equal_event expected got)
            [ 1; 2; 3; 7; 64 ]))

let suite =
  [ Alcotest.test_case "reader basics" `Quick test_reader_basics;
    QCheck_alcotest.to_alcotest prop_chunked_equals_string;
    Alcotest.test_case "chunk boundaries" `Quick test_chunk_boundaries;
    Alcotest.test_case "chunked xmark document" `Quick test_chunked_xmark;
    Alcotest.test_case "error position" `Quick test_error_position;
    Alcotest.test_case "streaming transform, 16-byte chunks" `Quick
      test_streaming_transform_tiny_chunks ]
