open Xut_xpath
open Xut_automata

let nfa_of s = Selecting_nfa.of_path (Parser.parse s)

(* Nodes selected via the NFA during a top-down walk must equal the direct
   evaluator's answer. *)
let nfa_select ?(checkp = `Direct) nfa root =
  let cp =
    match checkp with
    | `Direct -> fun s n -> Eval.check_qual n (Selecting_nfa.state_qual nfa s)
    | `Annotated ->
      let tbl = Annotator.annotate nfa root in
      Annotator.checkp tbl nfa
  in
  let acc = ref [] in
  let rec go e states =
    let states' =
      Selecting_nfa.next_states nfa ~checkp:(fun s -> cp s e) states (Xut_xml.Node.name e)
    in
    if states' <> [] then begin
      if Selecting_nfa.accepts nfa states' then acc := e :: !acc;
      List.iter (fun c -> go c states') (Xut_xml.Node.child_elements e)
    end
  in
  go root (Selecting_nfa.start_set nfa);
  List.rev !acc

let queries =
  [ "db/part"; "db/part/pname"; "//part"; "//supplier"; "db//part"; "//part//supplier";
    "db/*/supplier"; "db/part[pname = \"keyboard\"]"; "//part[supplier/price < 5]";
    "//part[not(supplier/country = \"A\")]"; Fixtures.p1_text;
    "//part[supplier/sname = \"HP\" or supplier/sname = \"Acme\"]"; "db/nothing";
    "//part[pname = \"keyboard\"]//part"; "//supplier[country = \"A\"]/price";
    "db/part/part/part"; "//part[label() = \"part\"]"; "//*[sname = \"Tiny\"]" ]

let ids es = List.map Xut_xml.Node.id es

let test_nfa_matches_eval () =
  let root = Fixtures.parts_doc () in
  List.iter
    (fun q ->
      let nfa = nfa_of q in
      let expected = ids (Eval.select_doc root (Parser.parse q)) in
      let got = ids (nfa_select nfa root) in
      Alcotest.(check (list int)) ("NFA = eval for " ^ q) expected got)
    queries

let test_nfa_annotated_matches_eval () =
  let root = Fixtures.parts_doc () in
  List.iter
    (fun q ->
      let nfa = nfa_of q in
      let expected = ids (Eval.select_doc root (Parser.parse q)) in
      let got = ids (nfa_select ~checkp:`Annotated nfa root) in
      Alcotest.(check (list int)) ("annotated NFA = eval for " ^ q) expected got)
    queries

let test_structure_example_3_1 () =
  (* Fig. 5: start, desc, part[q1], desc, part[q2] -> 5 states. *)
  let nfa = nfa_of Fixtures.p1_text in
  Alcotest.(check int) "five states" 5 (Selecting_nfa.size nfa);
  Alcotest.(check bool) "s1 is //" true (Selecting_nfa.kind nfa 1 = Selecting_nfa.K_desc);
  Alcotest.(check bool) "s2 is part" true (Selecting_nfa.kind nfa 2 = Selecting_nfa.K_label "part");
  Alcotest.(check bool) "s2 has qualifier" true (Selecting_nfa.has_qual nfa 2);
  Alcotest.(check bool) "s3 is //" true (Selecting_nfa.kind nfa 3 = Selecting_nfa.K_desc);
  Alcotest.(check int) "final" 4 (Selecting_nfa.final nfa);
  (* the epsilon-closure of the start state contains the first // state *)
  Alcotest.(check (list int)) "start closure" [ 0; 1 ] (Selecting_nfa.start_set nfa)

let test_next_states_desc_loop () =
  let nfa = nfa_of "//part" in
  (* states: 0 start, 1 desc, 2 part *)
  let s0 = Selecting_nfa.start_set nfa in
  Alcotest.(check (list int)) "closure(start)" [ 0; 1 ] s0;
  let s1 = Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s0 "db" in
  Alcotest.(check (list int)) "after db: desc survives" [ 1 ] s1;
  let s2 = Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s1 "part" in
  Alcotest.(check (list int)) "after part: desc + final" [ 1; 2 ] s2;
  Alcotest.(check bool) "accepts" true (Selecting_nfa.accepts nfa s2)

let test_qualifier_blocks_transition () =
  let nfa = nfa_of "db/part[pname = \"keyboard\"]/supplier" in
  let s0 = Selecting_nfa.start_set nfa in
  let s1 = Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s0 "db" in
  let blocked = Selecting_nfa.next_states nfa ~checkp:(fun _ -> false) s1 "part" in
  Alcotest.(check (list int)) "qualifier false kills the state" [] blocked;
  let open_ = Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s1 "part" in
  Alcotest.(check (list int)) "qualifier true keeps it" [ 2 ] open_

let test_static_simulation () =
  (* delta' as used by the Compose Method (Example 4.2):
     Mp of //supplier[country=A]; initial {0,1}; after 'part' -> {1};
     after 'supplier' -> {1, final}. *)
  let nfa = nfa_of "//supplier[country = \"A\"]" in
  let s0 = Selecting_nfa.start_set nfa in
  let s1 = Selecting_nfa.next_on_label nfa s0 "part" in
  Alcotest.(check (list int)) "S1" [ 1 ] s1;
  let s2 = Selecting_nfa.next_on_label nfa s1 "supplier" in
  Alcotest.(check (list int)) "S2" [ 1; 2 ] s2;
  Alcotest.(check bool) "final in S2" true (Selecting_nfa.accepts nfa s2);
  (* any-label transition *)
  let any = Selecting_nfa.next_on_any nfa s0 in
  Alcotest.(check (list int)) "any from start" [ 1; 2 ] any;
  (* desc transition saturates *)
  let desc = Selecting_nfa.next_on_desc nfa [ 0 ] in
  Alcotest.(check (list int)) "desc from start" [ 0; 1; 2 ] desc

let test_empty_path () =
  let nfa = Selecting_nfa.of_path [] in
  Alcotest.(check bool) "selects context" true (Selecting_nfa.selects_context nfa);
  let nfa2 = nfa_of "db" in
  Alcotest.(check bool) "nonempty does not" false (Selecting_nfa.selects_context nfa2)

let test_annotator_prunes () =
  (* supplier//part reaches nothing from the root: the annotator must not
     visit (annotate) any node beyond pruning (Example 5.3). *)
  let root = Fixtures.parts_doc () in
  let nfa = nfa_of "supplier[country = \"A\"]//part" in
  let tbl = Annotator.annotate nfa root in
  Alcotest.(check int) "no annotations" 0 (Annotator.annotated_count tbl);
  (* and a query with qualifiers only on parts does not annotate pname etc. *)
  let nfa2 = nfa_of "db/part[pname = \"keyboard\"]" in
  let tbl2 = Annotator.annotate nfa2 root in
  Alcotest.(check bool) "annotates a strict subset" true
    (Annotator.annotated_count tbl2 > 0
    && Annotator.annotated_count tbl2 < Xut_xml.Node.element_count (Xut_xml.Node.Element root))

let test_nfa_construction_linear () =
  let nfa = nfa_of "a/b/c/d/e/f/g/h" in
  Alcotest.(check int) "9 states for 8 steps" 9 (Selecting_nfa.size nfa)

(* ---------------- bitset core vs. list reference ----------------

   The list-based transition functions are retained in
   [Selecting_nfa.Reference] as the oracle; the bitset implementation
   (both the inline-int representation used up to 62 states and the
   Bytes-backed one above) must agree with it on random automata and
   random label sequences, for every exported transition. *)

let gen_run_label =
  (* the path alphabet plus a label no path step uses *)
  QCheck2.Gen.oneofa [| "a"; "b"; "c"; "d"; "e"; "zz" |]

let gen_nfa_path min_steps max_steps : Xut_xpath.Ast.path QCheck2.Gen.t =
  let open QCheck2.Gen in
  let gen_label = oneofa [| "a"; "b"; "c"; "d"; "e" |] in
  let gen_chunk =
    frequency
      [ (4, map (fun l -> [ Ast.step (Ast.Label l) ]) gen_label);
        (2, return [ Ast.step Ast.Wildcard ]);
        (2,
         let* l = gen_label in
         return [ Ast.step Ast.Descendant; Ast.step (Ast.Label l) ]) ]
  in
  let add_qual (s : Ast.step) =
    if s.Ast.nav = Ast.Descendant then return s
    else
      frequency
        [ (2, return s);
          (1,
           let* l = gen_label in
           return { s with Ast.quals = [ Ast.Q_label l ] }) ]
  in
  let* n = int_range min_steps max_steps in
  let* chunks = flatten_l (List.init n (fun _ -> gen_chunk)) in
  flatten_l (List.map add_qual (List.concat chunks))

let prop_bitset_equals_reference ~name ~min_steps ~max_steps ~wide =
  QCheck2.Test.make ~name ~count:150
    QCheck2.Gen.(
      triple (gen_nfa_path min_steps max_steps) (list_size (int_range 0 15) gen_run_label) int)
    (fun (path, run, salt) ->
      let nfa = Selecting_nfa.of_path path in
      if wide && Selecting_nfa.size nfa <= 62 then false
      else begin
        (* arbitrary but deterministic qualifier verdicts, shared by both
           implementations *)
        let checkp s = (s * 31 + salt) land 7 <> 0 in
        let agree cur lbl =
          Selecting_nfa.next_states_unchecked nfa cur lbl
          = Selecting_nfa.Reference.next_states_unchecked nfa cur lbl
          && Selecting_nfa.next_states nfa ~checkp cur lbl
             = Selecting_nfa.Reference.next_states nfa ~checkp cur lbl
          && Selecting_nfa.next_on_label nfa cur lbl
             = Selecting_nfa.Reference.next_on_label nfa cur lbl
          && Selecting_nfa.next_on_any nfa cur = Selecting_nfa.Reference.next_on_any nfa cur
          && Selecting_nfa.next_on_desc nfa cur = Selecting_nfa.Reference.next_on_desc nfa cur
          && Selecting_nfa.accepts nfa cur = Selecting_nfa.Reference.accepts nfa cur
        in
        let ok = ref (Selecting_nfa.start_set nfa = Selecting_nfa.Reference.start_set nfa) in
        let cur = ref (Selecting_nfa.start_set nfa) in
        List.iter
          (fun lbl ->
            if not (agree !cur lbl) then ok := false;
            cur := Selecting_nfa.next_states nfa ~checkp !cur lbl)
          run;
        !ok
      end)

let prop_bitset_small =
  prop_bitset_equals_reference ~name:"bitset NFA = list reference (inline int)" ~min_steps:1
    ~max_steps:8 ~wide:false

let prop_bitset_wide =
  prop_bitset_equals_reference ~name:"bitset NFA = list reference (Bytes-backed)" ~min_steps:63
    ~max_steps:70 ~wide:true

(* Interning must assign each name the same symbol on every domain, and
   symbols must survive the table's copy-on-grow republication. *)
let test_sym_domains () =
  let names = List.init 64 (fun i -> Printf.sprintf "dsym%d" i) in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> List.map (fun n -> (n, Xut_xml.Sym.intern n)) names))
  in
  let results = List.map Domain.join doms in
  List.iter
    (List.iter (fun (n, v) ->
         Alcotest.(check int) ("stable across domains: " ^ n) (Xut_xml.Sym.intern n) v;
         Alcotest.(check string) ("name roundtrip: " ^ n) n (Xut_xml.Sym.name v)))
    results

let test_memo_counts () =
  let nfa = nfa_of "//part[pname = \"keyboard\"]" in
  let s0 = Selecting_nfa.start nfa in
  let sym = Xut_xml.Sym.intern "part" in
  ignore (Selecting_nfa.next_unchecked nfa s0 sym);
  ignore (Selecting_nfa.next_unchecked nfa s0 sym);
  let hits, misses = Selecting_nfa.memo_stats nfa in
  Alcotest.(check bool) "second transition hits" true (hits >= 1);
  Alcotest.(check bool) "first transition misses" true (misses >= 1)

let suite =
  [ Alcotest.test_case "NFA select = direct eval" `Quick test_nfa_matches_eval;
    Alcotest.test_case "annotated NFA select = direct eval" `Quick test_nfa_annotated_matches_eval;
    Alcotest.test_case "structure of Fig. 5" `Quick test_structure_example_3_1;
    Alcotest.test_case "descendant self-loop" `Quick test_next_states_desc_loop;
    Alcotest.test_case "qualifier blocks transition" `Quick test_qualifier_blocks_transition;
    Alcotest.test_case "static delta' (compose)" `Quick test_static_simulation;
    Alcotest.test_case "empty path" `Quick test_empty_path;
    Alcotest.test_case "annotator pruning" `Quick test_annotator_prunes;
    Alcotest.test_case "construction size" `Quick test_nfa_construction_linear;
    QCheck_alcotest.to_alcotest prop_bitset_small;
    QCheck_alcotest.to_alcotest prop_bitset_wide;
    Alcotest.test_case "interning stable across 4 domains" `Quick test_sym_domains;
    Alcotest.test_case "transition memo counts" `Quick test_memo_counts ]
