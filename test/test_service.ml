(* The xut_service serving layer: plan cache, document store, worker
   pool, metrics, and the line protocol. *)

open Xut_service

let doc_xml =
  {|<site><people>
      <person id="p1"><name>Alice</name><age>30</age></person>
      <person id="p2"><name>Bob</name><age>17</age></person>
      <person id="p3"><name>Carol</name><age>45</age></person>
    </people><items>
      <item><name>kettle</name><price>12</price></item>
      <item><name>lamp</name><price>40</price></item>
    </items></site>|}

let q_del_adult_names =
  {|transform copy $a := doc("d") modify do delete $a/site/people/person[age > 20]/name return $a|}

let q_del_prices =
  {|transform copy $a := doc("d") modify do delete $a//price return $a|}

let q_rename_items =
  {|transform copy $a := doc("d") modify do rename $a/site/items/item as product return $a|}

let queries = [ q_del_adult_names; q_del_prices; q_rename_items ]

let with_doc_file f =
  let path = Filename.temp_file "xut_service_test" ".xml" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc doc_xml);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let reference_answer engine q =
  let root = Xut_xml.Dom.parse_string doc_xml in
  let query = Core.Transform_parser.parse q in
  Xut_xml.Serialize.element_to_string (Core.Engine.run engine query ~doc:root)

(* ---- plan cache ---- *)

let test_cache_hit_miss () =
  let c = Plan_cache.create ~capacity:4 in
  let p1, o1 = Plan_cache.find_or_compile c q_del_prices in
  Alcotest.(check bool) "first lookup misses" true (o1 = Plan_cache.Miss);
  let p2, o2 = Plan_cache.find_or_compile c q_del_prices in
  Alcotest.(check bool) "second lookup hits" true (o2 = Plan_cache.Hit);
  Alcotest.(check bool) "hit returns the same plan" true (p1 == p2);
  let s = Plan_cache.stats c in
  Alcotest.(check int) "hits" 1 s.Plan_cache.hits;
  Alcotest.(check int) "misses" 1 s.Plan_cache.misses;
  Alcotest.(check int) "entries" 1 s.Plan_cache.entries

let test_cache_lru_eviction () =
  let c = Plan_cache.create ~capacity:2 in
  ignore (Plan_cache.find_or_compile c q_del_adult_names);
  ignore (Plan_cache.find_or_compile c q_del_prices);
  (* touch the older entry, making q_del_prices the LRU one *)
  ignore (Plan_cache.find_or_compile c q_del_adult_names);
  ignore (Plan_cache.find_or_compile c q_rename_items);
  let s = Plan_cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Plan_cache.evictions;
  Alcotest.(check int) "still full" 2 s.Plan_cache.entries;
  let _, o = Plan_cache.find_or_compile c q_del_adult_names in
  Alcotest.(check bool) "recently-used entry survived" true (o = Plan_cache.Hit);
  let _, o = Plan_cache.find_or_compile c q_del_prices in
  Alcotest.(check bool) "LRU entry was evicted" true (o = Plan_cache.Miss)

let test_cache_disabled () =
  let c = Plan_cache.create ~capacity:0 in
  ignore (Plan_cache.find_or_compile c q_del_prices);
  let _, o = Plan_cache.find_or_compile c q_del_prices in
  Alcotest.(check bool) "capacity 0 never hits" true (o = Plan_cache.Miss);
  Alcotest.(check int) "capacity 0 stores nothing" 0 (Plan_cache.stats c).Plan_cache.entries

let test_cache_bad_query () =
  let c = Plan_cache.create ~capacity:4 in
  (match Plan_cache.find_or_compile c "not a transform query" with
  | _ -> Alcotest.fail "expected a parse error"
  | exception _ -> ());
  Alcotest.(check int) "failures are not cached" 0 (Plan_cache.stats c).Plan_cache.entries

(* The per-plan annotation memo bounds itself per document: overflow
   evicts only the least-recently-used document's table, never the
   whole memo. *)
let test_annotation_lru_per_doc () =
  let plan = Plan_cache.compile q_del_prices in
  let n = Plan_cache.max_annotated_docs in
  let docs = Array.init (n + 1) (fun _ -> Xut_xml.Dom.parse_string doc_xml) in
  let tables = Array.init n (fun i -> Plan_cache.annotation plan docs.(i)) in
  (* touch doc 0 so doc 1 becomes the LRU entry, then overflow *)
  ignore (Plan_cache.annotation plan docs.(0));
  ignore (Plan_cache.annotation plan docs.(n));
  Alcotest.(check bool) "hot doc 0 kept its table" true
    (Plan_cache.annotation plan docs.(0) == tables.(0));
  Alcotest.(check bool) "doc 2 kept its table" true
    (Plan_cache.annotation plan docs.(2) == tables.(2));
  Alcotest.(check bool) "only the LRU doc (1) was evicted" true
    (Plan_cache.annotation plan docs.(1) != tables.(1))

let test_cache_invalidate_per_doc () =
  let c = Plan_cache.create ~capacity:4 in
  let p1, _ = Plan_cache.find_or_compile c q_del_prices in
  let p2, _ = Plan_cache.find_or_compile c q_del_adult_names in
  let d1 = Xut_xml.Dom.parse_string doc_xml in
  let d2 = Xut_xml.Dom.parse_string doc_xml in
  let t_d2 = Plan_cache.annotation p1 d2 in
  ignore (Plan_cache.annotation p1 d1);
  ignore (Plan_cache.annotation p2 d1);
  Alcotest.(check int) "three tables memoized" 3 (Plan_cache.annotation_entries c);
  Alcotest.(check int) "d1 dropped from both plans" 2
    (Plan_cache.invalidate c ~root_id:(Xut_xml.Node.id d1));
  Alcotest.(check int) "d2's table untouched" 1 (Plan_cache.annotation_entries c);
  Alcotest.(check bool) "d2 still hits its memo" true
    (Plan_cache.annotation p1 d2 == t_d2);
  Alcotest.(check int) "invalidating again drops nothing" 0
    (Plan_cache.invalidate c ~root_id:(Xut_xml.Node.id d1))

(* ---- document store ---- *)

let test_store_load_evict () =
  with_doc_file (fun path ->
      let store = Doc_store.create () in
      (match Doc_store.load_file store ~name:"d" path with
      | Ok (info, reloaded) ->
        Alcotest.(check int) "element count" 18 info.Doc_store.elements;
        Alcotest.(check bool) "file recorded" true (info.Doc_store.file = Some path);
        Alcotest.(check bool) "fresh load is not a reload" false reloaded
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "find after load" true (Doc_store.find store "d" <> None);
      Alcotest.(check (list string)) "names" [ "d" ] (Doc_store.names store);
      Alcotest.(check bool) "evict" true (Doc_store.evict store "d");
      Alcotest.(check bool) "gone" true (Doc_store.find store "d" = None);
      Alcotest.(check bool) "evicting again is false" false (Doc_store.evict store "d"))

let test_store_reload_generations () =
  let store = Doc_store.create ~shards:4 () in
  let events = ref [] in
  Doc_store.subscribe store (fun ev ->
      events := (ev.Doc_store.name, ev.Doc_store.reason, ev.Doc_store.generation) :: !events);
  let tree () = Xut_xml.Node.element "r" [ Xut_xml.Node.elem "c" [] ] in
  let t1 = tree () in
  let i1, r1 = Result.get_ok (Doc_store.register store ~name:"d" t1) in
  Alcotest.(check bool) "first register is fresh" false r1;
  Alcotest.(check bool) "no event on a fresh load" true (!events = []);
  let i2, r2 = Result.get_ok (Doc_store.register store ~name:"d" (tree ())) in
  Alcotest.(check bool) "second register reloads" true r2;
  Alcotest.(check bool) "generation is monotone" true
    (i2.Doc_store.generation > i1.Doc_store.generation);
  (match !events with
  | [ ev ] ->
    let name, reason, generation = ev in
    Alcotest.(check string) "event names the doc" "d" name;
    Alcotest.(check bool) "reload publishes Replaced" true (reason = Doc_store.Replaced);
    Alcotest.(check int) "Replaced carries the new generation" i2.Doc_store.generation generation
  | _ -> Alcotest.fail "exactly one event for the reload");
  events := [];
  Alcotest.(check bool) "evict" true (Doc_store.evict store "d");
  (match !events with
  | [ (name, reason, generation) ] ->
    Alcotest.(check string) "unload event names the doc" "d" name;
    Alcotest.(check bool) "evict publishes Unloaded" true (reason = Doc_store.Unloaded);
    Alcotest.(check int) "Unloaded carries the removed generation" i2.Doc_store.generation
      generation
  | _ -> Alcotest.fail "exactly one event for the evict");
  events := [];
  ignore (Doc_store.evict store "d");
  Alcotest.(check bool) "no event for a missed evict" true (!events = [])

(* The sharded store must be observably identical to the single-shard
   one: same generations, same reload flags, same listings, same event
   stream, for any interleaving of load/evict/find. *)
let test_store_shard_equivalence =
  let names = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon" |] in
  let gen_op =
    QCheck.Gen.(
      oneof
        [
          map (fun i -> `Load (i mod Array.length names)) (int_bound 100);
          map (fun i -> `Evict (i mod Array.length names)) (int_bound 100);
          map (fun i -> `Find (i mod Array.length names)) (int_bound 100);
        ])
  in
  let print_op = function
    | `Load i -> "load " ^ names.(i)
    | `Evict i -> "evict " ^ names.(i)
    | `Find i -> "find " ^ names.(i)
  in
  let arb =
    QCheck.make
      ~print:(fun ops -> String.concat "; " (List.map print_op ops))
      QCheck.Gen.(list_size (int_bound 40) gen_op)
  in
  let prop ops =
    let s1 = Doc_store.create ~shards:1 () in
    let s4 = Doc_store.create ~shards:4 () in
    let ev1 = ref [] and ev4 = ref [] in
    let log evs ev =
      evs := (ev.Doc_store.name, ev.Doc_store.reason, ev.Doc_store.generation) :: !evs
    in
    Doc_store.subscribe s1 (log ev1);
    Doc_store.subscribe s4 (log ev4);
    let obs_info =
      Option.map (fun (i : Doc_store.info) ->
          (i.Doc_store.name, i.Doc_store.elements, i.Doc_store.generation))
    in
    let step acc op =
      acc
      &&
      match op with
      | `Load i ->
        let tree () = Xut_xml.Node.element names.(i) [ Xut_xml.Node.elem "c" [] ] in
        let i1, r1 = Result.get_ok (Doc_store.register s1 ~name:names.(i) (tree ())) in
        let i4, r4 = Result.get_ok (Doc_store.register s4 ~name:names.(i) (tree ())) in
        r1 = r4
        && i1.Doc_store.generation = i4.Doc_store.generation
        && i1.Doc_store.elements = i4.Doc_store.elements
      | `Evict i -> Doc_store.evict s1 names.(i) = Doc_store.evict s4 names.(i)
      | `Find i ->
        (Doc_store.find s1 names.(i) = None) = (Doc_store.find s4 names.(i) = None)
        && obs_info (Doc_store.info s1 names.(i)) = obs_info (Doc_store.info s4 names.(i))
    in
    List.fold_left step true ops
    && Doc_store.names s1 = Doc_store.names s4
    && !ev1 = !ev4
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"sharded store = single-shard store" ~count:200 arb prop)

let test_store_bad_input () =
  let store = Doc_store.create () in
  (match Doc_store.load_file store ~name:"x" "/nonexistent/file.xml" with
  | Ok _ -> Alcotest.fail "expected an error for a missing file"
  | Error _ -> ());
  let path = Filename.temp_file "xut_service_test" ".xml" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "<open><unclosed></open>");
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Doc_store.load_file store ~name:"x" path with
      | Ok _ -> Alcotest.fail "expected a parse error"
      | Error _ -> ())

(* ---- service ---- *)

let with_service ?(domains = 1) ?(cache_capacity = 128) f =
  let svc = Service.create ~domains ~cache_capacity () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

let load_doc svc path =
  match Service.call svc (Service.Load { name = "d"; file = path; schema = None }) with
  | Service.Ok (Service.Doc_loaded { name = "d"; elements = 18; reloaded = false; _ })
    -> ()
  | Service.Ok _ -> Alcotest.fail "LOAD answered with the wrong payload"
  | Service.Error { message; _ } -> Alcotest.fail message

let test_service_matches_engine_run () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          List.iter
            (fun engine ->
              List.iter
                (fun q ->
                  match Service.call svc (Service.Transform { target = Service.Doc "d"; engine; query = q }) with
                  | Service.Ok (Service.Tree payload) ->
                    Alcotest.(check string)
                      (Core.Engine.name engine ^ " matches Engine.run")
                      (reference_answer engine q) payload
                  | Service.Ok _ -> Alcotest.fail "TRANSFORM must answer with a Tree"
                  | Service.Error { message; _ } -> Alcotest.fail message)
                queries)
            [ Core.Engine.Td_bu; Core.Engine.Gentop; Core.Engine.Naive ];
          match
            Service.call svc
              (Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
          with
          | Service.Ok (Service.Element_count n) ->
            (* 18 elements minus the two deleted price elements *)
            Alcotest.(check int) "COUNT reply" 16 n
          | Service.Ok _ -> Alcotest.fail "COUNT must answer with an Element_count"
          | Service.Error { message; _ } -> Alcotest.fail message))

let test_service_batch () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let count = Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices } in
          let bad = Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = "nonsense" } in
          (match Service.call svc (Service.Batch [ count; bad; count; Service.Stats ]) with
          | Service.Ok (Service.Batch_results
              [ Service.Ok (Service.Element_count 16);
                Service.Error { code = Service.Query_parse_error; _ };
                Service.Ok (Service.Element_count 16);
                Service.Ok (Service.Stats_dump _)
              ]) -> ()
          | _ -> Alcotest.fail "batch must answer item-by-item, in order");
          (* a failing item inside a batch counts as an error *)
          Alcotest.(check int) "batch errors counted" 1 (Metrics.errors (Service.metrics svc));
          (* batches must not nest *)
          match Service.call svc (Service.Batch [ Service.Batch [ count ] ]) with
          | Service.Ok (Service.Batch_results
              [ Service.Error { code = Service.Bad_request; _ } ]) -> ()
          | _ -> Alcotest.fail "nested batch must be rejected with bad-request"))

let test_render_response_compat () =
  (* the flat stdin-protocol strings of the pre-redesign service *)
  let check name expect resp =
    match Service.render_response resp with
    | Stdlib.Ok s -> Alcotest.(check string) name expect s
    | Stdlib.Error e -> Alcotest.fail e
  in
  check "loaded" "loaded d elements=18"
    (Service.Ok
       (Service.Doc_loaded
          { name = "d"; elements = 18; reloaded = false; generation = 1; schema = None }));
  check "reloaded" "loaded d elements=18 reloaded=true"
    (Service.Ok
       (Service.Doc_loaded
          { name = "d"; elements = 18; reloaded = true; generation = 2; schema = None }));
  check "unloaded" "unloaded d" (Service.Ok (Service.Doc_unloaded { name = "d" }));
  check "tree" "<a/>" (Service.Ok (Service.Tree "<a/>"));
  check "count" "elements=16" (Service.Ok (Service.Element_count 16));
  match
    Service.render_response
      (Service.Error { code = Service.Unknown_document; message = "no document \"x\"" })
  with
  | Stdlib.Error s ->
    Alcotest.(check string) "error keeps its code" "unknown-document: no document \"x\"" s
  | Stdlib.Ok _ -> Alcotest.fail "Error must render to Error"

let test_service_concurrent_4_domains () =
  with_doc_file (fun path ->
      with_service ~domains:4 (fun svc ->
          load_doc svc path;
          let expected =
            List.map (fun q -> reference_answer Core.Engine.Td_bu q) queries
          in
          let futures =
            List.init 60 (fun i ->
                let q = List.nth queries (i mod 3) in
                ( i mod 3,
                  Service.submit svc
                    (Service.Transform { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q }) ))
          in
          List.iter
            (fun (which, fut) ->
              match Service.await fut with
              | Service.Ok (Service.Tree payload) ->
                Alcotest.(check string)
                  "parallel output byte-identical to single-threaded run"
                  (List.nth expected which) payload
              | Service.Ok _ -> Alcotest.fail "TRANSFORM must answer with a Tree"
              | Service.Error { message; _ } -> Alcotest.fail message)
            futures;
          let m = Service.metrics svc in
          Alcotest.(check int) "no errors" 0 (Metrics.errors m);
          Alcotest.(check bool) "cache hit on repeats" true (Metrics.cache_hits m >= 57)))

let test_service_error_isolation () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          (* malformed query: classified as a parse error *)
          (match
             Service.call svc
               (Service.Transform
                  { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = "delete everything please" })
           with
          | Service.Error { code = Service.Query_parse_error; _ } -> ()
          | Service.Error { code; _ } ->
            Alcotest.fail ("wrong error code: " ^ Service.err_code_name code)
          | Service.Ok _ -> Alcotest.fail "expected an error response");
          (* unknown document: its own code *)
          (match
             Service.call svc
               (Service.Transform
                  { target = Service.Doc "nope"; engine = Core.Engine.Td_bu; query = q_del_prices })
           with
          | Service.Error { code = Service.Unknown_document; _ } -> ()
          | Service.Error { code; _ } ->
            Alcotest.fail ("wrong error code: " ^ Service.err_code_name code)
          | Service.Ok _ -> Alcotest.fail "expected an error response");
          (* the single worker survived both and still serves *)
          (match
             Service.call svc
               (Service.Transform { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
           with
          | Service.Ok (Service.Tree payload) ->
            Alcotest.(check string) "pool keeps serving after errors"
              (reference_answer Core.Engine.Td_bu q_del_prices)
              payload
          | Service.Ok _ -> Alcotest.fail "TRANSFORM must answer with a Tree"
          | Service.Error { message; _ } -> Alcotest.fail message);
          Alcotest.(check int) "errors counted" 2 (Metrics.errors (Service.metrics svc))))

let test_service_stats_and_unload () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          (match Service.call svc Service.Stats with
          | Service.Ok (Service.Stats_dump payload) ->
            Alcotest.(check bool) "stats mentions the doc with its generation" true
              (String.length payload > 0
              && String.split_on_char '\n' payload
                 |> List.exists (fun l ->
                        String.starts_with ~prefix:"doc d elements=18 generation=" l))
          | Service.Ok _ -> Alcotest.fail "STATS must answer with a Stats_dump"
          | Service.Error { message; _ } -> Alcotest.fail message);
          (match Service.call svc (Service.Unload { name = "d" }) with
          | Service.Ok (Service.Doc_unloaded { name = "d" }) -> ()
          | Service.Ok _ -> Alcotest.fail "UNLOAD must answer with a Doc_unloaded"
          | Service.Error { message; _ } -> Alcotest.fail message);
          match Service.call svc (Service.Unload { name = "d" }) with
          | Service.Ok _ -> Alcotest.fail "expected an error for a double unload"
          | Service.Error { code = Service.Unknown_document; _ } -> ()
          | Service.Error { code; _ } ->
            Alcotest.fail ("wrong error code: " ^ Service.err_code_name code)))

(* The lifecycle guarantee of the sharded store: UNLOAD (or a reload)
   takes exactly the departing document's annotation tables with it —
   counted in the metrics, visible in STATS, never a whole-memo wipe —
   and a reload of identical content transforms byte-identically. *)
let test_service_lifecycle_invalidation () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let transform () =
            match
              Service.call svc
                (Service.Transform
                   { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
            with
            | Service.Ok (Service.Tree payload) -> payload
            | Service.Ok _ -> Alcotest.fail "TRANSFORM must answer with a Tree"
            | Service.Error { message; _ } -> Alcotest.fail message
          in
          let before = transform () in
          Alcotest.(check int) "TD-BU memoized one annotation table" 1
            (Service.cache_stats svc).Plan_cache.annotation_entries;
          (match Service.call svc (Service.Unload { name = "d" }) with
          | Service.Ok (Service.Doc_unloaded _) -> ()
          | _ -> Alcotest.fail "UNLOAD");
          Alcotest.(check int) "unload evicted exactly the doc's table" 0
            (Service.cache_stats svc).Plan_cache.annotation_entries;
          Alcotest.(check int) "invalidation counted in the metrics" 1
            (Metrics.invalidations (Service.metrics svc));
          Alcotest.(check int) "the compiled plan itself survived" 1
            (Service.cache_stats svc).Plan_cache.entries;
          (match Service.call svc Service.Stats with
          | Service.Ok (Service.Stats_dump dump) ->
            Alcotest.(check bool) "STATS reports the invalidation" true
              (String.split_on_char '\n' dump
              |> List.exists (fun l -> l = "doc_invalidations 1"))
          | _ -> Alcotest.fail "STATS");
          load_doc svc path;
          let after = transform () in
          Alcotest.(check string) "byte-identical output after reload" before after))

let test_service_reload_replaces () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let transform () =
            match
              Service.call svc
                (Service.Transform
                   { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
            with
            | Service.Ok (Service.Tree payload) -> payload
            | _ -> Alcotest.fail "TRANSFORM"
          in
          let before = transform () in
          (* LOAD over a live name: reported as a reload, and the old
             tree's annotation table goes with it *)
          (match Service.call svc (Service.Load { name = "d"; file = path; schema = None }) with
          | Service.Ok (Service.Doc_loaded { reloaded = true; generation; _ }) ->
            Alcotest.(check bool) "reload advances the generation" true (generation >= 2)
          | Service.Ok _ -> Alcotest.fail "LOAD over a live name must report reloaded=true"
          | Service.Error { message; _ } -> Alcotest.fail message);
          Alcotest.(check int) "old tree's table invalidated" 1
            (Metrics.invalidations (Service.metrics svc));
          Alcotest.(check string) "reloaded content transforms byte-identically" before
            (transform ())))

(* ---- worker pool and metrics ---- *)

let test_pool_parallel_sum () =
  let pool = Worker_pool.create ~domains:4 ~queue_capacity:8 (fun n -> n * n) in
  let futures = List.init 100 (fun i -> Worker_pool.submit pool i) in
  let total =
    List.fold_left
      (fun acc fut ->
        match Worker_pool.await fut with
        | Ok v -> acc + v
        | Error e -> Alcotest.fail e)
      0 futures
  in
  Worker_pool.shutdown pool;
  Alcotest.(check int) "all 100 squares served" 328350 total

let test_pool_failure_isolation () =
  let pool =
    Worker_pool.create ~domains:2 ~queue_capacity:4 (fun n ->
        if n < 0 then failwith "negative" else n + 1)
  in
  (match Worker_pool.call pool (-1) with
  | Error msg -> Alcotest.(check string) "error message" "negative" msg
  | Ok _ -> Alcotest.fail "expected an error");
  (match Worker_pool.call pool 41 with
  | Ok v -> Alcotest.(check int) "workers survive a raise" 42 v
  | Error e -> Alcotest.fail e);
  Worker_pool.shutdown pool;
  Worker_pool.shutdown pool (* idempotent *)

(* ---- streaming result path ---- *)

let test_transform_stream () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          (* every engine, streamed with a tiny chunk size, must
             reassemble to the materialized Tree payload byte for byte *)
          List.iter
            (fun engine ->
              List.iter
                (fun q ->
                  let buf = Buffer.create 256 in
                  let n = ref 0 in
                  match
                    Service.transform_stream svc ~doc:"d" ~engine ~query:q ~chunk_size:32
                      (fun chunk ->
                        incr n;
                        Buffer.add_string buf chunk)
                  with
                  | Service.Ok (Service.Stream_done { bytes; chunks }) ->
                    Alcotest.(check string) "streamed = materialized"
                      (reference_answer engine q) (Buffer.contents buf);
                    Alcotest.(check int) "byte total" (Buffer.length buf) bytes;
                    Alcotest.(check int) "chunk total" !n chunks;
                    Alcotest.(check bool) "multiple chunks at size 32" true (chunks > 1)
                  | Service.Ok _ -> Alcotest.fail "expected Stream_done"
                  | Service.Error { message; _ } -> Alcotest.fail message)
                queries)
            Core.Engine.[ Gentop; Td_bu; Two_pass_sax; Naive ];
          (* errors: unknown doc and non-TRANSFORM carry their codes *)
          (match
             Service.transform_stream svc ~doc:"nope" ~engine:Core.Engine.Td_bu
               ~query:q_del_prices
               (fun _ -> Alcotest.fail "no chunks for an unknown document")
           with
          | Service.Error { code = Service.Unknown_document; _ } -> ()
          | _ -> Alcotest.fail "unknown-document code");
          (* counters: streams/chunks/bytes flowed into the metrics and
             surface in the STATS dump *)
          let m = Service.metrics svc in
          Alcotest.(check int) "streams counted" (4 * List.length queries) (Metrics.streams m);
          Alcotest.(check bool) "stream chunks counted" true
            (Metrics.stream_chunks m >= Metrics.streams m);
          Alcotest.(check bool) "stream bytes counted" true
            (Metrics.stream_bytes m > Metrics.stream_chunks m);
          match Service.call svc Service.Stats with
          | Service.Ok (Service.Stats_dump dump) ->
            let has prefix =
              String.split_on_char '\n' dump
              |> List.exists (fun l ->
                     String.length l >= String.length prefix
                     && String.sub l 0 (String.length prefix) = prefix)
            in
            Alcotest.(check bool) "STATS reports streams" true (has "streams ");
            Alcotest.(check bool) "STATS reports stream_bytes" true (has "stream_bytes ");
            Alcotest.(check bool) "STATS reports the serializer pool" true
              (has "serialize_pool_hits ")
          | _ -> Alcotest.fail "STATS"))

(* ---- streamed ingest ---- *)

let test_transform_ingest () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let ingest source q =
            let buf = Buffer.create 256 in
            match
              Service.transform_ingest svc ~source ~query:q ~chunk_size:32
                (Buffer.add_string buf)
            with
            | Service.Ok (Service.Stream_done { bytes; _ }) ->
              Alcotest.(check int) "byte total" (Buffer.length buf) bytes;
              Buffer.contents buf
            | Service.Ok _ -> Alcotest.fail "expected Stream_done"
            | Service.Error { message; _ } -> Alcotest.fail message
          in
          (* all test queries, both source shapes, byte-identical to the
             materialized answer: qualifier-free shapes run fused, the
             qualifier-carrying one exercises both fallback tiers (tree
             walk for the stored doc, two-parse SAX for the file) *)
          List.iter
            (fun q ->
              let expected = reference_answer Core.Engine.Gentop q in
              Alcotest.(check string) "doc ingest = materialized" expected
                (ingest (Service.From_doc "d") q);
              Alcotest.(check string) "file ingest = materialized" expected
                (ingest (Service.From_file path) q))
            queries;
          let m = Service.metrics svc in
          Alcotest.(check int) "fused runs counted" 4 (Metrics.streams_fused m);
          Alcotest.(check int) "fallbacks counted" 2 (Metrics.stream_fallbacks m);
          (* every ingest is exactly one of fused/fallback *)
          Alcotest.(check int) "fused + fallback = ingests" (2 * List.length queries)
            (Metrics.streams_fused m + Metrics.stream_fallbacks m);
          (* error paths: no chunks may precede a typed rejection *)
          (match
             Service.transform_ingest svc ~source:(Service.From_doc "nope")
               ~query:q_del_prices
               (fun _ -> Alcotest.fail "no chunks for an unknown document")
           with
          | Service.Error { code = Service.Unknown_document; _ } -> ()
          | _ -> Alcotest.fail "unknown-document code");
          (match
             Service.transform_ingest svc ~source:(Service.From_file "/nonexistent/x.xml")
               ~query:q_del_prices
               (fun _ -> Alcotest.fail "no chunks for a missing file")
           with
          | Service.Error { code = Service.Eval_error; _ } -> ()
          | _ -> Alcotest.fail "missing-file code");
          (match
             Service.transform_ingest svc ~source:(Service.From_doc "d") ~query:"nonsense"
               (fun _ -> Alcotest.fail "no chunks for a bad query")
           with
          | Service.Error { code = Service.Query_parse_error; _ } -> ()
          | _ -> Alcotest.fail "query-parse-error code");
          (* malformed input failing mid-parse: the fused pipeline has
             already emitted chunks when the parser trips *)
          let bad = Filename.temp_file "xut_service_bad" ".xml" in
          Out_channel.with_open_bin bad (fun oc ->
              Out_channel.output_string oc "<site><open>";
              for _ = 1 to 2000 do
                Out_channel.output_string oc "<b>x</b>"
              done;
              Out_channel.output_string oc "</mismatch></site>");
          Fun.protect
            ~finally:(fun () -> Sys.remove bad)
            (fun () ->
              let got = ref 0 in
              match
                Service.transform_ingest svc ~source:(Service.From_file bad)
                  ~query:q_del_prices ~chunk_size:64
                  (fun chunk -> got := !got + String.length chunk)
              with
              | Service.Error { code = Service.Eval_error; _ } ->
                Alcotest.(check bool) "chunks flowed before the parse error" true (!got > 0)
              | _ -> Alcotest.fail "mid-parse failure must end in an error")))

(* ---- stored views ---- *)

(* Mirror of the service's result rendering, so expectations are
   computed independently through the naive materialize-then-query
   path. *)
let view_render (v : Xut_xquery.Xq_value.t) =
  String.concat "\n"
    (List.map
       (fun item ->
         match item with
         | Xut_xquery.Xq_value.N n -> Xut_xml.Serialize.to_string n
         | Xut_xquery.Xq_value.D e -> Xut_xml.Serialize.element_to_string e
         | other -> Xut_xquery.Xq_value.string_of_item other)
       v)

(* [defs] are transform-query texts, innermost (applied first) at the
   head; the answer is Q over the naively materialized chain. *)
let naive_view_value ~base defs user_q =
  let updates =
    List.map (fun s -> (Core.Transform_parser.parse s).Core.Transform_ast.update) defs
  in
  Core.Composition.naive_stack updates (Core.User_query.parse user_q) ~doc:base

let v1_def = {|transform copy $a := doc("d") modify do delete $a//price return $a|}
let v2_def = {|transform copy $a := doc("v1") modify do rename $a/site/items/item as product return $a|}
let v2_query = "for $x in site/items/product return $x"

let defview svc name query =
  match Service.call svc (Service.Defview { name; query }) with
  | Service.Ok (Service.View_defined { base; depth; redefined; _ }) -> (base, depth, redefined)
  | Service.Ok _ -> Alcotest.fail "DEFVIEW must answer with a View_defined"
  | Service.Error { message; _ } -> Alcotest.fail message

let transform_view svc name query =
  match
    Service.call svc
      (Service.Transform { target = Service.View name; engine = Core.Engine.Td_bu; query })
  with
  | Service.Ok (Service.Tree payload) -> payload
  | Service.Ok _ -> Alcotest.fail "TRANSFORM VIEW must answer with a Tree"
  | Service.Error { message; _ } -> Alcotest.fail message

let test_view_define_and_query () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let b1, dep1, re1 = defview svc "v1" v1_def in
          Alcotest.(check bool) "v1: base d, depth 1, fresh" true
            (b1 = "d" && dep1 = 1 && not re1);
          let b2, dep2, _ = defview svc "v2" v2_def in
          Alcotest.(check bool) "v2: base v1, depth 2" true (b2 = "v1" && dep2 = 2);
          let m = Service.metrics svc in
          Alcotest.(check int) "view_defs counted" 2 (Metrics.view_defs m);
          (* 2-deep chain, composed path, byte-identical to naive *)
          let base = Xut_xml.Dom.parse_string doc_xml in
          let expected = view_render (naive_view_value ~base [ v1_def; v2_def ] v2_query) in
          Alcotest.(check string) "composed = naive materialization" expected
            (transform_view svc "v2" v2_query);
          Alcotest.(check int) "served by composition" 1 (Metrics.view_hits m);
          Alcotest.(check int) "one composition performed" 1 (Metrics.composed_plans m);
          Alcotest.(check int) "no fallback for an in-fragment query" 0
            (Metrics.compose_fallbacks m);
          (* the composed plan is cached: a repeat is a hit, not a recompose *)
          Alcotest.(check string) "repeat answer identical" expected
            (transform_view svc "v2" v2_query);
          Alcotest.(check int) "plan reused" 1 (Metrics.composed_plans m);
          Alcotest.(check int) "second hit counted" 2 (Metrics.view_hits m);
          (* COUNT against the view agrees with the naive value *)
          let naive_count =
            List.fold_left
              (fun n item ->
                match item with
                | Xut_xquery.Xq_value.N node -> n + Xut_xml.Node.element_count node
                | Xut_xquery.Xq_value.D e ->
                  n + Xut_xml.Node.element_count (Xut_xml.Node.Element e)
                | _ -> n + 1)
              0
              (naive_view_value ~base [ v1_def; v2_def ] v2_query)
          in
          (match
             Service.call svc
               (Service.Count
                  { target = Service.View "v2"; engine = Core.Engine.Td_bu; query = v2_query })
           with
          | Service.Ok (Service.Element_count n) ->
            Alcotest.(check int) "COUNT VIEW = naive count" naive_count n
          | _ -> Alcotest.fail "COUNT VIEW");
          (* LISTVIEWS, sorted by name *)
          (match Service.call svc Service.Listviews with
          | Service.Ok (Service.View_list [ a; b ]) ->
            Alcotest.(check string) "first view" "v1" a.Service.v_name;
            Alcotest.(check bool) "second view v2 depth 2" true
              (b.Service.v_name = "v2" && b.Service.v_depth = 2)
          | _ -> Alcotest.fail "LISTVIEWS must list both views");
          (* STATS carries per-view lines *)
          (match Service.call svc Service.Stats with
          | Service.Ok (Service.Stats_dump dump) ->
            Alcotest.(check bool) "STATS lists the views" true
              (String.split_on_char '\n' dump
              |> List.exists (fun l -> String.starts_with ~prefix:"view v2 base=v1 depth=2" l))
          | _ -> Alcotest.fail "STATS");
          (* UNDEFVIEW, then the name is gone *)
          (match Service.call svc (Service.Undefview { name = "v2" }) with
          | Service.Ok (Service.View_undefined { name = "v2" }) -> ()
          | _ -> Alcotest.fail "UNDEFVIEW");
          match
            Service.call svc
              (Service.Transform
                 { target = Service.View "v2"; engine = Core.Engine.Td_bu; query = v2_query })
          with
          | Service.Error { code = Service.Unknown_document; _ } -> ()
          | _ -> Alcotest.fail "an undefined view must answer unknown-document"))

let test_view_definition_errors () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          (* rejected at definition time, with the structured code *)
          (match
             Service.call svc
               (Service.Defview
                  {
                    name = "bad";
                    query =
                      {|transform copy $a := doc("d") modify do delete $a/site return $a|};
                  })
           with
          | Service.Error { code = Service.View_compose_error; _ } -> ()
          | Service.Error { code; _ } ->
            Alcotest.fail ("wrong error code: " ^ Service.err_code_name code)
          | Service.Ok _ -> Alcotest.fail "document-element deletion must be rejected");
          (* unparseable definition *)
          (match
             Service.call svc (Service.Defview { name = "bad"; query = "not a transform" })
           with
          | Service.Error { code = Service.Query_parse_error; _ } -> ()
          | _ -> Alcotest.fail "expected a parse error");
          Alcotest.(check int) "rejected definitions not counted" 0
            (Metrics.view_defs (Service.metrics svc));
          (* cycles: c1 late-binds to c2, then c2 over c1 closes the loop *)
          ignore
            (defview svc "c1"
               {|transform copy $a := doc("c2") modify do delete $a//price return $a|});
          (match
             Service.call svc
               (Service.Defview
                  {
                    name = "c2";
                    query =
                      {|transform copy $a := doc("c1") modify do delete $a//age return $a|};
                  })
           with
          | Service.Error { code = Service.View_compose_error; message } ->
            Alcotest.(check bool) "cycle named in the message" true
              (String.length message > 0)
          | _ -> Alcotest.fail "a view cycle must be rejected");
          (* c1's base "c2" stayed a (nonexistent) document: late binding *)
          (match
             Service.call svc
               (Service.Transform
                  { target = Service.View "c1"; engine = Core.Engine.Td_bu; query = v2_query })
           with
          | Service.Error { code = Service.Unknown_document; _ } -> ()
          | _ -> Alcotest.fail "unloaded base must answer unknown-document");
          (* unknown view name *)
          match
            Service.call svc
              (Service.Transform
                 { target = Service.View "nope"; engine = Core.Engine.Td_bu; query = v2_query })
          with
          | Service.Error { code = Service.Unknown_document; _ } -> ()
          | _ -> Alcotest.fail "unknown view must answer unknown-document"))

(* The dependency graph: COMMIT on the base repairs/invalidates exactly
   the dependent views' memos (composed plans survive — they depend on
   definitions, not content); redefinition and UNLOAD evict exactly the
   affected composed plans, and unrelated views ride through. *)
let test_view_invalidation_graph () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          (match Service.call svc (Service.Load { name = "e"; file = path; schema = None }) with
          | Service.Ok (Service.Doc_loaded _) -> ()
          | _ -> Alcotest.fail "LOAD e");
          ignore (defview svc "v1" v1_def);
          ignore (defview svc "v2" v2_def);
          let w_def = {|transform copy $a := doc("e") modify do delete $a/site/people return $a|} in
          let w_query = "for $x in site/items/item return $x/name" in
          ignore (defview svc "w" w_def);
          let base = Xut_xml.Dom.parse_string doc_xml in
          let expected_before = view_render (naive_view_value ~base [ v1_def; v2_def ] v2_query) in
          Alcotest.(check string) "v2 before commit" expected_before
            (transform_view svc "v2" v2_query);
          let w_expected = view_render (naive_view_value ~base [ w_def ] w_query) in
          Alcotest.(check string) "w answers" w_expected (transform_view svc "w" w_query);
          Alcotest.(check int) "two composed plans cached" 2
            (Service.cache_stats svc).Plan_cache.composed_entries;
          let m = Service.metrics svc in
          Alcotest.(check int) "no view churn yet" 0 (Metrics.view_invalidations m);
          (* COMMIT the base of the chain *)
          let commit_q = {|delete $a/site/items/item[name = "lamp"]|} in
          (match Service.call svc (Service.Commit { doc = "d"; query = commit_q }) with
          | Service.Ok (Service.Committed { primitives = 1; _ }) -> ()
          | _ -> Alcotest.fail "COMMIT d");
          Alcotest.(check bool) "commit churned the dependent views' memos" true
            (Metrics.view_invalidations m > 0);
          Alcotest.(check int) "composed plans survive a plain commit" 2
            (Service.cache_stats svc).Plan_cache.composed_entries;
          (* the re-query reflects the new base, no restart, still composed *)
          let committed =
            Core.Engine.transform Core.Engine.Reference
              (List.hd (Core.Transform_parser.parse_updates commit_q))
              base
          in
          let expected_after =
            view_render (naive_view_value ~base:committed [ v1_def; v2_def ] v2_query)
          in
          Alcotest.(check bool) "commit changed the view answer" true
            (expected_before <> expected_after);
          Alcotest.(check string) "v2 after commit = naive over new base" expected_after
            (transform_view svc "v2" v2_query);
          Alcotest.(check int) "served from the cached composition" 2
            (Metrics.composed_plans m);
          Alcotest.(check int) "never fell back" 0 (Metrics.compose_fallbacks m);
          (* redefining v1 evicts exactly the plans through v1 *)
          let churn0 = Metrics.view_invalidations m in
          let _, _, redefined =
            defview svc "v1"
              {|transform copy $a := doc("d") modify do delete $a//age return $a|}
          in
          Alcotest.(check bool) "redefinition reported" true redefined;
          Alcotest.(check int) "only w's plan survives the redefinition" 1
            (Service.cache_stats svc).Plan_cache.composed_entries;
          Alcotest.(check bool) "redefinition churn counted" true
            (Metrics.view_invalidations m > churn0);
          (* and the chain recomposes against the new definition *)
          let v1_def' = {|transform copy $a := doc("d") modify do delete $a//age return $a|} in
          let expected_redef =
            view_render (naive_view_value ~base:committed [ v1_def'; v2_def ] v2_query)
          in
          Alcotest.(check string) "v2 after redefinition" expected_redef
            (transform_view svc "v2" v2_query);
          Alcotest.(check int) "recomposed once" 3 (Metrics.composed_plans m);
          (* w was untouched throughout: still a cache hit *)
          Alcotest.(check string) "w unaffected" w_expected (transform_view svc "w" w_query);
          Alcotest.(check int) "w's plan was never recomposed" 3 (Metrics.composed_plans m);
          (* UNLOAD w's base drops w's plan, keeps v2's *)
          (match Service.call svc (Service.Unload { name = "e" }) with
          | Service.Ok (Service.Doc_unloaded _) -> ()
          | _ -> Alcotest.fail "UNLOAD e");
          Alcotest.(check int) "only the unloaded base's plan evicted" 1
            (Service.cache_stats svc).Plan_cache.composed_entries;
          match
            Service.call svc
              (Service.Transform
                 { target = Service.View "w"; engine = Core.Engine.Td_bu; query = w_query })
          with
          | Service.Error { code = Service.Unknown_document; _ } -> ()
          | _ -> Alcotest.fail "w without its base must answer unknown-document"))

let test_metrics_histogram () =
  let m = Metrics.create () in
  (* 90 fast requests, 10 slow ones *)
  for _ = 1 to 90 do
    Metrics.record_latency m 0.001
  done;
  for _ = 1 to 10 do
    Metrics.record_latency m 0.1
  done;
  Alcotest.(check int) "count" 100 (Metrics.latency_count m);
  let p50 = Metrics.quantile m 0.50 in
  Alcotest.(check bool) "p50 in the fast bucket" true (p50 > 0.0005 && p50 < 0.002);
  let p95 = Metrics.quantile m 0.95 in
  Alcotest.(check bool) "p95 in the slow bucket" true (p95 > 0.05 && p95 < 0.2);
  Alcotest.(check bool) "max is exact" true (abs_float (Metrics.max_latency m -. 0.1) < 1e-6);
  Metrics.queue_enter m;
  Metrics.queue_enter m;
  Metrics.queue_leave m;
  Alcotest.(check int) "queue depth" 1 (Metrics.queue_depth m);
  Alcotest.(check int) "high-water mark" 2 (Metrics.max_queue_depth m)

let suite =
  [
    Alcotest.test_case "plan cache: miss then hit" `Quick test_cache_hit_miss;
    Alcotest.test_case "plan cache: LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "plan cache: capacity 0 disables" `Quick test_cache_disabled;
    Alcotest.test_case "plan cache: failures not cached" `Quick test_cache_bad_query;
    Alcotest.test_case "plan cache: per-doc annotation LRU" `Quick test_annotation_lru_per_doc;
    Alcotest.test_case "plan cache: per-doc invalidation" `Quick test_cache_invalidate_per_doc;
    Alcotest.test_case "doc store: load, find, evict" `Quick test_store_load_evict;
    Alcotest.test_case "doc store: reload flag, generations, events" `Quick
      test_store_reload_generations;
    test_store_shard_equivalence;
    Alcotest.test_case "doc store: bad input" `Quick test_store_bad_input;
    Alcotest.test_case "service: output matches Engine.run" `Quick test_service_matches_engine_run;
    Alcotest.test_case "service: 4-domain output byte-identical" `Quick
      test_service_concurrent_4_domains;
    Alcotest.test_case "service: error isolation and codes" `Quick test_service_error_isolation;
    Alcotest.test_case "service: stats and unload" `Quick test_service_stats_and_unload;
    Alcotest.test_case "service: lifecycle invalidation" `Quick
      test_service_lifecycle_invalidation;
    Alcotest.test_case "service: reload replaces and invalidates" `Quick
      test_service_reload_replaces;
    Alcotest.test_case "service: batch requests" `Quick test_service_batch;
    Alcotest.test_case "service: render_response compatibility" `Quick
      test_render_response_compat;
    Alcotest.test_case "service: streamed transform" `Quick test_transform_stream;
    Alcotest.test_case "service: streamed ingest = materialized" `Quick
      test_transform_ingest;
    Alcotest.test_case "pool: parallel fan-out" `Quick test_pool_parallel_sum;
    Alcotest.test_case "pool: failure isolation" `Quick test_pool_failure_isolation;
    Alcotest.test_case "metrics: histogram and queue depth" `Quick test_metrics_histogram;
    Alcotest.test_case "views: define, query, list, undefine" `Quick test_view_define_and_query;
    Alcotest.test_case "views: definition-time rejection" `Quick test_view_definition_errors;
    Alcotest.test_case "views: dependency-graph invalidation" `Quick
      test_view_invalidation_graph;
  ]
