(* The socket transport: Wire codecs (line + binary, with a qcheck
   round-trip property), the server's robustness against malformed /
   oversized / truncated frames, concurrency, error-code mapping, and
   the BUSY connection limit. *)

open Xut_service
open Xut_transport

let doc_xml =
  {|<site><people>
      <person id="p1"><name>Alice</name><age>30</age></person>
      <person id="p2"><name>Bob</name><age>17</age></person>
      <person id="p3"><name>Carol</name><age>45</age></person>
    </people><items>
      <item><name>kettle</name><price>12</price></item>
      <item><name>lamp</name><price>40</price></item>
    </items></site>|}

let q_del_adult_names =
  {|transform copy $a := doc("d") modify do delete $a/site/people/person[age > 20]/name return $a|}

let q_del_prices =
  {|transform copy $a := doc("d") modify do delete $a//price return $a|}

let q_rename_items =
  {|transform copy $a := doc("d") modify do rename $a/site/items/item as product return $a|}

let queries = [ q_del_adult_names; q_del_prices; q_rename_items ]

let reference_answer engine q =
  let root = Xut_xml.Dom.parse_string doc_xml in
  let query = Core.Transform_parser.parse q in
  Xut_xml.Serialize.element_to_string (Core.Engine.run engine query ~doc:root)

let with_doc_file f =
  let path = Filename.temp_file "xut_transport_test" ".xml" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc doc_xml);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let with_server ?config ?(domains = 1) f =
  let svc = Service.create ~domains () in
  let sock = Filename.temp_file "xut_transport_test" ".sock" in
  Sys.remove sock;
  let server = Server.start ?config ~service:svc (Addr.Unix_socket sock) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Service.shutdown svc)
    (fun () -> f svc sock)

let eventually ?(timeout = 5.) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    || (Unix.gettimeofday () -. t0 < timeout
       &&
       (Thread.delay 0.01;
        go ()))
  in
  go ()

(* raw socket access, for sending deliberately broken bytes *)

let raw_connect sock_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock_path);
  fd

let raw_write fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let raw_read_all ?(timeout = 5.) fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNRESET), _, _) -> ()
  in
  go ();
  Buffer.contents buf

(* Decode the single error frame a misbehaving client is sent. *)
let decode_error_frame bytes =
  if String.length bytes < Wire.Binary.header_size then
    Alcotest.fail "server reply shorter than a frame header";
  match
    Wire.Binary.decode_header (Bytes.of_string (String.sub bytes 0 Wire.Binary.header_size))
  with
  | Error msg -> Alcotest.fail ("server reply header: " ^ msg)
  | Ok { Wire.Binary.length; id; _ } -> begin
    if String.length bytes <> Wire.Binary.header_size + length then
      Alcotest.fail "server reply is not exactly one frame before close";
    match Wire.Binary.decode_response (String.sub bytes Wire.Binary.header_size length) with
    | Error msg -> Alcotest.fail ("server reply payload: " ^ msg)
    | Ok resp -> (id, resp)
  end

(* ---- line protocol ---- *)

let test_line_protocol () =
  let ok = function Ok r -> r | Error e -> Alcotest.fail e in
  (match ok (Wire.Line.decode_request "LOAD d /tmp/x.xml") with
  | Service.Load { name = "d"; file = "/tmp/x.xml"; schema = None } -> ()
  | _ -> Alcotest.fail "LOAD parse");
  (match ok (Wire.Line.decode_request "LOAD d /tmp/x.xml SCHEMA xmark") with
  | Service.Load { name = "d"; file = "/tmp/x.xml"; schema = Some "xmark" } -> ()
  | _ -> Alcotest.fail "LOAD SCHEMA parse");
  (match
     ok
       (Wire.Line.decode_request
          "TRANSFORM d td-bu transform copy $a := doc(\"d\") modify do delete $a//x return $a")
   with
  | Service.Transform { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query } ->
    Alcotest.(check bool) "query text survives" true
      (String.length query > 0 && String.sub query 0 9 = "transform")
  | _ -> Alcotest.fail "TRANSFORM parse");
  (match ok (Wire.Line.decode_request "stats") with
  | Service.Stats -> ()
  | _ -> Alcotest.fail "STATS parse (case-insensitive verb)");
  (match
     ok
       (Wire.Line.decode_request
          "COUNT d gentop transform copy $a := doc(\"d\") modify do delete $a//x return $a")
   with
  | Service.Count { target = Service.Doc "d"; engine = Core.Engine.Gentop; _ } -> ()
  | _ -> Alcotest.fail "COUNT parse");
  (match ok (Wire.Line.decode_request "APPLY d delete $a//price") with
  | Service.Apply { doc = "d"; query = "delete $a//price" } -> ()
  | _ -> Alcotest.fail "APPLY parse");
  (* the VIEW keyword re-targets TRANSFORM/COUNT at a stored view *)
  (match ok (Wire.Line.decode_request "TRANSFORM VIEW v td-bu for $x in a/b return $x") with
  | Service.Transform
      { target = Service.View "v"; engine = Core.Engine.Td_bu;
        query = "for $x in a/b return $x" } -> ()
  | _ -> Alcotest.fail "TRANSFORM VIEW parse");
  (match ok (Wire.Line.decode_request "COUNT VIEW v gentop for $x in a/b return $x") with
  | Service.Count { target = Service.View "v"; engine = Core.Engine.Gentop; _ } -> ()
  | _ -> Alcotest.fail "COUNT VIEW parse");
  (* ...but only the exact uppercase keyword: a lowercase name stays a doc *)
  (match ok (Wire.Line.decode_request "TRANSFORM view td-bu for $x in a/b return $x") with
  | Service.Transform { target = Service.Doc "view"; _ } -> ()
  | _ -> Alcotest.fail "lowercase view is a document name");
  (match ok (Wire.Line.decode_request "DEFVIEW v := transform copy $a := doc(\"d\") modify do delete $a//x return $a") with
  | Service.Defview { name = "v"; query } ->
    Alcotest.(check bool) ":= is stripped" true (String.sub query 0 9 = "transform")
  | _ -> Alcotest.fail "DEFVIEW parse");
  (match ok (Wire.Line.decode_request "DEFVIEW v transform copy $a := doc(\"d\") modify do delete $a//x return $a") with
  | Service.Defview { name = "v"; query } ->
    Alcotest.(check bool) ":= is optional" true (String.sub query 0 9 = "transform")
  | _ -> Alcotest.fail "DEFVIEW parse without :=");
  (match ok (Wire.Line.decode_request "UNDEFVIEW v") with
  | Service.Undefview { name = "v" } -> ()
  | _ -> Alcotest.fail "UNDEFVIEW parse");
  (match ok (Wire.Line.decode_request "listviews") with
  | Service.Listviews -> ()
  | _ -> Alcotest.fail "LISTVIEWS parse (case-insensitive verb)");
  (match ok (Wire.Line.decode_request "commit d insert <x/> into $a") with
  | Service.Commit { doc = "d"; query = "insert <x/> into $a" } -> ()
  | _ -> Alcotest.fail "COMMIT parse (case-insensitive verb)");
  List.iter
    (fun line ->
      match Wire.Line.decode_request line with
      | Ok _ -> Alcotest.fail ("should not parse: " ^ line)
      | Error _ -> ())
    [ ""; "LOAD d"; "TRANSFORM d"; "TRANSFORM d bogus-engine q"; "APPLY d"; "COMMIT d";
      "FROBNICATE x"; "TRANSFORM VIEW v"; "DEFVIEW v"; "UNDEFVIEW" ];
  (* encode/decode round trips for representable requests *)
  List.iter
    (fun req ->
      match Wire.Line.encode_request req with
      | Error e -> Alcotest.fail e
      | Ok line ->
        Alcotest.(check bool) "line round trip" true (Wire.Line.decode_request line = Ok req))
    [
      Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices };
      Service.Apply { doc = "d"; query = "delete $a//price" };
      Service.Commit { doc = "d"; query = "(delete $a//price, rename $a/site as x)" };
      Service.Transform
        { target = Service.View "v"; engine = Core.Engine.Td_bu;
          query = "for $x in a/b return $x" };
      Service.Count
        { target = Service.View "v"; engine = Core.Engine.Gentop;
          query = "for $x in a/b return $x" };
      Service.Defview { name = "v"; query = q_del_prices };
      Service.Undefview { name = "v" };
      Service.Listviews;
    ];
  (* the line protocol's blind spots: exactly what the binary frames fix *)
  (match
     Wire.Line.encode_request
       (Service.Transform { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = "a\nb" })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a multi-line query must not be expressible on one line");
  (* a document literally named VIEW (or DOC) rides the explicit DOC
     keyword and round-trips *)
  (match
     Wire.Line.encode_request
       (Service.Transform { target = Service.Doc "VIEW"; engine = Core.Engine.Td_bu; query = "q" })
   with
  | Ok line -> begin
    Alcotest.(check string) "doc named VIEW takes the DOC keyword" "TRANSFORM DOC VIEW TD-BU q"
      line;
    match Wire.Line.decode_request line with
    | Ok (Service.Transform { target = Service.Doc "VIEW"; _ }) -> ()
    | _ -> Alcotest.fail "TRANSFORM DOC VIEW must decode back to the document target"
  end
  | Error e -> Alcotest.fail ("a document named VIEW must be expressible via DOC: " ^ e));
  (match Wire.Line.decode_request "COUNT DOC DOC td-bu q" with
  | Ok (Service.Count { target = Service.Doc "DOC"; _ }) -> ()
  | _ -> Alcotest.fail "COUNT DOC DOC must address the document named DOC");
  match Wire.Line.encode_request (Service.Batch [ Service.Stats ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a batch must not be expressible on one line"

(* ---- binary codec: qcheck round trip ---- *)

let gen_text =
  (* names and query texts with embedded spaces and newlines — the
     inputs the line protocol cannot carry *)
  QCheck.Gen.(
    string_size
      ~gen:(oneof [ printable; return '\n'; return ' '; return '"' ])
      (int_range 0 40))

let gen_engine = QCheck.Gen.oneofl Core.Engine.all

let gen_target =
  QCheck.Gen.(
    oneof [ map (fun d -> Service.Doc d) gen_text; map (fun v -> Service.View v) gen_text ])

let gen_simple_request =
  QCheck.Gen.(
    oneof
      [
        map3 (fun name file schema -> Service.Load { name; file; schema }) gen_text gen_text
          (opt gen_text);
        map (fun name -> Service.Unload { name }) gen_text;
        map3 (fun target engine query -> Service.Transform { target; engine; query }) gen_target
          gen_engine gen_text;
        map3 (fun target engine query -> Service.Count { target; engine; query }) gen_target
          gen_engine gen_text;
        map2 (fun doc query -> Service.Apply { doc; query }) gen_text gen_text;
        map2 (fun doc query -> Service.Commit { doc; query }) gen_text gen_text;
        map2 (fun name query -> Service.Defview { name; query }) gen_text gen_text;
        map (fun name -> Service.Undefview { name }) gen_text;
        return Service.Listviews;
        return Service.Stats;
      ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        gen_simple_request;
        map (fun l -> Service.Batch l) (list_size (int_range 0 5) gen_simple_request);
      ])

let gen_err_code =
  QCheck.Gen.oneofl
    [
      Service.Unknown_document;
      Service.Query_parse_error;
      Service.Eval_error;
      Service.Conflict;
      Service.Overloaded;
      Service.Bad_request;
      Service.View_compose_error;
      Service.Statically_empty;
    ]

let gen_simple_response =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun (name, reloaded) (elements, generation) schema ->
            Service.Ok (Service.Doc_loaded { name; elements; reloaded; generation; schema }))
          (pair gen_text bool) (pair small_nat small_nat) (opt gen_text);
        map (fun name -> Service.Ok (Service.Doc_unloaded { name })) gen_text;
        map (fun s -> Service.Ok (Service.Tree s)) gen_text;
        map (fun n -> Service.Ok (Service.Element_count n)) small_nat;
        map (fun s -> Service.Ok (Service.Stats_dump s)) gen_text;
        map2
          (fun bytes chunks -> Service.Ok (Service.Stream_done { bytes; chunks }))
          small_nat small_nat;
        map3
          (fun doc (primitives, collapsed) conflicts ->
            Service.Ok (Service.Applied { doc; primitives; collapsed; conflicts }))
          gen_text (pair small_nat small_nat)
          (list_size (int_range 0 3) gen_text);
        map3
          (fun doc (primitives, collapsed) (elements, generation) ->
            Service.Ok (Service.Committed { doc; primitives; collapsed; elements; generation }))
          gen_text (pair small_nat small_nat) (pair small_nat small_nat);
        map3
          (fun (name, base) (depth, generation) redefined ->
            Service.Ok (Service.View_defined { name; base; depth; generation; redefined }))
          (pair gen_text gen_text) (pair small_nat small_nat) bool;
        map (fun name -> Service.Ok (Service.View_undefined { name })) gen_text;
        map
          (fun views -> Service.Ok (Service.View_list views))
          (list_size (int_range 0 4)
             (map2
                (fun (v_name, v_base) (v_depth, v_generation) ->
                  { Service.v_name; v_base; v_depth; v_generation })
                (pair gen_text gen_text) (pair small_nat small_nat)));
        map2 (fun code message -> Service.Error { code; message }) gen_err_code gen_text;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        gen_simple_response;
        map
          (fun l -> Service.Ok (Service.Batch_results l))
          (list_size (int_range 0 5) gen_simple_response);
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"binary: decode (encode request) = Ok request"
    (QCheck.make gen_request) (fun r ->
      Wire.Binary.decode_request (Wire.Binary.encode_request r) = Ok r)

let prop_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"binary: decode (encode response) = Ok response"
    (QCheck.make gen_response) (fun r ->
      Wire.Binary.decode_response (Wire.Binary.encode_response r) = Ok r)

let prop_header_roundtrip =
  QCheck.Test.make ~count:200 ~name:"binary: header round trip"
    QCheck.(pair (map Int64.of_int small_nat) small_nat)
    (fun (id, length) ->
      let h =
        { Wire.Binary.version = Wire.Binary.protocol_version; kind = Wire.Binary.Request; id;
          length }
      in
      Wire.Binary.decode_header (Wire.Binary.encode_header h) = Ok h)

let test_header_validation () =
  let mk ?(version = Wire.Binary.protocol_version) ?(length = 0) () =
    Wire.Binary.encode_header
      { Wire.Binary.version; kind = Wire.Binary.Request; id = 9L; length }
  in
  (match Wire.Binary.decode_header (Bytes.of_string "0123456789abcdef") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic must be rejected");
  (match Wire.Binary.decode_header (mk ~version:(Wire.Binary.protocol_version + 1) ()) with
  | Error msg ->
    Alcotest.(check bool) "version error names both versions" true
      (String.length msg > 0
      && String.split_on_char ' ' msg |> List.exists (fun w -> w = "version"))
  | Ok _ -> Alcotest.fail "a future protocol version must be rejected");
  (match Wire.Binary.decode_header (mk ~version:1 ()) with
  | Ok { Wire.Binary.version = 1; _ } -> ()
  | _ -> Alcotest.fail "a v1 request header must still be accepted");
  (let h =
     Wire.Binary.encode_header
       { Wire.Binary.version = 1; kind = Wire.Binary.Stream_chunk; id = 9L; length = 0 }
   in
   match Wire.Binary.decode_header h with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "a stream kind in a v1 header must be rejected");
  (match Wire.Binary.decode_header ~max_frame:1024 (mk ~length:2048 ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a frame above max_frame must be rejected");
  match Wire.Binary.decode_header (Bytes.of_string "XU") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a short header must be rejected"

(* ---- socket round trips ---- *)

let load_over t path =
  match Client.call t (Service.Load { name = "d"; file = path; schema = None }) with
  | Service.Ok (Service.Doc_loaded { name = "d"; elements = 18; _ }) -> ()
  | Service.Ok _ -> Alcotest.fail "LOAD over the socket: wrong payload"
  | Service.Error { message; _ } -> Alcotest.fail message

let test_socket_matches_in_process () =
  with_doc_file (fun doc ->
      with_server (fun svc sock ->
          let cli = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              load_over cli doc;
              List.iter
                (fun q ->
                  let req =
                    Service.Transform { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q }
                  in
                  let over_socket = Client.call cli req in
                  let in_process = Service.call svc req in
                  Alcotest.(check bool)
                    "socket response structurally equal to Service.call" true
                    (over_socket = in_process);
                  match over_socket with
                  | Service.Ok (Service.Tree t) ->
                    Alcotest.(check string) "payload byte-identical to the engine"
                      (reference_answer Core.Engine.Td_bu q)
                      t
                  | _ -> Alcotest.fail "expected a Tree")
                queries;
              (match
                 Client.call cli
                   (Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
               with
              | Service.Ok (Service.Element_count 16) -> ()
              | _ -> Alcotest.fail "COUNT over the socket");
              (* transport counters flowed into the service metrics *)
              let m = Service.metrics svc in
              Alcotest.(check bool) "frames_in counted" true (Metrics.frames_in m >= 5);
              Alcotest.(check bool) "frames_out counted" true (Metrics.frames_out m >= 5);
              Alcotest.(check bool) "bytes flow both ways" true
                (Metrics.bytes_in m > 0 && Metrics.bytes_out m > 0);
              Alcotest.(check int) "one connection accepted" 1 (Metrics.conns_accepted m);
              match Service.call svc Service.Stats with
              | Service.Ok (Service.Stats_dump dump) ->
                Alcotest.(check bool) "STATS surfaces transport counters" true
                  (String.split_on_char '\n' dump
                  |> List.exists (fun l ->
                         String.length l >= 10 && String.sub l 0 10 = "frames_in "))
              | _ -> Alcotest.fail "STATS")))

let test_socket_concurrent_clients () =
  with_doc_file (fun doc ->
      with_server ~domains:2 (fun _svc sock ->
          let cli0 = Client.connect (Addr.Unix_socket sock) in
          load_over cli0 doc;
          Client.close cli0;
          let expected = List.map (reference_answer Core.Engine.Td_bu) queries in
          let n_clients = 4 and per_client = 12 in
          let failures = Array.make n_clients None in
          let worker k () =
            try
              let cli = Client.connect (Addr.Unix_socket sock) in
              Fun.protect
                ~finally:(fun () -> Client.close cli)
                (fun () ->
                  for i = 0 to per_client - 1 do
                    let which = (k + i) mod 3 in
                    match
                      Client.call cli
                        (Service.Transform
                           { target = Service.Doc "d";
                             engine = Core.Engine.Td_bu;
                             query = List.nth queries which
                           })
                    with
                    | Service.Ok (Service.Tree t) ->
                      if t <> List.nth expected which then
                        failwith "socket payload differs from single-threaded run"
                    | Service.Ok _ -> failwith "expected a Tree"
                    | Service.Error { message; _ } -> failwith message
                  done)
            with e -> failures.(k) <- Some (Printexc.to_string e)
          in
          let threads = List.init n_clients (fun k -> Thread.create (worker k) ()) in
          List.iter Thread.join threads;
          Array.iter (function Some e -> Alcotest.fail e | None -> ()) failures))

(* ---- abuse: malformed, oversized, truncated ---- *)

let assert_still_serving sock doc =
  let cli = Client.connect (Addr.Unix_socket sock) in
  Fun.protect
    ~finally:(fun () -> Client.close cli)
    (fun () ->
      load_over cli doc;
      match
        Client.call cli
          (Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
      with
      | Service.Ok (Service.Element_count 16) -> ()
      | _ -> Alcotest.fail "server no longer serves after an abusive client")

let test_malformed_frame () =
  with_doc_file (fun doc ->
      with_server (fun svc sock ->
          let fd = raw_connect sock in
          raw_write fd "GARBAGE!NONSENSE";
          let reply = raw_read_all fd in
          Unix.close fd;
          let id, resp = decode_error_frame reply in
          Alcotest.(check bool) "protocol error frames carry id 0" true (id = 0L);
          (match resp with
          | Service.Error { code = Service.Bad_request; _ } -> ()
          | _ -> Alcotest.fail "malformed frame must answer bad-request");
          Alcotest.(check bool) "malformed counter" true
            (Metrics.frames_malformed (Service.metrics svc) >= 1);
          assert_still_serving sock doc))

let test_oversized_frame () =
  with_doc_file (fun doc ->
      with_server
        ~config:{ Server.default_config with Server.max_frame = 1024 }
        (fun svc sock ->
          let fd = raw_connect sock in
          let header =
            Wire.Binary.encode_header
              { Wire.Binary.version = Wire.Binary.protocol_version;
                kind = Wire.Binary.Request;
                id = 7L;
                length = 1024 * 1024
              }
          in
          raw_write fd (Bytes.to_string header);
          let reply = raw_read_all fd in
          Unix.close fd;
          let _id, resp = decode_error_frame reply in
          (match resp with
          | Service.Error { code = Service.Bad_request; message } ->
            Alcotest.(check bool) "mentions the size" true
              (String.split_on_char ' ' message |> List.exists (fun w -> w = "oversized"))
          | _ -> Alcotest.fail "oversized frame must answer bad-request");
          Alcotest.(check bool) "malformed counter" true
            (Metrics.frames_malformed (Service.metrics svc) >= 1);
          assert_still_serving sock doc))

let test_truncated_frame () =
  with_doc_file (fun doc ->
      with_server (fun svc sock ->
          let fd = raw_connect sock in
          let header =
            Wire.Binary.encode_header
              { Wire.Binary.version = Wire.Binary.protocol_version;
                kind = Wire.Binary.Request;
                id = 3L;
                length = 100
              }
          in
          raw_write fd (Bytes.to_string header);
          raw_write fd "only ten b";
          Unix.close fd;
          (* mid-frame disconnect: the server counts it and carries on *)
          Alcotest.(check bool) "malformed counter incremented" true
            (eventually (fun () -> Metrics.frames_malformed (Service.metrics svc) >= 1));
          assert_still_serving sock doc))

let test_bad_payload_keeps_connection () =
  with_doc_file (fun doc ->
      with_server (fun svc sock ->
          let cli = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              load_over cli doc;
              (* a well-framed TRANSFORM naming an engine this build
                 does not have: decodable header, undecodable payload *)
              let fd = raw_connect sock in
              let payload = "\003" ^ "\000\000\000\001d" ^ "\000\000\000\004warp" ^ "\000\000\000\001q" in
              let header =
                Wire.Binary.encode_header
                  { Wire.Binary.version = Wire.Binary.protocol_version;
                    kind = Wire.Binary.Request;
                    id = 11L;
                    length = String.length payload
                  }
              in
              raw_write fd (Bytes.to_string header ^ payload);
              (* the error frame must name our request id, and the
                 connection must survive for a follow-up request *)
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
              let hdr = Bytes.create Wire.Binary.header_size in
              let rec read_exact off len =
                if len > 0 then begin
                  let n = Unix.read fd hdr off len in
                  if n = 0 then Alcotest.fail "connection closed on a bad payload";
                  read_exact (off + n) (len - n)
                end
              in
              read_exact 0 Wire.Binary.header_size;
              (match Wire.Binary.decode_header hdr with
              | Ok { Wire.Binary.id = 11L; length; _ } ->
                let p = Bytes.create length in
                let rec read_p off len =
                  if len > 0 then begin
                    let n = Unix.read fd p off len in
                    if n = 0 then Alcotest.fail "truncated error frame";
                    read_p (off + n) (len - n)
                  end
                in
                read_p 0 length;
                (match Wire.Binary.decode_response (Bytes.to_string p) with
                | Ok (Service.Error { code = Service.Bad_request; _ }) -> ()
                | _ -> Alcotest.fail "bad payload must answer bad-request")
              | _ -> Alcotest.fail "expected an error frame for id 11");
              (* same raw connection still answers a valid frame *)
              raw_write fd
                (Wire.Binary.request_frame ~id:12L Service.Stats);
              read_exact 0 Wire.Binary.header_size;
              (match Wire.Binary.decode_header ~max_frame:Wire.Binary.default_max_frame hdr with
              | Ok { Wire.Binary.id = 12L; length; _ } ->
                let p = Bytes.create length in
                let rec read_p off len =
                  if len > 0 then begin
                    let n = Unix.read fd p off len in
                    if n = 0 then Alcotest.fail "truncated STATS frame";
                    read_p (off + n) (len - n)
                  end
                in
                read_p 0 length
              | _ -> Alcotest.fail "connection must keep serving after a bad payload");
              Unix.close fd;
              Alcotest.(check bool) "malformed counter" true
                (Metrics.frames_malformed (Service.metrics svc) >= 1))))

(* ---- error codes over the wire ---- *)

let test_error_codes_over_socket () =
  with_doc_file (fun doc ->
      with_server (fun _svc sock ->
          let cli = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              load_over cli doc;
              (match
                 Client.call cli
                   (Service.Transform
                      { target = Service.Doc "nope"; engine = Core.Engine.Td_bu; query = q_del_prices })
               with
              | Service.Error { code = Service.Unknown_document; _ } -> ()
              | _ -> Alcotest.fail "unknown document must map to unknown-document");
              (match
                 Client.call cli
                   (Service.Transform
                      { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = "not a query" })
               with
              | Service.Error { code = Service.Query_parse_error; _ } -> ()
              | _ -> Alcotest.fail "bad query must map to query-parse-error");
              match Client.call cli (Service.Batch [ Service.Batch [ Service.Stats ] ]) with
              | Service.Ok
                  (Service.Batch_results [ Service.Error { code = Service.Bad_request; _ } ]) ->
                ()
              | _ -> Alcotest.fail "nested batch must map to bad-request")))

let test_batch_over_socket () =
  with_doc_file (fun doc ->
      with_server (fun _svc sock ->
          let cli = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              load_over cli doc;
              let count =
                Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices }
              in
              match Client.call_batch cli [ count; count; count ] with
              | [ Service.Ok (Service.Element_count 16);
                  Service.Ok (Service.Element_count 16);
                  Service.Ok (Service.Element_count 16)
                ] -> ()
              | _ -> Alcotest.fail "batch over the socket")))

(* ---- connection limit ---- *)

let test_busy_rejection () =
  with_doc_file (fun doc ->
      with_server
        ~config:{ Server.default_config with Server.max_connections = 1 }
        (fun svc sock ->
          let cli1 = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli1)
            (fun () ->
              load_over cli1 doc;
              (* the slot is taken: the next client gets one BUSY frame *)
              let cli2 = Client.connect (Addr.Unix_socket sock) in
              (match Client.call cli2 Service.Stats with
              | Service.Error { code = Service.Overloaded; _ } -> ()
              | _ -> Alcotest.fail "expected an overloaded rejection"
              | exception Client.Transport_error _ ->
                (* the BUSY frame races the close; either is a rejection,
                   but the counter below must agree *)
                ());
              Client.close cli2;
              Alcotest.(check bool) "rejection counted" true
                (eventually (fun () -> Metrics.conns_rejected (Service.metrics svc) = 1));
              (* the first connection is unaffected *)
              match
                Client.call cli1
                  (Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
              with
              | Service.Ok (Service.Element_count 16) -> ()
              | _ -> Alcotest.fail "the admitted connection must keep working")))

(* ---- streamed transforms (protocol v2) ---- *)

let test_stream_frame_codecs () =
  (match
     Wire.Binary.decode_stream_end
       (String.sub
          (Wire.Binary.stream_end_frame ~id:5L ~bytes:123456 ~chunks:7)
          Wire.Binary.header_size
          (String.length (Wire.Binary.stream_end_frame ~id:5L ~bytes:123456 ~chunks:7)
          - Wire.Binary.header_size))
   with
  | Ok (123456, 7) -> ()
  | _ -> Alcotest.fail "stream-end totals round trip");
  (match
     (let f = Wire.Binary.stream_error_frame ~id:5L ~code:Service.Eval_error "boom > mid" in
      Wire.Binary.decode_stream_error
        (String.sub f Wire.Binary.header_size (String.length f - Wire.Binary.header_size)))
   with
  | Ok (Service.Eval_error, "boom > mid") -> ()
  | _ -> Alcotest.fail "stream-error round trip");
  let sr =
    { Wire.Binary.doc = "d"; engine = Core.Engine.Gentop; query = "q\nwith newline";
      chunk_size = 512 }
  in
  (match Wire.Binary.decode_incoming ~version:2 (Wire.Binary.encode_stream_request sr) with
  | Ok (Wire.Binary.Stream sr') ->
    Alcotest.(check bool) "stream request round trips" true (sr' = sr)
  | _ -> Alcotest.fail "stream request must decode in a v2 frame");
  (match Wire.Binary.decode_incoming ~version:1 (Wire.Binary.encode_stream_request sr) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a stream request in a v1 frame must be rejected");
  match
    Wire.Binary.decode_incoming ~version:2 (Wire.Binary.encode_request Service.Stats)
  with
  | Ok (Wire.Binary.Plain Service.Stats) -> ()
  | _ -> Alcotest.fail "plain requests must still decode from v2 frames"

let test_stream_over_socket () =
  with_doc_file (fun doc ->
      with_server (fun svc sock ->
          let cli = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              load_over cli doc;
              List.iter
                (fun q ->
                  let buf = Buffer.create 256 in
                  let n_chunks = ref 0 in
                  match
                    Client.transform_stream cli ~doc:"d" ~engine:Core.Engine.Td_bu ~query:q
                      ~chunk_size:64 (fun chunk ->
                        incr n_chunks;
                        Buffer.add_string buf chunk)
                  with
                  | Service.Ok (Service.Stream_done { bytes; chunks }) ->
                    let got = Buffer.contents buf in
                    Alcotest.(check string) "reassembled chunks = materialized payload"
                      (reference_answer Core.Engine.Td_bu q)
                      got;
                    Alcotest.(check int) "totals: bytes" (String.length got) bytes;
                    Alcotest.(check int) "totals: chunks" !n_chunks chunks;
                    Alcotest.(check bool) "chunk_size 64 really chunks" true (chunks > 1)
                  | Service.Ok _ -> Alcotest.fail "expected Stream_done"
                  | Service.Error { message; _ } -> Alcotest.fail message)
                queries;
              (* the connection still serves plain requests afterwards *)
              (match
                 Client.call cli
                   (Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
               with
              | Service.Ok (Service.Element_count 16) -> ()
              | _ -> Alcotest.fail "plain request after a stream");
              (* streaming counters flowed into the service metrics *)
              let m = Service.metrics svc in
              Alcotest.(check int) "streams counted" (List.length queries) (Metrics.streams m);
              Alcotest.(check bool) "chunks counted" true
                (Metrics.stream_chunks m > List.length queries);
              Alcotest.(check bool) "bytes counted" true (Metrics.stream_bytes m > 0))))

let test_stream_unknown_document () =
  with_server (fun _svc sock ->
      let cli = Client.connect (Addr.Unix_socket sock) in
      Fun.protect
        ~finally:(fun () -> Client.close cli)
        (fun () ->
          let chunks = ref 0 in
          match
            Client.transform_stream cli ~doc:"nope" ~engine:Core.Engine.Td_bu
              ~query:q_del_prices (fun _ -> incr chunks)
          with
          | Service.Error { code = Service.Unknown_document; _ } ->
            Alcotest.(check int) "no chunks before the error" 0 !chunks
          | _ -> Alcotest.fail "streaming an unknown document must fail with its code"))

(* A v1 client against the v2 server: plain frames keep working, and the
   replies echo version 1 so the old client's header check accepts them;
   a stream request smuggled into a v1 frame is rejected. *)
let test_v1_client_fallback () =
  with_doc_file (fun doc ->
      with_server (fun _svc sock ->
          let fd = raw_connect sock in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
              let read_one () =
                let hdr = Bytes.create Wire.Binary.header_size in
                let rec go off len =
                  if len > 0 then begin
                    let n = Unix.read fd hdr off len in
                    if n = 0 then Alcotest.fail "connection closed";
                    go (off + n) (len - n)
                  end
                in
                go 0 Wire.Binary.header_size;
                match Wire.Binary.decode_header hdr with
                | Error msg -> Alcotest.fail ("reply header: " ^ msg)
                | Ok h ->
                  let p = Bytes.create h.Wire.Binary.length in
                  let rec go off len =
                    if len > 0 then begin
                      let n = Unix.read fd p off len in
                      if n = 0 then Alcotest.fail "truncated reply";
                      go (off + n) (len - n)
                    end
                  in
                  go 0 h.Wire.Binary.length;
                  (h, Bytes.to_string p)
              in
              (* request_frame emits version-1 frames: exactly what an
                 old client would send *)
              raw_write fd
                (Wire.Binary.request_frame ~id:21L
                   (Service.Load { name = "d"; file = doc; schema = None }));
              let h, payload = read_one () in
              Alcotest.(check int) "reply echoes version 1" 1 h.Wire.Binary.version;
              (match Wire.Binary.decode_response payload with
              | Ok (Service.Ok (Service.Doc_loaded _)) -> ()
              | _ -> Alcotest.fail "LOAD through a v1 frame");
              (* stream-request payload inside a v1 frame: bad-request *)
              let sp =
                Wire.Binary.encode_stream_request
                  { Wire.Binary.doc = "d"; engine = Core.Engine.Td_bu; query = q_del_prices;
                    chunk_size = 64 }
              in
              raw_write fd
                (Bytes.to_string
                   (Wire.Binary.encode_header
                      { Wire.Binary.version = 1; kind = Wire.Binary.Request; id = 22L;
                        length = String.length sp })
                ^ sp);
              let h2, payload2 = read_one () in
              Alcotest.(check int) "rejection echoes version 1" 1 h2.Wire.Binary.version;
              match Wire.Binary.decode_response payload2 with
              | Ok (Service.Error { code = Service.Bad_request; message }) ->
                Alcotest.(check bool) "names the version requirement" true
                  (String.split_on_char ' ' message |> List.exists (fun w -> w = "version"))
              | _ -> Alcotest.fail "v1-framed stream request must answer bad-request")))

(* ---- invalidation notices (protocol v2) ---- *)

let test_notice_codec () =
  List.iter
    (fun n ->
      match Wire.Binary.decode_notice (Wire.Binary.encode_notice n) with
      | Ok n' -> Alcotest.(check bool) "notice round trips" true (n' = n)
      | Error e -> Alcotest.fail e)
    [
      { Wire.Binary.doc = "d"; reason = Wire.Binary.Unloaded; generation = 4 };
      { Wire.Binary.doc = "name with\nnewline"; reason = Wire.Binary.Replaced; generation = 0 };
      { Wire.Binary.doc = "d"; reason = Wire.Binary.Committed; generation = 7 };
    ];
  Alcotest.(check string) "render: unloaded" "NOTICE unloaded d generation=4"
    (Wire.Binary.render_notice
       { Wire.Binary.doc = "d"; reason = Wire.Binary.Unloaded; generation = 4 });
  Alcotest.(check string) "render: replaced" "NOTICE replaced d generation=5"
    (Wire.Binary.render_notice
       { Wire.Binary.doc = "d"; reason = Wire.Binary.Replaced; generation = 5 });
  Alcotest.(check string) "render: committed" "NOTICE committed d generation=7"
    (Wire.Binary.render_notice
       { Wire.Binary.doc = "d"; reason = Wire.Binary.Committed; generation = 7 });
  (* the frame itself: id 0, kind Notice, version 2 *)
  let f =
    Wire.Binary.notice_frame
      { Wire.Binary.doc = "d"; reason = Wire.Binary.Unloaded; generation = 4 }
  in
  (match
     Wire.Binary.decode_header (Bytes.of_string (String.sub f 0 Wire.Binary.header_size))
   with
  | Ok { Wire.Binary.kind = Wire.Binary.Notice; id = 0L; version = 2; _ } -> ()
  | _ -> Alcotest.fail "notice frames carry kind Notice, id 0, version 2");
  (* a Notice kind in a v1 header is rejected, like the stream kinds *)
  match
    Wire.Binary.decode_header
      (Wire.Binary.encode_header
         { Wire.Binary.version = 1; kind = Wire.Binary.Notice; id = 0L; length = 0 })
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a Notice kind in a v1 header must be rejected"

(* Server-push delivery: a subscribed (v2) client hears about UNLOAD and
   reload on the id-0 channel; a plain (v1) client never sees the frame.
   Ordering is deterministic: the store fires events synchronously on
   the worker before the triggering request's response is written, so
   the notice precedes the UNLOAD/LOAD reply on every subscribed
   connection. *)
let test_notice_over_socket () =
  with_doc_file (fun doc ->
      with_server (fun _svc sock ->
          let notices = ref [] in
          let sub =
            Client.connect ~on_notice:(fun n -> notices := n :: !notices)
              (Addr.Unix_socket sock)
          in
          let plain = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () ->
              Client.close sub;
              Client.close plain)
            (fun () ->
              (* one request each, so the server learns both versions *)
              (match Client.call sub Service.Stats with
              | Service.Ok (Service.Stats_dump _) -> ()
              | _ -> Alcotest.fail "STATS on the subscribed client");
              load_over plain doc;
              Alcotest.(check bool) "a fresh LOAD pushes no notice" true (!notices = []);
              (* reload: the plain client LOADs over the live name *)
              (match Client.call plain (Service.Load { name = "d"; file = doc; schema = None }) with
              | Service.Ok (Service.Doc_loaded { reloaded = true; _ }) -> ()
              | _ -> Alcotest.fail "reload must report reloaded=true");
              (* unload from the plain client too *)
              (match Client.call plain (Service.Unload { name = "d" }) with
              | Service.Ok (Service.Doc_unloaded _) -> ()
              | _ -> Alcotest.fail "UNLOAD");
              (* both notices are already buffered on [sub]'s socket (the
                 broadcast precedes each response); any read drains them *)
              (match Client.call sub Service.Stats with
              | Service.Ok (Service.Stats_dump _) -> ()
              | _ -> Alcotest.fail "STATS after the notices");
              (match List.rev !notices with
              | [ { Wire.Binary.doc = "d"; reason = Wire.Binary.Replaced; generation = g1 };
                  { Wire.Binary.doc = "d"; reason = Wire.Binary.Unloaded; generation = g2 }
                ] ->
                Alcotest.(check int) "unload names the replacing generation" g1 g2;
                Alcotest.(check bool) "the reload advanced the generation" true (g1 >= 2)
              | l ->
                Alcotest.fail
                  (Printf.sprintf "expected [replaced; unloaded], got %d notice(s): %s"
                     (List.length l)
                     (String.concat "; " (List.map Wire.Binary.render_notice l))));
              (* the v1 client saw only its responses: its next round trip
                 still works, which it would not if a Notice frame (a kind
                 its header check rejects) had been pushed at it *)
              match Client.call plain Service.Stats with
              | Service.Ok (Service.Stats_dump _) -> ()
              | _ -> Alcotest.fail "the v1 client must be unaffected by notices")))

(* The write path over the socket: APPLY dry-runs, COMMIT swaps and
   pushes a [committed] notice to subscribed (v2) clients, a conflicting
   list comes back as the [conflict] error code. *)
let test_commit_over_socket () =
  with_doc_file (fun doc ->
      with_server (fun svc sock ->
          let notices = ref [] in
          let sub =
            Client.connect ~on_notice:(fun n -> notices := n :: !notices)
              (Addr.Unix_socket sock)
          in
          let writer = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () ->
              Client.close sub;
              Client.close writer)
            (fun () ->
              (match Client.call sub Service.Stats with
              | Service.Ok (Service.Stats_dump _) -> ()
              | _ -> Alcotest.fail "STATS on the subscribed client");
              load_over writer doc;
              (match Client.call writer (Service.Apply { doc = "d"; query = "delete $a//price" }) with
              | Service.Ok
                  (Service.Applied { doc = "d"; primitives = 2; collapsed = 0; conflicts = [] })
                -> ()
              | _ -> Alcotest.fail "APPLY over the socket");
              Alcotest.(check bool) "a dry run pushes no notice" true (!notices = []);
              (match Client.call writer (Service.Commit { doc = "d"; query = "delete $a//price" }) with
              | Service.Ok (Service.Committed { doc = "d"; primitives = 2; generation = 2; _ }) -> ()
              | _ -> Alcotest.fail "COMMIT over the socket");
              (* the notice is buffered ahead of any later reply on [sub] *)
              (match Client.call sub Service.Stats with
              | Service.Ok (Service.Stats_dump _) -> ()
              | _ -> Alcotest.fail "STATS after the commit");
              (match !notices with
              | [ { Wire.Binary.doc = "d"; reason = Wire.Binary.Committed; generation = 2 } ] -> ()
              | l ->
                Alcotest.fail
                  (Printf.sprintf "expected one committed notice, got %d: %s" (List.length l)
                     (String.concat "; " (List.map Wire.Binary.render_notice l))));
              (* a conflicting pending list travels back as the typed code *)
              (match
                 Client.call writer
                   (Service.Commit
                      { doc = "d"; query = "(replace $a/site with <x/>, replace $a/site with <y/>)" })
               with
              | Service.Error { code = Service.Conflict; _ } -> ()
              | _ -> Alcotest.fail "conflict must reach the client as the conflict code");
              Alcotest.(check int) "the rejected commit pushed nothing" 1 (List.length !notices);
              Alcotest.(check int) "metrics: one effective commit" 1
                (Metrics.commits (Service.metrics svc));
              Alcotest.(check int) "metrics: one conflict" 1
                (Metrics.commit_conflicts (Service.metrics svc)))))

(* Mid-stream failure as the CLIENT sees it: a hand-rolled server sends
   BEGIN, two chunks, then a STREAM_ERROR (a real engine failing after
   output went out).  The client must deliver both chunks and return the
   error. *)
let test_mid_stream_error () =
  let path = Filename.temp_file "xut_transport_test" ".sock" in
  Sys.remove path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 1;
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listen_fd in
        (* read the stream request frame *)
        let hdr = Bytes.create Wire.Binary.header_size in
        let rec read_exact b off len =
          if len > 0 then begin
            let n = Unix.read fd b off len in
            if n > 0 then read_exact b (off + n) (len - n)
          end
        in
        read_exact hdr 0 Wire.Binary.header_size;
        (match Wire.Binary.decode_header hdr with
        | Ok { Wire.Binary.id; length; _ } ->
          let p = Bytes.create length in
          read_exact p 0 length;
          let send s = ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s)) in
          send (Wire.Binary.stream_begin_frame ~id);
          send (Wire.Binary.stream_chunk_frame ~id "<r>first");
          send (Wire.Binary.stream_chunk_frame ~id " second");
          send (Wire.Binary.stream_error_frame ~id ~code:Service.Eval_error "engine fell over")
        | Error _ -> ());
        Unix.close fd)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join server;
      Unix.close listen_fd;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cli = Client.connect (Addr.Unix_socket path) in
      Fun.protect
        ~finally:(fun () -> Client.close cli)
        (fun () ->
          let buf = Buffer.create 64 in
          match
            Client.transform_stream cli ~doc:"d" ~engine:Core.Engine.Td_bu ~query:"q"
              (Buffer.add_string buf)
          with
          | Service.Error { code = Service.Eval_error; message } ->
            Alcotest.(check string) "partial output was delivered" "<r>first second"
              (Buffer.contents buf);
            Alcotest.(check string) "error message survives" "engine fell over" message
          | _ -> Alcotest.fail "a mid-stream STREAM_ERROR must surface as an Error"))

(* ---- TCP ---- *)

let test_tcp_roundtrip () =
  with_doc_file (fun doc ->
      let svc = Service.create () in
      let server =
        Server.start ~service:svc (Addr.Tcp { host = "127.0.0.1"; port = 0 })
      in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Service.shutdown svc)
        (fun () ->
          let addr = Server.address server in
          (match addr with
          | Addr.Tcp { port; _ } -> Alcotest.(check bool) "ephemeral port bound" true (port > 0)
          | _ -> Alcotest.fail "expected a TCP address");
          let cli = Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              load_over cli doc;
              match
                Client.call cli
                  (Service.Count { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = q_del_prices })
              with
              | Service.Ok (Service.Element_count 16) -> ()
              | _ -> Alcotest.fail "COUNT over TCP")))

(* DEFVIEW and view-addressed queries over the socket: defined through
   one connection, served composed, byte-identical to the naive
   materialize-then-query answer computed in-process. *)
let test_views_over_socket () =
  let v1_def = {|transform copy $a := doc("d") modify do delete $a//price return $a|} in
  let v2_def =
    {|transform copy $a := doc("v1") modify do rename $a/site/items/item as product return $a|}
  in
  let uq_text = "for $x in site/items/product return $x" in
  with_doc_file (fun doc ->
      with_server (fun svc sock ->
          let cli = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              load_over cli doc;
              (match Client.call cli (Service.Defview { name = "v1"; query = v1_def }) with
              | Service.Ok (Service.View_defined { name = "v1"; base = "d"; depth = 1; _ }) ->
                ()
              | _ -> Alcotest.fail "DEFVIEW v1 over the socket");
              (match Client.call cli (Service.Defview { name = "v2"; query = v2_def }) with
              | Service.Ok (Service.View_defined { name = "v2"; base = "v1"; depth = 2; _ })
                -> ()
              | _ -> Alcotest.fail "DEFVIEW v2 over the socket");
              (* a rejected definition maps to the structured code *)
              (match
                 Client.call cli
                   (Service.Defview
                      {
                        name = "bad";
                        query =
                          {|transform copy $a := doc("d") modify do delete $a/site return $a|};
                      })
               with
              | Service.Error { code = Service.View_compose_error; _ } -> ()
              | _ -> Alcotest.fail "view-compose-error must survive the wire");
              let naive =
                let base = Xut_xml.Dom.parse_string doc_xml in
                let updates =
                  List.map
                    (fun s -> (Core.Transform_parser.parse s).Core.Transform_ast.update)
                    [ v1_def; v2_def ]
                in
                Core.Composition.naive_stack updates (Core.User_query.parse uq_text) ~doc:base
              in
              let expected =
                String.concat "\n"
                  (List.map
                     (fun item ->
                       match item with
                       | Xut_xquery.Xq_value.N n -> Xut_xml.Serialize.to_string n
                       | Xut_xquery.Xq_value.D e -> Xut_xml.Serialize.element_to_string e
                       | other -> Xut_xquery.Xq_value.string_of_item other)
                     naive)
              in
              let req =
                Service.Transform
                  { target = Service.View "v2"; engine = Core.Engine.Td_bu; query = uq_text }
              in
              (match Client.call cli req with
              | Service.Ok (Service.Tree t) ->
                Alcotest.(check string)
                  "TRANSFORM VIEW over the socket byte-identical to naive" expected t
              | _ -> Alcotest.fail "TRANSFORM VIEW over the socket");
              Alcotest.(check bool) "socket response = in-process response" true
                (Client.call cli req = Service.call svc req);
              (match Client.call cli Service.Listviews with
              | Service.Ok (Service.View_list [ a; b ]) ->
                Alcotest.(check string) "v1 listed" "v1" a.Service.v_name;
                Alcotest.(check string) "v2 listed" "v2" b.Service.v_name
              | _ -> Alcotest.fail "LISTVIEWS over the socket");
              let m = Service.metrics svc in
              Alcotest.(check bool) "served composed" true (Metrics.view_hits m > 0);
              Alcotest.(check int) "no fallback" 0 (Metrics.compose_fallbacks m);
              match Client.call cli (Service.Undefview { name = "v2" }) with
              | Service.Ok (Service.View_undefined { name = "v2" }) -> ()
              | _ -> Alcotest.fail "UNDEFVIEW over the socket")))

(* ---- streamed ingest (TRANSFORM-STREAM) ---- *)

let test_ingest_codec () =
  (* line syntax: bare name and DOC-keyword forms address the store,
     FILE addresses a server-side path *)
  (match Wire.Line.decode_incoming "TRANSFORM-STREAM d transform q" with
  | Ok (Wire.Line.Stream_ingest { source = `Doc "d"; query = "transform q" }) -> ()
  | _ -> Alcotest.fail "bare-name ingest parse");
  (match Wire.Line.decode_incoming "TRANSFORM-STREAM DOC FILE transform q" with
  | Ok (Wire.Line.Stream_ingest { source = `Doc "FILE"; query = _ }) -> ()
  | _ -> Alcotest.fail "DOC keyword keeps \"FILE\" addressable as a name");
  (match Wire.Line.decode_incoming "TRANSFORM-STREAM FILE /tmp/x.xml transform q" with
  | Ok (Wire.Line.Stream_ingest { source = `File "/tmp/x.xml"; query = _ }) -> ()
  | _ -> Alcotest.fail "FILE ingest parse");
  (match Wire.Line.decode_incoming "STATS" with
  | Ok (Wire.Line.Plain Service.Stats) -> ()
  | _ -> Alcotest.fail "plain requests pass through decode_incoming");
  List.iter
    (fun line ->
      match Wire.Line.decode_incoming line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("should not parse: " ^ line))
    [ "TRANSFORM-STREAM"; "TRANSFORM-STREAM d"; "TRANSFORM-STREAM FILE /x" ];
  (* decode_request refuses the verb with a pointer at decode_incoming *)
  (match Wire.Line.decode_request "TRANSFORM-STREAM d transform q" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decode_request must not accept TRANSFORM-STREAM");
  (* binary codec round trips, both source shapes *)
  List.iter
    (fun ir ->
      match
        Wire.Binary.decode_incoming ~version:2 (Wire.Binary.encode_ingest_request ir)
      with
      | Ok (Wire.Binary.Ingest ir') ->
        Alcotest.(check bool) "ingest request round trips" true (ir' = ir)
      | Ok _ -> Alcotest.fail "wrong incoming shape"
      | Error e -> Alcotest.fail e)
    [
      { Wire.Binary.source = Wire.Binary.Ingest_doc "d"; query = q_del_prices;
        chunk_size = 64 };
      { Wire.Binary.source = Wire.Binary.Ingest_file "/tmp/some file.xml";
        query = "transform q"; chunk_size = 65536 };
    ];
  (* a v1 peer gets a clean error, not a misparse *)
  (match
     Wire.Binary.decode_incoming ~version:1
       (Wire.Binary.encode_ingest_request
          { Wire.Binary.source = Wire.Binary.Ingest_doc "d"; query = "q"; chunk_size = 64 })
   with
  | Error msg ->
    Alcotest.(check bool) "v1 rejection names the version" true
      (String.split_on_char ' ' msg |> List.exists (fun w -> w = "version"))
  | Ok _ -> Alcotest.fail "ingest payloads must be v2-only");
  (* schema-dropped notices: reason byte 4 round trips and renders *)
  let n = { Wire.Binary.doc = "d"; reason = Wire.Binary.Schema_dropped; generation = 9 } in
  (match Wire.Binary.decode_notice (Wire.Binary.encode_notice n) with
  | Ok n' -> Alcotest.(check bool) "schema-dropped round trips" true (n' = n)
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "render: schema-dropped" "NOTICE schema-dropped d generation=9"
    (Wire.Binary.render_notice n);
  (* a committed event with the drop flag fans out into two notices *)
  let ev ~dropped =
    { Doc_store.name = "d"; root_id = 1; generation = 3; reason = Doc_store.Committed;
      repair = None; schema = None; schema_dropped = dropped }
  in
  (match Wire.Binary.notices_of_event (ev ~dropped:true) with
  | [ { Wire.Binary.reason = Wire.Binary.Committed; _ };
      { Wire.Binary.reason = Wire.Binary.Schema_dropped; doc = "d"; generation = 3 } ] -> ()
  | _ -> Alcotest.fail "drop events must carry the extra schema-dropped notice");
  match Wire.Binary.notices_of_event (ev ~dropped:false) with
  | [ { Wire.Binary.reason = Wire.Binary.Committed; _ } ] -> ()
  | _ -> Alcotest.fail "ordinary commits push exactly one notice"

let test_ingest_over_socket () =
  with_doc_file (fun doc ->
      with_server (fun svc sock ->
          let cli = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              load_over cli doc;
              let ingest source q =
                let buf = Buffer.create 256 in
                match
                  Client.transform_ingest cli ~source ~query:q ~chunk_size:32
                    (Buffer.add_string buf)
                with
                | Service.Ok (Service.Stream_done { bytes; chunks }) ->
                  Alcotest.(check int) "byte total" (Buffer.length buf) bytes;
                  Alcotest.(check bool) "chunked at size 32" true (chunks > 1);
                  Buffer.contents buf
                | Service.Ok _ -> Alcotest.fail "expected Stream_done"
                | Service.Error { message; _ } -> Alcotest.fail message
              in
              (* every test query, both source shapes, byte-identical to
                 the materialized engine answer — including the
                 qualifier-carrying shape the classifier must bounce to
                 the fallback path *)
              List.iter
                (fun q ->
                  let expected = reference_answer Core.Engine.Gentop q in
                  Alcotest.(check string) "doc ingest = materialized" expected
                    (ingest (Wire.Binary.Ingest_doc "d") q);
                  Alcotest.(check string) "file ingest = materialized" expected
                    (ingest (Wire.Binary.Ingest_file doc) q))
                queries;
              let m = Service.metrics svc in
              Alcotest.(check int) "qualifier-free shapes ran fused" 4
                (Metrics.streams_fused m);
              Alcotest.(check int) "qualifier shapes fell back, counted" 2
                (Metrics.stream_fallbacks m);
              (* unknown document: typed error, no chunks *)
              (match
                 Client.transform_ingest cli ~source:(Wire.Binary.Ingest_doc "nope")
                   ~query:q_del_prices
                   (fun _ -> Alcotest.fail "no chunks for an unknown document")
               with
              | Service.Error { code = Service.Unknown_document; _ } -> ()
              | _ -> Alcotest.fail "unknown-document code");
              (* missing file: typed error, no chunks *)
              match
                Client.transform_ingest cli
                  ~source:(Wire.Binary.Ingest_file "/nonexistent/nope.xml")
                  ~query:q_del_prices
                  (fun _ -> Alcotest.fail "no chunks for a missing file")
              with
              | Service.Error { code = Service.Eval_error; _ } -> ()
              | _ -> Alcotest.fail "missing-file code")))

(* A v1-framed ingest payload is answered with a clean bad-request
   naming the version requirement, exactly like v1-framed stream
   requests. *)
let test_ingest_v1_rejected () =
  with_server (fun _svc sock ->
      let fd = raw_connect sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let p =
            Wire.Binary.encode_ingest_request
              { Wire.Binary.source = Wire.Binary.Ingest_doc "d"; query = q_del_prices;
                chunk_size = 64 }
          in
          raw_write fd
            (Bytes.to_string
               (Wire.Binary.encode_header
                  { Wire.Binary.version = 1; kind = Wire.Binary.Request; id = 31L;
                    length = String.length p })
            ^ p);
          let hdr = Bytes.create Wire.Binary.header_size in
          let rec read_exact b off len =
            if len > 0 then begin
              let n = Unix.read fd b off len in
              if n > 0 then read_exact b (off + n) (len - n)
            end
          in
          read_exact hdr 0 Wire.Binary.header_size;
          match Wire.Binary.decode_header hdr with
          | Ok { Wire.Binary.version = 1; id = 31L; length; _ } -> begin
            let pl = Bytes.create length in
            read_exact pl 0 length;
            match Wire.Binary.decode_response (Bytes.unsafe_to_string pl) with
            | Ok (Service.Error { code = Service.Bad_request; message }) ->
              Alcotest.(check bool) "names the version requirement" true
                (String.split_on_char ' ' message |> List.exists (fun w -> w = "version"))
            | _ -> Alcotest.fail "v1-framed ingest must answer bad-request"
          end
          | _ -> Alcotest.fail "rejection must echo a v1 response header"))

(* Malformed input failing MID-parse, over the real socket: the fused
   pipeline has already shipped chunks when the parser trips, so the
   client sees partial output then a STREAM_ERROR — and the connection
   stays usable. *)
let test_ingest_malformed_midparse () =
  with_server (fun _svc sock ->
      let bad = Filename.temp_file "xut_transport_bad" ".xml" in
      Out_channel.with_open_bin bad (fun oc ->
          Out_channel.output_string oc "<site><open>";
          for _ = 1 to 2000 do
            Out_channel.output_string oc "<b>x</b>"
          done;
          Out_channel.output_string oc "</mismatch></site>");
      Fun.protect
        ~finally:(fun () -> Sys.remove bad)
        (fun () ->
          let cli = Client.connect (Addr.Unix_socket sock) in
          Fun.protect
            ~finally:(fun () -> Client.close cli)
            (fun () ->
              let got = ref 0 in
              (match
                 Client.transform_ingest cli ~source:(Wire.Binary.Ingest_file bad)
                   ~query:q_del_prices ~chunk_size:64
                   (fun chunk -> got := !got + String.length chunk)
               with
              | Service.Error { code = Service.Eval_error; message } ->
                Alcotest.(check bool) "chunks flowed before the parse error" true (!got > 0);
                Alcotest.(check bool) "the error names the parse position" true
                  (String.split_on_char ' ' message |> List.exists (fun w -> w = "parse"))
              | _ -> Alcotest.fail "mid-parse failure must surface as a stream error");
              (* the connection survived: frames are still aligned *)
              match Client.call cli Service.Stats with
              | Service.Ok (Service.Stats_dump _) -> ()
              | _ -> Alcotest.fail "the connection must stay usable after the error")))

(* A nonconforming COMMIT drops the schema binding loudly: subscribed
   clients get the committed notice plus the schema-dropped one. *)
let test_schema_drop_notice () =
  Xut_xmark.Site_schema.register ();
  let doc = Filename.temp_file "xut_transport_xmark" ".xml" in
  Xut_xmark.Generator.to_file ~factor:0.001 doc;
  Fun.protect
    ~finally:(fun () -> Sys.remove doc)
    (fun () ->
      with_server (fun svc sock ->
          let notices = ref [] in
          let sub =
            Client.connect ~on_notice:(fun n -> notices := n :: !notices)
              (Addr.Unix_socket sock)
          in
          Fun.protect
            ~finally:(fun () -> Client.close sub)
            (fun () ->
              (match
                 Client.call sub (Service.Load { name = "d"; file = doc; schema = Some "xmark" })
               with
              | Service.Ok (Service.Doc_loaded { schema = Some "xmark"; _ }) -> ()
              | _ -> Alcotest.fail "LOAD ... SCHEMA over the socket");
              (match
                 Client.call sub
                   (Service.Commit { doc = "d"; query = "insert <bogus>1</bogus> into $a/site" })
               with
              | Service.Ok (Service.Committed _) -> ()
              | _ -> Alcotest.fail "the nonconforming COMMIT itself must succeed");
              (match Client.call sub Service.Stats with
              | Service.Ok (Service.Stats_dump dump) ->
                Alcotest.(check bool) "counter in STATS" true
                  (String.split_on_char '\n' dump
                  |> List.exists (fun l -> l = "schema_bindings_dropped 1"))
              | _ -> Alcotest.fail "STATS after the commit");
              (match List.rev !notices with
              | [ { Wire.Binary.reason = Wire.Binary.Committed; doc = "d"; _ };
                  { Wire.Binary.reason = Wire.Binary.Schema_dropped; doc = "d"; _ } ] -> ()
              | l ->
                Alcotest.fail
                  (Printf.sprintf "expected [committed; schema-dropped], got %d: %s"
                     (List.length l)
                     (String.concat "; " (List.map Wire.Binary.render_notice l))));
              Alcotest.(check int) "metrics count the drop" 1
                (Metrics.schema_bindings_dropped (Service.metrics svc));
              match Doc_store.info (Service.store svc) "d" with
              | Some { Doc_store.schema = None; _ } -> ()
              | _ -> Alcotest.fail "the binding must have lost its schema")))

(* The desync fix: a timeout at a frame boundary is survivable, a
   timeout after partial frame progress is not — the client must close
   the connection and fail fast instead of misparsing leftover bytes. *)
let test_client_dead_after_midframe_timeout () =
  let path = Filename.temp_file "xut_transport_test" ".sock" in
  Sys.remove path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 1;
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listen_fd in
        let hdr = Bytes.create Wire.Binary.header_size in
        let rec read_exact b off len =
          if len > 0 then begin
            let n = Unix.read fd b off len in
            if n > 0 then read_exact b (off + n) (len - n)
          end
        in
        let eat_request () =
          read_exact hdr 0 Wire.Binary.header_size;
          match Wire.Binary.decode_header hdr with
          | Ok { Wire.Binary.length; _ } ->
            let p = Bytes.create length in
            read_exact p 0 length
          | Error _ -> ()
        in
        (* requests 1 and 2: no response at all (boundary timeouts) *)
        eat_request ();
        eat_request ();
        (* request 3: half a header, then silence (mid-frame timeout) *)
        eat_request ();
        ignore (Unix.write fd (Bytes.make 8 '\000') 0 8);
        Thread.delay 1.0;
        (try Unix.close fd with Unix.Unix_error _ -> ()))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join server;
      Unix.close listen_fd;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cli = Client.connect ~timeout:0.25 (Addr.Unix_socket path) in
      let expect_timeout label =
        match Client.call cli Service.Stats with
        | exception Client.Transport_error msg ->
          Alcotest.(check bool) (label ^ ": a boundary timeout, not a dead connection")
            false
            (String.split_on_char ' ' msg |> List.exists (fun w -> w = "dead"))
        | _ -> Alcotest.fail (label ^ ": the server never answers")
      in
      (* boundary timeouts leave the connection usable: the second call
         still reaches the wire instead of failing fast *)
      expect_timeout "call 1";
      expect_timeout "call 2";
      (* the third read strands mid-header: the client must kill the
         connection rather than leave 8 stale bytes in the stream *)
      (match Client.call cli Service.Stats with
      | exception Client.Transport_error msg ->
        Alcotest.(check bool) "mid-frame timeout names the desync" true
          (String.split_on_char ' ' msg |> List.exists (fun w -> w = "mid-frame:"))
      | _ -> Alcotest.fail "the half-written frame must not parse");
      (* every further operation fails fast, before touching the wire *)
      (match Client.call cli Service.Stats with
      | exception Client.Transport_error msg ->
        Alcotest.(check bool) "dead connections fail fast" true
          (String.split_on_char ' ' msg |> List.exists (fun w -> w = "dead"))
      | _ -> Alcotest.fail "a dead connection must not accept requests");
      (* close after kill is a no-op, not a double-close *)
      Client.close cli)

let suite =
  [
    Alcotest.test_case "wire: line protocol" `Quick test_line_protocol;
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_header_roundtrip;
    Alcotest.test_case "wire: header validation" `Quick test_header_validation;
    Alcotest.test_case "socket: round trip matches in-process" `Quick
      test_socket_matches_in_process;
    Alcotest.test_case "socket: 4 concurrent clients" `Quick test_socket_concurrent_clients;
    Alcotest.test_case "socket: malformed frame" `Quick test_malformed_frame;
    Alcotest.test_case "socket: oversized frame" `Quick test_oversized_frame;
    Alcotest.test_case "socket: truncated frame" `Quick test_truncated_frame;
    Alcotest.test_case "socket: bad payload keeps the connection" `Quick
      test_bad_payload_keeps_connection;
    Alcotest.test_case "socket: error-code mapping" `Quick test_error_codes_over_socket;
    Alcotest.test_case "socket: batch round trip" `Quick test_batch_over_socket;
    Alcotest.test_case "socket: BUSY at the connection limit" `Quick test_busy_rejection;
    Alcotest.test_case "wire: stream frame codecs" `Quick test_stream_frame_codecs;
    Alcotest.test_case "socket: streamed transform reassembles" `Quick test_stream_over_socket;
    Alcotest.test_case "socket: stream error before chunks" `Quick test_stream_unknown_document;
    Alcotest.test_case "socket: v1 client fallback" `Quick test_v1_client_fallback;
    Alcotest.test_case "wire: notice codec" `Quick test_notice_codec;
    Alcotest.test_case "socket: invalidation notices" `Quick test_notice_over_socket;
    Alcotest.test_case "socket: APPLY/COMMIT write path" `Quick test_commit_over_socket;
    Alcotest.test_case "socket: mid-stream error frame" `Quick test_mid_stream_error;
    Alcotest.test_case "tcp: round trip on an ephemeral port" `Quick test_tcp_roundtrip;
    Alcotest.test_case "socket: DEFVIEW and view queries" `Quick test_views_over_socket;
    Alcotest.test_case "wire: ingest codecs (line + binary + notices)" `Quick
      test_ingest_codec;
    Alcotest.test_case "socket: streamed ingest reassembles" `Quick test_ingest_over_socket;
    Alcotest.test_case "socket: v1-framed ingest rejected cleanly" `Quick
      test_ingest_v1_rejected;
    Alcotest.test_case "socket: malformed input mid-parse" `Quick
      test_ingest_malformed_midparse;
    Alcotest.test_case "socket: schema-dropped notice on commit" `Quick
      test_schema_drop_notice;
    Alcotest.test_case "client: dead after mid-frame timeout" `Quick
      test_client_dead_after_midframe_timeout;
  ]
