(* Property-based tests: random documents and random X expressions,
   checking the cross-engine equivalences that the unit suites check on
   fixed examples. *)
open Xut_xml
open Xut_xpath
open Core

let labels = [| "a"; "b"; "c"; "d"; "e" |]
let texts = [| "A"; "B"; "10"; "20"; "3.5" |]

(* ---------------- generators ---------------- *)

let gen_label = QCheck2.Gen.oneofa labels
let gen_text = QCheck2.Gen.oneofa texts

(* adjacent text nodes do not roundtrip through serialization: merge *)
let rec coalesce_text = function
  | Node.Text a :: Node.Text b :: rest -> coalesce_text (Node.Text (a ^ b) :: rest)
  | x :: rest -> x :: coalesce_text rest
  | [] -> []

let gen_tree : Node.t QCheck2.Gen.t =
  QCheck2.Gen.sized_size (QCheck2.Gen.int_range 1 60)
  @@ QCheck2.Gen.fix (fun self size ->
         let open QCheck2.Gen in
         if size <= 1 then map Node.text gen_text
         else
           let* name = gen_label in
           let* n_children = int_range 0 (min 4 size) in
           let* attrs =
             frequency
               [ (3, return []); (1, map (fun v -> [ ("id", v) ]) gen_text) ]
           in
           let* children = list_repeat n_children (self (size / (max 1 n_children))) in
           return (Node.elem ~attrs name (coalesce_text children)))

let gen_root : Node.element QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* kids = list_size (int_range 1 4) gen_tree in
  return (Node.element "r" (coalesce_text kids))

let gen_cmp = QCheck2.Gen.oneofa [| Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |]

let gen_value =
  QCheck2.Gen.oneof
    [ QCheck2.Gen.map (fun s -> Ast.V_str s) gen_text;
      QCheck2.Gen.map (fun f -> Ast.V_num (float_of_int f)) (QCheck2.Gen.int_range 0 25) ]

let rec gen_qual depth : Ast.qual QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map (fun p -> Ast.Q_exists (Ast.path_source p)) (gen_path_simple 2);
        (let* p = gen_path_simple 2 in
         let* op = gen_cmp in
         let* v = gen_value in
         return (Ast.Q_cmp (Ast.path_source p, op, v)));
        map (fun l -> Ast.Q_label l) gen_label;
        (let* op = gen_cmp in
         let* v = gen_value in
         return (Ast.Q_cmp (Ast.self_source, op, v)));
        map (fun v -> Ast.Q_cmp (Ast.attr_source "id", Ast.Eq, Ast.V_str v)) gen_text ]
  in
  if depth <= 0 then leaf
  else
    frequency
      [ (4, leaf);
        (1, map2 (fun a b -> Ast.Q_and (a, b)) (gen_qual (depth - 1)) (gen_qual (depth - 1)));
        (1, map2 (fun a b -> Ast.Q_or (a, b)) (gen_qual (depth - 1)) (gen_qual (depth - 1)));
        (1, map (fun a -> Ast.Q_not a) (gen_qual (depth - 1))) ]

and gen_path_simple len : Ast.path QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 len in
  let step _ =
    let* nav =
      frequency
        [ (4, map (fun l -> Ast.Label l) gen_label); (1, return Ast.Wildcard);
          (1, return Ast.Descendant) ]
    in
    match nav with
    | Ast.Descendant ->
      let* l = gen_label in
      return [ Ast.step Ast.Descendant; Ast.step (Ast.Label l) ]
    | nav -> return [ Ast.step nav ]
  in
  let* stepss = flatten_l (List.init n step) in
  return (List.concat stepss)

let gen_path : Ast.path QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* base = gen_path_simple 3 in
  let* with_qual = bool in
  if with_qual then
    let* q = gen_qual 1 in
    let* pos = int_range 0 (List.length base - 1) in
    return
      (List.mapi (fun i (s : Ast.step) -> if i = pos && s.nav <> Ast.Descendant then { s with quals = q :: s.quals } else s) base)
  else return base

let gen_update : Transform_ast.update QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* path = gen_path in
  let enew = Node.elem "new" [ Node.text "X" ] in
  oneof
    [ return (Transform_ast.Delete path);
      return (Transform_ast.Insert (path, enew));
      return (Transform_ast.Insert_first (path, enew));
      return (Transform_ast.Replace (path, enew));
      return (Transform_ast.Rename (path, "renamed")) ]

(* ---------------- properties ---------------- *)

let engines = Engine.[ Naive; Gentop; Td_bu; Two_pass_sax; Galax_update ]

let count = 300

let prop_engines_agree =
  QCheck2.Test.make ~name:"all engines = reference on random input" ~count
    QCheck2.Gen.(pair gen_root gen_update)
    (fun (root, update) ->
      match Engine.transform Engine.Reference update root with
      | exception Transform_ast.Invalid_update _ ->
        (* all engines must reject it the same way *)
        List.for_all
          (fun algo ->
            match Engine.transform algo update root with
            | exception Transform_ast.Invalid_update _ -> true
            | _ -> false)
          engines
      | expected ->
        List.for_all
          (fun algo -> Node.equal_element expected (Engine.transform algo update root))
          engines)

let prop_transform_non_destructive =
  QCheck2.Test.make ~name:"transform queries never touch the store" ~count
    QCheck2.Gen.(pair gen_root gen_update)
    (fun (root, update) ->
      let before = Serialize.element_to_string root in
      (try ignore (Engine.transform Engine.Gentop update root)
       with Transform_ast.Invalid_update _ -> ());
      String.equal before (Serialize.element_to_string root))

let prop_nfa_equals_eval =
  QCheck2.Test.make ~name:"NFA selection = direct evaluator" ~count
    QCheck2.Gen.(pair gen_root gen_path)
    (fun (root, path) ->
      let expected = List.map Node.id (Eval.select_doc root path) |> List.sort compare in
      let nfa = Xut_automata.Selecting_nfa.of_path path in
      let acc = ref [] in
      let cp s n = Eval.check_qual n (Xut_automata.Selecting_nfa.state_qual nfa s) in
      let rec go e states =
        let states' =
          Xut_automata.Selecting_nfa.next_states nfa ~checkp:(fun s -> cp s e) states (Node.name e)
        in
        if states' <> [] then begin
          if Xut_automata.Selecting_nfa.accepts nfa states' then acc := Node.id e :: !acc;
          List.iter (fun c -> go c states') (Node.child_elements e)
        end
      in
      go root (Xut_automata.Selecting_nfa.start_set nfa);
      List.sort compare !acc = expected)

let prop_annotator_equals_direct =
  QCheck2.Test.make ~name:"annotated checkp = direct checkp where needed" ~count
    QCheck2.Gen.(pair gen_root gen_path)
    (fun (root, path) ->
      (* the annotated oracle must give the same selection as the direct
         one (it is only defined at nodes the filtering keeps alive) *)
      let u = Transform_ast.Rename (path, "z") in
      match Engine.transform Engine.Reference u root with
      | exception Transform_ast.Invalid_update _ -> true
      | expected ->
        Node.equal_element expected (Engine.transform Engine.Td_bu u root))

(* ---- streaming result path: chunked bytes = materialized bytes ---- *)

(* Drive a serializer sink with a tiny chunk size (so every run crosses
   many chunk boundaries) and return the reassembled bytes; a rejected
   update (root deletion/replacement) is the [Error] case and must match
   the materialized engines raising [Invalid_update]. *)
let stream_to_string ?(chunk_size = 7) drive =
  let buf = Buffer.create 64 in
  let sink = Serialize.Sink.create ~chunk_size (Buffer.add_string buf) in
  match drive (Serialize.Sink.event sink) with
  | () ->
    ignore (Serialize.Sink.close sink : Serialize.Sink.totals);
    Ok (Buffer.contents buf)
  | exception Transform_ast.Invalid_update _ ->
    Serialize.Sink.abort sink;
    Error `Invalid

let prop_stream_equals_materialized =
  QCheck2.Test.make ~name:"streamed bytes = materialized serialization" ~count
    QCheck2.Gen.(pair gen_root gen_update)
    (fun (root, update) ->
      let nfa = Xut_automata.Selecting_nfa.of_path (Transform_ast.path update) in
      let expected =
        match Engine.transform Engine.Reference update root with
        | exception Transform_ast.Invalid_update _ -> Error `Invalid
        | out -> Ok (Serialize.element_to_string out)
      in
      let drivers =
        [ (fun events -> Top_down.stream nfa update root events);
          (fun events ->
            let table = Xut_automata.Annotator.annotate nfa root in
            Top_down.stream
              ~checkp:(Xut_automata.Annotator.checkp table nfa)
              nfa update root events);
          (fun events ->
            ignore
              (Sax_transform.run nfa update ~source:(Sax.events_of_tree root) ~sink:events))
        ]
      in
      List.for_all (fun drive -> stream_to_string drive = expected) drivers)

let prop_serialize_roundtrip =
  QCheck2.Test.make ~name:"parse(serialize(t)) = t" ~count gen_root (fun root ->
      let s = Serialize.element_to_string root in
      Node.equal_element root (Dom.parse_string s))

let prop_path_print_parse =
  QCheck2.Test.make ~name:"path parse(print(p)) = p" ~count gen_path (fun path ->
      Ast.equal_path path (Parser.parse (Ast.path_to_string path)))

let prop_update_print_parse =
  QCheck2.Test.make ~name:"update parse(print(u)) = u" ~count gen_update (fun u ->
      let q = Transform_ast.make ~doc:"d" u in
      let q' = Transform_parser.parse (Transform_ast.to_string q) in
      Transform_ast.to_string q = Transform_ast.to_string q')

let prop_xquery_rewrite =
  QCheck2.Test.make ~name:"Fig. 2 rewriting = native" ~count:150
    QCheck2.Gen.(pair gen_root gen_update)
    (fun (root, update) ->
      let q = Transform_ast.make ~doc:"d" update in
      match Engine.transform Engine.Reference update root with
      | exception Transform_ast.Invalid_update _ -> true
      | expected -> (
        match Xquery_rewrite.run q ~doc:root with
        | exception Xut_xquery.Xq_eval.Eval_error _ -> false
        | got -> Node.equal_element expected got))

let gen_user_query : User_query.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* source = gen_path in
  let* hole = gen_path_simple 2 in
  let* shape = int_range 0 2 in
  let template =
    match shape with
    | 0 -> User_query.T_hole ([], None)
    | 1 -> User_query.T_elem ("out", [], [ User_query.T_hole (hole, None) ])
    | _ ->
      User_query.T_elem ("out", [], [ User_query.T_text "v:"; User_query.T_hole (hole, None) ])
  in
  let* conds =
    frequency
      [ (2, return []);
        (1,
         let* p = gen_path_simple 2 in
         let* v = gen_value in
         return [ { User_query.left = User_query.Rel (p, None); op = Ast.Eq; right = User_query.Const v } ])
      ]
  in
  return (User_query.make ~conds ~source template)

(* all five kinds compose now; the inserted/replacement element reuses
   generator labels so that relabeling can create new matches *)
let gen_compose_update : Transform_ast.update QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* path = gen_path in
  let* label = gen_label in
  let enew = Node.elem label [ Node.text "X" ] in
  oneof
    [ return (Transform_ast.Delete path); return (Transform_ast.Insert (path, enew));
      return (Transform_ast.Insert_first (path, enew));
      return (Transform_ast.Replace (path, enew));
      return (Transform_ast.Rename (path, label)) ]

let value_repr v =
  List.map
    (fun item ->
      match item with
      | Xut_xquery.Xq_value.N n -> Serialize.to_string n
      | Xut_xquery.Xq_value.D e -> Serialize.element_to_string e
      | other -> Xut_xquery.Xq_value.string_of_item other)
    v

let prop_compose_equals_spec =
  QCheck2.Test.make ~name:"Qc(T) = Q(Qt(T)) on random pairs" ~count:300
    QCheck2.Gen.(triple gen_root gen_compose_update gen_user_query)
    (fun (root, update, uq) ->
      match Engine.transform Engine.Reference update root with
      | exception Transform_ast.Invalid_update _ -> true
      | transformed -> (
        let expected = value_repr (User_query.run uq ~doc:transformed) in
        match Composition.compose update uq with
        | Error _ -> true  (* out of fragment: nothing to check *)
        | Ok c -> value_repr (Composition.run_composed c ~doc:root) = expected))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_engines_agree;
      prop_transform_non_destructive;
      prop_nfa_equals_eval;
      prop_annotator_equals_direct;
      prop_stream_equals_materialized;
      prop_serialize_roundtrip;
      prop_path_print_parse;
      prop_update_print_parse;
      prop_xquery_rewrite;
      prop_compose_equals_spec ]

(* ---------------- XQuery printer/parser ---------------- *)

let gen_xq_expr : Xut_xquery.Xq_ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Xut_xquery.Xq_ast in
  let leaf =
    oneof
      [ map (fun s -> Str s) gen_text;
        map (fun n -> Num (float_of_int n)) (int_range 0 99);
        return (Var "v");
        return Context;
        map (fun p -> Path (Var "v", p)) (gen_path_simple 2);
        map (fun p -> Path (Context, p)) (gen_path_simple 2);
        map (fun a -> AttrPath (Var "v", [], a)) gen_label;
        return Empty ]
  in
  let gen =
    fix (fun self depth ->
        if depth <= 0 then leaf
        else
          let sub = self (depth - 1) in
          frequency
            [ (4, leaf);
              (2, map2 (fun a b -> Cmp (Eq, a, b)) sub sub);
              (1, map2 (fun a b -> Cmp (Lt, a, b)) sub sub);
              (1, map2 (fun a b -> Arith (Add, a, b)) sub sub);
              (1, map2 (fun a b -> Arith (Mul, a, b)) sub sub);
              (2, map2 (fun a b -> And (a, b)) sub sub);
              (1, map2 (fun a b -> Or (a, b)) sub sub);
              (1, map (fun a -> Call ("not", [ a ])) sub);
              (1, map (fun a -> Call ("count", [ a ])) sub);
              (2, map3 (fun c t e -> If (c, t, e)) sub sub sub);
              (2,
               let* src = sub and* body = sub and* w = option sub in
               return (Flwor ([ For ("v", src) ], w, body)));
              (1,
               let* bound = sub and* body = sub in
               return (Flwor ([ LetC ("v", bound) ], None, body)));
              (1, map2 (fun s b -> Quant (`Some, "v", s, b)) sub sub);
              (1,
               let* kids = list_size (int_range 0 2) sub in
               return (ElemLit ("w", [], kids)));
              (1, map (fun a -> ElemDyn (Str "w", a)) sub) ])
  in
  gen 3

let prop_xquery_print_parse =
  QCheck2.Test.make ~name:"xquery parse(print(e)) evaluates identically" ~count:400 gen_xq_expr
    (fun e ->
      let printed = Xut_xquery.Xq_ast.to_string e in
      match Xut_xquery.Xq_parser.parse_expr printed with
      | exception Xut_xquery.Xq_parser.Parse_error _ -> false
      | e2 ->
        (* ASTs may differ in shape (Seq nesting); compare by evaluation *)
        let root = Dom.parse_string "<r><a>1</a><b x=\"2\">two</b><a>3</a></r>" in
        let env = Xut_xquery.Xq_eval.env ~context:root () in
        let env = ref env in
        ignore env;
        let eval_repr ex =
          let base = Xut_xquery.Xq_eval.env ~context:root () in
          match
            Xut_xquery.Xq_eval.eval_expr base
              (Xut_xquery.Xq_ast.Flwor
                 ( [ Xut_xquery.Xq_ast.LetC ("v", Xut_xquery.Xq_ast.Path (Xut_xquery.Xq_ast.Context, Parser.parse "r/a")) ],
                   None,
                   ex ))
          with
          | v ->
            Ok
              (List.map
                 (fun item ->
                   match item with
                   | Xut_xquery.Xq_value.N n -> Serialize.to_string n
                   | other -> Xut_xquery.Xq_value.string_of_item other)
                 v)
          | exception Xut_xquery.Xq_eval.Eval_error m -> Error ("eval: " ^ m)
          | exception Xut_xquery.Xq_value.Type_error m -> Error ("type: " ^ m)
        in
        eval_repr e = eval_repr e2)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_xquery_print_parse ]
