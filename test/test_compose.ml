open Xut_xml
open Core
open Xut_xquery

let parse_path = Xut_xpath.Parser.parse

(* Results compared after serialization: constructed elements get fresh
   ids, so structural comparison is what matters. *)
let value_repr (v : Xq_value.t) : string list =
  List.map
    (fun item ->
      match item with
      | Xq_value.N n -> Serialize.to_string n
      | Xq_value.D e -> Serialize.element_to_string e
      | other -> Xq_value.string_of_item other)
    v

let check_equiv ?(doc = Fixtures.parts_doc ()) name update uq =
  (* the specification: evaluate Q on reference-Qt(T) *)
  let expected =
    let t' = Engine.transform Engine.Reference update doc in
    value_repr (User_query.run uq ~doc:t')
  in
  let composed =
    match Composition.compose update uq with
    | Ok c -> c
    | Error m -> Alcotest.fail (name ^ ": did not compose: " ^ m)
  in
  let got = value_repr (Composition.run_composed composed ~doc) in
  Alcotest.(check (list string)) (name ^ " compose = spec") expected got;
  let naive = value_repr (Composition.naive update uq ~doc) in
  Alcotest.(check (list string)) (name ^ " naive = spec") expected naive

let supplier_e =
  Node.elem "supplier" [ Node.elem "sname" [ Node.text "HP" ] ]

(* Example 4.1 / 4.2: security view deleting suppliers from country A,
   user asks for the keyboard part's suppliers. *)
let test_example_4_2 () =
  let update = Transform_ast.Delete (parse_path "//supplier[country = \"A\"]") in
  let uq = User_query.parse "for $x in db/part[pname = \"keyboard\"]/supplier return $x" in
  check_equiv "Ex 4.2" update uq;
  (* the deleted supplier (HP, country A) must be gone from the answer *)
  let out = Composition.run update uq ~doc:(Fixtures.parts_doc ()) in
  Alcotest.(check int) "one supplier left" 1 (List.length out)

(* Example 4.3, pair (Q1, Q'1): delete a/b[q]; user a/b/c. *)
let test_example_4_3_q1 () =
  let doc =
    Dom.parse_string
      "<a><b><q/><c>one</c></b><b><c>two</c></b><b><q/><c>three</c></b></a>"
  in
  let update = Transform_ast.Delete (parse_path "a/b[q]") in
  let uq = User_query.parse "for $x in a/b/c return $x" in
  check_equiv ~doc "Ex 4.3 Q1" update uq;
  let got = value_repr (Composition.run update uq ~doc) in
  Alcotest.(check (list string)) "only unguarded b survives" [ "<c>two</c>" ] got

(* Example 4.3, pair (Q2, Q'2): delete a/b/c; user a/b[not(./c = 'A')]. *)
let test_example_4_3_q2 () =
  let doc = Dom.parse_string "<a><b><c>A</c><d/></b><b><c>B</c></b></a>" in
  let update = Transform_ast.Delete (parse_path "a/b/c") in
  let uq = User_query.parse "for $x in a/b[not(c = \"A\")] return $x" in
  check_equiv ~doc "Ex 4.3 Q2" update uq;
  (* after the delete no b has a c child, so both b's qualify *)
  let got = Composition.run update uq ~doc in
  Alcotest.(check int) "both b's" 2 (List.length got)

(* Example 4.3, pair (Q3, Q'3): insert e into a//c; user a/b. *)
let test_example_4_3_q3 () =
  let doc = Dom.parse_string "<a><b><c/><x><c/></x></b><b/></a>" in
  let update = Transform_ast.Insert (parse_path "a//c", Node.elem "e" []) in
  let uq = User_query.parse "for $x in a/b return $x" in
  check_equiv ~doc "Ex 4.3 Q3" update uq;
  let got = value_repr (Composition.run update uq ~doc) in
  Alcotest.(check (list string)) "insertions visible inside $x"
    [ "<b><c><e/></c><x><c><e/></c></x></b>"; "<b/>" ]
    got

let test_disjoint_pair_has_no_runtime_helper () =
  (* U9-style insert into regions, user query over people: the composed
     query must not contain any runtime topDown call. *)
  let update =
    Transform_ast.Insert (parse_path "site/regions//item[location = \"United States\"]", supplier_e)
  in
  let uq = User_query.parse "for $x in site/people/person return $x/name" in
  match Composition.compose update uq with
  | Error m -> Alcotest.fail m
  | Ok c ->
    Alcotest.(check int) "no natives registered" 0 (Composition.native_count c);
    let doc = Xut_xmark.Generator.generate ~factor:0.002 () in
    check_equiv ~doc "disjoint pair" update uq

let test_matrix_on_parts () =
  let updates =
    [ Transform_ast.Delete (parse_path "//supplier[country = \"A\"]");
      Transform_ast.Delete (parse_path "//price");
      Transform_ast.Delete (parse_path "db/part/part");
      Transform_ast.Insert (parse_path "//part[pname = \"keyboard\"]", supplier_e);
      Transform_ast.Insert (parse_path "//supplier", Node.elem "verified" []);
      Transform_ast.Insert (parse_path "db/part", supplier_e);
      Transform_ast.Insert_first (parse_path "//part", supplier_e);
      Transform_ast.Delete (parse_path "db/nosuch") ]
  in
  let queries =
    [ "for $x in db/part return $x/pname";
      "for $x in db/part/supplier return $x";
      "for $x in db//supplier return $x/sname";
      "for $x in db/part where $x/supplier/price > 20 return $x/pname";
      "for $x in db/part[supplier/country = \"B\"] return $x";
      "for $x in db//part return <p>{$x/pname}{$x/supplier}</p>";
      "for $x in db/part return $x" ]
  in
  List.iter
    (fun u ->
      List.iter
        (fun q ->
          let uq = User_query.parse q in
          check_equiv
            (Printf.sprintf "matrix [%s | %s]" (Transform_ast.update_to_string u) q)
            u uq)
        queries)
    updates

let test_matrix_on_xmark () =
  let doc = Xut_xmark.Generator.generate ~factor:0.002 () in
  let new_elem = Node.elem "new_elem" [ Node.text "inserted" ] in
  let pairs =
    [ (Transform_ast.Insert (parse_path "site/people/person", new_elem),
       "for $x in site/people/person where $x/@id = \"person1\" return $x");
      (Transform_ast.Insert (parse_path "site/regions//item[location = \"United States\"]", new_elem),
       "for $x in site/people/person return $x/name");
      (Transform_ast.Insert (parse_path "site/regions//item[location = \"United States\"]", new_elem),
       "for $x in site/regions//item return $x");
      (Transform_ast.Delete
         (parse_path "site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder"),
       "for $x in site//open_auctions/open_auction[not(@id = \"open_auction2\")]/bidder[increase > 10] return $x");
      (Transform_ast.Delete (parse_path "site//description"),
       "for $x in site/regions//item return <item-summary>{$x/name}{$x/description}</item-summary>")
    ]
  in
  List.iteri
    (fun i (u, q) -> check_equiv ~doc (Printf.sprintf "xmark pair %d" i) u (User_query.parse q))
    pairs

let test_relabeling_updates_compose () =
  (* rename and replace change labels, so label-based user steps must be
     judged against the transformed view (DESIGN.md: widened simulation) *)
  let cases =
    [ (Transform_ast.Rename (parse_path "//supplier", "vendor"),
       "for $x in db/part return $x");
      (* the renamed nodes are found under their NEW name... *)
      (Transform_ast.Rename (parse_path "//supplier", "vendor"),
       "for $x in db/part/vendor return $x/sname");
      (* ...and no longer under the old one *)
      (Transform_ast.Rename (parse_path "//supplier", "vendor"),
       "for $x in db/part/supplier return $x");
      (Transform_ast.Rename (parse_path "//supplier[country = \"A\"]", "banned"),
       "for $x in db//banned return $x");
      (Transform_ast.Replace (parse_path "//supplier[country = \"A\"]", Node.elem "redacted" []),
       "for $x in db/part return <p>{$x/pname}{$x/redacted}</p>");
      (Transform_ast.Replace (parse_path "//price", Node.elem "price" [ Node.text "0" ]),
       "for $x in db//supplier where $x/price < 1 return $x/sname") ]
  in
  List.iteri
    (fun i (u, q) -> check_equiv (Printf.sprintf "relabel %d" i) u (User_query.parse q))
    cases;
  (* and renamed nodes inside a '//' user step *)
  check_equiv "rename under //"
    (Transform_ast.Rename (parse_path "db/part/part", "subpart"))
    (User_query.parse "for $x in db//subpart return $x/pname")

let test_composed_query_prints () =
  let update = Transform_ast.Delete (parse_path "//supplier[country = \"A\"]") in
  let uq = User_query.parse "for $x in db/part[pname = \"keyboard\"]/supplier return $x" in
  match Composition.compose update uq with
  | Error m -> Alcotest.fail m
  | Ok c ->
    let s = Composition.to_string c in
    Alcotest.(check bool) "mentions the runtime helper or a plain loop" true
      (String.length s > 0)

(* --- the Fig. 2 rewriting --- *)

let test_rewrite_equals_native () =
  let doc = Fixtures.parts_doc () in
  let updates =
    [ Transform_ast.Insert (parse_path "//part[pname = \"keyboard\"]", supplier_e);
      Transform_ast.Delete (parse_path "//supplier[country = \"A\"]/price");
      Transform_ast.Replace (parse_path "//pname", Node.elem "pname" [ Node.text "redacted" ]);
      Transform_ast.Rename (parse_path "//supplier", "vendor") ]
  in
  List.iter
    (fun u ->
      let q = Transform_ast.make ~doc:"foo" u in
      let expected = Engine.transform Engine.Reference u doc in
      let got = Xquery_rewrite.run q ~doc in
      Alcotest.(check bool)
        ("rewrite = native: " ^ Transform_ast.update_to_string u)
        true
        (Node.equal_element expected got))
    updates

let test_rewrite_text_reparses () =
  let q =
    Transform_ast.make ~doc:"foo"
      (Transform_ast.Insert (parse_path "//part[pname = \"keyboard\"]", supplier_e))
  in
  let text = Xquery_rewrite.rewrite_to_string q in
  let doc = Fixtures.parts_doc () in
  let prog =
    try Xq_parser.parse text
    with Xq_parser.Parse_error m -> Alcotest.fail (m ^ "\n---\n" ^ text)
  in
  let env = Xq_eval.env ~docs:[ ("foo", doc) ] ~context:doc () in
  let out = Xq_eval.value_to_element (Xq_eval.eval_program env prog) in
  let expected = Engine.transform Engine.Reference q.Transform_ast.update doc in
  Alcotest.(check bool) "reparsed rewriting runs" true (Node.equal_element expected out)

let suite =
  [ Alcotest.test_case "Example 4.2" `Quick test_example_4_2;
    Alcotest.test_case "Example 4.3 Q1" `Quick test_example_4_3_q1;
    Alcotest.test_case "Example 4.3 Q2" `Quick test_example_4_3_q2;
    Alcotest.test_case "Example 4.3 Q3" `Quick test_example_4_3_q3;
    Alcotest.test_case "disjoint pair needs no helper" `Quick test_disjoint_pair_has_no_runtime_helper;
    Alcotest.test_case "matrix on parts doc" `Quick test_matrix_on_parts;
    Alcotest.test_case "matrix on xmark doc" `Quick test_matrix_on_xmark;
    Alcotest.test_case "relabeling updates compose" `Quick test_relabeling_updates_compose;
    Alcotest.test_case "composed query prints" `Quick test_composed_query_prints;
    Alcotest.test_case "Fig. 2 rewrite = native" `Quick test_rewrite_equals_native;
    Alcotest.test_case "Fig. 2 text reparses" `Quick test_rewrite_text_reparses ]

(* --- the GENTOP-in-XQuery compiler --- *)

let test_compiled_gentop_equals_native () =
  let doc = Fixtures.parts_doc () in
  let updates =
    [ Transform_ast.Insert (parse_path "//part[pname = \"keyboard\"]", supplier_e);
      Transform_ast.Insert_first (parse_path "db/part", supplier_e);
      Transform_ast.Delete (parse_path "//supplier[country = \"A\"]/price");
      Transform_ast.Delete (parse_path Fixtures.p1_text);
      Transform_ast.Replace (parse_path "//pname", Node.elem "pname" [ Node.text "x" ]);
      Transform_ast.Rename (parse_path "//supplier[not(country = \"C\")]", "vendor");
      Transform_ast.Delete (parse_path "db/nothing") ]
  in
  List.iter
    (fun u ->
      let q = Transform_ast.make ~doc:"foo" u in
      let expected = Engine.transform Engine.Reference u doc in
      let got = Xquery_compile.run q ~doc in
      Alcotest.(check bool)
        ("compiled = native: " ^ Transform_ast.update_to_string u)
        true
        (Node.equal_element expected got))
    updates

let test_compiled_text_reparses () =
  let q =
    Transform_ast.make ~doc:"foo"
      (Transform_ast.Delete (parse_path "//supplier[country = \"A\"]/price"))
  in
  let text = Xquery_compile.compile_to_string q in
  let doc = Fixtures.parts_doc () in
  let prog =
    try Xq_parser.parse text
    with Xq_parser.Parse_error m -> Alcotest.fail (m ^ "\n---\n" ^ text)
  in
  let env = Xq_eval.env ~docs:[ ("foo", doc) ] ~context:doc () in
  let out = Xq_eval.value_to_element (Xq_eval.eval_program env prog) in
  let expected = Engine.transform Engine.Reference q.Transform_ast.update doc in
  Alcotest.(check bool) "reparsed compiled query runs" true (Node.equal_element expected out)

let test_compiled_on_xmark () =
  let doc = Xut_xmark.Generator.generate ~factor:0.001 () in
  let u =
    Transform_ast.Insert
      (parse_path "site/regions//item[location = \"United States\"]", Node.elem "flag" [])
  in
  let expected = Engine.transform Engine.Reference u doc in
  let got = Xquery_compile.run (Transform_ast.make ~doc:"d" u) ~doc in
  Alcotest.(check bool) "xmark compiled" true (Node.equal_element expected got)

let suite =
  suite
  @ [ Alcotest.test_case "compiled GENTOP = native" `Quick test_compiled_gentop_equals_native;
      Alcotest.test_case "compiled text reparses" `Quick test_compiled_text_reparses;
      Alcotest.test_case "compiled GENTOP on xmark" `Quick test_compiled_on_xmark ]

let test_compiled_tdbu_equals_native () =
  let doc = Fixtures.parts_doc () in
  let updates =
    [ Transform_ast.Insert (parse_path "//part[pname = \"keyboard\"]", supplier_e);
      Transform_ast.Delete (parse_path "//supplier[country = \"A\"]/price");
      Transform_ast.Delete (parse_path Fixtures.p1_text);
      Transform_ast.Rename (parse_path "//supplier[not(country = \"C\")]", "vendor");
      Transform_ast.Replace (parse_path "//part[supplier/price < 5]/pname",
                             Node.elem "pname" [ Node.text "cheap" ]);
      Transform_ast.Insert (parse_path "site/people/person[@id = \"person1\"]", supplier_e) ]
  in
  List.iter
    (fun u ->
      let q = Transform_ast.make ~doc:"foo" u in
      let expected = Engine.transform Engine.Reference u doc in
      let got = Xquery_compile.run_tdbu q ~doc in
      Alcotest.(check bool)
        ("TD-BU compiled = native: " ^ Transform_ast.update_to_string u)
        true
        (Node.equal_element expected got))
    updates;
  (* annotations must not leak into the output: no xut-sat anywhere *)
  let q = Transform_ast.make ~doc:"foo" (List.hd updates) in
  let out = Xquery_compile.run_tdbu q ~doc in
  let leaked = ref false in
  Node.iter_elements
    (fun e -> if Node.attr e "xut-sat" <> None then leaked := true)
    out;
  Alcotest.(check bool) "no sat attributes leak" false !leaked

let test_compiled_tdbu_text_reparses () =
  let q =
    Transform_ast.make ~doc:"foo" (Transform_ast.Delete (parse_path Fixtures.p1_text))
  in
  let text = Xquery_compile.compile_tdbu_to_string q in
  let doc = Fixtures.parts_doc () in
  let prog =
    try Xq_parser.parse text
    with Xq_parser.Parse_error m -> Alcotest.fail (m ^ "\n---\n" ^ text)
  in
  let env = Xq_eval.env ~docs:[ ("foo", doc) ] ~context:doc () in
  let out = Xq_eval.value_to_element (Xq_eval.eval_program env prog) in
  let expected = Engine.transform Engine.Reference q.Transform_ast.update doc in
  Alcotest.(check bool) "reparsed TD-BU query runs" true (Node.equal_element expected out)

let suite =
  suite
  @ [ Alcotest.test_case "compiled TD-BU = native" `Quick test_compiled_tdbu_equals_native;
      Alcotest.test_case "compiled TD-BU text reparses" `Quick test_compiled_tdbu_text_reparses ]

(* --- stacked composition (view chains) --- *)

let check_stack_equiv ?(doc = Fixtures.parts_doc ()) name updates uq =
  let expected = value_repr (Composition.naive_stack updates uq ~doc) in
  let composed =
    match Composition.compose_stack updates uq with
    | Ok c -> c
    | Error m -> Alcotest.fail (name ^ ": did not compose: " ^ m)
  in
  let got = value_repr (Composition.run_composed composed ~doc) in
  Alcotest.(check (list string)) (name ^ " stack = naive") expected got

(* chain-safe updates: none can select the document element *)
let stack_updates =
  [ Transform_ast.Delete (parse_path "//price");
    Transform_ast.Delete (parse_path "//supplier[country = \"A\"]");
    Transform_ast.Delete (parse_path "db/part/part");
    Transform_ast.Insert (parse_path "//part[pname = \"keyboard\"]", supplier_e);
    Transform_ast.Insert (parse_path "//supplier", Node.elem "verified" []);
    Transform_ast.Insert_first (parse_path "//part", supplier_e);
    Transform_ast.Rename (parse_path "//supplier", "vendor");
    Transform_ast.Replace (parse_path "//pname", Node.elem "pname" [ Node.text "x" ]);
    Transform_ast.Delete (parse_path "db/nosuch") ]

let stack_queries =
  [ "for $x in db/part return $x/pname";
    "for $x in db/part/supplier return $x";
    "for $x in db//supplier return $x/sname";
    "for $x in db/part where $x/supplier/price > 20 return $x/pname";
    "for $x in db//vendor return $x/sname";
    "for $x in db/part return <p>{$x/pname}{$x/supplier}</p>";
    "for $x in db/part return $x" ]

let test_stack_depth2_matrix () =
  (* every ordered pair of distinct chain-safe updates, a rotating query *)
  let n = List.length stack_queries in
  let k = ref 0 in
  List.iteri
    (fun i u1 ->
      List.iteri
        (fun j u2 ->
          if i <> j then begin
            let q = List.nth stack_queries (!k mod n) in
            incr k;
            check_stack_equiv
              (Printf.sprintf "stack2 [%s ; %s | %s]"
                 (Transform_ast.update_to_string u1)
                 (Transform_ast.update_to_string u2)
                 q)
              [ u1; u2 ] (User_query.parse q)
          end)
        stack_updates)
    stack_updates

let test_stack_edge_depths () =
  let uq = User_query.parse "for $x in db/part/supplier return $x" in
  (* empty chain = plain user query *)
  check_stack_equiv "stack0" [] uq;
  (* singleton delegates to plain compose *)
  check_stack_equiv "stack1" [ Transform_ast.Delete (parse_path "//price") ] uq;
  (* deep chain where later levels see earlier levels' effects: the
     rename hides //supplier from the delete, and the insert targets the
     new label *)
  check_stack_equiv "stack3 rename-shadow"
    [ Transform_ast.Rename (parse_path "//supplier[country = \"A\"]", "banned");
      Transform_ast.Delete (parse_path "//supplier/price");
      Transform_ast.Insert (parse_path "//banned", Node.elem "why" [ Node.text "A" ]) ]
    (User_query.parse "for $x in db/part return $x");
  (* content inserted by one level navigated by the user query *)
  check_stack_equiv "stack2 inserted-content"
    [ Transform_ast.Insert (parse_path "//part[pname = \"keyboard\"]", supplier_e);
      Transform_ast.Delete (parse_path "//price") ]
    (User_query.parse "for $x in db/part/supplier return $x/sname")

let prop_stack_random_chains =
  let gen =
    QCheck.Gen.(
      pair (list_size (int_range 2 4) (oneofl stack_updates)) (oneofl stack_queries))
  in
  let print (updates, q) =
    String.concat " ; " (List.map Transform_ast.update_to_string updates) ^ " | " ^ q
  in
  QCheck.Test.make ~count:60 ~name:"compose_stack = naive_stack (random chains, depth >= 2)"
    (QCheck.make ~print gen) (fun (updates, q) ->
      let doc = Fixtures.parts_doc () in
      let uq = User_query.parse q in
      let expected = value_repr (Composition.naive_stack updates uq ~doc) in
      match Composition.compose_stack updates uq with
      | Error m -> QCheck.Test.fail_reportf "did not compose: %s" m
      | Ok c -> value_repr (Composition.run_composed c ~doc) = expected)

let suite =
  suite
  @ [ Alcotest.test_case "stack: depth-2 matrix" `Quick test_stack_depth2_matrix;
      Alcotest.test_case "stack: edge depths" `Quick test_stack_edge_depths;
      QCheck_alcotest.to_alcotest prop_stack_random_chains ]
