let () =
  Alcotest.run "xut"
    [ ("xml", Test_xml.suite);
      ("xpath", Test_xpath.suite);
      ("automata", Test_automata.suite);
      ("transform", Test_transform.suite);
      ("xquery", Test_xquery.suite);
      ("compose", Test_compose.suite);
      ("properties", Test_properties.suite);
      ("xmark", Test_xmark.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("reader", Test_reader.suite);
      ("security-view", Test_security_view.suite);
      ("service", Test_service.suite);
      ("transport", Test_transport.suite);
    ("update", Test_update.suite);
      ("repair", Test_repair.suite);
      ("schema", Test_schema.suite);
      ("misc", Test_misc.suite) ]
