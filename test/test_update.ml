(* The write path: pending-list merging, MVCC materialization, and
   APPLY/COMMIT at the service layer. *)

open Xut_xml
module Pending = Xut_update.Pending
module Apply = Xut_update.Apply
module Service = Xut_service.Service
module Doc_store = Xut_service.Doc_store
module Metrics = Xut_service.Metrics

let doc_xml =
  {|<site><people><person id="p1"><name>Alice</name><age>30</age></person><person id="p2"><name>Bob</name><age>17</age></person></people><items><item><name>kettle</name><price>12</price></item><item><name>lamp</name><price>40</price></item></items></site>|}

let root () = Dom.parse_string doc_xml
let ser = Serialize.element_to_string
let updates = Core.Transform_parser.parse_updates
let el name = Node.elem name []

(* ---- merge hierarchy ---- *)

(* Build a pending list of primitives all on one target and normalize. *)
let norm1 ops =
  let t = Pending.create () in
  List.iter (fun op -> Pending.add t ~target:7 op) ops;
  (Pending.added t, Pending.normalize t)

let check_counts what added (nz : Pending.normalized) ~primitives ~collapsed ~conflicts =
  Alcotest.(check int) (what ^ ": primitives") primitives nz.Pending.primitives;
  Alcotest.(check int) (what ^ ": collapsed") collapsed nz.Pending.collapsed;
  Alcotest.(check int) (what ^ ": conflicts") conflicts (List.length nz.Pending.conflicts);
  Alcotest.(check int)
    (what ^ ": added = primitives + collapsed + conflicts")
    added
    (nz.Pending.primitives + nz.Pending.collapsed + List.length nz.Pending.conflicts)

let resolved_of (nz : Pending.normalized) = Hashtbl.find nz.Pending.table 7

let test_delete_absorbs () =
  (* Delete wins regardless of submission order, and a second delete is
     idempotent. *)
  let added, nz = norm1 [ Pending.Rename "x"; Pending.Delete ] in
  check_counts "rename then delete" added nz ~primitives:1 ~collapsed:1 ~conflicts:0;
  Alcotest.(check bool) "dead" true (resolved_of nz = Pending.Dead);
  let added, nz = norm1 [ Pending.Delete; Pending.Rename "x" ] in
  check_counts "delete then rename" added nz ~primitives:1 ~collapsed:1 ~conflicts:0;
  Alcotest.(check bool) "dead either order" true (resolved_of nz = Pending.Dead);
  let added, nz = norm1 [ Pending.Replace (el "y"); Pending.Delete ] in
  check_counts "replace then delete" added nz ~primitives:1 ~collapsed:1 ~conflicts:0;
  Alcotest.(check bool) "replace absorbed" true (resolved_of nz = Pending.Dead);
  let added, nz = norm1 [ Pending.Delete; Pending.Delete ] in
  check_counts "double delete" added nz ~primitives:1 ~collapsed:1 ~conflicts:0;
  (* the collapsing weight: a delete absorbs every prior edit at once *)
  let added, nz =
    norm1 [ Pending.Rename "x"; Pending.Insert (el "k"); Pending.Insert_first (el "j"); Pending.Delete ]
  in
  check_counts "edits then delete" added nz ~primitives:1 ~collapsed:3 ~conflicts:0;
  Alcotest.(check bool) "all edits absorbed" true (resolved_of nz = Pending.Dead)

let test_replace_absorbs_edits () =
  let added, nz =
    norm1 [ Pending.Rename "x"; Pending.Insert (el "k"); Pending.Replace (el "y") ]
  in
  check_counts "edits then replace" added nz ~primitives:1 ~collapsed:2 ~conflicts:0;
  (match resolved_of nz with
  | Pending.Swap n -> Alcotest.(check bool) "swap content" true (Node.equal n (el "y"))
  | _ -> Alcotest.fail "expected Swap");
  let added, nz =
    norm1 [ Pending.Replace (el "y"); Pending.Rename "x"; Pending.Insert_first (el "j") ]
  in
  check_counts "replace then edits" added nz ~primitives:1 ~collapsed:2 ~conflicts:0;
  match resolved_of nz with
  | Pending.Swap _ -> ()
  | _ -> Alcotest.fail "expected Swap either order"

let test_two_replaces_conflict () =
  let added, nz = norm1 [ Pending.Replace (el "y"); Pending.Replace (el "z") ] in
  check_counts "two replaces" added nz ~primitives:1 ~collapsed:0 ~conflicts:1;
  let c = List.hd nz.Pending.conflicts in
  Alcotest.(check int) "conflict target" 7 c.Pending.target;
  Alcotest.(check bool) "first submission kept" true
    (String.length c.Pending.kept > 0
    && String.length (Pending.render_conflict c) > 0
    && c.Pending.kept <> c.Pending.dropped);
  (* the first-submitted replace stays in force *)
  match resolved_of nz with
  | Pending.Swap n -> Alcotest.(check bool) "kept first replace" true (Node.equal n (el "y"))
  | _ -> Alcotest.fail "expected Swap"

let test_rename_merge () =
  let added, nz = norm1 [ Pending.Rename "x"; Pending.Rename "x" ] in
  check_counts "identical renames merge" added nz ~primitives:1 ~collapsed:1 ~conflicts:0;
  (match resolved_of nz with
  | Pending.Edit { rename = Some "x"; _ } -> ()
  | _ -> Alcotest.fail "expected Edit with rename");
  let added, nz = norm1 [ Pending.Rename "x"; Pending.Rename "w" ] in
  check_counts "different renames conflict" added nz ~primitives:1 ~collapsed:0 ~conflicts:1;
  match resolved_of nz with
  | Pending.Edit { rename = Some "x"; _ } -> ()
  | _ -> Alcotest.fail "first rename kept"

let test_insert_ordering () =
  let added, nz =
    norm1
      [
        Pending.Insert (el "a");
        Pending.Insert_first (el "b");
        Pending.Insert (el "c");
        Pending.Insert_first (el "d");
        Pending.Rename "r";
      ]
  in
  check_counts "inserts accumulate" added nz ~primitives:5 ~collapsed:0 ~conflicts:0;
  match resolved_of nz with
  | Pending.Edit { rename = Some "r"; firsts; lasts } ->
      Alcotest.(check (list string))
        "firsts in submission order" [ "b"; "d" ]
        (List.map (function Node.Element e -> Node.name e | _ -> "?") firsts);
      Alcotest.(check (list string))
        "lasts in submission order" [ "a"; "c" ]
        (List.map (function Node.Element e -> Node.name e | _ -> "?") lasts)
  | _ -> Alcotest.fail "expected Edit"

(* ---- apply engine ---- *)

let run_ok us r =
  match Apply.run us r with
  | Ok (report, tree) -> (report, Option.map fst tree)
  | Error _ -> Alcotest.fail "unexpected conflict"

let test_snapshot_semantics () =
  (* Both updates resolve against the one snapshot: the insert finds
     people even though the rename has already retargeted it.  The
     sequential semantics of Core.Sequence finds nothing at $a/site/people
     after the rename. *)
  let us = updates "(rename $a/site/people as folks, insert <x/> into $a/site/people)" in
  let _, tree = run_ok us (root ()) in
  let snapshot = ser (Option.get tree) in
  Alcotest.(check bool) "renamed" true (String.length snapshot > 0);
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "insert landed inside the renamed node" true
    (contains snapshot "<x/></folks>");
  let seq = Core.Sequence.make us in
  let sequential = ser (Core.Sequence.run Core.Engine.Reference seq ~doc:(root ())) in
  Alcotest.(check bool) "sequential semantics misses the insert" false
    (contains sequential "<x/>");
  Alcotest.(check bool) "the two disciplines differ" true (snapshot <> sequential)

let find_el r name =
  let found = ref None in
  Node.iter_elements (fun e -> if Node.name e = name && !found = None then found := Some e) r;
  Option.get !found

let test_physical_sharing () =
  let old_root = root () in
  let _, tree = run_ok (updates "rename $a/site/people as folks") old_root in
  let new_root = Option.get tree in
  Alcotest.(check bool) "root id changed" true (Node.id new_root <> Node.id old_root);
  Alcotest.(check bool) "untouched subtree is physically shared" true
    (find_el new_root "items" == find_el old_root "items");
  Alcotest.(check bool) "touched spine is fresh" true
    (Node.id (find_el new_root "folks") <> Node.id (find_el old_root "people"))

let test_empty_pending () =
  let report, tree = run_ok (updates "delete $a/site/nothing_here") (root ()) in
  Alcotest.(check int) "no primitives" 0 report.Apply.primitives;
  Alcotest.(check bool) "no new tree" true (tree = None)

let test_root_guards () =
  (match Apply.run (updates "delete $a") (root ()) with
  | exception Apply.Invalid _ -> ()
  | _ -> Alcotest.fail "deleting the document element must be Invalid");
  (* replacing the root with a non-element is inexpressible in the query
     syntax; exercise the guard through the primitive API *)
  let r = root () in
  let t = Pending.create () in
  Pending.add t ~target:(Node.id r) (Pending.Replace (Node.text "loose"));
  (match Apply.materialize (Pending.normalize t) r with
  | exception Apply.Invalid _ -> ()
  | _ -> Alcotest.fail "non-element root replacement must be Invalid");
  (* replacing the root with an element is fine *)
  let _, tree = run_ok (updates "replace $a with <fresh/>") (root ()) in
  Alcotest.(check string) "root swapped" "<fresh/>" (ser (Option.get tree))

let test_nested_subsumption () =
  (* A primitive inside a deleted subtree is subsumed, matching what the
     reference engine produces for the outer delete alone. *)
  let us = updates "(delete $a/site/people, rename $a/site/people/person as ghost)" in
  let report, tree = run_ok us (root ()) in
  Alcotest.(check int) "both primitives survive the merge (different targets)" 3
    report.Apply.primitives;
  let expected =
    ser (Core.Engine.transform Core.Engine.Reference (List.hd (updates "delete $a/site/people")) (root ()))
  in
  Alcotest.(check string) "nested rename subsumed" expected (ser (Option.get tree))

(* Single-update materialization agrees byte-for-byte with the reference
   engine. *)
let single_update_pool =
  [
    "delete $a/site/people/person/age";
    "delete $a//name";
    "rename $a/site/items/item as product";
    "insert <tag>new</tag> into $a/site/items";
    "insert <head/> as first into $a/site/people";
    "replace $a/site/items/item/price with <price>0</price>";
    "delete $a/site/absent";
  ]

let test_qcheck_matches_reference =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"materialize agrees with the reference engine" ~count:60
       (QCheck.oneofl single_update_pool)
       (fun q ->
         let u = List.hd (updates q) in
         let r = root () in
         let expected = ser (Core.Engine.transform Core.Engine.Reference u r) in
         let got =
           match run_ok [ u ] r with _, Some r' -> ser r' | _, None -> ser r
         in
         String.equal expected got))

(* ---- service integration ---- *)

let with_doc_file ?(xml = doc_xml) f =
  let path = Filename.temp_file "xut_update_test" ".xml" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc xml);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let with_service ?(domains = 1) f =
  let svc = Service.create ~domains () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

let load_doc svc path =
  match Service.call svc (Service.Load { name = "d"; file = path; schema = None }) with
  | Service.Ok (Service.Doc_loaded _) -> ()
  | _ -> Alcotest.fail "load failed"

let generation svc = (Option.get (Doc_store.info (Service.store svc) "d")).Doc_store.generation

let tree_of svc query =
  match Service.call svc (Service.Transform { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query }) with
  | Service.Ok (Service.Tree s) -> s
  | _ -> Alcotest.fail "transform failed"

let identity_query = {|transform copy $a := doc("d") modify do delete $a/zzz return $a|}

let test_apply_dry_run () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let before = tree_of svc identity_query in
          let g0 = generation svc in
          (match Service.call svc (Service.Apply { doc = "d"; query = "delete $a//price" }) with
          | Service.Ok (Service.Applied { doc = "d"; primitives = 2; collapsed = 0; conflicts = [] })
            -> ()
          | _ -> Alcotest.fail "unexpected apply reply");
          Alcotest.(check int) "generation untouched" g0 (generation svc);
          Alcotest.(check string) "document untouched" before (tree_of svc identity_query);
          Alcotest.(check int) "no commit counted" 0 (Metrics.commits (Service.metrics svc))))

let test_commit_swaps () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let events = ref [] in
          Service.on_invalidate svc (fun ev -> events := ev :: !events);
          (* warm the plan cache so the commit has annotations to evict *)
          ignore (tree_of svc identity_query);
          let g0 = generation svc in
          let expected =
            ser
              (Core.Engine.transform Core.Engine.Reference
                 (List.hd (updates "delete $a//price"))
                 (Dom.parse_string doc_xml))
          in
          (match Service.call svc (Service.Commit { doc = "d"; query = "delete $a//price" }) with
          | Service.Ok (Service.Committed { doc = "d"; primitives = 2; collapsed = 0; elements; generation }) ->
              Alcotest.(check int) "generation bumped by exactly one" (g0 + 1) generation;
              Alcotest.(check int) "element count of the new tree" 13 elements
          | _ -> Alcotest.fail "unexpected commit reply");
          Alcotest.(check int) "store generation advanced" (g0 + 1) (generation svc);
          (match !events with
          | [ ev ] ->
              Alcotest.(check string) "event names the doc" "d" ev.Doc_store.name;
              Alcotest.(check bool) "reason is Committed" true
                (ev.Doc_store.reason = Doc_store.Committed);
              Alcotest.(check int) "event carries the new generation" (g0 + 1)
                ev.Doc_store.generation
          | evs -> Alcotest.failf "expected exactly one event, got %d" (List.length evs));
          Alcotest.(check string) "reads now see the new snapshot" expected
            (tree_of svc identity_query);
          let m = Service.metrics svc in
          Alcotest.(check int) "one commit counted" 1 (Metrics.commits m);
          Alcotest.(check int) "pending histogram recorded it" 1 (Metrics.pending_count m);
          Alcotest.(check int) "pending max" 2 (Metrics.pending_max m)))

let test_commit_conflict_rejected () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let events = ref 0 in
          Service.on_invalidate svc (fun _ -> incr events);
          let before = tree_of svc identity_query in
          let g0 = generation svc in
          let q = "(replace $a/site/items with <i1/>, replace $a/site/items with <i2/>)" in
          (match Service.call svc (Service.Commit { doc = "d"; query = q }) with
          | Service.Error { code = Service.Conflict; message } ->
              Alcotest.(check bool) "message names the clash" true
                (String.length message > 0)
          | _ -> Alcotest.fail "expected a conflict rejection");
          Alcotest.(check int) "nothing swapped" g0 (generation svc);
          Alcotest.(check int) "no event fired" 0 !events;
          Alcotest.(check string) "document untouched" before (tree_of svc identity_query);
          let m = Service.metrics svc in
          Alcotest.(check int) "conflict counted" 1 (Metrics.commit_conflicts m);
          Alcotest.(check int) "no commit counted" 0 (Metrics.commits m)))

let test_commit_noop () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let events = ref 0 in
          Service.on_invalidate svc (fun _ -> incr events);
          let g0 = generation svc in
          (match Service.call svc (Service.Commit { doc = "d"; query = "delete $a/site/nothing" }) with
          | Service.Ok (Service.Committed { primitives = 0; generation; _ }) ->
              Alcotest.(check int) "generation unchanged" g0 generation
          | _ -> Alcotest.fail "unexpected noop reply");
          Alcotest.(check int) "no event" 0 !events;
          let m = Service.metrics svc in
          Alcotest.(check int) "noop counted" 1 (Metrics.commit_noops m);
          Alcotest.(check int) "not an effective commit" 0 (Metrics.commits m)))

let test_snapshot_isolation () =
  with_doc_file (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          (* a reader takes the snapshot before the commit lands *)
          let old_root = Option.get (Doc_store.find (Service.store svc) "d") in
          let before = ser old_root in
          (match Service.call svc (Service.Commit { doc = "d"; query = "delete $a//age" }) with
          | Service.Ok (Service.Committed _) -> ()
          | _ -> Alcotest.fail "commit failed");
          let new_root = Option.get (Doc_store.find (Service.store svc) "d") in
          Alcotest.(check bool) "the binding moved" true (Node.id new_root <> Node.id old_root);
          Alcotest.(check string) "the held snapshot still reads pre-commit bytes" before
            (ser old_root);
          Alcotest.(check bool) "untouched subtree shared across the commit" true
            (find_el new_root "items" == find_el old_root "items")))

(* The acceptance interleaving test: concurrent readers racing commits
   must observe either the full old or the full new snapshot, never a
   mix.  Every commit rewrites two cousins to the same version stamp, so
   a torn read would show m1 <> m2. *)
let mix_xml = "<root><m1>0</m1><m2>0</m2></root>"

let value_between s opening closing =
  let n = String.length s and ol = String.length opening in
  let rec find i =
    if i + ol > n then None
    else if String.sub s i ol = opening then Some (i + ol)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let rec upto i = if String.sub s i (String.length closing) = closing then i else upto (i + 1) in
      Some (String.sub s start (upto start - start))

let test_interleaved_readers () =
  with_doc_file ~xml:mix_xml (fun path ->
      with_service ~domains:4 (fun svc ->
          load_doc svc path;
          let readers = ref [] in
          for k = 1 to 12 do
            (* several reads in flight around every commit *)
            for _ = 1 to 3 do
              readers :=
                Service.submit svc
                  (Service.Transform
                     { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = identity_query })
                :: !readers
            done;
            let q =
              Printf.sprintf "(replace $a/root/m1 with <m1>%d</m1>, replace $a/root/m2 with <m2>%d</m2>)"
                k k
            in
            match Service.call svc (Service.Commit { doc = "d"; query = q }) with
            | Service.Ok (Service.Committed { generation; _ }) ->
                Alcotest.(check int) "generations strictly increase" (k + 1) generation
            | _ -> Alcotest.fail "commit failed"
          done;
          List.iter
            (fun fut ->
              match Service.await fut with
              | Service.Ok (Service.Tree s) ->
                  let m1 = Option.get (value_between s "<m1>" "</m1>") in
                  let m2 = Option.get (value_between s "<m2>" "</m2>") in
                  Alcotest.(check string) "no torn snapshot" m1 m2
              | _ -> Alcotest.fail "reader failed")
            !readers;
          Alcotest.(check int) "all commits effective" 12
            (Metrics.commits (Service.metrics svc))))

(* COMMIT then an identity TRANSFORM is byte-identical to the original
   TRANSFORM of the same update — the materialized write agrees with the
   read path. *)
let test_qcheck_commit_vs_transform =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"COMMIT then identity TRANSFORM matches TRANSFORM" ~count:25
       (QCheck.oneofl single_update_pool)
       (fun q ->
         with_doc_file (fun path ->
             with_service (fun svc ->
                 load_doc svc path;
                 let full =
                   Printf.sprintf {|transform copy $a := doc("d") modify do %s return $a|} q
                 in
                 let read_reply = tree_of svc full in
                 (match Service.call svc (Service.Commit { doc = "d"; query = q }) with
                 | Service.Ok (Service.Committed _) -> ()
                 | _ -> Alcotest.fail "commit failed");
                 String.equal read_reply (tree_of svc identity_query)))))

let suite =
  [
    Alcotest.test_case "delete absorbs everything" `Quick test_delete_absorbs;
    Alcotest.test_case "replace absorbs edits" `Quick test_replace_absorbs_edits;
    Alcotest.test_case "two replaces conflict" `Quick test_two_replaces_conflict;
    Alcotest.test_case "rename merge and conflict" `Quick test_rename_merge;
    Alcotest.test_case "insert ordering" `Quick test_insert_ordering;
    Alcotest.test_case "snapshot vs sequential semantics" `Quick test_snapshot_semantics;
    Alcotest.test_case "physical sharing" `Quick test_physical_sharing;
    Alcotest.test_case "empty pending list" `Quick test_empty_pending;
    Alcotest.test_case "document-element guards" `Quick test_root_guards;
    Alcotest.test_case "nested-target subsumption" `Quick test_nested_subsumption;
    test_qcheck_matches_reference;
    Alcotest.test_case "apply is a dry run" `Quick test_apply_dry_run;
    Alcotest.test_case "commit swaps, stamps, notifies once" `Quick test_commit_swaps;
    Alcotest.test_case "conflicting commit rejected" `Quick test_commit_conflict_rejected;
    Alcotest.test_case "noop commit" `Quick test_commit_noop;
    Alcotest.test_case "snapshot isolation across commit" `Quick test_snapshot_isolation;
    Alcotest.test_case "interleaved readers see whole snapshots" `Quick test_interleaved_readers;
    test_qcheck_commit_vs_transform;
  ]
