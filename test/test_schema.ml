(* Schema-aware static pruning: grammar validation, the NFA x schema
   product (statically-empty verdict, skip-sets), pruned == unpruned
   equivalence over random XMark documents and queries, and the
   statically-empty admission check end to end — in-process and over
   the socket transport. *)

open Xut_service
module Schema = Xut_schema.Schema
module Nfa = Xut_automata.Selecting_nfa
module Annotator = Xut_automata.Annotator

let () = Xut_xmark.Site_schema.register ()

let site () = Lazy.force Xut_xmark.Site_schema.schema

let nfa_of path_s = Nfa.of_path (Xut_xpath.Parser.parse path_s)

let delete_q ?(doc = "d") path =
  Printf.sprintf {|transform copy $a := doc("%s") modify do delete $a%s return $a|} doc path

let u7_path =
  "/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]\
   /description//text"

(* A path long enough to overflow the 62-state bitset representation,
   staying inside the schema (description -> parlist <-> listitem). *)
let long_path =
  "/site/open_auctions/open_auction/annotation/description"
  ^ String.concat "" (List.init 30 (fun _ -> "/parlist/listitem"))
  ^ "//text"

(* ---- validation ---- *)

let test_validate_generated () =
  let root = Xut_xmark.Generator.generate ~factor:0.002 () in
  match Schema.validate (site ()) root with
  | Ok sizes ->
    let total = Xut_xml.Node.element_count (Xut_xml.Node.Element root) in
    Alcotest.(check int) "root subtree size is the element count" total
      (Hashtbl.find sizes (Xut_xml.Node.id root))
  | Error msg -> Alcotest.fail ("generated XMark must conform: " ^ msg)

let test_validate_reject () =
  let bad = Xut_xml.Node.element "site" [ Xut_xml.Node.elem "bogus" [] ] in
  (match Schema.validate (site ()) bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undeclared child must be rejected");
  let wrong_root = Xut_xml.Node.element "person" [] in
  match Schema.validate (site ()) wrong_root with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong document element must be rejected"

(* ---- the product ---- *)

let test_statically_empty_verdict () =
  let empty = Schema.product (site ()) (nfa_of "/site/people//bidder") in
  Alcotest.(check bool) "people//bidder is statically empty" true
    (Schema.statically_empty empty);
  let nonempty = Schema.product (site ()) (nfa_of "/site//bidder") in
  Alcotest.(check bool) "//bidder is not statically empty" false
    (Schema.statically_empty nonempty);
  let root = Schema.product (site ()) (nfa_of "/site") in
  Alcotest.(check bool) "selecting the document element is never statically empty" false
    (Schema.statically_empty root)

let test_skip_set_contents () =
  let p = Schema.product (site ()) (nfa_of u7_path) in
  Alcotest.(check bool) "product not capped" false (Schema.capped p);
  Alcotest.(check bool) "U7 has a non-trivial skip-set" true (Schema.skip_count p > 0);
  let skippable name = Schema.skippable p (Xut_xml.Sym.intern name) in
  List.iter
    (fun arm ->
      Alcotest.(check bool) (arm ^ " is skippable under U7") true (skippable arm))
    [ "regions"; "people"; "categories"; "catgraph"; "closed_auctions" ];
  Alcotest.(check bool) "open_auctions is not skippable under U7" false
    (skippable "open_auctions");
  Alcotest.(check bool) "site itself is never skippable here" false (skippable "site")

let test_long_path_exceeds_bitset () =
  let nfa = nfa_of long_path in
  Alcotest.(check bool) "the long path needs > 62 NFA states" true (Nfa.size nfa > 62)

(* ---- pruned == unpruned ---- *)

(* The soundness claim, checked both on the TD-BU oracle path (skip
   threaded through the annotator AND the top-down walk) and on the
   GENTOP direct path: with the skip oracle the output tree serializes
   identically, so COUNT agrees too. *)
let equivalent path_s root =
  let q = Core.Transform_parser.parse (delete_q path_s) in
  let upd = q.Core.Transform_ast.update in
  let nfa = nfa_of path_s in
  let product = Schema.product (site ()) nfa in
  let skip e = Schema.skippable product (Xut_xml.Node.sym e) in
  let s = Xut_xml.Serialize.element_to_string in
  let t0 = Annotator.annotate nfa root in
  let out0 = Core.Top_down.run ~checkp:(Annotator.checkp t0 nfa) nfa upd root in
  let t1 = Annotator.annotate ~skip nfa root in
  let out1 = Core.Top_down.run ~checkp:(Annotator.checkp t1 nfa) ~skip nfa upd root in
  let g0 = Core.Top_down.run ~checkp:(Core.Top_down.direct_checkp nfa) nfa upd root in
  let g1 = Core.Top_down.run ~checkp:(Core.Top_down.direct_checkp nfa) ~skip nfa upd root in
  s out0 = s out1 && s g0 = s g1 && s out0 = s g0
  && Xut_xml.Node.element_count (Xut_xml.Node.Element out0)
     = Xut_xml.Node.element_count (Xut_xml.Node.Element out1)

let equivalence_paths =
  [ u7_path;
    "/site//increase";
    "/site/people/person/name";
    "/site//date";
    "/site/regions//item/mailbox";
    "/site/closed_auctions/closed_auction/annotation";
    "/site/people//bidder" (* statically empty: everything skips *);
    "/site//keyword";
    long_path ]

let test_pruned_equals_unpruned () =
  let root = Xut_xmark.Generator.generate ~factor:0.002 () in
  List.iter
    (fun p ->
      Alcotest.(check bool) ("pruned == unpruned for " ^ p) true (equivalent p root))
    equivalence_paths

let prop_pruned_equals_unpruned =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"pruned == unpruned (random doc x query)" ~count:30
       QCheck.(
         make
           Gen.(
             pair (int_bound (List.length equivalence_paths - 1)) (int_bound 10_000)))
       (fun (pi, seed) ->
         let root =
           Xut_xmark.Generator.generate ~seed:(Int64.of_int (seed + 1)) ~factor:0.0008 ()
         in
         equivalent (List.nth equivalence_paths pi) root))

(* ---- service level ---- *)

let with_xmark_file ?(factor = 0.001) f =
  let path = Filename.temp_file "xut_schema_test" ".xml" in
  Xut_xmark.Generator.to_file ~factor path;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let with_service f =
  let svc = Service.create ~domains:1 () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

(* returns the schema name echoed in Doc_loaded *)
let load svc ?schema name file =
  match Service.call svc (Service.Load { name; file; schema }) with
  | Service.Ok (Service.Doc_loaded { schema; _ }) -> schema
  | Service.Ok _ -> Alcotest.fail "LOAD: wrong payload"
  | Service.Error { message; _ } -> Alcotest.fail ("LOAD: " ^ message)

let test_load_with_schema () =
  with_xmark_file (fun path ->
      with_service (fun svc ->
          (match load svc ~schema:"xmark" "d" path with
          | Some "xmark" -> ()
          | _ -> Alcotest.fail "Doc_loaded must echo the schema binding");
          (* unknown schema name: rejected before anything is stored *)
          (match Service.call svc
                   (Service.Load { name = "e"; file = path; schema = Some "nope" })
           with
          | Service.Error { code = Service.Bad_request; _ } -> ()
          | _ -> Alcotest.fail "unknown schema must be Bad_request");
          (* nonconforming document: rejected, store untouched *)
          let bad = Filename.temp_file "xut_schema_bad" ".xml" in
          Out_channel.with_open_bin bad (fun oc ->
              Out_channel.output_string oc "<site><bogus/></site>");
          Fun.protect
            ~finally:(fun () -> Sys.remove bad)
            (fun () ->
              match
                Service.call svc
                  (Service.Load { name = "b"; file = bad; schema = Some "xmark" })
              with
              | Service.Error { code = Service.Bad_request; _ } ->
                Alcotest.(check bool) "nothing stored" true
                  (Doc_store.find (Service.store svc) "b" = None)
              | _ -> Alcotest.fail "nonconforming LOAD must be Bad_request")))

let test_statically_empty_rejection () =
  with_xmark_file (fun path ->
      with_service (fun svc ->
          ignore (load svc ~schema:"xmark" "d" path);
          let q = delete_q "/site/people//bidder" in
          let target = Service.Doc "d" in
          (match
             Service.call svc
               (Service.Count { target; engine = Core.Engine.Td_bu; query = q })
           with
          | Service.Error { code = Service.Statically_empty; _ } -> ()
          | _ -> Alcotest.fail "COUNT of a statically-empty query must be rejected");
          (match
             Service.call svc
               (Service.Transform { target; engine = Core.Engine.Gentop; query = q })
           with
          | Service.Error { code = Service.Statically_empty; _ } -> ()
          | _ -> Alcotest.fail "TRANSFORM of a statically-empty query must be rejected");
          let m = Service.metrics svc in
          Alcotest.(check bool) "rejections counted" true
            (Metrics.statically_empty_rejections m >= 2);
          (* the same query against a schemaless binding runs fine *)
          ignore (load svc "plain" path);
          match
            Service.call svc
              (Service.Count
                 { target = Service.Doc "plain"; engine = Core.Engine.Td_bu;
                   query = delete_q ~doc:"plain" "/site/people//bidder" })
          with
          | Service.Ok (Service.Element_count _) -> ()
          | _ -> Alcotest.fail "no schema binding, no admission check"))

let test_skip_metrics_and_answers () =
  with_xmark_file (fun path ->
      with_service (fun svc ->
          ignore (load svc ~schema:"xmark" "d" path);
          ignore (load svc "plain" path);
          let q doc = delete_q ~doc u7_path in
          let count doc engine =
            match
              Service.call svc
                (Service.Count { target = Service.Doc doc; engine; query = q doc })
            with
            | Service.Ok (Service.Element_count n) -> n
            | _ -> Alcotest.fail "COUNT"
          in
          let n_schema = count "d" Core.Engine.Td_bu in
          let n_plain = count "plain" Core.Engine.Td_bu in
          Alcotest.(check int) "pruned COUNT agrees with unpruned" n_plain n_schema;
          Alcotest.(check int) "gentop agrees too" n_plain (count "d" Core.Engine.Gentop);
          let m = Service.metrics svc in
          Alcotest.(check bool) "subtrees were skipped" true
            (Metrics.skipped_subtrees m > 0);
          Alcotest.(check bool) "skipped nodes counted via size table" true
            (Metrics.skipped_nodes m > Metrics.skipped_subtrees m);
          Alcotest.(check bool) "a product was built" true (Metrics.schema_products m > 0)))

let test_view_chain_equivalence () =
  with_xmark_file (fun path ->
      with_service (fun svc ->
          ignore (load svc ~schema:"xmark" "ds" path);
          ignore (load svc "dn" path);
          let defview name base =
            let q =
              Printf.sprintf
                {|transform copy $a := doc("%s") modify do delete $a/site/regions//item/mailbox return $a|}
                base
            in
            match Service.call svc (Service.Defview { name; query = q }) with
            | Service.Ok _ -> ()
            | Service.Error { message; _ } -> Alcotest.fail ("DEFVIEW: " ^ message)
          in
          let defview2 name base =
            let q =
              Printf.sprintf
                {|transform copy $a := doc("%s") modify do delete $a/site/open_auctions/open_auction/bidder return $a|}
                base
            in
            match Service.call svc (Service.Defview { name; query = q }) with
            | Service.Ok _ -> ()
            | Service.Error { message; _ } -> Alcotest.fail ("DEFVIEW: " ^ message)
          in
          (* two parallel 2-deep chains, one rooted at the schema-bound
             document, one at the plain one *)
          defview "vs1" "ds";
          defview2 "vs2" "vs1";
          defview "vn1" "dn";
          defview2 "vn2" "vn1";
          List.iter
            (fun uq ->
              let answer top =
                match
                  Service.call svc
                    (Service.Transform
                       { target = Service.View top; engine = Core.Engine.Td_bu; query = uq })
                with
                | Service.Ok (Service.Tree s) -> s
                | Service.Error { message; _ } -> Alcotest.fail ("VIEW answer: " ^ message)
                | _ -> Alcotest.fail "VIEW answer payload"
              in
              Alcotest.(check string)
                ("composed answers agree with and without schema: " ^ uq)
                (answer "vn2") (answer "vs2"))
            [ "for $x in site/people/person return $x/name";
              "for $x in site/open_auctions/open_auction return $x/seller";
              "for $x in site/regions//item return $x/name" ]))

(* ---- socket end to end ---- *)

let test_socket_statically_empty () =
  with_xmark_file (fun path ->
      with_service (fun svc ->
          let sock = Filename.temp_file "xut_schema_test" ".sock" in
          Sys.remove sock;
          let server =
            Xut_transport.Server.start ~service:svc (Xut_transport.Addr.Unix_socket sock)
          in
          Fun.protect
            ~finally:(fun () -> Xut_transport.Server.stop server)
            (fun () ->
              let cli =
                Xut_transport.Client.connect (Xut_transport.Addr.Unix_socket sock)
              in
              Fun.protect
                ~finally:(fun () -> Xut_transport.Client.close cli)
                (fun () ->
                  (match
                     Xut_transport.Client.call cli
                       (Service.Load { name = "d"; file = path; schema = Some "xmark" })
                   with
                  | Service.Ok (Service.Doc_loaded { schema = Some "xmark"; _ }) -> ()
                  | _ -> Alcotest.fail "LOAD ... SCHEMA over the socket");
                  match
                    Xut_transport.Client.call cli
                      (Service.Count
                         { target = Service.Doc "d"; engine = Core.Engine.Td_bu;
                           query = delete_q "/site/people//bidder" })
                  with
                  | Service.Error { code = Service.Statically_empty; message } ->
                    Alcotest.(check string) "stable error-code name" "statically-empty"
                      (Service.err_code_name Service.Statically_empty);
                    Alcotest.(check bool) "message names the schema" true
                      (String.length message > 0)
                  | _ ->
                    Alcotest.fail
                      "statically-empty rejection must survive the binary round trip"))))

(* The commit lifecycle of a schema binding: conforming commits keep it
   (incremental revalidation), a nonconforming one drops it — and the
   drop is loud: a flagged store event and a metrics counter, not a
   silent None. *)
let test_commit_schema_drop () =
  with_xmark_file (fun path ->
      with_service (fun svc ->
          ignore (load svc ~schema:Xut_xmark.Site_schema.bench_schema_name "d" path);
          let drops = ref [] in
          Doc_store.subscribe (Service.store svc) (fun ev ->
              if ev.Doc_store.schema_dropped then drops := ev.Doc_store.name :: !drops);
          let commit q =
            match Service.call svc (Service.Commit { doc = "d"; query = q }) with
            | Service.Ok (Service.Committed _) -> ()
            | _ -> Alcotest.fail ("COMMIT: " ^ q)
          in
          let bound () =
            match Doc_store.info (Service.store svc) "d" with
            | Some { Doc_store.schema; _ } -> schema
            | None -> Alcotest.fail "document vanished"
          in
          (* the bench schema permits the marker element: conforming *)
          commit "insert <xut_bench_promo>p</xut_bench_promo> into $a";
          Alcotest.(check bool) "conforming commit keeps the binding" true (bound () <> None);
          Alcotest.(check int) "no drop counted" 0
            (Metrics.schema_bindings_dropped (Service.metrics svc));
          (* an element no schema rule permits: the commit itself
             succeeds, the binding goes away observably *)
          commit "insert <bogus>1</bogus> into $a/site";
          Alcotest.(check bool) "nonconforming commit drops the binding" true
            (bound () = None);
          Alcotest.(check (list string)) "flagged event fired once" [ "d" ] !drops;
          Alcotest.(check int) "drop counted" 1
            (Metrics.schema_bindings_dropped (Service.metrics svc));
          (* once dropped there is nothing left to drop: further commits
             are schemaless and fire no more flags *)
          commit "delete $a//bogus";
          Alcotest.(check (list string)) "no second event" [ "d" ] !drops;
          Alcotest.(check int) "counter unchanged" 1
            (Metrics.schema_bindings_dropped (Service.metrics svc))))

let suite =
  [ Alcotest.test_case "validate: generated XMark conforms" `Quick test_validate_generated;
    Alcotest.test_case "validate: nonconforming trees rejected" `Quick test_validate_reject;
    Alcotest.test_case "product: statically-empty verdict" `Quick
      test_statically_empty_verdict;
    Alcotest.test_case "product: skip-set contents (U7)" `Quick test_skip_set_contents;
    Alcotest.test_case "product: > 62-state NFA" `Quick test_long_path_exceeds_bitset;
    Alcotest.test_case "pruned == unpruned (fixed paths)" `Quick test_pruned_equals_unpruned;
    prop_pruned_equals_unpruned;
    Alcotest.test_case "service: LOAD ... SCHEMA" `Quick test_load_with_schema;
    Alcotest.test_case "service: statically-empty admission" `Quick
      test_statically_empty_rejection;
    Alcotest.test_case "service: skip metrics + pruned answers" `Quick
      test_skip_metrics_and_answers;
    Alcotest.test_case "service: composed views agree under pruning" `Quick
      test_view_chain_equivalence;
    Alcotest.test_case "socket: statically-empty over the wire" `Quick
      test_socket_statically_empty;
    Alcotest.test_case "service: nonconforming COMMIT drops the binding loudly" `Quick
      test_commit_schema_drop ]
