(* Incremental annotation repair (PR 7): a [Annotator.repair]ed table
   must be indistinguishable — through [sat]/[checkp], entry for entry —
   from a from-scratch [annotate] of the post-commit tree, across random
   documents, random pending-update lists, compounding commits, and
   NFAs too large for the immediate-int bitset. *)

open Xut_xml
open Xut_automata
module Apply = Xut_update.Apply
module Service = Xut_service.Service
module Doc_store = Xut_service.Doc_store
module Plan_cache = Xut_service.Plan_cache
module Metrics = Xut_service.Metrics

let updates = Core.Transform_parser.parse_updates

(* Entry-for-entry equivalence, observed the way TD-BU observes it: the
   truth of every LQ expression at every node of the tree, plus the
   table sizes (a size mismatch means stale entries survived for ids
   that left the tree — invisible to [sat] but a leak under compounding
   commits). *)
let tables_equivalent nfa got expected root =
  let n = Xut_xpath.Lq.length (Selecting_nfa.lq nfa) in
  let ok = ref (Annotator.annotated_count got = Annotator.annotated_count expected) in
  Node.iter_elements
    (fun e ->
      for i = 0 to n - 1 do
        if Annotator.sat got e i <> Annotator.sat expected e i then ok := false
      done)
    root;
  !ok

(* ---- random documents x random update lists ---- *)

let gen_updates =
  QCheck2.Gen.(list_size (int_range 1 3) Test_properties.gen_update)

let prop_repair_equals_annotate =
  QCheck2.Test.make ~name:"repair = from-scratch annotate (random)" ~count:300
    QCheck2.Gen.(triple Test_properties.gen_root Test_properties.gen_path gen_updates)
    (fun (root, path, us) ->
      let nfa = Selecting_nfa.of_path path in
      let old_table = Annotator.annotate nfa root in
      match Apply.run us root with
      | Error _ -> true (* conflicting list: no new tree to repair for *)
      | Ok (_, None) -> true (* nothing selected: no commit *)
      | exception Apply.Invalid _ -> true (* root deleted/replaced: no commit *)
      | Ok (_, Some (root', diff)) -> begin
        match Annotator.repair nfa ~old_table ~spine:diff.Apply.spine root' with
        | None ->
          (* degenerate only when the document element was replaced *)
          not (Hashtbl.mem diff.Apply.spine (Node.id root'))
        | Some (repaired, _) ->
          tables_equivalent nfa repaired (Annotator.annotate nfa root') root'
      end)

(* ---- commits compounding on one document ---- *)

let prop_repair_compounds =
  QCheck2.Test.make ~name:"repair compounds across successive commits" ~count:60
    QCheck2.Gen.(
      triple Test_properties.gen_root Test_properties.gen_path
        (list_size (int_range 4 10) Test_properties.gen_update))
    (fun (root0, path, us) ->
      let nfa = Selecting_nfa.of_path path in
      let root = ref root0 in
      let table = ref (Annotator.annotate nfa root0) in
      List.for_all
        (fun u ->
          match Apply.run [ u ] !root with
          | Error _ | Ok (_, None) -> true
          | exception Apply.Invalid _ -> true
          | Ok (_, Some (root', diff)) when not (Hashtbl.mem diff.Apply.spine (Node.id root'))
            ->
            (* root replaced: restart the chain from a fresh annotation *)
            root := root';
            table := Annotator.annotate nfa root';
            true
          | Ok (_, Some (root', diff)) -> begin
            (* each round repairs the previous round's repaired table,
               so stale-entry leaks accumulate and surface as a count
               mismatch even when one round masks them *)
            match Annotator.repair nfa ~old_table:!table ~spine:diff.Apply.spine root' with
            | None -> false
            | Some (repaired, _) ->
              let fresh = Annotator.annotate nfa root' in
              let ok = tables_equivalent nfa repaired fresh root' in
              root := root';
              table := repaired;
              ok
          end)
        us)

(* ---- >62-state NFA: the Bytes-backed bitset path ---- *)

(* A chain document a/b/a/b/... with a <c> leaf at every level, and a
   64-step path [a[c]/b[c]/...] so the NFA outgrows the immediate-int
   bitset (62 states). *)
let chain_depth = 70
let path_steps = 64

let chain_doc () =
  let rec build d =
    let name = if d mod 2 = 0 then "a" else "b" in
    let kids = [ Node.elem "c" [ Node.text "X" ] ] in
    let kids = if d + 1 < chain_depth then kids @ [ Node.Element (build (d + 1)) ] else kids in
    Node.element name kids
  in
  build 1 (* the document element is the depth-0 "a"; chain starts at "b" *)

(* the first step matches the document element itself (the $a/p
   convention), so the path names start at the root's "a" *)
let deep_path ?(quals = true) n =
  String.concat "/"
    (List.init n (fun i ->
         let name = if i mod 2 = 0 then "a" else "b" in
         if quals then name ^ "[c]" else name))

let test_repair_wide_nfa () =
  let root = Node.element "a" [ Node.Element (chain_doc ()) ] in
  let nfa = Selecting_nfa.of_path (Xut_xpath.Parser.parse (deep_path path_steps)) in
  Alcotest.(check bool) "NFA outgrows the immediate bitset" true
    (Selecting_nfa.size nfa > 62);
  let table0 = Annotator.annotate nfa root in
  Alcotest.(check bool) "the chain is annotated at all" true
    (Annotator.annotated_count table0 > 0);
  (* three compounding commits: a deep insert (long rebuilt spine), a
     mid-spine rename (demand change over a shared subtree), and a deep
     delete — each repaired table must match from-scratch annotation *)
  let commits =
    [ Printf.sprintf "insert <c>Y</c> into $a/%s" (deep_path ~quals:false 40);
      Printf.sprintf "rename $a/%s as zz" (deep_path ~quals:false 20);
      (* above the renamed node, so the path still selects *)
      Printf.sprintf "delete $a/%s" (deep_path ~quals:false 15)
    ]
  in
  let root = ref root and table = ref table0 in
  List.iteri
    (fun i q ->
      match Apply.run (updates q) !root with
      | Ok (_, Some (root', diff)) -> begin
        match Annotator.repair nfa ~old_table:!table ~spine:diff.Apply.spine root' with
        | None -> Alcotest.failf "commit %d: repair unexpectedly degenerate" i
        | Some (repaired, st) ->
          Alcotest.(check bool)
            (Printf.sprintf "commit %d: repaired = annotated" i)
            true
            (tables_equivalent nfa repaired (Annotator.annotate nfa root') root');
          (* the point of repairing: most of the chain is not re-annotated *)
          if i = 0 then
            Alcotest.(check bool) "deep insert reuses entries" true
              (st.Annotator.reused > 0);
          root := root';
          table := repaired
      end
      | _ -> Alcotest.failf "commit %d did not materialize" i)
    commits

(* ---- degenerate diff: document element replaced ---- *)

let test_repair_degenerate_root_swap () =
  let root = Dom.parse_string "<site><items><item><price>9</price></item></items></site>" in
  let nfa = Selecting_nfa.of_path (Xut_xpath.Parser.parse "items/item[price]") in
  let old_table = Annotator.annotate nfa root in
  match Apply.run (updates "replace $a with <fresh><items/></fresh>") root with
  | Ok (_, Some (root', diff)) ->
    Alcotest.(check bool) "new root is not in the spine map" true
      (not (Hashtbl.mem diff.Apply.spine (Node.id root')));
    (match Annotator.repair nfa ~old_table ~spine:diff.Apply.spine root' with
    | None -> ()
    | Some _ -> Alcotest.fail "root replacement must be degenerate")
  | _ -> Alcotest.fail "root replacement did not materialize"

(* ---- plan cache: repair keeps the old root's table addressable ---- *)

let cache_doc_xml =
  {|<site><items><item><name>kettle</name><price>12</price></item><item><name>lamp</name><price>3</price></item></items></site>|}

let cache_query =
  {|transform copy $a := doc("d") modify do delete $a/site/items/item[price > 5]/name return $a|}

let test_plan_cache_repair_keeps_old_table () =
  let root = Dom.parse_string cache_doc_xml in
  let cache = Plan_cache.create ~capacity:8 in
  let plan, _ = Plan_cache.find_or_compile cache cache_query in
  let old_table = Plan_cache.annotation plan root in
  match Apply.run (updates "insert <item><price>7</price></item> into $a/site/items") root with
  | Ok (_, Some (root', diff)) ->
    let totals =
      Plan_cache.repair cache ~old_root_id:(Node.id root) ~spine:diff.Apply.spine root'
    in
    Alcotest.(check int) "one plan repaired" 1 totals.Plan_cache.repaired;
    Alcotest.(check int) "no fallbacks" 0 totals.Plan_cache.fallbacks;
    (* a reader still holding the pre-commit snapshot resolves the very
       same table — no eviction, no rebuild *)
    Alcotest.(check bool) "old root's table still addressable" true
      (Plan_cache.annotation plan root == old_table);
    (* and the new root's table was memoized by the repair (an
       [annotation] call now hits, and its entries match from-scratch) *)
    Alcotest.(check int) "both tables memoized" 2 (Plan_cache.annotation_entries cache);
    let repaired = Plan_cache.annotation plan root' in
    Alcotest.(check bool) "repaired table matches from-scratch" true
      (tables_equivalent plan.Plan_cache.nfa repaired
         (Annotator.annotate plan.Plan_cache.nfa root')
         root')
  | _ -> Alcotest.fail "commit did not materialize"

(* ---- service level: readers racing commit+repair ---- *)

let with_doc_file xml f =
  let path = Filename.temp_file "xut_repair_test" ".xml" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc xml);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let with_service ?(domains = 1) f =
  let svc = Service.create ~domains () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

let load_doc svc path =
  match Service.call svc (Service.Load { name = "d"; file = path; schema = None }) with
  | Service.Ok (Service.Doc_loaded _) -> ()
  | _ -> Alcotest.fail "load failed"

let mix_xml = "<root><m1><v>0</v></m1><m2><v>0</v></m2></root>"

(* Identity TD-BU read whose path carries a qualifier, so every request
   demands an annotation table and every commit exercises repair. *)
let read_query =
  {|transform copy $a := doc("d") modify do delete $a/root/m1[zz]/none return $a|}

let value_between s opening closing =
  let n = String.length s and ol = String.length opening in
  let rec find i =
    if i + ol > n then None
    else if String.sub s i ol = opening then Some (i + ol)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let rec upto i =
      if String.sub s i (String.length closing) = closing then i else upto (i + 1)
    in
    Some (String.sub s start (upto start - start))

(* PR 6's torn-snapshot race, now with repair in the commit path: every
   commit rewrites both cousins to the same stamp, readers in flight
   across the commit must see matching stamps (whole old or whole new
   snapshot), and the steady-state write load must be served by repairs
   — zero fallbacks. *)
let test_readers_race_repair () =
  with_doc_file mix_xml (fun path ->
      with_service ~domains:4 (fun svc ->
          load_doc svc path;
          let readers = ref [] in
          for k = 1 to 12 do
            for _ = 1 to 3 do
              readers :=
                Service.submit svc
                  (Service.Transform
                     { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = read_query })
                :: !readers
            done;
            let q =
              Printf.sprintf
                "(replace $a/root/m1/v with <v>%d</v>, replace $a/root/m2/v with <v>%d</v>)"
                k k
            in
            match Service.call svc (Service.Commit { doc = "d"; query = q }) with
            | Service.Ok (Service.Committed _) -> ()
            | _ -> Alcotest.fail "commit failed"
          done;
          List.iter
            (fun fut ->
              match Service.await fut with
              | Service.Ok (Service.Tree s) ->
                let m1 = Option.get (value_between s "<m1><v>" "</v></m1>") in
                let m2 = Option.get (value_between s "<m2><v>" "</v></m2>") in
                Alcotest.(check string) "no torn snapshot" m1 m2
              | _ -> Alcotest.fail "reader failed")
            !readers;
          let m = Service.metrics svc in
          Alcotest.(check int) "all commits effective" 12 (Metrics.commits m);
          Alcotest.(check bool) "commits were served by repairs" true
            (Metrics.annotation_repairs m > 0);
          Alcotest.(check int) "no repair fell back to eviction" 0
            (Metrics.repair_fallbacks m)))

(* A root-replacing commit through the service must take the fallback
   path: the table is evicted (counted as an invalidation), reads keep
   answering correctly against a fresh annotation. *)
let test_service_fallback_on_root_swap () =
  with_doc_file mix_xml (fun path ->
      with_service (fun svc ->
          load_doc svc path;
          let read () =
            match
              Service.call svc
                (Service.Transform
                   { target = Service.Doc "d"; engine = Core.Engine.Td_bu; query = read_query })
            with
            | Service.Ok (Service.Tree s) -> s
            | _ -> Alcotest.fail "read failed"
          in
          ignore (read ());
          (match
             Service.call svc
               (Service.Commit
                  { doc = "d"; query = "replace $a with <root><m1><v>9</v></m1></root>" })
           with
          | Service.Ok (Service.Committed _) -> ()
          | _ -> Alcotest.fail "commit failed");
          let m = Service.metrics svc in
          Alcotest.(check int) "fallback counted" 1 (Metrics.repair_fallbacks m);
          Alcotest.(check int) "no repair counted" 0 (Metrics.annotation_repairs m);
          Alcotest.(check string) "reads see the swapped tree" "<root><m1><v>9</v></m1></root>"
            (read ())))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_repair_equals_annotate;
    QCheck_alcotest.to_alcotest prop_repair_compounds;
    Alcotest.test_case "repair across a >62-state NFA" `Quick test_repair_wide_nfa;
    Alcotest.test_case "degenerate diff on root replacement" `Quick
      test_repair_degenerate_root_swap;
    Alcotest.test_case "plan-cache repair keeps old table addressable" `Quick
      test_plan_cache_repair_keeps_old_table;
    Alcotest.test_case "readers race commit+repair" `Quick test_readers_race_repair;
    Alcotest.test_case "service fallback on root replacement" `Quick
      test_service_fallback_on_root_swap;
  ]
