(* xut — command-line front end for the transform-query engines.

   Subcommands:
     transform   evaluate a transform query against a document
     compose     compose a transform query with a user query
     rewrite     print the standard-XQuery rewriting (Fig. 2)
     query       evaluate an XQuery (subset) against a document
     xmark       generate an XMark-style document *)

open Cmdliner
open Core

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let load_doc path = Xut_xml.Dom.parse_file path

(* ---------------- shared arguments ---------------- *)

let doc_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "doc" ] ~docv:"FILE" ~doc:"Input XML document.")

let engine_arg =
  let parse s =
    match Engine.of_string s with
    | Some a -> Ok a
    | None ->
      Error (`Msg (Printf.sprintf "unknown engine %S (naive|gentop|td-bu|sax|copy|reference)" s))
  in
  let print ppf a = Format.pp_print_string ppf (Engine.name a) in
  Arg.(
    value
    & opt (conv (parse, print)) Engine.Gentop
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:"Evaluation engine: naive, gentop, td-bu, sax, copy or reference.")

let indent_arg =
  Arg.(value & flag & info [ "pretty" ] ~doc:"Indent the output document.")

let query_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY" ~doc:"The query text, or @FILE to read it from a file.")

let read_query q = if String.length q > 0 && q.[0] = '@' then read_file (String.sub q 1 (String.length q - 1)) else q

let print_doc ~pretty root =
  print_endline
    (if pretty then Xut_xml.Serialize.element_to_string ~indent:2 root
     else Xut_xml.Serialize.element_to_string root)

(* ---------------- transform ---------------- *)

let transform_cmd =
  let run query doc engine pretty stats =
    let q = Transform_parser.parse (read_query query) in
    let root = load_doc doc in
    Stats.reset ();
    let t0 = Unix.gettimeofday () in
    let out = Engine.run engine q ~doc:root in
    let dt = Unix.gettimeofday () -. t0 in
    print_doc ~pretty out;
    if stats then
      Format.eprintf "engine=%s time=%.4fs %a@." (Engine.name engine) dt Stats.pp (Stats.read ());
    0
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print timing and node counters to stderr.") in
  Cmd.v
    (Cmd.info "transform" ~doc:"Evaluate a transform query (update syntax) without touching the store.")
    Term.(const run $ query_pos $ doc_arg $ engine_arg $ indent_arg $ stats)

(* ---------------- compose ---------------- *)

let compose_cmd =
  let run tq uq doc_opt show naive_flag =
    let q = Transform_parser.parse (read_query tq) in
    let user = User_query.parse (read_query uq) in
    (match Composition.compose q.Transform_ast.update user with
    | Ok composed ->
      if show then begin
        print_endline "-- composed query (xut:* are runtime topDown helpers) --";
        print_endline (Composition.to_string composed)
      end;
      (match doc_opt with
      | Some path ->
        let root = load_doc path in
        let v =
          if naive_flag then Composition.naive q.Transform_ast.update user ~doc:root
          else Composition.run_composed composed ~doc:root
        in
        List.iter
          (fun item ->
            match item with
            | Xut_xquery.Xq_value.N n -> print_endline (Xut_xml.Serialize.to_string n)
            | other -> print_endline (Xut_xquery.Xq_value.string_of_item other))
          v
      | None -> ())
    | Error reason ->
      Printf.eprintf "not statically composable (%s); falling back to naive composition\n" reason;
      Option.iter
        (fun path ->
          let root = load_doc path in
          let v = Composition.naive q.Transform_ast.update user ~doc:root in
          List.iter
            (fun item ->
              match item with
              | Xut_xquery.Xq_value.N n -> print_endline (Xut_xml.Serialize.to_string n)
              | other -> print_endline (Xut_xquery.Xq_value.string_of_item other))
            v)
        doc_opt);
    0
  in
  let tq =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRANSFORM" ~doc:"Transform query (or @FILE).")
  in
  let uq =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"USER" ~doc:"User query (or @FILE).")
  in
  let doc_opt =
    Arg.(value & opt (some file) None & info [ "d"; "doc" ] ~docv:"FILE" ~doc:"Evaluate against this document.")
  in
  let show = Arg.(value & flag & info [ "show" ] ~doc:"Print the composed query.") in
  let naive_flag =
    Arg.(value & flag & info [ "naive" ] ~doc:"Use the Naive Composition method instead.")
  in
  Cmd.v
    (Cmd.info "compose" ~doc:"Compose a user query with a transform query (Section 4).")
    Term.(const run $ tq $ uq $ doc_opt $ show $ naive_flag)

(* ---------------- rewrite ---------------- *)

let rewrite_cmd =
  let run query method_ =
    let q = Transform_parser.parse (read_query query) in
    (match method_ with
    | "naive" -> print_endline (Xquery_rewrite.rewrite_to_string q)
    | "gentop" -> print_endline (Xquery_compile.compile_to_string q)
    | m -> Printf.eprintf "unknown method %S (naive|gentop)\n" m);
    0
  in
  let method_ =
    Arg.(value & opt string "naive"
         & info [ "m"; "method" ] ~docv:"METHOD"
             ~doc:"Rewriting: 'naive' (Fig. 2 template) or 'gentop' (compiled automaton).")
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Print a transform query as standard XQuery (Fig. 2 template or compiled automaton).")
    Term.(const run $ query_pos $ method_)

(* ---------------- query ---------------- *)

let query_cmd =
  let run query doc =
    let root = load_doc doc in
    let env = Xut_xquery.Xq_eval.env ~context:root ~docs:[ ("doc", root) ] () in
    let v = Xut_xquery.Xq_eval.run_query env (read_query query) in
    List.iter
      (fun item ->
        match item with
        | Xut_xquery.Xq_value.N n -> print_endline (Xut_xml.Serialize.to_string n)
        | Xut_xquery.Xq_value.D e -> print_endline (Xut_xml.Serialize.element_to_string e)
        | other -> print_endline (Xut_xquery.Xq_value.string_of_item other))
      v;
    0
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an XQuery (engine subset) against a document.")
    Term.(const run $ query_pos $ doc_arg)

(* ---------------- xmark ---------------- *)

let xmark_cmd =
  let run factor seed output =
    Xut_xmark.Generator.to_file ~seed:(Int64.of_int seed) ~factor output;
    Printf.printf "wrote %s (factor %g)\n" output factor;
    0
  in
  let factor =
    Arg.(value & opt float 0.01 & info [ "f"; "factor" ] ~docv:"F" ~doc:"XMark scaling factor.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let output =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "xmark" ~doc:"Generate an XMark-style auction document.")
    Term.(const run $ factor $ seed $ output)

let main =
  let info = Cmd.info "xut" ~version:"1.0.0" ~doc:"Querying XML with update syntax (SIGMOD 2007)." in
  Cmd.group info [ transform_cmd; compose_cmd; rewrite_cmd; query_cmd; xmark_cmd ]

let () = exit (Cmd.eval' main)
