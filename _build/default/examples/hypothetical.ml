(* Hypothetical ("what-if") queries: ask a question about the state the
   database WOULD be in after an update, without performing it — the
   classic "Q when {U}" pattern the paper traces back to hypothetical
   datalog.

     dune exec examples/hypothetical.exe *)

open Core

let count doc path =
  List.length (Xut_xpath.Eval.select_doc doc (Xut_xpath.Parser.parse path))

let () =
  let doc = Xut_xmark.Generator.generate ~factor:0.01 () in

  (* What if we purged all auctions with low-ball bidders?  How many
     open auctions would remain, and how many bids would we lose? *)
  let purge =
    Transform_parser.parse
      {|transform copy $a := doc("site") modify
          do delete $a/site/open_auctions/open_auction[bidder/increase < 3]
        return $a|}
  in
  let before_auctions = count doc "site/open_auctions/open_auction" in
  let before_bids = count doc "site/open_auctions/open_auction/bidder" in

  (* TD-BU: annotate qualifiers bottom-up once, then one top-down pass. *)
  Stats.reset ();
  let world = Engine.run Engine.Td_bu purge ~doc in
  let s = Stats.read () in

  let after_auctions = count world "site/open_auctions/open_auction" in
  let after_bids = count world "site/open_auctions/open_auction/bidder" in

  Printf.printf "open auctions:  %4d -> %4d\n" before_auctions after_auctions;
  Printf.printf "bids:           %4d -> %4d\n" before_bids after_bids;
  Printf.printf "(engine visited %d elements, copied %d, shared %d subtrees)\n\n"
    s.Stats.visited s.Stats.copied s.Stats.shared;

  (* Chained what-if: on that hypothetical state, what if US items were
     additionally flagged?  Transform queries compose like functions. *)
  let flag =
    Transform_parser.parse
      {|transform copy $a := doc("site") modify
          do insert <flagged reason="audit"/> into
             $a/site/regions//item[location = "United States"]
        return $a|}
  in
  let world2 = Engine.run Engine.Gentop flag ~doc:world in
  Printf.printf "flagged items in the second hypothetical world: %d\n"
    (count world2 "site/regions//item/flagged");
  Printf.printf "flags in the real database: %d\n" (count doc "site/regions//item/flagged");
  Printf.printf "the real database still has %d auctions.\n"
    (count doc "site/open_auctions/open_auction")
