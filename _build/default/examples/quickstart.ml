(* Quickstart: the "updates as queries" example of the paper's
   introduction (Example 1.1) on the Fig. 1 parts catalog.

     dune exec examples/quickstart.exe *)

open Core

let catalog =
  {|<db>
      <part><pname>keyboard</pname>
        <supplier><sname>HP</sname><price>12</price><country>A</country></supplier>
        <supplier><sname>Logi</sname><price>20</price><country>B</country></supplier>
      </part>
      <part><pname>mouse</pname>
        <supplier><sname>Logi</sname><price>25</price><country>C</country></supplier>
      </part>
    </db>|}

let () =
  let doc = Xut_xml.Dom.parse_string catalog in

  (* A transform query uses update syntax but has no destructive impact:
     it returns the tree the update WOULD produce. *)
  let query =
    Transform_parser.parse
      {|transform copy $a := doc("catalog") modify do delete $a//price return $a|}
  in
  print_endline "-- the transform query --";
  print_endline (Transform_ast.to_string query);

  (* Evaluate it with the automaton-based Top Down method (GENTOP). *)
  let result = Engine.run Engine.Gentop query ~doc in
  print_endline "\n-- result: everything except prices --";
  print_endline (Xut_xml.Serialize.element_to_string ~indent:2 result);

  (* The store is untouched — transform queries are non-updating. *)
  let prices = Xut_xpath.Eval.select_doc doc (Xut_xpath.Parser.parse "//price") in
  Printf.printf "\nprices still in the source document: %d\n" (List.length prices);

  (* All engines produce the same tree; pick by workload. *)
  print_endline "\n-- the five engines agree --";
  List.iter
    (fun algo ->
      let out = Engine.run algo query ~doc in
      Printf.printf "%-12s %s\n" (Engine.name algo)
        (if Xut_xml.Node.equal_element out result then "ok" else "MISMATCH"))
    Engine.[ Naive; Gentop; Td_bu; Two_pass_sax; Galax_update ]
