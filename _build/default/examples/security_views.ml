(* Security views (Example 1.1 / 4.1): each user group sees the document
   through a virtual view defined as a transform query; user queries are
   composed with the view so that nothing is ever materialized.

     dune exec examples/security_views.exe *)

open Core

let () =
  let doc = Xut_xmark.Generator.generate ~factor:0.005 () in
  Printf.printf "auction site: %d elements\n\n"
    (Xut_xml.Node.element_count (Xut_xml.Node.Element doc));

  (* Policy: this user group must not see credit card numbers, nor the
     profiles of people from the US. *)
  let view =
    Transform_parser.parse
      {|transform copy $a := doc("site") modify
          do delete $a/site/people/person/creditcard
        return $a|}
  in
  print_endline "-- the (virtual) security view --";
  print_endline (Transform_ast.to_string view);

  (* A user asks for people's payment data through the view. *)
  let user =
    User_query.parse
      {|for $x in site/people/person
        where $x/name != ""
        return <who>{$x/name}{$x/creditcard}</who>|}
  in
  print_endline "\n-- the user query (against the view) --";
  print_endline (User_query.to_string user);

  (* Compose Method: one query over the stored document. *)
  (match Composition.compose view.Transform_ast.update user with
  | Error m -> failwith m
  | Ok composed ->
    print_endline "\n-- composed into a single query --";
    print_endline (Composition.to_string composed);
    let t0 = Unix.gettimeofday () in
    let answer = Composition.run_composed composed ~doc in
    let t_compose = Unix.gettimeofday () -. t0 in
    let t0 = Unix.gettimeofday () in
    let naive = Composition.naive view.Transform_ast.update user ~doc in
    let t_naive = Unix.gettimeofday () -. t0 in
    Printf.printf "\nanswers: %d (compose %.4fs, naive composition %.4fs, agree: %b)\n"
      (List.length answer) t_compose t_naive
      (List.length naive = List.length answer);
    (* no credit card ever crosses the view *)
    let leaked =
      List.exists
        (fun item ->
          match item with
          | Xut_xquery.Xq_value.N (Xut_xml.Node.Element e) ->
            Xut_xpath.Eval.select e (Xut_xpath.Parser.parse "creditcard") <> []
          | _ -> false)
        answer
    in
    Printf.printf "credit cards leaked through the view: %b\n" leaked;
    match answer with
    | first :: _ ->
      print_endline "first answer:";
      (match first with
      | Xut_xquery.Xq_value.N n -> print_endline (Xut_xml.Serialize.to_string n)
      | other -> print_endline (Xut_xquery.Xq_value.string_of_item other))
    | [] -> ())
