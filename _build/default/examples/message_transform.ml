(* Message transformation (the fourth application of Example 1.1):
   produce modified versions of an XML message without destroying the
   original — e.g. redacting, renaming for a partner schema, and
   stamping a routing header, each as a transform query.

     dune exec examples/message_transform.exe *)

open Core

let message =
  {|<order id="o-1871">
      <customer>
        <name>Ada L.</name>
        <creditcard>4000 1234 5678 9010</creditcard>
      </customer>
      <items>
        <item sku="K-100"><qty>2</qty><unit_price>79.00</unit_price></item>
        <item sku="M-7"><qty>1</qty><unit_price>25.50</unit_price></item>
      </items>
    </order>|}

(* The whole pipeline is one compound transform query: redact payment
   data, rename for the partner schema, stamp the routing header. *)
let pipeline =
  Sequence.parse
    {|transform copy $a := doc("order") modify do (
        delete $a/order/customer/creditcard,
        rename $a/order/items as lines,
        insert <routing system="warehouse-7" priority="2"/> into $a/order
      ) return $a|}

let () =
  let original = Xut_xml.Dom.parse_string message in
  print_endline "-- the compound transform query --";
  print_endline (Sequence.to_string pipeline);
  let final = Sequence.run Engine.Gentop pipeline ~doc:original in
  print_endline "\n-- outgoing message --";
  print_endline (Xut_xml.Serialize.element_to_string ~indent:2 final);
  print_endline "\n-- original message (untouched) --";
  print_endline (Xut_xml.Serialize.element_to_string ~indent:2 original)
