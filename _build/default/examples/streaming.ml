(* Streaming evaluation of transform queries (Section 6): two passes of
   SAX parsing, memory bounded by document depth — for documents that do
   not fit comfortably in a DOM.

     dune exec examples/streaming.exe *)

open Core

let () =
  (* Write a document to disk; the streaming engine re-reads it twice. *)
  let path = Filename.temp_file "xut_stream" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xut_xmark.Generator.to_file ~factor:0.05 path;
      let size_mb = float_of_int (Unix.stat path).Unix.st_size /. 1048576.0 in
      Printf.printf "document on disk: %.1f MB\n" size_mb;

      let update =
        Transform_parser.parse_update
          {|delete $a/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description|}
      in

      let out = Buffer.create (1 lsl 20) in
      let t0 = Unix.gettimeofday () in
      let stats = Sax_transform.transform_file update ~src:path ~out in
      let dt = Unix.gettimeofday () -. t0 in

      Printf.printf "twoPassSAX: %.3fs for two parsing passes\n" dt;
      Printf.printf "  elements seen        : %d\n" stats.Sax_transform.elements_seen;
      Printf.printf "  peak stack depth     : %d entries (memory is O(depth))\n"
        stats.Sax_transform.max_stack_depth;
      Printf.printf "  truth list Ld        : %d entries\n" stats.Sax_transform.truth_entries;
      Printf.printf "  output size          : %.1f MB\n"
        (float_of_int (Buffer.length out) /. 1048576.0);

      (* The output stream is well-formed XML with the descriptions gone. *)
      let result = Xut_xml.Dom.parse_string (Buffer.contents out) in
      let count p =
        List.length (Xut_xpath.Eval.select_doc result (Xut_xpath.Parser.parse p))
      in
      Printf.printf "  happy/expensive descriptions kept: %d\n"
        (count "site/open_auctions/open_auction/annotation/description");
      print_endline "done.")
