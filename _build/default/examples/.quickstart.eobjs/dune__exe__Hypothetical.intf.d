examples/hypothetical.mli:
