examples/security_views.mli:
