examples/quickstart.ml: Core Engine List Printf Transform_ast Transform_parser Xut_xml Xut_xpath
