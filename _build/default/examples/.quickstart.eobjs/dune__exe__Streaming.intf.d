examples/streaming.mli:
