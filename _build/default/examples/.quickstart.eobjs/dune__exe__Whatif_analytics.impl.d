examples/whatif_analytics.ml: Core Engine List Printf Sequence Transform_parser Xq_eval Xq_value Xut_xmark Xut_xquery
