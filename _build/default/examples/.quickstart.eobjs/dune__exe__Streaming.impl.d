examples/streaming.ml: Buffer Core Filename Fun List Printf Sax_transform Sys Transform_parser Unix Xut_xmark Xut_xml Xut_xpath
