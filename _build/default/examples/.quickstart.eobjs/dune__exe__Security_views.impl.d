examples/security_views.ml: Composition Core List Printf Transform_ast Transform_parser Unix User_query Xut_xmark Xut_xml Xut_xpath Xut_xquery
