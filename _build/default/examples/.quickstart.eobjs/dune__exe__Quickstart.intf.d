examples/quickstart.mli:
