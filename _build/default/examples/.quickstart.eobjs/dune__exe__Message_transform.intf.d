examples/message_transform.mli:
