examples/whatif_analytics.mli:
