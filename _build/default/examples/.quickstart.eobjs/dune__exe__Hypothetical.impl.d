examples/hypothetical.ml: Core Engine List Printf Stats Transform_parser Xut_xmark Xut_xpath
