examples/message_transform.ml: Core Engine Sequence Xut_xml
