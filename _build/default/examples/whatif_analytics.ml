(* What-if analytics: aggregate queries over hypothetical worlds.
   Combines transform queries (the hypothetical update) with the XQuery
   engine's aggregates — "what would our auction stats look like if we
   purged the suspicious accounts?"

     dune exec examples/whatif_analytics.exe *)

open Core
open Xut_xquery

let metric doc label =
  let env = Xq_eval.env ~context:doc () in
  let one src =
    match Xq_eval.run_query env src with
    | [ item ] -> Xq_value.string_of_item item
    | items -> string_of_int (List.length items)
  in
  Printf.printf "%-28s %8s %10s %10s %8s\n" label
    (one "count(site/open_auctions/open_auction)")
    (one "round(avg(site/open_auctions/open_auction/current))")
    (one "max(site/open_auctions/open_auction/bidder/increase)")
    (one "count(site/people/person)")

let () =
  let doc = Xut_xmark.Generator.generate ~factor:0.01 () in
  Printf.printf "%-28s %8s %10s %10s %8s\n" "world" "auctions" "avg-price" "max-raise" "people";
  metric doc "actual";

  (* world 1: purge auctions without a reserve *)
  let w1 =
    Engine.transform Engine.Td_bu
      (Transform_parser.parse_update
         "delete $a/site/open_auctions/open_auction[not(reserve)]")
      doc
  in
  metric w1 "no-reserve purged";

  (* world 2: additionally anonymize people (chained hypothetical) *)
  let w2 =
    Sequence.run Engine.Gentop
      (Sequence.parse
         {|transform copy $a := doc("site") modify do (
             delete $a/site/people/person/creditcard,
             delete $a/site/people/person/phone,
             rename $a/site/people/person/emailaddress as contact
           ) return $a|})
      ~doc:w1
  in
  metric w2 "  + anonymized";

  (* the real database never changed *)
  metric doc "actual (still)";

  (* a hypothetical aggregate in one expression: what-if via the engine *)
  let env = Xq_eval.env ~context:doc () in
  let bids_over_10 =
    Xq_eval.run_query env
      "count(site/open_auctions/open_auction/bidder[increase > 10])"
  in
  Printf.printf "\nbids with increase > 10 (actual): %s\n"
    (Xq_value.string_of_item (List.hd bids_over_10))
