(** Tokenizer shared by the XPath and transform-query parsers. *)

type token =
  | SLASH
  | DSLASH
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | STAR
  | DOT
  | AT
  | COMMA
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | NAME of string
  | STRING of string
  | NUMBER of float
  | EOF

exception Lex_error of { pos : int; msg : string }

val tokenize : string -> token list
(** @raise Lex_error on unrecognized input. *)

val pp_token : Format.formatter -> token -> unit
val token_to_string : token -> string
