(** Abstract syntax of the XPath fragment X (Section 2), extended with
    the comparison operators and attribute tests that the paper's own
    benchmark queries (Fig. 11) use.

    A path is a sequence of steps; each step is a navigation (label,
    wildcard, or descendant-or-self) plus a list of qualifiers.  [Self]
    steps ('.') are accepted by the parser and eliminated by
    {!Norm.steps}. *)

type nav =
  | Self
  | Label of string
  | Wildcard
  | Descendant  (** the '//' separator, i.e. /descendant-or-self::node()/ *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type value = V_str of string | V_num of float

type path = step list

and step = { nav : nav; quals : qual list }

and qual =
  | Q_true
  | Q_exists of source            (** path existence, e.g. [supplier] *)
  | Q_cmp of source * cmp * value (** e.g. [price < 15], [@id = "x"] *)
  | Q_label of string             (** label() = l *)
  | Q_and of qual * qual
  | Q_or of qual * qual
  | Q_not of qual

(** A qualifier's value source: a relative path (possibly empty, meaning
    the context node), optionally ending in an attribute selection. *)
and source = { spath : path; sattr : string option }

val step : ?quals:qual list -> nav -> step
val self_source : source
val attr_source : string -> source
val path_source : path -> source

val q_and : qual list -> qual
(** Conjunction of a list ([Q_true] when empty). *)

val compare_values : cmp -> string -> value -> bool
(** [compare_values op s v] — numeric comparison when [v] is numeric and
    [s] parses as a number, string comparison otherwise.  A numeric
    literal compared against non-numeric text is [false]. *)

val equal_path : path -> path -> bool
val equal_qual : qual -> qual -> bool

val pp_path : Format.formatter -> path -> unit
val pp_qual : Format.formatter -> qual -> unit
val path_to_string : path -> string
val qual_to_string : qual -> string
val cmp_to_string : cmp -> string
