(** Normalization of X expressions (Sections 3.4 and 5).

    A path is rewritten to the equivalent form
    [beta_1\[q_1\]/.../beta_k\[q_k\]] where each [beta_i] is a label, a
    wildcard, or descendant-or-self; ['.'] steps are eliminated by folding
    their qualifiers into the preceding step (or into the context
    qualifiers when leading). *)

type nnav = N_label of string | N_wild | N_desc

type nstep = { nav : nnav; quals : Ast.qual list }

type t = {
  ctx_quals : Ast.qual list;  (** qualifiers applying to the context node *)
  steps : nstep list;
}

val steps : Ast.path -> t

val to_path : t -> Ast.path
(** The steps (context qualifiers dropped) as a plain path. *)

val nstep_to_string : nstep -> string
val to_string : t -> string
