type token =
  | SLASH
  | DSLASH
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | STAR
  | DOT
  | AT
  | COMMA
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | NAME of string
  | STRING of string
  | NUMBER of float
  | EOF

exception Lex_error of { pos : int; msg : string }

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = ':'

let tokenize src =
  let n = String.length src in
  let rec go pos acc =
    if pos >= n then List.rev (EOF :: acc)
    else
      let c = src.[pos] in
      if is_ws c then go (pos + 1) acc
      else
        match c with
        | '/' ->
          if pos + 1 < n && src.[pos + 1] = '/' then go (pos + 2) (DSLASH :: acc)
          else go (pos + 1) (SLASH :: acc)
        | '[' -> go (pos + 1) (LBRACKET :: acc)
        | ']' -> go (pos + 1) (RBRACKET :: acc)
        | '(' -> go (pos + 1) (LPAREN :: acc)
        | ')' -> go (pos + 1) (RPAREN :: acc)
        | '*' -> go (pos + 1) (STAR :: acc)
        | '.' ->
          if pos + 1 < n && is_digit src.[pos + 1] then number pos acc
          else go (pos + 1) (DOT :: acc)
        | '@' -> go (pos + 1) (AT :: acc)
        | ',' -> go (pos + 1) (COMMA :: acc)
        | '=' -> go (pos + 1) (EQ :: acc)
        | '!' ->
          if pos + 1 < n && src.[pos + 1] = '=' then go (pos + 2) (NEQ :: acc)
          else raise (Lex_error { pos; msg = "expected != " })
        | '<' ->
          if pos + 1 < n && src.[pos + 1] = '=' then go (pos + 2) (LE :: acc)
          else go (pos + 1) (LT :: acc)
        | '>' ->
          if pos + 1 < n && src.[pos + 1] = '=' then go (pos + 2) (GE :: acc)
          else go (pos + 1) (GT :: acc)
        | '\'' | '"' -> string_lit c (pos + 1) (pos + 1) acc
        | c when is_digit c -> number pos acc
        | c when is_name_start c ->
          let stop = scan_while (pos + 1) is_name_char in
          go stop (NAME (String.sub src pos (stop - pos)) :: acc)
        | c -> raise (Lex_error { pos; msg = Printf.sprintf "unexpected character %C" c })
  and scan_while pos pred =
    if pos < n && pred src.[pos] then scan_while (pos + 1) pred else pos
  and string_lit quote start pos acc =
    if pos >= n then raise (Lex_error { pos = start; msg = "unterminated string literal" })
    else if src.[pos] = quote then
      go (pos + 1) (STRING (String.sub src start (pos - start)) :: acc)
    else string_lit quote start (pos + 1) acc
  and number pos acc =
    let stop = scan_while pos is_digit in
    let stop = if stop < n && src.[stop] = '.' then scan_while (stop + 1) is_digit else stop in
    go stop (NUMBER (float_of_string (String.sub src pos (stop - pos))) :: acc)
  in
  go 0 []

let token_to_string = function
  | SLASH -> "/"
  | DSLASH -> "//"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LPAREN -> "("
  | RPAREN -> ")"
  | STAR -> "*"
  | DOT -> "."
  | AT -> "@"
  | COMMA -> ","
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | NAME s -> s
  | STRING s -> Printf.sprintf "%S" s
  | NUMBER f -> string_of_float f
  | EOF -> "<eof>"

let pp_token ppf t = Format.pp_print_string ppf (token_to_string t)
