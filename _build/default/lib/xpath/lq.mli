(** The LQ list of Section 5: every qualifier of a query together with all
    of its sub-expressions, in the normal form of Fig. 7, hash-consed into
    an array in topological order (sub-expressions strictly precede their
    containing expressions).

    Truth vectors over LQ ([bool array] of length {!length}) are what the
    bottom-up algorithms compute per node ([sat]) and aggregate over
    children ([csat], an OR across children). *)

type expr =
  | True_
  | Seq of int * int      (** eps[q]/p : both hold at the node *)
  | Child of int          (** * /p : p holds at some child *)
  | Desc of int           (** //p : p holds at the node or a strict descendant *)
  | Label_is of string
  | Text_cmp of Ast.cmp * Ast.value  (** direct-text comparison *)
  | Attr_cmp of string * Ast.cmp * Ast.value
  | Attr_exists of string
  | And_ of int * int
  | Or_ of int * int
  | Not_ of int

type t

type builder

val create_builder : unit -> builder

val add_qual : builder -> Ast.qual -> int
(** Normalize a qualifier and intern it; returns its LQ index. *)

val freeze : builder -> t

val length : t -> int
val expr : t -> int -> expr
val exprs : t -> expr array

val label_blocked : t -> int -> string -> bool
(** [label_blocked lq i name]: expression [i] starts with a label guard
    that [name] fails, so it is statically false at any node named
    [name] (drives the filtering-NFA-style pruning of child needs). *)

val expr_to_string : t -> int -> string

val eval_at :
  t ->
  name:string ->
  attrs:(string * string) list ->
  text:string ->
  csat:(int -> bool) ->
  wanted:int list ->
  bool array
(** QualDP (Fig. 7): truth values of the [wanted] expressions (and,
    on demand, their sub-expressions) at a node with the given local
    properties, where [csat i] tells whether expression [i] holds at
    some child.  Entries not demanded remain [false]. *)
