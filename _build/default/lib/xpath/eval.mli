open Xut_xml

(** Direct (non-automaton) evaluator for X — the reference semantics
    [v\[\[p\]\]] of Section 2 that every other engine is tested against,
    and the qualifier oracle [checkp] used by the Top Down method when no
    annotations are available (the paper's GENTOP configuration delegates
    qualifier checking to the host engine; this is our host engine). *)

val select : Node.element -> Ast.path -> Node.element list
(** [select ctx p] = the elements reachable from context node [ctx] via
    [p], in document order, without duplicates.  The first step navigates
    to children of [ctx]; an empty path yields [ctx] itself. *)

val select_doc : Node.element -> Ast.path -> Node.element list
(** [select_doc root p] evaluates [p] with the virtual document node as
    context, i.e. the first step is matched against [root] itself (the
    [$a/p] convention of Section 2 where [$a = doc(...)]). *)

val check_qual : Node.element -> Ast.qual -> bool
(** [checkp q n]: does qualifier [q] hold at node [n]? *)

val node_set_ids : Node.element list -> (int, unit) Hashtbl.t
(** Identity set over element ids, for membership tests. *)
