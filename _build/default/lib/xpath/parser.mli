(** Recursive-descent parser for the XPath fragment X. *)

exception Parse_error of string

(** Token-stream cursor, exposed so that the transform-query and XQuery
    parsers can embed XPath sub-parses. *)
module Stream_ : sig
  type t

  val of_tokens : Lexer.token list -> t
  val of_string : string -> t
  val peek : t -> Lexer.token
  val peek2 : t -> Lexer.token
  val junk : t -> unit
  val next : t -> Lexer.token
  val expect : t -> Lexer.token -> unit
  val expect_name : t -> string
  val at_eof : t -> bool
  val fail : t -> string -> 'a
end

val parse : string -> Ast.path
(** Parse a complete path; the whole string must be consumed.
    @raise Parse_error otherwise. *)

val parse_qual : string -> Ast.qual
(** Parse a complete qualifier body (without the enclosing brackets). *)

val path_of_stream : Stream_.t -> Ast.path
(** Parse a path from the current position, stopping at the first token
    that cannot extend it. *)

val qual_of_stream : Stream_.t -> Ast.qual
