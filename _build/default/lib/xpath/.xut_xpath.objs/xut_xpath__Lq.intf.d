lib/xpath/lq.mli: Ast
