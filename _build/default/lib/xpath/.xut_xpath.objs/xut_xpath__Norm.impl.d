lib/xpath/norm.ml: Ast Buffer List String
