lib/xpath/norm.mli: Ast
