lib/xpath/eval.ml: Ast Hashtbl List Node Norm String Xut_xml
