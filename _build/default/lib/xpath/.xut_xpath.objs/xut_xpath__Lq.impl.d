lib/xpath/lq.ml: Array Ast Hashtbl List Printf String
