lib/xpath/eval.mli: Ast Hashtbl Node Xut_xml
