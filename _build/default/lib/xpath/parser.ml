exception Parse_error of string

module Stream_ = struct
  type t = { mutable toks : Lexer.token list }

  let of_tokens toks = { toks }
  let of_string s = of_tokens (Lexer.tokenize s)

  let peek t = match t.toks with [] -> Lexer.EOF | tok :: _ -> tok
  let peek2 t = match t.toks with _ :: tok :: _ -> tok | _ -> Lexer.EOF

  let junk t = match t.toks with [] -> () | _ :: rest -> t.toks <- rest

  let next t =
    let tok = peek t in
    junk t;
    tok

  let fail _t msg = raise (Parse_error msg)

  let expect t tok =
    let got = next t in
    if got <> tok then
      raise
        (Parse_error
           (Printf.sprintf "expected %s, found %s" (Lexer.token_to_string tok)
              (Lexer.token_to_string got)))

  let expect_name t =
    match next t with
    | Lexer.NAME n -> n
    | got ->
      raise (Parse_error (Printf.sprintf "expected a name, found %s" (Lexer.token_to_string got)))

  let at_eof t = peek t = Lexer.EOF
end

open Stream_

let rec parse_steps t ~leading =
  (* [leading] is true when we are at the very start (absolute '/' already
     consumed or not present): a step is required. *)
  let rec quals acc =
    if peek t = Lexer.LBRACKET then begin
      junk t;
      let q = or_expr t in
      expect t Lexer.RBRACKET;
      quals (q :: acc)
    end
    else List.rev acc
  in
  let one_step () =
    match peek t with
    | Lexer.DOT ->
      junk t;
      { Ast.nav = Ast.Self; quals = quals [] }
    | Lexer.STAR ->
      junk t;
      { Ast.nav = Ast.Wildcard; quals = quals [] }
    | Lexer.NAME n ->
      junk t;
      { Ast.nav = Ast.Label n; quals = quals [] }
    | tok ->
      fail t (Printf.sprintf "expected a step, found %s" (Lexer.token_to_string tok))
  in
  ignore leading;
  let first = one_step () in
  let rec more acc =
    match peek t with
    | Lexer.SLASH when (peek2 t = Lexer.AT) = false && starts_step_after_slash t ->
      junk t;
      let s = one_step () in
      more (s :: acc)
    | Lexer.DSLASH ->
      junk t;
      let s = one_step () in
      more (s :: Ast.step Ast.Descendant :: acc)
    | _ -> List.rev acc
  in
  first :: more []

and starts_step_after_slash t =
  match peek2 t with Lexer.DOT | Lexer.STAR | Lexer.NAME _ -> true | _ -> false

and path_of_stream t =
  (* optional leading '/' or '//' *)
  match peek t with
  | Lexer.SLASH ->
    junk t;
    parse_steps t ~leading:true
  | Lexer.DSLASH ->
    junk t;
    Ast.step Ast.Descendant :: parse_steps t ~leading:true
  | _ -> parse_steps t ~leading:true

(* --- qualifiers -------------------------------------------------------- *)
and or_expr t =
  let left = and_expr t in
  match peek t with
  | Lexer.NAME "or" ->
    junk t;
    Ast.Q_or (left, or_expr t)
  | _ -> left

and and_expr t =
  let left = unary t in
  match peek t with
  | Lexer.NAME "and" ->
    junk t;
    Ast.Q_and (left, and_expr t)
  | _ -> left

and unary t =
  match peek t, peek2 t with
  | Lexer.NAME "not", Lexer.LPAREN ->
    junk t;
    junk t;
    let q = or_expr t in
    expect t Lexer.RPAREN;
    Ast.Q_not q
  | Lexer.NAME "label", Lexer.LPAREN ->
    junk t;
    junk t;
    expect t Lexer.RPAREN;
    expect t Lexer.EQ;
    (match next t with
    | Lexer.STRING s -> Ast.Q_label s
    | Lexer.NAME s -> Ast.Q_label s
    | tok -> fail t (Printf.sprintf "expected a label, found %s" (Lexer.token_to_string tok)))
  | Lexer.NAME "true", Lexer.LPAREN ->
    junk t;
    junk t;
    expect t Lexer.RPAREN;
    Ast.Q_true
  | Lexer.LPAREN, _ ->
    junk t;
    let q = or_expr t in
    expect t Lexer.RPAREN;
    q
  | _ -> comparison_or_exists t

and comparison_or_exists t =
  let src = parse_source t in
  let op =
    match peek t with
    | Lexer.EQ -> Some Ast.Eq
    | Lexer.NEQ -> Some Ast.Neq
    | Lexer.LT -> Some Ast.Lt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GT -> Some Ast.Gt
    | Lexer.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> Ast.Q_exists src
  | Some op ->
    junk t;
    let v =
      match next t with
      | Lexer.STRING s -> Ast.V_str s
      | Lexer.NUMBER f -> Ast.V_num f
      | tok -> fail t (Printf.sprintf "expected a literal, found %s" (Lexer.token_to_string tok))
    in
    Ast.Q_cmp (src, op, v)

and parse_source t =
  match peek t with
  | Lexer.AT ->
    junk t;
    Ast.attr_source (expect_name t)
  | Lexer.DOT when peek2 t <> Lexer.SLASH && peek2 t <> Lexer.DSLASH ->
    junk t;
    Ast.self_source
  | _ ->
    let path = path_of_stream t in
    (* a trailing "/@name" selects an attribute of the path's result *)
    if peek t = Lexer.SLASH && peek2 t = Lexer.AT then begin
      junk t;
      junk t;
      { Ast.spath = path; sattr = Some (expect_name t) }
    end
    else Ast.path_source path

let finish t v =
  if at_eof t then v
  else raise (Parse_error (Printf.sprintf "trailing input: %s" (Lexer.token_to_string (peek t))))

let parse s =
  let t = of_string s in
  let p = path_of_stream t in
  finish t p

let parse_qual s =
  let t = of_string s in
  let q = or_expr t in
  finish t q

let qual_of_stream = or_expr
