type nav =
  | Self
  | Label of string
  | Wildcard
  | Descendant

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type value = V_str of string | V_num of float

type path = step list

and step = { nav : nav; quals : qual list }

and qual =
  | Q_true
  | Q_exists of source
  | Q_cmp of source * cmp * value
  | Q_label of string
  | Q_and of qual * qual
  | Q_or of qual * qual
  | Q_not of qual

and source = { spath : path; sattr : string option }

let step ?(quals = []) nav = { nav; quals }
let self_source = { spath = []; sattr = None }
let attr_source a = { spath = []; sattr = Some a }
let path_source p = { spath = p; sattr = None }

let q_and = function
  | [] -> Q_true
  | q :: qs -> List.fold_left (fun acc q -> Q_and (acc, q)) q qs

let float_of_text s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Some f
  | None -> None

let compare_values op s v =
  let cmp_int c = match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0
  in
  match v with
  | V_str v -> cmp_int (String.compare s v)
  | V_num f -> (
    match float_of_text s with
    | Some g -> cmp_int (Float.compare g f)
    | None -> false)

let equal_path (a : path) (b : path) = a = b
let equal_qual (a : qual) (b : qual) = a = b

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let value_to_string = function
  | V_str s -> "\"" ^ s ^ "\""
  | V_num f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f

let rec pp_path ppf path =
  let rec go first = function
    | [] -> ()
    | { nav; quals } :: rest ->
      (match nav with
      | Descendant ->
        Format.pp_print_string ppf "//";
        pp_quals ppf quals;
        go true rest
      | _ ->
        if not first then Format.pp_print_string ppf "/";
        (match nav with
        | Self -> Format.pp_print_string ppf "."
        | Label l -> Format.pp_print_string ppf l
        | Wildcard -> Format.pp_print_string ppf "*"
        | Descendant -> assert false);
        pp_quals ppf quals;
        go false rest)
  in
  match path with [] -> Format.pp_print_string ppf "." | _ -> go true path

and pp_quals ppf quals = List.iter (fun q -> Format.fprintf ppf "[%a]" pp_qual q) quals

and pp_qual ppf = function
  | Q_true -> Format.pp_print_string ppf "true()"
  | Q_exists s -> pp_source ppf s
  | Q_cmp (s, op, v) ->
    Format.fprintf ppf "%a %s %s" pp_source s (cmp_to_string op) (value_to_string v)
  | Q_label l -> Format.fprintf ppf "label() = \"%s\"" l
  | Q_and (a, b) -> Format.fprintf ppf "%a and %a" pp_qual_atom a pp_qual_atom b
  | Q_or (a, b) -> Format.fprintf ppf "%a or %a" pp_qual_atom a pp_qual_atom b
  | Q_not q -> Format.fprintf ppf "not(%a)" pp_qual q

and pp_qual_atom ppf q =
  match q with
  | Q_and _ | Q_or _ -> Format.fprintf ppf "(%a)" pp_qual q
  | _ -> pp_qual ppf q

and pp_source ppf { spath; sattr } =
  match spath, sattr with
  | [], None -> Format.pp_print_string ppf "."
  | [], Some a -> Format.fprintf ppf "@%s" a
  | p, None -> pp_path ppf p
  | p, Some a -> Format.fprintf ppf "%a/@%s" pp_path p a

let path_to_string p = Format.asprintf "%a" pp_path p
let qual_to_string q = Format.asprintf "%a" pp_qual q
