type expr =
  | True_
  | Seq of int * int
  | Child of int
  | Desc of int
  | Label_is of string
  | Text_cmp of Ast.cmp * Ast.value
  | Attr_cmp of string * Ast.cmp * Ast.value
  | Attr_exists of string
  | And_ of int * int
  | Or_ of int * int
  | Not_ of int

type builder = { tbl : (expr, int) Hashtbl.t; mutable rev : expr list; mutable n : int }

type t = { arr : expr array }

let create_builder () = { tbl = Hashtbl.create 32; rev = []; n = 0 }

let intern b e =
  match Hashtbl.find_opt b.tbl e with
  | Some i -> i
  | None ->
    let i = b.n in
    Hashtbl.add b.tbl e i;
    b.rev <- e :: b.rev;
    b.n <- b.n + 1;
    i

(* Smart constructors keep the list small: True_ is absorbed. *)
let seq b a p = if p = intern b True_ then a else if a = intern b True_ then p else intern b (Seq (a, p))

let and_ b x y =
  let t = intern b True_ in
  if x = t then y else if y = t then x else intern b (And_ (x, y))

let rec of_qual b (q : Ast.qual) : int =
  match q with
  | Ast.Q_true -> intern b True_
  | Ast.Q_label l -> intern b (Label_is l)
  | Ast.Q_and (x, y) ->
    let xi = of_qual b x in
    let yi = of_qual b y in
    and_ b xi yi
  | Ast.Q_or (x, y) ->
    let xi = of_qual b x in
    let yi = of_qual b y in
    intern b (Or_ (xi, yi))
  | Ast.Q_not x -> intern b (Not_ (of_qual b x))
  | Ast.Q_exists { spath; sattr } ->
    let terminal =
      match sattr with None -> intern b True_ | Some a -> intern b (Attr_exists a)
    in
    of_path b spath terminal
  | Ast.Q_cmp ({ spath; sattr }, op, v) ->
    let terminal =
      match sattr with
      | None -> intern b (Text_cmp (op, v))
      | Some a -> intern b (Attr_cmp (a, op, v))
    in
    of_path b spath terminal

and of_path b (path : Ast.path) terminal : int =
  match path with
  | [] -> terminal
  | { Ast.nav; quals } :: rest ->
    let qs = List.map (of_qual b) quals in
    let conj = List.fold_left (and_ b) (intern b True_) qs in
    let tail = of_path b rest terminal in
    (match nav with
    | Ast.Self -> seq b conj tail
    | Ast.Label l ->
      let head = and_ b (intern b (Label_is l)) conj in
      intern b (Child (seq b head tail))
    | Ast.Wildcard -> intern b (Child (seq b conj tail))
    | Ast.Descendant -> intern b (Desc (seq b conj tail)))

let add_qual b q = of_qual b q

let freeze b = { arr = Array.of_list (List.rev b.rev) }

let length t = Array.length t.arr
let expr t i = t.arr.(i)
let exprs t = t.arr

(* Expression [i] is statically false at a node named [name] when its
   top-level conjunction contains a failing label guard. *)
let rec label_blocked t i name =
  match t.arr.(i) with
  | Label_is l -> not (String.equal l name)
  | And_ (x, y) -> label_blocked t x name || label_blocked t y name
  | Seq (x, _) -> label_blocked t x name
  | True_ | Child _ | Desc _ | Text_cmp _ | Attr_cmp _ | Attr_exists _ | Or_ _ | Not_ _ -> false

let rec expr_to_string t i =
  match t.arr.(i) with
  | True_ -> "true"
  | Seq (a, p) -> Printf.sprintf ".[%s]/%s" (expr_to_string t a) (expr_to_string t p)
  | Child p -> Printf.sprintf "*/%s" (expr_to_string t p)
  | Desc p -> Printf.sprintf "//%s" (expr_to_string t p)
  | Label_is l -> Printf.sprintf "label()=%s" l
  | Text_cmp (op, Ast.V_str s) -> Printf.sprintf ". %s %S" (Ast.cmp_to_string op) s
  | Text_cmp (op, Ast.V_num f) -> Printf.sprintf ". %s %g" (Ast.cmp_to_string op) f
  | Attr_cmp (a, op, Ast.V_str s) -> Printf.sprintf "@%s %s %S" a (Ast.cmp_to_string op) s
  | Attr_cmp (a, op, Ast.V_num f) -> Printf.sprintf "@%s %s %g" a (Ast.cmp_to_string op) f
  | Attr_exists a -> Printf.sprintf "@%s" a
  | And_ (x, y) -> Printf.sprintf "(%s and %s)" (expr_to_string t x) (expr_to_string t y)
  | Or_ (x, y) -> Printf.sprintf "(%s or %s)" (expr_to_string t x) (expr_to_string t y)
  | Not_ x -> Printf.sprintf "not(%s)" (expr_to_string t x)

let eval_at t ~name ~attrs ~text ~csat ~wanted =
  let n = Array.length t.arr in
  let value = Array.make n false in
  let known = Array.make n false in
  let rec sat i =
    if known.(i) then value.(i)
    else begin
      (* sub-expressions have smaller indices, so recursion terminates;
         Desc's csat self-reference does not recurse. *)
      let v =
        match t.arr.(i) with
        | True_ -> true
        | Seq (a, p) -> sat a && sat p
        | Child p -> csat p
        | Desc p -> sat p || csat i
        | Label_is l -> String.equal l name
        | Text_cmp (op, v) -> Ast.compare_values op text v
        | Attr_cmp (a, op, v) -> (
          match List.assoc_opt a attrs with
          | Some s -> Ast.compare_values op s v
          | None -> false)
        | Attr_exists a -> List.mem_assoc a attrs
        | And_ (x, y) -> sat x && sat y
        | Or_ (x, y) -> sat x || sat y
        | Not_ x -> not (sat x)
      in
      known.(i) <- true;
      value.(i) <- v;
      v
    end
  in
  List.iter (fun i -> ignore (sat i)) wanted;
  value
