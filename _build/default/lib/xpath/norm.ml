type nnav = N_label of string | N_wild | N_desc

type nstep = { nav : nnav; quals : Ast.qual list }

type t = { ctx_quals : Ast.qual list; steps : nstep list }

let steps (path : Ast.path) =
  (* Self steps merge their qualifiers into the previous step; a leading
     run of Self steps contributes context qualifiers. *)
  let rec go ctx_quals acc = function
    | [] -> { ctx_quals = List.rev ctx_quals; steps = List.rev acc }
    | ({ nav = Ast.Self; quals } : Ast.step) :: rest -> (
      match acc with
      | [] -> go (List.rev_append quals ctx_quals) acc rest
      | prev :: others -> go ctx_quals ({ prev with quals = prev.quals @ quals } :: others) rest)
    | { nav = Ast.Label l; quals } :: rest -> go ctx_quals ({ nav = N_label l; quals } :: acc) rest
    | { nav = Ast.Wildcard; quals } :: rest -> go ctx_quals ({ nav = N_wild; quals } :: acc) rest
    | { nav = Ast.Descendant; quals } :: rest -> go ctx_quals ({ nav = N_desc; quals } :: acc) rest
  in
  go [] [] path

let to_path t =
  List.map
    (fun { nav; quals } ->
      let nav =
        match nav with
        | N_label l -> Ast.Label l
        | N_wild -> Ast.Wildcard
        | N_desc -> Ast.Descendant
      in
      { Ast.nav; quals })
    t.steps

let nnav_to_string = function N_label l -> l | N_wild -> "*" | N_desc -> "//"

let nstep_to_string { nav; quals } =
  nnav_to_string nav
  ^ String.concat "" (List.map (fun q -> "[" ^ Ast.qual_to_string q ^ "]") quals)

let to_string t =
  let ctx =
    match t.ctx_quals with
    | [] -> ""
    | qs -> "." ^ String.concat "" (List.map (fun q -> "[" ^ Ast.qual_to_string q ^ "]") qs) ^ "/"
  in
  (* '//' is its own separator: no '/' before or after it *)
  let buf = Buffer.create 32 in
  let rec go first = function
    | [] -> ()
    | { nav = N_desc; _ } :: rest ->
      Buffer.add_string buf "//";
      go true rest
    | s :: rest ->
      if not first then Buffer.add_char buf '/';
      Buffer.add_string buf (nstep_to_string s);
      go false rest
  in
  go true t.steps;
  ctx ^ Buffer.contents buf
