type snapshot = { visited : int; copied : int; shared : int }

let visited = ref 0
let copied = ref 0
let shared = ref 0

let reset () =
  visited := 0;
  copied := 0;
  shared := 0

let visit () = incr visited
let copy () = incr copied
let share () = incr shared

let read () = { visited = !visited; copied = !copied; shared = !shared }

let pp ppf s =
  Format.fprintf ppf "visited=%d copied=%d shared=%d" s.visited s.copied s.shared
