open Xut_automata

let run nfa update root =
  let table = Annotator.annotate nfa root in
  Top_down.run ~checkp:(Annotator.checkp table nfa) nfa update root

let transform update root =
  let nfa = Selecting_nfa.of_path (Transform_ast.path update) in
  run nfa update root

let annotated_nodes nfa root = Annotator.annotated_count (Annotator.annotate nfa root)
