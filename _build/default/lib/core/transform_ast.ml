open Xut_xml
open Xut_xpath

type update =
  | Insert of Ast.path * Node.t
  | Insert_first of Ast.path * Node.t
  | Delete of Ast.path
  | Replace of Ast.path * Node.t
  | Rename of Ast.path * string

type t = { var : string; doc : string; update : update }

exception Invalid_update of string

let make ?(var = "a") ?(doc = "doc") update = { var; doc; update }

let path = function
  | Insert (p, _) | Insert_first (p, _) | Delete p | Replace (p, _) | Rename (p, _) -> p

let with_path u p =
  match u with
  | Insert (_, e) -> Insert (p, e)
  | Insert_first (_, e) -> Insert_first (p, e)
  | Delete _ -> Delete p
  | Replace (_, e) -> Replace (p, e)
  | Rename (_, l) -> Rename (p, l)

let update_kind = function
  | Insert _ | Insert_first _ -> "insert"
  | Delete _ -> "delete"
  | Replace _ -> "replace"
  | Rename _ -> "rename"

(* "$a" then the path: a path opening with '//' already prints its
   separator. *)
let var_path p =
  let s = Ast.path_to_string p in
  if String.length s >= 2 && s.[0] = '/' && s.[1] = '/' then "$a" ^ s else "$a/" ^ s

let pp_update ppf = function
  | Insert (p, e) ->
    Format.fprintf ppf "insert %s into %s" (Serialize.to_string e) (var_path p)
  | Insert_first (p, e) ->
    Format.fprintf ppf "insert %s as first into %s" (Serialize.to_string e) (var_path p)
  | Delete p -> Format.fprintf ppf "delete %s" (var_path p)
  | Replace (p, e) ->
    Format.fprintf ppf "replace %s with %s" (var_path p) (Serialize.to_string e)
  | Rename (p, l) -> Format.fprintf ppf "rename %s as %s" (var_path p) l

let update_to_string u = Format.asprintf "%a" pp_update u

let pp ppf { var; doc; update } =
  Format.fprintf ppf "transform copy $%s := doc(\"%s\") modify do %a return $%s" var doc
    pp_update update var

let to_string t = Format.asprintf "%a" pp t
