open Xut_xml

(** Reference semantics of transform queries (Section 2): materialize
    [r\[\[p\]\]] with the direct evaluator, then rebuild the tree applying
    the update.  Deliberately unoptimized — the specification every other
    engine is tested against. *)

val apply : Transform_ast.update -> Node.element -> Node.element
(** @raise Transform_ast.Invalid_update when the update would delete the
    document element or replace it with a non-element. *)

val apply_matched :
  Transform_ast.update -> Node.element -> kids:Node.t list -> Node.t list
(** The node(s) a selected element becomes, given its already-processed
    children. *)

val rebuild :
  mem:(Node.element -> bool) -> Transform_ast.update -> Node.element -> Node.element
(** Full-copy rebuild applying the update at every element selected by
    [mem]; shared by the Naive and copy-and-update baselines, which
    differ only in how membership is decided. *)

val ctx_holds : Xut_automata.Selecting_nfa.t -> Node.element -> bool
(** Do the context qualifiers of the embedded path hold at the virtual
    document node? *)

val apply_at_root : Transform_ast.update -> Node.element -> Node.element
(** Apply the update to the document element itself (the [p = '.'] case). *)
