type t = { var : string; doc : string; updates : Transform_ast.update list }

let make ?(var = "a") ?(doc = "doc") updates = { var; doc; updates }

let parse src =
  let var, doc, updates = Transform_parser.parse_sequence src in
  { var; doc; updates }

let run algo t ~doc =
  List.fold_left (fun acc u -> Engine.transform algo u acc) doc t.updates

let pp ppf { var; doc; updates } =
  match updates with
  | [ u ] ->
    Format.fprintf ppf "transform copy $%s := doc(\"%s\") modify do %a return $%s" var doc
      Transform_ast.pp_update u var
  | _ ->
    Format.fprintf ppf "transform copy $%s := doc(\"%s\") modify do (@[<v>%a@]) return $%s" var
      doc
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Transform_ast.pp_update)
      updates var

let to_string t = Format.asprintf "%a" pp t
