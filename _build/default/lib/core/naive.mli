open Xut_xml

(** The Naive Method (Section 3.1): materialize [$xp = r\[\[p\]\]], then
    rebuild the whole tree, testing membership [n ∈ $xp] by scanning the
    node list — exactly the behaviour of the Fig. 2 rewriting on an
    engine that does not optimize the membership test.  Worst case
    O(|T|²); always traverses and copies the entire document. *)

val transform : Transform_ast.update -> Node.element -> Node.element
