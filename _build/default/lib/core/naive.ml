open Xut_xml
open Xut_xpath

let transform update root =
  let xp = Eval.select_doc root (Transform_ast.path update) in
  (* Linear scan per node: the quadratic membership test of Fig. 2. *)
  let mem e =
    Stats.visit ();
    Stats.copy ();
    List.exists (fun x -> Node.id x = Node.id e) xp
  in
  Semantics.rebuild ~mem update root
