open Xut_xml
open Xut_xquery

(** The Naive Method as actual query rewriting (Section 3.1, Fig. 2):
    translate a transform query into a standard XQuery program for the
    mini engine.  The program materializes [$xp := doc(T)/p] and rebuilds
    the document with a recursive function whose membership test
    ([some $x in $xp satisfies ($n is $x)]) is the quadratic scan the
    NAIVE measurements exhibit. *)

val rewrite : Transform_ast.t -> Xq_ast.program

val rewrite_to_string : Transform_ast.t -> string
(** The program as XQuery text (parseable by {!Xut_xquery.Xq_parser}). *)

val run : Transform_ast.t -> doc:Node.element -> Node.element
(** Rewrite, evaluate on the mini engine, return the document element. *)
