open Xut_xml

(** Uniform front door over the five evaluation strategies, named as in
    the experimental study (Section 7.1). *)

type algo =
  | Reference    (** the conceptual semantics (copy + apply), spec only *)
  | Naive        (** NAIVE: Fig. 2 rewriting behaviour, quadratic scan *)
  | Gentop       (** GENTOP: topDown with native qualifier evaluation *)
  | Td_bu        (** TD-BU: twoPass = bottomUp annotations + topDown *)
  | Two_pass_sax (** twoPassSAX: streaming, two SAX parses *)
  | Galax_update (** GalaXUpdate stand-in: snapshot copy-and-update *)

val all : algo list
val name : algo -> string
val of_string : string -> algo option

val transform : algo -> Transform_ast.update -> Node.element -> Node.element
(** Evaluate the transform query with the given engine on an in-memory
    document, returning the result tree.  The input tree is never
    modified (transform queries are non-updating). *)

val run : algo -> Transform_ast.t -> doc:Node.element -> Node.element
(** Evaluate a full transform query against the document bound to its
    [doc("...")] reference. *)
