open Xut_xml
open Xut_xpath

let transform update root =
  (* Snapshot first (the "copy" of copy-and-update)... *)
  let snapshot =
    match Node.refresh_ids (Node.Element root) with
    | Node.Element e -> e
    | Node.Text _ | Node.Comment _ | Node.Pi _ -> assert false
  in
  Node.iter_elements (fun _ -> Stats.copy ()) snapshot;
  (* ...then update the snapshot in place (modelled purely). *)
  let selected = Eval.select_doc snapshot (Transform_ast.path update) in
  let ids = Eval.node_set_ids selected in
  let mem e =
    Stats.visit ();
    Hashtbl.mem ids (Node.id e)
  in
  Semantics.rebuild ~mem update snapshot
