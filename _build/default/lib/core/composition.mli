open Xut_xml
open Xut_xquery

(** Composing user and transform queries (Section 4).

    Given a transform query [Qt] and a user query [Q], the Compose Method
    produces one query [Qc] with [Qc(T) = Q(Qt(T))]: the selecting NFA of
    the embedded path is executed {e statically} over the steps of the
    user query's paths (treating them as words, via delta'), and only
    where a final state shows that the update can touch the data does the
    composed query invoke the runtime [topDown] helper
    ({!Top_down.transform_at}) on the — typically small — subtree at
    hand.  Everywhere else the user query's navigation runs untouched on
    the stored document: no copy, no full traversal.

    All update kinds compose.  Beyond the paper's detailed insert/delete
    cases, relabeling updates (replace, rename) are handled by widening
    the static simulation (a matched node can gain or lose a step's
    label, so label transitions become wildcards where a match is
    possible) and judging candidacy against the transformed view at run
    time; a '//' user step followed by further steps runs as a single
    product walk of the user-suffix NFA and the update NFA, preserving
    the set semantics and document order of path expressions. *)

type composed = {
  expr : Xq_ast.expr;
  natives : (string * (Xq_value.t list -> Xq_value.t)) list;
      (** the runtime topDown instances referenced by [expr] *)
}

val compose : Transform_ast.update -> User_query.t -> (composed, string) result
(** [Error reason] when the pair falls outside the fragment (empty or
    context-qualified update paths, context-qualified user sources). *)

val run_composed : composed -> doc:Node.element -> Xq_value.t

val run : Transform_ast.update -> User_query.t -> doc:Node.element -> Xq_value.t
(** Compose if possible, otherwise fall back to {!naive}. *)

val naive : ?algo:Engine.algo -> Transform_ast.update -> User_query.t -> doc:Node.element -> Xq_value.t
(** The Naive Composition Method: evaluate the transform query first
    (with GENTOP by default, as in Section 7.2), then the user query on
    the materialized result. *)

val to_string : composed -> string
(** The composed query as XQuery text ([xut:apply<i>] names the runtime
    topDown helpers). *)
