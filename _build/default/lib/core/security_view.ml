open Xut_xml

type rule =
  | Deny of Xut_xpath.Ast.path
  | Redact of Xut_xpath.Ast.path * Node.t
  | Relabel of Xut_xpath.Ast.path * string

type t = { name : string; rules : rule list }

let make ~name rules = { name; rules }

let deny path = Deny (Xut_xpath.Parser.parse path)

let redact path ~with_ =
  Redact (Xut_xpath.Parser.parse path, Node.Element (Dom.parse_string with_))

let relabel path ~as_ = Relabel (Xut_xpath.Parser.parse path, as_)

let update_of_rule = function
  | Deny p -> Transform_ast.Delete p
  | Redact (p, e) -> Transform_ast.Replace (p, e)
  | Relabel (p, l) -> Transform_ast.Rename (p, l)

let to_updates t = List.map update_of_rule t.rules

let to_transform t = Sequence.make ~doc:t.name (to_updates t)

let view_of ?(algo = Engine.Td_bu) t ~doc = Sequence.run algo (to_transform t) ~doc

let answer t uq ~doc =
  match to_updates t with
  | [ u ] -> (
    match Composition.compose u uq with
    | Ok c -> Composition.run_composed c ~doc
    | Error _ -> User_query.run uq ~doc:(view_of t ~doc))
  | _ -> User_query.run uq ~doc:(view_of t ~doc)

let permitted t path ~doc =
  let p = Xut_xpath.Parser.parse path in
  Xut_xpath.Eval.select_doc (view_of t ~doc) p <> []
