open Xut_xml
open Xut_xquery

(** Virtual security views (the access-control application of
    Example 1.1 / Section 4.1, after Fan–Chan–Garofalakis).

    A policy is a list of rules over the document; its compiled form is
    a compound transform query, so the view is {e never} materialized
    and maintained per user group — it exists only as update syntax.
    User queries are answered either through the Compose Method (one
    pass over the stored document) or, for multi-rule policies whose
    later rules fall outside the static fragment, by evaluating the view
    transform lazily per query. *)

type rule =
  | Deny of Xut_xpath.Ast.path           (** hide these subtrees entirely *)
  | Redact of Xut_xpath.Ast.path * Node.t (** replace them with a placeholder *)
  | Relabel of Xut_xpath.Ast.path * string (** expose them under another name *)

type t = { name : string; rules : rule list }

val make : name:string -> rule list -> t

val deny : string -> rule
(** [deny "//supplier[country = 'A']/price"] — the path is parsed. *)

val redact : string -> with_:string -> rule
(** [redact path ~with_:"<hidden/>"] — the replacement is an XML literal. *)

val relabel : string -> as_:string -> rule

val to_updates : t -> Transform_ast.update list
(** The policy as the update sequence of its compiled transform query. *)

val to_transform : t -> Sequence.t

val view_of : ?algo:Engine.algo -> t -> doc:Node.element -> Node.element
(** The document as this user group sees it (computed, not stored). *)

val answer : t -> User_query.t -> doc:Node.element -> Xq_value.t
(** Answer a user query through the view: composed into a single query
    over the stored document when the policy is a single composable
    rule, otherwise evaluated against a per-query view. *)

val permitted : t -> string -> doc:Node.element -> bool
(** [permitted p path ~doc]: does the view still expose any node on
    [path]?  (A quick audit helper: false means the policy hides all of
    them.) *)
