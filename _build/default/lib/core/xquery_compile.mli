open Xut_xml
open Xut_xquery

(** The Top Down method compiled to {e standard XQuery} (Section 3.3).

    The paper's GENTOP/TD-BU measurements come from running the automaton
    algorithms "implemented in XQuery on top of Qizx".  This module
    produces that artifact: the selecting NFA is encoded as an XQuery
    function over state sets (sequences of numbers), qualifier checks
    become inline path predicates evaluated by the host engine, and the
    recursive [local:apply] function is Fig. 3's topDown verbatim —

    {v
    declare function local:next($states, $n) { ... delta ... };
    declare function local:apply($n, $states) {
      if (xut:is-element($n)) then
        let $next := local:next($states, $n)
        return if (empty($next)) then $n
        else element {local-name($n)} { ... recurse, apply update ... }
      else $n
    };
    document { for $n in doc("T")/* return local:apply($n, (0, ...)) }
    v}

    Unlike the Naive rewriting (Fig. 2, {!Xquery_rewrite}), the compiled
    query never materializes [$xp] and never runs the quadratic
    membership scan: the host engine executes the automaton.  The
    NAIVE-vs-GENTOP comparison of the paper's Fig. 12 can therefore be
    reproduced {e on an XQuery engine} (see the ablation bench). *)

val compile : Transform_ast.t -> Xq_ast.program
(** GENTOP in XQuery: qualifiers evaluated natively by the host engine.
    @raise Invalid_argument for an empty embedded path (p = '.'). *)

val compile_tdbu : Transform_ast.t -> Xq_ast.program
(** twoPass (TD-BU) in XQuery, following the paper's remark that "the
    list LQ and the NFAs can be coded in XML, sat ... can be treated as
    XML attributes": a generated [local:annot] function performs the
    bottom-up QualDP pass, storing each node's truth vector in an
    "xut-sat" attribute, and the top-down phase checks qualifiers by
    O(1) lookups into it.  The annotations never reach the output (the
    rebuild strips them). *)

val compile_to_string : Transform_ast.t -> string
(** The program as XQuery text (parseable by {!Xut_xquery.Xq_parser}). *)

val compile_tdbu_to_string : Transform_ast.t -> string

val run : Transform_ast.t -> doc:Node.element -> Node.element
(** Compile and evaluate on the mini engine. *)

val run_tdbu : Transform_ast.t -> doc:Node.element -> Node.element
