open Xut_xpath
open Xut_xquery

(** User queries of Section 4: the simple for/where/return form

    {v
    for $x in rho
    where rho'_1 = rho''_1 and ... and rho'_k = rho''_k
    return exp(rho_1, ..., rho_m)
    v}

    where the paths are X expressions rooted at [$x] (or the document)
    and [exp] is an element template with path-valued holes. *)

type operand =
  | Const of Ast.value
  | Rel of Ast.path * string option  (** $x/path, optionally /@attr *)

type cond = { left : operand; op : Ast.cmp; right : operand }

type template =
  | T_elem of string * (string * string) list * template list
  | T_text of string
  | T_hole of Ast.path * string option
      (** a path hole rooted at $x; [[], None] is $x itself *)

type t = {
  var : string;       (** the bound variable *)
  source : Ast.path;  (** rho, rooted at the document *)
  conds : cond list;
  template : template;
}

val make : ?var:string -> ?conds:cond list -> source:Ast.path -> template -> t

val hole : ?attr:string -> string -> template
(** [hole path] is a [T_hole] on a parsed path; [hole ""] is $x. *)

val of_expr : Xq_ast.expr -> (t, string) result
(** Recognize a parsed XQuery expression of the restricted form. *)

val parse : string -> t
(** Parse XQuery text and recognize.
    @raise Invalid_argument when the query is outside the fragment. *)

val cmp_to_xq : Ast.cmp -> Xq_ast.cmp

val operand_to_expr : string -> operand -> Xq_ast.expr
(** [operand_to_expr var o]: the operand as an expression over [$var]. *)

val template_to_expr : string -> template -> Xq_ast.expr

val to_expr : t -> Xq_ast.expr
(** Back to a plain XQuery expression (used by the Naive Composition
    method and for printing). *)

val to_string : t -> string

val run : t -> doc:Xut_xml.Node.element -> Xq_value.t
(** Evaluate directly over a document. *)
