open Xut_xpath
open Xut_automata
open Xut_xquery

let num i = Xq_ast.Num (float_of_int i)

let state_seq = function
  | [ s ] -> num s
  | states -> Xq_ast.Seq (List.map num states)

(* How the generated query checks qualifiers and reads attributes:
   [Direct] (GENTOP) evaluates qualifiers as inline path predicates;
   [Annotated] (TD-BU) reads the sat vector that the generated bottom-up
   pass stored in the "xut-sat" attribute (Section 5's remark: "sat ...
   can be treated as XML attributes"). *)
type mode = Direct | Annotated

let sat_attr = "xut-sat"

(* substring($v/@xut-sat, i+1, 1) = "1" *)
let sat_lookup var i =
  Xq_ast.Cmp
    ( Xq_ast.Eq,
      Xq_ast.Call
        ("substring", [ Xq_ast.AttrPath (Xq_ast.Var var, [], sat_attr); num (i + 1); num 1 ]),
      Xq_ast.Str "1" )

(* exists($n[q]) *)
let qual_test q =
  Xq_ast.Call
    ("exists", [ Xq_ast.Path (Xq_ast.Var "n", [ { Ast.nav = Ast.Self; quals = [ q ] } ]) ])

let state_check mode nfa t =
  match mode with
  | Direct -> qual_test (Selecting_nfa.state_qual nfa t)
  | Annotated -> sat_lookup "n" (Selecting_nfa.state_lq nfa t)

let attrs_expr = function
  | Direct -> Xq_ast.AttrPath (Xq_ast.Var "n", [], "*")
  | Annotated -> Xq_ast.Call ("xut:attrs-except", [ Xq_ast.Var "n"; Xq_ast.Str sat_attr ])

(* The states contributed when entering state [t]: t plus its epsilon
   closure, guarded by t's qualifier when non-trivial. *)
let enter mode nfa t =
  let closure =
    let rec go i acc =
      if i + 1 < Selecting_nfa.size nfa && Selecting_nfa.kind nfa (i + 1) = Selecting_nfa.K_desc
      then go (i + 1) (acc @ [ i + 1 ])
      else acc
    in
    go t [ t ]
  in
  let states = state_seq closure in
  if Selecting_nfa.has_qual nfa t then Xq_ast.If (state_check mode nfa t, states, Xq_ast.Empty)
  else states

(* What state [i] contributes to the next set at node $n. *)
let arm mode nfa i =
  let parts = ref [] in
  (* forward transition into state i+1 *)
  (if i + 1 < Selecting_nfa.size nfa then
     match Selecting_nfa.kind nfa (i + 1) with
     | Selecting_nfa.K_label l ->
       parts :=
         Xq_ast.If
           ( Xq_ast.Cmp
               (Xq_ast.Eq, Xq_ast.Call ("fn:local-name", [ Xq_ast.Var "n" ]), Xq_ast.Str l),
             enter mode nfa (i + 1),
             Xq_ast.Empty )
         :: !parts
     | Selecting_nfa.K_wild -> parts := enter mode nfa (i + 1) :: !parts
     | Selecting_nfa.K_desc | Selecting_nfa.K_start -> ());
  (* '//' self-loop *)
  (match Selecting_nfa.kind nfa i with
  | Selecting_nfa.K_desc -> parts := num i :: !parts
  | Selecting_nfa.K_start | Selecting_nfa.K_label _ | Selecting_nfa.K_wild -> ());
  match !parts with [] -> Xq_ast.Empty | [ e ] -> e | es -> Xq_ast.Seq es

(* local:next($states, $n): the delta function as an if-chain over $s. *)
let next_fun mode nfa =
  let rec chain i =
    if i >= Selecting_nfa.size nfa then Xq_ast.Empty
    else Xq_ast.If (Xq_ast.Cmp (Xq_ast.Eq, Xq_ast.Var "s", num i), arm mode nfa i, chain (i + 1))
  in
  {
    Xq_ast.fname = "local:next";
    params = [ "states"; "n" ];
    body =
      Xq_ast.Call
        ( "distinct-values",
          [ Xq_ast.Flwor ([ Xq_ast.For ("s", Xq_ast.Var "states") ], None, chain 0) ] );
  }

let matched_test nfa =
  Xq_ast.Quant
    ( `Some,
      "s",
      Xq_ast.Var "next",
      Xq_ast.Cmp (Xq_ast.Eq, Xq_ast.Var "s", num (Selecting_nfa.final nfa)) )

let recurse_children =
  Xq_ast.Flwor
    ( [ Xq_ast.For ("c", Xq_ast.Call ("xut:children", [ Xq_ast.Var "n" ])) ],
      None,
      Xq_ast.Call ("local:apply", [ Xq_ast.Var "c"; Xq_ast.Var "next" ]) )

let rebuild mode ?(name = Xq_ast.Call ("fn:local-name", [ Xq_ast.Var "n" ])) ?(before = []) after
    =
  Xq_ast.ElemDyn
    (name, Xq_ast.Seq ([ attrs_expr mode ] @ before @ [ recurse_children ] @ after))

(* The node-level action (Fig. 3 lines 4-8) given $next. *)
let action mode nfa (update : Transform_ast.update) =
  let m = matched_test nfa in
  match update with
  | Transform_ast.Insert (_, enew) ->
    rebuild mode [ Xq_ast.If (m, Xq_ast.NodeConst enew, Xq_ast.Empty) ]
  | Transform_ast.Insert_first (_, enew) ->
    rebuild mode ~before:[ Xq_ast.If (m, Xq_ast.NodeConst enew, Xq_ast.Empty) ] []
  | Transform_ast.Delete _ -> Xq_ast.If (m, Xq_ast.Empty, rebuild mode [])
  | Transform_ast.Replace (_, enew) -> Xq_ast.If (m, Xq_ast.NodeConst enew, rebuild mode [])
  | Transform_ast.Rename (_, label) ->
    rebuild mode
      ~name:
        (Xq_ast.If (m, Xq_ast.Str label, Xq_ast.Call ("fn:local-name", [ Xq_ast.Var "n" ])))
      []

let apply_fun mode nfa update =
  {
    Xq_ast.fname = "local:apply";
    params = [ "n"; "states" ];
    body =
      Xq_ast.If
        ( Xq_ast.Call ("xut:is-element", [ Xq_ast.Var "n" ]),
          Xq_ast.Flwor
            ( [ Xq_ast.LetC
                  ("next", Xq_ast.Call ("local:next", [ Xq_ast.Var "states"; Xq_ast.Var "n" ]))
              ],
              None,
              Xq_ast.If
                ( Xq_ast.Call ("empty", [ Xq_ast.Var "next" ]),
                  (match mode with
                  | Direct -> Xq_ast.Var "n"
                  | Annotated ->
                    (* untouched subtrees still carry the sat vectors *)
                    Xq_ast.Call ("xut:strip-attr", [ Xq_ast.Var "n"; Xq_ast.Str sat_attr ])),
                  action mode nfa update )
            ),
          Xq_ast.Var "n" );
  }

(* ---------------- the bottom-up annotation pass (TD-BU) ---------------- *)

let qvar i = Printf.sprintf "q%d" i

let cmp_to_xq : Ast.cmp -> Xq_ast.cmp = function
  | Ast.Eq -> Xq_ast.Eq
  | Ast.Neq -> Xq_ast.Neq
  | Ast.Lt -> Xq_ast.Lt
  | Ast.Le -> Xq_ast.Le
  | Ast.Gt -> Xq_ast.Gt
  | Ast.Ge -> Xq_ast.Ge

let lit = function Ast.V_str s -> Xq_ast.Str s | Ast.V_num f -> Xq_ast.Num f

(* QualDP (Fig. 7) as XQuery: one let per LQ expression, in topological
   order; child lookups read the children's sat vectors. *)
let sat_expr lq i =
  let csat j = Xq_ast.Quant (`Some, "c", Xq_ast.Var "kids", sat_lookup "c" j) in
  match Lq.expr lq i with
  | Lq.True_ -> Xq_ast.Call ("true", [])
  | Lq.Seq (a, b) -> Xq_ast.And (Xq_ast.Var (qvar a), Xq_ast.Var (qvar b))
  | Lq.Child p -> csat p
  | Lq.Desc p -> Xq_ast.Or (Xq_ast.Var (qvar p), csat i)
  | Lq.Label_is l ->
    Xq_ast.Cmp (Xq_ast.Eq, Xq_ast.Call ("fn:local-name", [ Xq_ast.Var "n" ]), Xq_ast.Str l)
  | Lq.Text_cmp (op, v) ->
    Xq_ast.Cmp (cmp_to_xq op, Xq_ast.Call ("string", [ Xq_ast.Var "n" ]), lit v)
  | Lq.Attr_cmp (a, op, v) ->
    Xq_ast.Cmp (cmp_to_xq op, Xq_ast.AttrPath (Xq_ast.Var "n", [], a), lit v)
  | Lq.Attr_exists a -> Xq_ast.Call ("exists", [ Xq_ast.AttrPath (Xq_ast.Var "n", [], a) ])
  | Lq.And_ (a, b) -> Xq_ast.And (Xq_ast.Var (qvar a), Xq_ast.Var (qvar b))
  | Lq.Or_ (a, b) -> Xq_ast.Or (Xq_ast.Var (qvar a), Xq_ast.Var (qvar b))
  | Lq.Not_ a -> Xq_ast.Call ("not", [ Xq_ast.Var (qvar a) ])

let annot_fun lq =
  let k = Lq.length lq in
  let lets =
    Xq_ast.LetC
      ( "kids",
        Xq_ast.Flwor
          ( [ Xq_ast.For ("c", Xq_ast.Call ("xut:children", [ Xq_ast.Var "n" ])) ],
            None,
            Xq_ast.Call ("local:annot", [ Xq_ast.Var "c" ]) ) )
    :: List.init k (fun i -> Xq_ast.LetC (qvar i, sat_expr lq i))
  in
  let sat_string =
    Xq_ast.Call
      ( "concat",
        List.init k (fun i -> Xq_ast.If (Xq_ast.Var (qvar i), Xq_ast.Str "1", Xq_ast.Str "0")) )
  in
  {
    Xq_ast.fname = "local:annot";
    params = [ "n" ];
    body =
      Xq_ast.If
        ( Xq_ast.Call ("xut:is-element", [ Xq_ast.Var "n" ]),
          Xq_ast.Flwor
            ( lets,
              None,
              Xq_ast.ElemDyn
                ( Xq_ast.Call ("fn:local-name", [ Xq_ast.Var "n" ]),
                  Xq_ast.Seq
                    [ Xq_ast.AttrPath (Xq_ast.Var "n", [], "*");
                      Xq_ast.Call ("xut:attr", [ Xq_ast.Str sat_attr; sat_string ]);
                      Xq_ast.Var "kids" ] ) ),
          Xq_ast.Var "n" );
  }

(* ---------------- entry points ---------------- *)

let nfa_of (q : Transform_ast.t) =
  let path = Transform_ast.path q.update in
  if path = [] then
    invalid_arg "Xquery_compile: the empty path (p = '.') has no automaton to compile";
  let nfa = Selecting_nfa.of_path path in
  if Selecting_nfa.ctx_qual nfa <> Ast.Q_true then
    invalid_arg "Xquery_compile: context qualifiers are not supported";
  nfa

let main_body nfa (q : Transform_ast.t) ~annotate =
  let doc_e = Xq_ast.Call ("doc", [ Xq_ast.Str q.doc ]) in
  let root = Xq_ast.Path (doc_e, Xut_xpath.Parser.parse "*") in
  Xq_ast.DocCtor
    (Xq_ast.Flwor
       ( [ Xq_ast.For ("n", root) ],
         None,
         Xq_ast.Call
           ( "local:apply",
             [ (if annotate then Xq_ast.Call ("local:annot", [ Xq_ast.Var "n" ]) else Xq_ast.Var "n");
               state_seq (Selecting_nfa.start_set nfa)
             ] ) ))

let compile (q : Transform_ast.t) =
  let nfa = nfa_of q in
  Xq_ast.program
    ~functions:[ next_fun Direct nfa; apply_fun Direct nfa q.update ]
    (main_body nfa q ~annotate:false)

let compile_tdbu (q : Transform_ast.t) =
  let nfa = nfa_of q in
  Xq_ast.program
    ~functions:
      [ annot_fun (Selecting_nfa.lq nfa); next_fun Annotated nfa;
        apply_fun Annotated nfa q.update ]
    (main_body nfa q ~annotate:true)

let compile_to_string q = Xq_ast.program_to_string (compile q)
let compile_tdbu_to_string q = Xq_ast.program_to_string (compile_tdbu q)

let run_program prog (q : Transform_ast.t) ~doc =
  let env = Xq_eval.env ~docs:[ (q.Transform_ast.doc, doc) ] ~context:doc () in
  Xq_eval.value_to_element (Xq_eval.eval_program env prog)

let run q ~doc = run_program (compile q) q ~doc
let run_tdbu q ~doc = run_program (compile_tdbu q) q ~doc
