open Xut_xml

(** The copy-and-update baseline (our GalaXUpdate stand-in): take a full
    snapshot copy of the document, then perform the embedded update on
    the snapshot.  Node-set membership is an O(1) id lookup, but the
    snapshot means time and memory are always linear in |T|, with no
    pruning and no sharing — the behaviour the paper attributes to
    Galax's transform implementation (Section 7.1). *)

val transform : Transform_ast.update -> Node.element -> Node.element
