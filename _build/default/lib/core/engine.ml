type algo = Reference | Naive | Gentop | Td_bu | Two_pass_sax | Galax_update

let all = [ Reference; Naive; Gentop; Td_bu; Two_pass_sax; Galax_update ]

let name = function
  | Reference -> "reference"
  | Naive -> "NAIVE"
  | Gentop -> "GENTOP"
  | Td_bu -> "TD-BU"
  | Two_pass_sax -> "twoPassSAX"
  | Galax_update -> "GalaXUpdate"

let of_string s =
  match String.lowercase_ascii s with
  | "reference" -> Some Reference
  | "naive" -> Some Naive
  | "gentop" | "topdown" | "top-down" -> Some Gentop
  | "td-bu" | "tdbu" | "twopass" | "two-pass" -> Some Td_bu
  | "twopasssax" | "sax" -> Some Two_pass_sax
  | "galaxupdate" | "copy" | "copy-update" -> Some Galax_update
  | _ -> None

let transform algo update root =
  match algo with
  | Reference -> Semantics.apply update root
  | Naive -> Naive.transform update root
  | Gentop -> Top_down.transform update root
  | Td_bu -> Two_pass.transform update root
  | Two_pass_sax -> Sax_transform.transform update root
  | Galax_update -> Copy_update.transform update root

let run algo (q : Transform_ast.t) ~doc = transform algo q.update doc
