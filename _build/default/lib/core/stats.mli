(** Lightweight instrumentation counters.

    The paper's claim that the automaton methods "traverse only the
    necessary part of the tree" is observable through these: each engine
    ticks [visited] per element it examines and [copied] per element it
    rebuilds. Counters are global and single-threaded, like the engines. *)

type snapshot = { visited : int; copied : int; shared : int }

val reset : unit -> unit
val visit : unit -> unit
val copy : unit -> unit
val share : unit -> unit
(** An entire subtree was returned without inspection. *)

val read : unit -> snapshot
val pp : Format.formatter -> snapshot -> unit
