open Xut_xml
open Xut_xpath

let refresh = Node.refresh_ids

let apply_matched update (e : Node.element) ~(kids : Node.t list) : Node.t list =
  match update with
  | Transform_ast.Delete _ -> []
  | Transform_ast.Replace (_, enew) -> [ refresh enew ]
  | Transform_ast.Insert (_, enew) ->
    [ Node.Element (Node.element ~attrs:(Node.attrs e) (Node.name e) (kids @ [ refresh enew ])) ]
  | Transform_ast.Insert_first (_, enew) ->
    [ Node.Element (Node.element ~attrs:(Node.attrs e) (Node.name e) (refresh enew :: kids)) ]
  | Transform_ast.Rename (_, l) ->
    [ Node.Element (Node.element ~attrs:(Node.attrs e) l kids) ]

let rebuild ~mem update root =
  let rec node n =
    match n with
    | Node.Element e ->
      let kids = List.concat_map node (Node.children e) in
      if mem e then apply_matched update e ~kids
      else [ Node.Element (Node.element ~attrs:(Node.attrs e) (Node.name e) kids) ]
    | Node.Text _ | Node.Comment _ | Node.Pi _ -> [ n ]
  in
  match node (Node.Element root) with
  | [ Node.Element e ] -> e
  | [] -> raise (Transform_ast.Invalid_update "update deletes the document element")
  | [ _ ] | _ :: _ ->
    raise (Transform_ast.Invalid_update "update replaces the document element with a non-element")

let apply update root =
  let selected = Eval.select_doc root (Transform_ast.path update) in
  let ids = Eval.node_set_ids selected in
  rebuild ~mem:(fun e -> Hashtbl.mem ids (Node.id e)) update root

let ctx_holds nfa root =
  match Xut_automata.Selecting_nfa.ctx_qual nfa with
  | Ast.Q_true -> true
  | q ->
    let doc = Node.element "#document" [ Node.Element root ] in
    Eval.check_qual doc q

let apply_at_root update root =
  let kids = Node.children root in
  match apply_matched update root ~kids with
  | [ Node.Element e ] -> e
  | [] -> raise (Transform_ast.Invalid_update "update deletes the document element")
  | [ _ ] | _ :: _ ->
    raise (Transform_ast.Invalid_update "update replaces the document element with a non-element")
