open Xut_xml

(** Compound transform queries: a sequence of updates in one [modify]
    clause —

    {v
    transform copy $a := doc("T") modify do (
      delete $a/order/customer/creditcard,
      rename $a/order/items as lines,
      insert <stamp/> into $a/order
    ) return $a
    v}

    Updates apply {e left to right}, each against the result of the
    previous — i.e. the sequence is the composition of the single-update
    transform queries, matching the intuition of chaining hypothetical
    worlds.  (W3C XQuery Update instead collects a pending update list
    against the snapshot; the sequential semantics here is the natural
    one for transform queries, where each step is itself a query.)

    This is one of the "more involved updates" the paper leaves as
    future work (Section 9). *)

type t = { var : string; doc : string; updates : Transform_ast.update list }

val make : ?var:string -> ?doc:string -> Transform_ast.update list -> t

val parse : string -> t
(** @raise Transform_parser.Parse_error on malformed input. *)

val run : Engine.algo -> t -> doc:Node.element -> Node.element
(** Apply the updates left to right with the chosen engine.
    @raise Transform_ast.Invalid_update as single-update evaluation. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
