open Xut_xml
open Xut_automata

(** Algorithm [twoPass] (Section 5, Fig. 10): the bottom-up annotation
    pass ({!Xut_automata.Annotator}) makes every qualifier check O(1),
    then {!Top_down} runs with the annotation oracle.  Data complexity is
    linear in |T| regardless of qualifier complexity — the TD-BU engine
    of the experiments. *)

val transform : Transform_ast.update -> Node.element -> Node.element

val run : Selecting_nfa.t -> Transform_ast.update -> Node.element -> Node.element
(** Like {!transform} with a prebuilt NFA. *)

val annotated_nodes : Selecting_nfa.t -> Node.element -> int
(** Instrumentation: how many elements the first pass annotates. *)
