open Xut_xml
open Xut_xpath

(** Transform queries (Section 2):

    [transform copy $a := doc("T") modify do u($a) return $a]

    with the four update forms supported by the paper. *)

type update =
  | Insert of Ast.path * Node.t  (** insert e into $a/p (as last child) *)
  | Insert_first of Ast.path * Node.t
      (** insert e as first into $a/p — the positional-insert extension
          of XQuery Update, beyond the paper's four forms *)
  | Delete of Ast.path           (** delete $a/p *)
  | Replace of Ast.path * Node.t (** replace $a/p with e *)
  | Rename of Ast.path * string  (** rename $a/p as l *)

type t = {
  var : string;  (** the copy variable, conventionally "a" *)
  doc : string;  (** the document name inside doc("...") *)
  update : update;
}

val make : ?var:string -> ?doc:string -> update -> t

val path : update -> Ast.path
(** The embedded X expression. *)

val with_path : update -> Ast.path -> update

val update_kind : update -> string
(** "insert" | "delete" | "replace" | "rename". *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_update : Format.formatter -> update -> unit
val update_to_string : update -> string

exception Invalid_update of string
(** Raised when an update addresses the document element in a way that
    has no result tree (deleting it). *)
