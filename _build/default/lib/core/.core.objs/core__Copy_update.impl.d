lib/core/copy_update.ml: Eval Hashtbl Node Semantics Stats Transform_ast Xut_xml Xut_xpath
