lib/core/user_query.mli: Ast Xq_ast Xq_value Xut_xml Xut_xpath Xut_xquery
