lib/core/user_query.ml: Ast List Parser Result Xq_ast Xq_eval Xq_parser Xut_xpath Xut_xquery
