lib/core/engine.ml: Copy_update Naive Sax_transform Semantics String Top_down Transform_ast Two_pass
