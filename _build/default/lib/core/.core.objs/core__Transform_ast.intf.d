lib/core/transform_ast.mli: Ast Format Node Xut_xml Xut_xpath
