lib/core/transform_ast.ml: Ast Format Node Serialize String Xut_xml Xut_xpath
