lib/core/security_view.mli: Engine Node Sequence Transform_ast User_query Xq_value Xut_xml Xut_xpath Xut_xquery
