lib/core/sequence.ml: Engine Format List Transform_ast Transform_parser
