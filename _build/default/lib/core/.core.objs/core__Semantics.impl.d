lib/core/semantics.ml: Ast Eval Hashtbl List Node Transform_ast Xut_automata Xut_xml Xut_xpath
