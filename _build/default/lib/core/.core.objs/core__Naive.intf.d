lib/core/naive.mli: Node Transform_ast Xut_xml
