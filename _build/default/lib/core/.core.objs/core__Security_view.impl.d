lib/core/security_view.ml: Composition Dom Engine List Node Sequence Transform_ast User_query Xut_xml Xut_xpath
