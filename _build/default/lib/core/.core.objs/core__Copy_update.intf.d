lib/core/copy_update.mli: Node Transform_ast Xut_xml
