lib/core/sequence.mli: Engine Format Node Transform_ast Xut_xml
