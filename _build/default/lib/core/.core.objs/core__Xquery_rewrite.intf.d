lib/core/xquery_rewrite.mli: Node Transform_ast Xq_ast Xut_xml Xut_xquery
