lib/core/two_pass.ml: Annotator Selecting_nfa Top_down Transform_ast Xut_automata
