lib/core/transform_parser.mli: Transform_ast
