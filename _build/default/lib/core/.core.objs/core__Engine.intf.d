lib/core/engine.mli: Node Transform_ast Xut_xml
