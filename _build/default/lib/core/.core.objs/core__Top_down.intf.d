lib/core/top_down.mli: Node Selecting_nfa Transform_ast Xut_automata Xut_xml
