lib/core/composition.mli: Engine Node Transform_ast User_query Xq_ast Xq_value Xut_xml Xut_xquery
