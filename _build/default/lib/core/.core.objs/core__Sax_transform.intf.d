lib/core/sax_transform.mli: Buffer Node Sax Selecting_nfa Transform_ast Xut_automata Xut_xml
