lib/core/xquery_compile.ml: Ast List Lq Printf Selecting_nfa Transform_ast Xq_ast Xq_eval Xut_automata Xut_xpath Xut_xquery
