lib/core/xquery_compile.mli: Node Transform_ast Xq_ast Xut_xml Xut_xquery
