lib/core/two_pass.mli: Node Selecting_nfa Transform_ast Xut_automata Xut_xml
