lib/core/xquery_rewrite.ml: Transform_ast Xq_ast Xq_eval Xut_xpath Xut_xquery
