lib/core/transform_parser.ml: Dom Lexer List Node Parser Printf Sax String Transform_ast Xut_xml Xut_xpath
