lib/core/sax_transform.ml: Annotator Array Ast Buffer Dom Hashtbl List Lq Node Sax Selecting_nfa Serialize Transform_ast Xut_automata Xut_xml Xut_xpath
