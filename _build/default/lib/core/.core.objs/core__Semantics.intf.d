lib/core/semantics.mli: Node Transform_ast Xut_automata Xut_xml
