lib/core/naive.ml: Eval List Node Semantics Stats Transform_ast Xut_xml Xut_xpath
