lib/core/top_down.ml: List Node Selecting_nfa Semantics Stats Transform_ast Xut_automata Xut_xml Xut_xpath
