open Xut_xpath
open Xut_xquery

type operand = Const of Ast.value | Rel of Ast.path * string option

type cond = { left : operand; op : Ast.cmp; right : operand }

type template =
  | T_elem of string * (string * string) list * template list
  | T_text of string
  | T_hole of Ast.path * string option

type t = { var : string; source : Ast.path; conds : cond list; template : template }

let make ?(var = "x") ?(conds = []) ~source template = { var; source; conds; template }

let hole ?attr path = T_hole ((if path = "" then [] else Parser.parse path), attr)

(* ---------------- recognition ---------------- *)

let cmp_of_xq : Xq_ast.cmp -> Ast.cmp = function
  | Xq_ast.Eq -> Ast.Eq
  | Xq_ast.Neq -> Ast.Neq
  | Xq_ast.Lt -> Ast.Lt
  | Xq_ast.Le -> Ast.Le
  | Xq_ast.Gt -> Ast.Gt
  | Xq_ast.Ge -> Ast.Ge

let cmp_to_xq : Ast.cmp -> Xq_ast.cmp = function
  | Ast.Eq -> Xq_ast.Eq
  | Ast.Neq -> Xq_ast.Neq
  | Ast.Lt -> Xq_ast.Lt
  | Ast.Le -> Xq_ast.Le
  | Ast.Gt -> Xq_ast.Gt
  | Ast.Ge -> Xq_ast.Ge

let ( let* ) r f = Result.bind r f

let operand_of_expr var (e : Xq_ast.expr) : (operand, string) result =
  match e with
  | Xq_ast.Str s -> Ok (Const (Ast.V_str s))
  | Xq_ast.Num f -> Ok (Const (Ast.V_num f))
  | Xq_ast.Var v when v = var -> Ok (Rel ([], None))
  | Xq_ast.Path (Xq_ast.Var v, p) when v = var -> Ok (Rel (p, None))
  | Xq_ast.AttrPath (Xq_ast.Var v, p, a) when v = var -> Ok (Rel (p, Some a))
  | _ -> Error ("condition operand outside the fragment: " ^ Xq_ast.to_string e)

let rec conds_of_expr var (e : Xq_ast.expr) : (cond list, string) result =
  match e with
  | Xq_ast.And (a, b) ->
    let* ca = conds_of_expr var a in
    let* cb = conds_of_expr var b in
    Ok (ca @ cb)
  | Xq_ast.Cmp (op, l, r) ->
    let* left = operand_of_expr var l in
    let* right = operand_of_expr var r in
    Ok [ { left; op = cmp_of_xq op; right } ]
  | _ -> Error ("where clause outside the fragment: " ^ Xq_ast.to_string e)

let rec template_of_expr var (e : Xq_ast.expr) : (template, string) result =
  match e with
  | Xq_ast.ElemLit (name, attrs, children) ->
    let rec map_children acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest ->
        let* t = template_of_expr var c in
        map_children (t :: acc) rest
    in
    let* children = map_children [] children in
    Ok (T_elem (name, attrs, children))
  | Xq_ast.Str s -> Ok (T_text s)
  | Xq_ast.Var v when v = var -> Ok (T_hole ([], None))
  | Xq_ast.Path (Xq_ast.Var v, p) when v = var -> Ok (T_hole (p, None))
  | Xq_ast.AttrPath (Xq_ast.Var v, p, a) when v = var -> Ok (T_hole (p, Some a))
  | _ -> Error ("return template outside the fragment: " ^ Xq_ast.to_string e)

let of_expr (e : Xq_ast.expr) : (t, string) result =
  match e with
  | Xq_ast.Flwor ([ Xq_ast.For (var, source_e) ], where, ret) ->
    let* source =
      match source_e with
      | Xq_ast.Path (Xq_ast.Context, p) -> Ok p
      | Xq_ast.Path (Xq_ast.Call ("doc", _), p) -> Ok p
      | _ -> Error ("for source outside the fragment: " ^ Xq_ast.to_string source_e)
    in
    let* conds = match where with None -> Ok [] | Some w -> conds_of_expr var w in
    let* template = template_of_expr var ret in
    Ok { var; source; conds; template }
  | _ -> Error "user query must be a single-variable FLWOR"

let parse src =
  match of_expr (Xq_parser.parse_expr src) with
  | Ok t -> t
  | Error m -> invalid_arg ("User_query.parse: " ^ m)

(* ---------------- back to XQuery ---------------- *)

let operand_to_expr var = function
  | Const (Ast.V_str s) -> Xq_ast.Str s
  | Const (Ast.V_num f) -> Xq_ast.Num f
  | Rel ([], None) -> Xq_ast.Var var
  | Rel (p, None) -> Xq_ast.Path (Xq_ast.Var var, p)
  | Rel (p, Some a) -> Xq_ast.AttrPath (Xq_ast.Var var, p, a)

let rec template_to_expr var = function
  | T_elem (name, attrs, children) ->
    Xq_ast.ElemLit (name, attrs, List.map (template_to_expr var) children)
  | T_text s -> Xq_ast.Str s
  | T_hole ([], None) -> Xq_ast.Var var
  | T_hole (p, None) -> Xq_ast.Path (Xq_ast.Var var, p)
  | T_hole (p, Some a) -> Xq_ast.AttrPath (Xq_ast.Var var, p, a)

let to_expr { var; source; conds; template } =
  let where =
    match conds with
    | [] -> None
    | c :: cs ->
      let one { left; op; right } =
        Xq_ast.Cmp (cmp_to_xq op, operand_to_expr var left, operand_to_expr var right)
      in
      Some (List.fold_left (fun acc c -> Xq_ast.And (acc, one c)) (one c) cs)
  in
  Xq_ast.Flwor
    ( [ Xq_ast.For (var, Xq_ast.Path (Xq_ast.Context, source)) ],
      where,
      template_to_expr var template )

let to_string t = Xq_ast.to_string (to_expr t)

let run t ~doc = Xq_eval.eval_expr (Xq_eval.env ~context:doc ()) (to_expr t)
