open Xut_xquery

let mem_test =
  (* some $x in $xp satisfies ($n is $x) *)
  Xq_ast.Quant (`Some, "x", Xq_ast.Var "xp", Xq_ast.Is (Xq_ast.Var "n", Xq_ast.Var "x"))

let recurse_children =
  (* for $c in xut:children($n) return local:apply($c, $xp) *)
  Xq_ast.Flwor
    ( [ Xq_ast.For ("c", Xq_ast.Call ("xut:children", [ Xq_ast.Var "n" ])) ],
      None,
      Xq_ast.Call ("local:apply", [ Xq_ast.Var "c"; Xq_ast.Var "xp" ]) )

let rebuild ?(name = Xq_ast.Call ("fn:local-name", [ Xq_ast.Var "n" ])) ?(before = []) extra =
  (* element {name} { $n/@*, before, children..., extra } *)
  Xq_ast.ElemDyn
    ( name,
      Xq_ast.Seq
        ([ Xq_ast.AttrPath (Xq_ast.Var "n", [], "*") ] @ before @ [ recurse_children ] @ extra) )

let apply_body (update : Transform_ast.update) =
  let if_elem e =
    Xq_ast.If (Xq_ast.Call ("xut:is-element", [ Xq_ast.Var "n" ]), e, Xq_ast.Var "n")
  in
  match update with
  | Transform_ast.Insert (_, enew) ->
    if_elem
      (rebuild [ Xq_ast.If (mem_test, Xq_ast.NodeConst enew, Xq_ast.Empty) ])
  | Transform_ast.Insert_first (_, enew) ->
    if_elem
      (rebuild ~before:[ Xq_ast.If (mem_test, Xq_ast.NodeConst enew, Xq_ast.Empty) ] [])
  | Transform_ast.Delete _ -> if_elem (Xq_ast.If (mem_test, Xq_ast.Empty, rebuild []))
  | Transform_ast.Replace (_, enew) ->
    if_elem (Xq_ast.If (mem_test, Xq_ast.NodeConst enew, rebuild []))
  | Transform_ast.Rename (_, label) ->
    if_elem
      (rebuild
         ~name:
           (Xq_ast.If (mem_test, Xq_ast.Str label, Xq_ast.Call ("fn:local-name", [ Xq_ast.Var "n" ])))
         [])

let rewrite (q : Transform_ast.t) =
  let doc_e = Xq_ast.Call ("doc", [ Xq_ast.Str q.doc ]) in
  let path = Transform_ast.path q.update in
  let xp = Xq_ast.Path (doc_e, path) in
  let body =
    Xq_ast.Flwor
      ( [ Xq_ast.LetC ("xp", xp) ],
        None,
        Xq_ast.DocCtor
          (Xq_ast.Flwor
             ( [ Xq_ast.For ("n", Xq_ast.Path (doc_e, Xut_xpath.Parser.parse "*")) ],
               None,
               Xq_ast.Call ("local:apply", [ Xq_ast.Var "n"; Xq_ast.Var "xp" ]) )) )
  in
  Xq_ast.program
    ~functions:[ { Xq_ast.fname = "local:apply"; params = [ "n"; "xp" ]; body = apply_body q.update } ]
    body

let rewrite_to_string q = Xq_ast.program_to_string (rewrite q)

let run (q : Transform_ast.t) ~doc =
  let env = Xq_eval.env ~docs:[ (q.Transform_ast.doc, doc) ] ~context:doc () in
  Xq_eval.value_to_element (Xq_eval.eval_program env (rewrite q))
