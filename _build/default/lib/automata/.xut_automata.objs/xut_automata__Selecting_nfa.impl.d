lib/automata/selecting_nfa.ml: Array Ast Buffer List Lq Norm Printf String Xut_xpath
