lib/automata/selecting_nfa.mli: Ast Lq Norm Xut_xpath
