lib/automata/annotator.mli: Node Selecting_nfa Xut_xml Xut_xpath
