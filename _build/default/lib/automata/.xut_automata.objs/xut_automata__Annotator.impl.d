lib/automata/annotator.ml: Array Hashtbl List Lq Node Selecting_nfa Xut_xml Xut_xpath
