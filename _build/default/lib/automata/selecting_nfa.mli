open Xut_xpath

(** Selecting NFA for X expressions (Section 3.4).

    For [p] in the normal form [beta_1\[q_1\]/.../beta_k\[q_k\]] the
    automaton has the semi-linear structure of Fig. 5: a start state
    [(s_0,\[true\])], one state per step, epsilon transitions into ['//']
    states and a ['*'] self-loop on them.  State sets are sorted int
    lists; transitions and closures preserve sortedness.

    The same structure doubles as the filtering NFA of Section 5: the LQ
    list built from all qualifiers is embedded ({!lq}), and each state
    knows the LQ index of its qualifier, which seeds the needs-propagation
    that stands in for the filtering NFA's qualifier chains (DESIGN.md). *)

type kind = K_start | K_label of string | K_wild | K_desc

type t

val of_norm : Norm.t -> t
val of_path : Ast.path -> t

val size : t -> int
(** Number of states (k + 1). *)

val final : t -> int

val lq : t -> Lq.t

val kind : t -> int -> kind
val state_qual : t -> int -> Ast.qual
(** Conjunction of the qualifiers attached to the state's step. *)

val state_lq : t -> int -> int
(** LQ index of {!state_qual}. *)

val has_qual : t -> int -> bool
(** Whether the state's qualifier is non-trivial. *)

val ctx_qual : t -> Ast.qual
(** Qualifier applying to the context node (from leading '.' steps). *)

val selects_context : t -> bool
(** True iff the path is empty (the final state is the start state, so
    the context node itself is selected). *)

val start_set : t -> int list
(** Epsilon-closure of the start state. *)

val next_states : t -> checkp:(int -> bool) -> int list -> string -> int list
(** [nextStates] of Fig. 4.  [checkp s] must say whether the qualifier of
    state [s] holds at the node being entered; states whose qualifier
    fails are dropped before the closure. *)

val next_states_unchecked : t -> int list -> string -> int list
(** Transition ignoring qualifiers (the over-approximation the bottom-up
    pass runs on, Fig. 9 lines 1–2). *)

val accepts : t -> int list -> bool
(** Does the set contain the final state? *)

val consistent_at : t -> int -> string -> bool
(** Could state [s] be the current state at a node named [name]?  A
    label state requires the matching name; start, wildcard and
    descendant states fit any node.  Used to settle statically computed
    (delta') sets against a concrete node. *)

(** {2 Static simulation for the Compose Method (Section 4)} *)

val next_on_label : t -> int list -> string -> int list
(** [delta'] on a concrete label, unchecked, with closure. *)

val next_on_any : t -> int list -> int list
(** [delta'(S, * )]: states reachable by consuming one node of any label. *)

val next_on_desc : t -> int list -> int list
(** [delta'(S, //)]: states reachable by an unbounded sequence of any-label
    transitions (zero or more). *)

val to_string : t -> string
