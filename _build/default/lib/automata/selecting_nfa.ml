open Xut_xpath

type kind = K_start | K_label of string | K_wild | K_desc

type state = { kind : kind; qual : Ast.qual; lq_idx : int }

type t = {
  states : state array;
  lq : Lq.t;
  ctx_qual : Ast.qual;
  true_idx : int;  (* LQ index of the constant true *)
}

let of_norm (norm : Norm.t) =
  let b = Lq.create_builder () in
  let true_idx = Lq.add_qual b Ast.Q_true in
  let ctx_qual = Ast.q_and norm.ctx_quals in
  ignore (Lq.add_qual b ctx_qual);
  let step_state (s : Norm.nstep) =
    let qual = Ast.q_and s.quals in
    let lq_idx = Lq.add_qual b qual in
    let kind =
      match s.nav with
      | Norm.N_label l -> K_label l
      | Norm.N_wild -> K_wild
      | Norm.N_desc -> K_desc
    in
    { kind; qual; lq_idx }
  in
  let states =
    Array.of_list
      ({ kind = K_start; qual = Ast.Q_true; lq_idx = true_idx }
      :: List.map step_state norm.steps)
  in
  { states; lq = Lq.freeze b; ctx_qual; true_idx }

let of_path p = of_norm (Norm.steps p)

let size t = Array.length t.states
let final t = Array.length t.states - 1
let lq t = t.lq
let kind t i = t.states.(i).kind
let state_qual t i = t.states.(i).qual
let state_lq t i = t.states.(i).lq_idx
let has_qual t i = t.states.(i).lq_idx <> t.true_idx
let ctx_qual t = t.ctx_qual
let selects_context t = Array.length t.states = 1

(* Epsilon closure: from state i, successive '//' states are reachable
   for free.  Input and output are sorted; we close each element and
   merge. *)
let close_state t i acc =
  let n = Array.length t.states in
  let rec go j acc =
    let acc = j :: acc in
    if j + 1 < n && t.states.(j + 1).kind = K_desc then go (j + 1) acc else acc
  in
  go i acc

let sort_dedup l = List.sort_uniq compare l

let closure t set = sort_dedup (List.fold_left (fun acc i -> close_state t i acc) [] set)

let start_set t = closure t [ 0 ]

(* Raw targets of state [i] on a node labeled [label], before closure. *)
let targets t i label =
  let n = Array.length t.states in
  let fwd =
    if i + 1 < n then
      match t.states.(i + 1).kind with
      | K_label l when String.equal l label -> [ i + 1 ]
      | K_wild -> [ i + 1 ]
      | K_label _ | K_desc | K_start -> []
    else []
  in
  match t.states.(i).kind with K_desc -> i :: fwd | K_start | K_label _ | K_wild -> fwd

let next_states t ~checkp set label =
  let plus = List.concat_map (fun i -> targets t i label) set in
  let plus = sort_dedup plus in
  let filtered = List.filter (fun i -> (not (has_qual t i)) || checkp i) plus in
  closure t filtered

let next_states_unchecked t set label = closure t (sort_dedup (List.concat_map (fun i -> targets t i label) set))

let accepts t set =
  let f = final t in
  List.exists (fun i -> i = f) set

let consistent_at t i name =
  match t.states.(i).kind with
  | K_label l -> String.equal l name
  | K_start | K_wild | K_desc -> true

(* --- static simulation (Compose Method) -------------------------------- *)

let any_targets t i =
  let n = Array.length t.states in
  let fwd =
    if i + 1 < n then
      match t.states.(i + 1).kind with
      | K_label _ | K_wild -> [ i + 1 ]
      | K_desc | K_start -> []
    else []
  in
  match t.states.(i).kind with K_desc -> i :: fwd | K_start | K_label _ | K_wild -> fwd

let next_on_label t set label = next_states_unchecked t set label

let next_on_any t set = closure t (sort_dedup (List.concat_map (any_targets t) set))

let next_on_desc t set =
  (* zero or more any-label transitions: saturate *)
  let rec go current acc =
    let nxt = next_on_any t current in
    let fresh = List.filter (fun i -> not (List.mem i acc)) nxt in
    if fresh = [] then acc else go fresh (sort_dedup (fresh @ acc))
  in
  go (closure t set) (closure t set)

let kind_to_string = function
  | K_start -> "start"
  | K_label l -> l
  | K_wild -> "*"
  | K_desc -> "//"

let to_string t =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "s%d:%s%s%s " i (kind_to_string s.kind)
           (if s.qual = Ast.Q_true then "" else "[" ^ Ast.qual_to_string s.qual ^ "]")
           (if i = final t then "(final)" else "")))
    t.states;
  String.trim (Buffer.contents buf)
