open Xq_scanner

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let expect s tok =
  let got = next s in
  if got <> tok then fail "expected %s, found %s" (token_to_string tok) (token_to_string got)

let expect_kw s kw =
  match next s with
  | NAME n when n = kw -> ()
  | got -> fail "expected %s, found %s" kw (token_to_string got)

let peek_is_kw s kw = match peek s with NAME n -> n = kw | _ -> false

(* keywords that terminate a path substring at bracket depth 0 *)
let path_stop_keywords =
  [ "and"; "or"; "is"; "where"; "return"; "satisfies"; "then"; "else"; "eq"; "ne"; "lt";
    "le"; "gt"; "ge"; "to"; "in"; "for"; "let"; "order"; "stable" ]

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Carve out the maximal path substring starting at the cursor.  Tracks
   bracket/paren depth and string quoting; stops at depth 0 on a
   terminator character or a stop keyword. *)
let scan_path_substring s =
  skip_ws s;
  let src = src s in
  let n = String.length src in
  let start = pos s in
  let i = ref start in
  let depth = ref 0 in
  let quote = ref '\000' in
  let stop = ref None in
  while !stop = None && !i < n do
    let c = src.[!i] in
    if !quote <> '\000' then begin
      if c = !quote then quote := '\000';
      incr i
    end
    else
      match c with
      | '"' | '\'' ->
        quote := c;
        incr i
      | '[' | '(' ->
        incr depth;
        incr i
      | ']' | ')' ->
        if !depth = 0 then stop := Some !i
        else begin
          decr depth;
          incr i
        end
      | ',' | '}' | '{' | ';' when !depth = 0 -> stop := Some !i
      | ('=' | '!' | '<' | '>' | '+') when !depth = 0 -> stop := Some !i
      | '*' when !depth = 0 ->
        (* a '*' continues the path only as a wildcard step (right after
           '/' or '@' or at the start); otherwise it is multiplication *)
        let rec prev_nonws j =
          if j < start then '\000'
          else
            match src.[j] with
            | ' ' | '\t' | '\n' | '\r' -> prev_nonws (j - 1)
            | c -> c
        in
        (match prev_nonws (!i - 1) with
        | '\000' | '/' | '@' -> incr i
        | _ -> stop := Some !i)
      | '-'
        when !depth = 0 && !i > start
             && (let prev = src.[!i - 1] in
                 prev = ' ' || prev = '\t' || prev = '\n' || prev = '\r') ->
        (* a '-' preceded by whitespace is subtraction, not a name char
           (XQuery requires the same disambiguation) *)
        stop := Some !i
      | c when is_word_char c && !depth = 0 ->
        (* a keyword ends the path only at a word boundary *)
        let wstart = !i in
        let rec scan j = if j < n && is_word_char src.[j] then scan (j + 1) else j in
        let wstop = scan wstart in
        let word = String.sub src wstart (wstop - wstart) in
        let boundary = wstart = start || not (is_word_char src.[wstart - 1]) in
        let preceded_by_ws = wstart > start && (src.[wstart - 1] = ' ' || src.[wstart - 1] = '\n' || src.[wstart - 1] = '\t' || src.[wstart - 1] = '\r') in
        if boundary && preceded_by_ws && List.mem word path_stop_keywords then stop := Some wstart
        else i := wstop
      | _ -> incr i
  done;
  let stop = match !stop with Some p -> p | None -> n in
  let sub = String.trim (String.sub src start (stop - start)) in
  set_pos s stop;
  sub

(* Split a trailing "/@name" attribute selection off a path substring. *)
let split_attr sub =
  match String.rindex_opt sub '@' with
  | Some i
    when (i >= 1 && sub.[i - 1] = '/')
         || i = 0 ->
    let attr = String.sub sub (i + 1) (String.length sub - i - 1) in
    let valid_attr = attr <> "" && String.for_all (fun c -> is_word_char c || c = '-' || c = '*') attr in
    (* make sure the '@' is not inside brackets (a qualifier) *)
    let in_brackets =
      let depth = ref 0 in
      let inside = ref false in
      String.iteri
        (fun j c ->
          if c = '[' then incr depth
          else if c = ']' then decr depth
          else if j = i && !depth > 0 then inside := true)
        sub;
      !inside
    in
    if valid_attr && not in_brackets then
      let path_part = if i = 0 then "" else String.sub sub 0 (i - 1) in
      Some (path_part, attr)
    else None
  | _ -> None

let parse_path_string sub =
  try Xut_xpath.Parser.parse sub
  with Xut_xpath.Parser.Parse_error m | Xut_xpath.Lexer.Lex_error { msg = m; _ } ->
    fail "bad path %S: %s" sub m

(* Attach a scanned path substring to a base expression. *)
let attach_path base sub =
  if sub = "" then base
  else
    match split_attr sub with
    | Some ("", attr) -> Xq_ast.AttrPath (base, [], attr)
    | Some (path_part, attr) ->
      let path_part =
        (* "a/b" from "a/b/@id"; a lone "//" prefix survives trimming *)
        if path_part = "" then [] else parse_path_string path_part
      in
      Xq_ast.AttrPath (base, path_part, attr)
    | None -> Xq_ast.Path (base, parse_path_string sub)

(* ---------------- XML literals ---------------- *)

let decode_entities text =
  if not (String.contains text '&') then text
  else begin
    let buf = Buffer.create (String.length text) in
    let n = String.length text in
    let i = ref 0 in
    while !i < n do
      if text.[!i] = '&' then begin
        match String.index_from_opt text !i ';' with
        | Some j ->
          let entity = String.sub text (!i + 1) (j - !i - 1) in
          let repl =
            match entity with
            | "amp" -> "&"
            | "lt" -> "<"
            | "gt" -> ">"
            | "quot" -> "\""
            | "apos" -> "'"
            | _ ->
              if String.length entity > 1 && entity.[0] = '#' then
                let code =
                  if entity.[1] = 'x' then int_of_string ("0x" ^ String.sub entity 2 (String.length entity - 2))
                  else int_of_string (String.sub entity 1 (String.length entity - 1))
                in
                String.make 1 (Char.chr (code land 0x7f))
              else fail "unknown entity &%s;" entity
          in
          Buffer.add_string buf repl;
          i := j + 1
        | None -> fail "unterminated entity reference"
      end
      else begin
        Buffer.add_char buf text.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let is_all_ws s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* ---------------- expressions ---------------- *)

let rec parse_expr_seq s =
  let first = parse_expr_single s in
  if peek s = COMMA then begin
    let items = ref [ first ] in
    while peek s = COMMA do
      advance s;
      items := parse_expr_single s :: !items
    done;
    Xq_ast.Seq (List.rev !items)
  end
  else first

and parse_expr_single s =
  match peek s with
  | NAME "for" | NAME "let" -> parse_flwor s
  | NAME "if" when peek_after_kw_is s LPAREN -> parse_if s
  | NAME ("some" | "every") -> parse_quant s
  | _ -> parse_or s

and peek_after_kw_is s tok =
  (* look one token past the current keyword without committing *)
  let save = pos s in
  advance s;
  let r = peek s = tok in
  set_pos s save;
  r

and parse_flwor s =
  let clauses = ref [] in
  let rec clause_loop () =
    match peek s with
    | NAME "for" ->
      advance s;
      let rec vars () =
        (match next s with
        | VAR v ->
          expect_kw s "in";
          clauses := Xq_ast.For (v, parse_expr_single s) :: !clauses
        | got -> fail "expected a variable in 'for', found %s" (token_to_string got));
        if peek s = COMMA then begin
          advance s;
          vars ()
        end
      in
      vars ();
      clause_loop ()
    | NAME "let" ->
      advance s;
      let rec vars () =
        (match next s with
        | VAR v ->
          expect s ASSIGN;
          clauses := Xq_ast.LetC (v, parse_expr_single s) :: !clauses
        | got -> fail "expected a variable in 'let', found %s" (token_to_string got));
        if peek s = COMMA then begin
          advance s;
          vars ()
        end
      in
      vars ();
      clause_loop ()
    | _ -> ()
  in
  clause_loop ();
  let where = if peek_is_kw s "where" then begin advance s; Some (parse_expr_single s) end else None in
  expect_kw s "return";
  let ret = parse_expr_single s in
  Xq_ast.Flwor (List.rev !clauses, where, ret)

and parse_if s =
  expect_kw s "if";
  expect s LPAREN;
  let c = parse_expr_seq s in
  expect s RPAREN;
  expect_kw s "then";
  let t = parse_expr_single s in
  expect_kw s "else";
  let e = parse_expr_single s in
  Xq_ast.If (c, t, e)

and parse_quant s =
  let q = match next s with NAME "some" -> `Some | NAME "every" -> `Every | _ -> assert false in
  let v = match next s with VAR v -> v | got -> fail "expected a variable, found %s" (token_to_string got) in
  expect_kw s "in";
  let src_e = parse_expr_single s in
  expect_kw s "satisfies";
  let body = parse_expr_single s in
  Xq_ast.Quant (q, v, src_e, body)

and parse_or s =
  let left = parse_and s in
  if peek_is_kw s "or" then begin
    advance s;
    Xq_ast.Or (left, parse_or s)
  end
  else left

and parse_and s =
  let left = parse_cmp s in
  if peek_is_kw s "and" then begin
    advance s;
    Xq_ast.And (left, parse_and s)
  end
  else left

and parse_cmp s =
  let left = parse_additive s in
  let op =
    match peek s with
    | EQ -> Some Xq_ast.Eq
    | NEQ -> Some Xq_ast.Neq
    | LT -> Some Xq_ast.Lt
    | LE -> Some Xq_ast.Le
    | GT -> Some Xq_ast.Gt
    | GE -> Some Xq_ast.Ge
    | NAME "eq" -> Some Xq_ast.Eq
    | NAME "ne" -> Some Xq_ast.Neq
    | NAME "lt" -> Some Xq_ast.Lt
    | NAME "le" -> Some Xq_ast.Le
    | NAME "gt" -> Some Xq_ast.Gt
    | NAME "ge" -> Some Xq_ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance s;
    Xq_ast.Cmp (op, left, parse_additive s)
  | None ->
    if peek_is_kw s "is" then begin
      advance s;
      Xq_ast.Is (left, parse_additive s)
    end
    else left

and parse_additive s =
  let rec loop left =
    match peek s with
    | PLUS ->
      advance s;
      loop (Xq_ast.Arith (Xq_ast.Add, left, parse_multiplicative s))
    | MINUS ->
      advance s;
      loop (Xq_ast.Arith (Xq_ast.Sub, left, parse_multiplicative s))
    | _ -> left
  in
  loop (parse_multiplicative s)

and parse_multiplicative s =
  let rec loop left =
    match peek s with
    | STAR ->
      advance s;
      loop (Xq_ast.Arith (Xq_ast.Mul, left, parse_path_expr s))
    | NAME "div" ->
      advance s;
      loop (Xq_ast.Arith (Xq_ast.Div, left, parse_path_expr s))
    | NAME "mod" ->
      advance s;
      loop (Xq_ast.Arith (Xq_ast.Mod, left, parse_path_expr s))
    | _ -> left
  in
  loop (parse_path_expr s)

and parse_path_expr s =
  let base = parse_primary s in
  (* trailing path: '/', '//', '[' (predicate) or '/@attr' *)
  match peek_char s with
  | '/' | '[' ->
    let save = pos s in
    skip_ws s;
    (* don't confuse a following '//' with anything else; carve substring *)
    let sub = scan_path_substring s in
    if sub = "" then begin
      set_pos s save;
      base
    end
    else
      let sub = if sub.[0] = '[' then "." ^ sub else sub in
      attach_path base sub
  | _ -> base

and parse_primary s =
  (* XML literal? must check raw characters before tokenizing '<' *)
  (match peek_char s with
  | '<' -> `Xml
  | _ -> `Tok)
  |> function
  | `Xml -> parse_xml_literal s
  | `Tok -> (
    match peek s with
    | LPAREN ->
      advance s;
      if peek s = RPAREN then begin
        advance s;
        Xq_ast.Empty
      end
      else begin
        let e = parse_expr_seq s in
        expect s RPAREN;
        e
      end
    | STR v ->
      advance s;
      Xq_ast.Str v
    | NUM f ->
      advance s;
      Xq_ast.Num f
    | VAR v ->
      advance s;
      Xq_ast.Var v
    | DOT ->
      advance s;
      Xq_ast.Context
    | SLASH | DSLASH | STAR | AT ->
      (* absolute or relative path from the context item *)
      let sub = scan_path_substring s in
      attach_path Xq_ast.Context (if sub.[0] = '@' then "/" ^ sub else sub)
    | NAME "element" when peek_after_kw_is s LBRACE ->
      advance s;
      expect s LBRACE;
      let name_e = parse_expr_seq s in
      expect s RBRACE;
      expect s LBRACE;
      let content = if peek s = RBRACE then Xq_ast.Empty else parse_expr_seq s in
      expect s RBRACE;
      Xq_ast.ElemDyn (name_e, content)
    | NAME "text" when peek_after_kw_is s LBRACE ->
      advance s;
      expect s LBRACE;
      let e = parse_expr_seq s in
      expect s RBRACE;
      Xq_ast.TextCtor e
    | NAME "document" when peek_after_kw_is s LBRACE ->
      advance s;
      expect s LBRACE;
      let e = parse_expr_seq s in
      expect s RBRACE;
      Xq_ast.DocCtor e
    | NAME name when peek_after_kw_is s LPAREN ->
      advance s;
      advance s;
      let args =
        if peek s = RPAREN then []
        else begin
          let args = ref [ parse_expr_single s ] in
          while peek s = COMMA do
            advance s;
            args := parse_expr_single s :: !args
          done;
          List.rev !args
        end
      in
      expect s RPAREN;
      Xq_ast.Call (name, args)
    | NAME _ ->
      (* a bare name opens a context-relative path *)
      let sub = scan_path_substring s in
      attach_path Xq_ast.Context sub
    | got -> fail "unexpected token %s" (token_to_string got))

(* ---------------- XML literals ---------------- *)

and parse_xml_literal s =
  skip_ws s;
  let source = src s in
  let n = String.length source in
  let cur () = pos s in
  let at i = if i < n then source.[i] else '\000' in
  let adv k = set_pos s (cur () + k) in
  let read_raw_name () =
    let start = cur () in
    let rec go j = if j < n && (is_word_char source.[j] || source.[j] = '-' || source.[j] = ':') then go (j + 1) else j in
    let stop = go start in
    if stop = start then fail "expected a name in XML literal at offset %d" start;
    set_pos s stop;
    String.sub source start (stop - start)
  in
  let skip_spaces () =
    while at (cur ()) = ' ' || at (cur ()) = '\n' || at (cur ()) = '\t' || at (cur ()) = '\r' do
      adv 1
    done
  in
  if at (cur ()) <> '<' then fail "expected '<'";
  adv 1;
  let name = read_raw_name () in
  (* attributes *)
  let attrs = ref [] in
  let rec attr_loop () =
    skip_spaces ();
    let c = at (cur ()) in
    if is_word_char c then begin
      let k = read_raw_name () in
      skip_spaces ();
      if at (cur ()) <> '=' then fail "expected '=' in attribute";
      adv 1;
      skip_spaces ();
      let q = at (cur ()) in
      if q <> '"' && q <> '\'' then fail "expected a quoted attribute value";
      adv 1;
      let start = cur () in
      let rec find j = if j >= n then fail "unterminated attribute" else if source.[j] = q then j else find (j + 1) in
      let stop = find start in
      set_pos s stop;
      adv 1;
      attrs := (k, decode_entities (String.sub source start (stop - start))) :: !attrs;
      attr_loop ()
    end
  in
  attr_loop ();
  skip_spaces ();
  if at (cur ()) = '/' && at (cur () + 1) = '>' then begin
    adv 2;
    Xq_ast.ElemLit (name, List.rev !attrs, [])
  end
  else begin
    if at (cur ()) <> '>' then fail "expected '>' in XML literal";
    adv 1;
    (* content loop *)
    let children = ref [] in
    let buf = Buffer.create 32 in
    let flush_text () =
      let t = Buffer.contents buf in
      Buffer.clear buf;
      (* literal constructor content is a text node, not an atomic value
         (atomics would be space-joined with their neighbours) *)
      if t <> "" && not (is_all_ws t) then
        children := Xq_ast.TextCtor (Xq_ast.Str (decode_entities t)) :: !children
    in
    let rec content () =
      if cur () >= n then fail "unterminated element <%s>" name
      else if at (cur ()) = '{' then
        if at (cur () + 1) = '{' then begin
          Buffer.add_char buf '{';
          adv 2;
          content ()
        end
        else begin
          flush_text ();
          adv 1;
          let e = parse_expr_seq s in
          expect s RBRACE;
          skip_ws s;
          children := e :: !children;
          content ()
        end
      else if at (cur ()) = '}' && at (cur () + 1) = '}' then begin
        Buffer.add_char buf '}';
        adv 2;
        content ()
      end
      else if at (cur ()) = '<' then
        if at (cur () + 1) = '/' then begin
          flush_text ();
          adv 2;
          let close = read_raw_name () in
          if close <> name then fail "mismatched XML literal: <%s> closed by </%s>" name close;
          skip_spaces ();
          if at (cur ()) <> '>' then fail "expected '>'";
          adv 1
        end
        else if at (cur () + 1) = '!' then begin
          (* comment *)
          if String.sub source (cur ()) 4 <> "<!--" then fail "unsupported markup in XML literal";
          let rec find j =
            if j + 3 > n then fail "unterminated comment"
            else if String.sub source j 3 = "-->" then j
            else find (j + 1)
          in
          let stop = find (cur () + 4) in
          set_pos s (stop + 3);
          content ()
        end
        else begin
          flush_text ();
          let child = parse_xml_literal s in
          children := child :: !children;
          content ()
        end
      else begin
        Buffer.add_char buf (at (cur ()));
        adv 1;
        content ()
      end
    in
    content ();
    Xq_ast.ElemLit (name, List.rev !attrs, List.rev !children)
  end

(* ---------------- programs ---------------- *)

let parse_seq_type s =
  (* 'as' NAME ['(' ')'] ['*'|'?'|'+']  — parsed and ignored *)
  (match next s with
  | NAME _ -> ()
  | got -> fail "expected a type name, found %s" (token_to_string got));
  if peek s = LPAREN then begin
    advance s;
    expect s RPAREN
  end;
  match peek s with
  | STAR ->
    advance s
  | NAME "?" -> advance s
  | _ -> ()

let parse_fundef s =
  expect_kw s "declare";
  expect_kw s "function";
  let fname = match next s with NAME n -> n | got -> fail "expected a function name, found %s" (token_to_string got) in
  expect s LPAREN;
  let params = ref [] in
  if peek s <> RPAREN then begin
    let rec loop () =
      (match next s with
      | VAR v ->
        params := v :: !params;
        if peek_is_kw s "as" then begin
          advance s;
          parse_seq_type s
        end
      | got -> fail "expected a parameter, found %s" (token_to_string got));
      if peek s = COMMA then begin
        advance s;
        loop ()
      end
    in
    loop ()
  end;
  expect s RPAREN;
  if peek_is_kw s "as" then begin
    advance s;
    parse_seq_type s
  end;
  expect s LBRACE;
  let body = parse_expr_seq s in
  expect s RBRACE;
  if peek s = SEMI then advance s;
  { Xq_ast.fname; params = List.rev !params; body }

let parse source =
  let s = of_string source in
  let functions = ref [] in
  (try
     while peek_is_kw s "declare" do
       functions := parse_fundef s :: !functions
     done;
     ()
   with Scan_error { pos; msg } -> fail "scan error at %d: %s" pos msg);
  let body =
    try parse_expr_seq s
    with Scan_error { pos; msg } -> fail "scan error at %d: %s" pos msg
  in
  (match peek s with
  | EOF -> ()
  | got -> fail "trailing input: %s" (token_to_string got));
  { Xq_ast.functions = List.rev !functions; body }

let parse_expr source =
  let p = parse source in
  if p.Xq_ast.functions <> [] then fail "unexpected function declarations";
  p.Xq_ast.body
