(** Incremental tokenizer for the XQuery parser.

    Unlike a batch lexer, the scanner only commits to a token when the
    parser consumes it ({!advance}); {!peek} never moves the cursor.
    This lets the parser drop to raw character scanning for the two
    constructs a token stream cannot express: direct XML constructors
    and embedded XPath expressions (which are handed to the X parser as
    substrings). *)

type token =
  | EOF
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | SLASH
  | DSLASH
  | AT
  | DOT
  | STAR
  | ASSIGN  (** := *)
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | VAR of string   (** $name *)
  | NAME of string  (** possibly prefixed: local:insert *)
  | STR of string
  | NUM of float

exception Scan_error of { pos : int; msg : string }

type t

val of_string : string -> t
val pos : t -> int
val set_pos : t -> int -> unit
val src : t -> string

val peek : t -> token
(** The next token; the cursor stays before it. *)

val advance : t -> unit
(** Consume the token last returned by {!peek}. *)

val next : t -> token

val peek_char : t -> char
(** First character after whitespace/comments ('\000' at end); cursor
    unmoved.  Used to spot XML literals before tokenizing '<'. *)

val skip_ws : t -> unit
(** Advance the cursor past whitespace and (nested) [(: :)] comments. *)

val error : t -> string -> 'a

val token_to_string : token -> string
