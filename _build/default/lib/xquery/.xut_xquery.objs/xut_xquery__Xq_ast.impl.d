lib/xquery/xq_ast.ml: Ast Buffer Float Format List String Xut_xml Xut_xpath
