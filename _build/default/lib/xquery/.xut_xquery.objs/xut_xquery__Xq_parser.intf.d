lib/xquery/xq_parser.mli: Xq_ast
