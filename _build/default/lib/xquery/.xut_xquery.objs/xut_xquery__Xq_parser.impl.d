lib/xquery/xq_parser.ml: Buffer Char List Printf String Xq_ast Xq_scanner Xut_xpath
