lib/xquery/xq_eval.ml: Float Hashtbl List Map Node Printf String Xq_ast Xq_parser Xq_value Xut_xml Xut_xpath
