lib/xquery/xq_value.mli: Format Node Xq_ast Xut_xml
