lib/xquery/xq_eval.mli: Node Xq_ast Xq_value Xut_xml
