lib/xquery/xq_scanner.mli:
