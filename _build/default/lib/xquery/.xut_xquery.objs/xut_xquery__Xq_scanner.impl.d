lib/xquery/xq_scanner.ml: Printf String
