lib/xquery/xq_ast.mli: Ast Format Xut_xml Xut_xpath
