lib/xquery/xq_value.ml: Bool Float Format List Node String Xq_ast Xut_xml
