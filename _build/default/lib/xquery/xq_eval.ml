open Xut_xml
open Xq_value

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

module Smap = Map.Make (String)

type env = {
  vars : Xq_value.t Smap.t;
  funs : Xq_ast.fundef Smap.t;
  natives : (Xq_value.t list -> Xq_value.t) Smap.t;
  docs : (string * Node.element) list;
  context : Node.element option;
}

let env ?(docs = []) ?(natives = []) ?context () =
  {
    vars = Smap.empty;
    funs = Smap.empty;
    natives = List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty natives;
    docs;
    context;
  }

let lookup_doc env name =
  match List.assoc_opt name env.docs with
  | Some e -> e
  | None -> (
    match env.context with
    | Some e -> e
    | None -> fail "doc(%S): no such document bound" name)

(* Strip an optional namespace prefix for builtin lookup. *)
let local_part name =
  match String.index_opt name ':' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let select_from_item path item =
  match item with
  | N (Node.Element e) -> List.map (fun r -> N (Node.Element r)) (Xut_xpath.Eval.select e path)
  | D root -> List.map (fun r -> N (Node.Element r)) (Xut_xpath.Eval.select_doc root path)
  | N (Node.Text _ | Node.Comment _ | Node.Pi _) -> []
  | A _ | S _ | F _ | B _ -> raise (Type_error "path applied to an atomic value")

let attrs_of_item item =
  match item with
  | N (Node.Element e) | D e -> Node.attrs e
  | N (Node.Text _ | Node.Comment _ | Node.Pi _) -> []
  | A _ | S _ | F _ | B _ -> raise (Type_error "attribute step applied to an atomic value")

(* Element construction: attribute items become attributes; adjacent
   atomics join with a space into one text node; nodes are copied. *)
let build_content items =
  let attrs = ref [] in
  let rev_children = ref [] in
  let pending_atom = ref None in
  let flush_atom () =
    match !pending_atom with
    | Some s ->
      rev_children := Node.Text s :: !rev_children;
      pending_atom := None
    | None -> ()
  in
  List.iter
    (fun item ->
      match item with
      | A (k, v) -> attrs := (k, v) :: !attrs
      | N n ->
        flush_atom ();
        rev_children := Node.refresh_ids n :: !rev_children
      | D e ->
        flush_atom ();
        rev_children := Node.refresh_ids (Node.Element e) :: !rev_children
      | S _ | F _ | B _ ->
        let s = string_of_item item in
        pending_atom :=
          Some (match !pending_atom with None -> s | Some prev -> prev ^ " " ^ s))
    items;
  flush_atom ();
  (List.rev !attrs, List.rev !rev_children)

let rec eval env (expr : Xq_ast.expr) : Xq_value.t =
  match expr with
  | Xq_ast.Empty -> []
  | Xq_ast.Seq es -> List.concat_map (eval env) es
  | Xq_ast.Str s -> [ S s ]
  | Xq_ast.Num f -> [ F f ]
  | Xq_ast.Var v -> (
    match Smap.find_opt v env.vars with
    | Some value -> value
    | None -> fail "unbound variable $%s" v)
  | Xq_ast.Context -> (
    match env.context with
    | Some root -> [ D root ]
    | None -> fail "no context item")
  | Xq_ast.Path (base, path) ->
    let v = eval env base in
    List.concat_map (select_from_item path) v
  | Xq_ast.AttrPath (base, path, attr) ->
    let v = eval env base in
    let nodes = if path = [] then v else List.concat_map (select_from_item path) v in
    List.concat_map
      (fun item ->
        let attrs = attrs_of_item item in
        if attr = "*" then List.map (fun (k, v) -> A (k, v)) attrs
        else
          match List.assoc_opt attr attrs with
          | Some v -> [ A (attr, v) ]
          | None -> [])
      nodes
  | Xq_ast.Flwor (clauses, where, ret) -> eval_flwor env clauses where ret
  | Xq_ast.If (c, t, e) -> if ebv (eval env c) then eval env t else eval env e
  | Xq_ast.Quant (q, v, src, body) ->
    let items = eval env src in
    let test item = ebv (eval { env with vars = Smap.add v [ item ] env.vars } body) in
    [ B (match q with `Some -> List.exists test items | `Every -> List.for_all test items) ]
  | Xq_ast.Cmp (op, a, b) -> [ B (general_cmp op (eval env a) (eval env b)) ]
  | Xq_ast.Arith (op, a, b) -> (
    match eval env a, eval env b with
    | [], _ | _, [] -> []
    | [ x ], [ y ] -> (
      let num item =
        match as_float (atomize_item item) with
        | Some f -> f
        | None -> fail "arithmetic on a non-numeric value %S" (string_of_item item)
      in
      let x = num x and y = num y in
      match op with
      | Xq_ast.Add -> [ F (x +. y) ]
      | Xq_ast.Sub -> [ F (x -. y) ]
      | Xq_ast.Mul -> [ F (x *. y) ]
      | Xq_ast.Div ->
        if y = 0.0 then fail "division by zero" else [ F (x /. y) ]
      | Xq_ast.Mod ->
        if y = 0.0 then fail "modulo by zero" else [ F (Float.rem x y) ])
    | _ -> fail "arithmetic on a multi-item sequence")
  | Xq_ast.And (a, b) -> [ B (ebv (eval env a) && ebv (eval env b)) ]
  | Xq_ast.Or (a, b) -> [ B (ebv (eval env a) || ebv (eval env b)) ]
  | Xq_ast.Is (a, b) -> (
    match eval env a, eval env b with
    | [ x ], [ y ] -> [ B (item_identity x y) ]
    | [], _ | _, [] -> []
    | _ -> raise (Type_error "'is' requires single nodes"))
  | Xq_ast.ElemLit (name, attrs, children) ->
    let content = List.concat_map (eval env) children in
    let dyn_attrs, kids = build_content content in
    [ N (Node.elem ~attrs:(attrs @ dyn_attrs) name kids) ]
  | Xq_ast.ElemDyn (name_e, content_e) ->
    let name =
      match eval env name_e with
      | [ item ] -> string_of_item item
      | _ -> fail "element{} name must be a single item"
    in
    let attrs, kids = build_content (eval env content_e) in
    [ N (Node.elem ~attrs name kids) ]
  | Xq_ast.TextCtor e ->
    let s = String.concat "" (List.map string_of_item (eval env e)) in
    [ N (Node.Text s) ]
  | Xq_ast.DocCtor e -> (
    (* our documents are their root elements *)
    match List.filter (function N (Node.Element _) -> true | _ -> false) (eval env e) with
    | [ N (Node.Element root) ] -> [ D root ]
    | _ -> fail "document{} must construct exactly one element")
  | Xq_ast.Call (name, args) -> eval_call env name (List.map (eval env) args)
  | Xq_ast.NodeConst n -> [ N n ]

and eval_flwor env clauses where ret =
  match clauses with
  | [] ->
    let keep = match where with None -> true | Some w -> ebv (eval env w) in
    if keep then eval env ret else []
  | Xq_ast.LetC (v, e) :: rest ->
    let value = eval env e in
    eval_flwor { env with vars = Smap.add v value env.vars } rest where ret
  | Xq_ast.For (v, e) :: rest ->
    let items = eval env e in
    List.concat_map
      (fun item -> eval_flwor { env with vars = Smap.add v [ item ] env.vars } rest where ret)
      items

and eval_call env name args =
  match Smap.find_opt name env.natives with
  | Some f -> f args
  | None -> (
    match Smap.find_opt name env.funs with
    | Some fd -> apply_fun env fd args
    | None -> eval_builtin env name args)

and apply_fun env fd args =
  if List.length fd.Xq_ast.params <> List.length args then
    fail "%s expects %d arguments, got %d" fd.Xq_ast.fname (List.length fd.Xq_ast.params)
      (List.length args);
  let vars =
    List.fold_left2 (fun m p a -> Smap.add p a m) env.vars fd.Xq_ast.params args
  in
  eval { env with vars } fd.Xq_ast.body

and eval_builtin env name args =
  match local_part name, args with
  | "empty", [ v ] -> of_bool (v = [])
  | "exists", [ v ] -> of_bool (v <> [])
  | "not", [ v ] -> of_bool (not (ebv v))
  | "count", [ v ] -> [ F (float_of_int (List.length v)) ]
  | "true", [] -> of_bool true
  | "false", [] -> of_bool false
  | "string", [ v ] -> of_string (String.concat "" (List.map string_of_item v))
  | "concat", vs -> of_string (String.concat "" (List.map (fun v -> String.concat "" (List.map string_of_item v)) vs))
  | "local-name", [ v ] -> (
    match v with
    | [ N (Node.Element e) ] | [ D e ] -> of_string (Node.name e)
    | [ _ ] | [] -> of_string ""
    | _ -> fail "local-name: more than one item")
  | "doc", [ v ] -> (
    match v with
    | [ S name ] -> [ D (lookup_doc env name) ]
    | _ -> fail "doc: expected a string")
  | "string-length", [ v ] -> (
    match v with
    | [] -> [ F 0.0 ]
    | [ item ] -> [ F (float_of_int (String.length (string_of_item item))) ]
    | _ -> fail "string-length: more than one item")
  | "contains", [ a; b ] ->
    let hay = String.concat "" (List.map string_of_item a) in
    let needle = String.concat "" (List.map string_of_item b) in
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    of_bool (n = 0 || go 0)
  | "starts-with", [ a; b ] ->
    let hay = String.concat "" (List.map string_of_item a) in
    let pre = String.concat "" (List.map string_of_item b) in
    of_bool (String.length pre <= String.length hay
             && String.sub hay 0 (String.length pre) = pre)
  | "ends-with", [ a; b ] ->
    let hay = String.concat "" (List.map string_of_item a) in
    let suf = String.concat "" (List.map string_of_item b) in
    let lh = String.length hay and ls = String.length suf in
    of_bool (ls <= lh && String.sub hay (lh - ls) ls = suf)
  | "upper-case", [ v ] -> of_string (String.uppercase_ascii (String.concat "" (List.map string_of_item v)))
  | "lower-case", [ v ] -> of_string (String.lowercase_ascii (String.concat "" (List.map string_of_item v)))
  | "normalize-space", [ v ] ->
    let s = String.concat "" (List.map string_of_item v) in
    let words = String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s) in
    of_string (String.concat " " (List.filter (fun w -> w <> "") words))
  | "string-join", [ v; sep ] ->
    let sep = String.concat "" (List.map string_of_item sep) in
    of_string (String.concat sep (List.map string_of_item v))
  | "number", [ v ] -> (
    match v with
    | [ item ] -> (
      match as_float (atomize_item item) with Some f -> [ F f ] | None -> [ F Float.nan ])
    | _ -> [ F Float.nan ])
  | "boolean", [ v ] -> of_bool (ebv v)
  | ("sum" | "avg" | "max" | "min"), [ v ] -> (
    let nums =
      List.filter_map (fun item -> as_float (atomize_item item)) v
    in
    match local_part name, nums with
    | "sum", ns -> [ F (List.fold_left ( +. ) 0.0 ns) ]
    | _, [] -> []
    | "avg", ns -> [ F (List.fold_left ( +. ) 0.0 ns /. float_of_int (List.length ns)) ]
    | "max", n :: ns -> [ F (List.fold_left Float.max n ns) ]
    | "min", n :: ns -> [ F (List.fold_left Float.min n ns) ]
    | _ -> assert false)
  | "round", [ v ] -> (
    match v with
    | [ item ] -> (
      match as_float (atomize_item item) with Some f -> [ F (Float.round f) ] | None -> [ F Float.nan ])
    | _ -> fail "round: expected one item")
  | "floor", [ v ] -> (
    match v with
    | [ item ] -> (
      match as_float (atomize_item item) with Some f -> [ F (Float.floor f) ] | None -> [ F Float.nan ])
    | _ -> fail "floor: expected one item")
  | "ceiling", [ v ] -> (
    match v with
    | [ item ] -> (
      match as_float (atomize_item item) with Some f -> [ F (Float.ceil f) ] | None -> [ F Float.nan ])
    | _ -> fail "ceiling: expected one item")
  | "distinct-values", [ v ] ->
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun item ->
        let s = string_of_item item in
        if Hashtbl.mem seen s then None
        else begin
          Hashtbl.add seen s ();
          Some (S s)
        end)
      v
  | "substring", ([ v; st ] | [ v; st; _ ]) -> (
    let s = String.concat "" (List.map string_of_item v) in
    let want_len =
      match args with
      | [ _; _; [ l ] ] -> (
        match as_float (atomize_item l) with Some f -> Some (int_of_float f) | None -> None)
      | _ -> None
    in
    match st with
    | [ item ] -> (
      match as_float (atomize_item item) with
      | Some f ->
        let start = max 0 (int_of_float f - 1) in
        let n = String.length s in
        if start >= n then of_string ""
        else
          let len =
            match want_len with Some l -> min l (n - start) | None -> n - start
          in
          of_string (String.sub s start (max 0 len))
      | None -> of_string "")
    | _ -> fail "substring: bad start")
  | "attr", [ name_v; value_v ] ->
    (* xut:attr(name, value): a constructed attribute item *)
    [ A
        ( String.concat "" (List.map string_of_item name_v),
          String.concat "" (List.map string_of_item value_v) ) ]
  | "attrs-except", [ v; prefix_v ] -> (
    let prefix = String.concat "" (List.map string_of_item prefix_v) in
    let keep (k, _) =
      String.length k < String.length prefix || String.sub k 0 (String.length prefix) <> prefix
    in
    match v with
    | [ N (Node.Element e) ] | [ D e ] ->
      List.filter_map (fun (k, v) -> if keep (k, v) then Some (A (k, v)) else None) (Node.attrs e)
    | [ _ ] | [] -> []
    | _ -> fail "attrs-except: expected a single node")
  | "strip-attr", [ v; name_v ] -> (
    (* remove the attribute from every element of the subtree *)
    let attr = String.concat "" (List.map string_of_item name_v) in
    let rec strip node =
      match node with
      | Node.Element e ->
        if List.mem_assoc attr (Node.attrs e) then
          Node.Element
            (Node.element
               ~attrs:(List.filter (fun (k, _) -> k <> attr) (Node.attrs e))
               (Node.name e)
               (List.map strip (Node.children e)))
        else
          let kids = List.map strip (Node.children e) in
          if List.for_all2 (fun a b -> a == b) (Node.children e) kids then node
          else Node.Element (Node.element ~attrs:(Node.attrs e) (Node.name e) kids)
      | Node.Text _ | Node.Comment _ | Node.Pi _ -> node
    in
    match v with
    | [ N n ] -> [ N (strip n) ]
    | [ D e ] -> [ N (strip (Node.Element e)) ]
    | [] -> []
    | _ -> fail "strip-attr: expected a single node")
  | "is-element", [ v ] ->
    of_bool (match v with [ N (Node.Element _) ] -> true | _ -> false)
  | "children", [ v ] -> (
    match v with
    | [ N (Node.Element e) ] | [ D e ] -> List.map (fun n -> N n) (Node.children e)
    | [ N (Node.Text _ | Node.Comment _ | Node.Pi _) ] -> []
    | [] -> []
    | _ -> fail "children: expected a single node")
  | _, _ -> fail "unknown function %s/%d" name (List.length args)

let eval_expr env e = eval env e

let eval_program env (p : Xq_ast.program) =
  let funs =
    List.fold_left (fun m (fd : Xq_ast.fundef) -> Smap.add fd.fname fd m) env.funs p.functions
  in
  eval { env with funs } p.body

let value_to_element value =
  match value with
  | [ N (Node.Element e) ] | [ D e ] -> e
  | _ -> raise (Eval_error "expected a single element result")

let run_query env src = eval_program env (Xq_parser.parse src)
