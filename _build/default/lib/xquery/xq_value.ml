open Xut_xml

type item =
  | N of Node.t
  | D of Node.element
  | A of string * string
  | S of string
  | F of float
  | B of bool

type t = item list

exception Type_error of string

let of_bool b = [ B b ]
let of_string s = [ S s ]

let node_string = function
  | Node.Element e -> Node.text_content e
  | Node.Text s -> s
  | Node.Comment s -> s
  | Node.Pi (_, c) -> c

let string_of_item = function
  | N n -> node_string n
  | D e -> Node.text_content e
  | A (_, v) -> v
  | S s -> s
  | F f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | B b -> string_of_bool b

let atomize_item = function
  | N n -> S (node_string n)
  | D e -> S (Node.text_content e)
  | A (_, v) -> S v
  | (S _ | F _ | B _) as a -> a

let ebv = function
  | [] -> false
  | (N _ | D _ | A _) :: _ -> true
  | [ B b ] -> b
  | [ S s ] -> s <> ""
  | [ F f ] -> f <> 0.0 && not (Float.is_nan f)
  | _ :: _ :: _ -> raise (Type_error "effective boolean value of a multi-item atomic sequence")

let as_float = function
  | F f -> Some f
  | S s -> float_of_string_opt (String.trim s)
  | B _ -> None
  | N _ | D _ | A _ -> None

let cmp_int (op : Xq_ast.cmp) c =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let compare_items op a b =
  let a = atomize_item a and b = atomize_item b in
  match a, b with
  | B x, B y -> cmp_int op (Bool.compare x y)
  | B x, S y -> cmp_int op (String.compare (string_of_bool x) y)
  | S x, B y -> cmp_int op (String.compare x (string_of_bool y))
  | F _, _ | _, F _ -> (
    (* one side is numeric: numeric comparison, non-numbers never match *)
    match as_float a, as_float b with
    | Some x, Some y -> cmp_int op (Float.compare x y)
    | _ -> false)
  | S x, S y -> (
    (* untyped data: numeric when both parse, else string *)
    match float_of_string_opt (String.trim x), float_of_string_opt (String.trim y) with
    | Some fx, Some fy -> cmp_int op (Float.compare fx fy)
    | _ -> cmp_int op (String.compare x y))
  | (N _ | D _ | A _), _ | _, (N _ | D _ | A _) -> assert false

let general_cmp op xs ys =
  List.exists (fun x -> List.exists (fun y -> compare_items op x y) ys) xs

let item_identity a b =
  match a, b with
  | N (Node.Element x), N (Node.Element y) -> Node.id x = Node.id y
  | D x, D y -> Node.id x = Node.id y
  | N x, N y -> x == y
  | A (k1, v1), A (k2, v2) -> k1 == k2 && v1 == v2
  | (N _ | D _ | A _ | S _ | F _ | B _), _ ->
    raise (Type_error "operands of 'is' must be nodes")

let pp_item ppf = function
  | N n -> Node.pp ppf n
  | D e -> Format.fprintf ppf "document{%a}" Node.pp_element e
  | A (k, v) -> Format.fprintf ppf "@%s=%S" k v
  | S s -> Format.fprintf ppf "%S" s
  | F f -> Format.fprintf ppf "%g" f
  | B b -> Format.fprintf ppf "%b" b

let pp ppf items =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_item)
    items
