open Xut_xpath

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type expr =
  | Empty
  | Seq of expr list
  | Str of string
  | Num of float
  | Var of string
  | Context
  | Path of expr * Ast.path
  | AttrPath of expr * Ast.path * string
  | Flwor of clause list * expr option * expr
  | If of expr * expr * expr
  | Quant of [ `Some | `Every ] * string * expr * expr
  | Cmp of cmp * expr * expr
  | Arith of arith * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Is of expr * expr
  | ElemLit of string * (string * string) list * expr list
  | ElemDyn of expr * expr
  | TextCtor of expr
  | DocCtor of expr
  | Call of string * expr list
  | NodeConst of Xut_xml.Node.t

and clause = For of string * expr | LetC of string * expr

type fundef = { fname : string; params : string list; body : expr }

type program = { functions : fundef list; body : expr }

let program ?(functions = []) body = { functions; body }

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Mod -> "mod"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter (fun c -> if c = '"' then Buffer.add_string buf "&quot;" else Buffer.add_char buf c) s;
  Buffer.contents buf

(* "/p", or "//p" when the path opens with a descendant step. *)
let join_path p =
  let s = Ast.path_to_string p in
  if String.length s >= 2 && s.[0] = '/' && s.[1] = '/' then s else "/" ^ s

let rec pp ppf expr =
  match expr with
  | Empty -> Format.pp_print_string ppf "()"
  | Seq es ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      es
  | Str s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | Num f ->
    if Float.is_integer f then Format.fprintf ppf "%d" (int_of_float f)
    else Format.fprintf ppf "%g" f
  | Var v -> Format.fprintf ppf "$%s" v
  | Context -> Format.pp_print_string ppf "."
  | Path (base, p) -> Format.fprintf ppf "%a%s" pp_base base (join_path p)
  | AttrPath (base, [], a) -> Format.fprintf ppf "%a/@%s" pp_base base a
  | AttrPath (base, p, a) -> Format.fprintf ppf "%a%s/@%s" pp_base base (join_path p) a
  | Flwor (clauses, where, ret) ->
    Format.fprintf ppf "@[<v>";
    List.iter
      (function
        | For (v, e) -> Format.fprintf ppf "for $%s in %a@ " v pp e
        | LetC (v, e) -> Format.fprintf ppf "let $%s := %a@ " v pp e)
      clauses;
    (match where with
    | Some w -> Format.fprintf ppf "where %a@ " pp w
    | None -> ());
    Format.fprintf ppf "return %a@]" pp ret
  | If (c, t, e) -> Format.fprintf ppf "@[<v>if (%a)@ then %a@ else %a@]" pp c pp t pp e
  | Quant (q, v, src, body) ->
    Format.fprintf ppf "%s $%s in %a satisfies %a"
      (match q with `Some -> "some" | `Every -> "every")
      v pp src pp body
  | Cmp (op, a, b) -> Format.fprintf ppf "%a %s %a" pp_atom a (cmp_to_string op) pp_atom b
  | Arith (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_atom a (arith_to_string op) pp_atom b
  | And (a, b) -> Format.fprintf ppf "%a and %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf ppf "%a or %a" pp_atom a pp_atom b
  | Is (a, b) -> Format.fprintf ppf "%a is %a" pp_atom a pp_atom b
  | ElemLit (name, attrs, children) ->
    Format.fprintf ppf "<%s" name;
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=\"%s\"" k (escape_string v)) attrs;
    if children = [] then Format.fprintf ppf "/>"
    else begin
      Format.fprintf ppf ">";
      List.iter
        (function
          | TextCtor (Str s) -> Format.pp_print_string ppf s
          | child -> Format.fprintf ppf "{%a}" pp child)
        children;
      Format.fprintf ppf "</%s>" name
    end
  | ElemDyn (n, c) -> Format.fprintf ppf "element {%a} {%a}" pp n pp c
  | TextCtor e -> Format.fprintf ppf "text {%a}" pp e
  | DocCtor e -> Format.fprintf ppf "document {%a}" pp e
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      args
  | NodeConst n -> Format.pp_print_string ppf (Xut_xml.Serialize.to_string n)

(* Parenthesize operands whose top form would change the parse. *)
and pp_atom ppf e =
  match e with
  | Flwor _ | If _ | Quant _ | Cmp _ | Arith _ | And _ | Or _ | Is _ | Seq _ ->
    Format.fprintf ppf "(%a)" pp e
  | _ -> pp ppf e

and pp_base ppf e =
  match e with
  | Var _ | Context | Call _ -> pp ppf e
  | Path (_, _) | AttrPath _ -> pp ppf e
  | _ -> Format.fprintf ppf "(%a)" pp e

let to_string e = Format.asprintf "@[<v>%a@]" pp e

let pp_program ppf { functions; body } =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun { fname; params; body } ->
      Format.fprintf ppf "declare function %s(%s) {@   %a@ };@ @ " fname
        (String.concat ", " (List.map (fun p -> "$" ^ p) params))
        pp body)
    functions;
  Format.fprintf ppf "%a@]" pp body

let program_to_string p = Format.asprintf "%a" pp_program p
