open Xut_xpath

(** Abstract syntax of the XQuery subset implemented by this engine.

    The subset covers what the paper's techniques need on the host side:
    FLWOR with multiple [for]/[let] clauses, [where], conditionals,
    quantifiers, general comparisons, node identity ([is]), static and
    computed element constructors, recursive user-defined functions, and
    path navigation using the X fragment.  See {!Xq_eval} for the builtin
    function library and the extension hooks. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type expr =
  | Empty                                   (** () *)
  | Seq of expr list                        (** e1, e2, ... *)
  | Str of string
  | Num of float
  | Var of string
  | Context                                 (** '.' — the context item *)
  | Path of expr * Ast.path                 (** e/path *)
  | AttrPath of expr * Ast.path * string    (** e/path/@a ; "*" = all *)
  | Flwor of clause list * expr option * expr
  | If of expr * expr * expr
  | Quant of [ `Some | `Every ] * string * expr * expr
  | Cmp of cmp * expr * expr                (** general (existential) *)
  | Arith of arith * expr * expr            (** numeric, on atomized singletons *)
  | And of expr * expr
  | Or of expr * expr
  | Is of expr * expr                       (** node identity *)
  | ElemLit of string * (string * string) list * expr list
  | ElemDyn of expr * expr                  (** element {name} {content} *)
  | TextCtor of expr                        (** text {e} *)
  | DocCtor of expr                         (** document {e} *)
  | Call of string * expr list
  | NodeConst of Xut_xml.Node.t             (** internal: a constant tree *)

and clause = For of string * expr | LetC of string * expr

type fundef = { fname : string; params : string list; body : expr }

type program = { functions : fundef list; body : expr }

val program : ?functions:fundef list -> expr -> program

val cmp_to_string : cmp -> string
val arith_to_string : arith -> string

val pp : Format.formatter -> expr -> unit
val to_string : expr -> string

val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
