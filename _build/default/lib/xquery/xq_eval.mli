open Xut_xml

(** Interpreter for the XQuery subset.

    Documents referenced by [doc("name")] are resolved through the
    [docs] binding; native OCaml functions can be registered to extend
    the engine (the Compose Method registers its runtime [topDown]
    helper this way — the moral equivalent of shipping a user-defined
    function with the query, Section 4). *)

exception Eval_error of string

type env

val env :
  ?docs:(string * Node.element) list ->
  ?natives:(string * (Xq_value.t list -> Xq_value.t)) list ->
  ?context:Node.element ->
  unit ->
  env
(** [context] doubles as the binding of '.' (as a document node) and the
    default target of [doc] when the name is unknown. *)

val eval_program : env -> Xq_ast.program -> Xq_value.t

val eval_expr : env -> Xq_ast.expr -> Xq_value.t
(** Evaluate a single expression (no user-defined functions in scope). *)

val run_query : env -> string -> Xq_value.t
(** Parse with {!Xq_parser} and evaluate. *)

val value_to_element : Xq_value.t -> Node.element
(** Interpret a result as a single document element.
    @raise Eval_error otherwise. *)

(** {2 Builtins}

    [empty], [exists], [not], [count], [true], [false], [concat],
    [string], [fn:local-name], [doc], [xut:is-element] (item is an
    element node), [xut:children] (all child nodes of an element,
    including text). *)
