type token =
  | EOF
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | SLASH
  | DSLASH
  | AT
  | DOT
  | STAR
  | ASSIGN
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | VAR of string
  | NAME of string
  | STR of string
  | NUM of float

exception Scan_error of { pos : int; msg : string }

type t = {
  source : string;
  mutable cur : int;
  (* cached lookahead: token and the cursor position after it *)
  mutable cached : (token * int) option;
}

let of_string source = { source; cur = 0; cached = None }
let src t = t.source

let pos t = t.cur

let set_pos t p =
  t.cur <- p;
  t.cached <- None

let error t msg = raise (Scan_error { pos = t.cur; msg })

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'
let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || is_digit c || c = '-'

let at t i = if i < String.length t.source then t.source.[i] else '\000'

(* whitespace and nested (: ... :) comments *)
let skip_ws t =
  t.cached <- None;
  let rec go () =
    if is_ws (at t t.cur) then begin
      t.cur <- t.cur + 1;
      go ()
    end
    else if at t t.cur = '(' && at t (t.cur + 1) = ':' then begin
      let depth = ref 1 in
      t.cur <- t.cur + 2;
      while !depth > 0 do
        if t.cur >= String.length t.source then error t "unterminated comment"
        else if at t t.cur = '(' && at t (t.cur + 1) = ':' then begin
          incr depth;
          t.cur <- t.cur + 2
        end
        else if at t t.cur = ':' && at t (t.cur + 1) = ')' then begin
          decr depth;
          t.cur <- t.cur + 2
        end
        else t.cur <- t.cur + 1
      done;
      go ()
    end
  in
  go ()

let peek_char t =
  let save = t.cur in
  let cached = t.cached in
  skip_ws t;
  let c = at t t.cur in
  t.cur <- save;
  t.cached <- cached;
  c

let scan_name src i =
  (* scan a (possibly prefixed) name starting at i; returns (name, stop) *)
  let n = String.length src in
  let rec go j =
    if j < n && is_name_char src.[j] then go (j + 1)
    else if
      (* a ':' continues the name only when followed by a name start
         (so "a := b" does not lex "a:" as a name) *)
      j < n && src.[j] = ':' && j + 1 < n && is_name_start src.[j + 1]
    then go (j + 1)
    else j
  in
  let stop = go i in
  (String.sub src i (stop - i), stop)

let scan_token t =
  skip_ws t;
  let i = t.cur in
  let src = t.source in
  let n = String.length src in
  if i >= n then (EOF, i)
  else
    match src.[i] with
    | '(' -> (LPAREN, i + 1)
    | ')' -> (RPAREN, i + 1)
    | '{' -> (LBRACE, i + 1)
    | '}' -> (RBRACE, i + 1)
    | '[' -> (LBRACKET, i + 1)
    | ']' -> (RBRACKET, i + 1)
    | ',' -> (COMMA, i + 1)
    | ';' -> (SEMI, i + 1)
    | '/' -> if at t (i + 1) = '/' then (DSLASH, i + 2) else (SLASH, i + 1)
    | '@' -> (AT, i + 1)
    | '*' -> (STAR, i + 1)
    | '+' -> (PLUS, i + 1)
    | '-' -> (MINUS, i + 1)
    | ':' -> if at t (i + 1) = '=' then (ASSIGN, i + 2) else error t "unexpected ':'"
    | '=' -> (EQ, i + 1)
    | '!' -> if at t (i + 1) = '=' then (NEQ, i + 2) else error t "expected '!='"
    | '<' -> if at t (i + 1) = '=' then (LE, i + 2) else (LT, i + 1)
    | '>' -> if at t (i + 1) = '=' then (GE, i + 2) else (GT, i + 1)
    | '$' ->
      let name, stop = scan_name src (i + 1) in
      if name = "" then error t "expected a variable name after '$'" else (VAR name, stop)
    | ('"' | '\'') as q ->
      let rec find j =
        if j >= n then error t "unterminated string literal"
        else if src.[j] = q then j
        else find (j + 1)
      in
      let stop = find (i + 1) in
      (STR (String.sub src (i + 1) (stop - i - 1)), stop + 1)
    | '.' ->
      if is_digit (at t (i + 1)) then begin
        let rec go j = if is_digit (at t j) then go (j + 1) else j in
        let stop = go (i + 1) in
        (NUM (float_of_string (String.sub src i (stop - i))), stop)
      end
      else (DOT, i + 1)
    | c when is_digit c ->
      let rec go j = if is_digit (at t j) then go (j + 1) else j in
      let stop = go i in
      let stop = if at t stop = '.' && is_digit (at t (stop + 1)) then go (stop + 1) else stop in
      (NUM (float_of_string (String.sub src i (stop - i))), stop)
    | c when is_name_start c ->
      let name, stop = scan_name src i in
      (NAME name, stop)
    | c -> error t (Printf.sprintf "unexpected character %C" c)

let peek t =
  match t.cached with
  | Some (tok, _) -> tok
  | None ->
    let save = t.cur in
    let tok, stop = scan_token t in
    t.cur <- save;
    t.cached <- Some (tok, stop);
    tok

let advance t =
  match t.cached with
  | Some (_, stop) ->
    t.cur <- stop;
    t.cached <- None
  | None ->
    let _, stop = scan_token t in
    t.cur <- stop;
    t.cached <- None

let next t =
  let tok = peek t in
  advance t;
  tok

let token_to_string = function
  | EOF -> "<eof>"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | SLASH -> "/"
  | DSLASH -> "//"
  | AT -> "@"
  | DOT -> "."
  | STAR -> "*"
  | ASSIGN -> ":="
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | VAR v -> "$" ^ v
  | NAME n -> n
  | STR s -> Printf.sprintf "%S" s
  | NUM f -> string_of_float f
