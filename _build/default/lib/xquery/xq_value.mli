open Xut_xml

(** Values of the engine: flat sequences of items. *)

type item =
  | N of Node.t                 (** a node (element, text, comment, PI) *)
  | D of Node.element           (** a document node, holding its element *)
  | A of string * string        (** an attribute: name, value *)
  | S of string
  | F of float
  | B of bool

type t = item list

exception Type_error of string

val of_bool : bool -> t
val of_string : string -> t

val ebv : t -> bool
(** Effective boolean value: empty is false, a leading node is true,
    a single atomic decides by its content.
    @raise Type_error for sequences of several atomics. *)

val atomize_item : item -> item
(** Nodes become their string value (direct-text concatenation for
    elements, see DESIGN.md), attributes their value. *)

val string_of_item : item -> string

val as_float : item -> float option
(** Numeric value of an atomic item ([None] for non-numbers; nodes must
    be atomized first). *)

val compare_items : Xq_ast.cmp -> item -> item -> bool
(** Atomized comparison: numeric when both sides look numeric, string
    otherwise. *)

val general_cmp : Xq_ast.cmp -> t -> t -> bool
(** XQuery general comparison: existential over both operands. *)

val item_identity : item -> item -> bool
(** The [is] operator: element ids for elements, physical equality for
    other nodes.
    @raise Type_error on non-node items. *)

val pp : Format.formatter -> t -> unit
