(** Parser for the XQuery subset (grammar in {!Xq_ast}).

    Direct XML constructors and path expressions are parsed by dropping
    from the token stream to raw scanning: paths are carved out as
    substrings (bracket- and quote-aware) and delegated to the X parser. *)

exception Parse_error of string

val parse : string -> Xq_ast.program
val parse_expr : string -> Xq_ast.expr
