(** DOM construction: build {!Node} trees from text or from SAX events. *)

exception No_document_element

val parse_string : ?keep_ws:bool -> string -> Node.element
(** Parse a document and return its document element.
    @raise Sax.Parse_error on malformed input.
    @raise No_document_element if the input holds no element. *)

val parse_file : ?keep_ws:bool -> string -> Node.element

(** Incremental tree builder, usable as a SAX event sink.  Feeding a full
    document's events and calling {!result} yields the document element. *)
module Builder : sig
  type t

  val create : unit -> t
  val handle : t -> Sax.event -> unit
  val result : t -> Node.element

  val handler : t -> Sax.event -> unit
  (** [handler b] is [handle b], convenient for partial application. *)
end
