lib/xml/serialize.mli: Buffer Node Sax
