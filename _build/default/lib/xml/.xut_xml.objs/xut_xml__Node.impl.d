lib/xml/node.ml: Buffer Format List Stdlib String
