lib/xml/dom.ml: List Node Sax
