lib/xml/dom.mli: Node Sax
