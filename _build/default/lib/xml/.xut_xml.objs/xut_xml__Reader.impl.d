lib/xml/reader.ml: Bytes String
