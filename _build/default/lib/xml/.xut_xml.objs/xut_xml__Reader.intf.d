lib/xml/reader.mli:
