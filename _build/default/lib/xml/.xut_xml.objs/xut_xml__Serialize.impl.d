lib/xml/serialize.ml: Buffer List Node Option Sax String
