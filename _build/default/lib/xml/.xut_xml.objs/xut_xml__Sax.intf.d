lib/xml/sax.mli: Format Node Reader
