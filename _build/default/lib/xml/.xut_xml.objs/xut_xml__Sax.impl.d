lib/xml/sax.ml: Buffer Char Format Fun List Node Printf Reader String
