let add_escaped buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf ~attr:true s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      add_escaped buf ~attr:true v;
      Buffer.add_char buf '"')
    attrs

let has_text_child e =
  List.exists (function Node.Text _ -> true | _ -> false) (Node.children e)

let rec add_node buf ~indent ~level node =
  match node with
  | Node.Text s -> add_escaped buf ~attr:false s
  | Node.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Node.Pi (t, c) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf t;
    Buffer.add_char buf ' ';
    Buffer.add_string buf c;
    Buffer.add_string buf "?>"
  | Node.Element e ->
    Buffer.add_char buf '<';
    Buffer.add_string buf (Node.name e);
    add_attrs buf (Node.attrs e);
    (match Node.children e with
    | [] -> Buffer.add_string buf "/>"
    | cs ->
      Buffer.add_char buf '>';
      let inline =
        match indent with None -> true | Some _ -> has_text_child e
      in
      if inline then List.iter (add_node buf ~indent:None ~level:0) cs
      else begin
        let n = Option.get indent in
        List.iter
          (fun c ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make ((level + 1) * n) ' ');
            add_node buf ~indent ~level:(level + 1) c)
          cs;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (level * n) ' ')
      end;
      Buffer.add_string buf "</";
      Buffer.add_string buf (Node.name e);
      Buffer.add_char buf '>')

let to_buffer ?indent buf node = add_node buf ~indent ~level:0 node

let to_string ?indent node =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf node;
  Buffer.contents buf

let element_to_string ?indent e = to_string ?indent (Node.Element e)

let document_to_string ?indent e =
  "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" ^ element_to_string ?indent e

let to_channel ?indent oc e =
  let buf = Buffer.create 65536 in
  to_buffer ?indent buf (Node.Element e);
  Buffer.output_buffer oc buf

let add_event buf = function
  | Sax.Start_document | Sax.End_document -> ()
  | Sax.Start_element (name, attrs) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    add_attrs buf attrs;
    Buffer.add_char buf '>'
  | Sax.Characters s -> add_escaped buf ~attr:false s
  | Sax.Comment_event s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Sax.Pi_event (t, c) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf t;
    Buffer.add_char buf ' ';
    Buffer.add_string buf c;
    Buffer.add_string buf "?>"
  | Sax.End_element name ->
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'

let event_sink buf event = add_event buf event

let channel_event_sink oc =
  let buf = Buffer.create 65536 in
  fun event ->
    add_event buf event;
    if Buffer.length buf > 32768 || event = Sax.End_document then begin
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
