(** SAX-style streaming XML parsing (Section 6 substrate).

    The parser reads a document from a string or input channel and pushes
    the five event kinds of the paper to a handler, in document order.
    It handles prologs, comments, processing instructions, CDATA sections,
    DOCTYPE declarations (skipped), the five predefined entities and
    numeric character references, and both attribute quote styles.

    Whitespace-only text between elements is dropped unless [keep_ws] is
    set: the XMark-style data handled here is data-oriented, and dropping
    it makes serialize/parse roundtrips exact. *)

type event =
  | Start_document
  | Start_element of string * (string * string) list  (** name, attributes *)
  | Characters of string
  | Comment_event of string
  | Pi_event of string * string
  | End_element of string
  | End_document

exception Parse_error of { line : int; col : int; msg : string }

val pp_event : Format.formatter -> event -> unit
val equal_event : event -> event -> bool

val parse_string : ?keep_ws:bool -> string -> (event -> unit) -> unit
(** [parse_string s handler] pushes every event of the document [s].
    @raise Parse_error on malformed input. *)

val parse_reader : ?keep_ws:bool -> Reader.t -> (event -> unit) -> unit
(** Parse from a chunked {!Reader}: memory use is O(chunk + current
    token), independent of document size. *)

val parse_channel : ?keep_ws:bool -> in_channel -> (event -> unit) -> unit
(** Streamed: the channel is consumed chunk by chunk, never held in
    memory — a transform query over a multi-GB file runs in the
    working set Section 6 promises (stack depth + truth list). *)

val parse_file : ?keep_ws:bool -> string -> (event -> unit) -> unit

val events_of_tree : Node.element -> (event -> unit) -> unit
(** Replay a DOM tree as a SAX event stream (used to run the streaming
    algorithms on in-memory documents without re-serializing). *)
