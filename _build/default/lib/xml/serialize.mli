(** XML serialization. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, less-than and double-quote for attribute values. *)

val to_buffer : ?indent:int -> Buffer.t -> Node.t -> unit
(** Append the serialization of the node.  With [indent], children are
    placed on their own lines indented by [indent] spaces per level
    (mixed content is kept inline). *)

val to_string : ?indent:int -> Node.t -> string

val element_to_string : ?indent:int -> Node.element -> string

val document_to_string : ?indent:int -> Node.element -> string
(** Like {!element_to_string}, preceded by an XML declaration. *)

val to_channel : ?indent:int -> out_channel -> Node.element -> unit

(** {2 Streaming sink}

    An event handler that serializes a SAX stream as it arrives; the
    output of the streaming transform algorithm (Section 6) is exposed
    this way so results never need to be materialized as trees. *)

val event_sink : Buffer.t -> Sax.event -> unit

val channel_event_sink : out_channel -> Sax.event -> unit
