(** Chunked character input for the streaming parser.

    A reader pulls fixed-size chunks from its source on demand, so
    parsing a document keeps O(chunk + current token) bytes in memory —
    the property the Section 6 algorithm's working-set claim rests on.
    One character of pushback ({!unread}) is available, which is all the
    XML grammar needs. *)

type t

val of_string : string -> t
val of_channel : ?chunk_size:int -> in_channel -> t

val peek : t -> char
(** The next character, ['\000'] at end of input (NUL bytes in the
    input are rejected by the parser anyway). *)

val advance : t -> unit
val next : t -> char

val eof : t -> bool

val line : t -> int
val col : t -> int

val bytes_read : t -> int
(** Total characters consumed so far. *)
