type t = {
  refill : bytes -> int;  (* fill the buffer, return the byte count; 0 = eof *)
  buf : bytes;
  mutable len : int;   (* valid bytes in [buf] *)
  mutable pos : int;   (* cursor within [buf] *)
  mutable finished : bool;
  mutable line : int;
  mutable bol_consumed : int;  (* consumed count at the beginning of the line *)
  mutable consumed : int;      (* total characters consumed *)
}

let default_chunk = 65536

let make refill chunk_size =
  {
    refill;
    buf = Bytes.create chunk_size;
    len = 0;
    pos = 0;
    finished = false;
    line = 1;
    bol_consumed = 0;
    consumed = 0;
  }

let of_string s =
  let offset = ref 0 in
  let refill buf =
    let n = min (String.length s - !offset) (Bytes.length buf) in
    Bytes.blit_string s !offset buf 0 n;
    offset := !offset + n;
    n
  in
  make refill (min default_chunk (max 16 (String.length s)))

let of_channel ?(chunk_size = default_chunk) ic =
  make (fun buf -> input ic buf 0 (Bytes.length buf)) chunk_size

let fill t =
  if (not t.finished) && t.pos >= t.len then begin
    let n = t.refill t.buf in
    t.len <- n;
    t.pos <- 0;
    if n = 0 then t.finished <- true
  end

let peek t =
  fill t;
  if t.pos < t.len then Bytes.get t.buf t.pos else '\000'

let eof t =
  fill t;
  t.pos >= t.len

let advance t =
  fill t;
  if t.pos < t.len then begin
    (if Bytes.get t.buf t.pos = '\n' then begin
       t.line <- t.line + 1;
       t.bol_consumed <- t.consumed + 1
     end);
    t.pos <- t.pos + 1;
    t.consumed <- t.consumed + 1
  end

let next t =
  let c = peek t in
  advance t;
  c

let line t = t.line
let col t = t.consumed - t.bol_consumed + 1
let bytes_read t = t.consumed
