exception No_document_element

module Builder = struct
  (* Stack of open elements, children accumulated in reverse. *)
  type frame = { name : string; attrs : (string * string) list; mutable rev_children : Node.t list }

  type t = { mutable stack : frame list; mutable root : Node.element option }

  let create () = { stack = []; root = None }

  let add_child b node =
    match b.stack with
    | top :: _ -> top.rev_children <- node :: top.rev_children
    | [] -> (
      (* comments/PIs outside the document element are dropped *)
      match node with
      | Node.Element e -> b.root <- Some e
      | Node.Text _ | Node.Comment _ | Node.Pi _ -> ())

  let handle b = function
    | Sax.Start_document | Sax.End_document -> ()
    | Sax.Start_element (name, attrs) ->
      b.stack <- { name; attrs; rev_children = [] } :: b.stack
    | Sax.Characters s -> add_child b (Node.Text s)
    | Sax.Comment_event s -> add_child b (Node.Comment s)
    | Sax.Pi_event (t, c) -> add_child b (Node.Pi (t, c))
    | Sax.End_element _ -> (
      match b.stack with
      | top :: rest ->
        b.stack <- rest;
        let e = Node.element ~attrs:top.attrs top.name (List.rev top.rev_children) in
        add_child b (Node.Element e)
      | [] -> invalid_arg "Dom.Builder: end element with empty stack")

  let result b =
    match b.root with
    | Some e when b.stack = [] -> e
    | Some _ -> invalid_arg "Dom.Builder: unclosed elements remain"
    | None -> raise No_document_element

  let handler b ev = handle b ev
end

let parse_string ?keep_ws src =
  let b = Builder.create () in
  Sax.parse_string ?keep_ws src (Builder.handler b);
  Builder.result b

let parse_file ?keep_ws path =
  let b = Builder.create () in
  Sax.parse_file ?keep_ws path (Builder.handler b);
  Builder.result b
