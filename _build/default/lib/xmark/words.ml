(* Vocabulary for generated prose, in the spirit of xmlgen's Shakespeare
   extracts: enough variety that string predicates are selective. *)

let words =
  [| "gold"; "silver"; "vintage"; "rare"; "auction"; "lot"; "item"; "fine"; "antique";
     "mint"; "condition"; "original"; "boxed"; "signed"; "limited"; "edition"; "classic";
     "collector"; "estate"; "imported"; "handmade"; "restored"; "pristine"; "certified";
     "appraised"; "catalog"; "reserve"; "bidding"; "starts"; "today"; "shipping";
     "included"; "worldwide"; "payment"; "accepted"; "creditcard"; "money"; "order";
     "cash"; "delivery"; "business"; "days"; "quality"; "guaranteed"; "authentic";
     "provenance"; "documented"; "museum"; "grade"; "exceptional" |]

let countries =
  [| "United States"; "Germany"; "France"; "Japan"; "China"; "Brazil"; "Kenya"; "Australia" |]

let cities = [| "Springfield"; "Lyon"; "Osaka"; "Nairobi"; "Recife"; "Perth"; "Hamburg" |]

let first_names = [| "Alice"; "Bob"; "Chen"; "Dora"; "Emil"; "Fatima"; "Goro"; "Hana"; "Ivan"; "Jo" |]

let last_names =
  [| "Smith"; "Muller"; "Tanaka"; "Okafor"; "Silva"; "Ivanov"; "Dupont"; "Wang"; "Brown"; "Kim" |]

let payment_kinds = [| "Creditcard"; "Cash"; "Money order"; "Personal Check" |]

let auction_types = [| "Regular"; "Featured"; "Dutch" |]

let sentence rng n =
  let buf = Buffer.create (n * 8) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Prng.choose rng words)
  done;
  Buffer.contents buf
