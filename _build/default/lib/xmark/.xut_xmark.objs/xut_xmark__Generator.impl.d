lib/xmark/generator.ml: Array Buffer Float List Node Out_channel Printf Prng Serialize String Words Xut_xml
