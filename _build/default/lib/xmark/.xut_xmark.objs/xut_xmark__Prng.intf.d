lib/xmark/prng.mli:
