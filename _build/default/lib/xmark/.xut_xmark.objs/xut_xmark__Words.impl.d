lib/xmark/words.ml: Buffer Prng
