lib/xmark/generator.mli: Node Xut_xml
