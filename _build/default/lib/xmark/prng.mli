(** Deterministic pseudo-random numbers (SplitMix64).

    The generator is seeded explicitly so that every benchmark run and
    every test sees the same documents; OCaml's [Random] is avoided to
    keep document content independent of stdlib versions. *)

type t

val create : int64 -> t
val next : t -> int64
val int : t -> int -> int
(** [int t n] in [0, n). *)

val float : t -> float -> float
(** [float t x] in [0, x). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
val split : t -> t
(** An independent generator (for stable sub-streams). *)
