(* The benchmark workloads of Section 7: the ten embedded XPath
   expressions of Fig. 11 and the composition pairs of Section 7.2. *)
open Core

type u = { name : string; path : string }

(* Fig. 11, verbatim (modulo quoting). *)
let u1 = { name = "U1"; path = "/site/people/person" }
let u2 = { name = "U2"; path = "/site/people/person[@id = \"person10\"]" }
let u3 = { name = "U3"; path = "/site/people/person[profile/age > 20]" }
let u4 = { name = "U4"; path = "/site/regions//item" }
let u5 = { name = "U5"; path = "/site//description" }

let u6 =
  { name = "U6";
    path =
      "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword"
  }

let u7 =
  { name = "U7";
    path =
      "/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text"
  }

let u8 =
  { name = "U8";
    path = "/site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder" }

let u9 = { name = "U9"; path = "/site/regions//item[location = \"United States\"]" }

let u10 =
  { name = "U10";
    path =
      "/site//open_auctions/open_auction[not(@id = \"open_auction2\")]/bidder[increase > 10]"
  }

let all = [ u1; u2; u3; u4; u5; u6; u7; u8; u9; u10 ]

let new_elem = Xut_xml.Node.elem "new_elem" [ Xut_xml.Node.text "text" ]

let parse_path s = Xut_xpath.Parser.parse s

(* The reported experiments use insert transform queries ("transform
   queries of the other types consistently yield qualitatively similar
   results"); the harness can run any kind. *)
let insert_of u = Transform_ast.Insert (parse_path u.path, new_elem)
let delete_of u = Transform_ast.Delete (parse_path u.path)
let replace_of u = Transform_ast.Replace (parse_path u.path, new_elem)
let rename_of u = Transform_ast.Rename (parse_path u.path, "renamed")

let update_of kind u =
  match kind with
  | `Insert -> insert_of u
  | `Delete -> delete_of u
  | `Replace -> replace_of u
  | `Rename -> rename_of u

let user_query_of u = User_query.parse (Printf.sprintf "for $x in %s return $x" u.path)

(* Section 7.2: pairs (transform, user); U1, U9 insert; U9, U8 delete. *)
let composition_pairs =
  [ ("(U1,U2)", insert_of u1, user_query_of u2);
    ("(U9,U1)", insert_of u9, user_query_of u1);
    ("(U9,U4)", delete_of u9, user_query_of u4);
    ("(U8,U10)", delete_of u8, user_query_of u10) ]

(* --- document cache ----------------------------------------------------- *)

let data_dir =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "xut_bench" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let doc_file ~factor =
  let path = Filename.concat data_dir (Printf.sprintf "xmark_%g.xml" factor) in
  if not (Sys.file_exists path) then begin
    Printf.printf "  [generating XMark factor %g -> %s]\n%!" factor path;
    Xut_xmark.Generator.to_file ~factor path
  end;
  path

let file_size_mb path = float_of_int (Unix.stat path).Unix.st_size /. 1048576.0

(* --- one end-to-end engine run ------------------------------------------ *)

(* Every engine does the same end-to-end work: read the document from
   disk, evaluate the transform query, serialize the result.  The DOM
   engines parse once into a tree; twoPassSAX parses twice and never
   builds one. *)
let run_once algo ~file update =
  match algo with
  | Engine.Two_pass_sax ->
    let out = Buffer.create (1 lsl 20) in
    ignore (Sax_transform.transform_file update ~src:file ~out)
  | _ ->
    let doc = Xut_xml.Dom.parse_file file in
    let result = Engine.transform algo update doc in
    let out = Buffer.create (1 lsl 20) in
    Xut_xml.Serialize.to_buffer out (Xut_xml.Node.Element result)
