(* Fig. 14: the SAX-based two-pass algorithm on large documents, with
   the memory-consumption proxies of Section 6 (stack depth bounded by
   document depth, truth-list size). *)
open Core

let queries = Workloads.[ u2; u4; u7; u10 ]

let run ~factors ~kind =
  Printf.printf "\n== Fig. 14: twoPassSAX on large files (factors %s) ==\n%!"
    (String.concat ", " (List.map (Printf.sprintf "%g") factors));
  let files = List.map (fun f -> (f, Workloads.doc_file ~factor:f)) factors in
  let header = "size" :: List.concat_map (fun u -> [ u.Workloads.name ]) queries in
  let rows =
    List.map
      (fun (factor, file) ->
        let label = Printf.sprintf "%.0fMB (f=%g)" (Workloads.file_size_mb file) factor in
        let cells =
          List.map
            (fun u ->
              let update = Workloads.update_of kind u in
              let out = Buffer.create (1 lsl 20) in
              let t0 = Unix.gettimeofday () in
              let _stats = Sax_transform.transform_file update ~src:file ~out in
              let t = Unix.gettimeofday () -. t0 in
              Timing.fmt_time t)
            queries
        in
        Printf.printf "  f=%g done\n%!" factor;
        label :: cells)
      files
  in
  Timing.print_table ~title:"Fig. 14 — twoPassSAX runtime" ~header rows;
  (* memory proxies on the largest file *)
  match List.rev files with
  | (factor, file) :: _ ->
    let header = [ "query"; "stack peak"; "Ld entries"; "elements" ] in
    let rows =
      List.map
        (fun u ->
          let update = Workloads.update_of kind u in
          let out = Buffer.create (1 lsl 20) in
          let s = Sax_transform.transform_file update ~src:file ~out in
          [ u.Workloads.name;
            string_of_int s.Sax_transform.max_stack_depth;
            string_of_int s.Sax_transform.truth_entries;
            string_of_int s.Sax_transform.elements_seen ])
        queries
    in
    Timing.print_table
      ~title:
        (Printf.sprintf
           "Fig. 14 (memory) — twoPassSAX working set at f=%g: the stack is bounded by document depth"
           factor)
      ~header rows
  | [] -> ()
