(* Fig. 15(a–d): composition of user and transform queries — the Compose
   Method against the Naive Composition method, over file sizes. *)
open Core

let run ~factors ~reps =
  Printf.printf "\n== Fig. 15: composition, Compose vs Naive Composition ==\n%!";
  let files = List.map (fun f -> (f, Workloads.doc_file ~factor:f)) factors in
  List.iteri
    (fun i (pair_name, update, uq) ->
      (match Composition.compose update uq with
      | Ok _ -> ()
      | Error m -> failwith ("pair " ^ pair_name ^ " did not compose: " ^ m));
      (* compose inside the measurement: the composed query memoizes
         transformed subtrees, so each run gets a fresh instance (and the
         compile time, which is static analysis, is honestly charged) *)
      let run_compose doc () =
        match Composition.compose update uq with
        | Ok c -> Composition.run_composed c ~doc
        | Error _ -> assert false
      in
      let header = [ "size"; "Naive Composition"; "Compose" ] in
      let rows =
        List.map
          (fun (factor, file) ->
            let label = Printf.sprintf "%.1fMB (f=%g)" (Workloads.file_size_mb file) factor in
            (* both methods run on a loaded store, like the paper's setup *)
            let doc = Xut_xml.Dom.parse_file file in
            let t_naive =
              Timing.measure ~reps (fun () -> Composition.naive update uq ~doc)
            in
            let t_compose = Timing.measure ~reps (run_compose doc) in
            Printf.printf "  %s f=%g done\n%!" pair_name factor;
            [ label; Timing.fmt_time t_naive; Timing.fmt_time t_compose ])
          files
      in
      Timing.print_table
        ~title:(Printf.sprintf "Fig. 15(%c) — pair %s" (Char.chr (Char.code 'a' + i)) pair_name)
        ~header rows)
    Workloads.composition_pairs
