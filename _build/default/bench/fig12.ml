(* Fig. 12: execution time of the five methods for U1–U10 on one
   document (the paper used the 2.22 MB XMark file). *)
open Core

let engines = Engine.[ Galax_update; Naive; Td_bu; Gentop; Two_pass_sax ]

let run ~factor ~reps ~kind =
  let file = Workloads.doc_file ~factor in
  Printf.printf "\n== Fig. 12: transform-query evaluation, %s updates, %.2f MB document ==\n%!"
    (match kind with `Insert -> "insert" | `Delete -> "delete" | `Replace -> "replace" | `Rename -> "rename")
    (Workloads.file_size_mb file);
  let header = "query" :: List.map Engine.name engines in
  let rows =
    List.map
      (fun u ->
        let update = Workloads.update_of kind u in
        let cells =
          List.map
            (fun algo ->
              let t = Timing.measure ~reps (fun () -> Workloads.run_once algo ~file update) in
              Timing.fmt_time t)
            engines
        in
        Printf.printf "  %s done\n%!" u.Workloads.name;
        u.Workloads.name :: cells)
      Workloads.all
  in
  Timing.print_table ~title:"Fig. 12 — runtime per engine (median of reps)" ~header rows
