(* Fig. 13(a–d): scalability with file size for U2, U4, U7, U10. *)
open Core

let engines = Engine.[ Galax_update; Naive; Td_bu; Gentop; Two_pass_sax ]

let queries = Workloads.[ u2; u4; u7; u10 ]

let run ~factors ~reps ~kind =
  Printf.printf "\n== Fig. 13: scalability with file size (factors %s) ==\n%!"
    (String.concat ", " (List.map (Printf.sprintf "%g") factors));
  (* materialize all files first so generation is not timed *)
  let files = List.map (fun f -> (f, Workloads.doc_file ~factor:f)) factors in
  List.iteri
    (fun i u ->
      let update = Workloads.update_of kind u in
      let header = "size" :: List.map Engine.name engines in
      let rows =
        List.map
          (fun (factor, file) ->
            let label = Printf.sprintf "%.1fMB (f=%g)" (Workloads.file_size_mb file) factor in
            let cells =
              List.map
                (fun algo ->
                  let t = Timing.measure ~reps (fun () -> Workloads.run_once algo ~file update) in
                  Timing.fmt_time t)
                engines
            in
            Printf.printf "  %s f=%g done\n%!" u.Workloads.name factor;
            label :: cells)
          files
      in
      Timing.print_table
        ~title:(Printf.sprintf "Fig. 13(%c) — %s" (Char.chr (Char.code 'a' + i)) u.Workloads.name)
        ~header rows)
    queries
