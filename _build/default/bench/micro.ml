(* Bechamel microbenches for the building blocks: NFA construction,
   nextStates transitions, QualDP evaluation, SAX parsing throughput. *)
open Bechamel
open Toolkit

let p1 =
  "/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text"

let tests () =
  let path = Xut_xpath.Parser.parse p1 in
  let nfa = Xut_automata.Selecting_nfa.of_path path in
  let doc = Xut_xmark.Generator.generate ~factor:0.001 () in
  let doc_text = Xut_xml.Serialize.element_to_string doc in
  let start = Xut_automata.Selecting_nfa.start_set nfa in
  let labels = [| "site"; "open_auctions"; "open_auction"; "bidder"; "increase"; "x" |] in
  let b = Xut_xpath.Lq.create_builder () in
  let qi =
    Xut_xpath.Lq.add_qual b
      (Xut_xpath.Parser.parse_qual "bidder/increase > 5 and not(annotation/happiness < 20)")
  in
  let lq = Xut_xpath.Lq.freeze b in
  [ Test.make ~name:"selecting-NFA construction"
      (Staged.stage (fun () -> Xut_automata.Selecting_nfa.of_path path));
    Test.make ~name:"nextStates (6 transitions)"
      (Staged.stage (fun () ->
           Array.fold_left
             (fun s l ->
               Xut_automata.Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s l)
             start labels));
    Test.make ~name:"QualDP at one node"
      (Staged.stage (fun () ->
           Xut_xpath.Lq.eval_at lq ~name:"open_auction" ~attrs:[ ("id", "x") ] ~text:"12"
             ~csat:(fun _ -> false) ~wanted:[ qi ]));
    Test.make ~name:"SAX parse (50 KB doc)"
      (Staged.stage (fun () -> Xut_xml.Sax.parse_string doc_text (fun _ -> ())));
    Test.make ~name:"DOM parse (50 KB doc)"
      (Staged.stage (fun () -> Xut_xml.Dom.parse_string doc_text)) ]

let run () =
  print_endline "\n== Microbenchmarks (bechamel) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        analyzed)
    (tests ())
