bench/fig13.ml: Char Core Engine List Printf String Timing Workloads
