bench/timing.ml: Filename List Out_channel Printf String Sys Unix
