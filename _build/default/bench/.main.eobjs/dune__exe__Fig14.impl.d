bench/fig14.ml: Buffer Core List Printf Sax_transform String Timing Unix Workloads
