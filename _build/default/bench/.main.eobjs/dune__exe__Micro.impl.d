bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Printf Staged Test Time Toolkit Xut_automata Xut_xmark Xut_xml Xut_xpath
