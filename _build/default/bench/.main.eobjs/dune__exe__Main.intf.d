bench/main.mli:
