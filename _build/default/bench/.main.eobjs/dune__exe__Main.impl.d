bench/main.ml: Ablation Arg Fig12 Fig13 Fig14 Fig15 List Micro Printf Timing Unix Workloads
