bench/fig15.ml: Char Composition Core List Printf Timing Workloads Xut_xml
