bench/fig12.ml: Core Engine List Printf Timing Workloads
