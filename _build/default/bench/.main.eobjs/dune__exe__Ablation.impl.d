bench/ablation.ml: Core Engine List Printf Stats Timing Transform_ast Two_pass Workloads Xquery_compile Xquery_rewrite Xut_automata Xut_xmark Xut_xml
