bench/workloads.ml: Buffer Core Engine Filename Printf Sax_transform Sys Transform_ast Unix User_query Xut_xmark Xut_xml Xut_xpath
