(* Ablation: make the design choices DESIGN.md calls out visible.
   1. Subtree pruning/sharing in topDown (the selecting NFA's empty-set
      short-circuit) — counted with the Stats instrumentation.
   2. The filtering machinery of Section 5 — how many elements the
      bottom-up pass annotates, against the document size.
   3. GENTOP vs TD-BU on an artificially expensive qualifier — the case
      Section 5 exists for. *)
open Core

let run ~factor =
  let file = Workloads.doc_file ~factor in
  let doc = Xut_xml.Dom.parse_file file in
  let total = Xut_xml.Node.element_count (Xut_xml.Node.Element doc) in
  Printf.printf "\n== Ablations (document: %d elements) ==\n" total;

  (* 1: pruning/sharing *)
  let header = [ "query"; "visited"; "copied"; "shared"; "% visited" ] in
  let rows =
    List.map
      (fun u ->
        let update = Workloads.insert_of u in
        Stats.reset ();
        ignore (Engine.transform Engine.Gentop update doc);
        let s = Stats.read () in
        [ u.Workloads.name;
          string_of_int s.Stats.visited;
          string_of_int s.Stats.copied;
          string_of_int s.Stats.shared;
          Printf.sprintf "%.1f%%" (100. *. float_of_int s.Stats.visited /. float_of_int total) ])
      Workloads.all
  in
  Timing.print_table
    ~title:"Ablation 1 — topDown pruning: elements visited vs shared whole (GENTOP)"
    ~header rows;

  (* 2: annotation pruning *)
  let header = [ "query"; "annotated"; "% of elements" ] in
  let rows =
    List.map
      (fun u ->
        let nfa = Xut_automata.Selecting_nfa.of_path (Workloads.parse_path u.Workloads.path) in
        let n = Two_pass.annotated_nodes nfa doc in
        [ u.Workloads.name; string_of_int n;
          Printf.sprintf "%.1f%%" (100. *. float_of_int n /. float_of_int total) ])
      Workloads.all
  in
  Timing.print_table
    ~title:"Ablation 2 — bottomUp filtering: elements the annotation pass touches"
    ~header rows;

  (* 3: expensive qualifiers, GENTOP's direct evaluation vs TD-BU's
     one-pass QualDP.  The '//' inside the qualifier makes the direct
     evaluator rescan subtrees at every candidate node. *)
  (* every element checks its entire subtree: direct evaluation costs
     the sum of all subtree sizes (O(n·depth)); the annotated pass is
     one bottom-up sweep *)
  let expensive =
    Transform_ast.Rename (Workloads.parse_path "//*[not(.//keyword = \"nosuch\")]", "n")
  in
  let t_gentop = Timing.measure ~reps:3 (fun () -> Engine.transform Engine.Gentop expensive doc) in
  let t_tdbu = Timing.measure ~reps:3 (fun () -> Engine.transform Engine.Td_bu expensive doc) in
  Timing.print_table
    ~title:"Ablation 3 — expensive ('//'-heavy) qualifiers: direct evaluation vs QualDP annotations"
    ~header:[ "engine"; "time" ]
    [ [ "GENTOP (direct checkp)"; Timing.fmt_time t_gentop ];
      [ "TD-BU (annotated checkp)"; Timing.fmt_time t_tdbu ] ];

  (* 4: the paper's actual Fig. 12 configuration — both methods running
     AS XQUERY on the host engine.  The Fig. 2 rewriting pays the
     quadratic membership scan; the compiled automaton does not. *)
  let small_doc =
    if Xut_xml.Node.element_count (Xut_xml.Node.Element doc) > 20000 then
      Xut_xmark.Generator.generate ~factor:0.01 ()
    else doc
  in
  let rows =
    List.map
      (fun u ->
        let q = Transform_ast.make ~doc:"d" (Workloads.insert_of u) in
        let t_naive = Timing.measure ~reps:2 (fun () -> Xquery_rewrite.run q ~doc:small_doc) in
        let t_comp = Timing.measure ~reps:2 (fun () -> Xquery_compile.run q ~doc:small_doc) in
        let t_tdbu = Timing.measure ~reps:2 (fun () -> Xquery_compile.run_tdbu q ~doc:small_doc) in
        [ u.Workloads.name; Timing.fmt_time t_naive; Timing.fmt_time t_comp;
          Timing.fmt_time t_tdbu ])
      Workloads.[ u1; u2; u5; u7 ]
  in
  Timing.print_table
    ~title:
      "Ablation 4 — on the XQuery engine itself (the paper's setting): all three methods as XQuery"
    ~header:[ "query"; "NAIVE (Fig. 2)"; "GENTOP (compiled)"; "TD-BU (compiled)" ]
    rows
