(* Wall-clock measurement and table rendering for the figure benches. *)

let measure ?(reps = 3) f =
  let times =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        Unix.gettimeofday () -. t0)
  in
  let sorted = List.sort compare times in
  List.nth sorted (reps / 2)

(* Optional CSV mirror of every printed table (bench --csv DIR). *)
let csv_hook : (title:string -> header:string list -> string list list -> unit) ref =
  ref (fun ~title:_ ~header:_ _ -> ())

let write_csv_hook ~title ~header rows = !csv_hook ~title ~header rows

(* A plain text table: header row then data rows; first column
   left-aligned, the rest right-aligned. *)
let print_table ~title ~header rows =
  Printf.printf "\n%s\n" title;
  write_csv_hook ~title ~header rows;
  let all_rows = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all_rows
  in
  let widths = List.init ncols width in
  let sep = "  " in
  List.iteri
    (fun r row ->
      List.iteri
        (fun c cell ->
          let w = List.nth widths c in
          if c = 0 then Printf.printf "%-*s%s" w cell sep
          else Printf.printf "%*s%s" w cell sep)
        row;
      print_newline ();
      if r = 0 then begin
        List.iter (fun w -> Printf.printf "%s%s" (String.make w '-') sep) widths;
        print_newline ()
      end)
    all_rows

let fmt_time t = if t < 0.0005 then Printf.sprintf "%.2fms" (t *. 1000.) else Printf.sprintf "%.3fs" t

(* Optional CSV mirror of every printed table (bench --csv DIR). *)
let csv_dir : string option ref = ref None

let set_csv_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  csv_dir := Some dir

let sanitize title =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c
      else '_')
    title

let () =
  csv_hook :=
    fun ~title ~header rows ->
      match !csv_dir with
      | None -> ()
      | Some dir ->
        let path = Filename.concat dir (sanitize title ^ ".csv") in
        Out_channel.with_open_text path (fun oc ->
            List.iter
              (fun row -> output_string oc (String.concat "," row ^ "\n"))
              (header :: rows));
        Printf.printf "  [csv: %s]\n" path
