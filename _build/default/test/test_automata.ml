open Xut_xpath
open Xut_automata

let nfa_of s = Selecting_nfa.of_path (Parser.parse s)

(* Nodes selected via the NFA during a top-down walk must equal the direct
   evaluator's answer. *)
let nfa_select ?(checkp = `Direct) nfa root =
  let cp =
    match checkp with
    | `Direct -> fun s n -> Eval.check_qual n (Selecting_nfa.state_qual nfa s)
    | `Annotated ->
      let tbl = Annotator.annotate nfa root in
      Annotator.checkp tbl nfa
  in
  let acc = ref [] in
  let rec go e states =
    let states' =
      Selecting_nfa.next_states nfa ~checkp:(fun s -> cp s e) states (Xut_xml.Node.name e)
    in
    if states' <> [] then begin
      if Selecting_nfa.accepts nfa states' then acc := e :: !acc;
      List.iter (fun c -> go c states') (Xut_xml.Node.child_elements e)
    end
  in
  go root (Selecting_nfa.start_set nfa);
  List.rev !acc

let queries =
  [ "db/part"; "db/part/pname"; "//part"; "//supplier"; "db//part"; "//part//supplier";
    "db/*/supplier"; "db/part[pname = \"keyboard\"]"; "//part[supplier/price < 5]";
    "//part[not(supplier/country = \"A\")]"; Fixtures.p1_text;
    "//part[supplier/sname = \"HP\" or supplier/sname = \"Acme\"]"; "db/nothing";
    "//part[pname = \"keyboard\"]//part"; "//supplier[country = \"A\"]/price";
    "db/part/part/part"; "//part[label() = \"part\"]"; "//*[sname = \"Tiny\"]" ]

let ids es = List.map Xut_xml.Node.id es

let test_nfa_matches_eval () =
  let root = Fixtures.parts_doc () in
  List.iter
    (fun q ->
      let nfa = nfa_of q in
      let expected = ids (Eval.select_doc root (Parser.parse q)) in
      let got = ids (nfa_select nfa root) in
      Alcotest.(check (list int)) ("NFA = eval for " ^ q) expected got)
    queries

let test_nfa_annotated_matches_eval () =
  let root = Fixtures.parts_doc () in
  List.iter
    (fun q ->
      let nfa = nfa_of q in
      let expected = ids (Eval.select_doc root (Parser.parse q)) in
      let got = ids (nfa_select ~checkp:`Annotated nfa root) in
      Alcotest.(check (list int)) ("annotated NFA = eval for " ^ q) expected got)
    queries

let test_structure_example_3_1 () =
  (* Fig. 5: start, desc, part[q1], desc, part[q2] -> 5 states. *)
  let nfa = nfa_of Fixtures.p1_text in
  Alcotest.(check int) "five states" 5 (Selecting_nfa.size nfa);
  Alcotest.(check bool) "s1 is //" true (Selecting_nfa.kind nfa 1 = Selecting_nfa.K_desc);
  Alcotest.(check bool) "s2 is part" true (Selecting_nfa.kind nfa 2 = Selecting_nfa.K_label "part");
  Alcotest.(check bool) "s2 has qualifier" true (Selecting_nfa.has_qual nfa 2);
  Alcotest.(check bool) "s3 is //" true (Selecting_nfa.kind nfa 3 = Selecting_nfa.K_desc);
  Alcotest.(check int) "final" 4 (Selecting_nfa.final nfa);
  (* the epsilon-closure of the start state contains the first // state *)
  Alcotest.(check (list int)) "start closure" [ 0; 1 ] (Selecting_nfa.start_set nfa)

let test_next_states_desc_loop () =
  let nfa = nfa_of "//part" in
  (* states: 0 start, 1 desc, 2 part *)
  let s0 = Selecting_nfa.start_set nfa in
  Alcotest.(check (list int)) "closure(start)" [ 0; 1 ] s0;
  let s1 = Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s0 "db" in
  Alcotest.(check (list int)) "after db: desc survives" [ 1 ] s1;
  let s2 = Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s1 "part" in
  Alcotest.(check (list int)) "after part: desc + final" [ 1; 2 ] s2;
  Alcotest.(check bool) "accepts" true (Selecting_nfa.accepts nfa s2)

let test_qualifier_blocks_transition () =
  let nfa = nfa_of "db/part[pname = \"keyboard\"]/supplier" in
  let s0 = Selecting_nfa.start_set nfa in
  let s1 = Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s0 "db" in
  let blocked = Selecting_nfa.next_states nfa ~checkp:(fun _ -> false) s1 "part" in
  Alcotest.(check (list int)) "qualifier false kills the state" [] blocked;
  let open_ = Selecting_nfa.next_states nfa ~checkp:(fun _ -> true) s1 "part" in
  Alcotest.(check (list int)) "qualifier true keeps it" [ 2 ] open_

let test_static_simulation () =
  (* delta' as used by the Compose Method (Example 4.2):
     Mp of //supplier[country=A]; initial {0,1}; after 'part' -> {1};
     after 'supplier' -> {1, final}. *)
  let nfa = nfa_of "//supplier[country = \"A\"]" in
  let s0 = Selecting_nfa.start_set nfa in
  let s1 = Selecting_nfa.next_on_label nfa s0 "part" in
  Alcotest.(check (list int)) "S1" [ 1 ] s1;
  let s2 = Selecting_nfa.next_on_label nfa s1 "supplier" in
  Alcotest.(check (list int)) "S2" [ 1; 2 ] s2;
  Alcotest.(check bool) "final in S2" true (Selecting_nfa.accepts nfa s2);
  (* any-label transition *)
  let any = Selecting_nfa.next_on_any nfa s0 in
  Alcotest.(check (list int)) "any from start" [ 1; 2 ] any;
  (* desc transition saturates *)
  let desc = Selecting_nfa.next_on_desc nfa [ 0 ] in
  Alcotest.(check (list int)) "desc from start" [ 0; 1; 2 ] desc

let test_empty_path () =
  let nfa = Selecting_nfa.of_path [] in
  Alcotest.(check bool) "selects context" true (Selecting_nfa.selects_context nfa);
  let nfa2 = nfa_of "db" in
  Alcotest.(check bool) "nonempty does not" false (Selecting_nfa.selects_context nfa2)

let test_annotator_prunes () =
  (* supplier//part reaches nothing from the root: the annotator must not
     visit (annotate) any node beyond pruning (Example 5.3). *)
  let root = Fixtures.parts_doc () in
  let nfa = nfa_of "supplier[country = \"A\"]//part" in
  let tbl = Annotator.annotate nfa root in
  Alcotest.(check int) "no annotations" 0 (Annotator.annotated_count tbl);
  (* and a query with qualifiers only on parts does not annotate pname etc. *)
  let nfa2 = nfa_of "db/part[pname = \"keyboard\"]" in
  let tbl2 = Annotator.annotate nfa2 root in
  Alcotest.(check bool) "annotates a strict subset" true
    (Annotator.annotated_count tbl2 > 0
    && Annotator.annotated_count tbl2 < Xut_xml.Node.element_count (Xut_xml.Node.Element root))

let test_nfa_construction_linear () =
  let nfa = nfa_of "a/b/c/d/e/f/g/h" in
  Alcotest.(check int) "9 states for 8 steps" 9 (Selecting_nfa.size nfa)

let suite =
  [ Alcotest.test_case "NFA select = direct eval" `Quick test_nfa_matches_eval;
    Alcotest.test_case "annotated NFA select = direct eval" `Quick test_nfa_annotated_matches_eval;
    Alcotest.test_case "structure of Fig. 5" `Quick test_structure_example_3_1;
    Alcotest.test_case "descendant self-loop" `Quick test_next_states_desc_loop;
    Alcotest.test_case "qualifier blocks transition" `Quick test_qualifier_blocks_transition;
    Alcotest.test_case "static delta' (compose)" `Quick test_static_simulation;
    Alcotest.test_case "empty path" `Quick test_empty_path;
    Alcotest.test_case "annotator pruning" `Quick test_annotator_prunes;
    Alcotest.test_case "construction size" `Quick test_nfa_construction_linear ]
