(* Edge cases across the engines: nested matches, updates interacting
   with their own targets, qualifier corner cases, failure injection. *)
open Xut_xml
open Core

let parse_path = Xut_xpath.Parser.parse

let engines = Engine.[ Naive; Gentop; Td_bu; Two_pass_sax; Galax_update ]

let check_all ?doc name update =
  let root = match doc with Some d -> d | None -> Fixtures.parts_doc () in
  let expected = Engine.transform Engine.Reference update root in
  List.iter
    (fun algo ->
      Alcotest.(check bool)
        (Printf.sprintf "%s / %s" name (Engine.name algo))
        true
        (Node.equal_element expected (Engine.transform algo update root)))
    engines;
  expected

let test_nested_delete () =
  (* //part matches parts nested inside parts: deleting the outer one
     removes the inner match too *)
  let out = check_all "nested delete" (Transform_ast.Delete (parse_path "//part")) in
  Alcotest.(check int) "all parts gone" 0
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//part")))

let test_nested_rename () =
  let out = check_all "nested rename" (Transform_ast.Rename (parse_path "//part", "component")) in
  Alcotest.(check int) "all 5 renamed, nesting kept" 5
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//component")));
  Alcotest.(check int) "nested components remain nested" 3
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//component/component")))

let test_insert_does_not_match_itself () =
  (* inserting a <supplier> under //part must not recurse into the new
     element (the update runs against T, not against its own output) *)
  let supplier = Node.elem "part" [ Node.elem "pname" [ Node.text "new!" ] ] in
  let out =
    check_all "insert self-similar" (Transform_ast.Insert (parse_path "//part", supplier))
  in
  (* 5 original parts each got exactly one new part child *)
  Alcotest.(check int) "5 inserted" (5 + 5)
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//part[pname = \"new!\"]"))
     + List.length (Xut_xpath.Eval.select_doc out (parse_path "//part[not(pname = \"new!\")]")))

let test_replace_with_matching_element () =
  let repl = Node.elem "price" [ Node.text "0" ] in
  let out = check_all "replace with same label" (Transform_ast.Replace (parse_path "//price", repl)) in
  let prices = Xut_xpath.Eval.select_doc out (parse_path "//price") in
  Alcotest.(check int) "six zeroed prices" 6 (List.length prices);
  List.iter (fun p -> Alcotest.(check string) "zeroed" "0" (Node.text_content p)) prices

let test_wildcard_and_label_qual () =
  ignore
    (check_all "wildcard with label() qual"
       (Transform_ast.Delete (parse_path "db/*[label() = \"part\"]/supplier")))

let test_deep_qualifier_negation () =
  ignore
    (check_all "double negation"
       (Transform_ast.Delete (parse_path "//part[not(not(supplier/country = \"A\"))]")));
  ignore
    (check_all "qualifier on qualifier path"
       (Transform_ast.Delete (parse_path "//part[supplier[country = \"A\"]/price < 15]")))

let test_mixed_content_preserved () =
  let doc = Dom.parse_string "<m><p>one <em>two</em> three</p><x/></m>" in
  let out = check_all ~doc "mixed content" (Transform_ast.Delete (parse_path "m/x")) in
  match Xut_xpath.Eval.select_doc out (parse_path "m/p") with
  | [ p ] ->
    Alcotest.(check int) "3 children kept" 3 (List.length (Node.children p));
    Alcotest.(check string) "text intact" "one  three" (Node.text_content p)
  | _ -> Alcotest.fail "p lost"

let test_comments_pis_preserved () =
  let doc = Dom.parse_string "<m><!-- note --><?tgt data?><x/><y/></m>" in
  let out = check_all ~doc "comments and PIs" (Transform_ast.Delete (parse_path "m/y")) in
  match Node.children out with
  | [ Node.Comment c; Node.Pi (t, _); Node.Element _ ] ->
    Alcotest.(check string) "comment" " note " c;
    Alcotest.(check string) "pi" "tgt" t
  | _ -> Alcotest.fail "children shape changed"

let test_attributes_preserved () =
  let doc = Dom.parse_string "<m><x id=\"1\" k=\"v\"><y/></x></m>" in
  let out = check_all ~doc "attrs kept through rebuild" (Transform_ast.Delete (parse_path "m/x/y")) in
  match Xut_xpath.Eval.select_doc out (parse_path "m/x") with
  | [ x ] ->
    Alcotest.(check (option string)) "id" (Some "1") (Node.attr x "id");
    Alcotest.(check (option string)) "k" (Some "v") (Node.attr x "k")
  | _ -> Alcotest.fail "x lost"

let test_update_matching_everything () =
  (* '//' + wildcard: every element below the root is selected *)
  ignore (check_all "rename everything" (Transform_ast.Rename (parse_path "//*", "n")));
  ignore (check_all "delete everything" (Transform_ast.Delete (parse_path "db/*")))

let test_empty_document_element () =
  let doc = Dom.parse_string "<empty/>" in
  ignore (check_all ~doc "empty root, no match" (Transform_ast.Delete (parse_path "empty/x")));
  let out =
    check_all ~doc "insert into empty root"
      (Transform_ast.Insert (parse_path "empty", Node.elem "child" []))
  in
  Alcotest.(check int) "child added" 1 (List.length (Node.children out))

let test_deep_nesting_stack_safety () =
  (* 2000-deep chain: engines must not be limited by tiny stacks *)
  let rec deep n = if n = 0 then Node.text "x" else Node.elem "d" [ deep (n - 1) ] in
  let doc = Node.element "root" [ deep 2000 ] in
  let u = Transform_ast.Insert (parse_path "root//d[not(d)]", Node.elem "leaf" []) in
  let expected = Engine.transform Engine.Reference u doc in
  List.iter
    (fun algo ->
      Alcotest.(check bool)
        ("deep nesting / " ^ Engine.name algo)
        true
        (Node.equal_element expected (Engine.transform algo u doc)))
    engines

let test_two_pass_sax_rejects_ctx_quals () =
  let u = Transform_ast.Delete (parse_path ".[db]/db/part") in
  match Engine.transform Engine.Two_pass_sax u (Fixtures.parts_doc ()) with
  | exception Sax_transform.Unsupported_streaming _ -> ()
  | _ -> Alcotest.fail "streaming should reject context qualifiers"

let test_invalid_queries_rejected () =
  let fails s =
    match Transform_parser.parse s with
    | exception Transform_parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should fail: " ^ s)
  in
  fails "transform copy $a := doc(\"f\") modify do insert <a/> into $a/p";
  fails "transform copy := doc(\"f\") modify do delete $a/p return $a"

let test_truncated_file_rejected () =
  let tmp = Filename.temp_file "xut" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_bin tmp (fun oc -> output_string oc "<site><people><person id=");
      (match Dom.parse_file tmp with
      | exception Sax.Parse_error _ -> ()
      | _ -> Alcotest.fail "DOM parse should fail");
      let u = Transform_ast.Delete (parse_path "site/people") in
      match Sax_transform.transform_file u ~src:tmp ~out:(Buffer.create 16) with
      | exception Sax.Parse_error _ -> ()
      | _ -> Alcotest.fail "streaming parse should fail")

let suite =
  [ Alcotest.test_case "nested delete" `Quick test_nested_delete;
    Alcotest.test_case "nested rename" `Quick test_nested_rename;
    Alcotest.test_case "insert does not match itself" `Quick test_insert_does_not_match_itself;
    Alcotest.test_case "replace with matching label" `Quick test_replace_with_matching_element;
    Alcotest.test_case "wildcard + label() qual" `Quick test_wildcard_and_label_qual;
    Alcotest.test_case "deep qualifier nesting" `Quick test_deep_qualifier_negation;
    Alcotest.test_case "mixed content preserved" `Quick test_mixed_content_preserved;
    Alcotest.test_case "comments/PIs preserved" `Quick test_comments_pis_preserved;
    Alcotest.test_case "attributes preserved" `Quick test_attributes_preserved;
    Alcotest.test_case "update matching everything" `Quick test_update_matching_everything;
    Alcotest.test_case "empty document element" `Quick test_empty_document_element;
    Alcotest.test_case "2000-deep nesting" `Quick test_deep_nesting_stack_safety;
    Alcotest.test_case "streaming rejects ctx quals" `Quick test_two_pass_sax_rejects_ctx_quals;
    Alcotest.test_case "invalid queries rejected" `Quick test_invalid_queries_rejected;
    Alcotest.test_case "truncated file rejected" `Quick test_truncated_file_rejected ]
