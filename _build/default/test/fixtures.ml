(* Shared documents and queries for the test suites. *)
open Xut_xml

(* The running example of the paper (Fig. 1): a parts/suppliers catalog. *)
let parts_doc_text =
  {|<db>
  <part>
    <pname>keyboard</pname>
    <supplier>
      <sname>HP</sname><price>12</price><country>A</country>
    </supplier>
    <supplier>
      <sname>Logi</sname><price>20</price><country>B</country>
    </supplier>
    <part>
      <pname>key</pname>
      <supplier>
        <sname>Acme</sname><price>20</price><country>A</country>
      </supplier>
    </part>
  </part>
  <part>
    <pname>mouse</pname>
    <supplier>
      <sname>Logi</sname><price>25</price><country>C</country>
    </supplier>
    <part>
      <pname>wheel</pname>
      <supplier>
        <sname>Acme</sname><price>3</price><country>B</country>
      </supplier>
      <part>
        <pname>axle</pname>
        <supplier>
          <sname>Tiny</sname><price>1</price><country>A</country>
        </supplier>
      </part>
    </part>
  </part>
</db>|}

let parts_doc () = Dom.parse_string parts_doc_text

(* p1 of Example 3.1: //part[pname='keyboard']//part[not(...)]. *)
let p1_text =
  "//part[pname = 'keyboard']//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]"

let node_testable = Alcotest.testable Node.pp Node.equal

let element_testable =
  Alcotest.testable Node.pp_element Node.equal_element

let check_tree = Alcotest.check element_testable

let parse_path = Xut_xpath.Parser.parse

let names es = List.map Node.name es

let pnames doc path =
  (* part names of the parts selected by [path] in the parts doc *)
  Xut_xpath.Eval.select_doc doc (parse_path path)
  |> List.map (fun e ->
         match Xut_xpath.Eval.select e (parse_path "pname") with
         | n :: _ -> Node.text_content n
         | [] -> "?")
