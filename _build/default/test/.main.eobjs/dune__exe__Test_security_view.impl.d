test/test_security_view.ml: Alcotest Core Fixtures List Node Security_view Serialize User_query Xut_xml Xut_xpath Xut_xquery
