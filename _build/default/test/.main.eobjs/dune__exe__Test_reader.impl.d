test/test_reader.ml: Alcotest Buffer Core Dom Filename Fixtures Fun In_channel List Node Out_channel Printf Reader Sax Serialize Sys Xut_automata Xut_xmark Xut_xml
