test/test_misc.ml: Alcotest Ast Char Core Engine Eval Fixtures Lexer List Lq Norm Parser QCheck2 QCheck_alcotest String Transform_ast Xquery_rewrite Xut_automata Xut_xml Xut_xpath Xut_xquery
