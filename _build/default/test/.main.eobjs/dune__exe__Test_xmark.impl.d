test/test_xmark.ml: Alcotest Dom Filename Fun Generator Lazy List Node Printf Prng Sys Xut_xmark Xut_xml Xut_xpath
