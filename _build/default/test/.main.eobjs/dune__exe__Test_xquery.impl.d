test/test_xquery.ml: Alcotest Core Fixtures List Printf Xq_ast Xq_eval Xq_parser Xq_value Xut_xml Xut_xpath Xut_xquery
