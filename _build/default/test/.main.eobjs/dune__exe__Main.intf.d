test/main.mli:
