test/test_xpath.ml: Alcotest Array Ast Eval Fixtures Fun Hashtbl Lexer List Lq Norm Parser Printf Xut_xml Xut_xpath
