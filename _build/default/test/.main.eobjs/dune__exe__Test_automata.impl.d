test/test_automata.ml: Alcotest Annotator Eval Fixtures List Parser Selecting_nfa Xut_automata Xut_xml Xut_xpath
