test/test_xml.ml: Alcotest Buffer Dom Fixtures List Node Option Sax Serialize Xut_xml
