test/test_edge_cases.ml: Alcotest Buffer Core Dom Engine Filename Fixtures Fun List Node Out_channel Printf Sax Sax_transform Sys Transform_ast Transform_parser Xut_xml Xut_xpath
