test/fixtures.ml: Alcotest Dom List Node Xut_xml Xut_xpath
