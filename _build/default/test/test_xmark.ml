open Xut_xml
open Xut_xmark

let select doc p = Xut_xpath.Eval.select_doc doc (Xut_xpath.Parser.parse p)

let doc = lazy (Generator.generate ~factor:0.004 ())

let test_deterministic () =
  let a = Generator.generate ~factor:0.002 () in
  let b = Generator.generate ~factor:0.002 () in
  Alcotest.(check bool) "same seed, same document" true (Node.equal_element a b);
  let c = Generator.generate ~seed:7L ~factor:0.002 () in
  Alcotest.(check bool) "different seed, different document" false (Node.equal_element a c)

let test_counts_scale () =
  let c1 = Generator.counts ~factor:0.01 in
  let c2 = Generator.counts ~factor:0.02 in
  Alcotest.(check bool) "items scale" true (abs (c2.Generator.items - (2 * c1.Generator.items)) <= 2);
  let d = Lazy.force doc in
  let c = Generator.counts ~factor:0.004 in
  Alcotest.(check int) "persons in document" c.Generator.persons
    (List.length (select d "site/people/person"));
  Alcotest.(check int) "items in document" c.Generator.items
    (List.length (select d "site/regions//item"));
  Alcotest.(check int) "open auctions" c.Generator.open_auctions
    (List.length (select d "site/open_auctions/open_auction"));
  Alcotest.(check int) "closed auctions" c.Generator.closed_auctions
    (List.length (select d "site/closed_auctions/closed_auction"))

let test_u_query_selectivity () =
  (* every Fig. 11 query must select something on generated data *)
  let d = Lazy.force doc in
  let nonempty p = List.length (select d p) > 0 in
  List.iter
    (fun p -> Alcotest.(check bool) p true (nonempty p))
    [ "site/people/person"; "site/people/person[@id = \"person10\"]";
      "site/people/person[profile/age > 20]"; "site/regions//item"; "site//description";
      "site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword";
      "site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text";
      "site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder";
      "site/regions//item[location = \"United States\"]";
      "site//open_auctions/open_auction[not(@id = \"open_auction2\")]/bidder[increase > 10]" ]

let test_us_location_bias () =
  let d = Lazy.force doc in
  let all = List.length (select d "site/regions//item") in
  let us = List.length (select d "site/regions//item[location = \"United States\"]") in
  let ratio = float_of_int us /. float_of_int all in
  Alcotest.(check bool)
    (Printf.sprintf "US share ~0.75 (got %.2f)" ratio)
    true
    (ratio > 0.6 && ratio < 0.9)

let test_streamed_equals_in_memory () =
  let tmp = Filename.temp_file "xmark" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Generator.to_file ~factor:0.002 tmp;
      let streamed = Dom.parse_file tmp in
      let in_memory = Generator.generate ~factor:0.002 () in
      Alcotest.(check bool) "to_file = generate" true (Node.equal_element streamed in_memory))

let test_prng () =
  let r = Prng.create 1L in
  let a = Prng.int r 100 in
  let r2 = Prng.create 1L in
  let b = Prng.int r2 100 in
  Alcotest.(check int) "deterministic" a b;
  Alcotest.(check bool) "bounds" true
    (List.for_all (fun _ -> let v = Prng.int r 10 in v >= 0 && v < 10) (List.init 1000 Fun.id));
  let ones = List.length (List.filter (fun _ -> Prng.bool r 0.5) (List.init 1000 Fun.id)) in
  Alcotest.(check bool) "bool roughly fair" true (ones > 350 && ones < 650)

let suite =
  [ Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "counts scale" `Quick test_counts_scale;
    Alcotest.test_case "Fig. 11 selectivity" `Quick test_u_query_selectivity;
    Alcotest.test_case "US location bias" `Quick test_us_location_bias;
    Alcotest.test_case "streamed = in-memory" `Quick test_streamed_equals_in_memory;
    Alcotest.test_case "prng" `Quick test_prng ]
