open Xut_xml
open Core

let doc () = Fixtures.parts_doc ()

let policy =
  Security_view.make ~name:"suppliers-for-group-b"
    [ Security_view.deny "//supplier[country = 'A']/price";
      Security_view.redact "//supplier[country = 'C']" ~with_:"<supplier><sname>hidden</sname></supplier>";
      Security_view.relabel "//part/part" ~as_:"component" ]

let test_view_materialization () =
  let v = Security_view.view_of policy ~doc:(doc ()) in
  let count p = List.length (Xut_xpath.Eval.select_doc v (Xut_xpath.Parser.parse p)) in
  (* country-A prices hidden, others kept *)
  Alcotest.(check int) "A prices gone" 0 (count "//supplier[country = 'A']/price");
  Alcotest.(check bool) "other prices kept" true (count "//price" > 0);
  (* country-C suppliers redacted *)
  Alcotest.(check int) "C suppliers redacted" 0 (count "//supplier[country = 'C']");
  Alcotest.(check int) "placeholder present" 1 (count "//supplier[sname = 'hidden']");
  (* nested parts relabeled *)
  Alcotest.(check int) "components" 3 (count "//component");
  (* the stored document is untouched *)
  Alcotest.(check bool) "store intact" true
    (Node.equal_element (doc ()) (Fixtures.parts_doc ()))

let test_rules_apply_in_order () =
  (* a later rule sees the earlier rules' output *)
  let p =
    Security_view.make ~name:"chain"
      [ Security_view.relabel "//supplier" ~as_:"vendor";
        Security_view.deny "//vendor/price" ]
  in
  let v = Security_view.view_of p ~doc:(doc ()) in
  let count q = List.length (Xut_xpath.Eval.select_doc v (Xut_xpath.Parser.parse q)) in
  Alcotest.(check int) "renamed first" 6 (count "//vendor");
  Alcotest.(check int) "then their prices deleted" 0 (count "//vendor/price")

let test_answer_matches_view () =
  let uq = User_query.parse "for $x in db/part/supplier return $x" in
  let d = doc () in
  let through_view =
    User_query.run uq ~doc:(Security_view.view_of policy ~doc:d)
    |> List.map (fun i ->
           match i with
           | Xut_xquery.Xq_value.N n -> Serialize.to_string n
           | o -> Xut_xquery.Xq_value.string_of_item o)
  in
  let answered =
    Security_view.answer policy uq ~doc:d
    |> List.map (fun i ->
           match i with
           | Xut_xquery.Xq_value.N n -> Serialize.to_string n
           | o -> Xut_xquery.Xq_value.string_of_item o)
  in
  Alcotest.(check (list string)) "answer = query over view" through_view answered

let test_single_rule_composes () =
  (* one-rule policies go through the Compose Method *)
  let p = Security_view.make ~name:"one" [ Security_view.deny "//supplier[country = 'A']" ] in
  let uq = User_query.parse "for $x in db/part[pname = \"keyboard\"]/supplier return $x/sname" in
  let got = Security_view.answer p uq ~doc:(doc ()) in
  Alcotest.(check int) "only non-A suppliers" 1 (List.length got)

let test_permitted () =
  let d = doc () in
  Alcotest.(check bool) "non-A prices visible" true
    (Security_view.permitted policy "//price" ~doc:d);
  let strict = Security_view.make ~name:"strict" [ Security_view.deny "//price" ] in
  Alcotest.(check bool) "no price visible" false
    (Security_view.permitted strict "//price" ~doc:d)

let suite =
  [ Alcotest.test_case "view materialization" `Quick test_view_materialization;
    Alcotest.test_case "rules apply in order" `Quick test_rules_apply_in_order;
    Alcotest.test_case "answer = query over view" `Quick test_answer_matches_view;
    Alcotest.test_case "single rule composes" `Quick test_single_rule_composes;
    Alcotest.test_case "permitted audit" `Quick test_permitted ]
