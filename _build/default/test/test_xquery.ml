open Xut_xquery

let doc () = Fixtures.parts_doc ()

let run ?docs src =
  let root = doc () in
  let docs = match docs with Some d -> d | None -> [ ("foo", root) ] in
  Xq_eval.run_query (Xq_eval.env ~docs ~context:root ()) src

let run_strings src =
  run src |> List.map Xq_value.string_of_item

let check_strs = Alcotest.(check (list string))
let check_int = Alcotest.(check int)

let test_literals () =
  check_strs "string" [ "hi" ] (run_strings "\"hi\"");
  check_strs "number" [ "42" ] (run_strings "42");
  check_strs "seq" [ "1"; "2"; "3" ] (run_strings "(1, 2, 3)");
  check_strs "empty" [] (run_strings "()")

let test_paths () =
  check_int "doc path" 5 (List.length (run "doc(\"foo\")//part"));
  check_int "context path" 5 (List.length (run "//part"));
  check_int "relative" 2 (List.length (run "db/part"));
  check_strs "text values" [ "keyboard"; "mouse" ] (run_strings "db/part/pname")

let test_flwor () =
  check_strs "for-return" [ "keyboard"; "mouse" ]
    (run_strings "for $x in db/part return $x/pname");
  check_strs "where" [ "mouse" ]
    (run_strings "for $x in db/part where $x/pname = \"mouse\" return $x/pname");
  check_strs "let" [ "2" ] (run_strings "let $n := count(db/part) return $n");
  check_strs "nested for" [ "HP"; "Logi"; "Logi" ]
    (run_strings "for $p in db/part, $s in $p/supplier return $s/sname")

let test_conditionals () =
  check_strs "if-then-else" [ "yes" ]
    (run_strings "if (empty(db/widget)) then \"yes\" else \"no\"");
  check_strs "quantifier some" [ "true" ]
    (run_strings "some $s in //supplier satisfies $s/price > 20");
  check_strs "quantifier every" [ "false" ]
    (run_strings "every $s in //supplier satisfies $s/price > 20")

let test_comparisons () =
  check_strs "numeric existential" [ "true" ] (run_strings "//price > 24");
  check_strs "string eq" [ "true" ] (run_strings "//sname = \"Tiny\"");
  check_strs "neq" [ "true" ] (run_strings "1 != 2");
  check_strs "node identity" [ "true" ]
    (run_strings "let $x := db/part return ($x[pname = \"mouse\"] is $x[pname = \"mouse\"])")

let test_constructors () =
  (match run "<result><count>{count(//part)}</count></result>" with
  | [ Xq_value.N (Xut_xml.Node.Element e) ] ->
    Alcotest.(check string) "name" "result" (Xut_xml.Node.name e);
    Alcotest.(check string) "content" "<result><count>5</count></result>"
      (Xut_xml.Serialize.element_to_string e)
  | _ -> Alcotest.fail "constructor");
  (match run "element {\"a\"} {\"x\", \"y\"}" with
  | [ Xq_value.N (Xut_xml.Node.Element e) ] ->
    Alcotest.(check string) "dyn elem" "<a>x y</a>" (Xut_xml.Serialize.element_to_string e)
  | _ -> Alcotest.fail "element{}");
  match run "element {local-name(db/part[pname = \"mouse\"])} { db/part[pname = \"mouse\"]/pname }" with
  | [ Xq_value.N (Xut_xml.Node.Element e) ] ->
    Alcotest.(check string) "computed" "<part><pname>mouse</pname></part>"
      (Xut_xml.Serialize.element_to_string e)
  | _ -> Alcotest.fail "computed constructor"

let test_attributes () =
  let d = Xut_xml.Dom.parse_string "<r><x id=\"1\" k=\"a\"/><x id=\"2\"/></r>" in
  let go src = Xq_eval.run_query (Xq_eval.env ~context:d ()) src in
  check_int "attr path" 2 (List.length (go "r/x/@id"));
  (match go "for $x in r/x where $x/@id = \"2\" return $x" with
  | [ Xq_value.N _ ] -> ()
  | _ -> Alcotest.fail "attr in where");
  (* attributes copied through element reconstruction *)
  match go "for $x in r/x where $x/@id = \"1\" return element {local-name($x)} { $x/@*, \"body\" }" with
  | [ Xq_value.N (Xut_xml.Node.Element e) ] ->
    Alcotest.(check (option string)) "id kept" (Some "1") (Xut_xml.Node.attr e "id");
    Alcotest.(check (option string)) "k kept" (Some "a") (Xut_xml.Node.attr e "k")
  | _ -> Alcotest.fail "attr reconstruction"

let test_functions () =
  let src =
    {|declare function local:depth($n as node()) as node()* {
        if (xut:is-element($n))
        then (1, for $c in xut:children($n) return local:depth($c))
        else ()
      };
      count(local:depth(doc("foo")/*))|}
  in
  check_strs "recursive function" [ "35" ] (run_strings src)

let test_fig2_style_rewrite () =
  (* the hand-written Fig. 2 insert template, on the mini engine *)
  let src =
    {|declare function local:ins($n, $xp) {
        if (xut:is-element($n))
        then element {fn:local-name($n)} {
          $n/@*,
          (for $c in xut:children($n) return local:ins($c, $xp)),
          (if (some $x in $xp satisfies ($n is $x)) then <flag/> else ())
        }
        else $n
      };
      let $xp := doc("foo")//part[pname = "keyboard"]
      return document { for $n in doc("foo")/* return local:ins($n, $xp) }|}
  in
  let out = Xq_eval.value_to_element (run src) in
  let flags = Xut_xpath.Eval.select_doc out (Xut_xpath.Parser.parse "//flag") in
  check_int "one flag" 1 (List.length flags);
  (* and it matches the native engine on the same update *)
  let u =
    Core.Transform_ast.Insert
      (Xut_xpath.Parser.parse "//part[pname = \"keyboard\"]", Xut_xml.Node.elem "flag" [])
  in
  let expected = Core.Engine.transform Core.Engine.Reference u (doc ()) in
  Alcotest.(check bool) "equals native" true (Xut_xml.Node.equal_element expected out)

let test_parse_errors () =
  let fails src =
    match Xq_parser.parse src with
    | exception Xq_parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  fails "for $x in";
  fails "if (1) then 2";
  fails "<a><b></a></b>";
  fails "let $x = 1 return $x";
  fails "1 +"

let test_print_parse_roundtrip () =
  let cases =
    [ "for $x in db/part where $x/pname = \"mouse\" return $x/pname";
      "if (empty(db/widget)) then \"yes\" else \"no\"";
      "some $s in //supplier satisfies $s/price > 20";
      "let $n := count(db/part) return $n";
      "<result><count>{count(//part)}</count></result>";
      "element {\"a\"} {\"x\"}";
      "for $p in db/part, $s in $p/supplier return $s/sname" ]
  in
  let root = doc () in
  let env = Xq_eval.env ~docs:[ ("foo", root) ] ~context:root () in
  List.iter
    (fun src ->
      let e1 = Xq_parser.parse_expr src in
      let printed = Xq_ast.to_string e1 in
      let e2 =
        try Xq_parser.parse_expr printed
        with Xq_parser.Parse_error m -> Alcotest.fail (Printf.sprintf "reparse %S: %s" printed m)
      in
      let v1 = Xq_eval.eval_expr env e1 |> List.map Xq_value.string_of_item in
      let v2 = Xq_eval.eval_expr env e2 |> List.map Xq_value.string_of_item in
      check_strs ("roundtrip " ^ src) v1 v2)
    cases

let test_arithmetic () =
  check_strs "add" [ "3" ] (run_strings "1 + 2");
  check_strs "precedence" [ "7" ] (run_strings "1 + 2 * 3");
  check_strs "parens" [ "9" ] (run_strings "(1 + 2) * 3");
  check_strs "div" [ "2.5" ] (run_strings "5 div 2");
  check_strs "mod" [ "1" ] (run_strings "7 mod 3");
  check_strs "left assoc" [ "2" ] (run_strings "5 - 2 - 1");
  check_strs "over node values" [ "32" ]
    (run_strings "let $p := db/part[pname = \"keyboard\"] return sum($p/supplier/price)");
  check_strs "path plus const" [ "13" ]
    (run_strings "db/part[pname = \"keyboard\"]/supplier[sname = \"HP\"]/price + 1");
  check_strs "empty propagates" [] (run_strings "() + 1")

let test_numeric_builtins () =
  check_strs "count" [ "2" ] (run_strings "count(db/part)");
  check_strs "sum" [ "81" ] (run_strings "sum(//price)");
  check_strs "avg" [ "19" ] (run_strings "avg((12, 20, 25))");
  check_strs "max" [ "25" ] (run_strings "max(//price)");
  check_strs "min" [ "1" ] (run_strings "min((3, 1, 2))");
  check_strs "round" [ "3" ] (run_strings "round(2.5)");
  check_strs "floor/ceiling" [ "2"; "3" ] (run_strings "(floor(2.9), ceiling(2.1))");
  check_strs "number of junk is nan" [ "nan" ] (run_strings "string(number(\"abc\"))")

let test_string_builtins () =
  check_strs "string-length" [ "5" ] (run_strings "string-length(\"hello\")");
  check_strs "contains" [ "true" ] (run_strings "contains(\"keyboard\", \"boa\")");
  check_strs "starts-with" [ "true" ] (run_strings "starts-with(\"keyboard\", \"key\")");
  check_strs "ends-with" [ "false" ] (run_strings "ends-with(\"keyboard\", \"key\")");
  check_strs "case" [ "ABC"; "abc" ] (run_strings "(upper-case(\"aBc\"), lower-case(\"aBc\"))");
  check_strs "normalize-space" [ "a b c" ] (run_strings "normalize-space(\"  a\tb  c \")");
  check_strs "string-join" [ "HP,Logi,Acme,Logi,Acme,Tiny" ]
    (run_strings "string-join(//sname, \",\")");
  check_strs "distinct-values" [ "HP"; "Logi"; "Acme"; "Tiny" ]
    (run_strings "distinct-values(//sname)");
  check_strs "contains over nodes" [ "keyboard" ]
    (run_strings "for $p in db/part where contains($p/pname, \"board\") return $p/pname")

let test_comments () =
  check_strs "xquery comments" [ "2" ]
    (run_strings "(: a comment (: nested :) :) count(db/part)")

let suite =
  [ Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "paths" `Quick test_paths;
    Alcotest.test_case "flwor" `Quick test_flwor;
    Alcotest.test_case "conditionals" `Quick test_conditionals;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "recursive functions" `Quick test_functions;
    Alcotest.test_case "Fig. 2 rewriting by hand" `Quick test_fig2_style_rewrite;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "numeric builtins" `Quick test_numeric_builtins;
    Alcotest.test_case "string builtins" `Quick test_string_builtins;
    Alcotest.test_case "comments" `Quick test_comments ]
