open Xut_xml

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let roundtrip s =
  let e = Dom.parse_string s in
  Serialize.element_to_string e

let test_parse_simple () =
  let e = Dom.parse_string "<a><b>hi</b><c x=\"1\"/></a>" in
  check_str "name" "a" (Node.name e);
  check_int "children" 2 (List.length (Node.children e));
  match Node.children e with
  | [ Node.Element b; Node.Element c ] ->
    check_str "b text" "hi" (Node.text_content b);
    check_str "c attr" "1" (Option.get (Node.attr c "x"))
  | _ -> Alcotest.fail "unexpected shape"

let test_roundtrip () =
  check_str "simple" "<a><b>hi</b><c x=\"1\"/></a>" (roundtrip "<a><b>hi</b><c x=\"1\"/></a>");
  check_str "nested" "<a><b><c><d>x</d></c></b></a>" (roundtrip "<a><b><c><d>x</d></c></b></a>")

let test_escapes () =
  let e = Dom.parse_string "<a>x &amp; y &lt; z &#65;&#x42;</a>" in
  check_str "entities" "x & y < z AB" (Node.text_content e);
  let s = Serialize.element_to_string e in
  check_str "re-escaped" "<a>x &amp; y &lt; z AB</a>" s

let test_attr_quotes () =
  let e = Dom.parse_string "<a x='single &quot;q' y=\"double 'q\"/>" in
  check_str "single" "single \"q" (Option.get (Node.attr e "x"));
  check_str "double" "double 'q" (Option.get (Node.attr e "y"))

let test_comment_pi_cdata () =
  let e = Dom.parse_string "<?xml version=\"1.0\"?><a><!-- c --><?tgt data?><![CDATA[<raw>]]></a>" in
  (match Node.children e with
  | [ Node.Comment c; Node.Pi (t, d); Node.Text raw ] ->
    check_str "comment" " c " c;
    check_str "pi target" "tgt" t;
    check_str "pi data" "data" d;
    check_str "cdata" "<raw>" raw
  | _ -> Alcotest.fail "unexpected children");
  ignore e

let test_doctype_skipped () =
  let e = Dom.parse_string "<!DOCTYPE site SYSTEM \"foo.dtd\" [<!ENTITY x \"y\">]><a/>" in
  check_str "root" "a" (Node.name e)

let test_ws_dropped () =
  let e = Dom.parse_string "<a>\n  <b/>\n  <c/>\n</a>" in
  check_int "no ws children" 2 (List.length (Node.children e))

let test_ws_kept () =
  let e = Dom.parse_string ~keep_ws:true "<a>\n  <b/>\n</a>" in
  check_int "ws kept" 3 (List.length (Node.children e))

let test_mixed_content () =
  let e = Dom.parse_string "<p>one <em>two</em> three</p>" in
  check_int "3 children" 3 (List.length (Node.children e));
  check_str "direct text" "one  three" (Node.text_content e)

let test_parse_errors () =
  let fails s =
    match Dom.parse_string s with
    | exception Sax.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "<a>";
  fails "<a></b>";
  fails "<a><b></a></b>";
  fails "no markup";
  fails "<a attr=novalue/>";
  fails "<a>&bogus;</a>"

let test_sax_events () =
  let events = ref [] in
  Sax.parse_string "<a x=\"1\"><b>t</b></a>" (fun ev -> events := ev :: !events);
  let got = List.rev !events in
  let expected =
    [ Sax.Start_document; Sax.Start_element ("a", [ ("x", "1") ]); Sax.Start_element ("b", []);
      Sax.Characters "t"; Sax.End_element "b"; Sax.End_element "a"; Sax.End_document ]
  in
  Alcotest.(check int) "event count" (List.length expected) (List.length got);
  List.iter2
    (fun e g -> Alcotest.(check bool) "event" true (Sax.equal_event e g))
    expected got

let test_events_of_tree_roundtrip () =
  let e = Dom.parse_string Fixtures.parts_doc_text in
  let b = Dom.Builder.create () in
  Sax.events_of_tree e (Dom.Builder.handler b);
  Fixtures.check_tree "tree->events->tree" e (Dom.Builder.result b)

let test_serialize_parse_roundtrip () =
  let e = Dom.parse_string Fixtures.parts_doc_text in
  let e' = Dom.parse_string (Serialize.element_to_string e) in
  Fixtures.check_tree "parse(serialize(t)) = t" e e'

let test_indent () =
  let e = Dom.parse_string "<a><b>t</b></a>" in
  check_str "indented" "<a>\n  <b>t</b>\n</a>" (Serialize.element_to_string ~indent:2 e)

let test_node_ops () =
  let e = Dom.parse_string Fixtures.parts_doc_text in
  check_int "element count" 35 (Node.element_count (Node.Element e));
  Alcotest.(check bool) "size includes text nodes" true
    (Node.size (Node.Element e) > Node.element_count (Node.Element e));
  check_int "depth" 7 (Node.depth (Node.Element e));
  check_int "descendants" 35 (List.length (Node.descendant_or_self e))

let test_refresh_ids () =
  let e = Dom.parse_string "<a><b/><b/></a>" in
  let e' = Node.refresh_ids (Node.Element e) in
  Alcotest.(check bool) "structurally equal" true (Node.equal (Node.Element e) e');
  match e' with
  | Node.Element f -> Alcotest.(check bool) "fresh id" true (Node.id f <> Node.id e)
  | _ -> Alcotest.fail "not an element"

let test_event_sink () =
  let buf = Buffer.create 64 in
  Sax.parse_string "<a><b>t</b></a>" (Serialize.event_sink buf);
  check_str "streamed serialization" "<a><b>t</b></a>" (Buffer.contents buf)

let suite =
  [ Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "escapes" `Quick test_escapes;
    Alcotest.test_case "attribute quotes" `Quick test_attr_quotes;
    Alcotest.test_case "comment/pi/cdata" `Quick test_comment_pi_cdata;
    Alcotest.test_case "doctype skipped" `Quick test_doctype_skipped;
    Alcotest.test_case "whitespace dropped" `Quick test_ws_dropped;
    Alcotest.test_case "whitespace kept" `Quick test_ws_kept;
    Alcotest.test_case "mixed content" `Quick test_mixed_content;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "sax events" `Quick test_sax_events;
    Alcotest.test_case "events_of_tree roundtrip" `Quick test_events_of_tree_roundtrip;
    Alcotest.test_case "serialize/parse roundtrip" `Quick test_serialize_parse_roundtrip;
    Alcotest.test_case "indent" `Quick test_indent;
    Alcotest.test_case "node ops" `Quick test_node_ops;
    Alcotest.test_case "refresh ids" `Quick test_refresh_ids;
    Alcotest.test_case "event sink" `Quick test_event_sink ]
