open Xut_xml
open Core

let doc () = Fixtures.parts_doc ()

let new_supplier =
  Node.elem "supplier"
    [ Node.elem "sname" [ Node.text "HP" ]; Node.elem "price" [ Node.text "99" ] ]

let parse_path = Xut_xpath.Parser.parse

let engines = Engine.[ Naive; Gentop; Td_bu; Two_pass_sax; Galax_update ]

let updates_under_test =
  [ Transform_ast.Delete (parse_path "//price");
    Transform_ast.Delete (parse_path "//supplier[country = \"A\"]/price");
    Transform_ast.Delete (parse_path "db/part[pname = \"mouse\"]");
    Transform_ast.Insert (parse_path "//part[pname = \"keyboard\"]", new_supplier);
    Transform_ast.Insert (parse_path Fixtures.p1_text, new_supplier);
    Transform_ast.Insert (parse_path "db/part", new_supplier);
    Transform_ast.Insert_first (parse_path "//part[pname = \"keyboard\"]", new_supplier);
    Transform_ast.Insert_first (parse_path "db/part", new_supplier);
    Transform_ast.Replace (parse_path "//supplier[sname = \"HP\"]", new_supplier);
    Transform_ast.Replace (parse_path "//pname", Node.elem "pname" [ Node.text "x" ]);
    Transform_ast.Rename (parse_path "//supplier", "vendor");
    Transform_ast.Rename (parse_path "db/part[pname = \"keyboard\"]", "product");
    Transform_ast.Delete (parse_path "db/nothing");
    Transform_ast.Insert (parse_path "//part[supplier/price < 5]", new_supplier) ]

let test_engines_agree () =
  List.iter
    (fun u ->
      let root = doc () in
      let expected = Engine.transform Engine.Reference u root in
      List.iter
        (fun algo ->
          let got = Engine.transform algo u root in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s" (Engine.name algo) (Transform_ast.update_to_string u))
            true
            (Node.equal_element expected got))
        engines)
    updates_under_test

let test_source_untouched () =
  let root = doc () in
  let before = Serialize.element_to_string root in
  List.iter
    (fun algo ->
      ignore (Engine.transform algo (Transform_ast.Delete (parse_path "//price")) root);
      Alcotest.(check string)
        (Engine.name algo ^ " leaves the store intact")
        before (Serialize.element_to_string root))
    engines

let test_delete_prices () =
  (* Example 1.1: delete $a//price removes every price, keeps the rest. *)
  let root = doc () in
  let out = Top_down.transform (Transform_ast.Delete (parse_path "//price")) root in
  Alcotest.(check int) "no prices left" 0
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//price")));
  Alcotest.(check int) "suppliers kept" 6
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//supplier")));
  Alcotest.(check int) "element count drops by 6"
    (Node.element_count (Node.Element root) - 6)
    (Node.element_count (Node.Element out))

let test_security_view () =
  (* Example 1.1 security view: hide prices of suppliers from countries A, B. *)
  let root = doc () in
  let u =
    Transform_ast.Delete (parse_path "//supplier[country = \"A\" or country = \"B\"]/price")
  in
  let out = Engine.transform Engine.Td_bu u root in
  let remaining = Xut_xpath.Eval.select_doc out (parse_path "//supplier[price]/country") in
  List.iter
    (fun c ->
      Alcotest.(check bool) "only safe countries keep prices" true
        (Node.text_content c = "C"))
    remaining;
  Alcotest.(check int) "one price left" 1
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//price")))

let test_insert_first_position () =
  let root = doc () in
  let u = Transform_ast.Insert_first (parse_path "db/part[pname = \"keyboard\"]", new_supplier) in
  List.iter
    (fun algo ->
      let out = Engine.transform algo u root in
      match Xut_xpath.Eval.select_doc out (parse_path "db/part[pname = \"keyboard\"]") with
      | [ kb ] -> (
        match Node.child_elements kb with
        | first :: _ ->
          Alcotest.(check string) (Engine.name algo ^ ": first child") "supplier" (Node.name first);
          Alcotest.(check string) "the new one" "99"
            (Node.text_content (List.nth (Node.child_elements first) 1))
        | [] -> Alcotest.fail "no children")
      | _ -> Alcotest.fail "keyboard part lost")
    engines

let test_insert_first_parses () =
  match Transform_parser.parse_update "insert <v/> as first into $a//part" with
  | Transform_ast.Insert_first (_, Node.Element e) ->
    Alcotest.(check string) "elem" "v" (Node.name e)
  | _ -> Alcotest.fail "expected insert-as-first";;

let test_insert_position () =
  let root = doc () in
  let u = Transform_ast.Insert (parse_path "db/part[pname = \"keyboard\"]", new_supplier) in
  let out = Engine.transform Engine.Gentop u root in
  match Xut_xpath.Eval.select_doc out (parse_path "db/part[pname = \"keyboard\"]") with
  | [ kb ] -> (
    match List.rev (Node.child_elements kb) with
    | last :: _ ->
      Alcotest.(check string) "inserted as last child" "supplier" (Node.name last);
      Alcotest.(check string) "it is the new one" "99"
        (Node.text_content (List.nth (Node.child_elements last) 1))
    | [] -> Alcotest.fail "no children")
  | _ -> Alcotest.fail "keyboard part lost"

let test_rename_keeps_content () =
  let root = doc () in
  let u = Transform_ast.Rename (parse_path "//supplier", "vendor") in
  let out = Engine.transform Engine.Two_pass_sax u root in
  Alcotest.(check int) "all renamed" 6
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//vendor")));
  Alcotest.(check int) "snames kept" 6
    (List.length (Xut_xpath.Eval.select_doc out (parse_path "//vendor/sname")))

let test_replace_root () =
  let root = doc () in
  let u = Transform_ast.Replace (parse_path ".", Node.elem "empty" []) in
  let out = Engine.transform Engine.Reference u root in
  Alcotest.(check string) "root replaced" "empty" (Node.name out);
  let out2 = Engine.transform Engine.Gentop u root in
  Alcotest.(check string) "topDown agrees" "empty" (Node.name out2)

let test_delete_root_raises () =
  let root = doc () in
  let u = Transform_ast.Delete (parse_path ".") in
  List.iter
    (fun algo ->
      match Engine.transform algo u root with
      | exception Transform_ast.Invalid_update _ -> ()
      | _ -> Alcotest.fail (Engine.name algo ^ " must reject deleting the document element"))
    (Engine.Reference :: engines)

let test_insert_at_root () =
  let root = doc () in
  let u = Transform_ast.Insert (parse_path ".", new_supplier) in
  List.iter
    (fun algo ->
      let out = Engine.transform algo u root in
      match List.rev (Node.child_elements out) with
      | last :: _ ->
        Alcotest.(check string) (Engine.name algo ^ " appends to root") "supplier" (Node.name last)
      | [] -> Alcotest.fail "no children")
    (Engine.Reference :: engines)

let test_no_match_is_identity () =
  let root = doc () in
  List.iter
    (fun algo ->
      let out = Engine.transform algo (Transform_ast.Delete (parse_path "db/widget")) root in
      Alcotest.(check bool) (Engine.name algo ^ " identity") true (Node.equal_element root out))
    (Engine.Reference :: engines)

let test_topdown_shares_subtrees () =
  let root = doc () in
  Stats.reset ();
  let _ = Top_down.transform (Transform_ast.Delete (parse_path "db/part[pname = \"mouse\"]")) root in
  let s = Stats.read () in
  Alcotest.(check bool) "some sharing happened" true (s.Stats.shared > 0);
  Alcotest.(check bool) "visited less than everything" true
    (s.Stats.visited < Node.element_count (Node.Element root))

let test_naive_copies_everything () =
  let root = doc () in
  Stats.reset ();
  let _ = Naive.transform (Transform_ast.Delete (parse_path "db/part[pname = \"mouse\"]")) root in
  let s = Stats.read () in
  Alcotest.(check bool) "naive touches every element" true
    (s.Stats.visited >= Node.element_count (Node.Element root) - 1)

let test_parser_full_query () =
  let q =
    Transform_parser.parse
      "transform copy $a := doc(\"foo\") modify do delete $a//supplier[country = 'A']/price return $a"
  in
  Alcotest.(check string) "doc" "foo" q.Transform_ast.doc;
  (match q.Transform_ast.update with
  | Transform_ast.Delete p ->
    Alcotest.(check string) "path" "//supplier[country = \"A\"]/price" (Xut_xpath.Ast.path_to_string p)
  | _ -> Alcotest.fail "expected delete");
  let q2 =
    Transform_parser.parse
      "transform copy $a := doc(\"d\") modify do insert <supplier><sname>HP</sname></supplier> into $a//part[pname = 'keyboard'] return $a"
  in
  match q2.Transform_ast.update with
  | Transform_ast.Insert (_, Node.Element e) ->
    Alcotest.(check string) "element name" "supplier" (Node.name e)
  | _ -> Alcotest.fail "expected insert of an element"

let test_parser_replace_rename () =
  (match Transform_parser.parse_update "replace $a/db/part with <part/>" with
  | Transform_ast.Replace (_, Node.Element e) ->
    Alcotest.(check string) "replace elem" "part" (Node.name e)
  | _ -> Alcotest.fail "replace");
  match Transform_parser.parse_update "rename $a//supplier as vendor" with
  | Transform_ast.Rename (_, "vendor") -> ()
  | _ -> Alcotest.fail "rename"

let test_parser_errors () =
  let fails s =
    match Transform_parser.parse s with
    | exception Transform_parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "transform copy $a := doc(\"f\") modify do obliterate $a/x return $a";
  fails "transform copy $a := doc(\"f\") modify do delete $b/x return $a";
  fails "transform copy $a := doc(\"f\") modify do delete $a/x return $b";
  fails "transform copy $a := doc(f) modify do delete $a/x return $a";
  fails "transform copy $a := doc(\"f\") modify do insert <a> into $a/x return $a"

let test_query_roundtrip_print () =
  let src =
    "transform copy $a := doc(\"foo\") modify do delete $a//price return $a"
  in
  let q = Transform_parser.parse src in
  let printed = Transform_ast.to_string q in
  let q2 = Transform_parser.parse printed in
  Alcotest.(check string) "stable print" printed (Transform_ast.to_string q2)

let test_sax_file_roundtrip () =
  (* transform_file must agree with the in-memory engines *)
  let root = doc () in
  let tmp = Filename.temp_file "xut" ".xml" in
  Out_channel.with_open_bin tmp (fun oc -> Serialize.to_channel oc root);
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let u = Transform_ast.Delete (parse_path "//supplier[country = \"A\"]/price") in
      let buf = Buffer.create 1024 in
      let stats = Sax_transform.transform_file u ~src:tmp ~out:buf in
      let out = Dom.parse_string (Buffer.contents buf) in
      let expected = Engine.transform Engine.Reference u root in
      Alcotest.(check bool) "file = reference" true (Node.equal_element expected out);
      Alcotest.(check bool) "stack bounded by depth" true
        (stats.Sax_transform.max_stack_depth <= Node.depth (Node.Element root)))

let suite =
  [ Alcotest.test_case "all engines agree with reference" `Quick test_engines_agree;
    Alcotest.test_case "no destructive impact" `Quick test_source_untouched;
    Alcotest.test_case "delete //price (Ex 1.1)" `Quick test_delete_prices;
    Alcotest.test_case "security view (Ex 1.1)" `Quick test_security_view;
    Alcotest.test_case "insert as last child" `Quick test_insert_position;
    Alcotest.test_case "insert as first child" `Quick test_insert_first_position;
    Alcotest.test_case "parse insert as first" `Quick test_insert_first_parses;
    Alcotest.test_case "rename keeps content" `Quick test_rename_keeps_content;
    Alcotest.test_case "replace the root" `Quick test_replace_root;
    Alcotest.test_case "delete root raises" `Quick test_delete_root_raises;
    Alcotest.test_case "insert at root" `Quick test_insert_at_root;
    Alcotest.test_case "no match is identity" `Quick test_no_match_is_identity;
    Alcotest.test_case "topDown shares subtrees" `Quick test_topdown_shares_subtrees;
    Alcotest.test_case "naive touches everything" `Quick test_naive_copies_everything;
    Alcotest.test_case "parse full transform query" `Quick test_parser_full_query;
    Alcotest.test_case "parse replace/rename" `Quick test_parser_replace_rename;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_query_roundtrip_print;
    Alcotest.test_case "SAX file roundtrip" `Quick test_sax_file_roundtrip ]

let test_update_sequence () =
  (* the message-transformation pipeline as ONE compound transform query *)
  let q =
    Sequence.parse
      {|transform copy $a := doc("m") modify do (
          delete $a/order/customer/creditcard,
          rename $a/order/items as lines,
          insert <stamp kind="routing"/> into $a/order
        ) return $a|}
  in
  Alcotest.(check int) "three updates" 3 (List.length q.Sequence.updates);
  let doc =
    Dom.parse_string
      "<order><customer><name>Ada</name><creditcard>4000</creditcard></customer><items><item/></items></order>"
  in
  let out = Sequence.run Engine.Gentop q ~doc in
  let count p = List.length (Xut_xpath.Eval.select_doc out (parse_path p)) in
  Alcotest.(check int) "creditcard gone" 0 (count "order/customer/creditcard");
  Alcotest.(check int) "items renamed" 1 (count "order/lines");
  Alcotest.(check int) "stamp added" 1 (count "order/stamp");
  (* equals the nesting of single-update transform queries, on any engine *)
  let nested =
    List.fold_left
      (fun acc u -> Engine.transform Engine.Two_pass_sax u acc)
      doc q.Sequence.updates
  in
  Alcotest.(check bool) "sequence = nested transforms" true (Node.equal_element out nested);
  (* print/parse roundtrip *)
  let q2 = Sequence.parse (Sequence.to_string q) in
  Alcotest.(check string) "stable print" (Sequence.to_string q) (Sequence.to_string q2)

let test_sequence_single_update () =
  let q = Sequence.parse
      "transform copy $a := doc(\"f\") modify do delete $a//price return $a" in
  Alcotest.(check int) "one update" 1 (List.length q.Sequence.updates)

let test_sequence_with_quals_and_parens () =
  (* commas and parens inside qualifiers must not split the sequence *)
  let q =
    Sequence.parse
      {|transform copy $a := doc("f") modify do (
          delete $a//part[not(supplier/country = "A") and pname = "x"],
          insert <v/> into $a//part[supplier/price < 5]
        ) return $a|}
  in
  Alcotest.(check int) "two updates" 2 (List.length q.Sequence.updates)

let suite =
  suite
  @ [ Alcotest.test_case "update sequences" `Quick test_update_sequence;
      Alcotest.test_case "sequence of one" `Quick test_sequence_single_update;
      Alcotest.test_case "sequence with qualifiers" `Quick test_sequence_with_quals_and_parens ]
