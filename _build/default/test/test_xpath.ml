open Xut_xpath

let check_strs = Alcotest.(check (list string))
let check_str = Alcotest.(check string)

let doc () = Fixtures.parts_doc ()

let select path =
  Eval.select_doc (doc ()) (Parser.parse path) |> List.map Xut_xml.Node.name

let texts path =
  Eval.select_doc (doc ()) (Parser.parse path) |> List.map Xut_xml.Node.text_content

(* --- parser ------------------------------------------------------------ *)

let test_parse_print_roundtrip () =
  let cases =
    [ "db/part/pname"; "//part"; "/site/people/person"; "db//part[pname = \"keyboard\"]";
      "*/supplier"; "//part[not(supplier/sname = \"HP\") and not(supplier/price < 15)]";
      "site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder";
      "site//open_auctions/open_auction[not(@id = \"open_auction2\")]/bidder[increase > 10]";
      "a/b[q]/c[x or y][z]"; "a[label() = \"b\"]"; "a[. = \"text\"]"; "a[@id]";
      "a[b/@kind = \"k\"]" ]
  in
  List.iter
    (fun src ->
      let p = Parser.parse src in
      let printed = Ast.path_to_string p in
      let reparsed = Parser.parse printed in
      Alcotest.(check bool) (src ^ " roundtrips") true (Ast.equal_path p reparsed))
    cases

let test_parse_errors () =
  let fails s =
    match Parser.parse s with
    | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "a/[q]";
  fails "a[";
  fails "a]";
  fails "a[b=]";
  fails "a b";
  fails "a/";
  fails "#"

let test_parse_shapes () =
  (match Parser.parse "//a" with
  | [ { Ast.nav = Ast.Descendant; _ }; { Ast.nav = Ast.Label "a"; _ } ] -> ()
  | _ -> Alcotest.fail "//a shape");
  (match Parser.parse "a//b" with
  | [ { Ast.nav = Ast.Label "a"; _ }; { Ast.nav = Ast.Descendant; _ }; { Ast.nav = Ast.Label "b"; _ } ]
    -> ()
  | _ -> Alcotest.fail "a//b shape");
  match Parser.parse "a[b = 10]" with
  | [ { Ast.nav = Ast.Label "a"; quals = [ Ast.Q_cmp (_, Ast.Eq, Ast.V_num 10.) ] } ] -> ()
  | _ -> Alcotest.fail "numeric comparison shape"

(* --- evaluation -------------------------------------------------------- *)

let test_child_axis () =
  check_strs "db/part" [ "part"; "part" ] (select "db/part");
  check_strs "absolute" [ "part"; "part" ] (select "/db/part");
  check_strs "no match" [] (select "db/nothing")

let test_descendant () =
  Alcotest.(check int) "all parts" 5 (List.length (select "//part"));
  Alcotest.(check int) "suppliers anywhere" 6 (List.length (select "//supplier"));
  Alcotest.(check int) "desc under db" 5 (List.length (select "db//part"));
  Alcotest.(check int) "dedup via double desc" 6 (List.length (select "//part//supplier"))

let test_wildcard () =
  check_strs "db/*" [ "part"; "part" ] (select "db/*");
  Alcotest.(check int) "db/*/*" 7 (List.length (select "db/*/*"))

let test_doc_order () =
  check_strs "pnames in doc order"
    [ "keyboard"; "key"; "mouse"; "wheel"; "axle" ]
    (texts "//part/pname")

let test_qualifiers () =
  check_strs "by pname" [ "keyboard" ]
    (Fixtures.pnames (doc ()) "db/part[pname = \"keyboard\"]");
  check_strs "numeric lt" [ "wheel"; "axle" ]
    (Fixtures.pnames (doc ()) "//part[supplier/price < 5]");
  check_strs "negation" [ "mouse"; "wheel" ]
    (Fixtures.pnames (doc ()) "//part[not(supplier/country = \"A\")]" |> List.sort compare);
  check_strs "disjunction" [ "key"; "keyboard"; "wheel" ]
    (Fixtures.pnames (doc ()) "//part[supplier/sname = \"HP\" or supplier/sname = \"Acme\"]"
     |> List.sort compare)

let test_paper_p1 () =
  (* Example 3.1: parts under the keyboard part with no HP supplier and no
     supplier cheaper than 15. *)
  check_strs "p1 of Example 3.1" [ "key" ]
    (Fixtures.pnames (doc ()) Fixtures.p1_text |> List.sort compare)

let test_label_qual () =
  check_strs "label() =" [ "part"; "part" ] (select "db/*[label() = \"part\"]");
  check_strs "label() mismatch" [] (select "db/*[label() = \"supplier\"]")

let test_self_step () =
  check_strs "a/. = a" [ "part"; "part" ] (select "db/part/.");
  check_strs "self qual" [ "part"; "part" ] (select "db/part[.//sname = \"Acme\"]" )

let test_attr () =
  let d = Xut_xml.Dom.parse_string "<r><x id=\"1\"/><x id=\"2\"/><x/></r>" in
  Alcotest.(check int) "attr exists" 2 (List.length (Eval.select_doc d (Parser.parse "r/x[@id]")));
  Alcotest.(check int) "attr eq" 1
    (List.length (Eval.select_doc d (Parser.parse "r/x[@id = \"2\"]")))

let test_text_comparison_kinds () =
  let d = Xut_xml.Dom.parse_string "<r><v>10</v><v>9</v><v>abc</v></r>" in
  let count p = List.length (Eval.select_doc d (Parser.parse p)) in
  Alcotest.(check int) "numeric gt (9 < 10 numerically)" 1 (count "r/v[. > 9.5]");
  Alcotest.(check int) "string eq" 1 (count "r/v[. = \"abc\"]");
  Alcotest.(check int) "non-numeric excluded" 2 (count "r/v[. >= 9]")

let test_empty_path_is_root () =
  let d = doc () in
  (match Eval.select_doc d [] with
  | [ r ] -> check_str "root" "db" (Xut_xml.Node.name r)
  | _ -> Alcotest.fail "empty path");
  match Eval.select_doc d (Parser.parse ".") with
  | [ r ] -> check_str "dot is root" "db" (Xut_xml.Node.name r)
  | _ -> Alcotest.fail "dot path"

(* --- normalization ----------------------------------------------------- *)

let test_norm () =
  let n = Norm.steps (Parser.parse "a/./b[q]//c") in
  Alcotest.(check int) "steps" 4 (List.length n.Norm.steps);
  (match n.Norm.steps with
  | [ { nav = Norm.N_label "a"; _ }; { nav = Norm.N_label "b"; _ }; { nav = Norm.N_desc; _ };
      { nav = Norm.N_label "c"; _ } ] -> ()
  | _ -> Alcotest.fail "norm shape");
  let n2 = Norm.steps (Parser.parse ".[x]/a") in
  Alcotest.(check int) "ctx quals" 1 (List.length n2.Norm.ctx_quals)

let test_lq_topological () =
  let b = Lq.create_builder () in
  let idx = Lq.add_qual b (Parser.parse_qual "not(supplier/sname = \"HP\") and supplier/price < 15") in
  let lq = Lq.freeze b in
  Alcotest.(check bool) "top expression is last-ish" true (idx < Lq.length lq);
  (* sub-expressions strictly precede containing ones *)
  for i = 0 to Lq.length lq - 1 do
    match Lq.expr lq i with
    | Lq.Seq (a, b) | Lq.And_ (a, b) | Lq.Or_ (a, b) ->
      Alcotest.(check bool) "subexpr before" true (a < i && b < i)
    | Lq.Child p | Lq.Desc p | Lq.Not_ p -> Alcotest.(check bool) "subexpr before" true (p < i)
    | _ -> ()
  done

let test_qualdp_matches_direct () =
  (* QualDP through the annotator-style evaluation must agree with the
     direct evaluator on every element for several qualifiers. *)
  let quals =
    [ "supplier/price < 15"; "not(supplier/sname = \"HP\")"; "pname = \"keyboard\"";
      "//sname = \"Tiny\""; "supplier/sname = \"HP\" or pname = \"wheel\"";
      "label() = \"part\" and supplier"; "part/part"; ". = \"keyboard\"" ]
  in
  let d = doc () in
  List.iter
    (fun qs ->
      let q = Parser.parse_qual qs in
      let b = Lq.create_builder () in
      let idx = Lq.add_qual b q in
      let lq = Lq.freeze b in
      (* bottom-up over the whole tree, no pruning: csat from children *)
      let tbl = Hashtbl.create 64 in
      let rec go e =
        List.iter go (Xut_xml.Node.child_elements e);
        let csat i =
          List.exists
            (fun c -> match Hashtbl.find_opt tbl (Xut_xml.Node.id c) with
              | Some arr -> arr.(i)
              | None -> false)
            (Xut_xml.Node.child_elements e)
        in
        let sat =
          Lq.eval_at lq ~name:(Xut_xml.Node.name e) ~attrs:(Xut_xml.Node.attrs e)
            ~text:(Xut_xml.Node.text_content e) ~csat
            ~wanted:(List.init (Lq.length lq) Fun.id)
        in
        Hashtbl.replace tbl (Xut_xml.Node.id e) sat
      in
      go d;
      Xut_xml.Node.iter_elements
        (fun e ->
          let expected = Eval.check_qual e q in
          let got = (Hashtbl.find tbl (Xut_xml.Node.id e)).(idx) in
          Alcotest.(check bool)
            (Printf.sprintf "QualDP(%s) at %s#%d" qs (Xut_xml.Node.name e) (Xut_xml.Node.id e))
            expected got)
        d)
    quals

let suite =
  [ Alcotest.test_case "parse/print roundtrip" `Quick test_parse_print_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse shapes" `Quick test_parse_shapes;
    Alcotest.test_case "child axis" `Quick test_child_axis;
    Alcotest.test_case "descendant axis" `Quick test_descendant;
    Alcotest.test_case "wildcard" `Quick test_wildcard;
    Alcotest.test_case "document order" `Quick test_doc_order;
    Alcotest.test_case "qualifiers" `Quick test_qualifiers;
    Alcotest.test_case "paper p1 (Ex 3.1)" `Quick test_paper_p1;
    Alcotest.test_case "label() qualifier" `Quick test_label_qual;
    Alcotest.test_case "self steps" `Quick test_self_step;
    Alcotest.test_case "attributes" `Quick test_attr;
    Alcotest.test_case "comparison kinds" `Quick test_text_comparison_kinds;
    Alcotest.test_case "empty path selects root" `Quick test_empty_path_is_root;
    Alcotest.test_case "normalization" `Quick test_norm;
    Alcotest.test_case "LQ topological order" `Quick test_lq_topological;
    Alcotest.test_case "QualDP = direct eval" `Quick test_qualdp_matches_direct ]
