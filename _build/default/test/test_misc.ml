(* Coverage for the smaller surfaces: lexers, normal forms, printers,
   escaping, dispatch. *)
open Xut_xpath
open Core

let check_strs = Alcotest.(check (list string))

(* --- xpath lexer -------------------------------------------------------- *)

let test_xpath_lexer () =
  let toks = Lexer.tokenize "a//b[c >= 10.5 and @id != 'x']" in
  let strs = List.map Lexer.token_to_string toks in
  check_strs "tokens"
    [ "a"; "//"; "b"; "["; "c"; ">="; "10.5"; "and"; "@"; "id"; "!="; "\"x\""; "]"; "<eof>" ]
    strs;
  (match Lexer.tokenize "!x" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "lone ! must fail");
  match Lexer.tokenize "'unterminated" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "unterminated string must fail"

(* --- xquery scanner ----------------------------------------------------- *)

let test_xq_scanner () =
  let s = Xut_xquery.Xq_scanner.of_string "let $x := 1 + 2 (: c :) return $x" in
  let rec drain acc =
    match Xut_xquery.Xq_scanner.next s with
    | Xut_xquery.Xq_scanner.EOF -> List.rev acc
    | tok -> drain (Xut_xquery.Xq_scanner.token_to_string tok :: acc)
  in
  check_strs "tokens" [ "let"; "$x"; ":="; "1."; "+"; "2."; "return"; "$x" ] (drain [])

(* --- normal forms ------------------------------------------------------- *)

let test_norm_to_string () =
  let n = Norm.steps (Parser.parse "a/./b[c]//d") in
  Alcotest.(check string) "printed" "a/b[c]//d" (Norm.to_string n)

let test_norm_roundtrip () =
  List.iter
    (fun src ->
      let p = Parser.parse src in
      let n = Norm.steps p in
      let back = Norm.to_path n in
      (* normalized path selects the same nodes *)
      let doc = Fixtures.parts_doc () in
      let ids l = List.map Xut_xml.Node.id l in
      Alcotest.(check (list int)) (src ^ " same selection")
        (ids (Eval.select_doc doc p))
        (ids (Eval.select_doc doc back)))
    [ "db/./part"; "//part[pname = 'keyboard']/."; "db//part//supplier"; "./db/part" ]

let test_label_blocked () =
  let b = Lq.create_builder () in
  let idx = Lq.add_qual b (Parser.parse_qual "supplier/sname = 'HP'") in
  let lq = Lq.freeze b in
  (* the first Child sub-expression is guarded by label 'supplier' *)
  let child_expr =
    match Lq.expr lq idx with Lq.Child p -> p | _ -> Alcotest.fail "expected Child"
  in
  Alcotest.(check bool) "blocked at part" true (Lq.label_blocked lq child_expr "part");
  Alcotest.(check bool) "open at supplier" false (Lq.label_blocked lq child_expr "supplier");
  Alcotest.(check bool) "printable" true (String.length (Lq.expr_to_string lq idx) > 0)

(* --- selecting NFA misc ------------------------------------------------- *)

let test_nfa_misc () =
  let nfa = Xut_automata.Selecting_nfa.of_path (Parser.parse "a//b[c]") in
  Alcotest.(check bool) "to_string mentions final" true
    (String.length (Xut_automata.Selecting_nfa.to_string nfa) > 0);
  Alcotest.(check bool) "label state consistent" true
    (Xut_automata.Selecting_nfa.consistent_at nfa 1 "a");
  Alcotest.(check bool) "label state inconsistent" false
    (Xut_automata.Selecting_nfa.consistent_at nfa 1 "b");
  Alcotest.(check bool) "desc state fits anything" true
    (Xut_automata.Selecting_nfa.consistent_at nfa 2 "zzz")

(* --- engine dispatch ----------------------------------------------------- *)

let test_engine_names () =
  List.iter
    (fun algo ->
      match Engine.of_string (Engine.name algo) with
      | Some a -> Alcotest.(check string) "roundtrip" (Engine.name algo) (Engine.name a)
      | None -> Alcotest.fail ("of_string failed for " ^ Engine.name algo))
    Engine.all;
  Alcotest.(check bool) "unknown rejected" true (Engine.of_string "quantum" = None)

(* --- escaping ------------------------------------------------------------ *)

let gen_wild_string =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 30))

let prop_escape_roundtrip =
  QCheck2.Test.make ~name:"wild text and attributes survive serialize/parse" ~count:500
    QCheck2.Gen.(pair gen_wild_string gen_wild_string)
    (fun (text, attr) ->
      let e =
        Xut_xml.Node.element ~attrs:[ ("a", attr) ] "r"
          (if text = "" then [] else [ Xut_xml.Node.Text text ])
      in
      let back = Xut_xml.Dom.parse_string ~keep_ws:true (Xut_xml.Serialize.element_to_string e) in
      Xut_xml.Node.attr back "a" = Some attr
      && Xut_xml.Node.text_content back = text)

let test_update_kind_helpers () =
  let p = Parser.parse "a/b" in
  let e = Xut_xml.Node.elem "x" [] in
  Alcotest.(check string) "insert" "insert" (Transform_ast.update_kind (Transform_ast.Insert (p, e)));
  Alcotest.(check string) "insert first" "insert"
    (Transform_ast.update_kind (Transform_ast.Insert_first (p, e)));
  Alcotest.(check string) "delete" "delete" (Transform_ast.update_kind (Transform_ast.Delete p));
  let q = Parser.parse "c/d" in
  List.iter
    (fun u ->
      Alcotest.(check bool) "with_path changes the path" true
        (Ast.equal_path q (Transform_ast.path (Transform_ast.with_path u q))))
    [ Transform_ast.Insert (p, e); Transform_ast.Insert_first (p, e); Transform_ast.Delete p;
      Transform_ast.Replace (p, e); Transform_ast.Rename (p, "z") ]

(* --- Fig. 2 rewriting text for every op ---------------------------------- *)

let test_rewrite_text_all_ops () =
  let doc = Fixtures.parts_doc () in
  List.iter
    (fun u ->
      let q = Transform_ast.make ~doc:"foo" u in
      let text = Xquery_rewrite.rewrite_to_string q in
      let prog = Xut_xquery.Xq_parser.parse text in
      let env = Xut_xquery.Xq_eval.env ~docs:[ ("foo", doc) ] ~context:doc () in
      let out = Xut_xquery.Xq_eval.value_to_element (Xut_xquery.Xq_eval.eval_program env prog) in
      let expected = Engine.transform Engine.Reference u doc in
      Alcotest.(check bool)
        ("rewritten text runs: " ^ Transform_ast.update_kind u)
        true
        (Xut_xml.Node.equal_element expected out))
    [ Transform_ast.Insert (Parser.parse "//part", Xut_xml.Node.elem "v" []);
      Transform_ast.Insert_first (Parser.parse "//part", Xut_xml.Node.elem "v" []);
      Transform_ast.Delete (Parser.parse "//price");
      Transform_ast.Replace (Parser.parse "//pname", Xut_xml.Node.elem "pname" [ Xut_xml.Node.text "x" ]);
      Transform_ast.Rename (Parser.parse "//supplier", "vendor") ]

let suite =
  [ Alcotest.test_case "xpath lexer" `Quick test_xpath_lexer;
    Alcotest.test_case "xquery scanner" `Quick test_xq_scanner;
    Alcotest.test_case "norm to_string" `Quick test_norm_to_string;
    Alcotest.test_case "norm roundtrip" `Quick test_norm_roundtrip;
    Alcotest.test_case "label_blocked" `Quick test_label_blocked;
    Alcotest.test_case "nfa misc" `Quick test_nfa_misc;
    Alcotest.test_case "engine names" `Quick test_engine_names;
    Alcotest.test_case "update kind helpers" `Quick test_update_kind_helpers;
    Alcotest.test_case "Fig. 2 text, all ops" `Quick test_rewrite_text_all_ops;
    QCheck_alcotest.to_alcotest prop_escape_roundtrip ]
