open Xut_xml

(** Synthetic XMark-style documents (the substitute for xmlgen; see
    DESIGN.md "Substitutions").

    The generator reproduces the auction-site schema shape of XMark
    [Schmidt et al., VLDB 2002] — regions/items, people/profiles, open
    and closed auctions, and the recursive parlist/listitem description
    structure with [emph]/[keyword] inline markup — together with the
    value distributions the Fig. 11 queries select on:

    - person ids ["person0"], ["person1"], ... (U2)
    - [profile/age] in 18..60, present with p=0.6 (U3)
    - [location = "United States"] with p=0.75 (U9)
    - [bidder/increase] in 1..30 (U7, U10), [initial], [reserve] (U8)
    - [annotation/happiness] in 0..29 (U7)
    - closed-auction descriptions nest parlists two deep with
      [text/emph/keyword] inside (U6)

    Element counts scale linearly with [factor], using XMark's own
    proportions (21750 items, 25500 persons, 12000 open and 9750 closed
    auctions at factor 1.0). *)

type counts = {
  items : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

val counts : factor:float -> counts

val generate : ?seed:int64 -> factor:float -> unit -> Node.element
(** Build the [site] document element.  Deterministic for a given
    [seed] (default 42) and [factor]. *)

val to_file : ?seed:int64 -> factor:float -> string -> unit
(** Generate and serialize to a file (streamed; used to create the large
    documents of the Fig. 14 experiment without holding the tree). *)

val events : ?seed:int64 -> factor:float -> (Sax.event -> unit) -> unit
(** Generate as a SAX event stream — [Start_document], the [site]
    document, [End_document] — without ever materializing the whole
    tree: each second-level subtree is built, walked and dropped.  Same
    seed/factor ⇒ the same document as {!generate}/{!to_file} (driving
    the events through {!Xut_xml.Serialize.Sink} reproduces the
    {!to_file} bytes).  Backs [xmark --stream]. *)
