open Xut_xml

type counts = {
  items : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

let counts ~factor =
  let scale base = max 2 (int_of_float (Float.round (float_of_int base *. factor))) in
  {
    items = scale 21750;
    persons = scale 25500;
    open_auctions = scale 12000;
    closed_auctions = scale 9750;
    categories = scale 1000;
  }

(* List.init does not specify evaluation order; the generator threads a
   PRNG through element construction, so order must be explicit. *)
let init_list n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let text s = Node.text s
let el = Node.elem
let leaf name s = el name [ text s ]

(* --- prose with inline markup ------------------------------------------- *)

(* adjacent text nodes would merge on a parse of the serialized form *)
let rec coalesce_text = function
  | Node.Text a :: Node.Text b :: rest -> coalesce_text (Node.Text (a ^ b) :: rest)
  | x :: rest -> x :: coalesce_text rest
  | [] -> []

let rec text_block rng ~emph_depth =
  (* a <text> element: words with optional <emph>/<keyword>/<bold> inlines *)
  let pieces = ref [] in
  let n_chunks = 1 + Prng.int rng 3 in
  for _ = 1 to n_chunks do
    pieces := text (Words.sentence rng (3 + Prng.int rng 8)) :: !pieces;
    if emph_depth > 0 && Prng.bool rng 0.6 then begin
      let inner =
        if Prng.bool rng 0.7 then
          el "emph" [ text (Words.sentence rng 2); el "keyword" [ text (Words.sentence rng 2) ] ]
        else el (if Prng.bool rng 0.5 then "keyword" else "bold") [ text (Words.sentence rng 2) ]
      in
      pieces := inner :: !pieces
    end
  done;
  el "text" (coalesce_text (List.rev !pieces))

and parlist rng ~depth ~emph_depth =
  let n_items = 1 + Prng.int rng 3 in
  let listitem _ =
    let body =
      if depth > 0 && Prng.bool rng 0.55 then parlist rng ~depth:(depth - 1) ~emph_depth
      else text_block rng ~emph_depth
    in
    el "listitem" [ body ]
  in
  el "parlist" (init_list n_items listitem)

let description rng ~rich =
  (* [rich] descriptions (closed-auction annotations) always nest a
     two-deep parlist whose inner texts carry emph/keyword, for U6/U7. *)
  let body =
    if rich then parlist rng ~depth:2 ~emph_depth:1
    else if Prng.bool rng 0.35 then parlist rng ~depth:(1 + Prng.int rng 2) ~emph_depth:1
    else text_block rng ~emph_depth:1
  in
  el "description" [ body ]

(* --- site sections ------------------------------------------------------ *)

let item rng ~id ~n_categories =
  let incategories =
    init_list (1 + Prng.int rng 2) (fun _ ->
        Node.elem ~attrs:[ ("category", Printf.sprintf "category%d" (Prng.int rng n_categories)) ]
          "incategory" [])
  in
  let mails =
    if Prng.bool rng 0.3 then
      [ el "mailbox"
          (init_list (1 + Prng.int rng 2) (fun _ ->
               el "mail"
                 [ leaf "from" (Prng.choose rng Words.first_names);
                   leaf "to" (Prng.choose rng Words.first_names);
                   leaf "date" (Printf.sprintf "%02d/%02d/2000" (1 + Prng.int rng 12) (1 + Prng.int rng 28));
                   text_block rng ~emph_depth:1 ]))
      ]
    else []
  in
  Node.elem ~attrs:[ ("id", Printf.sprintf "item%d" id) ] "item"
    ([ leaf "location" (if Prng.bool rng 0.75 then "United States" else Prng.choose rng Words.countries);
       leaf "quantity" (string_of_int (1 + Prng.int rng 5));
       leaf "name" (Words.sentence rng 3);
       leaf "payment" (Prng.choose rng Words.payment_kinds);
       description rng ~rich:false;
       el "shipping" [ text "Will ship internationally" ] ]
    @ incategories @ mails)

let regions rng ~n_items ~n_categories =
  let region_names = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |] in
  let buckets = Array.make (Array.length region_names) [] in
  for i = n_items - 1 downto 0 do
    let r = Prng.int rng (Array.length region_names) in
    buckets.(r) <- item rng ~id:i ~n_categories :: buckets.(r)
  done;
  el "regions" (Array.to_list (Array.mapi (fun i name -> el name buckets.(i)) region_names))

let person rng ~id =
  let name = Prng.choose rng Words.first_names ^ " " ^ Prng.choose rng Words.last_names in
  let address =
    if Prng.bool rng 0.5 then
      [ el "address"
          [ leaf "street" (Printf.sprintf "%d %s St" (1 + Prng.int rng 99) (Prng.choose rng Words.last_names));
            leaf "city" (Prng.choose rng Words.cities);
            leaf "country" (Prng.choose rng Words.countries);
            leaf "zipcode" (string_of_int (10000 + Prng.int rng 89999)) ]
      ]
    else []
  in
  let profile =
    if Prng.bool rng 0.85 then
      [ Node.elem
          ~attrs:[ ("income", Printf.sprintf "%d.%02d" (9000 + Prng.int rng 90000) (Prng.int rng 100)) ]
          "profile"
          ([ el "interest"
               [ text (Printf.sprintf "category%d" (Prng.int rng 100)) ] ]
          @ (if Prng.bool rng 0.4 then [ leaf "education" "Graduate School" ] else [])
          @ (if Prng.bool rng 0.5 then [ leaf "gender" (if Prng.bool rng 0.5 then "male" else "female") ] else [])
          @ [ leaf "business" (if Prng.bool rng 0.5 then "Yes" else "No") ]
          @ (if Prng.bool rng 0.6 then [ leaf "age" (string_of_int (18 + Prng.int rng 43)) ] else []))
      ]
    else []
  in
  Node.elem ~attrs:[ ("id", Printf.sprintf "person%d" id) ] "person"
    ([ leaf "name" name;
       leaf "emailaddress" (Printf.sprintf "mailto:%s@example.com" (String.map (function ' ' -> '.' | c -> c) name)) ]
    @ (if Prng.bool rng 0.4 then [ leaf "phone" (Printf.sprintf "+1 (%d) %d" (100 + Prng.int rng 899) (1000000 + Prng.int rng 8999999)) ] else [])
    @ address
    @ (if Prng.bool rng 0.3 then [ leaf "homepage" (Printf.sprintf "http://www.example.com/~person%d" id) ] else [])
    @ (if Prng.bool rng 0.3 then [ leaf "creditcard" (Printf.sprintf "%04d %04d %04d %04d" (Prng.int rng 10000) (Prng.int rng 10000) (Prng.int rng 10000) (Prng.int rng 10000)) ] else [])
    @ profile
    @ [ el "watches" [] ])

let people rng ~n_persons = el "people" (init_list n_persons (fun i -> person rng ~id:i))

let person_ref rng ~n_persons = Printf.sprintf "person%d" (Prng.int rng n_persons)

let annotation rng ~n_persons ~rich =
  el "annotation"
    [ Node.elem ~attrs:[ ("person", person_ref rng ~n_persons) ] "author" [];
      description rng ~rich;
      leaf "happiness" (string_of_int (Prng.int rng 30)) ]

let bidder rng ~n_persons =
  el "bidder"
    [ leaf "date" (Printf.sprintf "%02d/%02d/2001" (1 + Prng.int rng 12) (1 + Prng.int rng 28));
      leaf "time" (Printf.sprintf "%02d:%02d:%02d" (Prng.int rng 24) (Prng.int rng 60) (Prng.int rng 60));
      Node.elem ~attrs:[ ("person", person_ref rng ~n_persons) ] "personref" [];
      leaf "increase" (string_of_int (1 + Prng.int rng 30)) ]

let open_auction rng ~id ~n_persons ~n_items =
  let n_bidders = Prng.int rng 5 in
  Node.elem ~attrs:[ ("id", Printf.sprintf "open_auction%d" id) ] "open_auction"
    ([ leaf "initial" (Printf.sprintf "%d.%02d" (1 + Prng.int rng 100) (Prng.int rng 100)) ]
    @ (if Prng.bool rng 0.5 then [ leaf "reserve" (Printf.sprintf "%d.%02d" (20 + Prng.int rng 180) (Prng.int rng 100)) ] else [])
    @ init_list n_bidders (fun _ -> bidder rng ~n_persons)
    @ [ leaf "current" (Printf.sprintf "%d.%02d" (1 + Prng.int rng 300) (Prng.int rng 100)) ]
    @ (if Prng.bool rng 0.3 then [ leaf "privacy" "Yes" ] else [])
    @ [ Node.elem ~attrs:[ ("item", Printf.sprintf "item%d" (Prng.int rng n_items)) ] "itemref" [];
        Node.elem ~attrs:[ ("person", person_ref rng ~n_persons) ] "seller" [];
        annotation rng ~n_persons ~rich:false;
        leaf "quantity" (string_of_int (1 + Prng.int rng 5));
        leaf "type" (Prng.choose rng Words.auction_types);
        el "interval" [ leaf "start" "01/01/2001"; leaf "end" "12/31/2001" ] ])

let closed_auction rng ~n_persons ~n_items =
  el "closed_auction"
    [ Node.elem ~attrs:[ ("person", person_ref rng ~n_persons) ] "seller" [];
      Node.elem ~attrs:[ ("person", person_ref rng ~n_persons) ] "buyer" [];
      Node.elem ~attrs:[ ("item", Printf.sprintf "item%d" (Prng.int rng n_items)) ] "itemref" [];
      leaf "price" (Printf.sprintf "%d.%02d" (1 + Prng.int rng 400) (Prng.int rng 100));
      leaf "date" (Printf.sprintf "%02d/%02d/2001" (1 + Prng.int rng 12) (1 + Prng.int rng 28));
      leaf "quantity" (string_of_int (1 + Prng.int rng 5));
      leaf "type" (Prng.choose rng Words.auction_types);
      annotation rng ~n_persons ~rich:true ]

let categories rng ~n_categories =
  el "categories"
    (init_list n_categories (fun i ->
         Node.elem ~attrs:[ ("id", Printf.sprintf "category%d" i) ] "category"
           [ leaf "name" (Words.sentence rng 2); description rng ~rich:false ]))

let catgraph rng ~n_categories =
  el "catgraph"
    (init_list (max 1 (n_categories / 2)) (fun _ ->
         Node.elem
           ~attrs:
             [ ("from", Printf.sprintf "category%d" (Prng.int rng n_categories));
               ("to", Printf.sprintf "category%d" (Prng.int rng n_categories)) ]
           "edge" []))

let generate ?(seed = 42L) ~factor () =
  let rng = Prng.create seed in
  let c = counts ~factor in
  (* lets force the section order: list literals evaluate right-to-left,
     and the PRNG threads through construction *)
  let regions_e = regions rng ~n_items:c.items ~n_categories:c.categories in
  let categories_e = categories rng ~n_categories:c.categories in
  let catgraph_e = catgraph rng ~n_categories:c.categories in
  let people_e = people rng ~n_persons:c.persons in
  let open_e =
    el "open_auctions"
      (init_list c.open_auctions (fun i ->
           open_auction rng ~id:i ~n_persons:c.persons ~n_items:c.items))
  in
  let closed_e =
    el "closed_auctions"
      (init_list c.closed_auctions (fun _ ->
           closed_auction rng ~n_persons:c.persons ~n_items:c.items))
  in
  Node.element "site" [ regions_e; categories_e; catgraph_e; people_e; open_e; closed_e ]

let rec node_events h = function
  | Node.Element e ->
    h (Sax.Start_element (Node.name e, Node.attrs e));
    List.iter (node_events h) (Node.children e);
    h (Sax.End_element (Node.name e))
  | Node.Text s -> h (Sax.Characters s)
  | Node.Comment s -> h (Sax.Comment_event s)
  | Node.Pi (t, c) -> h (Sax.Pi_event (t, c))

let events ?(seed = 42L) ~factor handler =
  (* Same construction and rng consumption order as {!generate} /
     {!to_file}, but each second-level subtree is handed to [handler] as
     events and dropped — the whole document exists only as the event
     stream (regions still buffer their items per region, as the file
     writer does). *)
  let rng = Prng.create seed in
  let c = counts ~factor in
  let emit node = node_events handler node in
  let open_tag name = handler (Sax.Start_element (name, [])) in
  let close_tag name = handler (Sax.End_element name) in
  handler Sax.Start_document;
  open_tag "site";
  let region_names = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |] in
  let buckets = Array.make (Array.length region_names) [] in
  for i = c.items - 1 downto 0 do
    let r = Prng.int rng (Array.length region_names) in
    buckets.(r) <- item rng ~id:i ~n_categories:c.categories :: buckets.(r)
  done;
  open_tag "regions";
  Array.iteri
    (fun i name ->
      open_tag name;
      List.iter emit buckets.(i);
      close_tag name)
    region_names;
  close_tag "regions";
  emit (categories rng ~n_categories:c.categories);
  emit (catgraph rng ~n_categories:c.categories);
  open_tag "people";
  for i = 0 to c.persons - 1 do
    emit (person rng ~id:i)
  done;
  close_tag "people";
  open_tag "open_auctions";
  for i = 0 to c.open_auctions - 1 do
    emit (open_auction rng ~id:i ~n_persons:c.persons ~n_items:c.items)
  done;
  close_tag "open_auctions";
  open_tag "closed_auctions";
  for _ = 1 to c.closed_auctions do
    emit (closed_auction rng ~n_persons:c.persons ~n_items:c.items)
  done;
  close_tag "closed_auctions";
  close_tag "site";
  handler Sax.End_document

let to_file ?(seed = 42L) ~factor path =
  (* Streamed: each second-level subtree (item, person, auction, ...) is
     built, serialized and dropped, so document size is not bounded by
     memory.  The rng consumption order matches {!generate}, so the file
     holds the same document. *)
  let rng = Prng.create seed in
  let c = counts ~factor in
  Out_channel.with_open_bin path (fun oc ->
      let buf = Buffer.create (1 lsl 16) in
      let flush_buf () =
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      in
      let emit node =
        Serialize.to_buffer buf node;
        if Buffer.length buf > 1 lsl 16 then flush_buf ()
      in
      let open_tag name = Buffer.add_string buf ("<" ^ name ^ ">") in
      let close_tag name = Buffer.add_string buf ("</" ^ name ^ ">") in
      open_tag "site";
      (* regions: generate items in one pass, bucketed per region, exactly
         as [regions] does — region order requires buffering per region,
         so items are kept per-region as serialized strings *)
      let region_names = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |] in
      let buckets = Array.make (Array.length region_names) [] in
      for i = c.items - 1 downto 0 do
        let r = Prng.int rng (Array.length region_names) in
        let s = Serialize.to_string (item rng ~id:i ~n_categories:c.categories) in
        buckets.(r) <- s :: buckets.(r)
      done;
      open_tag "regions";
      Array.iteri
        (fun i name ->
          open_tag name;
          List.iter (fun s -> Buffer.add_string buf s) buckets.(i);
          flush_buf ();
          close_tag name)
        region_names;
      close_tag "regions";
      emit (categories rng ~n_categories:c.categories);
      emit (catgraph rng ~n_categories:c.categories);
      open_tag "people";
      for i = 0 to c.persons - 1 do
        emit (person rng ~id:i)
      done;
      close_tag "people";
      open_tag "open_auctions";
      for i = 0 to c.open_auctions - 1 do
        emit (open_auction rng ~id:i ~n_persons:c.persons ~n_items:c.items)
      done;
      close_tag "open_auctions";
      open_tag "closed_auctions";
      for _ = 1 to c.closed_auctions do
        emit (closed_auction rng ~n_persons:c.persons ~n_items:c.items)
      done;
      close_tag "closed_auctions";
      close_tag "site";
      flush_buf ())
