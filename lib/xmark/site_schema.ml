open Xut_schema

(* The regular tree grammar of the documents {!Generator} produces — the
   XMark `site` vocabulary.  Kept next to the generator so the two stay
   in sync: `dune runtest` validates a generated document against it. *)

let schema_name = "xmark"
let bench_schema_name = "xmark-bench"

let leaf n = (n, Schema.Empty)

let region r = (r, Schema.Star (Schema.Elem "item"))

(* [extra] widens selected productions — the bench variant allows its
   marker element wherever `bench-serve --write-depth` can insert it. *)
let decls ~extra =
  let open Schema in
  let e n = Elem n in
  let add name rx = match extra name with [] -> rx | more -> Alt (rx :: more) in
  [ ( "site",
      add "site"
        (Seq
           [ e "regions"; e "categories"; e "catgraph"; e "people"; e "open_auctions";
             e "closed_auctions" ]) );
    ("regions", Seq [ e "africa"; e "asia"; e "australia"; e "europe"; e "namerica"; e "samerica" ]);
    region "africa"; region "asia"; region "australia"; region "europe";
    region "namerica"; region "samerica";
    ( "item",
      Seq
        [ e "location"; e "quantity"; e "name"; e "payment"; e "description"; e "shipping";
          Plus (e "incategory"); Opt (e "mailbox") ] );
    ("mailbox", Plus (e "mail"));
    ("mail", Seq [ e "from"; e "to"; e "date"; e "text" ]);
    ("description", add "description" (Alt [ e "parlist"; e "text" ]));
    ("parlist", Plus (e "listitem"));
    ("listitem", Alt [ e "parlist"; e "text" ]);
    ("text", Star (Alt [ e "emph"; e "keyword"; e "bold" ]));
    ("emph", Opt (e "keyword"));
    ("categories", Star (e "category"));
    ("category", Seq [ e "name"; e "description" ]);
    ("catgraph", Star (e "edge"));
    ("people", Star (e "person"));
    ( "person",
      Seq
        [ e "name"; e "emailaddress"; Opt (e "phone"); Opt (e "address"); Opt (e "homepage");
          Opt (e "creditcard"); Opt (e "profile"); e "watches" ] );
    ("address", Seq [ e "street"; e "city"; e "country"; e "zipcode" ]);
    ("profile", Seq [ e "interest"; Opt (e "education"); Opt (e "gender"); e "business"; Opt (e "age") ]);
    ("open_auctions", add "open_auctions" (Star (e "open_auction")));
    ( "open_auction",
      add "open_auction"
        (Seq
           [ e "initial"; Opt (e "reserve"); Star (e "bidder"); e "current"; Opt (e "privacy");
             e "itemref"; e "seller"; e "annotation"; e "quantity"; e "type"; e "interval" ]) );
    ("bidder", Seq [ e "date"; e "time"; e "personref"; e "increase" ]);
    ("interval", Seq [ e "start"; e "end" ]);
    ("closed_auctions", Star (e "closed_auction"));
    ( "closed_auction",
      Seq
        [ e "seller"; e "buyer"; e "itemref"; e "price"; e "date"; e "quantity"; e "type";
          e "annotation" ] );
    ("annotation", add "annotation" (Seq [ e "author"; e "description"; e "happiness" ])) ]
  @ List.map leaf
      [ "location"; "quantity"; "name"; "payment"; "shipping"; "incategory"; "from"; "to";
        "date"; "keyword"; "bold"; "edge"; "emailaddress"; "phone"; "street"; "city";
        "country"; "zipcode"; "homepage"; "creditcard"; "interest"; "education"; "gender";
        "business"; "age"; "watches"; "initial"; "reserve"; "current"; "privacy"; "itemref";
        "seller"; "personref"; "time"; "increase"; "author"; "happiness"; "price"; "type";
        "start"; "end"; "buyer" ]

let build ~name ~extra ~extra_decls =
  match Schema.define ~name ~root:"site" (decls ~extra @ extra_decls) with
  | Ok s -> s
  | Error msg -> invalid_arg ("Site_schema: " ^ msg)

let schema = lazy (build ~name:schema_name ~extra:(fun _ -> []) ~extra_decls:[])

(* The bench marker element may land under any `bench-serve
   --write-depth` target (document element .. description). *)
let bench_marker = "xut_bench_promo"

let bench_schema =
  lazy
    (build ~name:bench_schema_name
       ~extra:(fun parent ->
         if
           List.mem parent
             [ "site"; "open_auctions"; "open_auction"; "annotation"; "description" ]
         then [ Schema.Star (Schema.Elem bench_marker) ]
         else [])
       ~extra_decls:[ leaf bench_marker ])

let register () =
  Schema.register (Lazy.force schema);
  Schema.register (Lazy.force bench_schema)
