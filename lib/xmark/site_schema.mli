open Xut_schema

(** The built-in regular-tree-grammar schema of the XMark [site]
    vocabulary — exactly the grammar {!Generator} produces, so
    generated documents always validate against it. *)

val schema_name : string
(** ["xmark"]. *)

val bench_schema_name : string
(** ["xmark-bench"]: {!schema} widened so the [bench-serve] marker
    element ({!bench_marker}) is allowed under every [--write-depth]
    insertion target — the variant the schema-enabled write benches
    load, keeping pruning alive across marker commits. *)

val bench_marker : string
(** ["xut_bench_promo"]. *)

val schema : Schema.t Lazy.t
val bench_schema : Schema.t Lazy.t

val register : unit -> unit
(** Put both schemas in the {!Xut_schema.Schema} registry (the CLI and
    the tests call this at startup). *)
