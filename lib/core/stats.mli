(** Lightweight instrumentation counters.

    The paper's claim that the automaton methods "traverse only the
    necessary part of the tree" is observable through these: each engine
    ticks [visited] per element it examines and [copied] per element it
    rebuilds.

    Counters are global and domain-safe: each domain ticks a private
    cell reached through [Domain.DLS] (no contention on the hot path),
    and the cells live in an [Atomic.t] registry that {!read} and
    {!reset} fold over.  Engines may therefore run on multiple domains
    concurrently — as the [Xut_service] worker pool does.  A {!read}
    taken while transforms are in flight aggregates the ticks of every
    domain; for the per-query breakdowns of the experiments, {!reset}
    and {!read} around a single-domain run as before. *)

type snapshot = { visited : int; copied : int; shared : int }

val reset : unit -> unit
val visit : unit -> unit
val copy : unit -> unit
val share : unit -> unit
(** An entire subtree was returned without inspection. *)

val read : unit -> snapshot
val pp : Format.formatter -> snapshot -> unit
