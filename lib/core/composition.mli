open Xut_xml
open Xut_xquery
open Xut_automata

(** Composing user and transform queries (Section 4).

    Given a transform query [Qt] and a user query [Q], the Compose Method
    produces one query [Qc] with [Qc(T) = Q(Qt(T))]: the selecting NFA of
    the embedded path is executed {e statically} over the steps of the
    user query's paths (treating them as words, via delta'), and only
    where a final state shows that the update can touch the data does the
    composed query invoke the runtime [topDown] helper
    ({!Top_down.transform_at}) on the — typically small — subtree at
    hand.  Everywhere else the user query's navigation runs untouched on
    the stored document: no copy, no full traversal.

    All update kinds compose.  Beyond the paper's detailed insert/delete
    cases, relabeling updates (replace, rename) are handled by widening
    the static simulation (a matched node can gain or lose a step's
    label, so label transitions become wildcards where a match is
    possible) and judging candidacy against the transformed view at run
    time; a '//' user step followed by further steps runs as a single
    product walk of the user-suffix NFA and the update NFA, preserving
    the set semantics and document order of path expressions.

    A composed plan is {e immutable and shareable}: the mutable runtime
    state its natives need (NFA state tables, transform memos) is
    instantiated afresh for every evaluation, so one cached plan can be
    evaluated concurrently on several domains. *)

type composed
(** A compiled composition: the rewritten expression plus a factory for
    its runtime natives. *)

val expr : composed -> Xq_ast.expr

val native_count : composed -> int
(** How many runtime helpers the composed expression references (0 when
    the update provably cannot touch the query's data). *)

val natives : composed -> (string * (Xq_value.t list -> Xq_value.t)) list
(** One fresh instantiation of the runtime helpers (no oracle). *)

val check_update : Transform_ast.update -> (Selecting_nfa.t, string) result
(** The update-side fragment check shared with view definition time:
    [Error reason] when the update path is empty, carries a context
    qualifier, or can only ever select the document element itself (a
    single child step, which no document makes legal to delete or
    replace); [Ok nfa] otherwise, with the update path's selecting
    NFA. *)

val compose : Transform_ast.update -> User_query.t -> (composed, string) result
(** [Error reason] when the pair falls outside the fragment (empty or
    context-qualified update paths, context-qualified user sources). *)

val compose_stack :
  Transform_ast.update list -> User_query.t -> (composed, string) result
(** Compose a {e chain} of updates (innermost — applied first — at the
    head) with a user query, so that the result over [T] equals the user
    query over [u_n(...(u_1(T)))].  An empty chain is the user query
    unchanged; a singleton delegates to {!compose}; longer chains run as
    one product walk maintaining every level's selecting-NFA state set
    simultaneously over the base tree. *)

val run_composed : ?oracle:Top_down.checkp -> composed -> doc:Node.element -> Xq_value.t
(** Evaluate with freshly instantiated natives.  [oracle], when given,
    answers qualifier checks for {e base-tree} nodes in O(1) (a memoized
    TD-BU annotation table for the innermost update's NFA); it is only
    ever consulted on nodes of [doc]. *)

val run : Transform_ast.update -> User_query.t -> doc:Node.element -> Xq_value.t
(** Compose if possible, otherwise fall back to {!naive}. *)

val naive : ?algo:Engine.algo -> Transform_ast.update -> User_query.t -> doc:Node.element -> Xq_value.t
(** The Naive Composition Method: evaluate the transform query first
    (with GENTOP by default, as in Section 7.2), then the user query on
    the materialized result. *)

val naive_stack :
  ?algo:Engine.algo -> Transform_ast.update list -> User_query.t -> doc:Node.element -> Xq_value.t
(** Materialize the chain (innermost first), then run the user query. *)

val to_string : composed -> string
(** The composed query as XQuery text ([xut:nav<i>]/[xut:pipe<i>]/
    [xut:fin<i>]/[xut:stack<i>] name the runtime helpers). *)
