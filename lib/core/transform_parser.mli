(** Parser for transform queries in the concrete syntax of Section 2:

    {v
    transform copy $a := doc("foo") modify
      do delete $a//supplier[country = "A"]/price
    return $a
    v}

    Inserted/replacement elements are XML literals parsed by the XML
    substrate; paths are parsed by the X parser. *)

exception Parse_error of string

val parse : string -> Transform_ast.t

val parse_update : string -> Transform_ast.update
(** Parse just an update expression, e.g.
    [insert <foo/> into $a/site/people]. *)

val parse_sequence : string -> string * string * Transform_ast.update list
(** Parse a transform query whose [modify do] clause may hold a
    parenthesized, comma-separated sequence of updates, applied left to
    right (see {!Sequence}).  Returns (variable, document name, updates);
    a single un-parenthesized update yields a one-element list. *)

val parse_updates : string -> Transform_ast.update list
(** The write-path query form: either a full transform query (parsed as
    {!parse_sequence}, document name ignored — the write request names
    the document itself), or a bare update / parenthesized update
    sequence over [$a] with an optional trailing [return $a].  Accepts
    everything {!parse_update} does, plus sequences. *)
