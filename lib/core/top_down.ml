open Xut_xml
open Xut_automata

type checkp = int -> Node.element -> bool

let direct_checkp nfa s n = Xut_xpath.Eval.check_qual n (Selecting_nfa.state_qual nfa s)

(* Rebuild element [e] from processed children, preserving physical
   sharing (and skipping the copy) when nothing below changed. *)
let rebuild_elem e kids =
  let unchanged =
    List.length kids = List.length (Node.children e)
    && List.for_all2 (fun a b -> a == b) kids (Node.children e)
  in
  if unchanged then Node.Element e
  else begin
    Stats.copy ();
    Node.Element (Node.element ~attrs:(Node.attrs e) (Node.name e) kids)
  end

let make_go ~checkp nfa update =
  let rec go (e : Node.element) states : Node.t list =
      Stats.visit ();
      let states' =
        Selecting_nfa.next nfa ~checkp:(fun s -> checkp s e) states (Node.sym e)
      in
      if Selecting_nfa.set_is_empty states' then begin
        Stats.share ();
        [ Node.Element e ]
      end
      else begin
        let matched = Selecting_nfa.accepts_set nfa states' in
        match update, matched with
        | Transform_ast.Delete _, true -> []
        | Transform_ast.Replace (_, enew), true ->
          Stats.copy ();
          [ Node.refresh_ids enew ]
        | (Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Rename _
          | Transform_ast.Delete _ | Transform_ast.Replace _), _ ->
          let kids =
            List.concat_map
              (function
                | Node.Element c -> go c states'
                | (Node.Text _ | Node.Comment _ | Node.Pi _) as other -> [ other ])
              (Node.children e)
          in
          if matched then Semantics.apply_matched update e ~kids
          else [ rebuild_elem e kids ]
      end
  in
  go

let run ?checkp nfa update root =
  let checkp = match checkp with Some f -> f | None -> direct_checkp nfa in
  if not (Semantics.ctx_holds nfa root) then root
  else if Selecting_nfa.selects_context nfa then Semantics.apply_at_root update root
  else begin
    let go = make_go ~checkp nfa update in
    match go root (Selecting_nfa.start nfa) with
    | [ Node.Element e ] -> e
    | [] -> raise (Transform_ast.Invalid_update "update deletes the document element")
    | [ _ ] | _ :: _ ->
      raise (Transform_ast.Invalid_update "update replaces the document element with a non-element")
  end

let transform_at ?checkp nfa update ~states (e : Node.element) : Node.t list =
  let checkp = match checkp with Some f -> f | None -> direct_checkp nfa in
  let go = make_go ~checkp nfa update in
  (* [states] comes from the static delta' simulation of the Compose
     Method: label consistency and qualifiers have not been checked yet,
     so settle both at [e] before deciding anything. *)
  let alive =
    Selecting_nfa.set_of_list nfa
      (Selecting_nfa.set_fold
         (fun s acc ->
           if
             Selecting_nfa.consistent_at_sym nfa s (Node.sym e)
             && ((not (Selecting_nfa.has_qual nfa s)) || checkp s e)
           then s :: acc
           else acc)
         states [])
  in
  if Selecting_nfa.set_is_empty alive then [ Node.Element e ]
  else begin
    let matched = Selecting_nfa.accepts_set nfa alive in
    match update, matched with
    | Transform_ast.Delete _, true -> []
    | Transform_ast.Replace (_, enew), true -> [ Node.refresh_ids enew ]
    | (Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Rename _
      | Transform_ast.Delete _ | Transform_ast.Replace _), _ ->
      let kids =
        List.concat_map
          (function
            | Node.Element c -> go c alive
            | (Node.Text _ | Node.Comment _ | Node.Pi _) as other -> [ other ])
          (Node.children e)
      in
      if matched then Semantics.apply_matched update e ~kids
      else [ rebuild_elem e kids ]
  end

let transform update root =
  let nfa = Selecting_nfa.of_path (Transform_ast.path update) in
  run nfa update root
