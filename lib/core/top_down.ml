open Xut_xml
open Xut_automata

type checkp = int -> Node.element -> bool

let direct_checkp nfa s n = Xut_xpath.Eval.check_qual n (Selecting_nfa.state_qual nfa s)

(* Rebuild element [e] from processed children, preserving physical
   sharing (and skipping the copy) when nothing below changed. *)
let rebuild_elem e kids =
  let unchanged =
    List.length kids = List.length (Node.children e)
    && List.for_all2 (fun a b -> a == b) kids (Node.children e)
  in
  if unchanged then Node.Element e
  else begin
    Stats.copy ();
    Node.Element (Node.element ~attrs:(Node.attrs e) (Node.name e) kids)
  end

let make_go ~checkp ?(skip = fun _ -> false) nfa update =
  let rec go (e : Node.element) states : Node.t list =
    if skip e then begin
      (* schema skip-set: no configuration at or below this symbol can
         accept, so the subtree is shared without running a transition *)
      Stats.share ();
      [ Node.Element e ]
    end
    else begin
      Stats.visit ();
      let states' =
        Selecting_nfa.next nfa ~checkp:(fun s -> checkp s e) states (Node.sym e)
      in
      if Selecting_nfa.set_is_empty states' then begin
        Stats.share ();
        [ Node.Element e ]
      end
      else begin
        let matched = Selecting_nfa.accepts_set nfa states' in
        match update, matched with
        | Transform_ast.Delete _, true -> []
        | Transform_ast.Replace (_, enew), true ->
          Stats.copy ();
          [ Node.refresh_ids enew ]
        | (Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Rename _
          | Transform_ast.Delete _ | Transform_ast.Replace _), _ ->
          let kids =
            List.concat_map
              (function
                | Node.Element c -> go c states'
                | (Node.Text _ | Node.Comment _ | Node.Pi _) as other -> [ other ])
              (Node.children e)
          in
          if matched then Semantics.apply_matched update e ~kids
          else [ rebuild_elem e kids ]
      end
    end
  in
  go

let run ?checkp ?skip nfa update root =
  let checkp = match checkp with Some f -> f | None -> direct_checkp nfa in
  if not (Semantics.ctx_holds nfa root) then root
  else if Selecting_nfa.selects_context nfa then Semantics.apply_at_root update root
  else begin
    let go = make_go ~checkp ?skip nfa update in
    match go root (Selecting_nfa.start nfa) with
    | [ Node.Element e ] -> e
    | [] -> raise (Transform_ast.Invalid_update "update deletes the document element")
    | [ _ ] | _ :: _ ->
      raise (Transform_ast.Invalid_update "update replaces the document element with a non-element")
  end

let transform_at ?checkp nfa update ~states (e : Node.element) : Node.t list =
  let checkp = match checkp with Some f -> f | None -> direct_checkp nfa in
  let go = make_go ~checkp nfa update in
  (* [states] comes from the static delta' simulation of the Compose
     Method: label consistency and qualifiers have not been checked yet,
     so settle both at [e] before deciding anything. *)
  let alive =
    Selecting_nfa.set_of_list nfa
      (Selecting_nfa.set_fold
         (fun s acc ->
           if
             Selecting_nfa.consistent_at_sym nfa s (Node.sym e)
             && ((not (Selecting_nfa.has_qual nfa s)) || checkp s e)
           then s :: acc
           else acc)
         states [])
  in
  if Selecting_nfa.set_is_empty alive then [ Node.Element e ]
  else begin
    let matched = Selecting_nfa.accepts_set nfa alive in
    match update, matched with
    | Transform_ast.Delete _, true -> []
    | Transform_ast.Replace (_, enew), true -> [ Node.refresh_ids enew ]
    | (Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Rename _
      | Transform_ast.Delete _ | Transform_ast.Replace _), _ ->
      let kids =
        List.concat_map
          (function
            | Node.Element c -> go c alive
            | (Node.Text _ | Node.Comment _ | Node.Pi _) as other -> [ other ])
          (Node.children e)
      in
      if matched then Semantics.apply_matched update e ~kids
      else [ rebuild_elem e kids ]
  end

let transform update root =
  let nfa = Selecting_nfa.of_path (Transform_ast.path update) in
  run nfa update root

(* ---------------- streaming emission ----------------

   The same top-down walk, but instead of rebuilding a result tree the
   output is pushed to a SAX sink as it is decided.  Untouched subtrees
   (empty state set) and inserted/replacement subtrees are emitted
   whole; everything else is a start-tag, the transformed children, an
   end-tag.  Mirrors [make_go] + [Semantics.apply_matched] arm for arm,
   so the byte stream a serializer sink produces is exactly the
   serialization of [run]'s result. *)

let emit_tree sink node =
  let rec go = function
    | Node.Element e ->
      sink (Sax.Start_element (Node.name e, Node.attrs e));
      List.iter go (Node.children e);
      sink (Sax.End_element (Node.name e))
    | Node.Text s -> sink (Sax.Characters s)
    | Node.Comment s -> sink (Sax.Comment_event s)
    | Node.Pi (t, c) -> sink (Sax.Pi_event (t, c))
  in
  go node

let stream ?checkp ?(skip = fun _ -> false) nfa update root sink =
  let checkp = match checkp with Some f -> f | None -> direct_checkp nfa in
  if not (Semantics.ctx_holds nfa root) then emit_tree sink (Node.Element root)
  else if Selecting_nfa.selects_context nfa then
    emit_tree sink (Node.Element (Semantics.apply_at_root update root))
  else begin
    let rec go (e : Node.element) states =
      if skip e then begin
        Stats.share ();
        emit_tree sink (Node.Element e)
      end
      else begin
      Stats.visit ();
      let states' =
        Selecting_nfa.next nfa ~checkp:(fun s -> checkp s e) states (Node.sym e)
      in
      if Selecting_nfa.set_is_empty states' then begin
        Stats.share ();
        emit_tree sink (Node.Element e)
      end
      else begin
        let matched = Selecting_nfa.accepts_set nfa states' in
        match update, matched with
        | Transform_ast.Delete _, true -> ()
        | Transform_ast.Replace (_, enew), true -> emit_tree sink enew
        | Transform_ast.Rename (_, l), true ->
          sink (Sax.Start_element (l, Node.attrs e));
          kids e states';
          sink (Sax.End_element l)
        | Transform_ast.Insert (_, enew), true ->
          sink (Sax.Start_element (Node.name e, Node.attrs e));
          kids e states';
          emit_tree sink enew;
          sink (Sax.End_element (Node.name e))
        | Transform_ast.Insert_first (_, enew), true ->
          sink (Sax.Start_element (Node.name e, Node.attrs e));
          emit_tree sink enew;
          kids e states';
          sink (Sax.End_element (Node.name e))
        | (Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Delete _
          | Transform_ast.Replace _ | Transform_ast.Rename _), false ->
          sink (Sax.Start_element (Node.name e, Node.attrs e));
          kids e states';
          sink (Sax.End_element (Node.name e))
      end
      end
    and kids e states' =
      List.iter
        (function
          | Node.Element c -> go c states'
          | (Node.Text _ | Node.Comment _ | Node.Pi _) as other -> emit_tree sink other)
        (Node.children e)
    in
    (* the document element needs the structural checks [run] applies to
       [go]'s result list — settled here before anything is emitted *)
    if skip root then begin
      Stats.share ();
      emit_tree sink (Node.Element root)
    end
    else begin
    Stats.visit ();
    let states' =
      Selecting_nfa.next nfa ~checkp:(fun s -> checkp s root)
        (Selecting_nfa.start nfa) (Node.sym root)
    in
    if Selecting_nfa.set_is_empty states' then begin
      Stats.share ();
      emit_tree sink (Node.Element root)
    end
    else begin
      let matched = Selecting_nfa.accepts_set nfa states' in
      match update, matched with
      | Transform_ast.Delete _, true ->
        raise (Transform_ast.Invalid_update "update deletes the document element")
      | Transform_ast.Replace (_, enew), true -> begin
        match enew with
        | Node.Element _ -> emit_tree sink enew
        | Node.Text _ | Node.Comment _ | Node.Pi _ ->
          raise
            (Transform_ast.Invalid_update
               "update replaces the document element with a non-element")
      end
      | Transform_ast.Rename (_, l), true ->
        sink (Sax.Start_element (l, Node.attrs root));
        kids root states';
        sink (Sax.End_element l)
      | Transform_ast.Insert (_, enew), true ->
        sink (Sax.Start_element (Node.name root, Node.attrs root));
        kids root states';
        emit_tree sink enew;
        sink (Sax.End_element (Node.name root))
      | Transform_ast.Insert_first (_, enew), true ->
        sink (Sax.Start_element (Node.name root, Node.attrs root));
        emit_tree sink enew;
        kids root states';
        sink (Sax.End_element (Node.name root))
      | (Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Delete _
        | Transform_ast.Replace _ | Transform_ast.Rename _), false ->
        sink (Sax.Start_element (Node.name root, Node.attrs root));
        kids root states';
        sink (Sax.End_element (Node.name root))
    end
    end
  end
