open Xut_xml
open Xut_xpath

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws c =
  while c.pos < String.length c.src && is_ws c.src.[c.pos] do
    c.pos <- c.pos + 1
  done

let is_word_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9') || ch = '_'

let peek_word c =
  skip_ws c;
  let start = c.pos in
  let n = String.length c.src in
  let stop = ref start in
  while !stop < n && is_word_char c.src.[!stop] do
    incr stop
  done;
  String.sub c.src start (!stop - start)

let read_word c =
  let w = peek_word c in
  c.pos <- c.pos + String.length w;
  w

let expect_word c w =
  let got = read_word c in
  if got <> w then fail "expected %S, found %S" w got

let expect_char c ch =
  skip_ws c;
  if c.pos >= String.length c.src || c.src.[c.pos] <> ch then
    fail "expected %C at offset %d" ch c.pos;
  c.pos <- c.pos + 1

let read_string_lit c =
  skip_ws c;
  let n = String.length c.src in
  if c.pos >= n || (c.src.[c.pos] <> '"' && c.src.[c.pos] <> '\'') then
    fail "expected a string literal at offset %d" c.pos;
  let quote = c.src.[c.pos] in
  let start = c.pos + 1 in
  let stop = ref start in
  while !stop < n && c.src.[!stop] <> quote do
    incr stop
  done;
  if !stop >= n then fail "unterminated string literal";
  c.pos <- !stop + 1;
  String.sub c.src start (!stop - start)

let read_var c =
  expect_char c '$';
  let w = read_word c in
  if w = "" then fail "expected a variable name after '$'";
  w

(* Extract a balanced XML element literal starting at the cursor and parse
   it.  Handles nested tags, self-closing tags, comments, CDATA and quoted
   attribute values. *)
let read_element c =
  skip_ws c;
  let n = String.length c.src in
  if c.pos >= n || c.src.[c.pos] <> '<' then fail "expected an XML element at offset %d" c.pos;
  let start = c.pos in
  let depth = ref 0 in
  let i = ref c.pos in
  let finished = ref false in
  let starts_with s p = p + String.length s <= n && String.sub c.src p (String.length s) = s in
  let skip_past term p =
    let rec go p =
      if p >= n then fail "unterminated %s in XML literal" term
      else if starts_with term p then p + String.length term
      else go (p + 1)
    in
    go p
  in
  while not !finished do
    if !i >= n then fail "unterminated XML element literal";
    if c.src.[!i] = '<' then begin
      if starts_with "<!--" !i then i := skip_past "-->" (!i + 4)
      else if starts_with "<![CDATA[" !i then i := skip_past "]]>" (!i + 9)
      else if starts_with "<?" !i then i := skip_past "?>" (!i + 2)
      else begin
        let closing = starts_with "</" !i in
        (* scan to the '>' ending this tag, skipping quoted attributes *)
        let p = ref (!i + 1) in
        let quote = ref '\000' in
        while
          !p < n
          && (!quote <> '\000' || c.src.[!p] <> '>')
        do
          (if !quote <> '\000' then begin
             if c.src.[!p] = !quote then quote := '\000'
           end
           else
             match c.src.[!p] with
             | '"' | '\'' -> quote := c.src.[!p]
             | _ -> ());
          incr p
        done;
        if !p >= n then fail "unterminated tag in XML literal";
        let self_closing = (not closing) && c.src.[!p - 1] = '/' in
        if closing then decr depth
        else if not self_closing then incr depth;
        i := !p + 1;
        if !depth = 0 then finished := true
      end
    end
    else incr i
  done;
  let literal = String.sub c.src start (!i - start) in
  c.pos <- !i;
  try Node.Element (Dom.parse_string ~keep_ws:false literal)
  with Sax.Parse_error { msg; _ } -> fail "bad XML element literal: %s" msg

(* Find the offset of keyword [kw] (word-delimited, outside string
   literals) at or after [pos]; end of input when absent. *)
let find_keyword c kw =
  let n = String.length c.src in
  let klen = String.length kw in
  let rec go p quote =
    if p >= n then n
    else if quote <> '\000' then go (p + 1) (if c.src.[p] = quote then '\000' else quote)
    else
      match c.src.[p] with
      | ('"' | '\'') as q -> go (p + 1) q
      | ch
        when ch = kw.[0]
             && p + klen <= n
             && String.sub c.src p klen = kw
             && (p = 0 || not (is_word_char c.src.[p - 1]))
             && (p + klen = n || not (is_word_char c.src.[p + klen])) ->
        p
      | _ -> go (p + 1) quote
  in
  go c.pos '\000'

(* Where does a path expression end?  At the stop keyword, or — inside an
   update sequence — at a top-level ',' or ')' (brackets, parentheses and
   string literals are tracked so qualifiers stay intact). *)
let find_path_end c ~stop =
  let kw_pos = find_keyword c stop in
  let n = String.length c.src in
  let rec go p depth quote =
    if p >= min kw_pos n then kw_pos
    else if quote <> '\000' then go (p + 1) depth (if c.src.[p] = quote then '\000' else quote)
    else
      match c.src.[p] with
      | ('"' | '\'') as q -> go (p + 1) depth q
      | '[' | '(' -> go (p + 1) (depth + 1) quote
      | ']' -> go (p + 1) (depth - 1) quote
      | ')' when depth = 0 -> p
      | ')' -> go (p + 1) (depth - 1) quote
      | ',' when depth = 0 -> p
      | _ -> go (p + 1) depth quote
  in
  go c.pos 0 '\000'

(* Parse "$a/path" or "$a//path" up to (not including) keyword [stop],
   a top-level ',' or a top-level ')'. *)
let read_var_path c ~var ~stop =
  let v = read_var c in
  if v <> var then fail "expected $%s, found $%s" var v;
  let stop_pos = find_path_end c ~stop in
  let path_src = String.sub c.src c.pos (stop_pos - c.pos) in
  c.pos <- stop_pos;
  let path_src = String.trim path_src in
  if path_src = "" then []
  else
    try Parser.parse path_src
    with Parser.Parse_error msg | Lexer.Lex_error { msg; _ } ->
      fail "bad XPath %S: %s" path_src msg

let rec parse_update_at c ~var =
  skip_ws c;
  match peek_word c with
  | "insert" ->
    expect_word c "insert";
    let e = read_element c in
    let first =
      if peek_word c = "as" then begin
        expect_word c "as";
        match read_word c with
        | "first" -> true
        | "last" -> false
        | w -> fail "expected 'first' or 'last', found %S" w
      end
      else false
    in
    expect_word c "into";
    let p = read_var_path c ~var ~stop:"return" in
    if first then Transform_ast.Insert_first (p, e) else Transform_ast.Insert (p, e)
  | "delete" ->
    expect_word c "delete";
    let p = read_var_path c ~var ~stop:"return" in
    Transform_ast.Delete p
  | "replace" ->
    expect_word c "replace";
    let p = read_var_path c ~var ~stop:"with" in
    expect_word c "with";
    let e = read_element c in
    Transform_ast.Replace (p, e)
  | "rename" ->
    expect_word c "rename";
    let p = read_var_path c ~var ~stop:"as" in
    expect_word c "as";
    let l = read_word c in
    if l = "" then fail "expected a label after 'as'";
    Transform_ast.Rename (p, l)
  | w -> fail "expected an update operation, found %S" w

(* "( u1, u2, ... )" — an update sequence, applied left to right. *)
and parse_updates_at c ~var =
  skip_ws c;
  if c.pos < String.length c.src && c.src.[c.pos] = '(' then begin
    expect_char c '(';
    let rec loop acc =
      let u = parse_update_at c ~var in
      skip_ws c;
      if c.pos < String.length c.src && c.src.[c.pos] = ',' then begin
        expect_char c ',';
        loop (u :: acc)
      end
      else begin
        expect_char c ')';
        List.rev (u :: acc)
      end
    in
    loop []
  end
  else [ parse_update_at c ~var ]

let parse_header c =
  expect_word c "transform";
  expect_word c "copy";
  let var = read_var c in
  skip_ws c;
  expect_char c ':';
  expect_char c '=';
  expect_word c "doc";
  expect_char c '(';
  let doc = read_string_lit c in
  expect_char c ')';
  expect_word c "modify";
  skip_ws c;
  if peek_word c = "do" then expect_word c "do";
  (var, doc)

let parse_footer c ~var =
  expect_word c "return";
  let v = read_var c in
  if v <> var then fail "transform must return $%s" var;
  skip_ws c;
  if c.pos < String.length c.src then fail "trailing input after transform query"

let parse_sequence src =
  let c = { src; pos = 0 } in
  let var, doc = parse_header c in
  let updates = parse_updates_at c ~var in
  parse_footer c ~var;
  (var, doc, updates)

let parse src =
  let c = { src; pos = 0 } in
  let var, doc = parse_header c in
  let update = parse_update_at c ~var in
  parse_footer c ~var;
  { Transform_ast.var; doc; update }

let parse_update src =
  let c = { src; pos = 0 } in
  let update = parse_update_at c ~var:"a" in
  skip_ws c;
  (* allow a trailing "return $a" for convenience *)
  if c.pos < String.length c.src then begin
    expect_word c "return";
    ignore (read_var c);
    skip_ws c;
    if c.pos < String.length c.src then fail "trailing input after update"
  end;
  update

let parse_updates src =
  let c = { src; pos = 0 } in
  skip_ws c;
  if peek_word c = "transform" then begin
    let var, _doc, updates = parse_sequence src in
    ignore var;
    updates
  end
  else begin
    let updates = parse_updates_at c ~var:"a" in
    skip_ws c;
    if c.pos < String.length c.src then begin
      expect_word c "return";
      ignore (read_var c);
      skip_ws c;
      if c.pos < String.length c.src then fail "trailing input after updates"
    end;
    updates
  end
