open Xut_xml
open Xut_xpath
open Xut_automata

exception Unsupported_streaming of string

type source = (Sax.event -> unit) -> unit

type run_stats = {
  max_stack_depth : int;
  truth_entries : int;
  elements_seen : int;
  skipped_subtrees : int;
  skipped_elements : int;
}

(* Ld: truth of top-level qualifier [lq] at the element with document-order
   number [seq].  Both passes number start-tags identically, so (seq, lq)
   is a faithful replacement for the paper's cursor ids. *)
module Truth = struct
  type t = (int * int, bool) Hashtbl.t

  let create () : t = Hashtbl.create 1024
  let set t seq lq v = Hashtbl.replace t (seq, lq) v
  let get t seq lq = try Hashtbl.find t (seq, lq) with Not_found -> false
end

(* ---------------- pass 1: SAX bottomUp ---------------- *)

type p1_frame = {
  states : Selecting_nfa.set;  (* unfiltered NFA states after this start-tag *)
  all_seeds : int list;
  candidates : int list;  (* child-seed candidates *)
  csat : bool array;
  text : Buffer.t;
  attrs : (string * string) list;
  name : string;
  seq : int;
}

let pass1 ~sskip nfa source truth =
  let lq = Selecting_nfa.lq nfa in
  let nlq = Lq.length lq in
  let stack : p1_frame list ref = ref [] in
  let skip = ref 0 in
  (* was the current skip episode opened by the schema oracle (as opposed
     to an empty state set)?  Episodes never nest, so one flag suffices. *)
  let schema_mode = ref false in
  let skipped_subtrees = ref 0 and skipped_elements = ref 0 in
  let seq = ref (-1) in
  let max_depth = ref 0 in
  let handle = function
    | Sax.Start_document | Sax.End_document | Sax.Comment_event _ | Sax.Pi_event _ -> ()
    | Sax.Start_element (name, attrs) ->
      incr seq;
      if !skip > 0 then begin
        incr skip;
        if !schema_mode then incr skipped_elements
      end
      else if sskip (Sym.intern name) then begin
        (* schema skip-set: seed-free below, so no truth entry the second
           pass could ask for originates here *)
        skip := 1;
        schema_mode := true;
        incr skipped_subtrees;
        incr skipped_elements
      end
      else begin
        let parent_states, parent_candidates =
          match !stack with
          | [] -> Selecting_nfa.start nfa, []
          | f :: _ -> f.states, f.candidates
        in
        let states = Selecting_nfa.next_unchecked nfa parent_states (Sym.intern name) in
        let kid_seeds =
          List.filter (fun p -> not (Lq.label_blocked lq p name)) parent_candidates
        in
        let top_quals =
          let qs = Selecting_nfa.set_inter states (Selecting_nfa.qual_states nfa) in
          if Selecting_nfa.set_is_empty qs then []
          else Selecting_nfa.set_fold (fun s acc -> Selecting_nfa.state_lq nfa s :: acc) qs []
        in
        let all_seeds = List.sort_uniq compare (kid_seeds @ top_quals) in
        if Selecting_nfa.set_is_empty states && all_seeds = [] then skip := 1
        else begin
          let candidates =
            if all_seeds = [] then [] else snd (Annotator.expand lq ~name all_seeds)
          in
          stack :=
            { states; all_seeds; candidates; csat = Array.make nlq false;
              text = Buffer.create 16; attrs; name; seq = !seq }
            :: !stack;
          max_depth := max !max_depth (List.length !stack)
        end
      end
    | Sax.Characters t -> (
      if !skip = 0 then
        match !stack with f :: _ -> Buffer.add_string f.text t | [] -> ())
    | Sax.End_element _ ->
      if !skip > 0 then begin
        decr skip;
        if !skip = 0 then schema_mode := false
      end
      else begin
        match !stack with
        | [] -> ()
        | f :: rest ->
          stack := rest;
          if f.all_seeds <> [] then begin
            let sat =
              Lq.eval_at lq ~name:f.name ~attrs:f.attrs ~text:(Buffer.contents f.text)
                ~csat:(fun i -> f.csat.(i)) ~wanted:f.all_seeds
            in
            Selecting_nfa.set_iter
              (fun s ->
                let i = Selecting_nfa.state_lq nfa s in
                Truth.set truth f.seq i sat.(i))
              (Selecting_nfa.set_inter f.states (Selecting_nfa.qual_states nfa));
            match rest with
            | parent :: _ ->
              for i = 0 to nlq - 1 do
                if sat.(i) then parent.csat.(i) <- true
              done
            | [] -> ()
          end
      end
  in
  source handle;
  !max_depth, !seq + 1, !skipped_subtrees, !skipped_elements

(* ---------------- pass 2: SAX topDown ---------------- *)

type p2_frame = { fstates : Selecting_nfa.set; out_name : string; matched : bool }

let emit_node sink node =
  let rec go = function
    | Node.Element e ->
      sink (Sax.Start_element (Node.name e, Node.attrs e));
      List.iter go (Node.children e);
      sink (Sax.End_element (Node.name e))
    | Node.Text s -> sink (Sax.Characters s)
    | Node.Comment s -> sink (Sax.Comment_event s)
    | Node.Pi (t, c) -> sink (Sax.Pi_event (t, c))
  in
  go node

let pass2 ~sskip nfa update source truth sink =
  let root_matched = Selecting_nfa.selects_context nfa in
  let stack : p2_frame list ref = ref [] in
  let skip = ref 0 in
  (* schema-skipped subtree being copied to the output verbatim: nothing
     below can match, so the events pass through with no transition run *)
  let verbatim = ref 0 in
  let verbatim_subtrees = ref 0 and verbatim_elements = ref 0 in
  let max_depth = ref 0 in
  let seq = ref (-1) in
  let produced_root = ref false in
  let handle = function
    | Sax.Start_document -> sink Sax.Start_document
    | Sax.End_document ->
      if not !produced_root then
        raise (Transform_ast.Invalid_update "update deletes the document element");
      sink Sax.End_document
    | Sax.Comment_event _ as ev ->
      if !verbatim > 0 then sink ev else if !skip = 0 && !stack <> [] then sink ev
    | Sax.Pi_event _ as ev ->
      if !verbatim > 0 then sink ev else if !skip = 0 && !stack <> [] then sink ev
    | Sax.Characters t ->
      if !verbatim > 0 then sink (Sax.Characters t)
      else if !skip = 0 && !stack <> [] then sink (Sax.Characters t)
    | Sax.Start_element (name, attrs) ->
      incr seq;
      if !skip > 0 then incr skip
      else if !verbatim > 0 then begin
        incr verbatim;
        incr verbatim_elements;
        sink (Sax.Start_element (name, attrs))
      end
      else if sskip (Sym.intern name) then begin
        if !stack = [] then produced_root := true;
        sink (Sax.Start_element (name, attrs));
        verbatim := 1;
        incr verbatim_subtrees;
        incr verbatim_elements
      end
      else begin
        let at_root = !stack = [] in
        let parent_states =
          match !stack with [] -> Selecting_nfa.start nfa | f :: _ -> f.fstates
        in
        let checkp s = Truth.get truth !seq (Selecting_nfa.state_lq nfa s) in
        let fstates = Selecting_nfa.next nfa ~checkp parent_states (Sym.intern name) in
        let matched = Selecting_nfa.accepts_set nfa fstates || (at_root && root_matched) in
        let push out_name =
          if at_root then produced_root := true;
          stack := { fstates; out_name; matched } :: !stack;
          max_depth := max !max_depth (List.length !stack)
        in
        match update, matched with
        | Transform_ast.Delete _, true ->
          if at_root then
            raise (Transform_ast.Invalid_update "update deletes the document element");
          skip := 1
        | Transform_ast.Replace (_, enew), true ->
          (match enew, at_root with
          | Node.Element _, _ | _, false -> ()
          | (Node.Text _ | Node.Comment _ | Node.Pi _), true ->
            raise
              (Transform_ast.Invalid_update
                 "update replaces the document element with a non-element"));
          if at_root then produced_root := true;
          emit_node sink enew;
          skip := 1
        | Transform_ast.Rename (_, l), true ->
          sink (Sax.Start_element (l, attrs));
          push l
        | Transform_ast.Insert_first (_, enew), true ->
          sink (Sax.Start_element (name, attrs));
          emit_node sink enew;
          push name
        | (Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Delete _
          | Transform_ast.Replace _ | Transform_ast.Rename _), _ ->
          sink (Sax.Start_element (name, attrs));
          push name
      end
    | Sax.End_element _ as ev ->
      if !skip > 0 then decr skip
      else if !verbatim > 0 then begin
        decr verbatim;
        sink ev
      end
      else begin
        match !stack with
        | [] -> ()
        | f :: rest ->
          stack := rest;
          (match update, f.matched with
          | Transform_ast.Insert (_, enew), true -> emit_node sink enew
          | _ -> ());
          sink (Sax.End_element f.out_name)
      end
  in
  source handle;
  (!max_depth, !seq + 1, !verbatim_subtrees, !verbatim_elements)

let check_ctx_qual nfa =
  match Selecting_nfa.ctx_qual nfa with
  | Ast.Q_true -> ()
  | q ->
    raise
      (Unsupported_streaming
         ("context qualifier [" ^ Ast.qual_to_string q ^ "] cannot be checked in streaming mode"))

let run ?(skip = fun _ -> false) nfa update ~source ~sink =
  check_ctx_qual nfa;
  let truth = Truth.create () in
  let max_depth, elements, skipped_subtrees, skipped_elements =
    pass1 ~sskip:skip nfa source truth
  in
  let _ = pass2 ~sskip:skip nfa update source truth sink in
  {
    max_stack_depth = max_depth;
    truth_entries = Hashtbl.length truth;
    elements_seen = elements;
    skipped_subtrees;
    skipped_elements;
  }

(* A plan is one-pass streamable iff the top-down run never needs the
   bottom-up truth table: no context qualifier and no qualifier-bearing
   NFA state.  Then pass 2 alone, over a single forward read of the
   input, is the whole transform — O(depth) memory. *)
let one_pass nfa =
  (match Selecting_nfa.ctx_qual nfa with Ast.Q_true -> true | _ -> false)
  && Selecting_nfa.set_is_empty (Selecting_nfa.qual_states nfa)

let run_once ?(skip = fun _ -> false) nfa update ~source ~sink =
  if not (one_pass nfa) then
    raise
      (Unsupported_streaming
         "plan has qualifiers: one-pass streaming needs the bottom-up pass");
  let truth = Truth.create () in
  let max_depth, elements, skipped_subtrees, skipped_elements =
    pass2 ~sskip:skip nfa update source truth sink
  in
  {
    max_stack_depth = max_depth;
    truth_entries = 0;
    elements_seen = elements;
    skipped_subtrees;
    skipped_elements;
  }

let transform update root =
  let nfa = Selecting_nfa.of_path (Transform_ast.path update) in
  let b = Dom.Builder.create () in
  let _ = run nfa update ~source:(Sax.events_of_tree root) ~sink:(Dom.Builder.handler b) in
  Dom.Builder.result b

let transform_file update ~src ~out =
  let nfa = Selecting_nfa.of_path (Transform_ast.path update) in
  run nfa update ~source:(fun h -> Sax.parse_file src h) ~sink:(Serialize.event_sink out)
