open Xut_xml
open Xut_automata

(** Algorithm [twoPassSAX] (Section 6): transform-query evaluation as two
    passes of SAX parsing, never materializing the document as a tree.

    Pass 1 integrates the bottom-up qualifier evaluation with parsing: a
    stack mirrors the open-element path, QualDP runs at each end-tag, and
    the truth of every top-level qualifier is recorded in the list [Ld],
    keyed by the document-order element number (our stand-in for the
    paper's cursor ids; see DESIGN.md).  Pass 2 replays the parse running
    the selecting NFA, consulting [Ld] for qualifier checks — pass 2 keeps
    both the unfiltered state sets (for cursor alignment with pass 1) and
    the filtered ones (for selection) — and emits the transformed document
    as an output event stream.

    Memory is bounded by the document depth times the query size, plus
    [Ld]. *)

exception Unsupported_streaming of string
(** Raised for context qualifiers (paths starting with a qualified '.'),
    which would require evaluating a qualifier at the virtual document
    node before any input is seen. *)

type source = (Sax.event -> unit) -> unit
(** Something that can replay the document's events, twice
    (e.g. [Sax.parse_file path] or [Sax.events_of_tree root]). *)

type run_stats = {
  max_stack_depth : int;  (** pass-1 peak stack size *)
  truth_entries : int;    (** size of Ld *)
  elements_seen : int;
  skipped_subtrees : int;  (** subtrees the schema skip-set pruned in pass 1 *)
  skipped_elements : int;  (** elements inside those subtrees (exact count) *)
}

val run :
  ?skip:(Sym.t -> bool) ->
  Selecting_nfa.t ->
  Transform_ast.update ->
  source:source ->
  sink:(Sax.event -> unit) ->
  run_stats
(** [skip], when given, is a schema skip-set oracle over element symbols
    ({!Xut_schema.Schema.skippable}): a [true] answer promises no node at
    or below such an element can be selected or contribute a qualifier
    truth, so pass 1 skips the subtree (no frames, no truth entries) and
    pass 2 copies its events to the sink verbatim, with no transitions.
    @raise Transform_ast.Invalid_update when the update deletes the
    document element. *)

val one_pass : Selecting_nfa.t -> bool
(** [one_pass nfa] is [true] when the compiled plan never consults the
    bottom-up truth table: the context qualifier is trivially true and no
    NFA state carries a qualifier.  Such plans are fully streamable in a
    single forward pass ({!run_once}) with O(depth) memory — the
    degenerate forest-transducer decomposition where the bottom-up
    automaton is empty. *)

val run_once :
  ?skip:(Sym.t -> bool) ->
  Selecting_nfa.t ->
  Transform_ast.update ->
  source:source ->
  sink:(Sax.event -> unit) ->
  run_stats
(** Fused single-pass transform: pass 2 alone over one reading of the
    input, for plans where {!one_pass} holds.  The [source] is consumed
    exactly once, so it may be a non-replayable stream (a socket, a
    pipe).  Returned stats have [truth_entries = 0]; [skipped_*] count
    the subtrees/elements copied verbatim under the schema skip-set.
    @raise Unsupported_streaming when [one_pass nfa] is [false].
    @raise Transform_ast.Invalid_update when the update deletes the
    document element. *)

val transform : Transform_ast.update -> Node.element -> Node.element
(** Run the streaming algorithm over an in-memory tree (events replayed
    from the tree, result rebuilt by the DOM builder) — the configuration
    used by the equivalence tests and the Fig. 12 bench. *)

val transform_file : Transform_ast.update -> src:string -> out:Buffer.t -> run_stats
(** Parse [src] twice and serialize the transformed document into [out]
    (the Fig. 14 configuration). *)
