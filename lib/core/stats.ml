type snapshot = { visited : int; copied : int; shared : int }

(* One mutable cell per domain, reached through domain-local storage, so
   the per-element ticks on the engines' hot paths never contend across
   domains.  Cells are registered in an atomic list the moment a domain
   first ticks; [read]/[reset] fold over the registry.  A domain's cell
   outlives it, so counts from joined workers stay visible. *)

type cell = { mutable visited : int; mutable copied : int; mutable shared : int }

let registry : cell list Atomic.t = Atomic.make []

let rec register c =
  let cur = Atomic.get registry in
  if not (Atomic.compare_and_set registry cur (c :: cur)) then register c

let key =
  Domain.DLS.new_key (fun () ->
      let c = { visited = 0; copied = 0; shared = 0 } in
      register c;
      c)

let cell () = Domain.DLS.get key

let visit () =
  let c = cell () in
  c.visited <- c.visited + 1

let copy () =
  let c = cell () in
  c.copied <- c.copied + 1

let share () =
  let c = cell () in
  c.shared <- c.shared + 1

let reset () =
  List.iter
    (fun c ->
      c.visited <- 0;
      c.copied <- 0;
      c.shared <- 0)
    (Atomic.get registry)

let read () =
  List.fold_left
    (fun (acc : snapshot) c ->
      {
        visited = acc.visited + c.visited;
        copied = acc.copied + c.copied;
        shared = acc.shared + c.shared;
      })
    { visited = 0; copied = 0; shared = 0 }
    (Atomic.get registry)

let pp ppf (s : snapshot) =
  Format.fprintf ppf "visited=%d copied=%d shared=%d" s.visited s.copied s.shared
