open Xut_xml
open Xut_automata

(** Algorithm [topDown] (Section 3.3, Fig. 3).

    A single top-down pass runs the selecting NFA while rebuilding the
    tree; subtrees where the state set empties are returned {e shared},
    without inspection — the pruning that separates this method from the
    Naive one.  Qualifier checking is pluggable: the default consults the
    direct evaluator at each node (the GENTOP configuration, where the
    "host engine" evaluates qualifiers natively); the Two-pass method
    passes the O(1) oracle from {!Xut_automata.Annotator} instead. *)

type checkp = int -> Node.element -> bool
(** [checkp s n]: does the qualifier of NFA state [s] hold at [n]? *)

val direct_checkp : Selecting_nfa.t -> checkp
(** Qualifier evaluation by the direct evaluator (GENTOP). *)

val run :
  ?checkp:checkp ->
  ?skip:(Node.element -> bool) ->
  Selecting_nfa.t ->
  Transform_ast.update ->
  Node.element ->
  Node.element
(** Evaluate the transform query whose embedded path built [nfa].
    [skip], when given, is a schema skip-set oracle
    ({!Xut_schema.Schema.skippable} over a validated document): a [true]
    answer promises no node at or below the argument can be selected, so
    the subtree is shared without running any transition.
    @raise Transform_ast.Invalid_update as {!Semantics.apply}. *)

val transform : Transform_ast.update -> Node.element -> Node.element
(** Convenience: build the NFA from the update's path and {!run} with the
    direct oracle. *)

val stream :
  ?checkp:checkp ->
  ?skip:(Node.element -> bool) ->
  Selecting_nfa.t ->
  Transform_ast.update ->
  Node.element ->
  (Sax.event -> unit) ->
  unit
(** The same walk as {!run}, but the result is pushed to a SAX sink as
    it is decided instead of being rebuilt as a tree: untouched subtrees
    (empty state set) and inserted/replacement subtrees are replayed
    whole, matched nodes get their update applied in event space.  Fed
    into {!Xut_xml.Serialize.Sink} this is the zero-materialization
    result path: the byte stream equals the serialization of {!run}'s
    result, with no output tree and no monolithic output string.
    @raise Transform_ast.Invalid_update as {!run} — before any event of
    the offending construct is emitted at the root, but possibly after
    earlier output (the mid-stream error case transports must carry). *)

val transform_at :
  ?checkp:checkp ->
  Selecting_nfa.t ->
  Transform_ast.update ->
  states:Selecting_nfa.set ->
  Node.element ->
  Node.t list
(** The runtime [topDown(Mp, S, Qt, $z)] helper of the Compose Method
    (Section 4): apply the update at and below a node reached with the
    statically computed state set [states] (qualifiers are checked here,
    since delta' cannot).  Returns the transformed forest — empty when a
    matched delete erases the node itself. *)
