open Xut_xml
open Xut_xpath
open Xut_automata
open Xut_xquery

(* A composed plan separates the shareable compile-time product (the
   expression and the pure data the natives need) from per-evaluation
   runtime state (state tables, transform memos).  [make] instantiates
   fresh native closures for one evaluation, so a composed plan cached
   across service requests can be evaluated concurrently on several
   domains without sharing mutable tables. *)
type composed = {
  expr : Xq_ast.expr;
  make : Top_down.checkp option -> (string * (Xq_value.t list -> Xq_value.t)) list;
  native_count : int;
}

let expr c = c.expr
let native_count c = c.native_count
let natives c = c.make None

(* ---------------- static simulation (delta', Section 4) ---------------- *)

type chunk = { desc : bool; nav : Norm.nnav; quals : Ast.qual list }

let chunkify (norm : Norm.t) : (chunk list, string) result =
  if norm.ctx_quals <> [] then Error "context qualifiers in the user source path"
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | { Norm.nav = Norm.N_desc; quals = _ }
        :: ({ Norm.nav = Norm.N_label _ | Norm.N_wild; _ } as s)
        :: rest ->
        go ({ desc = true; nav = s.Norm.nav; quals = s.Norm.quals } :: acc) rest
      | { Norm.nav = Norm.N_desc; _ } :: _ -> Error "trailing descendant step"
      | ({ Norm.nav = Norm.N_label _ | Norm.N_wild; _ } as s) :: rest ->
        go ({ desc = false; nav = s.Norm.nav; quals = s.Norm.quals } :: acc) rest
    in
    go [] norm.steps
  end

let chunk_path (c : chunk) ~quals : Ast.path =
  let nav =
    match c.nav with
    | Norm.N_label l -> Ast.Label l
    | Norm.N_wild -> Ast.Wildcard
    | Norm.N_desc -> assert false
  in
  let step = { Ast.nav; quals } in
  if c.desc then [ Ast.step Ast.Descendant; step ] else [ step ]

let step_sim nfa s (c : chunk) =
  let s = if c.desc then Selecting_nfa.next_on_desc_set nfa s else s in
  match c.nav with
  | Norm.N_label l -> Selecting_nfa.next_on_label_set nfa s (Sym.intern l)
  | Norm.N_wild -> Selecting_nfa.next_on_any_set nfa s
  | Norm.N_desc -> assert false

(* States reachable at strict descendants of a node holding [s]. *)
let below nfa s = Selecting_nfa.next_on_desc_set nfa (Selecting_nfa.next_on_any_set nfa s)

(* Can the update touch a strict descendant of a node holding [s]?
   (For insert, matching [s] itself also changes the subtree.) *)
let subtree_affected nfa update s =
  Selecting_nfa.accepts_set nfa (below nfa s)
  || (match update with
     | Transform_ast.Insert _ | Transform_ast.Insert_first _ -> Selecting_nfa.accepts_set nfa s
     | _ -> false)

(* The state set after navigating [path] from [s] (delta', unchecked). *)
let end_set nfa s (path : Ast.path) =
  List.fold_left
    (fun s ({ Ast.nav; _ } : Ast.step) ->
      match nav with
      | Ast.Self -> s
      | Ast.Label l -> Selecting_nfa.next_on_label_set nfa s (Sym.intern l)
      | Ast.Wildcard -> Selecting_nfa.next_on_any_set nfa s
      | Ast.Descendant -> below nfa s)
    s path

(* Does the update change the labels of the nodes it matches?  Such
   updates can make label-based steps match where the original document
   does not (and vice versa), so their static simulation must widen
   label transitions to wildcards. *)
let relabels = function
  | Transform_ast.Replace _ | Transform_ast.Rename _ -> true
  | Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Delete _ -> false

(* Would evaluating a path rooted at a node with states [s] see different
   data on Qt(T) than on T? *)
let rec path_affected nfa update s (path : Ast.path) =
  let insert =
    match update with Transform_ast.Insert _ | Transform_ast.Insert_first _ -> true | _ -> false
  in
  let widen = relabels update in
  let rec go s = function
    | [] -> false
    | ({ Ast.nav; quals } : Ast.step) :: rest ->
      (* an insert at the current node can add content the next step matches *)
      if insert && Selecting_nfa.accepts_set nfa s then true
      else begin
        let s' =
          match nav with
          | Ast.Self -> s
          | Ast.Label l ->
            if widen then Selecting_nfa.next_on_any_set nfa s
            else Selecting_nfa.next_on_label_set nfa s (Sym.intern l)
          | Ast.Wildcard -> Selecting_nfa.next_on_any_set nfa s
          | Ast.Descendant -> below nfa s
        in
        if Selecting_nfa.accepts_set nfa s' && nav <> Ast.Self then true
        else if List.exists (qual_affected nfa update s') quals then true
        else go s' rest
      end
  in
  go s path

and qual_affected nfa update s (q : Ast.qual) =
  match q with
  | Ast.Q_true | Ast.Q_label _ -> false
  | Ast.Q_and (a, b) | Ast.Q_or (a, b) ->
    qual_affected nfa update s a || qual_affected nfa update s b
  | Ast.Q_not a -> qual_affected nfa update s a
  | Ast.Q_exists { spath; sattr = _ } | Ast.Q_cmp ({ spath; sattr = _ }, _, _) -> (
    match update, spath with
    | (Transform_ast.Insert _ | Transform_ast.Insert_first _), _ :: _
      when Selecting_nfa.accepts_set nfa s ->
      true
    | _ -> path_affected nfa update s spath)

(* Do the where/return clauses of [uq] see different data on Qt(T) for a
   binding holding state set [s] of the update's NFA? *)
let output_affected nfa update (uq : User_query.t) s =
  let operand_affected = function
    | User_query.Const _ -> false
    | User_query.Rel (p, _) -> (
      match update, p with
      | (Transform_ast.Insert _ | Transform_ast.Insert_first _), _ :: _
        when Selecting_nfa.accepts_set nfa s ->
        true
      | _ -> path_affected nfa update s p)
  in
  List.exists
    (fun { User_query.left; right; _ } -> operand_affected left || operand_affected right)
    uq.User_query.conds
  ||
  let rec hole_affected = function
    | User_query.T_elem (_, _, cs) -> List.exists hole_affected cs
    | User_query.T_text _ -> false
    | User_query.T_hole ([], None) -> subtree_affected nfa update s
    | User_query.T_hole (p, attr) -> (
      match update, p with
      | Transform_ast.Insert _, _ :: _ when Selecting_nfa.accepts_set nfa s -> true
      | _ ->
        path_affected nfa update s p
        || (attr = None && subtree_affected nfa update (end_set nfa s p)))
  in
  hole_affected uq.User_query.template

(* ---------------- runtime navigation (the nav natives) ---------------- *)

(* The nav natives walk the original tree running the selecting NFA with
   exact, qualifier-checked state sets, so that:
   - bindings inside deleted regions are skipped,
   - a binding that is itself updated is returned transformed,
   - bindings inside content inserted along a '//' descent are found,
   - a surviving binding's exact state set is remembered (keyed by
     element id) for the next chunk's native and for the final template
     wrap ([xut:fin]). *)

type runtime = {
  nfa : Selecting_nfa.t;
  update : Transform_ast.update;
  (* O(1) qualifier oracle over the base tree (a memoized TD-BU
     annotation table), when the caller has one.  Only ever consulted on
     nodes of the original stored tree. *)
  oracle : Top_down.checkp option;
  state_tbl : (int, Selecting_nfa.set) Hashtbl.t;
  (* transforming the same node twice must yield the same physical
     result, so that duplicate bindings reached along different '//'
     routes stay identity-equal (and get deduplicated) *)
  transform_memo : (int, Node.t list) Hashtbl.t;
}

let checkp_direct rt s n =
  match rt.oracle with
  | Some f -> f s n
  | None -> Eval.check_qual n (Selecting_nfa.state_qual rt.nfa s)

let transformed_view rt states e =
  match Hashtbl.find_opt rt.transform_memo (Node.id e) with
  | Some ts -> ts
  | None ->
    let ts = Top_down.transform_at ?checkp:rt.oracle rt.nfa rt.update ~states e in
    Hashtbl.replace rt.transform_memo (Node.id e) ts;
    ts

(* Do the chunk's user qualifiers hold for this binding, as seen on
   Qt(T)?  [view] materializes the transformed subtree on demand. *)
let quals_hold rt states quals (e : Node.element) =
  let lazy_view = lazy (transformed_view rt states e) in
  List.for_all
    (fun q ->
      if qual_affected rt.nfa rt.update states q then
        match Lazy.force lazy_view with
        | [ Node.Element t ] -> Eval.check_qual t q
        | _ -> false
      else Eval.check_qual e q)
    quals

let chunk_matches (c : chunk) name =
  match c.nav with Norm.N_label l -> String.equal l name | Norm.N_wild -> true | Norm.N_desc -> false

(* Collect candidates inside a constant (inserted) subtree: no states,
   qualifiers evaluated directly. *)
let scan_const_tree (c : chunk) (quals_ok : Node.element -> bool) (root : Node.element) emit =
  let rec go e =
    List.iter
      (fun child ->
        if chunk_matches c (Node.name child) && quals_ok child then emit (Node.Element child);
        if c.desc then go child)
      (Node.child_elements e)
  in
  go root

(* Where a nav native finds the exact state set of its anchor: a static
   hint (sound until the first '//' chunk, with anchor qualifiers checked
   at run time) or the table filled by an upstream native. *)
type anchor_source = Src_hint of Selecting_nfa.set | Src_table

let nav_chunk rt (c : chunk) ~(src : anchor_source) (anchor : Xq_value.item) : Xq_value.t =
  let out = ref [] in
  let emit n = out := Xq_value.N n :: !out in
  let const_quals_ok child = List.for_all (fun q -> Eval.check_qual child q) c.quals in
  (* could the update's new content itself supply bindings for this chunk? *)
  let update_content_can_bind =
    match rt.update with
    | Transform_ast.Delete _ -> false
    | Transform_ast.Rename (_, l) -> chunk_matches c l
    | Transform_ast.Insert (_, e) | Transform_ast.Insert_first (_, e) | Transform_ast.Replace (_, e)
      ->
      let rec any = function
        | Node.Element el ->
          chunk_matches c (Node.name el) || List.exists any (Node.children el)
        | Node.Text _ | Node.Comment _ | Node.Pi _ -> false
      in
      any e
  in
  (* visit a child [child] whose parent holds exact set [s] *)
  let rec visit s child =
    let sc =
      Selecting_nfa.next rt.nfa
        ~checkp:(fun st -> checkp_direct rt st child)
        s (Node.sym child)
    in
    let matched = Selecting_nfa.accepts_set rt.nfa sc in
    let is_candidate = chunk_matches c (Node.name child) in
    match rt.update, matched with
    | Transform_ast.Delete _, true -> ()  (* the region is gone *)
    | (Transform_ast.Insert _ | Transform_ast.Insert_first _), true ->
      (* the binding keeps its name; materialize its transformed view
         only when something is actually emitted from it — qualifiers
         the update cannot affect filter first *)
      let lazy_ts = lazy (transformed_view rt sc child) in
      let binding =
        is_candidate
        && List.for_all
             (fun q ->
               if qual_affected rt.nfa rt.update sc q then
                 match Lazy.force lazy_ts with
                 | [ Node.Element t ] -> Eval.check_qual t q
                 | _ -> false
               else Eval.check_qual child q)
             c.quals
      in
      if binding then
        List.iter
          (fun t -> match t with Node.Element _ -> emit t | _ -> ())
          (Lazy.force lazy_ts);
      (* nested candidates: from the transformed content when it was
         materialized (or when the new content could itself bind),
         otherwise from the original subtree *)
      if c.desc then
        if Lazy.is_val lazy_ts || update_content_can_bind then
          List.iter
            (fun t ->
              match t with
              | Node.Element te -> scan_const_tree c const_quals_ok te emit
              | Node.Text _ | Node.Comment _ | Node.Pi _ -> ())
            (Lazy.force lazy_ts)
        else List.iter (visit sc) (Node.child_elements child)
    | (Transform_ast.Replace _ | Transform_ast.Rename _), true ->
      (* labels change: candidacy and qualifiers are judged on the
         transformed view, which replaces the original subtree *)
      let ts = transformed_view rt sc child in
      List.iter
        (fun t ->
          match t with
          | Node.Element te ->
            if chunk_matches c (Node.name te) && const_quals_ok te then emit t
          | Node.Text _ | Node.Comment _ | Node.Pi _ -> ())
        ts;
      if c.desc then
        List.iter
          (fun t ->
            match t with
            | Node.Element te -> scan_const_tree c const_quals_ok te emit
            | Node.Text _ | Node.Comment _ | Node.Pi _ -> ())
          ts
    | (Transform_ast.Delete _ | Transform_ast.Insert _ | Transform_ast.Insert_first _
      | Transform_ast.Replace _ | Transform_ast.Rename _), false ->
      if is_candidate && quals_hold rt sc c.quals child then begin
        if Selecting_nfa.accepts_set rt.nfa (below rt.nfa sc) || not (Selecting_nfa.set_is_empty sc)
        then Hashtbl.replace rt.state_tbl (Node.id child) sc;
        emit (Node.Element child)
      end;
      if c.desc && not (Selecting_nfa.set_is_empty sc) then
        List.iter (visit sc) (Node.child_elements child)
      else if c.desc then plain_descend child
  and plain_descend e =
    (* no live states below: pure navigation *)
    List.iter
      (fun child ->
        if chunk_matches c (Node.name child) && const_quals_ok child then
          emit (Node.Element child);
        plain_descend child)
      (Node.child_elements e)
  in
  let plain_children e =
    List.iter
      (fun child ->
        if chunk_matches c (Node.name child) && const_quals_ok child then
          emit (Node.Element child))
      (Node.child_elements e)
  in
  let from_states e states =
    (* static hints have unchecked labels/qualifiers: settle them at the
       anchor *)
    let alive =
      Selecting_nfa.set_of_list rt.nfa
        (Selecting_nfa.set_fold
           (fun s acc ->
             if
               Selecting_nfa.consistent_at_sym rt.nfa s (Node.sym e)
               && ((not (Selecting_nfa.has_qual rt.nfa s)) || checkp_direct rt s e)
             then s :: acc
             else acc)
           states [])
    in
    if Selecting_nfa.set_is_empty alive then if c.desc then plain_descend e else plain_children e
    else List.iter (visit alive) (Node.child_elements e)
  in
  (match anchor with
  | Xq_value.D root -> visit (Selecting_nfa.start rt.nfa) root
  | Xq_value.N (Node.Element e) -> (
    match src with
    | Src_hint states -> from_states e states
    | Src_table -> (
      match Hashtbl.find_opt rt.state_tbl (Node.id e) with
      | Some s -> List.iter (visit s) (Node.child_elements e)
      | None ->
        (* already transformed (or out of reach): pure navigation *)
        if c.desc then plain_descend e else plain_children e))
  | Xq_value.N _ | Xq_value.A _ | Xq_value.S _ | Xq_value.F _ | Xq_value.B _ ->
    raise (Xq_value.Type_error "navigation over a non-element"));
  List.rev !out

(* A '//' chunk followed by further steps cannot be decomposed into
   nested for-clauses without breaking the set semantics (nested bindings
   reach the same node along several routes, in non-document order).
   Instead, one native runs the {e product} of the user-suffix NFA and
   the update NFA in a single pre-order walk: bindings come out exactly
   once, in document order, transformed where the update touches them. *)
let pipe_chunks rt (chunks : chunk list) (start_states : Selecting_nfa.set option)
    (root_children : Node.t list) emit =
  let suffix_path = List.concat_map (fun c -> chunk_path c ~quals:c.quals) chunks in
  let unfa = Selecting_nfa.of_path suffix_path in
  (* walk inside already-transformed (constant) content: user NFA only *)
  let rec walk_const uc node =
    match node with
    | Node.Element e ->
      List.iter
        (fun child ->
          match child with
          | Node.Element ce ->
            let uc' =
              Selecting_nfa.next unfa
                ~checkp:(fun s -> Eval.check_qual ce (Selecting_nfa.state_qual unfa s))
                uc (Node.sym ce)
            in
            if Selecting_nfa.accepts_set unfa uc' then emit (Node.Element ce);
            if not (Selecting_nfa.set_is_empty uc') then walk_const uc' child
          | Node.Text _ | Node.Comment _ | Node.Pi _ -> ())
        (Node.children e)
    | Node.Text _ | Node.Comment _ | Node.Pi _ -> ()
  in
  let rec walk ustates sstates (children : Node.t list) =
    List.iter
      (fun child ->
        match child with
        | Node.Text _ | Node.Comment _ | Node.Pi _ -> ()
        | Node.Element ce -> (
          let sc =
            match sstates with
            | None -> None
            | Some s ->
              Some
                (Selecting_nfa.next rt.nfa
                   ~checkp:(fun st -> checkp_direct rt st ce)
                   s (Node.sym ce))
          in
          let matched =
            match sc with Some s -> Selecting_nfa.accepts_set rt.nfa s | None -> false
          in
          match rt.update, matched with
          | Transform_ast.Delete _, true -> ()  (* region gone: no bindings inside *)
          | (Transform_ast.Replace _ | Transform_ast.Rename _), true ->
            (* the node's label changes: run the user NFA against the
               transformed view (which is all that exists on Qt(T)) *)
            List.iter
              (fun t ->
                match t with
                | Node.Element te ->
                  let uct =
                    Selecting_nfa.next unfa
                      ~checkp:(fun s -> Eval.check_qual te (Selecting_nfa.state_qual unfa s))
                      ustates (Node.sym te)
                  in
                  if Selecting_nfa.accepts_set unfa uct then emit t;
                  if not (Selecting_nfa.set_is_empty uct) then walk_const uct t
                | Node.Text _ | Node.Comment _ | Node.Pi _ -> ())
              (transformed_view rt (Option.get sc) ce)
          | _ ->
            let user_checkp s =
              let q = Selecting_nfa.state_qual unfa s in
              let affected =
                match sc with
                | Some states -> qual_affected rt.nfa rt.update states q
                | None -> false
              in
              if affected then
                match transformed_view rt (Option.get sc) ce with
                | [ Node.Element t ] -> Eval.check_qual t q
                | _ -> false
              else Eval.check_qual ce q
            in
            let uc = Selecting_nfa.next unfa ~checkp:user_checkp ustates (Node.sym ce) in
            if matched then begin
              (* insert (delete and relabeling were handled above): the
                 content changes but the node keeps its place *)
              if not (Selecting_nfa.set_is_empty uc) then begin
                let ts = transformed_view rt (Option.get sc) ce in
                if Selecting_nfa.accepts_set unfa uc then List.iter emit ts;
                List.iter (walk_const uc) ts
              end
            end
            else begin
              if Selecting_nfa.accepts_set unfa uc then begin
                (match sc with
                | Some s when not (Selecting_nfa.set_is_empty s) ->
                  Hashtbl.replace rt.state_tbl (Node.id ce) s
                | _ -> ());
                emit (Node.Element ce)
              end;
              if not (Selecting_nfa.set_is_empty uc) then walk uc sc (Node.children ce)
            end))
      children
  in
  walk (Selecting_nfa.start unfa) start_states root_children

(* What a native does, as pure data: instantiating a fresh runtime per
   evaluation rebuilds the closures from these specs, with names fixed at
   compose time (they are burned into the expression). *)
type spec =
  | Nav of chunk * anchor_source
  | Pipe of chunk list * anchor_source
  | Fin of anchor_source

let native_of_spec rt name = function
  | Nav (chunk, src) -> (
    function
    | [ [ anchor ] ] -> nav_chunk rt chunk ~src anchor
    | [ [] ] -> []
    | _ -> raise (Xq_value.Type_error (name ^ ": expected a single node")))
  | Pipe (chunks, src) -> (
    function
    | [ [ anchor ] ] ->
      let out = ref [] in
      let emit n = out := Xq_value.N n :: !out in
      (match anchor with
      | Xq_value.D root ->
        pipe_chunks rt chunks
          (Some (Selecting_nfa.start rt.nfa))
          [ Node.Element root ] emit
      | Xq_value.N (Node.Element e) ->
        let states =
          match src with
          | Src_hint s ->
            let alive =
              Selecting_nfa.set_of_list rt.nfa
                (Selecting_nfa.set_fold
                   (fun st acc ->
                     if
                       Selecting_nfa.consistent_at_sym rt.nfa st (Node.sym e)
                       && ((not (Selecting_nfa.has_qual rt.nfa st)) || checkp_direct rt st e)
                     then st :: acc
                     else acc)
                   s [])
            in
            if Selecting_nfa.set_is_empty alive then None else Some alive
          | Src_table -> Hashtbl.find_opt rt.state_tbl (Node.id e)
        in
        pipe_chunks rt chunks states (Node.children e) emit
      | _ -> raise (Xq_value.Type_error (name ^ ": expected a node")));
      List.rev !out
    | [ [] ] -> []
    | _ -> raise (Xq_value.Type_error (name ^ ": expected a single node")))
  | Fin src -> (
    function
    | [ [ Xq_value.N (Node.Element e) ] ] -> (
      let states =
        match src with
        | Src_hint s -> Some s
        | Src_table -> Hashtbl.find_opt rt.state_tbl (Node.id e)
      in
      match states with
      | Some s -> List.map (fun n -> Xq_value.N n) (transformed_view rt s e)
      | None -> [ Xq_value.N (Node.Element e) ])
    | [ v ] -> v
    | _ -> raise (Xq_value.Type_error (name ^ ": expected a single node")))

(* ---------------- composition ---------------- *)

let fresh_var =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s%d" prefix !n

(* The update-side fragment checks, shared with view definition time:
   an update composes iff its path is nonempty, carries no context
   qualifier, and does not select the document element itself. *)
let check_update update =
  match update with
  | Transform_ast.Insert _ | Transform_ast.Insert_first _ | Transform_ast.Delete _
  | Transform_ast.Replace _ | Transform_ast.Rename _ ->
    let upath = Transform_ast.path update in
    (* a prefix of Self steps followed by exactly one child step can only ever
       select the document element, whatever the document: rejectable
       statically even under late binding of the base *)
    let rec root_only = function
      | [] -> false
      | { Ast.nav = Ast.Self; _ } :: rest -> root_only rest
      | [ { Ast.nav = Ast.Label _ | Ast.Wildcard; _ } ] -> true
      | _ -> false
    in
    if upath = [] then Error "empty update path"
    else if root_only upath then Error "update can only select the document element"
    else
      let nfa = Selecting_nfa.of_path upath in
      if Selecting_nfa.ctx_qual nfa <> Ast.Q_true then
        Error "context qualifier in the update path"
      else if Selecting_nfa.selects_context nfa then Error "update selects the document element"
      else Ok nfa

let where_of_conds xvar (conds : User_query.cond list) =
  let mapped =
    List.map
      (fun ({ User_query.left; op; right } : User_query.cond) ->
        Xq_ast.Cmp
          ( User_query.cmp_to_xq op,
            User_query.operand_to_expr xvar left,
            User_query.operand_to_expr xvar right ))
      conds
  in
  match mapped with
  | [] -> None
  | w :: ws -> Some (List.fold_left (fun acc c -> Xq_ast.And (acc, c)) w ws)

let compose update (uq : User_query.t) : (composed, string) result =
  match check_update update with
  | Error e -> Error e
  | Ok nfa -> (
    match chunkify (Norm.steps uq.User_query.source) with
    | Error e -> Error e
    | Ok chunks ->
      let specs = ref [] in
      let register name spec =
        specs := (name, spec) :: !specs;
        name
      in
      let register_nav chunk ~src = register (fresh_var "xut:nav") (Nav (chunk, src)) in
      let register_pipe chunks ~src = register (fresh_var "xut:pipe") (Pipe (chunks, src)) in
      let register_fin ~src = register (fresh_var "xut:fin") (Fin src) in
      let output_affected = output_affected nfa update uq in
      (* does anything from this point on require the exact state
         machinery (look-ahead over the remaining chunks)? *)
      (* with a relabeling update, any matched node at the binding
         position can gain or lose the chunk's label: the static
         label transition is blind to it, so widen to any-label *)
      let matched_possible s (chunk : chunk) =
        relabels update
        && Selecting_nfa.accepts_set nfa
             (Selecting_nfa.next_on_any_set nfa
                (if chunk.desc then Selecting_nfa.next_on_desc_set nfa s else s))
      in
      let rec downstream_need s = function
        | [] -> output_affected s
        | (chunk : chunk) :: rest ->
          let si = step_sim nfa s chunk in
          Selecting_nfa.accepts_set nfa si
          || (chunk.desc && Selecting_nfa.accepts_set nfa (below nfa s))
          || List.exists (qual_affected nfa update si) chunk.quals
          || matched_possible s chunk
          || downstream_need si rest
      in
      let clauses = ref [] in
      let add_clause c = clauses := c :: !clauses in
      (* Emission modes: [Dead] — provably untouched, plain XQuery;
         [Hint s] — untouched so far, static sets still exact;
         [Tracked s] — a native ran upstream, sets live in the table. *)
      let plain_chunk prev chunk =
        let v = fresh_var "y" in
        add_clause
          (Xq_ast.For (v, Xq_ast.Path (Xq_ast.Var prev, chunk_path chunk ~quals:chunk.quals)));
        v
      in
      let native_chunk prev chunk ~src =
        let v = fresh_var "y" in
        add_clause (Xq_ast.For (v, Xq_ast.Call (register_nav chunk ~src, [ Xq_ast.Var prev ])));
        v
      in
      (* remaining chunks as one plain path expression: a single path
         keeps set semantics and document order for free *)
      let plain_rest prev chunks =
        let path = List.concat_map (fun c -> chunk_path c ~quals:c.quals) chunks in
        let v = fresh_var "y" in
        add_clause (Xq_ast.For (v, Xq_ast.Path (Xq_ast.Var prev, path)));
        v
      in
      let rec emit prev mode chunks =
        match chunks with
        | [] -> (prev, mode)
        | chunk :: rest -> (
          match mode with
          | `Dead -> (plain_rest prev (chunk :: rest), `Dead)
          | `Hint s | `Tracked s -> (
            let si = step_sim nfa s chunk in
            let acts =
              Selecting_nfa.accepts_set nfa si
              || (chunk.desc && Selecting_nfa.accepts_set nfa (below nfa s))
              || List.exists (qual_affected nfa update si) chunk.quals
              || matched_possible s chunk
            in
            let need_rest = downstream_need si rest in
            let src = match mode with `Hint s -> Src_hint s | _ -> Src_table in
            if chunk.desc && rest <> [] && (acts || need_rest) then begin
              (* '//' followed by more steps: single product walk *)
              let v = fresh_var "y" in
              add_clause
                (Xq_ast.For
                   (v, Xq_ast.Call (register_pipe (chunk :: rest) ~src, [ Xq_ast.Var prev ])));
              let s_end = List.fold_left (step_sim nfa) s (chunk :: rest) in
              (v, `Tracked s_end)
            end
            else
              match mode with
              | `Hint _ ->
                if acts then
                  emit (native_chunk prev chunk ~src:(Src_hint s)) (`Tracked si) rest
                else if need_rest then
                  if (not chunk.desc) && chunk.nav <> Norm.N_wild then
                    (* a label step keeps static sets exact *)
                    emit (plain_chunk prev chunk) (`Hint si) rest
                  else emit (native_chunk prev chunk ~src:(Src_hint s)) (`Tracked si) rest
                else (plain_rest prev (chunk :: rest), `Dead)
              | `Tracked _ ->
                if acts || need_rest then
                  emit (native_chunk prev chunk ~src:Src_table) (`Tracked si) rest
                else (plain_rest prev (chunk :: rest), `Dead)
              | `Dead -> assert false))
      in
      let doc_var = fresh_var "d" in
      add_clause (Xq_ast.LetC (doc_var, Xq_ast.Context));
      let xvar, final_mode =
        emit doc_var (`Hint (Selecting_nfa.start nfa)) chunks
      in
      let xvar =
        match final_mode with
        | `Dead -> xvar
        | `Hint s | `Tracked s ->
          if output_affected s then begin
            let src = match final_mode with `Hint s -> Src_hint s | _ -> Src_table in
            let t = fresh_var "xt" in
            add_clause (Xq_ast.For (t, Xq_ast.Call (register_fin ~src, [ Xq_ast.Var xvar ])));
            t
          end
          else xvar
      in
      let where = where_of_conds xvar uq.User_query.conds in
      let ret = User_query.template_to_expr xvar uq.User_query.template in
      let expr = Xq_ast.Flwor (List.rev !clauses, where, ret) in
      let specs = !specs in
      let make oracle =
        let rt =
          {
            nfa;
            update;
            oracle;
            state_tbl = Hashtbl.create 64;
            transform_memo = Hashtbl.create 64;
          }
        in
        List.map (fun (name, sp) -> (name, native_of_spec rt name sp)) specs
      in
      Ok { expr; make; native_count = List.length specs })

(* ---------------- stack composition (view chains, Section 4 iterated) ----------------

   A chain of stored views V_n = u_n(...u_1(T)...) composes with a user
   query by running ONE product walk over the base tree T that maintains,
   simultaneously, the exact state set of every level's selecting NFA and
   of the user source NFA.  The invariant making the static transitions
   sound: on the path from the root to the current node no level has
   matched, so every intermediate view preserves the node's label and
   identity, and level i's set is exact over V_{i-1}.  The first level
   that matches at a node resolves the whole subtree: the node's image
   through the remaining levels is materialized (topDown per level, each
   over the previous level's output, where direct qualifier checks are
   exact) and the user NFA finishes over the constant result.  Where no
   level matches, qualifiers and output paths that some level could
   affect are answered from a memoized through-view of the node. *)

type level = { lnfa : Selecting_nfa.t; lupd : Transform_ast.update }

type stack_rt = {
  levels : level array;  (* innermost (applied first) at index 0 *)
  sunfa : Selecting_nfa.t;  (* the user source path's NFA *)
  suq : User_query.t;
  (* (node id, prefix length) -> the node's image through that many
     levels; fresh per evaluation *)
  views : (int * int, Node.t list) Hashtbl.t;
  soracle : Top_down.checkp option;  (* level-0 oracle over the base tree *)
}

let stack_walk rt (root : Node.element) : Xq_value.t =
  let n = Array.length rt.levels in
  let unfa = rt.sunfa in
  let out = ref [] in
  let emit nd = out := Xq_value.N nd :: !out in
  (* level [j]'s topDown over a node of V_{j-1}; only level 0 walks base
     nodes, so only it may consult the annotation oracle *)
  let transform_level j states e =
    let { lnfa; lupd } = rt.levels.(j) in
    if j = 0 then Top_down.transform_at ?checkp:rt.soracle lnfa lupd ~states e
    else Top_down.transform_at lnfa lupd ~states e
  in
  (* the V_{upto-1} image of [ce], given no level below [upto] matches at
     it (one element: labels and identity preserved level by level) *)
  let rec through_view (ls : Selecting_nfa.set array) ce upto =
    if upto = 0 then [ Node.Element ce ]
    else begin
      let key = (Node.id ce, upto) in
      match Hashtbl.find_opt rt.views key with
      | Some f -> f
      | None ->
        let f =
          match through_view ls ce (upto - 1) with
          | [ Node.Element e' ] -> transform_level (upto - 1) ls.(upto - 1) e'
          | other -> other
        in
        Hashtbl.replace rt.views key f;
        f
    end
  in
  (* user NFA over constant (fully materialized) content *)
  let rec user_const uc (e : Node.element) =
    List.iter
      (fun child ->
        match child with
        | Node.Element ce ->
          let uc' =
            Selecting_nfa.next unfa
              ~checkp:(fun s -> Eval.check_qual ce (Selecting_nfa.state_qual unfa s))
              uc (Node.sym ce)
          in
          if Selecting_nfa.accepts_set unfa uc' then emit (Node.Element ce);
          if not (Selecting_nfa.set_is_empty uc') then user_const uc' ce
        | Node.Text _ | Node.Comment _ | Node.Pi _ -> ())
      (Node.children e)
  in
  (* transition the user NFA INTO a materialized forest root *)
  let user_enter_const uc nd =
    match nd with
    | Node.Element te ->
      let uct =
        Selecting_nfa.next unfa
          ~checkp:(fun s -> Eval.check_qual te (Selecting_nfa.state_qual unfa s))
          uc (Node.sym te)
      in
      if Selecting_nfa.accepts_set unfa uct then emit nd;
      if not (Selecting_nfa.set_is_empty uct) then user_const uct te
    | Node.Text _ | Node.Comment _ | Node.Pi _ -> ()
  in
  (* resolve level [j] over a materialized forest standing where the
     current node stood ([pls] = the parent's level-j set); the forest is
     V_{j-1} content, so direct qualifier checks are exact *)
  let resolve_level j pls f =
    List.concat_map
      (fun nd ->
        match nd with
        | Node.Element te ->
          let { lnfa; lupd = _ } = rt.levels.(j) in
          let s =
            Selecting_nfa.next lnfa
              ~checkp:(fun st -> Eval.check_qual te (Selecting_nfa.state_qual lnfa st))
              pls (Node.sym te)
          in
          transform_level j s te
        | other -> [ other ])
      f
  in
  let rec visit (us : Selecting_nfa.set) (ls : Selecting_nfa.set array) (ce : Node.element) =
    (* transition every level innermost-first; the first match resolves
       the subtree *)
    let ls' = Array.copy ls in
    let matched = ref (-1) in
    (try
       for i = 0 to n - 1 do
         let { lnfa; lupd = _ } = rt.levels.(i) in
         let checkp st =
           let q = Selecting_nfa.state_qual lnfa st in
           if q = Ast.Q_true then true
           else begin
             let affected = ref false in
             for j = 0 to i - 1 do
               if
                 (not !affected)
                 && qual_affected rt.levels.(j).lnfa rt.levels.(j).lupd ls'.(j) q
               then affected := true
             done;
             if !affected then
               match through_view ls' ce i with
               | [ Node.Element t ] -> Eval.check_qual t q
               | _ -> false
             else if i = 0 then
               match rt.soracle with Some f -> f st ce | None -> Eval.check_qual ce q
             else Eval.check_qual ce q
           end
         in
         let si = Selecting_nfa.next lnfa ~checkp ls.(i) (Node.sym ce) in
         ls'.(i) <- si;
         if Selecting_nfa.accepts_set lnfa si then begin
           matched := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !matched >= 0 then begin
      let i = !matched in
      (* materialize through the whole stack and finish with the user
         NFA alone *)
      let f0 =
        match through_view ls' ce i with
        | [ Node.Element e' ] -> transform_level i ls'.(i) e'
        | other -> other
      in
      let rec outer j f = if j >= n then f else outer (j + 1) (resolve_level j ls.(j) f) in
      List.iter (user_enter_const us) (outer (i + 1) f0)
    end
    else begin
      (* unmatched everywhere: the node survives with its label; user
         qualifiers some level could affect are answered on its view *)
      let user_checkp st =
        let q = Selecting_nfa.state_qual unfa st in
        if q = Ast.Q_true then true
        else begin
          let affected = ref false in
          for j = 0 to n - 1 do
            if
              (not !affected) && qual_affected rt.levels.(j).lnfa rt.levels.(j).lupd ls'.(j) q
            then affected := true
          done;
          if !affected then
            match through_view ls' ce n with
            | [ Node.Element t ] -> Eval.check_qual t q
            | _ -> false
          else Eval.check_qual ce q
        end
      in
      let uc = Selecting_nfa.next unfa ~checkp:user_checkp us (Node.sym ce) in
      if Selecting_nfa.accepts_set unfa uc then begin
        let needs_view =
          let rec any j =
            j < n
            && (output_affected rt.levels.(j).lnfa rt.levels.(j).lupd rt.suq ls'.(j)
               || any (j + 1))
          in
          any 0
        in
        if needs_view then
          match through_view ls' ce n with
          | [ Node.Element t ] -> emit (Node.Element t)
          | _ -> ()
        else emit (Node.Element ce)
      end;
      if not (Selecting_nfa.set_is_empty uc) then
        List.iter
          (fun ch -> match ch with Node.Element che -> visit uc ls' che | _ -> ())
          (Node.children ce)
    end
  in
  visit (Selecting_nfa.start unfa)
    (Array.init n (fun i -> Selecting_nfa.start rt.levels.(i).lnfa))
    root;
  List.rev !out

let compose_stack updates (uq : User_query.t) : (composed, string) result =
  match updates with
  | [] ->
    (* empty chain: the user query unchanged *)
    Ok { expr = User_query.to_expr uq; make = (fun _ -> []); native_count = 0 }
  | [ u ] -> compose u uq
  | _ -> (
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | u :: rest -> (
        match check_update u with
        | Ok nfa -> build ({ lnfa = nfa; lupd = u } :: acc) rest
        | Error e -> Error e)
    in
    match build [] updates with
    | Error e -> Error e
    | Ok levels -> (
      (* fragment parity with [compose] on the user side *)
      match chunkify (Norm.steps uq.User_query.source) with
      | Error e -> Error e
      | Ok _chunks ->
        let levels = Array.of_list levels in
        let sunfa = Selecting_nfa.of_path uq.User_query.source in
        let name = fresh_var "xut:stack" in
        let dvar = fresh_var "d" in
        let xvar = fresh_var "x" in
        let where = where_of_conds xvar uq.User_query.conds in
        let ret = User_query.template_to_expr xvar uq.User_query.template in
        let expr =
          Xq_ast.Flwor
            ( [
                Xq_ast.LetC (dvar, Xq_ast.Context);
                Xq_ast.For (xvar, Xq_ast.Call (name, [ Xq_ast.Var dvar ]));
              ],
              where,
              ret )
        in
        let make oracle =
          let rt =
            { levels; sunfa; suq = uq; views = Hashtbl.create 64; soracle = oracle }
          in
          [
            ( name,
              function
              | [ [ Xq_value.D root ] ] | [ [ Xq_value.N (Node.Element root) ] ] ->
                stack_walk rt root
              | [ [] ] -> []
              | _ -> raise (Xq_value.Type_error (name ^ ": expected the document")) );
          ]
        in
        Ok { expr; make; native_count = 1 }))

let run_composed ?oracle c ~doc =
  let env = Xq_eval.env ~context:doc ~natives:(c.make oracle) () in
  Xq_eval.eval_expr env c.expr

let naive ?(algo = Engine.Gentop) update uq ~doc =
  let transformed = Engine.transform algo update doc in
  User_query.run uq ~doc:transformed

let naive_stack ?(algo = Engine.Gentop) updates uq ~doc =
  let transformed = List.fold_left (fun t u -> Engine.transform algo u t) doc updates in
  User_query.run uq ~doc:transformed

let run update uq ~doc =
  match compose update uq with
  | Ok c -> run_composed c ~doc
  | Error _ -> naive update uq ~doc

let to_string c = Xq_ast.to_string c.expr
