open Xut_service

exception Transport_error of string

type t = {
  fd : Unix.file_descr;
  mutable next_id : int64;
  mutable dead : bool;
      (* the byte stream is no longer frame-aligned (a timeout or read
         error struck mid-frame): the fd is closed and every operation
         fails fast — reuse would misparse the next header *)
  stash : (int64, Service.response) Hashtbl.t;
  hdr : Bytes.t;
  on_notice : (Wire.Binary.notice -> unit) option;
      (* when set, requests are framed at v2 — the notice-channel
         subscription — and id-0 Notice frames are fed here *)
}

let connect ?(timeout = 30.) ?on_notice addr =
  let domain =
    match addr with Addr.Unix_socket _ -> Unix.PF_UNIX | Addr.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Addr.sockaddr addr) with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  if timeout > 0. then Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    fd;
    next_id = 1L;
    dead = false;
    stash = Hashtbl.create 8;
    hdr = Bytes.create Wire.Binary.header_size;
    on_notice;
  }

let close t =
  if not t.dead then ( try Unix.close t.fd with Unix.Unix_error _ -> ())

let kill t msg =
  t.dead <- true;
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  raise (Transport_error msg)

let check_alive t =
  if t.dead then
    raise
      (Transport_error
         "connection is dead (closed after a mid-frame timeout or read error); reconnect")

let write_all t s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write t.fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
        raise (Transport_error ("write failed: " ^ Unix.error_message e))
  in
  go 0

(* [consumed] counts bytes of the current frame already read before this
   call (0 while waiting for a fresh header; the header size once the
   payload read starts).  A timeout after partial progress strands the
   connection mid-frame — the next read would misparse the remaining
   bytes as a header — so the connection is killed rather than left
   desynced; a timeout at a frame boundary leaves it usable.  EOF and
   read errors also kill: the fd has nothing more to give. *)
let rec read_exact t ~consumed buf off len =
  if len > 0 then
    match Unix.read t.fd buf off len with
    | 0 -> kill t "connection closed by server"
    | n -> read_exact t ~consumed buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact t ~consumed buf off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      if consumed + off > 0 then
        kill t "timed out mid-frame: connection desynced, closing it"
      else raise (Transport_error "timed out waiting for the server")
    | exception Unix.Unix_error (e, _, _) ->
      kill t ("read failed: " ^ Unix.error_message e)

let request_version t = match t.on_notice with Some _ -> 2 | None -> 1

let send t req =
  check_alive t;
  let id = t.next_id in
  t.next_id <- Int64.add id 1L;
  write_all t (Wire.Binary.request_frame ~version:(request_version t) ~id req);
  id

(* One frame off the wire, whatever its kind.  Server-push notices (the
   id-0 Notice frames of the invalidation channel) are consumed here —
   dispatched to [on_notice] and never surfaced to the callers, so they
   may arrive interleaved with any response or stream. *)
let rec read_raw_frame t =
  check_alive t;
  read_exact t ~consumed:0 t.hdr 0 Wire.Binary.header_size;
  match Wire.Binary.decode_header t.hdr with
  | Error msg -> raise (Transport_error ("bad frame from server: " ^ msg))
  | Ok ({ Wire.Binary.length; kind; _ } as hdr) ->
    let payload = Bytes.create length in
    read_exact t ~consumed:Wire.Binary.header_size payload 0 length;
    let payload = Bytes.unsafe_to_string payload in
    if kind = Wire.Binary.Notice then begin
      (match Wire.Binary.decode_notice payload with
      | Error msg -> raise (Transport_error ("bad notice payload: " ^ msg))
      | Ok n -> ( match t.on_notice with Some f -> f n | None -> ()));
      read_raw_frame t
    end
    else (hdr, payload)

let decode_response_exn payload =
  match Wire.Binary.decode_response payload with
  | Error msg -> raise (Transport_error ("bad response payload: " ^ msg))
  | Ok resp -> resp

let read_frame t =
  let hdr, payload = read_raw_frame t in
  match hdr.Wire.Binary.kind with
  | Wire.Binary.Response -> (hdr.Wire.Binary.id, decode_response_exn payload)
  | Wire.Binary.Request -> raise (Transport_error "server sent a request frame")
  | Wire.Binary.Notice -> assert false (* consumed by read_raw_frame *)
  | Wire.Binary.Stream_begin | Wire.Binary.Stream_chunk | Wire.Binary.Stream_end
  | Wire.Binary.Stream_error ->
    raise (Transport_error "unexpected stream frame (no stream in flight)")

let recv t =
  match Hashtbl.fold (fun id resp _ -> Some (id, resp)) t.stash None with
  | Some (id, resp) ->
    Hashtbl.remove t.stash id;
    (id, resp)
  | None -> read_frame t

let call t req =
  let id = send t req in
  match Hashtbl.find_opt t.stash id with
  | Some resp ->
    Hashtbl.remove t.stash id;
    resp
  | None ->
    let rec wait () =
      let rid, resp = read_frame t in
      if rid = id || rid = 0L (* server notice, e.g. BUSY *) then resp
      else begin
        Hashtbl.replace t.stash rid resp;
        wait ()
      end
    in
    wait ()

let call_batch t reqs =
  match call t (Service.Batch reqs) with
  | Service.Ok (Service.Batch_results rs) -> rs
  | other -> [ other ]

(* Shared reply loop of the two streaming request shapes: consume the
   Stream_begin / chunks / terminal frame of request [id], stashing
   completions of other pipelined requests. *)
let stream_reply t ~id on_chunk =
  let rec wait () =
    let hdr, payload = read_raw_frame t in
    let rid = hdr.Wire.Binary.id in
    match hdr.Wire.Binary.kind with
    | Wire.Binary.Response when rid = id || rid = 0L ->
      (* a plain response instead of stream frames: the server's
         rejection of the stream request (or a BUSY notice) *)
      decode_response_exn payload
    | Wire.Binary.Response ->
      (* completion of some other pipelined request *)
      Hashtbl.replace t.stash rid (decode_response_exn payload);
      wait ()
    | Wire.Binary.Request -> raise (Transport_error "server sent a request frame")
    | Wire.Binary.Notice -> assert false (* consumed by read_raw_frame *)
    | _ when rid <> id ->
      (* only one stream can be in flight per connection *)
      raise (Transport_error "stream frame for a different request id")
    | Wire.Binary.Stream_begin -> wait ()
    | Wire.Binary.Stream_chunk ->
      on_chunk payload;
      wait ()
    | Wire.Binary.Stream_end -> begin
      match Wire.Binary.decode_stream_end payload with
      | Error msg -> raise (Transport_error ("bad stream-end payload: " ^ msg))
      | Ok (bytes, chunks) -> Service.Ok (Service.Stream_done { bytes; chunks })
    end
    | Wire.Binary.Stream_error -> begin
      match Wire.Binary.decode_stream_error payload with
      | Error msg -> raise (Transport_error ("bad stream-error payload: " ^ msg))
      | Ok (code, message) -> Service.Error { code; message }
    end
  in
  wait ()

let transform_stream t ~doc ~engine ~query ?(chunk_size = Service.default_chunk_size) on_chunk =
  check_alive t;
  let id = t.next_id in
  t.next_id <- Int64.add id 1L;
  write_all t
    (Wire.Binary.stream_request_frame ~id { Wire.Binary.doc; engine; query; chunk_size });
  stream_reply t ~id on_chunk

let transform_ingest t ~source ~query ?(chunk_size = Service.default_chunk_size) on_chunk =
  check_alive t;
  let id = t.next_id in
  t.next_id <- Int64.add id 1L;
  write_all t
    (Wire.Binary.ingest_request_frame ~id { Wire.Binary.source; query; chunk_size });
  stream_reply t ~id on_chunk
