(** Transport endpoints: where a {!Server} listens and a {!Client}
    connects. *)

type t =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of { host : string; port : int }

val to_string : t -> string
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val parse_tcp : string -> (t, string) result
(** ["HOST:PORT"] or bare ["PORT"] (host defaults to 127.0.0.1). *)

val sockaddr : t -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr].  For TCP the host may be a dotted
    quad or a name; @raise Failure when it does not resolve. *)
