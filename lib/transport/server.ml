open Xut_service

type config = {
  max_frame : int;
  max_connections : int;
  read_timeout : float;
}

let default_config =
  { max_frame = Wire.Binary.default_max_frame; max_connections = 64; read_timeout = 30. }

type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;  (* serializes frame writes (responses interleave) *)
  cmu : Mutex.t;
  drained : Condition.t;
  mutable in_flight : int;  (* submitted requests whose response is not yet written *)
  mutable peer_version : int;
      (* highest protocol version seen in this peer's request frames;
         >= 2 opts the connection into id-0 invalidation notices *)
}

type t = {
  svc : Service.t;
  cfg : config;
  addr : Addr.t;
  listen_fd : Unix.file_descr;
  mu : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  threads : (int, Thread.t) Hashtbl.t;
  mutable next_key : int;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
}

(* ---- low-level IO ---- *)

type read_outcome = Complete | Eof | Stalled

let rec read_exact fd buf off len =
  if len = 0 then Complete
  else
    match Unix.read fd buf off len with
    | 0 -> Eof
    | n -> read_exact fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> Stalled
    | exception Unix.Unix_error (_, _, _) -> Eof

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then true
    else
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

(* Write one whole frame under the connection's write lock; returns
   whether the client got it. *)
let write_raw t conn s =
  Mutex.lock conn.wmu;
  (* counted before the bytes go out: a client that has read the reply
     must be able to rely on the counter already reflecting it *)
  Metrics.frame_out (Service.metrics t.svc) (String.length s);
  let ok = write_all conn.fd s in
  Mutex.unlock conn.wmu;
  ok

(* Response frames echo the version of the request frame they answer,
   so a v1 client never reads a header newer than it speaks. *)
let write_frame ?version t conn ~id resp =
  write_raw t conn (Wire.Binary.response_frame ?version ~id resp)

let error_response code message = Service.Error { code; message }

(* ---- per-request completion ---- *)

let track_in_flight conn =
  Mutex.lock conn.cmu;
  conn.in_flight <- conn.in_flight + 1;
  Mutex.unlock conn.cmu

let spawn_completion conn complete =
  track_in_flight conn;
  let complete () =
    complete ();
    Mutex.lock conn.cmu;
    conn.in_flight <- conn.in_flight - 1;
    if conn.in_flight = 0 then Condition.broadcast conn.drained;
    Mutex.unlock conn.cmu
  in
  match Thread.create complete () with
  | (_ : Thread.t) -> ()
  | exception _ -> complete () (* out of threads: finish synchronously *)

let dispatch t conn ~version ~id req =
  (* submit blocks when the pool queue is full: backpressure lands on
     this connection's reader, which stops consuming frames. *)
  let fut = Service.submit t.svc req in
  spawn_completion conn (fun () -> ignore (write_frame ~version t conn ~id (Service.await fut)))

(* A streamed transform: STREAM_BEGIN goes out before the request is
   queued (so it precedes every chunk), chunk frames are written from
   the worker domain as the serializer sink fills, and the completion
   thread finishes the exchange with STREAM_END or — if the engine
   failed after chunks went out — STREAM_ERROR. *)
let dispatch_stream t conn ~id (sr : Wire.Binary.stream_request) =
  ignore (write_raw t conn (Wire.Binary.stream_begin_frame ~id));
  let emit chunk =
    if not (write_raw t conn (Wire.Binary.stream_chunk_frame ~id chunk)) then
      failwith "client disconnected mid-stream"
  in
  let fut =
    Service.submit_stream t.svc ~doc:sr.Wire.Binary.doc ~engine:sr.Wire.Binary.engine
      ~query:sr.Wire.Binary.query ~chunk_size:sr.Wire.Binary.chunk_size emit
  in
  spawn_completion conn (fun () ->
      let final =
        match Service.await fut with
        | Service.Ok (Service.Stream_done { bytes; chunks }) ->
          Wire.Binary.stream_end_frame ~id ~bytes ~chunks
        | Service.Error { code; message } -> Wire.Binary.stream_error_frame ~id ~code message
        | Service.Ok _ ->
          Wire.Binary.stream_error_frame ~id ~code:Service.Eval_error
            "stream produced a non-stream response"
      in
      ignore (write_raw t conn final))

(* A streamed-ingest transform: same reply discipline as
   [dispatch_stream], different request shape (source instead of
   doc+engine). *)
let dispatch_ingest t conn ~id (ir : Wire.Binary.ingest_request) =
  ignore (write_raw t conn (Wire.Binary.stream_begin_frame ~id));
  let emit chunk =
    if not (write_raw t conn (Wire.Binary.stream_chunk_frame ~id chunk)) then
      failwith "client disconnected mid-stream"
  in
  let source =
    match ir.Wire.Binary.source with
    | Wire.Binary.Ingest_doc d -> Service.From_doc d
    | Wire.Binary.Ingest_file p -> Service.From_file p
  in
  let fut =
    Service.submit_ingest t.svc ~source ~query:ir.Wire.Binary.query
      ~chunk_size:ir.Wire.Binary.chunk_size emit
  in
  spawn_completion conn (fun () ->
      let final =
        match Service.await fut with
        | Service.Ok (Service.Stream_done { bytes; chunks }) ->
          Wire.Binary.stream_end_frame ~id ~bytes ~chunks
        | Service.Error { code; message } -> Wire.Binary.stream_error_frame ~id ~code message
        | Service.Ok _ ->
          Wire.Binary.stream_error_frame ~id ~code:Service.Eval_error
            "stream produced a non-stream response"
      in
      ignore (write_raw t conn final))

(* ---- connection reader ---- *)

let serve_conn t conn =
  let m = Service.metrics t.svc in
  let hdr = Bytes.create Wire.Binary.header_size in
  let rec loop () =
    match read_exact conn.fd hdr 0 Wire.Binary.header_size with
    | Eof | Stalled -> () (* clean close, or idle past the read timeout *)
    | Complete -> begin
      match Wire.Binary.decode_header ~max_frame:t.cfg.max_frame hdr with
      | Error msg ->
        (* bad magic / version / oversized: after this the byte stream
           can't be re-synchronized, so answer and drop the connection *)
        Metrics.frame_malformed m;
        ignore (write_frame t conn ~id:0L (error_response Service.Bad_request msg))
      | Ok { Wire.Binary.kind = Wire.Binary.Request; version; id; length } -> begin
        if version > conn.peer_version then conn.peer_version <- version;
        let payload = Bytes.create length in
        match read_exact conn.fd payload 0 length with
        | Eof | Stalled ->
          (* disconnected or stalled mid-frame *)
          Metrics.frame_malformed m
        | Complete -> begin
          Metrics.frame_in m (Wire.Binary.header_size + length);
          match Wire.Binary.decode_incoming ~version (Bytes.unsafe_to_string payload) with
          | Error msg ->
            (* well-framed but undecodable: the framing is still in
               sync, so answer and keep serving this connection *)
            Metrics.frame_malformed m;
            ignore (write_frame ~version t conn ~id (error_response Service.Bad_request msg));
            loop ()
          | Ok (Wire.Binary.Plain req) ->
            dispatch t conn ~version ~id req;
            loop ()
          | Ok (Wire.Binary.Stream sr) ->
            dispatch_stream t conn ~id sr;
            loop ()
          | Ok (Wire.Binary.Ingest ir) ->
            dispatch_ingest t conn ~id ir;
            loop ()
        end
      end
      | Ok { Wire.Binary.version; id; _ } ->
        (* Response or Stream_* from a client: never valid *)
        Metrics.frame_malformed m;
        ignore
          (write_frame ~version t conn ~id
             (error_response Service.Bad_request "clients must send request frames"))
    end
  in
  loop ()

let conn_main t key conn =
  (try serve_conn t conn with _ -> ());
  (* responses of already-submitted requests still go out *)
  Mutex.lock conn.cmu;
  while conn.in_flight > 0 do
    Condition.wait conn.drained conn.cmu
  done;
  Mutex.unlock conn.cmu;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Metrics.conn_closed (Service.metrics t.svc);
  Mutex.lock t.mu;
  Hashtbl.remove t.conns key;
  Hashtbl.remove t.threads key;
  Mutex.unlock t.mu

(* ---- accept loop ---- *)

let accept_loop t =
  let m = Service.metrics t.svc in
  let running = ref true in
  while !running do
    if t.stopping then running := false
    else begin
      match Unix.accept ~cloexec:true t.listen_fd with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ETIMEDOUT), _, _)
        ->
        () (* the listen socket has a short receive timeout: this is the
              periodic stopping-flag check *)
      | exception Unix.Unix_error (_, _, _) -> running := false
      | exception _ -> running := false
      | fd, _peer ->
        if t.stopping then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          running := false
        end
        else begin
          Mutex.lock t.mu;
          let active = Hashtbl.length t.conns in
          Mutex.unlock t.mu;
          if active >= t.cfg.max_connections then begin
            Metrics.conn_rejected m;
            ignore
              (write_all fd
                 (Wire.Binary.response_frame ~id:0L
                    (error_response Service.Overloaded
                       (Printf.sprintf "connection limit reached (%d active)" active))));
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            Metrics.conn_accepted m;
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.read_timeout;
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> () (* Unix sockets have no Nagle *));
            let conn =
              {
                fd;
                wmu = Mutex.create ();
                cmu = Mutex.create ();
                drained = Condition.create ();
                in_flight = 0;
                peer_version = 1;
              }
            in
            Mutex.lock t.mu;
            let key = t.next_key in
            t.next_key <- key + 1;
            Hashtbl.replace t.conns key conn;
            (match Thread.create (fun () -> conn_main t key conn) () with
            | th -> Hashtbl.replace t.threads key th
            | exception _ ->
              (* could not spawn a reader: give the client a BUSY *)
              Hashtbl.remove t.conns key;
              ignore
                (write_all fd
                   (Wire.Binary.response_frame ~id:0L
                      (error_response Service.Overloaded "out of threads")));
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Metrics.conn_closed m);
            Mutex.unlock t.mu
          end
        end
    end
  done

(* ---- lifecycle ---- *)

let start ?(config = default_config) ~service addr =
  (* a client disappearing mid-write must be an EPIPE, not a process kill *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let domain, sockaddr =
    match addr with
    | Addr.Unix_socket path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Addr.sockaddr addr)
    | Addr.Tcp _ -> (Unix.PF_INET, Addr.sockaddr addr)
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match
     (try Unix.setsockopt listen_fd Unix.SO_REUSEADDR true with Unix.Unix_error _ -> ());
     Unix.bind listen_fd sockaddr;
     Unix.listen listen_fd 128
   with
  | () -> ()
  | exception e ->
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    raise e);
  (* short accept timeout = how often the loop notices [stop] *)
  Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.2;
  let addr =
    match addr with
    | Addr.Tcp { host; port = 0 } -> begin
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, port) -> Addr.Tcp { host; port }
      | _ -> addr
    end
    | _ -> addr
  in
  let t =
    {
      svc = service;
      cfg = config;
      addr;
      listen_fd;
      mu = Mutex.create ();
      conns = Hashtbl.create 16;
      threads = Hashtbl.create 16;
      next_key = 0;
      stopping = false;
      accept_thread = None;
    }
  in
  (* Push invalidation notices: on every UNLOAD/reload the service's
     lifecycle event fans out, as one id-0 Notice frame, to every
     connection whose peer has spoken v2.  The event fires after the
     service's own cache eviction, so a client acting on the notice
     re-reads fresh state.  Runs on the worker thread doing the
     LOAD/UNLOAD; a dead connection just fails its write. *)
  Service.on_invalidate service (fun ev ->
      if not t.stopping then begin
        (* usually one frame; two when a commit also dropped the
           document's schema binding (the extra Schema_dropped notice) *)
        let frames =
          List.map Wire.Binary.notice_frame (Wire.Binary.notices_of_event ev)
        in
        Mutex.lock t.mu;
        let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        Mutex.unlock t.mu;
        List.iter
          (fun c ->
            if c.peer_version >= 2 then
              List.iter (fun frame -> ignore (write_raw t c frame)) frames)
          conns
      end);
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let address t = t.addr

let stop t =
  Mutex.lock t.mu;
  let already = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.mu;
  if not already then begin
    (match t.accept_thread with
    | Some th -> Thread.join th
    | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* stop reading everywhere; readers see EOF, drain, close *)
    Mutex.lock t.mu;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    let threads = Hashtbl.fold (fun _ th acc -> th :: acc) t.threads [] in
    Mutex.unlock t.mu;
    List.iter
      (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join threads;
    match t.addr with
    | Addr.Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Addr.Tcp _ -> ()
  end
