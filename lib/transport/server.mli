(** TCP / Unix-socket front end over {!Xut_service.Service}.

    One accept thread plus one reader thread per connection; each
    decoded request is dispatched through [Service.submit] (the
    existing domain worker pool), and a per-request completion thread
    writes the framed response back under the connection's write lock —
    responses may complete out of order, which is fine because frames
    carry the request id.

    Robustness over features:
    - a per-connection read timeout closes idle or stalled clients;
    - frames above [max_frame], bad magic and unsupported versions get
      a [Bad_request] error frame and a connection close (the stream
      can no longer be trusted); a well-framed but undecodable payload
      gets an error frame and the connection stays up;
    - at [max_connections] live connections, new clients receive one
      [Overloaded] error frame (request id 0) and are closed;
    - nothing a client sends can raise out of the accept loop or a
      connection thread;
    - {!stop} stops accepting, stops reading, waits for every in-flight
      request's response to be written, then closes and joins.

    Frame and connection counters are recorded in the service's
    {!Xut_service.Metrics}, so [STATS] reports the whole path. *)

open Xut_service

type config = {
  max_frame : int;        (** largest accepted payload, bytes (default 16 MiB) *)
  max_connections : int;  (** live-connection cap before BUSY (default 64) *)
  read_timeout : float;   (** seconds a read may stall before the
                              connection is dropped (default 30) *)
}

val default_config : config

type t

val start : ?config:config -> service:Service.t -> Addr.t -> t
(** Bind, listen and start accepting.  A Unix-socket path that already
    exists is unlinked first (stale socket of a dead server).  TCP port
    0 binds an ephemeral port — read it back with {!address}.
    Installs [Signal_ignore] on SIGPIPE (a dead client must surface as
    a write error, not kill the process).
    @raise Unix.Unix_error when the address cannot be bound. *)

val address : t -> Addr.t
(** The bound address, with the actual port for TCP port 0. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, shut down the read side of every
    connection, drain in-flight requests (their responses are still
    written), close everything, join all threads, and unlink the Unix
    socket path.  Idempotent.  The underlying service is NOT shut down
    — it belongs to the caller. *)
