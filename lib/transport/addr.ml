type t =
  | Unix_socket of string
  | Tcp of { host : string; port : int }

let to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let parse_tcp s =
  match String.rindex_opt s ':' with
  | None -> begin
    match int_of_string_opt s with
    | Some port when port >= 0 && port < 65536 ->
      Ok (Tcp { host = "127.0.0.1"; port })
    | _ -> Error (Printf.sprintf "bad TCP address %S (want HOST:PORT or PORT)" s)
  end
  | Some i -> begin
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port_s with
    | Some port when host <> "" && port >= 0 && port < 65536 -> Ok (Tcp { host; port })
    | _ -> Error (Printf.sprintf "bad TCP address %S (want HOST:PORT or PORT)" s)
  end

let sockaddr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp { host; port } ->
    let ip =
      match Unix.inet_addr_of_string host with
      | ip -> ip
      | exception _ -> begin
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
        | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      end
    in
    Unix.ADDR_INET (ip, port)
