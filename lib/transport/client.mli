(** Blocking client for the binary socket protocol — the library under
    [xut client], the transport tests, and the socket mode of
    [xut bench-serve].

    Requests are framed with fresh ids starting at 1; the server may
    complete them out of order.  {!call} is the simple synchronous
    round trip; {!send}/{!recv} expose pipelining (keep several frames
    in flight, collect completions as they arrive).

    A server notice — a frame with request id 0, e.g. the [Overloaded]
    BUSY rejection at the connection limit — is returned by {!call} as
    if it answered the call, and by {!recv} with id 0. *)

open Xut_service

exception Transport_error of string
(** Connection lost, stream ended mid-frame, or an undecodable frame
    from the server.

    When a read timeout or error strikes {e mid-frame}, the byte stream
    is no longer frame-aligned and cannot be resynchronized, so the
    client marks the connection dead and closes the socket; every
    subsequent operation raises this immediately ("connection is dead")
    instead of misparsing leftover bytes as a header.  A timeout at a
    frame boundary (nothing read) leaves the connection usable. *)

type t

val connect : ?timeout:float -> ?on_notice:(Wire.Binary.notice -> unit) -> Addr.t -> t
(** Connect; [timeout] (default 30 s) bounds every read.

    [on_notice] subscribes this connection to the server's invalidation
    notices (protocol v2): requests are then framed at v2 — the
    subscription signal — and every id-0 [Notice] frame (a stored
    document was unloaded or replaced) invokes the callback from
    whichever read is in progress, without disturbing the response it
    was waiting for.  Without [on_notice] the client speaks v1 frames
    and the server never pushes notices at it.
    @raise Unix.Unix_error when the endpoint does not accept. *)

val close : t -> unit

val call : t -> Service.request -> Service.response
(** Send one request and wait for its response (or a server notice).
    Responses to other in-flight ids arriving first are stashed and
    later delivered by {!recv}. *)

val send : t -> Service.request -> int64
(** Frame and write the request, returning its id.  Does not wait. *)

val recv : t -> int64 * Service.response
(** Next available response: a stashed one if any, else the next frame
    off the wire. *)

val call_batch : t -> Service.request list -> Service.response list
(** Wrap the requests in one [Batch] frame; returns the per-item
    responses.  A non-batch reply (e.g. a BUSY notice or an error for
    the batch itself) is returned as a single-element list. *)

val transform_stream :
  t ->
  doc:string ->
  engine:Core.Engine.algo ->
  query:string ->
  ?chunk_size:int ->
  (string -> unit) ->
  Service.response
(** Streamed transform (protocol v2): send one stream request, call
    [on_chunk] with each [Stream_chunk] payload as it arrives, and
    return [Ok (Stream_done _)] on [Stream_end] or [Error _] on
    [Stream_error] — the latter possibly after chunks were already
    delivered (the mid-stream error case; the partial output is
    whatever [on_chunk] saw).  A plain response frame in place of the
    stream (a server that rejects the request, or a BUSY notice) is
    returned as-is.  Do not pipeline other requests while a stream is
    being read. *)

val transform_ingest :
  t ->
  source:Wire.Binary.ingest_source ->
  query:string ->
  ?chunk_size:int ->
  (string -> unit) ->
  Service.response
(** Streamed-ingest transform ([TRANSFORM-STREAM], protocol v2): like
    {!transform_stream} but over an ingest source — a stored document
    ([Ingest_doc]) or a server-side file ([Ingest_file]) driven through
    the server's fused SAX pipeline without materializing a tree.  No
    engine argument; unstreamable plans fall back server-side with
    byte-identical output. *)
