(** Blocking client for the binary socket protocol — the library under
    [xut client], the transport tests, and the socket mode of
    [xut bench-serve].

    Requests are framed with fresh ids starting at 1; the server may
    complete them out of order.  {!call} is the simple synchronous
    round trip; {!send}/{!recv} expose pipelining (keep several frames
    in flight, collect completions as they arrive).

    A server notice — a frame with request id 0, e.g. the [Overloaded]
    BUSY rejection at the connection limit — is returned by {!call} as
    if it answered the call, and by {!recv} with id 0. *)

open Xut_service

exception Transport_error of string
(** Connection lost, stream ended mid-frame, or an undecodable frame
    from the server. *)

type t

val connect : ?timeout:float -> Addr.t -> t
(** Connect; [timeout] (default 30 s) bounds every read.
    @raise Unix.Unix_error when the endpoint does not accept. *)

val close : t -> unit

val call : t -> Service.request -> Service.response
(** Send one request and wait for its response (or a server notice).
    Responses to other in-flight ids arriving first are stashed and
    later delivered by {!recv}. *)

val send : t -> Service.request -> int64
(** Frame and write the request, returning its id.  Does not wait. *)

val recv : t -> int64 * Service.response
(** Next available response: a stashed one if any, else the next frame
    off the wire. *)

val call_batch : t -> Service.request list -> Service.response list
(** Wrap the requests in one [Batch] frame; returns the per-item
    responses.  A non-batch reply (e.g. a BUSY notice or an error for
    the batch itself) is returned as a single-element list. *)
