(** Codec between {!Xut_service.Service} requests/responses and bytes.

    Two renderings of the same typed API:

    - {!Line}: the human-typeable protocol of [xut serve] over stdin —
      one request per line, so queries with embedded newlines are not
      expressible (that limitation is why the socket transport exists).
    - {!Binary}: the length-prefixed framing of the socket transport —
      every request is expressible, frames carry a request id so
      responses may complete out of order, and a version byte leaves
      room for protocol evolution.

    Both decoders are total: malformed input is an [Error _], never an
    exception. *)

open Xut_service

module Line : sig
  val decode_request : string -> (Service.request, string) result
  (** Parse one line:
      {v
      LOAD <name> <file> [SCHEMA <schema>]
      UNLOAD <name>
      TRANSFORM [DOC|VIEW] <name> <engine> <query text...>
      COUNT [DOC|VIEW] <name> <engine> <query text...>
      APPLY <name> <update query text...>
      COMMIT <name> <update query text...>
      DEFVIEW <name> := <transform query text...>
      UNDEFVIEW <name>
      LISTVIEWS
      STATS
      v}
      The APPLY/COMMIT query may be a full transform query or a bare
      update / parenthesized update sequence over [$a].  The literal
      (uppercase) keyword [VIEW] after TRANSFORM/COUNT addresses a
      stored view instead of a document; the [DOC] keyword forces
      document addressing, so a document literally named ["VIEW"] (or
      ["DOC"]) stays reachable: [TRANSFORM DOC VIEW td_bu ...].
      [LOAD ... SCHEMA s] validates the document against the registered
      schema [s] and binds it for admission checks and subtree pruning.
      DEFVIEW's [:=] is optional on input and always printed on
      output. *)

  type ingest = { source : [ `Doc of string | `File of string ]; query : string }
  (** A streamed-ingest request of the line protocol:
      [TRANSFORM-STREAM [DOC] <name> <query>] transforms a stored
      document, [TRANSFORM-STREAM FILE <path> <query>] a (server-side)
      file, through the fused SAX pipeline without materializing a
      tree.  No engine word — the streaming machinery is the engine,
      with automatic byte-identical fallback for unstreamable shapes.
      As with TRANSFORM, the [DOC] keyword keeps documents literally
      named ["FILE"]/["DOC"] addressable. *)

  type incoming = Plain of Service.request | Stream_ingest of ingest

  val decode_incoming : string -> (incoming, string) result
  (** Parse one line of the stdin protocol including the streaming
      verb.  {!decode_request} alone rejects [TRANSFORM-STREAM] (a
      stream is not a [Service.request]). *)

  val encode_request : Service.request -> (string, string) result
  (** Render a request back to one line.  [Error _] when the request is
      not expressible in the line protocol: a [Batch], a name
      containing whitespace, or a query containing a newline.
      Doc-targeted TRANSFORM/COUNT on a document named ["VIEW"] or
      ["DOC"] renders with the explicit [DOC] keyword. *)

  val render_response : Service.response -> string
  (** The reply text of the stdin protocol: ["OK <payload>"],
      ["ERR <code>: <message>"], or for the multi-line payloads (stats
      dump, view list) the payload followed by a line reading [OK]. *)
end

module Binary : sig
  val protocol_version : int
  (** This codec speaks versions {!min_protocol_version} through 2.
      Version 2 adds the streamed-result frames; version-1 frames are
      still accepted and answered in kind. *)

  val min_protocol_version : int
  (** 1. *)

  val magic : string
  (** Two bytes, ["XU"]. *)

  val header_size : int
  (** 16 bytes: magic (2) + version (1) + kind (1) + request id (8,
      big-endian) + payload length (4, big-endian). *)

  val default_max_frame : int
  (** 16 MiB. *)

  (** Frame kinds.  [Request]/[Response] are the v1 round trip; the
      [Stream_*] kinds (v2) carry one streamed transform result:
      [Stream_begin] (empty payload), any number of [Stream_chunk]
      frames whose payload is raw result bytes, then exactly one of
      [Stream_end] (totals) or [Stream_error] (code + message, the
      mid-stream failure frame).  All frames of one stream share the
      request id.  [Notice] (v2) is the server-push invalidation frame
      on the reserved id-0 channel. *)
  type kind =
    | Request
    | Response
    | Stream_begin
    | Stream_chunk
    | Stream_end
    | Stream_error
    | Notice

  type header = { version : int; kind : kind; id : int64; length : int }

  val encode_header : header -> Bytes.t

  val decode_header : ?max_frame:int -> Bytes.t -> (header, string) result
  (** Validates magic, version, kind and payload length (rejecting
      anything above [max_frame], default {!default_max_frame}).
      Stream kinds in a version-1 header are rejected. *)

  (** {2 Payload codecs}

      Tag byte + fields; strings are 4-byte big-endian length-prefixed
      bytes, so any query text round-trips. *)

  val encode_request : Service.request -> string
  val decode_request : string -> (Service.request, string) result
  val encode_response : Service.response -> string
  val decode_response : string -> (Service.response, string) result

  (** {2 Streaming requests (v2)} *)

  type stream_request = {
    doc : string;
    engine : Core.Engine.algo;
    query : string;
    chunk_size : int;
  }

  type ingest_source = Ingest_doc of string | Ingest_file of string

  type ingest_request = {
    source : ingest_source;
    query : string;
    chunk_size : int;
  }
  (** A streamed-ingest request (payload tag 16, v2): transform a stored
      document or a server-side file through the fused SAX pipeline,
      never materializing a tree.  Replies use the same [Stream_*]
      frames as tag 7. *)

  (** What a server reads out of a Request frame: a plain service
      request, a stream request (payload tag 7, v2 frames only), or a
      streamed-ingest request (payload tag 16, v2 frames only). *)
  type incoming =
    | Plain of Service.request
    | Stream of stream_request
    | Ingest of ingest_request

  val encode_stream_request : stream_request -> string
  val encode_ingest_request : ingest_request -> string

  val decode_incoming : version:int -> string -> (incoming, string) result
  (** Decode a Request-frame payload given the frame-header version.
      A stream or ingest request in a v1 frame is an [Error _]; either
      tag nested anywhere inside a batch is malformed. *)

  (** {2 Invalidation notices (v2)}

      Server-push frames on the reserved id-0 channel telling connected
      clients that a stored document was unloaded, replaced or committed
      over — or that a commit cost the document its schema binding.  The
      server sends them only to connections that have spoken v2 — a v1
      peer never sees the frame kind (and so stays blind to commits and
      schema drops). *)

  (** Wire-local reason (not {!Doc_store.reason}): [Schema_dropped] is
      an extra notice riding on a [Committed] event whose revalidation
      dropped the binding, not a store lifecycle transition. *)
  type notice_reason = Unloaded | Replaced | Committed | Schema_dropped

  type notice = {
    doc : string;
    reason : notice_reason;
    generation : int;
        (** of the new binding for [Replaced]/[Committed], of the
            removed one for [Unloaded] *)
  }

  val notice_of_event : Doc_store.event -> notice

  val notices_of_event : Doc_store.event -> notice list
  (** All notices one event implies: the {!notice_of_event} notice,
      plus a [Schema_dropped] one when the event's [schema_dropped]
      flag is set.  What the server broadcasts. *)

  val encode_notice : notice -> string
  val decode_notice : string -> (notice, string) result

  val render_notice : notice -> string
  (** Human-readable one-liner ([NOTICE unloaded d generation=4]) for
      [xut client --notices]. *)

  val notice_id : int64
  (** 0: every notice frame carries the reserved id. *)

  val notice_frame : notice -> string

  (** {2 Whole frames}

      Plain requests and responses are framed at version 1 (the lowest
      version that can express them), so new clients interoperate with
      old servers; [response_frame ?version] lets the server echo the
      request frame's version, and [request_frame ~version:2] is how a
      client subscribes to the notice channel.  Stream and notice
      frames are always version 2. *)

  val request_frame : ?version:int -> id:int64 -> Service.request -> string
  val response_frame : ?version:int -> id:int64 -> Service.response -> string
  val stream_request_frame : id:int64 -> stream_request -> string
  val ingest_request_frame : id:int64 -> ingest_request -> string
  val stream_begin_frame : id:int64 -> string
  val stream_chunk_frame : id:int64 -> string -> string
  val stream_end_frame : id:int64 -> bytes:int -> chunks:int -> string
  val stream_error_frame : id:int64 -> code:Service.err_code -> string -> string

  val decode_stream_end : string -> (int * int, string) result
  (** [(bytes, chunks)] totals out of a [Stream_end] payload. *)

  val decode_stream_error : string -> (Service.err_code * string, string) result
end
