(** Codec between {!Xut_service.Service} requests/responses and bytes.

    Two renderings of the same typed API:

    - {!Line}: the human-typeable protocol of [xut serve] over stdin —
      one request per line, so queries with embedded newlines are not
      expressible (that limitation is why the socket transport exists).
    - {!Binary}: the length-prefixed framing of the socket transport —
      every request is expressible, frames carry a request id so
      responses may complete out of order, and a version byte leaves
      room for protocol evolution.

    Both decoders are total: malformed input is an [Error _], never an
    exception. *)

open Xut_service

module Line : sig
  val decode_request : string -> (Service.request, string) result
  (** Parse one line:
      {v
      LOAD <name> <file>
      UNLOAD <name>
      TRANSFORM <name> <engine> <query text...>
      COUNT <name> <engine> <query text...>
      STATS
      v} *)

  val encode_request : Service.request -> (string, string) result
  (** Render a request back to one line.  [Error _] when the request is
      not expressible in the line protocol: a [Batch], a name
      containing whitespace, or a query containing a newline. *)

  val render_response : Service.response -> string
  (** The reply text of the stdin protocol: ["OK <payload>"],
      ["ERR <code>: <message>"], or for a stats dump the dump followed
      by a line reading [OK]. *)
end

module Binary : sig
  val protocol_version : int
  (** This codec speaks version 1. *)

  val magic : string
  (** Two bytes, ["XU"]. *)

  val header_size : int
  (** 16 bytes: magic (2) + version (1) + kind (1) + request id (8,
      big-endian) + payload length (4, big-endian). *)

  val default_max_frame : int
  (** 16 MiB. *)

  type kind = Request | Response

  type header = { version : int; kind : kind; id : int64; length : int }

  val encode_header : header -> Bytes.t

  val decode_header : ?max_frame:int -> Bytes.t -> (header, string) result
  (** Validates magic, version, kind and payload length (rejecting
      anything above [max_frame], default {!default_max_frame}). *)

  (** {2 Payload codecs}

      Tag byte + fields; strings are 4-byte big-endian length-prefixed
      bytes, so any query text round-trips. *)

  val encode_request : Service.request -> string
  val decode_request : string -> (Service.request, string) result
  val encode_response : Service.response -> string
  val decode_response : string -> (Service.response, string) result

  (** {2 Whole frames} *)

  val request_frame : id:int64 -> Service.request -> string
  val response_frame : id:int64 -> Service.response -> string
end
