open Xut_service

module Line = struct
  let split2 s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

  let decode_request line =
    let line = String.trim line in
    let verb, rest = split2 line in
    match String.uppercase_ascii verb with
    | "LOAD" -> begin
      (* LOAD <name> <file> [SCHEMA <schema>] *)
      let usage = "usage: LOAD <name> <file> [SCHEMA <schema>]" in
      match split2 rest with
      | "", _ -> Error usage
      | name, rest' when rest' <> "" -> begin
        match split2 rest' with
        | file, "" -> Ok (Service.Load { name; file; schema = None })
        | file, tail -> begin
          match split2 tail with
          | kw, s when String.uppercase_ascii kw = "SCHEMA" && s <> "" ->
            Ok (Service.Load { name; file; schema = Some s })
          | _ -> Error usage
        end
      end
      | _ -> Error usage
    end
    | "UNLOAD" ->
      if rest = "" then Error "usage: UNLOAD <name>"
      else Ok (Service.Unload { name = rest })
    | ("TRANSFORM" | "COUNT") as verb -> begin
      (* TRANSFORM [DOC] <doc> <engine> <query>
         TRANSFORM VIEW <name> <engine> <query>
         The literal keyword VIEW claims the first word; the DOC keyword
         is the explicit escape hatch, so a document literally named
         "VIEW" (or "DOC") stays addressable: TRANSFORM DOC VIEW ... *)
      let name, rest' = split2 rest in
      let target, rest' =
        match name with
        | "VIEW" -> (
          match split2 rest' with
          | vname, rest'' when vname <> "" -> (Some (Service.View vname), rest'')
          | _ -> (None, rest'))
        | "DOC" -> (
          match split2 rest' with
          | dname, rest'' when dname <> "" -> (Some (Service.Doc dname), rest'')
          | _ -> (None, rest'))
        | "" -> (None, rest')
        | name -> (Some (Service.Doc name), rest')
      in
      match target with
      | Some target when rest' <> "" -> begin
        let engine_s, query = split2 rest' in
        match Core.Engine.of_string engine_s with
        | None -> Error (Printf.sprintf "unknown engine %S" engine_s)
        | Some engine ->
          if query = "" then
            Error (Printf.sprintf "usage: %s [DOC|VIEW] <name> <engine> <query>" verb)
          else if verb = "COUNT" then Ok (Service.Count { target; engine; query })
          else Ok (Service.Transform { target; engine; query })
      end
      | _ -> Error (Printf.sprintf "usage: %s [DOC|VIEW] <name> <engine> <query>" verb)
    end
    | ("APPLY" | "COMMIT") as verb -> begin
      match split2 rest with
      | doc, query when doc <> "" && query <> "" ->
        if verb = "APPLY" then Ok (Service.Apply { doc; query })
        else Ok (Service.Commit { doc; query })
      | _ -> Error (Printf.sprintf "usage: %s <name> <query>" verb)
    end
    | "DEFVIEW" -> begin
      (* DEFVIEW <name> := <transform query>  (the ":=" is optional) *)
      match split2 rest with
      | name, rest' when name <> "" && rest' <> "" ->
        let query =
          match split2 rest' with ":=", q when q <> "" -> q | _ -> rest'
        in
        Ok (Service.Defview { name; query })
      | _ -> Error "usage: DEFVIEW <name> := <transform query>"
    end
    | "UNDEFVIEW" ->
      if rest = "" then Error "usage: UNDEFVIEW <name>"
      else Ok (Service.Undefview { name = rest })
    | "LISTVIEWS" -> Ok Service.Listviews
    | "STATS" -> Ok Service.Stats
    | "TRANSFORM-STREAM" ->
      Error "TRANSFORM-STREAM is a streaming request: decode it with Line.decode_incoming"
    | "" -> Error "empty request"
    | v ->
      Error
        (Printf.sprintf
           "unknown request %S \
            (LOAD|UNLOAD|TRANSFORM|TRANSFORM-STREAM|COUNT|APPLY|COMMIT|DEFVIEW|UNDEFVIEW|LISTVIEWS|STATS)"
           v)

  type ingest = { source : [ `Doc of string | `File of string ]; query : string }
  type incoming = Plain of Service.request | Stream_ingest of ingest

  (* TRANSFORM-STREAM [DOC] <name> <query> — streamed ingest of a stored
     document; TRANSFORM-STREAM FILE <path> <query> — of a file, never
     building the tree.  No engine word: the streaming SAX machinery is
     the engine, with automatic fallback. *)
  let decode_incoming line =
    let trimmed = String.trim line in
    let verb, rest = split2 trimmed in
    if String.uppercase_ascii verb <> "TRANSFORM-STREAM" then
      Result.map (fun r -> Plain r) (decode_request line)
    else begin
      let usage = "usage: TRANSFORM-STREAM [DOC|FILE] <name|path> <query>" in
      let name, rest' = split2 rest in
      let source, rest' =
        match name with
        | "FILE" -> (
          match split2 rest' with
          | path, rest'' when path <> "" -> (Some (`File path), rest'')
          | _ -> (None, rest'))
        | "DOC" -> (
          match split2 rest' with
          | dname, rest'' when dname <> "" -> (Some (`Doc dname), rest'')
          | _ -> (None, rest'))
        | "" -> (None, rest')
        | name -> (Some (`Doc name), rest')
      in
      match source with
      | Some source when rest' <> "" -> Ok (Stream_ingest { source; query = rest' })
      | _ -> Error usage
    end

  let plain_word s =
    s <> "" && not (String.exists (fun c -> c = ' ' || c = '\n' || c = '\r' || c = '\t') s)

  let one_line s = not (String.exists (fun c -> c = '\n' || c = '\r') s)

  let encode_targeted verb target engine query =
    let name, prefix =
      match target with
      | Service.Doc name ->
        (* the DOC keyword disambiguates document names that would
           otherwise read as a keyword *)
        (name, if name = "VIEW" || name = "DOC" then "DOC " else "")
      | Service.View name -> (name, "VIEW ")
    in
    if plain_word name && one_line query then
      Ok (Printf.sprintf "%s %s%s %s %s" verb prefix name (Core.Engine.name engine) query)
    else Error (Printf.sprintf "%s with a multi-line query is not expressible on one line" verb)

  let encode_request = function
    | Service.Load { name; file; schema } ->
      let schema_ok = match schema with None -> true | Some s -> plain_word s in
      if plain_word name && plain_word file && schema_ok then
        Ok
          (match schema with
          | None -> Printf.sprintf "LOAD %s %s" name file
          | Some s -> Printf.sprintf "LOAD %s %s SCHEMA %s" name file s)
      else Error "LOAD name/file/schema with whitespace is not expressible on one line"
    | Service.Unload { name } ->
      if plain_word name then Ok ("UNLOAD " ^ name)
      else Error "UNLOAD name with whitespace is not expressible on one line"
    | Service.Transform { target; engine; query } ->
      encode_targeted "TRANSFORM" target engine query
    | Service.Count { target; engine; query } -> encode_targeted "COUNT" target engine query
    | Service.Apply { doc; query } ->
      if plain_word doc && one_line query then Ok (Printf.sprintf "APPLY %s %s" doc query)
      else Error "APPLY with a multi-line query is not expressible on one line"
    | Service.Commit { doc; query } ->
      if plain_word doc && one_line query then Ok (Printf.sprintf "COMMIT %s %s" doc query)
      else Error "COMMIT with a multi-line query is not expressible on one line"
    | Service.Defview { name; query } ->
      if plain_word name && one_line query then
        Ok (Printf.sprintf "DEFVIEW %s := %s" name query)
      else Error "DEFVIEW with a multi-line definition is not expressible on one line"
    | Service.Undefview { name } ->
      if plain_word name then Ok ("UNDEFVIEW " ^ name)
      else Error "UNDEFVIEW name with whitespace is not expressible on one line"
    | Service.Listviews -> Ok "LISTVIEWS"
    | Service.Stats -> Ok "STATS"
    | Service.Batch _ -> Error "batches exist only in the binary protocol"

  let render_response resp =
    match resp with
    | Service.Ok (Service.Stats_dump dump) -> dump ^ "\nOK"
    | Service.Ok (Service.View_list _) -> begin
      (* multi-line payload, trailer style like STATS *)
      match Service.render_response resp with
      | Ok payload -> payload ^ "\nOK"
      | Error message -> "ERR " ^ message
    end
    | _ -> begin
      match Service.render_response resp with
      | Ok payload -> "OK " ^ payload
      | Error message -> "ERR " ^ message
    end
end

module Binary = struct
  let protocol_version = 2
  let min_protocol_version = 1
  let magic = "XU"
  let header_size = 16
  let default_max_frame = 16 * 1024 * 1024

  type kind =
    | Request
    | Response
    | Stream_begin
    | Stream_chunk
    | Stream_end
    | Stream_error
    | Notice

  type header = { version : int; kind : kind; id : int64; length : int }

  let kind_byte = function
    | Request -> '\001'
    | Response -> '\002'
    | Stream_begin -> '\003'
    | Stream_chunk -> '\004'
    | Stream_end -> '\005'
    | Stream_error -> '\006'
    | Notice -> '\007'

  let kind_of_byte = function
    | '\001' -> Some Request
    | '\002' -> Some Response
    | '\003' -> Some Stream_begin
    | '\004' -> Some Stream_chunk
    | '\005' -> Some Stream_end
    | '\006' -> Some Stream_error
    | '\007' -> Some Notice
    | _ -> None

  let encode_header { version; kind; id; length } =
    let b = Bytes.create header_size in
    Bytes.set b 0 magic.[0];
    Bytes.set b 1 magic.[1];
    Bytes.set b 2 (Char.chr (version land 0xff));
    Bytes.set b 3 (kind_byte kind);
    Bytes.set_int64_be b 4 id;
    Bytes.set_int32_be b 12 (Int32.of_int length);
    b

  let decode_header ?(max_frame = default_max_frame) b =
    if Bytes.length b <> header_size then
      Error (Printf.sprintf "short header (%d bytes, want %d)" (Bytes.length b) header_size)
    else if Bytes.get b 0 <> magic.[0] || Bytes.get b 1 <> magic.[1] then
      Error "bad magic (not an xut frame)"
    else begin
      let version = Char.code (Bytes.get b 2) in
      if version < min_protocol_version || version > protocol_version then
        Error
          (Printf.sprintf "unsupported protocol version %d (this side speaks %d-%d)" version
             min_protocol_version protocol_version)
      else begin
        match kind_of_byte (Bytes.get b 3) with
        | None -> Error (Printf.sprintf "bad frame kind 0x%02x" (Char.code (Bytes.get b 3)))
        | Some kind ->
          if version < 2 && kind <> Request && kind <> Response then
            Error
              (Printf.sprintf "frame kind 0x%02x needs protocol version 2"
                 (Char.code (Bytes.get b 3)))
          else begin
            let id = Bytes.get_int64_be b 4 in
            let length = Int32.to_int (Bytes.get_int32_be b 12) in
            if length < 0 || length > max_frame then
              Error (Printf.sprintf "oversized frame (%d bytes > max %d)" length max_frame)
            else Ok { version; kind; id; length }
          end
      end
    end

  (* ---- payload encoding: tag byte + length-prefixed fields ---- *)

  let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
  let put_u32 b n = Buffer.add_int32_be b (Int32.of_int n)

  let put_str b s =
    put_u32 b (String.length s);
    Buffer.add_string b s

  let rec put_request b = function
    (* tag 1 is the v1 schemaless load; a load naming a schema gets its
       own tag (15) so a v1 peer rejects rather than silently drops the
       schema *)
    | Service.Load { name; file; schema = None } ->
      put_u8 b 1;
      put_str b name;
      put_str b file
    | Service.Load { name; file; schema = Some s } ->
      put_u8 b 15;
      put_str b name;
      put_str b file;
      put_str b s
    | Service.Unload { name } ->
      put_u8 b 2;
      put_str b name
    | Service.Transform { target; engine; query } ->
      (* tag 3 is the v1 doc-addressed transform; view targets get their
         own tag so a v1 peer rejects rather than misreads them *)
      let tag, name = match target with Service.Doc d -> (3, d) | Service.View v -> (10, v) in
      put_u8 b tag;
      put_str b name;
      put_str b (Core.Engine.name engine);
      put_str b query
    | Service.Count { target; engine; query } ->
      let tag, name = match target with Service.Doc d -> (4, d) | Service.View v -> (11, v) in
      put_u8 b tag;
      put_str b name;
      put_str b (Core.Engine.name engine);
      put_str b query
    | Service.Stats -> put_u8 b 5
    | Service.Batch reqs ->
      put_u8 b 6;
      put_u32 b (List.length reqs);
      List.iter (put_request b) reqs
    (* tag 7 is the stream request, which is not a [Service.request] *)
    | Service.Apply { doc; query } ->
      put_u8 b 8;
      put_str b doc;
      put_str b query
    | Service.Commit { doc; query } ->
      put_u8 b 9;
      put_str b doc;
      put_str b query
    (* tags 10/11 are the view-addressed Transform/Count above *)
    | Service.Defview { name; query } ->
      put_u8 b 12;
      put_str b name;
      put_str b query
    | Service.Undefview { name } ->
      put_u8 b 13;
      put_str b name
    | Service.Listviews -> put_u8 b 14
  (* tag 15 is the schema-carrying Load above *)

  let err_code_byte = function
    | Service.Unknown_document -> 1
    | Service.Query_parse_error -> 2
    | Service.Eval_error -> 3
    | Service.Overloaded -> 4
    | Service.Bad_request -> 5
    | Service.Conflict -> 6
    | Service.View_compose_error -> 7
    | Service.Statically_empty -> 8

  let err_code_of_byte = function
    | 1 -> Some Service.Unknown_document
    | 2 -> Some Service.Query_parse_error
    | 3 -> Some Service.Eval_error
    | 4 -> Some Service.Overloaded
    | 5 -> Some Service.Bad_request
    | 6 -> Some Service.Conflict
    | 7 -> Some Service.View_compose_error
    | 8 -> Some Service.Statically_empty
    | _ -> None

  let rec put_response b = function
    (* tag 1 is the v1 schemaless Doc_loaded; a schema-bound load is
       acknowledged with its own tag (14) carrying the schema name *)
    | Service.Ok (Service.Doc_loaded { name; elements; reloaded; generation; schema = None })
      ->
      put_u8 b 1;
      put_str b name;
      put_u32 b elements;
      put_u8 b (if reloaded then 1 else 0);
      put_u32 b generation
    | Service.Ok
        (Service.Doc_loaded { name; elements; reloaded; generation; schema = Some s }) ->
      put_u8 b 14;
      put_str b name;
      put_u32 b elements;
      put_u8 b (if reloaded then 1 else 0);
      put_u32 b generation;
      put_str b s
    | Service.Ok (Service.Doc_unloaded { name }) ->
      put_u8 b 2;
      put_str b name
    | Service.Ok (Service.Tree s) ->
      put_u8 b 3;
      put_str b s
    | Service.Ok (Service.Element_count n) ->
      put_u8 b 4;
      put_u32 b n
    | Service.Ok (Service.Stats_dump s) ->
      put_u8 b 5;
      put_str b s
    | Service.Error { code; message } ->
      put_u8 b 6;
      put_u8 b (err_code_byte code);
      put_str b message
    | Service.Ok (Service.Batch_results rs) ->
      put_u8 b 7;
      put_u32 b (List.length rs);
      List.iter (put_response b) rs
    | Service.Ok (Service.Stream_done { bytes; chunks }) ->
      put_u8 b 8;
      put_u32 b bytes;
      put_u32 b chunks
    | Service.Ok (Service.Applied { doc; primitives; collapsed; conflicts }) ->
      put_u8 b 9;
      put_str b doc;
      put_u32 b primitives;
      put_u32 b collapsed;
      put_u32 b (List.length conflicts);
      List.iter (put_str b) conflicts
    | Service.Ok (Service.Committed { doc; primitives; collapsed; elements; generation }) ->
      put_u8 b 10;
      put_str b doc;
      put_u32 b primitives;
      put_u32 b collapsed;
      put_u32 b elements;
      put_u32 b generation
    | Service.Ok (Service.View_defined { name; base; depth; generation; redefined }) ->
      put_u8 b 11;
      put_str b name;
      put_str b base;
      put_u32 b depth;
      put_u32 b generation;
      put_u8 b (if redefined then 1 else 0)
    | Service.Ok (Service.View_undefined { name }) ->
      put_u8 b 12;
      put_str b name
    | Service.Ok (Service.View_list views) ->
      put_u8 b 13;
      put_u32 b (List.length views);
      List.iter
        (fun { Service.v_name; v_base; v_depth; v_generation } ->
          put_str b v_name;
          put_str b v_base;
          put_u32 b v_depth;
          put_u32 b v_generation)
        views

  let encode_request req =
    let b = Buffer.create 128 in
    put_request b req;
    Buffer.contents b

  let encode_response resp =
    let b = Buffer.create 128 in
    put_response b resp;
    Buffer.contents b

  (* ---- payload decoding: a cursor that raises on malformed input,
     caught at the [decode_*] boundary ---- *)

  exception Malformed of string

  type cursor = { s : string; mutable pos : int }

  let need c n =
    if n < 0 || c.pos + n > String.length c.s then raise (Malformed "truncated payload")

  let get_u8 c =
    need c 1;
    let v = Char.code c.s.[c.pos] in
    c.pos <- c.pos + 1;
    v

  let get_u32 c =
    need c 4;
    let v = Int32.to_int (String.get_int32_be c.s c.pos) in
    c.pos <- c.pos + 4;
    if v < 0 then raise (Malformed "negative length");
    v

  let get_str c =
    let n = get_u32 c in
    need c n;
    let s = String.sub c.s c.pos n in
    c.pos <- c.pos + n;
    s

  let get_engine c =
    let s = get_str c in
    match Core.Engine.of_string s with
    | Some e -> e
    | None -> raise (Malformed (Printf.sprintf "unknown engine %S" s))

  (* Every list element consumes at least one byte, so bounding the
     count by the remaining bytes rejects absurd lengths before any
     allocation. *)
  let get_count c =
    let n = get_u32 c in
    need c n;
    n

  let rec get_request c =
    match get_u8 c with
    | 1 ->
      let name = get_str c in
      let file = get_str c in
      Service.Load { name; file; schema = None }
    | 2 -> Service.Unload { name = get_str c }
    | (3 | 4 | 10 | 11) as tag ->
      let name = get_str c in
      let engine = get_engine c in
      let query = get_str c in
      let target = if tag >= 10 then Service.View name else Service.Doc name in
      if tag = 3 || tag = 10 then Service.Transform { target; engine; query }
      else Service.Count { target; engine; query }
    | 5 -> Service.Stats
    | 6 ->
      let n = get_count c in
      Service.Batch (List.init n (fun _ -> get_request c))
    | 8 ->
      let doc = get_str c in
      let query = get_str c in
      Service.Apply { doc; query }
    | 9 ->
      let doc = get_str c in
      let query = get_str c in
      Service.Commit { doc; query }
    | 12 ->
      let name = get_str c in
      let query = get_str c in
      Service.Defview { name; query }
    | 13 -> Service.Undefview { name = get_str c }
    | 14 -> Service.Listviews
    | 15 ->
      let name = get_str c in
      let file = get_str c in
      let schema = get_str c in
      Service.Load { name; file; schema = Some schema }
    | t -> raise (Malformed (Printf.sprintf "unknown request tag %d" t))

  let rec get_response c =
    match get_u8 c with
    | 1 ->
      let name = get_str c in
      let elements = get_u32 c in
      let reloaded =
        match get_u8 c with
        | 0 -> false
        | 1 -> true
        | b -> raise (Malformed (Printf.sprintf "bad reloaded flag %d" b))
      in
      let generation = get_u32 c in
      Service.Ok (Service.Doc_loaded { name; elements; reloaded; generation; schema = None })
    | 2 -> Service.Ok (Service.Doc_unloaded { name = get_str c })
    | 3 -> Service.Ok (Service.Tree (get_str c))
    | 4 -> Service.Ok (Service.Element_count (get_u32 c))
    | 5 -> Service.Ok (Service.Stats_dump (get_str c))
    | 6 -> begin
      let code_byte = get_u8 c in
      match err_code_of_byte code_byte with
      | None -> raise (Malformed (Printf.sprintf "unknown error code %d" code_byte))
      | Some code -> Service.Error { code; message = get_str c }
    end
    | 7 ->
      let n = get_count c in
      Service.Ok (Service.Batch_results (List.init n (fun _ -> get_response c)))
    | 8 ->
      let bytes = get_u32 c in
      let chunks = get_u32 c in
      Service.Ok (Service.Stream_done { bytes; chunks })
    | 9 ->
      let doc = get_str c in
      let primitives = get_u32 c in
      let collapsed = get_u32 c in
      let n = get_count c in
      let conflicts = List.init n (fun _ -> get_str c) in
      Service.Ok (Service.Applied { doc; primitives; collapsed; conflicts })
    | 10 ->
      let doc = get_str c in
      let primitives = get_u32 c in
      let collapsed = get_u32 c in
      let elements = get_u32 c in
      let generation = get_u32 c in
      Service.Ok (Service.Committed { doc; primitives; collapsed; elements; generation })
    | 11 ->
      let name = get_str c in
      let base = get_str c in
      let depth = get_u32 c in
      let generation = get_u32 c in
      let redefined =
        match get_u8 c with
        | 0 -> false
        | 1 -> true
        | b -> raise (Malformed (Printf.sprintf "bad redefined flag %d" b))
      in
      Service.Ok (Service.View_defined { name; base; depth; generation; redefined })
    | 12 -> Service.Ok (Service.View_undefined { name = get_str c })
    | 13 ->
      let n = get_count c in
      let views =
        List.init n (fun _ ->
            let v_name = get_str c in
            let v_base = get_str c in
            let v_depth = get_u32 c in
            let v_generation = get_u32 c in
            { Service.v_name; v_base; v_depth; v_generation })
      in
      Service.Ok (Service.View_list views)
    | 14 ->
      let name = get_str c in
      let elements = get_u32 c in
      let reloaded =
        match get_u8 c with
        | 0 -> false
        | 1 -> true
        | b -> raise (Malformed (Printf.sprintf "bad reloaded flag %d" b))
      in
      let generation = get_u32 c in
      let schema = get_str c in
      Service.Ok
        (Service.Doc_loaded { name; elements; reloaded; generation; schema = Some schema })
    | t -> raise (Malformed (Printf.sprintf "unknown response tag %d" t))

  let decode_with get s =
    let c = { s; pos = 0 } in
    match get c with
    | v ->
      if c.pos <> String.length s then
        Error (Printf.sprintf "%d trailing bytes after payload" (String.length s - c.pos))
      else Ok v
    | exception Malformed msg -> Error msg

  let decode_request s = decode_with get_request s
  let decode_response s = decode_with get_response s

  (* ---- streaming requests (protocol v2) ----

     A stream request is NOT a [Service.request] constructor: the
     service's request type stays pure data shared with the line
     protocol, while streaming exists only where there is somewhere for
     the chunks to go.  On the wire it gets its own payload tag (7),
     valid only at the top level of a v2 Request frame — never inside a
     batch. *)

  let stream_request_tag = 7

  type stream_request = {
    doc : string;
    engine : Core.Engine.algo;
    query : string;
    chunk_size : int;
  }

  (* A streamed-ingest request (tag 16, v2) transforms its source — a
     stored document or a server-side file — through the fused SAX
     pipeline, never materializing a tree.  Same reply discipline as
     tag 7: Stream_begin / Stream_chunk* / Stream_end or Stream_error. *)

  let ingest_request_tag = 16

  type ingest_source = Ingest_doc of string | Ingest_file of string

  type ingest_request = {
    source : ingest_source;
    query : string;
    chunk_size : int;
  }

  type incoming =
    | Plain of Service.request
    | Stream of stream_request
    | Ingest of ingest_request

  let encode_stream_request { doc; engine; query; chunk_size } =
    let b = Buffer.create 128 in
    put_u8 b stream_request_tag;
    put_str b doc;
    put_str b (Core.Engine.name engine);
    put_str b query;
    put_u32 b chunk_size;
    Buffer.contents b

  let get_stream_request c =
    (match get_u8 c with
    | t when t = stream_request_tag -> ()
    | t -> raise (Malformed (Printf.sprintf "not a stream request (tag %d)" t)));
    let doc = get_str c in
    let engine = get_engine c in
    let query = get_str c in
    let chunk_size = get_u32 c in
    if chunk_size = 0 then raise (Malformed "stream chunk_size must be positive");
    { doc; engine; query; chunk_size }

  let encode_ingest_request ({ source; query; chunk_size } : ingest_request) =
    let b = Buffer.create 128 in
    put_u8 b ingest_request_tag;
    (match source with
    | Ingest_doc d ->
      put_u8 b 1;
      put_str b d
    | Ingest_file p ->
      put_u8 b 2;
      put_str b p);
    put_str b query;
    put_u32 b chunk_size;
    Buffer.contents b

  let get_ingest_request c : ingest_request =
    (match get_u8 c with
    | t when t = ingest_request_tag -> ()
    | t -> raise (Malformed (Printf.sprintf "not an ingest request (tag %d)" t)));
    let source =
      match get_u8 c with
      | 1 -> Ingest_doc (get_str c)
      | 2 -> Ingest_file (get_str c)
      | b -> raise (Malformed (Printf.sprintf "unknown ingest source %d" b))
    in
    let query = get_str c in
    let chunk_size = get_u32 c in
    if chunk_size = 0 then raise (Malformed "stream chunk_size must be positive");
    { source; query; chunk_size }

  let decode_incoming ~version s =
    if s <> "" && Char.code s.[0] = stream_request_tag then
      if version < 2 then Error "stream requests need protocol version 2"
      else Result.map (fun sr -> Stream sr) (decode_with get_stream_request s)
    else if s <> "" && Char.code s.[0] = ingest_request_tag then
      if version < 2 then Error "streamed-ingest requests need protocol version 2"
      else Result.map (fun ir -> Ingest ir) (decode_with get_ingest_request s)
    else Result.map (fun r -> Plain r) (decode_with get_request s)

  (* ---- invalidation notices (protocol v2) ----

     Server-push frames on the reserved id-0 notice channel: a stored
     document was unloaded, replaced by a reload, committed, or lost its
     schema binding at a commit.  Sent only to peers that have spoken v2
     on the connection — a v1 peer never sees a frame kind it cannot
     parse.  The reason is a wire-local type (not {!Doc_store.reason}):
     [Schema_dropped] is an extra notice riding on a commit event, not a
     store lifecycle transition of its own. *)

  type notice_reason = Unloaded | Replaced | Committed | Schema_dropped

  type notice = {
    doc : string;
    reason : notice_reason;
    generation : int;  (** of the new binding for [Replaced], of the
                           removed one for [Unloaded] *)
  }

  let reason_of_store = function
    | Doc_store.Unloaded -> Unloaded
    | Doc_store.Replaced -> Replaced
    | Doc_store.Committed -> Committed

  let notice_of_event ev =
    {
      doc = ev.Doc_store.name;
      reason = reason_of_store ev.Doc_store.reason;
      generation = ev.Doc_store.generation;
    }

  (* A commit that dropped the document's schema binding yields two
     notices: the usual [Committed] (cache invalidation) plus a
     [Schema_dropped] so operators see the conformance loss. *)
  let notices_of_event ev =
    let base = notice_of_event ev in
    if ev.Doc_store.schema_dropped then [ base; { base with reason = Schema_dropped } ]
    else [ base ]

  let reason_byte = function
    | Unloaded -> 1
    | Replaced -> 2
    | Committed -> 3
    | Schema_dropped -> 4

  let reason_of_byte = function
    | 1 -> Some Unloaded
    | 2 -> Some Replaced
    | 3 -> Some Committed
    | 4 -> Some Schema_dropped
    | _ -> None

  let encode_notice { doc; reason; generation } =
    let b = Buffer.create 32 in
    put_u8 b (reason_byte reason);
    put_str b doc;
    put_u32 b generation;
    Buffer.contents b

  let decode_notice s =
    decode_with
      (fun c ->
        let reason_b = get_u8 c in
        match reason_of_byte reason_b with
        | None -> raise (Malformed (Printf.sprintf "unknown notice reason %d" reason_b))
        | Some reason ->
          let doc = get_str c in
          let generation = get_u32 c in
          { doc; reason; generation })
      s

  let render_notice { doc; reason; generation } =
    Printf.sprintf "NOTICE %s %s generation=%d"
      (match reason with
      | Unloaded -> "unloaded"
      | Replaced -> "replaced"
      | Committed -> "committed"
      | Schema_dropped -> "schema-dropped")
      doc generation

  (* ---- frame builders ----

     Plain requests and their responses are framed at the lowest version
     that can express them, so a v2 client interoperates with a v1
     server and a v2 server echoes a v1 client's version back (the
     client-side header check never sees a version newer than it sent).
     A client opts into the notice channel by framing its requests at
     v2.  Stream and notice frames are inherently v2. *)

  let frame ?(version = protocol_version) ~kind ~id payload =
    let header = encode_header { version; kind; id; length = String.length payload } in
    Bytes.unsafe_to_string header ^ payload

  let request_frame ?(version = 1) ~id req = frame ~version ~kind:Request ~id (encode_request req)

  let notice_id = 0L
  let notice_frame n = frame ~kind:Notice ~id:notice_id (encode_notice n)

  let response_frame ?(version = 1) ~id resp =
    frame ~version ~kind:Response ~id (encode_response resp)

  let stream_request_frame ~id sr = frame ~kind:Request ~id (encode_stream_request sr)
  let ingest_request_frame ~id ir = frame ~kind:Request ~id (encode_ingest_request ir)
  let stream_begin_frame ~id = frame ~kind:Stream_begin ~id ""
  let stream_chunk_frame ~id chunk = frame ~kind:Stream_chunk ~id chunk

  let stream_end_frame ~id ~bytes ~chunks =
    let b = Buffer.create 8 in
    put_u32 b bytes;
    put_u32 b chunks;
    frame ~kind:Stream_end ~id (Buffer.contents b)

  let decode_stream_end s =
    decode_with
      (fun c ->
        let bytes = get_u32 c in
        let chunks = get_u32 c in
        (bytes, chunks))
      s

  let stream_error_frame ~id ~code message =
    let b = Buffer.create 32 in
    put_u8 b (err_code_byte code);
    put_str b message;
    frame ~kind:Stream_error ~id (Buffer.contents b)

  let decode_stream_error s =
    decode_with
      (fun c ->
        let code_byte = get_u8 c in
        match err_code_of_byte code_byte with
        | None -> raise (Malformed (Printf.sprintf "unknown error code %d" code_byte))
        | Some code -> (code, get_str c))
      s
end
