(** Immutable XML tree model.

    Elements carry a unique integer id, assigned when the element is built
    (allocation is atomic, so trees built on concurrent domains still get
    distinct ids).
    Ids give nodes an identity independent of structural equality, which the
    transform algorithms use to key per-node annotations (the [sat] vectors
    of Section 5) and to implement the node-set membership test of the Naive
    method.  Structural operations ({!equal}, {!compare}) ignore ids. *)

type t =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string  (** processing instruction: target, content *)

and element = private {
  id : int;
  name : string;
  sym : Sym.t;  (** interned {!name} (see {!Sym}), assigned at build time *)
  attrs : (string * string) list;
  children : t list;
}

val elem : ?attrs:(string * string) list -> string -> t list -> t
(** [elem name children] builds an element node with a fresh id. *)

val element : ?attrs:(string * string) list -> string -> t list -> element
(** Like {!elem} but returns the record, for document roots. *)

val text : string -> t
val comment : string -> t
val pi : string -> string -> t

val with_children : element -> t list -> element
(** Replace the child list, keeping name/attrs and allocating a fresh id. *)

val with_name : element -> string -> element
(** Rename, keeping attrs/children and allocating a fresh id. *)

val name : element -> string

val sym : element -> Sym.t
(** The interned element name, the automata's transition alphabet. *)

val id : element -> int
val children : element -> t list
val attrs : element -> (string * string) list
val attr : element -> string -> string option

val child_elements : element -> element list

val text_content : element -> string
(** Concatenation of the element's {e direct} text children (the string
    value used for qualifier comparisons; see DESIGN.md "String values"). *)

val equal : t -> t -> bool
(** Structural equality ignoring element ids. *)

val equal_element : element -> element -> bool

val compare : t -> t -> int
(** Structural total order ignoring ids (document content order). *)

val size : t -> int
(** Number of nodes in the subtree (elements + texts + comments + PIs). *)

val element_count : t -> int
val depth : t -> int

val fold_elements : ('a -> element -> 'a) -> 'a -> element -> 'a
(** Pre-order fold over all elements of the subtree, root included. *)

val iter_elements : (element -> unit) -> element -> unit

val descendant_or_self : element -> element list
(** All elements of the subtree in document order, root first. *)

val refresh_ids : t -> t
(** Deep copy with fresh ids for every element (used by the
    copy-and-update baseline to model a full snapshot). *)

val pp : Format.formatter -> t -> unit
(** Debug printer (single line, ids omitted). *)

val pp_element : Format.formatter -> element -> unit
