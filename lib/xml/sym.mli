(** Global element-name interning.

    Maps element names to dense integer symbols, process-wide, so the
    automaton hot paths dispatch transitions on an [int] compare instead
    of [String.equal].  Interning happens once per open tag at parse /
    build time ({!Node.element} and the SAX parser intern; everything
    downstream reuses the symbol).

    Domain-safe: lookups are lock-free reads of an immutable snapshot
    published through an [Atomic]; insertions (first sighting of a name)
    take a mutex and publish a fresh snapshot.  A name interned on any
    domain yields the same symbol on every domain, forever. *)

type t = int
(** A symbol: a small dense non-negative int, stable for the process
    lifetime. *)

val none : t
(** A symbol no name maps to ([-1]); usable as a sentinel. *)

val intern : string -> t
(** [intern s] returns the symbol of [s], allocating a fresh one on first
    sight.  Lock-free when [s] is already known. *)

val find : string -> t
(** Like {!intern} but returns {!none} instead of allocating when [s] has
    never been interned (never takes the mutex). *)

val name : t -> string
(** Reverse lookup.  Raises [Invalid_argument] for unknown symbols. *)

val count : unit -> int
(** Number of distinct symbols interned so far (exact). *)

val interns : unit -> int
(** Total {!intern} calls.  Maintained without synchronization, so the
    value is approximate when several domains intern concurrently (it can
    only undercount); exact on a single domain. *)
