type t =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string

and element = {
  id : int;
  name : string;
  sym : Sym.t;
  attrs : (string * string) list;
  children : t list;
}

let counter = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add counter 1 + 1

let element ?(attrs = []) name children =
  { id = fresh_id (); name; sym = Sym.intern name; attrs; children }

let elem ?attrs name children = Element (element ?attrs name children)
let text s = Text s
let comment s = Comment s
let pi target content = Pi (target, content)

let with_children e children = { e with id = fresh_id (); children }
let with_name e name = { e with id = fresh_id (); name; sym = Sym.intern name }

let name e = e.name
let sym e = e.sym
let id e = e.id
let children e = e.children
let attrs e = e.attrs
let attr e k = List.assoc_opt k e.attrs

let child_elements e =
  List.filter_map (function Element c -> Some c | Text _ | Comment _ | Pi _ -> None) e.children

let text_content e =
  let buf = Buffer.create 16 in
  List.iter
    (function Text s -> Buffer.add_string buf s | Element _ | Comment _ | Pi _ -> ())
    e.children;
  Buffer.contents buf

let rec equal a b =
  match a, b with
  | Element x, Element y -> equal_element x y
  | Text x, Text y -> String.equal x y
  | Comment x, Comment y -> String.equal x y
  | Pi (t1, c1), Pi (t2, c2) -> String.equal t1 t2 && String.equal c1 c2
  | (Element _ | Text _ | Comment _ | Pi _), _ -> false

and equal_element x y =
  String.equal x.name y.name
  && List.length x.attrs = List.length y.attrs
  && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
       (List.sort Stdlib.compare x.attrs) (List.sort Stdlib.compare y.attrs)
  && List.length x.children = List.length y.children
  && List.for_all2 equal x.children y.children

let rec compare a b =
  match a, b with
  | Element x, Element y ->
    let c = String.compare x.name y.name in
    if c <> 0 then c
    else
      let c = Stdlib.compare (List.sort Stdlib.compare x.attrs) (List.sort Stdlib.compare y.attrs) in
      if c <> 0 then c else List.compare compare x.children y.children
  | Text x, Text y -> String.compare x y
  | Comment x, Comment y -> String.compare x y
  | Pi (t1, c1), Pi (t2, c2) ->
    let c = String.compare t1 t2 in
    if c <> 0 then c else String.compare c1 c2
  | Element _, (Text _ | Comment _ | Pi _) -> -1
  | (Text _ | Comment _ | Pi _), Element _ -> 1
  | Text _, (Comment _ | Pi _) -> -1
  | (Comment _ | Pi _), Text _ -> 1
  | Comment _, Pi _ -> -1
  | Pi _, Comment _ -> 1

let rec size = function
  | Element e -> List.fold_left (fun acc c -> acc + size c) 1 e.children
  | Text _ | Comment _ | Pi _ -> 1

let rec element_count = function
  | Element e -> List.fold_left (fun acc c -> acc + element_count c) 1 e.children
  | Text _ | Comment _ | Pi _ -> 0

let rec depth = function
  | Element e -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 e.children
  | Text _ | Comment _ | Pi _ -> 1

let rec fold_elements f acc e =
  let acc = f acc e in
  List.fold_left
    (fun acc c ->
      match c with Element ce -> fold_elements f acc ce | Text _ | Comment _ | Pi _ -> acc)
    acc e.children

let iter_elements f e = fold_elements (fun () e -> f e) () e

let descendant_or_self e = List.rev (fold_elements (fun acc e -> e :: acc) [] e)

let rec refresh_ids = function
  | Element e ->
    Element { e with id = fresh_id (); children = List.map refresh_ids e.children }
  | (Text _ | Comment _ | Pi _) as n -> n

let rec pp ppf = function
  | Element e -> pp_element ppf e
  | Text s -> Format.fprintf ppf "%S" s
  | Comment s -> Format.fprintf ppf "<!--%s-->" s
  | Pi (t, c) -> Format.fprintf ppf "<?%s %s?>" t c

and pp_element ppf e =
  Format.fprintf ppf "<%s" e.name;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v) e.attrs;
  match e.children with
  | [] -> Format.fprintf ppf "/>"
  | cs ->
    Format.fprintf ppf ">";
    List.iter (pp ppf) cs;
    Format.fprintf ppf "</%s>" e.name
