type event =
  | Start_document
  | Start_element of string * (string * string) list
  | Characters of string
  | Comment_event of string
  | Pi_event of string * string
  | End_element of string
  | End_document

exception Parse_error of { line : int; col : int; msg : string }

let pp_event ppf = function
  | Start_document -> Format.fprintf ppf "startDocument"
  | Start_element (n, attrs) ->
    Format.fprintf ppf "startElement(%s%a)" n
      (fun ppf -> List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v))
      attrs
  | Characters s -> Format.fprintf ppf "text(%S)" s
  | Comment_event s -> Format.fprintf ppf "comment(%S)" s
  | Pi_event (t, c) -> Format.fprintf ppf "pi(%s,%S)" t c
  | End_element n -> Format.fprintf ppf "endElement(%s)" n
  | End_document -> Format.fprintf ppf "endDocument"

let equal_event (a : event) (b : event) = a = b

(* The parser pulls characters from a chunked {!Reader}, so its memory is
   O(chunk + current token) — documents never need to fit in memory. *)

let error r msg = raise (Parse_error { line = Reader.line r; col = Reader.col r; msg })

let expect r c =
  let got = Reader.peek r in
  if got <> c then error r (Printf.sprintf "expected %C, found %C" c got);
  Reader.advance r

let expect_string r s = String.iter (fun c -> expect r c) s

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws r =
  while (not (Reader.eof r)) && is_ws (Reader.peek r) do
    Reader.advance r
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name r =
  if not (is_name_start (Reader.peek r)) then error r "expected a name";
  let buf = Buffer.create 16 in
  while (not (Reader.eof r)) && is_name_char (Reader.peek r) do
    Buffer.add_char buf (Reader.next r)
  done;
  Buffer.contents buf

(* Entity and character references; the '&' has been consumed. *)
let read_reference_body r =
  if Reader.peek r = '#' then begin
    Reader.advance r;
    let hex = Reader.peek r = 'x' in
    if hex then Reader.advance r;
    let digits = Buffer.create 8 in
    let ok c =
      if hex then
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      else c >= '0' && c <= '9'
    in
    while (not (Reader.eof r)) && ok (Reader.peek r) do
      Buffer.add_char digits (Reader.next r)
    done;
    if Buffer.length digits = 0 then error r "empty character reference";
    expect r ';';
    let code = int_of_string ((if hex then "0x" else "") ^ Buffer.contents digits) in
    if code < 0x80 then String.make 1 (Char.chr code)
    else begin
      (* UTF-8 encode *)
      let b = Buffer.create 4 in
      if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end;
      Buffer.contents b
    end
  end
  else begin
    let name = read_name r in
    expect r ';';
    match name with
    | "amp" -> "&"
    | "lt" -> "<"
    | "gt" -> ">"
    | "quot" -> "\""
    | "apos" -> "'"
    | other -> error r (Printf.sprintf "unknown entity &%s;" other)
  end

let read_reference r =
  expect r '&';
  read_reference_body r

let read_attr_value r =
  let quote = Reader.peek r in
  if quote <> '"' && quote <> '\'' then error r "expected attribute value";
  Reader.advance r;
  let buf = Buffer.create 16 in
  let rec loop () =
    if Reader.eof r then error r "unterminated attribute value"
    else if Reader.peek r = quote then Reader.advance r
    else if Reader.peek r = '&' then begin
      Buffer.add_string buf (read_reference r);
      loop ()
    end
    else begin
      Buffer.add_char buf (Reader.next r);
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let read_attributes r =
  let rec loop acc =
    skip_ws r;
    if is_name_start (Reader.peek r) then begin
      let k = read_name r in
      skip_ws r;
      expect r '=';
      skip_ws r;
      let v = read_attr_value r in
      loop ((k, v) :: acc)
    end
    else List.rev acc
  in
  loop []

(* Does the buffer end with [term]? (Buffer.nth is O(1).) *)
let buffer_ends_with buf term =
  let n = Buffer.length buf in
  let k = String.length term in
  n >= k
  &&
  let rec go i = i >= k || (Buffer.nth buf (n - k + i) = term.[i] && go (i + 1)) in
  go 0

(* Read characters until the literal [term] appears, consuming it; the
   content before [term] is returned. *)
let read_until r term =
  let buf = Buffer.create 32 in
  let rec loop () =
    if Reader.eof r then error r ("unterminated: expected " ^ term)
    else begin
      Buffer.add_char buf (Reader.next r);
      if buffer_ends_with buf term then
        Buffer.sub buf 0 (Buffer.length buf - String.length term)
      else loop ()
    end
  in
  loop ()

(* Skip a DOCTYPE declaration, including an internal subset. *)
let skip_doctype r =
  (* called after "<!DOCTYPE" has been consumed *)
  let depth = ref 1 in
  while !depth > 0 do
    if Reader.eof r then error r "unterminated DOCTYPE";
    (match Reader.peek r with
    | '<' -> incr depth
    | '>' -> decr depth
    | '[' -> incr depth
    | ']' -> decr depth
    | _ -> ());
    Reader.advance r
  done

let is_all_ws s =
  let ok = ref true in
  String.iter (fun c -> if not (is_ws c) then ok := false) s;
  !ok

let parse_events ~keep_ws r handler =
  handler Start_document;
  let stack = ref [] in
  let buf = Buffer.create 64 in
  let flush_text () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if s <> "" && (keep_ws || not (is_all_ws s)) then
      if !stack <> [] then handler (Characters s)
      else if not (is_all_ws s) then error r "text outside the document element"
  in
  let rec loop () =
    if Reader.eof r then begin
      flush_text ();
      (match !stack with
      | top :: _ -> error r ("unclosed element <" ^ top ^ ">")
      | [] -> ());
      handler End_document
    end
    else if Reader.peek r = '<' then begin
      flush_text ();
      Reader.advance r;
      (match Reader.peek r with
      | '?' ->
        Reader.advance r;
        let target = read_name r in
        skip_ws r;
        let content = read_until r "?>" in
        if String.lowercase_ascii target <> "xml" then handler (Pi_event (target, content))
      | '!' ->
        Reader.advance r;
        if Reader.peek r = '-' then begin
          expect_string r "--";
          let content = read_until r "-->" in
          handler (Comment_event content)
        end
        else if Reader.peek r = '[' then begin
          expect_string r "[CDATA[";
          let content = read_until r "]]>" in
          if !stack = [] then error r "CDATA outside the document element";
          handler (Characters content)
        end
        else begin
          expect_string r "DOCTYPE";
          skip_doctype r
        end
      | '/' ->
        Reader.advance r;
        let name = read_name r in
        skip_ws r;
        expect r '>';
        (match !stack with
        | top :: rest ->
          if top <> name then
            error r (Printf.sprintf "mismatched tags: <%s> closed by </%s>" top name);
          stack := rest;
          handler (End_element name)
        | [] -> error r (Printf.sprintf "closing tag </%s> with no open element" name))
      | _ ->
        let name = read_name r in
        (* warm the global symbol table: every consumer that runs an
           automaton over these events interns again and hits *)
        ignore (Sym.intern name : Sym.t);
        let attrs = read_attributes r in
        skip_ws r;
        if Reader.peek r = '/' then begin
          Reader.advance r;
          expect r '>';
          handler (Start_element (name, attrs));
          handler (End_element name)
        end
        else begin
          expect r '>';
          stack := name :: !stack;
          handler (Start_element (name, attrs))
        end);
      loop ()
    end
    else if Reader.peek r = '&' then begin
      Buffer.add_string buf (read_reference r);
      loop ()
    end
    else begin
      Buffer.add_char buf (Reader.next r);
      loop ()
    end
  in
  loop ()

let parse_reader ?(keep_ws = false) r handler = parse_events ~keep_ws r handler

let parse_string ?keep_ws src handler = parse_reader ?keep_ws (Reader.of_string src) handler

let parse_channel ?keep_ws ic handler = parse_reader ?keep_ws (Reader.of_channel ic) handler

let parse_file ?keep_ws path handler =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse_channel ?keep_ws ic handler)

let events_of_tree root handler =
  let rec emit = function
    | Node.Element e ->
      handler (Start_element (Node.name e, Node.attrs e));
      List.iter emit (Node.children e);
      handler (End_element (Node.name e))
    | Node.Text s -> handler (Characters s)
    | Node.Comment s -> handler (Comment_event s)
    | Node.Pi (t, c) -> handler (Pi_event (t, c))
  in
  handler Start_document;
  emit (Node.Element root);
  handler End_document
