type t = int

let none = -1

(* Open-addressing hash table published as an immutable snapshot: readers
   probe the current snapshot without synchronization (arrays are never
   mutated after publication), writers copy-insert-republish under a
   mutex.  Element-name alphabets are tiny (tens of symbols), so the
   O(capacity) copy per new symbol is irrelevant. *)

type table = {
  mask : int;  (* capacity - 1; capacity is a power of two *)
  keys : string array;  (* physically [absent] where empty *)
  vals : int array;
  names : string array;  (* symbol -> name; length = count *)
  count : int;
}

(* Physical sentinel: occupied slots always hold a different object, even
   if some interned name happens to equal its contents. *)
let absent = String.init 1 (fun _ -> '\000')

let make_table capacity count names =
  { mask = capacity - 1; keys = Array.make capacity absent; vals = Array.make capacity (-1);
    names; count }

let table = Atomic.make (make_table 64 0 [||])
let mu = Mutex.create ()

(* Approximate under concurrent interning (can only undercount). *)
let intern_calls = ref 0

(* FNV-1a: names are short ASCII, and we need the same hash on every
   domain and snapshot. *)
let hash s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int) s;
  !h

let probe t s =
  let h = hash s in
  let rec go i =
    let j = (h + i) land t.mask in
    let k = t.keys.(j) in
    if k == absent then -1 else if String.equal k s then t.vals.(j) else go (i + 1)
  in
  go 0

let insert_slot t s v =
  let h = hash s in
  let rec go i =
    let j = (h + i) land t.mask in
    if t.keys.(j) == absent then begin
      t.keys.(j) <- s;
      t.vals.(j) <- v
    end
    else go (i + 1)
  in
  go 0

(* Rebuild a snapshot with one more name; grow when half full. *)
let with_name (t : table) s =
  let count = t.count + 1 in
  let capacity =
    let c = t.mask + 1 in
    if 2 * count > c then 2 * c else c
  in
  let names = Array.make count s in
  Array.blit t.names 0 names 0 t.count;
  let nt = make_table capacity count names in
  Array.iteri (fun v n -> insert_slot nt n v) names;
  nt

let find s = probe (Atomic.get table) s

let intern s =
  incr intern_calls;
  match probe (Atomic.get table) s with
  | -1 ->
    Mutex.lock mu;
    let v =
      (* somebody may have inserted it while we were acquiring the lock *)
      match probe (Atomic.get table) s with
      | -1 ->
        let t = Atomic.get table in
        Atomic.set table (with_name t s);
        t.count
      | v -> v
    in
    Mutex.unlock mu;
    v
  | v -> v

let name v =
  let t = Atomic.get table in
  if v < 0 || v >= t.count then invalid_arg (Printf.sprintf "Sym.name: unknown symbol %d" v)
  else t.names.(v)

let count () = (Atomic.get table).count

let interns () = !intern_calls
