(** XML serialization. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for character data.  Characters that need no
    escaping are blitted in whole runs (table-driven fast path). *)

val escape_attr : string -> string
(** Escape ampersand, less-than, greater-than and double-quote for
    attribute values. *)

val to_buffer : ?indent:int -> Buffer.t -> Node.t -> unit
(** Append the serialization of the node.  With [indent], children are
    placed on their own lines indented by [indent] spaces per level
    (mixed content is kept inline). *)

val to_string : ?indent:int -> Node.t -> string

val element_to_string : ?indent:int -> Node.element -> string

val document_to_string : ?indent:int -> Node.element -> string
(** Like {!element_to_string}, preceded by an XML declaration. *)

val to_channel : ?indent:int -> out_channel -> Node.element -> unit

(** {2 Streaming sinks}

    Event handlers that serialize a SAX stream as it arrives; the
    output of the streaming transform algorithm (Section 6) is exposed
    this way so results never need to be materialized as trees. *)

val event_sink : Buffer.t -> Sax.event -> unit

val channel_event_sink : out_channel -> Sax.event -> unit

(** {2 Buffer pool}

    Serialization scratch buffers, reused across requests so a serving
    hot loop does not re-grow a fresh [Buffer.t] per reply.  Domain-safe
    (a mutex-guarded free list); hit/miss counters feed the service
    metrics. *)

module Pool : sig
  val acquire : unit -> Buffer.t
  (** A cleared buffer: pooled if one is free (hit), fresh otherwise
      (miss). *)

  val release : ?shrink:bool -> Buffer.t -> unit
  (** Return a buffer to the pool (dropped silently when the pool is
      full).  [~shrink:true] frees its storage first — used when the
      buffer grew pathologically large. *)

  val hits : unit -> int
  val misses : unit -> int

  val stats : unit -> int * int
  (** [(hits, misses)], process-wide. *)
end

(** {2 Chunked streaming sink}

    The zero-materialization result path: a push-based serializer that
    the streaming engines drive with SAX events (or whole shared
    subtrees), flushing the serialized bytes to a consumer in chunks of
    a configurable size.  The byte stream is exactly what
    [to_string] would produce on the materialized result — including
    self-closing empty elements, which the sink gets right by holding
    the closing [>] of a start-tag until the next event decides between
    [>] and [/>]. *)

module Sink : sig
  type t

  type totals = { bytes : int; chunks : int }

  val default_chunk_size : int
  (** 64 KiB. *)

  val create : ?chunk_size:int -> (string -> unit) -> t
  (** [create emit] acquires a pooled buffer and flushes every
      [chunk_size] (or more) bytes to [emit].  Chunk boundaries are
      arbitrary byte positions: concatenating the chunks restores the
      document. *)

  val event : t -> Sax.event -> unit
  (** Serialize one SAX event.  [Start_document]/[End_document] are
      ignored. *)

  val node : t -> Node.t -> unit
  (** Serialize a whole subtree (the shared-subtree fast path of the
      top-down emitters: no per-node event dispatch). *)

  val element : t -> Node.element -> unit

  val close : t -> totals
  (** Flush the final partial chunk, release the buffer to the pool and
      return the totals.  Idempotent. *)

  val abort : t -> unit
  (** Drop any buffered bytes (nothing more is emitted) and release the
      buffer — the error path. *)
end
