(* Escaping: the five predefined entities, minus apostrophe (we always
   quote attributes with double quotes).  The hot path scans for runs of
   characters that need no escaping — by far the common case in
   XMark-style data — and blits the whole run, instead of pushing one
   char at a time through [Buffer.add_char]. *)

let text_plain =
  Array.init 256 (fun c -> c <> Char.code '&' && c <> Char.code '<' && c <> Char.code '>')

let attr_plain = Array.init 256 (fun c -> text_plain.(c) && c <> Char.code '"')

let add_escaped buf ~attr s =
  let plain = if attr then attr_plain else text_plain in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let run = ref !i in
    while
      !run < n && Array.unsafe_get plain (Char.code (String.unsafe_get s !run))
    do
      incr run
    done;
    if !run > !i then Buffer.add_substring buf s !i (!run - !i);
    if !run < n then begin
      (match String.unsafe_get s !run with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c);
      incr run
    end;
    i := !run
  done

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf ~attr:true s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      add_escaped buf ~attr:true v;
      Buffer.add_char buf '"')
    attrs

let has_text_child e =
  List.exists (function Node.Text _ -> true | _ -> false) (Node.children e)

let rec add_node buf ~indent ~level node =
  match node with
  | Node.Text s -> add_escaped buf ~attr:false s
  | Node.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Node.Pi (t, c) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf t;
    Buffer.add_char buf ' ';
    Buffer.add_string buf c;
    Buffer.add_string buf "?>"
  | Node.Element e ->
    Buffer.add_char buf '<';
    Buffer.add_string buf (Node.name e);
    add_attrs buf (Node.attrs e);
    (match Node.children e with
    | [] -> Buffer.add_string buf "/>"
    | cs ->
      Buffer.add_char buf '>';
      let inline =
        match indent with None -> true | Some _ -> has_text_child e
      in
      if inline then List.iter (add_node buf ~indent:None ~level:0) cs
      else begin
        let n = Option.get indent in
        List.iter
          (fun c ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make ((level + 1) * n) ' ');
            add_node buf ~indent ~level:(level + 1) c)
          cs;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (level * n) ' ')
      end;
      Buffer.add_string buf "</";
      Buffer.add_string buf (Node.name e);
      Buffer.add_char buf '>')

let to_buffer ?indent buf node = add_node buf ~indent ~level:0 node

let to_string ?indent node =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf node;
  Buffer.contents buf

let element_to_string ?indent e = to_string ?indent (Node.Element e)

let document_to_string ?indent e =
  "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" ^ element_to_string ?indent e

let to_channel ?indent oc e =
  let buf = Buffer.create 65536 in
  to_buffer ?indent buf (Node.Element e);
  Buffer.output_buffer oc buf

let add_event buf = function
  | Sax.Start_document | Sax.End_document -> ()
  | Sax.Start_element (name, attrs) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    add_attrs buf attrs;
    Buffer.add_char buf '>'
  | Sax.Characters s -> add_escaped buf ~attr:false s
  | Sax.Comment_event s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Sax.Pi_event (t, c) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf t;
    Buffer.add_char buf ' ';
    Buffer.add_string buf c;
    Buffer.add_string buf "?>"
  | Sax.End_element name ->
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'

let event_sink buf event = add_event buf event

let channel_event_sink oc =
  let buf = Buffer.create 65536 in
  fun event ->
    add_event buf event;
    if Buffer.length buf > 32768 || event = Sax.End_document then begin
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end

(* ---------------- buffer pool ---------------- *)

module Pool = struct
  let initial_size = 65536
  let max_pooled = 32

  (* a sink that accumulated pathological single tokens is reset
     (storage freed) instead of parking megabytes in the pool *)
  let shrink_above = 4 * 1024 * 1024

  let mu = Mutex.create ()
  let free : Buffer.t list ref = ref []
  let free_count = ref 0
  let hit_count = Atomic.make 0
  let miss_count = Atomic.make 0

  let acquire () =
    Mutex.lock mu;
    match !free with
    | b :: rest ->
      free := rest;
      decr free_count;
      Mutex.unlock mu;
      Atomic.incr hit_count;
      b
    | [] ->
      Mutex.unlock mu;
      Atomic.incr miss_count;
      Buffer.create initial_size

  let release ?(shrink = false) b =
    if shrink then Buffer.reset b else Buffer.clear b;
    Mutex.lock mu;
    if !free_count < max_pooled then begin
      free := b :: !free;
      incr free_count
    end;
    Mutex.unlock mu

  let hits () = Atomic.get hit_count
  let misses () = Atomic.get miss_count
  let stats () = (Atomic.get hit_count, Atomic.get miss_count)
end

(* ---------------- streaming sink ---------------- *)

module Sink = struct
  let default_chunk_size = 64 * 1024

  type totals = { bytes : int; chunks : int }

  type t = {
    buf : Buffer.t;
    chunk_size : int;
    emit : string -> unit;
    (* a start-tag has been written up to its attributes; the closing
       [>] (or [/>]) is decided by the next event, which is what makes
       the stream byte-identical to [to_string] on empty elements *)
    mutable open_tag : bool;
    mutable bytes : int;
    mutable chunks : int;
    mutable peak_chunk : int;
    mutable live : bool;
  }

  let create ?(chunk_size = default_chunk_size) emit =
    {
      buf = Pool.acquire ();
      chunk_size = max 1 chunk_size;
      emit;
      open_tag = false;
      bytes = 0;
      chunks = 0;
      peak_chunk = 0;
      live = true;
    }

  let flush t =
    let len = Buffer.length t.buf in
    if len > 0 then begin
      let s = Buffer.contents t.buf in
      Buffer.clear t.buf;
      t.bytes <- t.bytes + len;
      t.chunks <- t.chunks + 1;
      if len > t.peak_chunk then t.peak_chunk <- len;
      t.emit s
    end

  let maybe_flush t = if Buffer.length t.buf >= t.chunk_size then flush t

  (* the pending [>] of an open start-tag, owed because content follows *)
  let seal t =
    if t.open_tag then begin
      Buffer.add_char t.buf '>';
      t.open_tag <- false
    end

  let event t = function
    | Sax.Start_document | Sax.End_document -> ()
    | Sax.Start_element (name, attrs) ->
      seal t;
      Buffer.add_char t.buf '<';
      Buffer.add_string t.buf name;
      add_attrs t.buf attrs;
      t.open_tag <- true;
      maybe_flush t
    | Sax.Characters s ->
      seal t;
      add_escaped t.buf ~attr:false s;
      maybe_flush t
    | Sax.Comment_event s ->
      seal t;
      Buffer.add_string t.buf "<!--";
      Buffer.add_string t.buf s;
      Buffer.add_string t.buf "-->";
      maybe_flush t
    | Sax.Pi_event (tgt, c) ->
      seal t;
      Buffer.add_string t.buf "<?";
      Buffer.add_string t.buf tgt;
      Buffer.add_char t.buf ' ';
      Buffer.add_string t.buf c;
      Buffer.add_string t.buf "?>";
      maybe_flush t
    | Sax.End_element name ->
      if t.open_tag then begin
        Buffer.add_string t.buf "/>";
        t.open_tag <- false
      end
      else begin
        Buffer.add_string t.buf "</";
        Buffer.add_string t.buf name;
        Buffer.add_char t.buf '>'
      end;
      maybe_flush t

  (* whole-subtree emission: same bytes as [add_node ~indent:None], with
     flush checks between children so chunking stays fine-grained *)
  let rec put t node =
    match node with
    | Node.Text s -> add_escaped t.buf ~attr:false s
    | Node.Comment s ->
      Buffer.add_string t.buf "<!--";
      Buffer.add_string t.buf s;
      Buffer.add_string t.buf "-->"
    | Node.Pi (tgt, c) ->
      Buffer.add_string t.buf "<?";
      Buffer.add_string t.buf tgt;
      Buffer.add_char t.buf ' ';
      Buffer.add_string t.buf c;
      Buffer.add_string t.buf "?>"
    | Node.Element e ->
      Buffer.add_char t.buf '<';
      Buffer.add_string t.buf (Node.name e);
      add_attrs t.buf (Node.attrs e);
      (match Node.children e with
      | [] -> Buffer.add_string t.buf "/>"
      | cs ->
        Buffer.add_char t.buf '>';
        List.iter
          (fun c ->
            put t c;
            maybe_flush t)
          cs;
        Buffer.add_string t.buf "</";
        Buffer.add_string t.buf (Node.name e);
        Buffer.add_char t.buf '>')

  let node t n =
    seal t;
    put t n;
    maybe_flush t

  let element t e = node t (Node.Element e)

  let close t =
    if t.live then begin
      seal t;
      flush t;
      t.live <- false;
      Pool.release ~shrink:(t.peak_chunk > Pool.shrink_above) t.buf
    end;
    { bytes = t.bytes; chunks = t.chunks }

  let abort t =
    if t.live then begin
      t.live <- false;
      Buffer.clear t.buf;
      Pool.release ~shrink:(t.peak_chunk > Pool.shrink_above) t.buf
    end
end
