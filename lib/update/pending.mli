open Xut_xml

(** The pending update list: typed update primitives resolved against
    concrete node ids, merged through an override hierarchy before
    application.

    This is the write-path counterpart of the paper's side-effect-free
    transform queries.  Where {!Core.Sequence} chains updates {e left to
    right} (each update evaluated against the previous result), a pending
    list follows the W3C XQuery Update Facility discipline instead: every
    update's target path is resolved against {e one snapshot} of the
    document, each selected node contributes one primitive keyed by its
    {!Node.id}, and the whole list is applied in a single pass.  Multiple
    primitives landing on the same node are {b merged} through a
    BaseX-style hierarchy (see [UpdatePrimitive] in BaseX: the types
    "build a hierarchy that states, in case of multiple updates on a
    distinct node, which update operation can be omitted"):

    {v
    delete  >  replace  >  rename / inserts
    v}

    - [Delete] absorbs every other primitive on the node (rename+delete
      collapses to delete, replace+delete to delete, and a second delete
      is idempotent).
    - [Replace] absorbs renames and inserts on the node; {e two replaces
      on the same target conflict} (there is no canonical winner).
    - [Rename] merges with an identical rename; two renames to
      {e different} labels conflict.
    - Inserts compose: all [Insert_first] contents prepend (in
      submission order) and all [Insert] contents append (in submission
      order), and they coexist with a surviving rename.

    Merging is order-insensitive where the hierarchy decides (delete
    wins whether it was submitted before or after the rename) and
    deterministic everywhere else (submission order breaks ties), so a
    pending list has exactly one normal form. *)

(** One update primitive, stripped of its path: the selection already
    happened, the target is a concrete node. *)
type op =
  | Insert of Node.t        (** append as last child *)
  | Insert_first of Node.t  (** prepend as first child *)
  | Delete
  | Replace of Node.t
  | Rename of string

val op_kind : op -> string
(** ["insert"], ["insert-first"], ["delete"], ["replace"], ["rename"]. *)

(** A pair of primitives on one target that the hierarchy cannot order:
    two replaces, or two renames to different labels. *)
type conflict = {
  target : int;     (** {!Node.id} of the contested node *)
  kept : string;    (** rendered primitive that arrived first *)
  dropped : string; (** rendered primitive that lost *)
}

val render_conflict : conflict -> string
(** One-line rendering, e.g.
    ["node 12: replace <a/> conflicts with earlier replace <b/>"]. *)

(** Post-merge state of one target node. *)
type resolved =
  | Dead           (** a delete won: the subtree goes *)
  | Swap of Node.t (** a replace won: the subtree is substituted *)
  | Edit of { rename : string option; firsts : Node.t list; lasts : Node.t list }
      (** the node survives: optionally renamed, with content prepended
          ([firsts], in order) and appended ([lasts], in order) *)

type t
(** A pending list under construction (mutable, single-owner). *)

val create : unit -> t

val add : t -> target:int -> op -> unit
(** Append one primitive.  Submission order is remembered — it is the
    deterministic tiebreak for insert ordering and conflict reporting. *)

val added : t -> int
(** Primitives added so far (pre-merge). *)

(** The normal form of a pending list. *)
type normalized = {
  table : (int, resolved) Hashtbl.t;
      (** target node id -> merged outcome; conflicted targets keep the
          first-submitted primitive *)
  targets : int;     (** distinct target nodes *)
  primitives : int;  (** surviving primitives after merging *)
  collapsed : int;   (** primitives absorbed by the hierarchy *)
  conflicts : conflict list;
      (** unordered pairs, in submission order of the losing primitive *)
}

val normalize : t -> normalized
(** Merge the list.  [added t = primitives + collapsed + length conflicts]
    always holds; a list is applicable iff [conflicts = []]. *)
