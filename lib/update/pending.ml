open Xut_xml

type op =
  | Insert of Node.t
  | Insert_first of Node.t
  | Delete
  | Replace of Node.t
  | Rename of string

let op_kind = function
  | Insert _ -> "insert"
  | Insert_first _ -> "insert-first"
  | Delete -> "delete"
  | Replace _ -> "replace"
  | Rename _ -> "rename"

let render_op = function
  | Insert e -> Printf.sprintf "insert %s" (Serialize.to_string e)
  | Insert_first e -> Printf.sprintf "insert %s as first" (Serialize.to_string e)
  | Delete -> "delete"
  | Replace e -> Printf.sprintf "replace with %s" (Serialize.to_string e)
  | Rename l -> Printf.sprintf "rename as %s" l

type conflict = { target : int; kept : string; dropped : string }

let render_conflict { target; kept; dropped } =
  Printf.sprintf "node %d: %s conflicts with earlier %s" target dropped kept

type resolved =
  | Dead
  | Swap of Node.t
  | Edit of { rename : string option; firsts : Node.t list; lasts : Node.t list }

type prim = { target : int; op : op }

type t = { mutable prims : prim list; mutable count : int }
(* [prims] is kept newest-first; [normalize] reverses back to
   submission order. *)

let create () = { prims = []; count = 0 }

let add t ~target op =
  t.prims <- { target; op } :: t.prims;
  t.count <- t.count + 1

let added t = t.count

type normalized = {
  table : (int, resolved) Hashtbl.t;
  targets : int;
  primitives : int;
  collapsed : int;
  conflicts : conflict list;
}

(* Number of surviving primitives a resolved state stands for. *)
let weight = function
  | Dead | Swap _ -> 1
  | Edit { rename; firsts; lasts } ->
    (match rename with Some _ -> 1 | None -> 0) + List.length firsts + List.length lasts

(* Merge one primitive into the target's current state.  The hierarchy:
   Dead absorbs everything; Swap absorbs renames and inserts but
   conflicts with a second Swap and yields to Dead; Edit accumulates.
   Returns the new state plus how many primitives the merge absorbed
   ([`Collapsed n]) or dropped as unresolvable ([`Conflict]). *)
let merge state op =
  match (state, op) with
  | None, Delete -> (Dead, `Fresh)
  | None, Replace e -> (Swap e, `Fresh)
  | None, Rename l -> (Edit { rename = Some l; firsts = []; lasts = [] }, `Fresh)
  | None, Insert e -> (Edit { rename = None; firsts = []; lasts = [ e ] }, `Fresh)
  | None, Insert_first e -> (Edit { rename = None; firsts = [ e ]; lasts = [] }, `Fresh)
  | Some Dead, _ -> (Dead, `Collapsed 1)
  | Some (Swap _), Delete -> (Dead, `Collapsed 1) (* the replace is absorbed *)
  | Some (Swap _ as s), Replace _ -> (s, `Conflict)
  | Some (Swap _ as s), (Rename _ | Insert _ | Insert_first _) -> (s, `Collapsed 1)
  | Some (Edit _ as s), Delete -> (Dead, `Collapsed (weight s))
  | Some (Edit _ as s), Replace e -> (Swap e, `Collapsed (weight s))
  | Some (Edit ({ rename = None; _ } as ed)), Rename l ->
    (Edit { ed with rename = Some l }, `Fresh)
  | Some (Edit ({ rename = Some l0; _ }) as s), Rename l ->
    if String.equal l0 l then (s, `Collapsed 1) else (s, `Conflict)
  | Some (Edit ed), Insert e -> (Edit { ed with lasts = ed.lasts @ [ e ] }, `Fresh)
  | Some (Edit ed), Insert_first e -> (Edit { ed with firsts = ed.firsts @ [ e ] }, `Fresh)

(* Rendering of what a state "kept", for conflict reports. *)
let kept_of state op =
  match (state, op) with
  | Swap e, Replace _ -> render_op (Replace e)
  | Edit { rename = Some l; _ }, Rename _ -> render_op (Rename l)
  | _, _ -> op_kind op (* unreachable: only the two cases above conflict *)

let normalize t =
  let table = Hashtbl.create (max 16 t.count) in
  let collapsed = ref 0 in
  let conflicts = ref [] in
  List.iter
    (fun { target; op } ->
      let state = Hashtbl.find_opt table target in
      let state', outcome = merge state op in
      (match outcome with
      | `Fresh -> ()
      | `Collapsed n -> collapsed := !collapsed + n
      | `Conflict ->
        conflicts :=
          { target; kept = kept_of state' op; dropped = render_op op } :: !conflicts);
      Hashtbl.replace table target state')
    (List.rev t.prims);
  let primitives = Hashtbl.fold (fun _ s n -> n + weight s) table 0 in
  {
    table;
    targets = Hashtbl.length table;
    primitives;
    collapsed = !collapsed;
    conflicts = List.rev !conflicts;
  }
