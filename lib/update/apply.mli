open Xut_xml

(** The apply engine: evaluate transform updates into a {!Pending} list
    against one snapshot of a document, then materialize the list as a
    {b new} tree that shares every untouched subtree with the old root.

    The sharing is what makes the write path MVCC-friendly: the old root
    is never mutated (nodes are immutable), so in-flight readers holding
    it keep a consistent pre-commit snapshot for as long as they need it,
    while the new tree allocates only the spine from the root down to
    each touched node.  Elements on that spine get fresh {!Node.id}s
    (so downstream caches keyed by node id can tell the two trees
    apart — the root id {e always} changes when anything changes);
    untouched subtrees are physically the same values.

    Snapshot semantics: with several updates in one [modify do (...)],
    every path is resolved against the {e original} tree — unlike
    {!Core.Sequence.run}, where each update sees the previous result.
    [rename $a/b as c, insert <k/> into $a/b] therefore inserts into the
    renamed node here (both primitives target the same snapshot node),
    where the sequential semantics would find nothing at [$a/b]. *)

exception Invalid of string
(** The pending list deletes the document element, or replaces it with a
    non-element — the write-path analogue of
    {!Core.Transform_ast.Invalid_update}. *)

(** What an apply evaluated to, before (or without) application. *)
type report = {
  targets : int;      (** distinct nodes selected across all updates *)
  primitives : int;   (** surviving primitives after merging *)
  collapsed : int;    (** primitives absorbed by the merge hierarchy *)
  conflicts : Pending.conflict list;
}

val resolve : Core.Transform_ast.update list -> Node.element -> Pending.t
(** Select each update's path against the snapshot [root]
    ({!Xut_xpath.Eval.select_doc}, the reference semantics) and emit one
    primitive per selected node, in update order. *)

val stage : Core.Transform_ast.update list -> Node.element -> report * Pending.normalized
(** [resolve] + {!Pending.normalize}: the dry-run ([APPLY]) entry point.
    No tree is built. *)

type diff = { spine : (int, Node.element) Hashtbl.t }
(** The commit's touched-spine summary: each rebuilt spine element's
    {e fresh} id mapped to the pre-commit element it replaced.  Inserted
    and replacement subtrees are absent (nothing in the old tree pairs
    with them), as are shared subtrees (same value, same id).  The new
    root is in the map whenever the document element itself was rebuilt
    rather than replaced — the non-degenerate case downstream annotation
    repair requires. *)

val materialize : Pending.normalized -> Node.element -> (Node.element * diff) option
(** Apply a conflict-free normalized list.  [None] when the list is
    empty (nothing selected): the tree is unchanged and {e no new root
    exists} — callers must not treat this as a new version.  [Some
    (root', diff)] shares untouched subtrees with [root] physically.
    Primitives targeting nodes inside a deleted or replaced subtree are
    subsumed (never applied), matching the reference engine's rebuild.

    @raise Invalid when the document element is deleted or replaced by a
    non-element. *)

val run :
  Core.Transform_ast.update list ->
  Node.element ->
  (report * (Node.element * diff) option, report) result
(** [stage] then, when conflict-free, [materialize].  [Error report]
    when the list has conflicts (the tree is untouched).

    @raise Invalid as {!materialize}. *)
