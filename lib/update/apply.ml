open Xut_xml
open Xut_xpath

exception Invalid of string

type report = {
  targets : int;
  primitives : int;
  collapsed : int;
  conflicts : Pending.conflict list;
}

let op_of_update = function
  | Core.Transform_ast.Insert (_, e) -> Pending.Insert e
  | Core.Transform_ast.Insert_first (_, e) -> Pending.Insert_first e
  | Core.Transform_ast.Delete _ -> Pending.Delete
  | Core.Transform_ast.Replace (_, e) -> Pending.Replace e
  | Core.Transform_ast.Rename (_, l) -> Pending.Rename l

let resolve updates root =
  let p = Pending.create () in
  List.iter
    (fun u ->
      let op = op_of_update u in
      List.iter
        (fun e -> Pending.add p ~target:(Node.id e) op)
        (Eval.select_doc root (Core.Transform_ast.path u)))
    updates;
  p

let report_of (nz : Pending.normalized) =
  {
    targets = nz.Pending.targets;
    primitives = nz.Pending.primitives;
    collapsed = nz.Pending.collapsed;
    conflicts = nz.Pending.conflicts;
  }

let stage updates root =
  let nz = Pending.normalize (resolve updates root) in
  (report_of nz, nz)

type diff = { spine : (int, Node.element) Hashtbl.t }

(* One pass over the snapshot.  Inserted/replacement content is deep
   copied with fresh ids per target (several targets may share one
   literal); the spine down to each touched node is rebuilt with fresh
   ids; an untouched subtree is returned as the very same value, which
   is both the structural sharing and the O(1) "did anything change
   below" signal.  Every rebuilt spine element is recorded in the diff
   as [fresh id -> the element it replaced] — the map downstream
   annotation repair walks; replacements and insertions are {e not}
   spine (their ids pair with nothing in the old tree). *)
let materialize (nz : Pending.normalized) root =
  if nz.Pending.primitives = 0 then None
  else begin
    let spine = Hashtbl.create 64 in
    let rebuilt old_e new_e =
      Hashtbl.replace spine (Node.id new_e) old_e;
      new_e
    in
    let refresh = Node.refresh_ids in
    (* [Same] (an immediate) signals an untouched subtree, so the walk over
       the unchanged bulk of the snapshot allocates nothing; a changed
       child list shares its unchanged suffix with the old tree.  A commit
       therefore allocates only along rebuilt spines plus fresh content. *)
    let rec node n =
      match n with
      | Node.Text _ | Node.Comment _ | Node.Pi _ -> `Same
      | Node.Element e -> begin
        match Hashtbl.find_opt nz.Pending.table (Node.id e) with
        | Some Pending.Dead -> `Gone
        | Some (Pending.Swap r) -> `One (refresh r)
        | Some (Pending.Edit { rename; firsts; lasts }) ->
          (* the node survives: its own subtree may still hold targets *)
          let kids = Option.value (children e) ~default:(Node.children e) in
          let name = Option.value rename ~default:(Node.name e) in
          `One
            (Node.Element
               (rebuilt e
                  (Node.element ~attrs:(Node.attrs e) name
                     (List.map refresh firsts @ kids @ List.map refresh lasts))))
        | None -> (
          match children e with
          | None -> `Same
          | Some kids ->
            `One (Node.Element (rebuilt e (Node.element ~attrs:(Node.attrs e) (Node.name e) kids))))
      end
    and children e =
      (* [None] = no descendant touched; [Some kids] = the rebuilt list,
         sharing the original tail past the last touched child. *)
      let rec go cs =
        match cs with
        | [] -> None
        | c :: rest -> (
          match node c with
          | `Same -> (
            (* explicit match: Option.map would allocate a closure per node *)
            match go rest with
            | None -> None
            | Some rest' -> Some (c :: rest'))
          | `Gone -> Some (match go rest with None -> rest | Some rest' -> rest')
          | `One n -> Some (n :: (match go rest with None -> rest | Some rest' -> rest')))
      in
      go (Node.children e)
    in
    match node (Node.Element root) with
    | `Same -> None
    | `One (Node.Element e) -> Some (e, { spine })
    | `Gone -> raise (Invalid "update deletes the document element")
    | `One _ -> raise (Invalid "update replaces the document element with a non-element")
  end

let run updates root =
  let report, nz = stage updates root in
  if report.conflicts <> [] then Error report else Ok (report, materialize nz root)
