open Xut_xml
open Xut_xpath

exception Invalid of string

type report = {
  targets : int;
  primitives : int;
  collapsed : int;
  conflicts : Pending.conflict list;
}

let op_of_update = function
  | Core.Transform_ast.Insert (_, e) -> Pending.Insert e
  | Core.Transform_ast.Insert_first (_, e) -> Pending.Insert_first e
  | Core.Transform_ast.Delete _ -> Pending.Delete
  | Core.Transform_ast.Replace (_, e) -> Pending.Replace e
  | Core.Transform_ast.Rename (_, l) -> Pending.Rename l

let resolve updates root =
  let p = Pending.create () in
  List.iter
    (fun u ->
      let op = op_of_update u in
      List.iter
        (fun e -> Pending.add p ~target:(Node.id e) op)
        (Eval.select_doc root (Core.Transform_ast.path u)))
    updates;
  p

let report_of (nz : Pending.normalized) =
  {
    targets = nz.Pending.targets;
    primitives = nz.Pending.primitives;
    collapsed = nz.Pending.collapsed;
    conflicts = nz.Pending.conflicts;
  }

let stage updates root =
  let nz = Pending.normalize (resolve updates root) in
  (report_of nz, nz)

(* One pass over the snapshot.  Inserted/replacement content is deep
   copied with fresh ids per target (several targets may share one
   literal); the spine down to each touched node is rebuilt with fresh
   ids; an untouched subtree is returned as the very same value, which
   is both the structural sharing and the O(1) "did anything change
   below" signal. *)
let materialize (nz : Pending.normalized) root =
  if nz.Pending.primitives = 0 then None
  else begin
    let refresh = Node.refresh_ids in
    let rec node n =
      match n with
      | Node.Text _ | Node.Comment _ | Node.Pi _ -> ([ n ], false)
      | Node.Element e -> begin
        match Hashtbl.find_opt nz.Pending.table (Node.id e) with
        | Some Pending.Dead -> ([], true)
        | Some (Pending.Swap r) -> ([ refresh r ], true)
        | Some (Pending.Edit { rename; firsts; lasts }) ->
          (* the node survives: its own subtree may still hold targets *)
          let kids, _ = children e in
          let name = Option.value rename ~default:(Node.name e) in
          ( [ Node.Element
                (Node.element ~attrs:(Node.attrs e) name
                   (List.map refresh firsts @ kids @ List.map refresh lasts)) ],
            true )
        | None ->
          let kids, changed = children e in
          if changed then
            ([ Node.Element (Node.element ~attrs:(Node.attrs e) (Node.name e) kids) ], true)
          else ([ n ], false)
      end
    and children e =
      List.fold_left
        (fun (acc, changed) c ->
          let out, ch = node c in
          (List.rev_append out acc, changed || ch))
        ([], false) (Node.children e)
      |> fun (acc, changed) -> (List.rev acc, changed)
    in
    match node (Node.Element root) with
    | _, false -> None
    | [ Node.Element e ], true -> Some e
    | [], true -> raise (Invalid "update deletes the document element")
    | _, true -> raise (Invalid "update replaces the document element with a non-element")
  end

let run updates root =
  let report, nz = stage updates root in
  if report.conflicts <> [] then Error report else Ok (report, materialize nz root)
