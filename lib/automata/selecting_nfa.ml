open Xut_xpath
module Sym = Xut_xml.Sym

type kind = K_start | K_label of string | K_wild | K_desc

type state = { kind : kind; qual : Ast.qual; lq_idx : int }

(* ---- state sets --------------------------------------------------------

   A state set is an int bitset when the automaton has at most
   [small_limit] states (the overwhelmingly common case: one state per
   normalized step), and a Bytes-backed bitset above.  Every set of a
   given automaton uses the same representation, so binary operations
   never mix constructors.  Sets are immutable once they escape the
   functions that build them. *)

let small_limit = 62

type set = Bits of int | Wide of Bytes.t

let wide_zero nwords = Bytes.make (nwords * 8) '\000'

let wmem w i = Char.code (Bytes.unsafe_get w (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* mutation helper: only ever applied to not-yet-published Bytes *)
let wset w i =
  let j = i lsr 3 in
  Bytes.unsafe_set w j (Char.unsafe_chr (Char.code (Bytes.unsafe_get w j) lor (1 lsl (i land 7))))

let wide_binop op a b =
  let len = Bytes.length a in
  let r = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    Bytes.set_int64_ne r !i (op (Bytes.get_int64_ne a !i) (Bytes.get_int64_ne b !i));
    i := !i + 8
  done;
  r

(* union [src] into a not-yet-published [dst] *)
let wide_blend_into dst src =
  let i = ref 0 in
  while !i < Bytes.length dst do
    Bytes.set_int64_ne dst !i (Int64.logor (Bytes.get_int64_ne dst !i) (Bytes.get_int64_ne src !i));
    i := !i + 8
  done

let wide_is_empty a =
  let rec go i = i >= Bytes.length a || (Bytes.get_int64_ne a i = 0L && go (i + 8)) in
  go 0

let mismatch () = invalid_arg "Selecting_nfa: sets of different automata"

let set_is_empty = function Bits b -> b = 0 | Wide w -> wide_is_empty w

let set_mem s i =
  match s with Bits b -> b land (1 lsl i) <> 0 | Wide w -> wmem w i

let set_equal a b =
  match a, b with
  | Bits x, Bits y -> x = y
  | Wide x, Wide y -> Bytes.equal x y
  | (Bits _ | Wide _), _ -> false

let set_union a b =
  match a, b with
  | Bits x, Bits y -> Bits (x lor y)
  | Wide x, Wide y -> Wide (wide_binop Int64.logor x y)
  | (Bits _ | Wide _), _ -> mismatch ()

let set_inter a b =
  match a, b with
  | Bits x, Bits y -> Bits (x land y)
  | Wide x, Wide y -> Wide (wide_binop Int64.logand x y)
  | (Bits _ | Wide _), _ -> mismatch ()

let set_diff a b =
  match a, b with
  | Bits x, Bits y -> Bits (x land lnot y)
  | Wide x, Wide y -> Wide (wide_binop (fun p q -> Int64.logand p (Int64.lognot q)) x y)
  | (Bits _ | Wide _), _ -> mismatch ()

let set_fold f s acc =
  match s with
  | Bits b ->
    let acc = ref acc and m = ref b and i = ref 0 in
    while !m <> 0 do
      if !m land 1 <> 0 then acc := f !i !acc;
      incr i;
      m := !m lsr 1
    done;
    !acc
  | Wide w ->
    let acc = ref acc in
    for j = 0 to Bytes.length w - 1 do
      let byte = Char.code (Bytes.unsafe_get w j) in
      if byte <> 0 then
        for k = 0 to 7 do
          if byte land (1 lsl k) <> 0 then acc := f ((j lsl 3) lor k) !acc
        done
    done;
    !acc

let set_iter f s = set_fold (fun i () -> f i) s ()

let set_to_list s = List.rev (set_fold (fun i acc -> i :: acc) s [])

(* ---- transition memo ---------------------------------------------------

   Per-automaton open-address table from [(state set, symbol)] to the
   transition's precomputed pieces.  Entries are immutable records, so a
   racy slot read either misses or returns a fully-initialised entry
   (OCaml's memory model guarantees immutable fields are only observed
   initialised); concurrent domains sharing one compiled plan race only
   on which equivalent entry wins a slot.  Hit/miss counters are plain
   (unsynchronized) ints: approximate under concurrency, exact on one
   domain. *)

type memo_entry = {
  e_sym : int;
  e_key : set;
  e_raw : set;        (* targets before closure and qualifier filtering *)
  e_qual_raw : set;   (* raw states with a non-trivial qualifier *)
  e_closed : set;     (* closure (raw): the unchecked transition result *)
  e_closed_nq : set;  (* closure (raw minus qualifier states) *)
}

let memo_slots = 512 (* power of two *)
let memo_probes = 3

type memo = {
  mutable slots : memo_entry option array;
  (* [||] until the first store: keeps [of_norm] cheap for throwaway
     automata; the table is only paid for once transitions run.  Two
     domains racing on the first store may each install an array and one
     install wins, dropping the other's entry — harmless for a memo. *)
  mutable hits : int;
  mutable misses : int;
}

let memo_create () = { slots = [||]; hits = 0; misses = 0 }

(* process-wide totals, same approximate-under-domains contract *)
let g_hits = ref 0
let g_misses = ref 0

let memo_hash key sym =
  let h =
    match key with
    | Bits b -> (b * 0x9e3779b9) lxor (sym * 0x85ebca6b)
    | Wide w -> Hashtbl.hash w lxor (sym * 0x85ebca6b)
  in
  h land max_int

type t = {
  states : state array;
  lq : Lq.t;
  ctx_qual : Ast.qual;
  true_idx : int;  (* LQ index of the constant true *)
  n : int;
  small : bool;
  nwords : int;
  enter_sym : int array;
  (* symbol consuming a node must carry to enter state [j]: the label's
     symbol for label states, [-1] (any) for wildcards, [-2] (never) for
     start and descendant states, which are entered by epsilon only *)
  self_loop : bool array;  (* state is '//': consuming any node may stay *)
  eps_bits : int array;    (* epsilon closure of each state (small repr) *)
  eps_wide : Bytes.t array;  (* same, wide repr ([||] when small) *)
  quals : set;             (* states with a non-trivial qualifier *)
  start : set;
  empty : set;
  memo : memo;
}

let of_norm (norm : Norm.t) =
  let b = Lq.create_builder () in
  let true_idx = Lq.add_qual b Ast.Q_true in
  let ctx_qual = Ast.q_and norm.ctx_quals in
  ignore (Lq.add_qual b ctx_qual);
  let step_state (s : Norm.nstep) =
    let qual = Ast.q_and s.quals in
    let lq_idx = Lq.add_qual b qual in
    let kind =
      match s.nav with
      | Norm.N_label l -> K_label l
      | Norm.N_wild -> K_wild
      | Norm.N_desc -> K_desc
    in
    { kind; qual; lq_idx }
  in
  let states =
    Array.of_list
      ({ kind = K_start; qual = Ast.Q_true; lq_idx = true_idx }
      :: List.map step_state norm.steps)
  in
  let n = Array.length states in
  let small = n <= small_limit in
  let nwords = (n + 63) / 64 in
  let enter_sym =
    Array.map
      (fun s ->
        match s.kind with
        | K_label l -> Sym.intern l
        | K_wild -> -1
        | K_start | K_desc -> -2)
      states
  in
  let self_loop = Array.map (fun s -> s.kind = K_desc) states in
  (* epsilon closure of state [i]: [i] plus the run of '//' states
     immediately after it *)
  let close_indices i =
    let rec go j acc = if j + 1 < n && self_loop.(j + 1) then go (j + 1) (j + 1 :: acc) else acc in
    go i [ i ]
  in
  let eps_bits =
    if small then
      Array.init n (fun i -> List.fold_left (fun b j -> b lor (1 lsl j)) 0 (close_indices i))
    else [||]
  in
  let eps_wide =
    if small then [||]
    else
      Array.init n (fun i ->
          let w = wide_zero nwords in
          List.iter (wset w) (close_indices i);
          w)
  in
  let mask_of pred =
    if small then
      Bits
        (Array.to_seq states
        |> Seq.fold_lefti (fun b i s -> if pred i s then b lor (1 lsl i) else b) 0)
    else begin
      let w = wide_zero nwords in
      Array.iteri (fun i s -> if pred i s then wset w i) states;
      Wide w
    end
  in
  let quals = mask_of (fun _ s -> s.lq_idx <> true_idx) in
  let start =
    if small then Bits eps_bits.(0) else Wide (Bytes.copy eps_wide.(0))
  in
  let empty = if small then Bits 0 else Wide (wide_zero nwords) in
  { states; lq = Lq.freeze b; ctx_qual; true_idx; n; small; nwords; enter_sym; self_loop;
    eps_bits; eps_wide; quals; start; empty; memo = memo_create () }

let of_path p = of_norm (Norm.steps p)

let size t = t.n
let final t = t.n - 1
let lq t = t.lq
let kind t i = t.states.(i).kind
let state_qual t i = t.states.(i).qual
let state_lq t i = t.states.(i).lq_idx
let has_qual t i = t.states.(i).lq_idx <> t.true_idx
let ctx_qual t = t.ctx_qual
let selects_context t = t.n = 1

let start t = t.start
let empty_set t = t.empty
let qual_states t = t.quals

let set_of_list t l =
  if t.small then Bits (List.fold_left (fun b i -> b lor (1 lsl i)) 0 l)
  else begin
    let w = wide_zero t.nwords in
    List.iter (wset w) l;
    Wide w
  end

let accepts_set t s =
  match s with Bits b -> b land (1 lsl (t.n - 1)) <> 0 | Wide w -> wmem w (t.n - 1)

(* Raw (pre-closure, pre-qualifier) targets of [s] consuming a node.
   [sym] = -1 means "any label" (the static delta' of Section 4). *)
let raw_targets t s sym =
  match s with
  | Bits b ->
    let r = ref 0 and m = ref b and i = ref 0 in
    while !m <> 0 do
      if !m land 1 <> 0 then begin
        if t.self_loop.(!i) then r := !r lor (1 lsl !i);
        let j = !i + 1 in
        if
          j < t.n
          &&
          let es = t.enter_sym.(j) in
          es = -1 || (es = sym && sym >= 0) || (sym = -1 && es >= 0)
        then r := !r lor (1 lsl j)
      end;
      incr i;
      m := !m lsr 1
    done;
    Bits !r
  | Wide w ->
    let r = wide_zero t.nwords in
    for i = 0 to t.n - 1 do
      if wmem w i then begin
        if t.self_loop.(i) then wset r i;
        let j = i + 1 in
        if
          j < t.n
          &&
          let es = t.enter_sym.(j) in
          es = -1 || (es = sym && sym >= 0) || (sym = -1 && es >= 0)
        then wset r j
      end
    done;
    Wide r

let close_set t s =
  match s with
  | Bits b ->
    let c = ref 0 and m = ref b and i = ref 0 in
    while !m <> 0 do
      if !m land 1 <> 0 then c := !c lor t.eps_bits.(!i);
      incr i;
      m := !m lsr 1
    done;
    Bits !c
  | Wide w ->
    let c = wide_zero t.nwords in
    for i = 0 to t.n - 1 do
      if wmem w i then wide_blend_into c t.eps_wide.(i)
    done;
    Wide c

(* memoized transition pieces for [(s, sym)] *)
let transition t s sym =
  let m = t.memo in
  let h = memo_hash s sym in
  let slots = m.slots in
  let rec probe i =
    if i >= memo_probes then None
    else
      let j = (h + i) land (memo_slots - 1) in
      match slots.(j) with
      | Some e when e.e_sym = sym && set_equal e.e_key s -> Some e
      | _ -> probe (i + 1)
  in
  match (if Array.length slots = 0 then None else probe 0) with
  | Some e ->
    m.hits <- m.hits + 1;
    incr g_hits;
    e
  | None ->
    m.misses <- m.misses + 1;
    incr g_misses;
    let raw = raw_targets t s sym in
    let e =
      { e_sym = sym; e_key = s; e_raw = raw; e_qual_raw = set_inter raw t.quals;
        e_closed = close_set t raw; e_closed_nq = close_set t (set_diff raw t.quals) }
    in
    let slots =
      if Array.length m.slots = 0 then begin
        let a = Array.make memo_slots None in
        m.slots <- a;
        a
      end
      else m.slots
    in
    let rec store i =
      if i >= memo_probes then slots.(h land (memo_slots - 1)) <- Some e
      else if slots.(j_of i) = None then slots.(j_of i) <- Some e
      else store (i + 1)
    and j_of i = (h + i) land (memo_slots - 1) in
    store 0;
    e

let next_unchecked t s sym = (transition t s sym).e_closed

let next t ~checkp s sym =
  let e = transition t s sym in
  if set_is_empty e.e_qual_raw then e.e_closed
  else
    match e.e_qual_raw with
    | Bits qb ->
      let acc = ref (match e.e_closed_nq with Bits b -> b | Wide _ -> mismatch ()) in
      let m = ref qb and i = ref 0 in
      while !m <> 0 do
        if !m land 1 <> 0 && checkp !i then acc := !acc lor t.eps_bits.(!i);
        incr i;
        m := !m lsr 1
      done;
      Bits !acc
    | Wide qw ->
      let acc =
        match e.e_closed_nq with Bits _ -> mismatch () | Wide w -> Bytes.copy w
      in
      for i = 0 to t.n - 1 do
        if wmem qw i && checkp i then wide_blend_into acc t.eps_wide.(i)
      done;
      Wide acc

let memo_stats t = (t.memo.hits, t.memo.misses)
let global_memo_stats () = (!g_hits, !g_misses)

(* ---- static simulation, set form (Compose Method, Section 4) ---------- *)

let next_on_label_set t s sym = next_unchecked t s sym

let next_on_any_set t s = (transition t s (-1)).e_closed

let next_on_desc_set t s =
  (* zero or more any-label transitions: saturate to the fixpoint *)
  let rec go cur =
    let nxt = set_union cur (next_on_any_set t cur) in
    if set_equal nxt cur then cur else go nxt
  in
  go (close_set t s)

let consistent_at_sym t i sym = t.enter_sym.(i) < 0 || t.enter_sym.(i) = sym

let consistent_at t i name =
  match t.states.(i).kind with
  | K_label l -> String.equal l name
  | K_start | K_wild | K_desc -> true

(* ---- sorted-int-list views --------------------------------------------

   The historical API: state sets as sorted [int list]s, labels as
   strings.  Thin conversions over the bitset core, kept for the compiled
   XQuery generator, the tests, and external callers; the engines use the
   set form above. *)

let start_set t = set_to_list t.start

let next_states t ~checkp s label = set_to_list (next t ~checkp (set_of_list t s) (Sym.intern label))

let next_states_unchecked t s label =
  set_to_list (next_unchecked t (set_of_list t s) (Sym.intern label))

let accepts t s =
  let f = final t in
  List.exists (fun i -> i = f) s

let next_on_label t s label = next_states_unchecked t s label

let next_on_any t s = set_to_list (next_on_any_set t (set_of_list t s))

let next_on_desc t s = set_to_list (next_on_desc_set t (set_of_list t s))

(* ---- reference implementation -----------------------------------------

   The original list-based transition functions, kept verbatim as the
   oracle for the bitset core (the qcheck equivalence property runs both
   on random paths and label sequences).  Not used by any engine. *)

module Reference = struct
  let close_state t i acc =
    let n = Array.length t.states in
    let rec go j acc =
      let acc = j :: acc in
      if j + 1 < n && t.states.(j + 1).kind = K_desc then go (j + 1) acc else acc
    in
    go i acc

  let sort_dedup l = List.sort_uniq compare l

  let closure t set = sort_dedup (List.fold_left (fun acc i -> close_state t i acc) [] set)

  let start_set t = closure t [ 0 ]

  let targets t i label =
    let n = Array.length t.states in
    let fwd =
      if i + 1 < n then
        match t.states.(i + 1).kind with
        | K_label l when String.equal l label -> [ i + 1 ]
        | K_wild -> [ i + 1 ]
        | K_label _ | K_desc | K_start -> []
      else []
    in
    match t.states.(i).kind with K_desc -> i :: fwd | K_start | K_label _ | K_wild -> fwd

  let next_states t ~checkp set label =
    let plus = List.concat_map (fun i -> targets t i label) set in
    let plus = sort_dedup plus in
    let filtered = List.filter (fun i -> (not (has_qual t i)) || checkp i) plus in
    closure t filtered

  let next_states_unchecked t set label =
    closure t (sort_dedup (List.concat_map (fun i -> targets t i label) set))

  let accepts t set =
    let f = final t in
    List.exists (fun i -> i = f) set

  let any_targets t i =
    let n = Array.length t.states in
    let fwd =
      if i + 1 < n then
        match t.states.(i + 1).kind with
        | K_label _ | K_wild -> [ i + 1 ]
        | K_desc | K_start -> []
      else []
    in
    match t.states.(i).kind with K_desc -> i :: fwd | K_start | K_label _ | K_wild -> fwd

  let next_on_label t set label = next_states_unchecked t set label

  let next_on_any t set = closure t (sort_dedup (List.concat_map (any_targets t) set))

  let next_on_desc t set =
    let rec go current acc =
      let nxt = next_on_any t current in
      let fresh = List.filter (fun i -> not (List.mem i acc)) nxt in
      if fresh = [] then acc else go fresh (sort_dedup (fresh @ acc))
    in
    go (closure t set) (closure t set)
end

let kind_to_string = function
  | K_start -> "start"
  | K_label l -> l
  | K_wild -> "*"
  | K_desc -> "//"

let to_string t =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "s%d:%s%s%s " i (kind_to_string s.kind)
           (if s.qual = Ast.Q_true then "" else "[" ^ Ast.qual_to_string s.qual ^ "]")
           (if i = final t then "(final)" else "")))
    t.states;
  String.trim (Buffer.contents buf)
