open Xut_xml

(** The bottom-up qualifier-annotation pass (algorithm [bottomUp] of
    Section 5, Fig. 9), implemented natively on DOM trees.

    One post-order traversal evaluates, at every node the filtering
    machinery keeps alive, the truth of the LQ sub-qualifiers that are
    needed there ({!Lq.eval_at} is QualDP of Fig. 7), and records them in
    a side table keyed by element id.  Subtrees that no selecting-NFA
    state and no propagated qualifier need can be pruned without a visit
    — the role of the paper's filtering NFA (see DESIGN.md).

    The table then makes [checkp] O(1) for the Top Down method, giving
    the linear-time twoPass (TD-BU) evaluation. *)

type table

val expand : Xut_xpath.Lq.t -> name:string -> int list -> bool array * int list
(** [expand lq ~name seeds] = the expressions to evaluate at a node named
    [name] given the demanded [seeds] (closed under sub-expressions, with
    short-circuiting on label guards), together with the sorted list of
    child-seed candidates (the [*/p] and [//p] expressions reachable).
    Shared with the SAX variant of the pass (Section 6). *)

val annotate : ?skip:(Node.element -> bool) -> Selecting_nfa.t -> Node.element -> table
(** Run the pass from the document element, with the start set of the
    NFA (the root's label is consumed by the first transition, matching
    the [$a/p] convention).  [skip], when given, is a schema skip-set
    oracle: a [true] answer promises every configuration at or below the
    argument is seed-free, so the subtree is left unvisited — the table
    is identical with or without the oracle, just cheaper to build. *)

type repair_stats = {
  recomputed : int;  (** entries evaluated afresh (spine + new material) *)
  reused : int;      (** entries carried over from the old table *)
  dropped : int;     (** stale old entries removed (departed subtrees) *)
}

val repair :
  ?skip:(Node.element -> bool) ->
  Selecting_nfa.t ->
  old_table:table ->
  spine:(int, Node.element) Hashtbl.t ->
  Node.element ->
  (table * repair_stats) option
(** Incremental maintenance across a commit.  [spine] maps each fresh
    spine element's id in the post-commit tree to the pre-commit element
    it replaced ({!Xut_update.Apply.materialize}'s diff).  Because
    entries are subtree-local and untouched subtrees keep their ids, the
    result is entry-for-entry equal to [annotate nfa new_root] at
    O(old-table copy + spine + changed material) cost, recursing into a
    shared subtree only when the demand reaching it changed (e.g. a
    rename above it).  [None] when the diff is degenerate — the new root
    is not a rebuild of the old one (document element replaced) — and
    the caller must fall back to a full [annotate].  The old table is
    never mutated: concurrent readers of the pre-commit snapshot keep
    resolving it. *)

val sat : table -> Node.element -> int -> bool
(** [sat tbl n i]: truth of LQ expression [i] at node [n] ([false] for
    pruned or never-needed entries). *)

val checkp : table -> Selecting_nfa.t -> int -> Node.element -> bool
(** [checkp tbl nfa s n]: constant-time qualifier check for NFA state
    [s] at node [n], for use with {!Selecting_nfa.next_states}. *)

val annotated_count : table -> int
(** Number of elements that were actually visited and annotated
    (instrumentation: shows the pruning at work). *)
