open Xut_xml
open Xut_xpath

type table = { sat : (int, bool array) Hashtbl.t; lq : Lq.t }

(* Expressions to evaluate at a node ("active" set), expanded from the
   seeds with short-circuiting on label guards, plus the seeds each child
   must evaluate (the Child/Desc sub-expressions reachable here). *)
let expand lq ~name seeds =
  let n = Lq.length lq in
  let active = Array.make n false in
  let child_candidates = ref [] in
  let rec activate i =
    if not active.(i) then begin
      active.(i) <- true;
      match Lq.expr lq i with
      | Lq.Seq (a, b) ->
        activate a;
        if not (Lq.label_blocked lq a name) then activate b
      | Lq.And_ (a, b) | Lq.Or_ (a, b) ->
        activate a;
        activate b
      | Lq.Not_ a -> activate a
      | Lq.Child p -> child_candidates := p :: !child_candidates
      | Lq.Desc p ->
        (* //p holds here iff p holds here or //p holds at a child *)
        activate p;
        child_candidates := i :: !child_candidates
      | Lq.True_ | Lq.Label_is _ | Lq.Text_cmp _ | Lq.Attr_cmp _ | Lq.Attr_exists _ -> ()
    end
  in
  List.iter activate seeds;
  (active, List.sort_uniq compare !child_candidates)

let has_any_qual nfa =
  let any = ref false in
  for i = 0 to Selecting_nfa.size nfa - 1 do
    if Selecting_nfa.has_qual nfa i then any := true
  done;
  !any

(* LQ indices demanded by the qualifiers of the states just entered. *)
let top_quals nfa states' =
  let qs = Selecting_nfa.set_inter states' (Selecting_nfa.qual_states nfa) in
  if Selecting_nfa.set_is_empty qs then []
  else Selecting_nfa.set_fold (fun s acc -> Selecting_nfa.state_lq nfa s :: acc) qs []

(* The bottomUp recursion, writing entries into [tbl].  [states] is the
   state set before consuming [e]'s symbol and [seeds] the LQ indices the
   parent demands here; both are functions of the ancestor names only, so
   an entry depends on nothing but the node's subtree and its demand —
   the subtree-locality that [repair] exploits.  [written] counts the
   entries produced (instrumentation for the repair metrics). *)
let rec annotate_subtree ~skip nfa tbl written (e : Node.element)
    (states : Selecting_nfa.set) (seeds : int list) : unit =
  if skip e then ()
    (* schema skip-set: every configuration at or below this symbol is
       seed-free, so the unpruned pass would write no entries here either
       — the table is identical with or without the visit *)
  else begin
  let lq = tbl.lq in
  let name = Node.name e in
  let states' = Selecting_nfa.next_unchecked nfa states (Node.sym e) in
  let all_seeds = List.sort_uniq compare (seeds @ top_quals nfa states') in
  if Selecting_nfa.set_is_empty states' && all_seeds = [] then ()
  else begin
    let candidates = if all_seeds = [] then [] else snd (expand lq ~name all_seeds) in
    let kids = Node.child_elements e in
    List.iter
      (fun c ->
        let kid_seeds =
          List.filter (fun p -> not (Lq.label_blocked lq p (Node.name c))) candidates
        in
        annotate_subtree ~skip nfa tbl written c states' kid_seeds)
      kids;
    if all_seeds <> [] then begin
      let csat i =
        List.exists
          (fun c ->
            match Hashtbl.find_opt tbl.sat (Node.id c) with
            | Some arr -> arr.(i)
            | None -> false)
          kids
      in
      let sat =
        Lq.eval_at lq ~name ~attrs:(Node.attrs e) ~text:(Node.text_content e) ~csat
          ~wanted:all_seeds
      in
      Hashtbl.replace tbl.sat (Node.id e) sat;
      incr written
    end
  end
  end

let annotate ?(skip = fun _ -> false) nfa root =
  let tbl = { sat = Hashtbl.create 1024; lq = Selecting_nfa.lq nfa } in
  if has_any_qual nfa then
    annotate_subtree ~skip nfa tbl (ref 0) root (Selecting_nfa.start nfa) [];
  tbl

type repair_stats = { recomputed : int; reused : int; dropped : int }

(* Incremental repair after a commit: the new tree shares every untouched
   subtree with the old one (same element ids), and entries are
   subtree-local, so the old entries for shared subtrees are still valid
   wherever the demand reaching them is unchanged.  We copy the whole old
   table (a flat id -> array copy, no tree traversal and no qualifier
   evaluation), then walk the rebuilt spine pairing each fresh element
   with its old counterpart, recomputing entries only for fresh elements
   and for shared subtrees whose demanded (state set, seed set) changed
   (a rename on the spine above them), and dropping entries whose ids
   left the tree. *)
let repair ?(skip = fun _ -> false) nfa ~old_table ~spine new_root =
  match Hashtbl.find_opt spine (Node.id new_root) with
  | None -> None (* degenerate diff: the document element was replaced *)
  | Some old_root ->
    let lq = Selecting_nfa.lq nfa in
    if not (has_any_qual nfa) then
      Some ({ sat = Hashtbl.create 16; lq }, { recomputed = 0; reused = 0; dropped = 0 })
    else begin
      let tbl = { sat = Hashtbl.copy old_table.sat; lq } in
      let recomputed = ref 0 and dropped = ref 0 in
      let drop id =
        if Hashtbl.mem tbl.sat id then begin
          Hashtbl.remove tbl.sat id;
          incr dropped
        end
      in
      (* Forget everything the old run knew about a departed (or
         demand-invalidated) subtree. *)
      let scrub oe = Node.iter_elements (fun x -> drop (Node.id x)) oe in
      (* Schema pruning reaches repair only through [fresh] (the same
         entry point a from-scratch run uses), so pruned and unpruned
         repairs produce the same table: skipped subtrees are exactly
         those a fresh run writes nothing under. *)
      let fresh e states seeds = annotate_subtree ~skip nfa tbl recomputed e states seeds in
      (* [oe]/[e] are counterparts: physically the same node (shared
         subtree) or an old spine element and its fresh rebuild.  The two
         (states, seeds) pairs are the demands the old and new runs
         propagate to them; they diverge only below a renamed spine
         node. *)
      let rec pair oe e old_states states old_seeds seeds =
        let name = Node.name e and old_name = Node.name oe in
        let states' = Selecting_nfa.next_unchecked nfa states (Node.sym e) in
        let old_states' = Selecting_nfa.next_unchecked nfa old_states (Node.sym oe) in
        let all_seeds = List.sort_uniq compare (seeds @ top_quals nfa states') in
        let old_all_seeds = List.sort_uniq compare (old_seeds @ top_quals nfa old_states') in
        if e == oe then begin
          (* Shared subtree: the copied entries are exactly what a fresh
             run would compute iff the demand here is unchanged. *)
          if Selecting_nfa.set_equal states' old_states' && all_seeds = old_all_seeds then ()
          else begin
            scrub oe;
            fresh e states seeds
          end
        end
        else begin
          (* Spine pair: [oe]'s id left the tree with it. *)
          drop (Node.id oe);
          if Selecting_nfa.set_is_empty states' && all_seeds = [] then
            (* The fresh run prunes here: nothing below [e] is annotated,
               so whatever the old run wrote below [oe] must go (shared
               children included — they are in the new tree, unneeded). *)
            List.iter scrub (Node.child_elements oe)
          else begin
            let candidates =
              if all_seeds = [] then [] else snd (expand lq ~name all_seeds)
            in
            let old_candidates =
              if old_all_seeds = [] then []
              else snd (expand lq ~name:old_name old_all_seeds)
            in
            let kid_seeds cs n =
              List.filter (fun p -> not (Lq.label_blocked lq p n)) cs
            in
            let old_kids = Node.child_elements oe in
            let old_by_id = Hashtbl.create (max 4 (List.length old_kids)) in
            List.iter (fun oc -> Hashtbl.replace old_by_id (Node.id oc) oc) old_kids;
            let surviving = Hashtbl.create 8 in
            let kids = Node.child_elements e in
            List.iter
              (fun c ->
                let cname = Node.name c in
                if Hashtbl.mem old_by_id (Node.id c) then begin
                  (* same node in both trees *)
                  Hashtbl.replace surviving (Node.id c) ();
                  pair c c old_states' states'
                    (kid_seeds old_candidates cname)
                    (kid_seeds candidates cname)
                end
                else
                  match Hashtbl.find_opt spine (Node.id c) with
                  | Some oc when Hashtbl.mem old_by_id (Node.id oc) ->
                    (* rebuilt spine child *)
                    Hashtbl.replace surviving (Node.id oc) ();
                    pair oc c old_states' states'
                      (kid_seeds old_candidates (Node.name oc))
                      (kid_seeds candidates cname)
                  | _ ->
                    (* inserted or replacement content: all-fresh ids *)
                    fresh c states' (kid_seeds candidates cname))
              kids;
            (* old children with no counterpart were deleted or replaced *)
            List.iter
              (fun oc -> if not (Hashtbl.mem surviving (Node.id oc)) then scrub oc)
              old_kids;
            if all_seeds <> [] then begin
              let csat i =
                List.exists
                  (fun c ->
                    match Hashtbl.find_opt tbl.sat (Node.id c) with
                    | Some arr -> arr.(i)
                    | None -> false)
                  kids
              in
              let sat =
                Lq.eval_at lq ~name ~attrs:(Node.attrs e) ~text:(Node.text_content e)
                  ~csat ~wanted:all_seeds
              in
              Hashtbl.replace tbl.sat (Node.id e) sat;
              incr recomputed
            end
          end
        end
      in
      pair old_root new_root (Selecting_nfa.start nfa) (Selecting_nfa.start nfa) [] [];
      Some
        ( tbl,
          {
            recomputed = !recomputed;
            reused = Hashtbl.length tbl.sat - !recomputed;
            dropped = !dropped;
          } )
    end

let sat tbl n i =
  match Hashtbl.find_opt tbl.sat (Node.id n) with Some arr -> arr.(i) | None -> false

let checkp tbl nfa s n = sat tbl n (Selecting_nfa.state_lq nfa s)

let annotated_count tbl = Hashtbl.length tbl.sat
