open Xut_xml
open Xut_xpath

type table = { sat : (int, bool array) Hashtbl.t; lq : Lq.t }

(* Expressions to evaluate at a node ("active" set), expanded from the
   seeds with short-circuiting on label guards, plus the seeds each child
   must evaluate (the Child/Desc sub-expressions reachable here). *)
let expand lq ~name seeds =
  let n = Lq.length lq in
  let active = Array.make n false in
  let child_candidates = ref [] in
  let rec activate i =
    if not active.(i) then begin
      active.(i) <- true;
      match Lq.expr lq i with
      | Lq.Seq (a, b) ->
        activate a;
        if not (Lq.label_blocked lq a name) then activate b
      | Lq.And_ (a, b) | Lq.Or_ (a, b) ->
        activate a;
        activate b
      | Lq.Not_ a -> activate a
      | Lq.Child p -> child_candidates := p :: !child_candidates
      | Lq.Desc p ->
        (* //p holds here iff p holds here or //p holds at a child *)
        activate p;
        child_candidates := i :: !child_candidates
      | Lq.True_ | Lq.Label_is _ | Lq.Text_cmp _ | Lq.Attr_cmp _ | Lq.Attr_exists _ -> ()
    end
  in
  List.iter activate seeds;
  (active, List.sort_uniq compare !child_candidates)

let annotate nfa root =
  let lq = Selecting_nfa.lq nfa in
  let tbl = { sat = Hashtbl.create 1024; lq } in
  let has_any_qual =
    let any = ref false in
    for i = 0 to Selecting_nfa.size nfa - 1 do
      if Selecting_nfa.has_qual nfa i then any := true
    done;
    !any
  in
  if not has_any_qual then tbl
  else begin
    let rec go (e : Node.element) (states : Selecting_nfa.set) (seeds : int list) : unit =
      let name = Node.name e in
      let states' = Selecting_nfa.next_unchecked nfa states (Node.sym e) in
      let top_quals =
        let qs = Selecting_nfa.set_inter states' (Selecting_nfa.qual_states nfa) in
        if Selecting_nfa.set_is_empty qs then []
        else Selecting_nfa.set_fold (fun s acc -> Selecting_nfa.state_lq nfa s :: acc) qs []
      in
      let all_seeds = List.sort_uniq compare (seeds @ top_quals) in
      if Selecting_nfa.set_is_empty states' && all_seeds = [] then ()
      else begin
        let candidates = if all_seeds = [] then [] else snd (expand lq ~name all_seeds) in
        let kids = Node.child_elements e in
        List.iter
          (fun c ->
            let kid_seeds =
              List.filter (fun p -> not (Lq.label_blocked lq p (Node.name c))) candidates
            in
            go c states' kid_seeds)
          kids;
        if all_seeds <> [] then begin
          let csat i =
            List.exists
              (fun c ->
                match Hashtbl.find_opt tbl.sat (Node.id c) with
                | Some arr -> arr.(i)
                | None -> false)
              kids
          in
          let sat =
            Lq.eval_at lq ~name ~attrs:(Node.attrs e) ~text:(Node.text_content e) ~csat
              ~wanted:all_seeds
          in
          Hashtbl.replace tbl.sat (Node.id e) sat
        end
      end
    in
    go root (Selecting_nfa.start nfa) [];
    tbl
  end

let sat tbl n i =
  match Hashtbl.find_opt tbl.sat (Node.id n) with Some arr -> arr.(i) | None -> false

let checkp tbl nfa s n = sat tbl n (Selecting_nfa.state_lq nfa s)

let annotated_count tbl = Hashtbl.length tbl.sat
