open Xut_xpath

(** Selecting NFA for X expressions (Section 3.4).

    For [p] in the normal form [beta_1\[q_1\]/.../beta_k\[q_k\]] the
    automaton has the semi-linear structure of Fig. 5: a start state
    [(s_0,\[true\])], one state per step, epsilon transitions into ['//']
    states and a ['*'] self-loop on them.

    State sets are bitsets ({!type:set}): a single immediate [int] when the
    automaton has at most 62 states (the common case — one state per
    normalized step), a [Bytes]-backed bitset above.  Epsilon closures are
    precomputed per state when the automaton is built, labels are compared
    as interned symbols ({!Xut_xml.Sym}), and each automaton carries a
    lock-free memo table from [(state set, symbol)] to the transition
    result, so plans cached across service requests keep their warmed
    transitions.  The historical sorted-[int list] API is retained as thin
    views over the bitset core.

    The same structure doubles as the filtering NFA of Section 5: the LQ
    list built from all qualifiers is embedded ({!lq}), and each state
    knows the LQ index of its qualifier, which seeds the needs-propagation
    that stands in for the filtering NFA's qualifier chains (DESIGN.md). *)

type kind = K_start | K_label of string | K_wild | K_desc

type t

val of_norm : Norm.t -> t
val of_path : Ast.path -> t

val size : t -> int
(** Number of states (k + 1). *)

val final : t -> int

val lq : t -> Lq.t

val kind : t -> int -> kind
val state_qual : t -> int -> Ast.qual
(** Conjunction of the qualifiers attached to the state's step. *)

val state_lq : t -> int -> int
(** LQ index of {!state_qual}. *)

val has_qual : t -> int -> bool
(** Whether the state's qualifier is non-trivial. *)

val ctx_qual : t -> Ast.qual
(** Qualifier applying to the context node (from leading '.' steps). *)

val selects_context : t -> bool
(** True iff the path is empty (the final state is the start state, so
    the context node itself is selected). *)

(** {2 Bitset state sets (the hot-path representation)} *)

type set
(** An immutable set of states of one particular automaton.  Sets from
    different automata must not be mixed (checked only for automata of
    different widths). *)

val start : t -> set
(** Epsilon-closure of the start state. *)

val empty_set : t -> set

val set_of_list : t -> int list -> set
val set_to_list : set -> int list
(** Ascending. *)

val set_is_empty : set -> bool
val set_mem : set -> int -> bool
val set_equal : set -> set -> bool
val set_union : set -> set -> set
val set_inter : set -> set -> set
val set_diff : set -> set -> set

val set_fold : (int -> 'a -> 'a) -> set -> 'a -> 'a
(** Folds in ascending state order. *)

val set_iter : (int -> unit) -> set -> unit

val accepts_set : t -> set -> bool
(** Does the set contain the final state? *)

val qual_states : t -> set
(** States with a non-trivial qualifier.  [set_inter s (qual_states t)]
    being empty is the one-instruction fast path that skips all
    per-node qualifier bookkeeping. *)

val next : t -> checkp:(int -> bool) -> set -> Xut_xml.Sym.t -> set
(** [nextStates] of Fig. 4 on the bitset representation.  [checkp s] must
    say whether the qualifier of state [s] holds at the node being
    entered; states whose qualifier fails are dropped before the closure.
    The qualifier-independent parts of the transition are memoized per
    automaton. *)

val next_unchecked : t -> set -> Xut_xml.Sym.t -> set
(** Transition ignoring qualifiers (the over-approximation the bottom-up
    pass runs on, Fig. 9 lines 1–2).  Memoized. *)

val consistent_at_sym : t -> int -> Xut_xml.Sym.t -> bool
(** {!consistent_at} on an interned label. *)

val next_on_label_set : t -> set -> Xut_xml.Sym.t -> set
val next_on_any_set : t -> set -> set
val next_on_desc_set : t -> set -> set

val memo_stats : t -> int * int
(** [(hits, misses)] of this automaton's transition memo.  Counters are
    unsynchronized: approximate under concurrent domains. *)

val global_memo_stats : unit -> int * int
(** Process-wide transition-memo [(hits, misses)] across all automata. *)

(** {2 Sorted-int-list views (historical API)} *)

val start_set : t -> int list
(** Epsilon-closure of the start state, as a sorted list. *)

val next_states : t -> checkp:(int -> bool) -> int list -> string -> int list
val next_states_unchecked : t -> int list -> string -> int list

val accepts : t -> int list -> bool

val consistent_at : t -> int -> string -> bool
(** Could state [s] be the current state at a node named [name]?  A
    label state requires the matching name; start, wildcard and
    descendant states fit any node.  Used to settle statically computed
    (delta') sets against a concrete node. *)

(** {2 Static simulation for the Compose Method (Section 4)} *)

val next_on_label : t -> int list -> string -> int list
(** [delta'] on a concrete label, unchecked, with closure. *)

val next_on_any : t -> int list -> int list
(** [delta'(S, * )]: states reachable by consuming one node of any label. *)

val next_on_desc : t -> int list -> int list
(** [delta'(S, //)]: states reachable by an unbounded sequence of any-label
    transitions (zero or more). *)

(** {2 Reference implementation}

    The original list-based transition functions, kept as the oracle for
    the bitset core's equivalence tests.  Not used by the engines. *)

module Reference : sig
  val start_set : t -> int list
  val next_states : t -> checkp:(int -> bool) -> int list -> string -> int list
  val next_states_unchecked : t -> int list -> string -> int list
  val accepts : t -> int list -> bool
  val next_on_label : t -> int list -> string -> int list
  val next_on_any : t -> int list -> int list
  val next_on_desc : t -> int list -> int list
end

val to_string : t -> string
