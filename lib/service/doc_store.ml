open Xut_xml

type info = {
  name : string;
  file : string option;
  elements : int;
  generation : int;
  schema : string option;
}

type reason = Unloaded | Replaced | Committed

type repair_hint = { new_root : Node.element; spine : (int, Node.element) Hashtbl.t }

type event = {
  name : string;
  root_id : int;
  generation : int;
  reason : reason;
  repair : repair_hint option;
  schema : string option;
  schema_dropped : bool;
}

(* A binding: the tree, its info, and — when loaded under a schema — the
   per-element subtree-size table the validation walk produced (element
   id -> element count below-and-including), backing O(1) skipped-node
   accounting.  The table is never mutated after publication: commits
   derive a fresh copy ({!Xut_schema.Schema.validate_commit}), so readers
   holding a snapshot keep a consistent table. *)
type entry = { root : Node.element; einfo : info; sizes : (int, int) Hashtbl.t option }

(* [cmu] serializes writers (commit/register/evict) per shard so a
   commit's read-evaluate-swap is atomic with respect to every other
   binding change; [mu] alone still protects readers, which never block
   on a commit in progress.  Lock order: cmu before mu. *)
type shard = {
  mu : Mutex.t;
  cmu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
}

type t = {
  shards : shard array;
  generations : int Atomic.t;
  lmu : Mutex.t;  (* guards [listeners] only; never held while firing *)
  mutable listeners : (event -> unit) list;
}

let default_shards = 8

let create ?(shards = default_shards) () =
  if shards < 1 then invalid_arg "Doc_store.create: need at least one shard";
  {
    shards =
      Array.init shards (fun _ ->
          { mu = Mutex.create (); cmu = Mutex.create (); tbl = Hashtbl.create 16 });
    generations = Atomic.make 0;
    lmu = Mutex.create ();
    listeners = [];
  }

let shard_count t = Array.length t.shards

let shard_of t name = t.shards.(Hashtbl.hash name mod Array.length t.shards)

let locked sh f =
  Mutex.lock sh.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mu) f

let as_writer sh f =
  Mutex.lock sh.cmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.cmu) f

let subscribe t f =
  Mutex.lock t.lmu;
  t.listeners <- t.listeners @ [ f ];
  Mutex.unlock t.lmu

(* Fired outside every shard lock, so a listener may freely re-enter the
   store (or take other locks: the plan cache, a connection's write
   mutex) without inversion. *)
let fire t event =
  Mutex.lock t.lmu;
  let listeners = t.listeners in
  Mutex.unlock t.lmu;
  List.iter (fun f -> f event) listeners

(* Validation happens here, before the binding is published, so a LOAD
   under a schema either yields a fully conformant binding (with its
   size table) or fails without touching the store. *)
let check_schema ~name root = function
  | None -> Stdlib.Ok (None, None)
  | Some sname -> begin
    match Xut_schema.Schema.find sname with
    | None -> Stdlib.Error (Printf.sprintf "unknown schema %S (not registered)" sname)
    | Some s -> begin
      match Xut_schema.Schema.validate s root with
      | Stdlib.Ok sizes -> Stdlib.Ok (Some sname, Some sizes)
      | Stdlib.Error msg ->
        Stdlib.Error
          (Printf.sprintf "document %S does not conform to schema %S: %s" name sname msg)
    end
  end

let register t ~name ?file ?schema root =
  match check_schema ~name root schema with
  | Stdlib.Error _ as e -> e
  | Stdlib.Ok (schema, sizes) ->
    let generation = Atomic.fetch_and_add t.generations 1 + 1 in
    let info =
      { name; file; elements = Node.element_count (Node.Element root); generation; schema }
    in
    let sh = shard_of t name in
    let previous =
      as_writer sh (fun () ->
          locked sh (fun () ->
              let prev = Hashtbl.find_opt sh.tbl name in
              Hashtbl.replace sh.tbl name { root; einfo = info; sizes };
              prev))
    in
    (match previous with
    | Some prev ->
      fire t
        {
          name;
          root_id = Node.id prev.root;
          generation;
          reason = Replaced;
          repair = None;
          schema;
          schema_dropped = false;
        }
    | None -> ());
    Stdlib.Ok (info, previous <> None)

let load_file t ~name ?schema path =
  match Dom.parse_file path with
  | root -> register t ~name ~file:path ?schema root
  | exception Sax.Parse_error { line; col; msg } ->
    Error (Printf.sprintf "parse error in %s at %d:%d: %s" path line col msg)
  | exception Sys_error msg -> Error msg
  | exception Dom.No_document_element ->
    Error (Printf.sprintf "no document element in %s" path)

let find t name =
  let sh = shard_of t name in
  locked sh (fun () ->
      Option.map (fun e -> e.root) (Hashtbl.find_opt sh.tbl name))

let info t name =
  let sh = shard_of t name in
  locked sh (fun () ->
      Option.map (fun e -> e.einfo) (Hashtbl.find_opt sh.tbl name))

let snapshot t name =
  let sh = shard_of t name in
  locked sh (fun () ->
      Option.map (fun e -> (e.root, e.einfo, e.sizes)) (Hashtbl.find_opt sh.tbl name))

let evict t name =
  let sh = shard_of t name in
  let removed =
    as_writer sh (fun () ->
        locked sh (fun () ->
            match Hashtbl.find_opt sh.tbl name with
            | None -> None
            | Some entry ->
              Hashtbl.remove sh.tbl name;
              Some entry))
  in
  match removed with
  | None -> false
  | Some e ->
    fire t
      {
        name;
        root_id = Node.id e.root;
        generation = e.einfo.generation;
        reason = Unloaded;
        repair = None;
        schema = e.einfo.schema;
        schema_dropped = false;
      };
    true

type ('a, 'e) commit_result =
  | Swapped of info * 'a
  | Unchanged of info * 'a
  | Rejected of 'e
  | No_document

(* Revalidate the post-commit tree against the binding's schema.  With a
   rebuilt-spine diff this is incremental (shared subtrees keep their
   recorded sizes); without one it falls back to a full walk.  A
   nonconforming result does not reject the commit — updates are the
   system's point — it {e drops} the schema binding, turning pruning off
   for the document from the swap onward.  The third component reports
   that drop so the event can carry it (a [schema_dropped] notice +
   counter; the drop used to be silent). *)
let revalidated (info : info) root' spine old_sizes =
  match info.schema with
  | None -> (None, None, false)
  | Some sname -> begin
    match Xut_schema.Schema.find sname with
    | None -> (None, None, true)
    | Some s -> begin
      match (spine, old_sizes) with
      | Some spine, Some old_sizes -> begin
        match Xut_schema.Schema.validate_commit s ~spine ~old_sizes root' with
        | Stdlib.Ok sizes -> (Some sname, Some sizes, false)
        | Stdlib.Error _ -> (None, None, true)
      end
      | _ -> begin
        match Xut_schema.Schema.validate s root' with
        | Stdlib.Ok sizes -> (Some sname, Some sizes, false)
        | Stdlib.Error _ -> (None, None, true)
      end
    end
  end

let commit t ~name f =
  let sh = shard_of t name in
  let departed = ref None in
  let outcome =
    as_writer sh (fun () ->
        match locked sh (fun () -> Hashtbl.find_opt sh.tbl name) with
        | None -> No_document
        | Some { root; einfo = info; sizes } -> begin
          (* [f] runs under the writer lock only: readers proceed against
             the current binding while the new tree is built. *)
          match f info root with
          | Error e -> Rejected e
          | Ok (None, a) -> Unchanged (info, a)
          | Ok (Some (root', spine), a) ->
            let generation = Atomic.fetch_and_add t.generations 1 + 1 in
            let schema', sizes', dropped = revalidated info root' spine sizes in
            let info' =
              {
                info with
                elements = Node.element_count (Node.Element root');
                generation;
                schema = schema';
              }
            in
            locked sh (fun () ->
                Hashtbl.replace sh.tbl name { root = root'; einfo = info'; sizes = sizes' });
            departed :=
              Some
                ( Node.id root,
                  Option.map (fun spine -> { new_root = root'; spine }) spine,
                  dropped );
            Swapped (info', a)
        end)
  in
  (match (outcome, !departed) with
  | Swapped (info', _), Some (old_root_id, repair, schema_dropped) ->
    fire t
      {
        name;
        root_id = old_root_id;
        generation = info'.generation;
        reason = Committed;
        repair;
        schema = info'.schema;
        schema_dropped;
      }
  | _ -> ());
  outcome

let names t =
  Array.to_list t.shards
  |> List.concat_map (fun sh ->
         locked sh (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) sh.tbl []))
  |> List.sort String.compare
