open Xut_xml

type info = { name : string; file : string option; elements : int }

type t = { mu : Mutex.t; tbl : (string, Node.element * info) Hashtbl.t }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let register t ~name ?file root =
  let info = { name; file; elements = Node.element_count (Node.Element root) } in
  locked t (fun () -> Hashtbl.replace t.tbl name (root, info));
  info

let load_file t ~name path =
  match Dom.parse_file path with
  | root -> Ok (register t ~name ~file:path root)
  | exception Sax.Parse_error { line; col; msg } ->
    Error (Printf.sprintf "parse error in %s at %d:%d: %s" path line col msg)
  | exception Sys_error msg -> Error msg
  | exception Dom.No_document_element ->
    Error (Printf.sprintf "no document element in %s" path)

let find t name = locked t (fun () -> Option.map fst (Hashtbl.find_opt t.tbl name))
let info t name = locked t (fun () -> Option.map snd (Hashtbl.find_opt t.tbl name))

let evict t name =
  locked t (fun () ->
      let present = Hashtbl.mem t.tbl name in
      Hashtbl.remove t.tbl name;
      present)

let names t =
  locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])
  |> List.sort String.compare
