open Xut_automata

(** Mutex-protected LRU memo of {!Xut_automata.Annotator} tables, keyed
    by document root id — the doc-dependent half of TD-BU's work,
    reusable because stored snapshots are immutable.  One memo lives in
    every cached transform plan ({!Plan_cache.plan}) and in every stored
    view definition ({!View_store}); the document store's lifecycle
    events drive {!invalidate}/{!repair} against all of them. *)

type t

val create : unit -> t

val capacity : int
(** 8: the per-memo bound on memoized annotation tables.  Overflow
    evicts only the least-recently-used document's table. *)

val find :
  ?skip:(Xut_xml.Node.element -> bool) ->
  t ->
  Selecting_nfa.t ->
  Xut_xml.Node.element ->
  Annotator.table
(** The memoized bottom-up annotation of this document for [nfa],
    computing and remembering it on first use.  The table is built
    outside the memo lock, so concurrent first uses may annotate twice;
    one insert wins and both tables are valid.  [skip] (a schema
    skip-set oracle, see {!Xut_automata.Annotator.annotate}) only speeds
    the build: the resulting table is identical with or without it, so
    tables stay shareable across schema-on and schema-off callers. *)

val count : t -> int

val invalidate : t -> root_id:int -> bool
(** Drop the table for one document root, if present. *)

val repair :
  ?skip:(Xut_xml.Node.element -> bool) ->
  t ->
  Selecting_nfa.t ->
  old_root_id:int ->
  spine:(int, Xut_xml.Node.element) Hashtbl.t ->
  Xut_xml.Node.element ->
  [ `Absent | `Fallback | `Repaired of Annotator.repair_stats ]
(** Commit-time incremental maintenance: derive the new root's table
    from the departing root's via {!Xut_automata.Annotator.repair} and
    memoize it.  [`Absent] when nothing was cached for the old root;
    [`Fallback] when the diff is degenerate (document element replaced)
    and the old entry was evicted instead.  On success the old root's
    entry is {e kept} for in-flight readers of the pre-commit snapshot
    and ages out of the LRU like any other entry. *)
