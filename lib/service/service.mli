(** The transform-query service: {!Doc_store} + {!Plan_cache} +
    {!Worker_pool} + {!Metrics} behind one request type.

    This is the in-process serving layer the ROADMAP's production goal
    needs: documents are parsed once, query front ends are compiled once
    and cached, evaluation fans out over OCaml 5 domains, and every
    request is isolated — a bad query is an [Error] response, never a
    dead worker.  [xut serve] speaks exactly this request type over
    stdin; a socket transport can reuse it unchanged (ROADMAP). *)

type request =
  | Load of { name : string; file : string }
      (** Parse [file] and store it under [name]. *)
  | Unload of { name : string }
  | Transform of { doc : string; engine : Core.Engine.algo; query : string }
      (** Evaluate a transform query against stored document [doc];
          the payload is the serialized result tree. *)
  | Count of { doc : string; engine : Core.Engine.algo; query : string }
      (** Like [Transform] but reply only [elements=N], the element
          count of the result — the lean reply for what-if analytics
          and validation traffic, where the client doesn't want the
          (possibly multi-MB) result document back. *)
  | Stats
      (** Metrics dump + cache stats + stored-document listing. *)

type response = (string, string) result
(** [Ok payload] or [Error message]; errors cover unknown documents,
    parse failures, invalid updates — anything the request raised. *)

type t

val create : ?domains:int -> ?cache_capacity:int -> ?queue_capacity:int -> unit -> t
(** Start a service.  Defaults: [domains = 1] (single worker, the CLI
    serve default), [cache_capacity = 128] plans ([0] disables the
    cache), [queue_capacity = 64] pending requests (backpressure
    threshold). *)

val submit : t -> request -> response Worker_pool.future
(** Asynchronous entry: enqueue, return a future.  Blocks when the
    queue is full. *)

val await : response Worker_pool.future -> response

val call : t -> request -> response
(** Synchronous round trip. *)

val metrics : t -> Metrics.t
val cache_stats : t -> Plan_cache.stats
val store : t -> Doc_store.t

val shutdown : t -> unit
(** Drain and join the worker domains.  Idempotent. *)

val parse_request : string -> (request, string) result
(** Parse one line of the [xut serve] protocol:
    {v
    LOAD <name> <file>
    UNLOAD <name>
    TRANSFORM <name> <engine> <query text...>
    COUNT <name> <engine> <query text...>
    STATS
    v} *)
