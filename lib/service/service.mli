(** The transform-query service: {!Doc_store} + {!Plan_cache} +
    {!Worker_pool} + {!Metrics} behind one request type.

    This is the in-process serving layer the ROADMAP's production goal
    needs: documents are parsed once, query front ends are compiled once
    and cached, evaluation fans out over OCaml 5 domains, and every
    request is isolated — a bad query is an [Error] response, never a
    dead worker.  The request/response types here are the service API
    proper; rendering them to bytes is a transport concern
    ({!Xut_transport.Wire} speaks both the [xut serve] stdin line
    protocol and the length-prefixed binary framing of the socket
    server). *)

type target =
  | Doc of string   (** a stored document, by name *)
  | View of string  (** a stored view ({!request.Defview}), by name *)
(** What a [Transform]/[Count] runs against.  Against a [Doc], [query]
    is a {e transform} query; against a [View], [query] is a {e user}
    query (the restricted FLWOR fragment of
    {!Core.User_query}, or arbitrary XQuery with a materializing
    fallback) answered over the view's virtual document via the Sec. 4
    Compose method — the view is never materialized on the composed
    path. *)

type request =
  | Load of { name : string; file : string; schema : string option }
      (** Parse [file] and store it under [name].  With [schema], the
          tree is validated against the registered
          {!Xut_schema.Schema} of that name before the binding is
          published — a nonconforming document (or unknown schema name)
          fails the load with [Bad_request] — and the binding then
          carries the schema: Doc-target queries are admission-checked
          and pruned against it until a commit breaks conformance. *)
  | Unload of { name : string }
  | Transform of { target : target; engine : Core.Engine.algo; query : string }
      (** Evaluate a query against a stored document or view; the
          payload is the serialized result (tree for documents, one
          serialized item per line for views). *)
  | Count of { target : target; engine : Core.Engine.algo; query : string }
      (** Like [Transform] but reply only the element count of the
          result — the lean reply for what-if analytics and validation
          traffic, where the client doesn't want the (possibly
          multi-MB) result document back. *)
  | Apply of { doc : string; query : string }
      (** Dry-run of the write path: evaluate the query's updates
          against the current snapshot of [doc] into a pending update
          list ({!Xut_update.Pending}) and reply with its report —
          surviving primitives, collapsed primitives, conflicts —
          without changing anything.  [query] may be a full transform
          query or a bare update / update sequence over [$a]
          ({!Core.Transform_parser.parse_updates}). *)
  | Commit of { doc : string; query : string }
      (** The write path proper: evaluate as [Apply], then — when the
          pending list is conflict-free — materialize a new tree
          (sharing untouched subtrees with the old snapshot) and swap it
          in atomically under a fresh generation.  In-flight readers
          keep the old snapshot; a conflicting list is rejected with
          [Conflict] and changes nothing. *)
  | Defview of { name : string; query : string }
      (** [DEFVIEW name := <transform query>]: define (or redefine) a
          stored view.  The definition is validated and compiled {e now}
          — parse, composable-fragment check, selecting NFA — and
          rejected with [View_compose_error] when out of fragment, so
          queries against the view never fall back for a reason known at
          definition time.  The base named by the definition's
          [doc("X")] may be a stored document or another view
          (views-on-views); it may also not exist yet (late binding) —
          queries then answer [Unknown_document] until it does. *)
  | Undefview of { name : string }
  | Listviews
  | Stats
      (** Metrics dump + cache stats + stored-document listing. *)
  | Batch of request list
      (** Execute the sub-requests in order on one worker and reply
          with one {!Batch_results} holding a response per item — one
          frame in, one frame out, amortizing queue/future (and wire)
          overhead for small-document traffic.  Batches must not nest:
          a [Batch] inside a [Batch] is answered with [Bad_request]. *)

(** Machine-readable failure classification, so transports and tests
    branch on codes instead of grepping message strings. *)
type err_code =
  | Unknown_document  (** the named document is not in the store *)
  | Query_parse_error (** the query text failed the front end (parse/normalize/NFA) *)
  | Eval_error        (** the engine failed while evaluating *)
  | Conflict          (** a [Commit]'s pending list has unresolvable
                          primitive pairs; nothing was changed *)
  | Overloaded        (** connection/queue limits hit, or shutting down *)
  | Bad_request       (** malformed request (bad file, nested batch, bad frame) *)
  | View_compose_error
      (** a [Defview] was rejected at definition time: the transform
          falls outside the composable fragment, or its base chain
          would form a cycle *)
  | Statically_empty
      (** a Doc-target [Transform]/[Count] was rejected at admission:
          the product of its selecting NFA with the document's schema is
          empty, so the query can never select anything in {e any}
          conforming document — the request would be a full-document
          no-op, and the schema proves it without touching the tree *)

type view_info = { v_name : string; v_base : string; v_depth : int; v_generation : int }

type payload =
  | Doc_loaded of
      { name : string;
        elements : int;
        reloaded : bool;
        generation : int;
        schema : string option
      }
      (** [reloaded] is [true] when the [LOAD] replaced an existing
          binding (the old tree's caches were invalidated);
          [generation] is the store's monotone load stamp; [schema] the
          validated binding, echoed back when the load named one. *)
  | Doc_unloaded of { name : string }
  | Tree of string         (** serialized result document of a [Transform] *)
  | Element_count of int   (** reply to a [Count] *)
  | Applied of { doc : string; primitives : int; collapsed : int; conflicts : string list }
      (** Reply to an [Apply]: the pending-list report.  [conflicts]
          holds one rendered line per unresolvable pair; the list is
          committable iff it is empty. *)
  | Committed of
      { doc : string; primitives : int; collapsed : int; elements : int; generation : int }
      (** Reply to a successful [Commit].  [generation] is the new
          binding's stamp — unchanged (and [primitives = 0]) when the
          query selected nothing, in which case no swap happened. *)
  | View_defined of
      { name : string; base : string; depth : int; generation : int; redefined : bool }
      (** Reply to a [Defview].  [base] is the definition's immediate
          base (document or view), [depth] the resolved chain length,
          [generation] the store-wide definition stamp (composed-plan
          cache keys embed it, so redefinition re-keys every dependent
          plan). *)
  | View_undefined of { name : string }
  | View_list of view_info list  (** reply to a [Listviews], sorted by name *)
  | Stats_dump of string
  | Batch_results of response list
      (** One response per [Batch] item, in request order. *)
  | Stream_done of { bytes : int; chunks : int }
      (** Completion of a streamed [Transform] ({!transform_stream}):
          the payload bytes went to the consumer chunk by chunk, so the
          response carries only the totals. *)

and response =
  | Ok of payload
  | Error of { code : err_code; message : string }

val err_code_name : err_code -> string
(** Stable lower-kebab name ("unknown-document", "query-parse-error",
    "eval-error", "conflict", "overloaded", "bad-request",
    "view-compose-error", "statically-empty"), used by the line protocol
    and logs. *)

val err_code_of_name : string -> err_code option

val render_response : response -> (string, string) Stdlib.result
(** Compatibility rendering to the flat [(payload, message) result]
    shape of the original stdin protocol: [Ok] payloads become the
    exact strings the pre-redesign service produced ("loaded d
    elements=18", the serialized tree, "elements=16", …); [Error]
    becomes ["<code-name>: <message>"]. *)

type t

val create :
  ?domains:int -> ?cache_capacity:int -> ?queue_capacity:int -> ?store_shards:int -> unit -> t
(** Start a service.  Defaults: [domains = 1] (single worker, the CLI
    serve default), [cache_capacity = 128] plans ([0] disables the
    cache), [queue_capacity = 64] pending requests (backpressure
    threshold), [store_shards = 8] document-store shards.

    The service subscribes itself to the store's lifecycle events: an
    [UNLOAD], reload or [COMMIT] evicts exactly the departing tree's
    annotation tables from every cached plan and counts them in
    {!Metrics.invalidations} ([doc_invalidations] in STATS).  The same
    event walks the view-dependency graph (view → base document, view →
    parent view): dependent views' annotation memos are repaired (commit
    with a usable spine diff) or evicted, an [UNLOAD]/reload also drops
    composed plans addressed through the document, and the churn is
    counted in {!Metrics.view_invalidations}.  A plain [COMMIT] keeps
    composed plans — they depend on the view {e definitions}, not on
    document content, so a re-query after commit reuses the cached
    composition over the new snapshot. *)

type future

val submit : t -> request -> future
(** Asynchronous entry: enqueue, return a future.  Blocks when the
    queue is full.  After {!shutdown}, returns a future already
    fulfilled with an [Overloaded] error. *)

val await : future -> response
(** Block until the request has been served.  A handler can not kill
    its worker: any outcome, including an escaped exception, arrives
    here as a [response]. *)

val peek : future -> response option
(** Non-blocking: [None] while the request is still pending. *)

val call : t -> request -> response
(** Synchronous round trip. *)

(** {2 Streaming results}

    The zero-materialization result path: a [Transform] whose serialized
    result is handed to a caller-supplied consumer in chunks as the
    engine produces it, instead of being returned as one [Tree] string.
    The streaming engines (GENTOP, TD-BU, twoPassSAX) emit events
    straight into the serializer sink — no output tree, no monolithic
    string; the others materialize their tree and stream its
    serialization.  The byte concatenation of the chunks is exactly the
    [Tree] payload the plain [Transform] would have produced. *)

val default_chunk_size : int
(** {!Xut_xml.Serialize.Sink.default_chunk_size} (64 KiB). *)

val submit_stream :
  t ->
  doc:string ->
  engine:Core.Engine.algo ->
  query:string ->
  ?chunk_size:int ->
  (string -> unit) ->
  future
(** Enqueue a streaming transform.  [emit] runs on the worker domain,
    once per chunk, strictly before the future resolves; it must be
    quick or the worker stalls (transports write the chunk frame here).
    If [emit] raises, or the engine fails after chunks have gone out,
    the future resolves to an [Error] — the mid-stream error case. *)

val transform_stream :
  t ->
  doc:string ->
  engine:Core.Engine.algo ->
  query:string ->
  ?chunk_size:int ->
  (string -> unit) ->
  response
(** Synchronous {!submit_stream}: [Ok (Stream_done _)] after the last
    chunk, or an [Error]. *)

(** {2 Streamed ingest}

    The constant-memory {e input} path ([TRANSFORM-STREAM]): the source
    is driven through the SAX transform straight into the chunked sink,
    never materializing the input as a tree — when the plan admits it.
    The classifier is {!Core.Sax_transform.one_pass}: plans with no
    qualifiers anywhere run fused in one forward pass with O(depth)
    memory ({!Metrics.streams_fused}).  Other shapes fall back
    automatically with byte-identical output
    ({!Metrics.stream_fallbacks}): a [From_file] plan with a trivial
    context qualifier runs the two-parse SAX algorithm (two reads of
    the file, a truth table, still no tree); anything else uses a tree
    (the stored one, or a one-off parse of the file) and streams only
    the output. *)

(** Input of a streamed-ingest transform: a stored document, or a
    server-side file path. *)
type stream_source = From_doc of string | From_file of string

val submit_ingest :
  t ->
  source:stream_source ->
  query:string ->
  ?chunk_size:int ->
  (string -> unit) ->
  future
(** Enqueue a streamed-ingest transform; [emit] contract as in
    {!submit_stream}.  No engine argument: the streaming SAX machinery
    is the engine, the fallback is automatic. *)

val transform_ingest :
  t ->
  source:stream_source ->
  query:string ->
  ?chunk_size:int ->
  (string -> unit) ->
  response
(** Synchronous {!submit_ingest}. *)

val metrics : t -> Metrics.t
val cache_stats : t -> Plan_cache.stats
val store : t -> Doc_store.t
val views : t -> View_store.t

val on_invalidate : t -> (Doc_store.event -> unit) -> unit
(** Subscribe to document-lifecycle events (unload / reload / commit),
    after the service's own cache-invalidation hook — the transport
    layer uses this to push invalidation notices to connected clients.
    The callback runs synchronously on the worker thread performing the
    [LOAD]/[UNLOAD]/[COMMIT]; keep it quick. *)

val shutdown : t -> unit
(** Drain and join the worker domains.  Idempotent. *)
