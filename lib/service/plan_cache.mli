open Xut_xpath
open Xut_automata

(** LRU cache of compiled transform-query plans, keyed by query text,
    plus composed (view chain × user query) plans keyed by chain
    signature.

    A plan bundles everything the front end produces — parsed AST,
    normalized embedded path, selecting NFA — so a cache hit goes
    straight to engine execution.  On XMark-scale documents the front
    end is microseconds while evaluation is milliseconds; the cache
    matters because a serving workload repeats a small set of queries
    (the Fig. 11 workloads, security views, canned what-ifs) over large
    documents, and because it also deduplicates the per-query allocation
    churn across millions of requests. *)

type plan = {
  source : string;                 (** the exact query text (cache key) *)
  query : Core.Transform_ast.t;
  norm : Norm.t;                   (** normal form of the embedded path *)
  nfa : Selecting_nfa.t;           (** selecting NFA built from [norm] *)
  annotations : Annotation_memo.t;
      (** per-plan memo of TD-BU annotation tables, keyed by doc root *)
  products : Product_memo.t;
      (** per-plan memo of NFA x schema products, keyed by schema name *)
}

val compile : string -> plan
(** Run the whole front end: parse, normalize, build the NFA.
    @raise Core.Transform_parser.Parse_error on bad transform syntax. *)

val annotation :
  ?skip:(Xut_xml.Node.element -> bool) -> plan -> Xut_xml.Node.element -> Annotator.table
(** The memoized bottom-up annotation of this document for this plan's
    NFA ({!Annotation_memo.find}).  This is the big per-request saving
    for repeated TD-BU queries on a stored document: the whole first
    pass of twoPass is amortized away, leaving only the top-down
    rebuild.  [skip] prunes the build without changing the table (see
    {!Annotation_memo.find}). *)

val product : plan -> Xut_schema.Schema.t -> Xut_schema.Schema.product * bool
(** The product of this plan's NFA with [schema], memoized per plan
    ({!Product_memo.get}): the statically-empty verdict and subtree
    skip-set the admission check and the pruned engines consume. *)

val max_annotated_docs : int
(** {!Annotation_memo.capacity}: the per-plan bound on memoized tables. *)

type t

val create : capacity:int -> t
(** LRU cache holding at most [capacity] plans (and, separately, at most
    [capacity] composed plans).  [capacity = 0] disables caching: every
    lookup compiles and nothing is stored (the [bench-serve] cache-off
    mode). *)

type outcome = Hit | Miss

val find_or_compile : t -> string -> plan * outcome
(** Return the cached plan for this query text, or compile and remember
    it, evicting the least recently used entry when full.  Raises as
    {!compile} on bad input; failures are not cached. *)

val find_or_compose :
  t ->
  key:string ->
  deps:string list ->
  (unit -> (Core.Composition.composed, string) result) ->
  (Core.Composition.composed, string) result * outcome
(** Return the cached composed plan under [key], or run the thunk and
    remember its result.  [key] must capture everything the result
    depends on — the serving layer uses the view-chain signature (base
    document name plus every view's [name\@generation]) and the user
    query text.  [deps] names the base document and every view on the
    chain, for {!invalidate_composed}.  Compose {e failures} are cached
    too: a query stays outside the fragment until a view on its chain is
    redefined, and the fallback path should not pay a recompose per
    request. *)

val invalidate_composed : t -> dep:string -> int
(** Drop every composed plan depending on this name (a base document or
    a view) — the dependency-graph hook document lifecycle events and
    view redefinitions drive.  Returns the number of entries dropped. *)

val composed_entries : t -> int

val invalidate : t -> root_id:int -> int
(** Remove the annotation table keyed by this document root id from
    {e every} cached plan — the cross-layer hook the document store's
    unload/reload events drive.  Returns the number of tables dropped
    (one per plan that had annotated that tree).  Never touches the
    plans themselves or other documents' tables. *)

type repair_totals = {
  repaired : int;          (** plan tables repaired incrementally *)
  fallbacks : int;         (** plan tables evicted (degenerate diff) *)
  recomputed_nodes : int;  (** entries evaluated afresh, summed *)
  reused_nodes : int;      (** entries carried over, summed *)
}

val repair :
  ?plan_skip:(plan -> (Xut_xml.Node.element -> bool) option) ->
  t ->
  old_root_id:int ->
  spine:(int, Xut_xml.Node.element) Hashtbl.t ->
  Xut_xml.Node.element ->
  repair_totals
(** The commit-time counterpart of {!invalidate}: for every cached plan
    holding a table for the departing root, derive the new root's table
    with {!Xut_automata.Annotator.repair} and memoize it, falling back
    to eviction when the diff is degenerate.  The old root's entry is
    {e kept} — readers already holding the pre-commit snapshot must
    still resolve its table — and ages out of the per-plan LRU
    ({!max_annotated_docs}) like any other entry.  Plans with no table
    for the old root are untouched (nothing to keep warm).  [plan_skip]
    supplies each plan's schema skip-set oracle (from {!product} against
    the document's post-commit binding), pruning the fresh-subtree
    annotation inside the repair without changing its result. *)

val annotation_entries : t -> int
(** Total memoized annotation tables across all cached plans — the
    quantity the per-doc invalidation and LRU bounds keep from growing
    with load/unload churn. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  annotation_entries : int;
  composed_entries : int;
}

val stats : t -> stats
val clear : t -> unit
