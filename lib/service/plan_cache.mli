open Xut_xpath
open Xut_automata

(** LRU cache of compiled transform-query plans, keyed by query text.

    A plan bundles everything the front end produces — parsed AST,
    normalized embedded path, selecting NFA — so a cache hit goes
    straight to engine execution.  On XMark-scale documents the front
    end is microseconds while evaluation is milliseconds; the cache
    matters because a serving workload repeats a small set of queries
    (the Fig. 11 workloads, security views, canned what-ifs) over large
    documents, and because it also deduplicates the per-query allocation
    churn across millions of requests. *)

type annotations
(** Per-plan memo of {!Xut_automata.Annotator} tables, keyed by document
    root id — the doc-dependent half of TD-BU's work, reusable because
    stored documents are immutable. *)

type plan = {
  source : string;                 (** the exact query text (cache key) *)
  query : Core.Transform_ast.t;
  norm : Norm.t;                   (** normal form of the embedded path *)
  nfa : Selecting_nfa.t;           (** selecting NFA built from [norm] *)
  annotations : annotations;
}

val compile : string -> plan
(** Run the whole front end: parse, normalize, build the NFA.
    @raise Core.Transform_parser.Parse_error on bad transform syntax. *)

val annotation : plan -> Xut_xml.Node.element -> Annotator.table
(** The memoized bottom-up annotation of this document for this plan's
    NFA, computing and remembering it on first use.  This is the big
    per-request saving for repeated TD-BU queries on a stored document:
    the whole first pass of twoPass is amortized away, leaving only the
    top-down rebuild.  The memo holds at most a handful of documents and
    is dropped wholesale when it overflows (annotations of evicted
    documents die with it). *)

type t

val create : capacity:int -> t
(** LRU cache holding at most [capacity] plans.  [capacity = 0] disables
    caching: every lookup compiles and nothing is stored (the
    [bench-serve] cache-off mode). *)

type outcome = Hit | Miss

val find_or_compile : t -> string -> plan * outcome
(** Return the cached plan for this query text, or compile (outside the
    cache lock — concurrent misses may compile the same text twice; the
    duplicate insert is harmless) and remember it, evicting the least
    recently used entry when full.  Raises as {!compile} on bad input;
    failures are not cached. *)

type stats = { hits : int; misses : int; evictions : int; entries : int; capacity : int }

val stats : t -> stats
val clear : t -> unit
