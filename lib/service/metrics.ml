(* Buckets are powers of two in microseconds: bucket [i] counts
   latencies in [2^i, 2^(i+1)) us.  32 buckets reach ~71 minutes, far
   beyond any request this service answers. *)

let n_buckets = 32

type t = {
  requests : int Atomic.t;
  errors : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  depth : int Atomic.t;
  max_depth : int Atomic.t;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  max_latency_ns : int Atomic.t;
  conns_accepted : int Atomic.t;
  conns_active : int Atomic.t;
  conns_rejected : int Atomic.t;
  frames_in : int Atomic.t;
  frames_out : int Atomic.t;
  frames_malformed : int Atomic.t;
  bytes_in : int Atomic.t;
  bytes_out : int Atomic.t;
  streams : int Atomic.t;
  stream_chunks : int Atomic.t;
  stream_bytes : int Atomic.t;
  streams_fused : int Atomic.t;
  stream_fallbacks : int Atomic.t;
  schema_bindings_dropped : int Atomic.t;
  invalidations : int Atomic.t;
  annotation_repairs : int Atomic.t;
  repair_fallbacks : int Atomic.t;
  repair_recomputed_nodes : int Atomic.t;
  repair_reused_nodes : int Atomic.t;
  view_defs : int Atomic.t;
  view_hits : int Atomic.t;
  composed_plans : int Atomic.t;
  view_invalidations : int Atomic.t;
  compose_fallbacks : int Atomic.t;
  skipped_subtrees : int Atomic.t;
  skipped_nodes : int Atomic.t;
  statically_empty_rejections : int Atomic.t;
  schema_products : int Atomic.t;
  commits : int Atomic.t;
  commit_conflicts : int Atomic.t;
  commit_noops : int Atomic.t;
  (* pending-list length histogram: bucket [i] counts commits whose
     surviving primitive count fell in [2^i, 2^(i+1)) (bucket 0 is
     counts 0 and 1). *)
  pending_buckets : int Atomic.t array;
  pending_count : int Atomic.t;
  pending_max : int Atomic.t;
}

let create () =
  {
    requests = Atomic.make 0;
    errors = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    depth = Atomic.make 0;
    max_depth = Atomic.make 0;
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    max_latency_ns = Atomic.make 0;
    conns_accepted = Atomic.make 0;
    conns_active = Atomic.make 0;
    conns_rejected = Atomic.make 0;
    frames_in = Atomic.make 0;
    frames_out = Atomic.make 0;
    frames_malformed = Atomic.make 0;
    bytes_in = Atomic.make 0;
    bytes_out = Atomic.make 0;
    streams = Atomic.make 0;
    stream_chunks = Atomic.make 0;
    stream_bytes = Atomic.make 0;
    streams_fused = Atomic.make 0;
    stream_fallbacks = Atomic.make 0;
    schema_bindings_dropped = Atomic.make 0;
    invalidations = Atomic.make 0;
    annotation_repairs = Atomic.make 0;
    repair_fallbacks = Atomic.make 0;
    repair_recomputed_nodes = Atomic.make 0;
    repair_reused_nodes = Atomic.make 0;
    view_defs = Atomic.make 0;
    view_hits = Atomic.make 0;
    composed_plans = Atomic.make 0;
    view_invalidations = Atomic.make 0;
    compose_fallbacks = Atomic.make 0;
    skipped_subtrees = Atomic.make 0;
    skipped_nodes = Atomic.make 0;
    statically_empty_rejections = Atomic.make 0;
    schema_products = Atomic.make 0;
    commits = Atomic.make 0;
    commit_conflicts = Atomic.make 0;
    commit_noops = Atomic.make 0;
    pending_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    pending_count = Atomic.make 0;
    pending_max = Atomic.make 0;
  }

let incr_requests m = Atomic.incr m.requests
let incr_errors m = Atomic.incr m.errors
let incr_cache_hits m = Atomic.incr m.cache_hits
let incr_cache_misses m = Atomic.incr m.cache_misses

let requests m = Atomic.get m.requests
let errors m = Atomic.get m.errors
let cache_hits m = Atomic.get m.cache_hits
let cache_misses m = Atomic.get m.cache_misses

let rec raise_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then raise_max cell v

let queue_enter m =
  let d = Atomic.fetch_and_add m.depth 1 + 1 in
  raise_max m.max_depth d

let queue_leave m = Atomic.decr m.depth
let queue_depth m = Atomic.get m.depth
let max_queue_depth m = Atomic.get m.max_depth

let bucket_of_us us =
  if us <= 1 then 0
  else
    let rec go i v = if v <= 1 || i = n_buckets - 1 then i else go (i + 1) (v lsr 1) in
    go 0 us

let record_latency m seconds =
  let ns = int_of_float (seconds *. 1e9) in
  let us = ns / 1_000 in
  Atomic.incr m.buckets.(bucket_of_us us);
  Atomic.incr m.count;
  raise_max m.max_latency_ns ns

let latency_count m = Atomic.get m.count

let conn_accepted m =
  Atomic.incr m.conns_accepted;
  Atomic.incr m.conns_active

let conn_closed m = Atomic.decr m.conns_active
let conn_rejected m = Atomic.incr m.conns_rejected

let frame_in m bytes =
  Atomic.incr m.frames_in;
  ignore (Atomic.fetch_and_add m.bytes_in bytes)

let frame_out m bytes =
  Atomic.incr m.frames_out;
  ignore (Atomic.fetch_and_add m.bytes_out bytes)

let frame_malformed m = Atomic.incr m.frames_malformed

let stream_started m = Atomic.incr m.streams

let stream_chunk m bytes =
  Atomic.incr m.stream_chunks;
  ignore (Atomic.fetch_and_add m.stream_bytes bytes)

let add_invalidations m n = if n > 0 then ignore (Atomic.fetch_and_add m.invalidations n)
let invalidations m = Atomic.get m.invalidations

let add_repairs m ~repaired ~fallbacks ~recomputed ~reused =
  if repaired > 0 then ignore (Atomic.fetch_and_add m.annotation_repairs repaired);
  if fallbacks > 0 then ignore (Atomic.fetch_and_add m.repair_fallbacks fallbacks);
  if recomputed > 0 then ignore (Atomic.fetch_and_add m.repair_recomputed_nodes recomputed);
  if reused > 0 then ignore (Atomic.fetch_and_add m.repair_reused_nodes reused)

let annotation_repairs m = Atomic.get m.annotation_repairs
let repair_fallbacks m = Atomic.get m.repair_fallbacks
let repair_recomputed_nodes m = Atomic.get m.repair_recomputed_nodes
let repair_reused_nodes m = Atomic.get m.repair_reused_nodes

let incr_view_defs m = Atomic.incr m.view_defs
let incr_view_hits m = Atomic.incr m.view_hits
let incr_composed_plans m = Atomic.incr m.composed_plans
let add_view_invalidations m n =
  if n > 0 then ignore (Atomic.fetch_and_add m.view_invalidations n)
let incr_compose_fallbacks m = Atomic.incr m.compose_fallbacks

let view_defs m = Atomic.get m.view_defs
let view_hits m = Atomic.get m.view_hits
let composed_plans m = Atomic.get m.composed_plans
let view_invalidations m = Atomic.get m.view_invalidations
let compose_fallbacks m = Atomic.get m.compose_fallbacks

let add_skipped m ~subtrees ~nodes =
  if subtrees > 0 then ignore (Atomic.fetch_and_add m.skipped_subtrees subtrees);
  if nodes > 0 then ignore (Atomic.fetch_and_add m.skipped_nodes nodes)

let incr_statically_empty m = Atomic.incr m.statically_empty_rejections
let incr_schema_products m = Atomic.incr m.schema_products

let skipped_subtrees m = Atomic.get m.skipped_subtrees
let skipped_nodes m = Atomic.get m.skipped_nodes
let statically_empty_rejections m = Atomic.get m.statically_empty_rejections
let schema_products m = Atomic.get m.schema_products

let commit_recorded m ~primitives =
  Atomic.incr m.commits;
  Atomic.incr m.pending_buckets.(bucket_of_us primitives);
  Atomic.incr m.pending_count;
  raise_max m.pending_max primitives

let commit_conflict m = Atomic.incr m.commit_conflicts
let commit_noop m = Atomic.incr m.commit_noops

let commits m = Atomic.get m.commits
let commit_conflicts m = Atomic.get m.commit_conflicts
let commit_noops m = Atomic.get m.commit_noops
let pending_count m = Atomic.get m.pending_count
let pending_max m = Atomic.get m.pending_max

(* Representative primitive count of bucket i: its lower bound. *)
let pending_quantile m q =
  let total = Atomic.get m.pending_count in
  if total = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let seen = ref 0 and answer = ref 0 and found = ref false in
    for i = 0 to n_buckets - 1 do
      if not !found then begin
        seen := !seen + Atomic.get m.pending_buckets.(i);
        if !seen >= rank then begin
          answer := (if i = 0 then 1 else 1 lsl i);
          found := true
        end
      end
    done;
    !answer
  end

let streams m = Atomic.get m.streams
let stream_chunks m = Atomic.get m.stream_chunks
let stream_bytes m = Atomic.get m.stream_bytes

let incr_streams_fused m = Atomic.incr m.streams_fused
let incr_stream_fallbacks m = Atomic.incr m.stream_fallbacks
let incr_schema_bindings_dropped m = Atomic.incr m.schema_bindings_dropped
let streams_fused m = Atomic.get m.streams_fused
let stream_fallbacks m = Atomic.get m.stream_fallbacks
let schema_bindings_dropped m = Atomic.get m.schema_bindings_dropped

let conns_accepted m = Atomic.get m.conns_accepted
let conns_active m = Atomic.get m.conns_active
let conns_rejected m = Atomic.get m.conns_rejected
let frames_in m = Atomic.get m.frames_in
let frames_out m = Atomic.get m.frames_out
let frames_malformed m = Atomic.get m.frames_malformed
let bytes_in m = Atomic.get m.bytes_in
let bytes_out m = Atomic.get m.bytes_out

(* Representative latency of bucket i: its geometric middle, 2^i*sqrt(2) us. *)
let bucket_value i = float_of_int (1 lsl i) *. 1.4142 *. 1e-6

let quantile m q =
  let total = Atomic.get m.count in
  if total = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let seen = ref 0 and answer = ref 0. and found = ref false in
    for i = 0 to n_buckets - 1 do
      if not !found then begin
        seen := !seen + Atomic.get m.buckets.(i);
        if !seen >= rank then begin
          answer := bucket_value i;
          found := true
        end
      end
    done;
    !answer
  end

let max_latency m = float_of_int (Atomic.get m.max_latency_ns) *. 1e-9

let reset m =
  Atomic.set m.requests 0;
  Atomic.set m.errors 0;
  Atomic.set m.cache_hits 0;
  Atomic.set m.cache_misses 0;
  Atomic.set m.max_depth (Atomic.get m.depth);
  Array.iter (fun b -> Atomic.set b 0) m.buckets;
  Atomic.set m.count 0;
  Atomic.set m.max_latency_ns 0;
  (* the active-connection gauge survives a reset (connections do) *)
  Atomic.set m.conns_accepted 0;
  Atomic.set m.conns_rejected 0;
  Atomic.set m.frames_in 0;
  Atomic.set m.frames_out 0;
  Atomic.set m.frames_malformed 0;
  Atomic.set m.bytes_in 0;
  Atomic.set m.bytes_out 0;
  Atomic.set m.streams 0;
  Atomic.set m.stream_chunks 0;
  Atomic.set m.stream_bytes 0;
  Atomic.set m.streams_fused 0;
  Atomic.set m.stream_fallbacks 0;
  Atomic.set m.schema_bindings_dropped 0;
  Atomic.set m.invalidations 0;
  Atomic.set m.annotation_repairs 0;
  Atomic.set m.repair_fallbacks 0;
  Atomic.set m.repair_recomputed_nodes 0;
  Atomic.set m.repair_reused_nodes 0;
  Atomic.set m.view_defs 0;
  Atomic.set m.view_hits 0;
  Atomic.set m.composed_plans 0;
  Atomic.set m.view_invalidations 0;
  Atomic.set m.compose_fallbacks 0;
  Atomic.set m.skipped_subtrees 0;
  Atomic.set m.skipped_nodes 0;
  Atomic.set m.statically_empty_rejections 0;
  Atomic.set m.schema_products 0;
  Atomic.set m.commits 0;
  Atomic.set m.commit_conflicts 0;
  Atomic.set m.commit_noops 0;
  Array.iter (fun b -> Atomic.set b 0) m.pending_buckets;
  Atomic.set m.pending_count 0;
  Atomic.set m.pending_max 0

(* Hot-path counters from the automata/xml layers (transition memo, symbol
   table).  Process-wide, not per-service, and unsynchronized on the hot
   path, so the values are approximate under concurrent domains. *)
let nfa_memo_stats () = Xut_automata.Selecting_nfa.global_memo_stats ()
let sym_stats () = (Xut_xml.Sym.count (), Xut_xml.Sym.interns ())
let serialize_pool_stats () = Xut_xml.Serialize.Pool.stats ()

let dump m =
  let b = Buffer.create 256 in
  let ms v = v *. 1e3 in
  Printf.bprintf b "requests %d\n" (requests m);
  Printf.bprintf b "errors %d\n" (errors m);
  Printf.bprintf b "cache_hits %d\n" (cache_hits m);
  Printf.bprintf b "cache_misses %d\n" (cache_misses m);
  Printf.bprintf b "queue_depth %d\n" (queue_depth m);
  Printf.bprintf b "queue_depth_max %d\n" (max_queue_depth m);
  Printf.bprintf b "latency_count %d\n" (latency_count m);
  Printf.bprintf b "latency_p50_ms %.3f\n" (ms (quantile m 0.50));
  Printf.bprintf b "latency_p95_ms %.3f\n" (ms (quantile m 0.95));
  Printf.bprintf b "latency_max_ms %.3f\n" (ms (max_latency m));
  Printf.bprintf b "conns_accepted %d\n" (conns_accepted m);
  Printf.bprintf b "conns_active %d\n" (conns_active m);
  Printf.bprintf b "conns_rejected %d\n" (conns_rejected m);
  Printf.bprintf b "frames_in %d\n" (frames_in m);
  Printf.bprintf b "frames_out %d\n" (frames_out m);
  Printf.bprintf b "frames_malformed %d\n" (frames_malformed m);
  Printf.bprintf b "bytes_in %d\n" (bytes_in m);
  Printf.bprintf b "bytes_out %d\n" (bytes_out m);
  Printf.bprintf b "streams %d\n" (streams m);
  Printf.bprintf b "stream_chunks %d\n" (stream_chunks m);
  Printf.bprintf b "stream_bytes %d\n" (stream_bytes m);
  Printf.bprintf b "streams_fused %d\n" (streams_fused m);
  Printf.bprintf b "stream_fallbacks %d\n" (stream_fallbacks m);
  Printf.bprintf b "schema_bindings_dropped %d\n" (schema_bindings_dropped m);
  Printf.bprintf b "doc_invalidations %d\n" (invalidations m);
  Printf.bprintf b "annotation_repairs %d\n" (annotation_repairs m);
  Printf.bprintf b "repair_fallbacks %d\n" (repair_fallbacks m);
  Printf.bprintf b "repair_recomputed_nodes %d\n" (repair_recomputed_nodes m);
  Printf.bprintf b "repair_reused_nodes %d\n" (repair_reused_nodes m);
  Printf.bprintf b "view_defs %d\n" (view_defs m);
  Printf.bprintf b "view_hits %d\n" (view_hits m);
  Printf.bprintf b "composed_plans %d\n" (composed_plans m);
  Printf.bprintf b "view_invalidations %d\n" (view_invalidations m);
  Printf.bprintf b "compose_fallbacks %d\n" (compose_fallbacks m);
  Printf.bprintf b "skipped_subtrees %d\n" (skipped_subtrees m);
  Printf.bprintf b "skipped_nodes %d\n" (skipped_nodes m);
  Printf.bprintf b "statically_empty_rejections %d\n" (statically_empty_rejections m);
  Printf.bprintf b "schema_products %d\n" (schema_products m);
  Printf.bprintf b "commits %d\n" (commits m);
  Printf.bprintf b "commit_conflicts %d\n" (commit_conflicts m);
  Printf.bprintf b "commit_noops %d\n" (commit_noops m);
  Printf.bprintf b "pending_primitives_count %d\n" (pending_count m);
  Printf.bprintf b "pending_primitives_p50 %d\n" (pending_quantile m 0.50);
  Printf.bprintf b "pending_primitives_p95 %d\n" (pending_quantile m 0.95);
  Printf.bprintf b "pending_primitives_max %d\n" (pending_max m);
  let pool_hits, pool_misses = serialize_pool_stats () in
  Printf.bprintf b "serialize_pool_hits %d\n" pool_hits;
  Printf.bprintf b "serialize_pool_misses %d\n" pool_misses;
  let hits, misses = nfa_memo_stats () in
  let rate = if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses) in
  Printf.bprintf b "nfa_memo_hits %d\n" hits;
  Printf.bprintf b "nfa_memo_misses %d\n" misses;
  Printf.bprintf b "nfa_memo_hit_rate %.3f\n" rate;
  let symbols, interns = sym_stats () in
  Printf.bprintf b "sym_symbols %d\n" symbols;
  Printf.bprintf b "sym_interns %d" interns;
  Buffer.contents b
