open Xut_schema

(* One NFA x schema product per (plan-or-view, schema) pair, computed on
   first use.  Schemas are immutable once registered and the NFA is fixed
   for the plan's lifetime, so the product never needs invalidation —
   the memo is keyed by schema name alone.  Single-flight under the
   mutex: the construction is static (schema symbols x NFA states, no
   document), microseconds of pure CPU. *)
type t = { mu : Mutex.t; tbl : (string, Schema.product) Hashtbl.t }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 2 }

let get t schema nfa =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let key = Schema.name schema in
      match Hashtbl.find_opt t.tbl key with
      | Some p -> (p, false)
      | None ->
        let p = Schema.product schema nfa in
        Hashtbl.replace t.tbl key p;
        (p, true))
