(** Domain-based worker pool with a bounded request queue.

    [create ~domains ~queue_capacity f] spawns [domains] OCaml 5 domains
    that each loop: dequeue a request, run [f] on it, fulfil the
    request's future.  The queue is a mutex/condvar bounded buffer:
    {!submit} blocks once [queue_capacity] requests are waiting, which
    is the backpressure that keeps a closed-loop client from swamping
    the pool.

    Failure isolation: [f] raising rejects that request's future with
    the exception message — the worker survives and keeps serving.
    Nothing can kill a worker short of the runtime itself dying. *)

type ('a, 'b) t

type 'r future
(** A pending result of type ['r]; for this pool's requests,
    [('b, string) result future]. *)

val create :
  ?on_enqueue:(unit -> unit) ->
  ?on_dequeue:(unit -> unit) ->
  domains:int ->
  queue_capacity:int ->
  ('a -> 'b) ->
  ('a, 'b) t
(** The [on_enqueue]/[on_dequeue] hooks run under the queue lock as a
    request enters/leaves the queue (the service wires queue-depth
    metrics through them; they must not block). *)

val submit : ('a, 'b) t -> 'a -> ('b, string) result future
(** Enqueue a request, blocking while the queue is full.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'r future -> 'r
(** Block until the request has been served. *)

val peek : 'r future -> 'r option
(** Non-blocking: [None] while the request is still pending. *)

val call : ('a, 'b) t -> 'a -> ('b, string) result
(** [submit] then [await]: synchronous round trip. *)

val domains : ('a, 'b) t -> int

val shutdown : ('a, 'b) t -> unit
(** Stop accepting requests, drain the queue, join every worker.
    Idempotent. *)
