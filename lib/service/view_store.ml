open Xut_automata

(* Stored view definitions: DEFVIEW name := <transform query>.  The
   definition is validated and compiled when it is defined — parse,
   fragment check, selecting NFA — so serving never pays the front end
   or discovers an out-of-fragment view at request time.  Each view
   carries its own annotation memo (the TD-BU oracle over its BASE
   tree), and the bases form a dependency graph: a view's base is either
   a stored document or another view, and invalidation walks the reverse
   edges. *)

type view = {
  name : string;
  source : string;  (* the exact DEFVIEW query text *)
  base : string;  (* doc("X") of the definition: a document or a view *)
  update : Core.Transform_ast.update;
  nfa : Selecting_nfa.t;
  generation : int;  (* bumped on every (re)definition of this name *)
  memo : Annotation_memo.t;  (* innermost-level oracle over the base doc *)
  products : Product_memo.t;  (* NFA x schema products, innermost level *)
}

type error =
  [ `Parse of string  (** bad transform syntax *)
  | `Compose of string  (** outside the composable fragment *)
  | `Cycle of string list  (** the base chain would reach back here *)
  ]

type t = {
  mu : Mutex.t;
  tbl : (string, view) Hashtbl.t;
  mutable clock : int;  (* store-wide generation counter *)
}

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 16; clock = 0 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* The base chain starting at [base], under the assumption that [name]
   (being (re)defined) exists.  Returns the cycle path when it loops. *)
let chain_cycle t ~name ~base =
  let rec walk seen b path =
    if String.equal b name then Some (List.rev (b :: path))
    else if List.mem b seen then Some (List.rev (b :: path))
    else
      match Hashtbl.find_opt t.tbl b with
      | Some v -> walk (b :: seen) v.base (b :: path)
      | None -> None (* a document name terminates the chain *)
  in
  walk [] base [ name ]

let define t ~name ~source =
  match Core.Transform_parser.parse source with
  | exception Core.Transform_parser.Parse_error m -> Error (`Parse m)
  | q -> (
    match Core.Composition.check_update q.Core.Transform_ast.update with
    | Error m -> Error (`Compose m)
    | Ok nfa ->
      let base = q.Core.Transform_ast.doc in
      locked t (fun () ->
          match chain_cycle t ~name ~base with
          | Some path -> Error (`Cycle path)
          | None ->
            let redefined = Hashtbl.mem t.tbl name in
            t.clock <- t.clock + 1;
            let v =
              {
                name;
                source;
                base;
                update = q.Core.Transform_ast.update;
                nfa;
                generation = t.clock;
                memo = Annotation_memo.create ();
                products = Product_memo.create ();
              }
            in
            Hashtbl.replace t.tbl name v;
            Ok (v, redefined)))

let undefine t ~name =
  locked t (fun () ->
      let present = Hashtbl.mem t.tbl name in
      if present then Hashtbl.remove t.tbl name;
      present)

let find t name = locked t (fun () -> Hashtbl.find_opt t.tbl name)

let names t =
  locked t (fun () -> Hashtbl.fold (fun n _ acc -> n :: acc) t.tbl [])
  |> List.sort String.compare

(* The resolved chain: base document name plus the views applied to it,
   innermost (closest to the document) first.  A dangling base — naming
   neither a stored document nor a view — resolves as a document name
   and surfaces as Unknown_document at serving time. *)
type chain = { base : string; levels : view list }

let resolve t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None -> None
      | Some v ->
        let rec walk seen (v : view) acc =
          if List.mem v.base seen then
            (* unreachable while [define] guards cycles; terminate anyway *)
            Some { base = v.base; levels = v :: acc }
          else
            match Hashtbl.find_opt t.tbl v.base with
            | Some parent -> walk (v.name :: seen) parent (v :: acc)
            | None -> Some { base = v.base; levels = v :: acc }
        in
        walk [] v [])

let depth t name =
  match resolve t name with Some c -> List.length c.levels | None -> 0

(* Views whose chains pass through [name] (a document or a view),
   including [name] itself when it is a view: the reverse reachability
   the invalidation walk needs. *)
let dependents t name =
  locked t (fun () ->
      let depends_on (v : view) =
        let rec walk seen (v : view) =
          String.equal v.base name
          ||
          if List.mem v.base seen then false
          else
            match Hashtbl.find_opt t.tbl v.base with
            | Some parent -> walk (v.base :: seen) parent
            | None -> false
        in
        String.equal v.name name || walk [] v
      in
      Hashtbl.fold (fun n v acc -> if depends_on v then n :: acc else acc) t.tbl [])
  |> List.sort String.compare

(* The cache key material for a composed plan over this chain: the base
   document's NAME and each level's name@generation.  Document
   generations are deliberately excluded — a composed plan depends only
   on the definitions, not on document content; content changes
   invalidate annotation memos, not compositions. *)
let signature (c : chain) =
  String.concat "|"
    (c.base :: List.map (fun v -> Printf.sprintf "%s@%d" v.name v.generation) c.levels)

type info = { i_name : string; i_base : string; i_depth : int; i_generation : int }

let infos t =
  List.filter_map
    (fun n ->
      match find t n with
      | None -> None
      | Some v ->
        Some { i_name = n; i_base = v.base; i_depth = depth t n; i_generation = v.generation })
    (names t)
