open Xut_xml

(** Named store of parsed documents.

    A document is parsed once — [LOAD] in the service protocol — and the
    resulting immutable {!Node.element} is handed out to every request
    that names it.  Because transform queries never mutate their input
    (the whole point of the paper), concurrent workers can evaluate
    against the same stored tree with no copying and no locking beyond
    the store's own table lock. *)

type info = {
  name : string;
  file : string option;  (** origin path, when loaded from disk *)
  elements : int;        (** element count, for listings *)
}

type t

val create : unit -> t

val register : t -> name:string -> ?file:string -> Node.element -> info
(** Register an already-built tree under [name], replacing any previous
    binding. *)

val load_file : t -> name:string -> string -> (info, string) result
(** Parse the file (outside the store lock) and {!register} it. *)

val find : t -> string -> Node.element option
val info : t -> string -> info option

val evict : t -> string -> bool
(** Remove a binding; [false] when the name was not bound.  In-flight
    requests holding the tree are unaffected (it is immutable and
    garbage-collected when they finish). *)

val names : t -> string list
(** Bound names, sorted. *)
