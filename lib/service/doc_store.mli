open Xut_xml

(** Named store of parsed documents, sharded and generation-stamped.

    A document is parsed once — [LOAD] in the service protocol — and the
    resulting immutable {!Node.element} is handed out to every request
    that names it.  Because transform queries never mutate their input
    (the whole point of the paper), concurrent workers can evaluate
    against the same stored tree with no copying and no locking beyond
    the owning shard's table lock.

    The table is split over N shards keyed by a hash of the document
    name, each with its own mutex, so concurrent lookups of different
    documents do not serialize on one table lock (the multi-document
    serving workload).

    Every successful {!register} (a [LOAD], whether fresh or a reload)
    stamps the entry with a store-wide monotone {b generation}, making
    document identity explicit: two loads under the same name are
    distinguishable, and downstream caches can tell a reloaded tree from
    the one they annotated.  Lifecycle transitions — an entry removed by
    {!evict}, or replaced by a re-{!register} — are published to
    {!subscribe}rs so caches keyed by the old tree can invalidate
    exactly that document. *)

type info = {
  name : string;
  file : string option;  (** origin path, when loaded from disk *)
  elements : int;        (** element count, for listings *)
  generation : int;      (** monotone load stamp, unique per register *)
}

(** Why a tree left the store: {!evict} ([Unloaded]) or a re-register
    under the same name ([Replaced]). *)
type reason = Unloaded | Replaced

type event = {
  name : string;
  root_id : int;     (** {!Node.id} of the departing tree's root *)
  generation : int;  (** of the {e new} binding for [Replaced], of the
                         removed one for [Unloaded] *)
  reason : reason;
}

type t

val create : ?shards:int -> unit -> t
(** [shards] defaults to 8; 1 gives the unsharded store (observably
    identical, just one lock). *)

val shard_count : t -> int

val subscribe : t -> (event -> unit) -> unit
(** Register a lifecycle listener.  Listeners run synchronously on the
    thread performing the {!evict}/{!register}, in subscription order,
    {e outside} every shard lock — re-entering the store from a listener
    is safe. *)

val register : t -> name:string -> ?file:string -> Node.element -> info * bool
(** Register an already-built tree under [name], replacing any previous
    binding.  The [bool] is [true] when a previous binding was replaced
    (a reload) — in that case a [Replaced] event fires for the old
    tree before this returns. *)

val load_file : t -> name:string -> string -> (info * bool, string) result
(** Parse the file (outside any store lock) and {!register} it. *)

val find : t -> string -> Node.element option
val info : t -> string -> info option

val evict : t -> string -> bool
(** Remove a binding; [false] when the name was not bound.  On removal
    an [Unloaded] event fires before this returns.  In-flight requests
    holding the tree are unaffected (it is immutable and
    garbage-collected when they finish). *)

val names : t -> string list
(** Bound names, sorted. *)
