open Xut_xml

(** Named store of parsed documents, sharded and generation-stamped.

    A document is parsed once — [LOAD] in the service protocol — and the
    resulting immutable {!Node.element} is handed out to every request
    that names it.  Because transform queries never mutate their input
    (the whole point of the paper), concurrent workers can evaluate
    against the same stored tree with no copying and no locking beyond
    the owning shard's table lock.

    The table is split over N shards keyed by a hash of the document
    name, each with its own mutex, so concurrent lookups of different
    documents do not serialize on one table lock (the multi-document
    serving workload).

    Every successful {!register} (a [LOAD], whether fresh or a reload)
    stamps the entry with a store-wide monotone {b generation}, making
    document identity explicit: two loads under the same name are
    distinguishable, and downstream caches can tell a reloaded tree from
    the one they annotated.  Lifecycle transitions — an entry removed by
    {!evict}, or replaced by a re-{!register} — are published to
    {!subscribe}rs so caches keyed by the old tree can invalidate
    exactly that document. *)

type info = {
  name : string;
  file : string option;  (** origin path, when loaded from disk *)
  elements : int;        (** element count, for listings *)
  generation : int;      (** monotone load stamp, unique per register *)
  schema : string option;
      (** the registered {!Xut_schema.Schema} the binding conforms to,
          when it was loaded under one.  Maintained across commits by
          incremental revalidation; dropped (not an error) the moment a
          committed tree stops conforming. *)
}

(** Why a tree left the store: {!evict} ([Unloaded]), a re-register
    under the same name ([Replaced]), or a {!commit} that swapped in a
    derived tree ([Committed]). *)
type reason = Unloaded | Replaced | Committed

type repair_hint = {
  new_root : Node.element;  (** the tree that replaced the departing one *)
  spine : (int, Node.element) Hashtbl.t;
      (** rebuilt-spine map (fresh id -> replaced old element), see
          {!Xut_update.Apply.diff} *)
}
(** Enough of a [Committed] swap's diff for downstream caches to repair
    their per-tree state incrementally instead of evicting it. *)

type event = {
  name : string;
  root_id : int;     (** {!Node.id} of the departing tree's root *)
  generation : int;  (** of the {e new} binding for [Replaced], of the
                         removed one for [Unloaded] *)
  reason : reason;
  repair : repair_hint option;
      (** [Committed] swaps that supplied a diff; always [None] for
          [Unloaded]/[Replaced] *)
  schema : string option;
      (** the schema the {e surviving} binding conforms to, captured at
          the swap (so listeners need no racy re-read): the new
          binding's for [Committed]/[Replaced], the departed one's for
          [Unloaded] *)
  schema_dropped : bool;
      (** [Committed] only: the commit's revalidation found the derived
          tree no longer conforms (or the schema name has been
          unregistered), so the binding lost its schema — [schema] is
          [None] and pruning is off for the document from this
          generation on.  Surfaced so the drop is observable (a wire
          notice and a [schema_bindings_dropped] counter) instead of
          silent. *)
}

type t

val create : ?shards:int -> unit -> t
(** [shards] defaults to 8; 1 gives the unsharded store (observably
    identical, just one lock). *)

val shard_count : t -> int

val subscribe : t -> (event -> unit) -> unit
(** Register a lifecycle listener.  Listeners run synchronously on the
    thread performing the {!evict}/{!register}, in subscription order,
    {e outside} every shard lock — re-entering the store from a listener
    is safe. *)

val register :
  t ->
  name:string ->
  ?file:string ->
  ?schema:string ->
  Node.element ->
  (info * bool, string) result
(** Register an already-built tree under [name], replacing any previous
    binding.  The [bool] is [true] when a previous binding was replaced
    (a reload) — in that case a [Replaced] event fires for the old
    tree before this returns.  With [schema], the tree is validated
    against the registered schema of that name {e before} anything is
    published: on nonconformance (or an unknown schema name) the load
    fails and the store is untouched. *)

val load_file :
  t -> name:string -> ?schema:string -> string -> (info * bool, string) result
(** Parse the file (outside any store lock) and {!register} it. *)

val find : t -> string -> Node.element option
val info : t -> string -> info option

val snapshot : t -> string -> (Node.element * info * (int, int) Hashtbl.t option) option
(** The full binding in one locked read: tree, info, and — when the
    binding holds a schema — the per-element subtree-size table the
    validation walk produced (element id -> elements at-and-below),
    backing O(1) skipped-node accounting.  The table is immutable once
    published (commits swap in a fresh copy). *)

val evict : t -> string -> bool
(** Remove a binding; [false] when the name was not bound.  On removal
    an [Unloaded] event fires before this returns.  In-flight requests
    holding the tree are unaffected (it is immutable and
    garbage-collected when they finish). *)

val names : t -> string list
(** Bound names, sorted. *)

(** {2 Commits (the write path)}

    A commit derives a new tree from the current binding and swaps it in
    atomically: read the root, evaluate, replace — serialized against
    every other binding change ({!register}, {!evict}, other commits) on
    a per-shard writer lock, so no concurrent write is lost.  Readers
    never wait on a commit in progress: {!find} keeps returning the old
    root until the instant of the swap, and requests already holding the
    old root keep a consistent snapshot (trees are immutable — MVCC by
    persistence). *)

(** Outcome of a {!commit}. *)
type ('a, 'e) commit_result =
  | Swapped of info * 'a
      (** the derived tree is now the binding; [info] carries its fresh
          generation.  Exactly one [Committed] event fired for the old
          root before this returned. *)
  | Unchanged of info * 'a
      (** the update function produced no new tree (an empty pending
          list): the binding, its generation and every cache stay as
          they were — {e no} event fires. *)
  | Rejected of 'e  (** the update function refused; nothing changed *)
  | No_document     (** the name is not bound *)

val commit :
  t ->
  name:string ->
  (info ->
  Node.element ->
  ((Node.element * (int, Node.element) Hashtbl.t option) option * 'a, 'e) result) ->
  ('a, 'e) commit_result
(** [commit t ~name f] calls [f info root] on the current binding —
    under the shard's writer lock but outside its reader lock — and, on
    [Ok (Some (root', spine), a)], swaps [root'] in under a fresh
    store-wide generation, keeping the old binding's [file] as
    provenance.  The [Committed] event (old root's id, new generation,
    and a {!repair_hint} when [f] supplied the rebuilt-spine map) fires
    after all locks are released.  [f] must not re-enter the store's
    write operations for the same shard. *)
