open Xut_xpath
open Xut_automata

(* Annotation memo entries carry a recency stamp from a per-plan clock;
   overflow evicts only the least-recently-used document's table, and
   store-driven invalidation removes exactly the named document's. *)
type annotation_entry = { table : Annotator.table; mutable stamp : int }

type annotations = {
  amu : Mutex.t;
  docs : (int, annotation_entry) Hashtbl.t;
  mutable aclock : int;
}

type plan = {
  source : string;
  query : Core.Transform_ast.t;
  norm : Norm.t;
  nfa : Selecting_nfa.t;
  annotations : annotations;
}

let compile source =
  let query = Core.Transform_parser.parse source in
  let norm = Norm.steps (Core.Transform_ast.path query.Core.Transform_ast.update) in
  let nfa = Selecting_nfa.of_norm norm in
  {
    source;
    query;
    norm;
    nfa;
    annotations = { amu = Mutex.create (); docs = Hashtbl.create 4; aclock = 0 };
  }

(* At most this many documents' annotation tables per plan; crossing the
   bound evicts the least recently used one, so the hot documents'
   tables survive a cold document passing through. *)
let max_annotated_docs = 8

let evict_lru_annotation a =
  let victim =
    Hashtbl.fold
      (fun id e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (id, e.stamp))
      a.docs None
  in
  match victim with Some (id, _) -> Hashtbl.remove a.docs id | None -> ()

let annotation plan root =
  let a = plan.annotations in
  let id = Xut_xml.Node.id root in
  Mutex.lock a.amu;
  let cached =
    match Hashtbl.find_opt a.docs id with
    | Some e ->
      a.aclock <- a.aclock + 1;
      e.stamp <- a.aclock;
      Some e.table
    | None -> None
  in
  Mutex.unlock a.amu;
  match cached with
  | Some table -> table
  | None ->
    (* Built outside the lock: concurrent misses on the same document may
       annotate twice; one insert wins and both tables are valid. *)
    let table = Annotator.annotate plan.nfa root in
    Mutex.lock a.amu;
    if not (Hashtbl.mem a.docs id) then begin
      if Hashtbl.length a.docs >= max_annotated_docs then evict_lru_annotation a;
      a.aclock <- a.aclock + 1;
      Hashtbl.add a.docs id { table; stamp = a.aclock }
    end;
    Mutex.unlock a.amu;
    table

(* How many documents this plan currently holds annotation tables for. *)
let plan_annotation_count plan =
  let a = plan.annotations in
  Mutex.lock a.amu;
  let n = Hashtbl.length a.docs in
  Mutex.unlock a.amu;
  n

(* Drop this plan's annotation table for one document, if present. *)
let plan_invalidate plan ~root_id =
  let a = plan.annotations in
  Mutex.lock a.amu;
  let present = Hashtbl.mem a.docs root_id in
  if present then Hashtbl.remove a.docs root_id;
  Mutex.unlock a.amu;
  present

(* Incremental maintenance across a commit: rebuild this plan's table
   for the new root from the old root's table and the rebuilt-spine map,
   instead of letting the commit evict it.  The old entry is deliberately
   LEFT IN PLACE — readers that picked up the pre-commit snapshot before
   the swap still resolve its table (immutable, never repaired in place);
   the per-plan LRU drops it once younger roots push it out. *)
let plan_repair plan ~old_root_id ~spine new_root =
  let a = plan.annotations in
  Mutex.lock a.amu;
  let old_entry = Hashtbl.find_opt a.docs old_root_id in
  Mutex.unlock a.amu;
  match old_entry with
  | None -> `Absent (* nothing cached for the departing tree: no work *)
  | Some { table = old_table; _ } -> begin
    (* Repair runs outside the lock, like [annotation]'s build: a racing
       reader of the old snapshot still hits the old entry meanwhile. *)
    match Annotator.repair plan.nfa ~old_table ~spine new_root with
    | None ->
      (* degenerate diff (root replaced): fall back to eviction *)
      ignore (plan_invalidate plan ~root_id:old_root_id);
      `Fallback
    | Some (table, st) ->
      let new_id = Xut_xml.Node.id new_root in
      Mutex.lock a.amu;
      if not (Hashtbl.mem a.docs new_id) then begin
        if Hashtbl.length a.docs >= max_annotated_docs then evict_lru_annotation a;
        a.aclock <- a.aclock + 1;
        Hashtbl.add a.docs new_id { table; stamp = a.aclock }
      end;
      Mutex.unlock a.amu;
      `Repaired st
  end

(* Recency is a stamp per entry from a monotone clock; eviction scans for
   the minimum.  The scan is O(capacity) but runs only on insertion into
   a full cache, and plan caches are small (tens of entries). *)

type entry = { plan : plan; mutable last_used : int }

type t = {
  capacity : int;
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Plan_cache.create: negative capacity";
  {
    capacity;
    mu = Mutex.create ();
    tbl = Hashtbl.create (max 16 capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.last_used -> acc
        | _ -> Some (key, e.last_used))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1
  | None -> ()

type outcome = Hit | Miss

(* Compilation is single-flight when caching is enabled: a miss compiles
   while still holding the cache mutex, so concurrent requests for the
   same uncached query block briefly and then hit the fresh entry rather
   than compiling (and counting a miss) once per domain.  Compilation is
   pure CPU work in the microsecond range, so holding the lock across it
   is cheaper than duplicate compiles.  With caching disabled
   (capacity = 0) every request compiles outside any lock, preserving
   parallel compile throughput for cache-off benchmarking. *)
let find_or_compile t source =
  if t.capacity = 0 then begin
    locked t (fun () -> t.misses <- t.misses + 1);
    (compile source, Miss)
  end
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl source with
        | Some e ->
          e.last_used <- tick t;
          t.hits <- t.hits + 1;
          (e.plan, Hit)
        | None ->
          t.misses <- t.misses + 1;
          let plan = compile source in
          if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
          Hashtbl.replace t.tbl source { plan; last_used = tick t };
          (plan, Miss))

(* Snapshot the cached plans, then walk them outside the cache mutex:
   per-plan annotation mutexes never nest inside it. *)
let plans t = locked t (fun () -> Hashtbl.fold (fun _ e acc -> e.plan :: acc) t.tbl [])

let invalidate t ~root_id =
  List.fold_left
    (fun n plan -> if plan_invalidate plan ~root_id then n + 1 else n)
    0 (plans t)

type repair_totals = {
  repaired : int;
  fallbacks : int;
  recomputed_nodes : int;
  reused_nodes : int;
}

let repair t ~old_root_id ~spine new_root =
  List.fold_left
    (fun acc plan ->
      match plan_repair plan ~old_root_id ~spine new_root with
      | `Absent -> acc
      | `Fallback -> { acc with fallbacks = acc.fallbacks + 1 }
      | `Repaired (st : Annotator.repair_stats) ->
        {
          acc with
          repaired = acc.repaired + 1;
          recomputed_nodes = acc.recomputed_nodes + st.Annotator.recomputed;
          reused_nodes = acc.reused_nodes + st.Annotator.reused;
        })
    { repaired = 0; fallbacks = 0; recomputed_nodes = 0; reused_nodes = 0 }
    (plans t)

let annotation_entries t =
  List.fold_left (fun n plan -> n + plan_annotation_count plan) 0 (plans t)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  annotation_entries : int;
}

let stats t =
  let annotation_entries = annotation_entries t in
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
        annotation_entries;
      })

let clear t = locked t (fun () -> Hashtbl.reset t.tbl)
