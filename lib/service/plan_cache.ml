open Xut_xpath
open Xut_automata

type plan = {
  source : string;
  query : Core.Transform_ast.t;
  norm : Norm.t;
  nfa : Selecting_nfa.t;
  annotations : Annotation_memo.t;
  products : Product_memo.t;
}

let compile source =
  let query = Core.Transform_parser.parse source in
  let norm = Norm.steps (Core.Transform_ast.path query.Core.Transform_ast.update) in
  let nfa = Selecting_nfa.of_norm norm in
  {
    source;
    query;
    norm;
    nfa;
    annotations = Annotation_memo.create ();
    products = Product_memo.create ();
  }

let max_annotated_docs = Annotation_memo.capacity
let annotation ?skip plan root = Annotation_memo.find ?skip plan.annotations plan.nfa root
let product plan schema = Product_memo.get plan.products schema plan.nfa

(* Recency is a stamp per entry from a monotone clock; eviction scans for
   the minimum.  The scan is O(capacity) but runs only on insertion into
   a full cache, and plan caches are small (tens of entries). *)

type entry = { plan : plan; mutable last_used : int }

(* A composed plan for a (view chain, user query) pair.  [deps] names
   everything the entry depends on: the chain's base document and every
   view along it, so dependency-graph invalidation can address the entry
   by any one of them.  Compose {e failures} are cached too — a query
   outside the fragment stays outside it until a view on the chain is
   redefined, and recomputing the failure per request would defeat the
   cache exactly where serving falls back to materialization. *)
type composed_entry = {
  result : (Core.Composition.composed, string) result;
  deps : string list;
  mutable c_last_used : int;
}

type t = {
  capacity : int;
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  ctbl : (string, composed_entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Plan_cache.create: negative capacity";
  {
    capacity;
    mu = Mutex.create ();
    tbl = Hashtbl.create (max 16 capacity);
    ctbl = Hashtbl.create (max 16 capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.last_used -> acc
        | _ -> Some (key, e.last_used))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1
  | None -> ()

type outcome = Hit | Miss

(* Compilation is single-flight when caching is enabled: a miss compiles
   while still holding the cache mutex, so concurrent requests for the
   same uncached query block briefly and then hit the fresh entry rather
   than compiling (and counting a miss) once per domain.  Compilation is
   pure CPU work in the microsecond range, so holding the lock across it
   is cheaper than duplicate compiles.  With caching disabled
   (capacity = 0) every request compiles outside any lock, preserving
   parallel compile throughput for cache-off benchmarking. *)
let find_or_compile t source =
  if t.capacity = 0 then begin
    locked t (fun () -> t.misses <- t.misses + 1);
    (compile source, Miss)
  end
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl source with
        | Some e ->
          e.last_used <- tick t;
          t.hits <- t.hits + 1;
          (e.plan, Hit)
        | None ->
          t.misses <- t.misses + 1;
          let plan = compile source in
          if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
          Hashtbl.replace t.tbl source { plan; last_used = tick t };
          (plan, Miss))

let evict_lru_composed t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.c_last_used -> acc
        | _ -> Some (key, e.c_last_used))
      t.ctbl None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.ctbl key;
    t.evictions <- t.evictions + 1
  | None -> ()

(* Same single-flight discipline as [find_or_compile]: composing is
   static NFA simulation over the query's steps, microseconds of pure
   CPU.  [key] must capture everything the compose output depends on —
   the serving layer uses the chain signature (base name plus every
   view's name@generation) and the query text. *)
let find_or_compose t ~key ~deps f =
  if t.capacity = 0 then begin
    locked t (fun () -> t.misses <- t.misses + 1);
    (f (), Miss)
  end
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.ctbl key with
        | Some e ->
          e.c_last_used <- tick t;
          t.hits <- t.hits + 1;
          (e.result, Hit)
        | None ->
          t.misses <- t.misses + 1;
          let result = f () in
          if Hashtbl.length t.ctbl >= t.capacity then evict_lru_composed t;
          Hashtbl.replace t.ctbl key { result; deps; c_last_used = tick t };
          (result, Miss))

let invalidate_composed t ~dep =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun key e acc -> if List.mem dep e.deps then key :: acc else acc)
          t.ctbl []
      in
      List.iter (Hashtbl.remove t.ctbl) victims;
      List.length victims)

let composed_entries t = locked t (fun () -> Hashtbl.length t.ctbl)

(* Snapshot the cached plans, then walk them outside the cache mutex:
   per-plan annotation mutexes never nest inside it. *)
let plans t = locked t (fun () -> Hashtbl.fold (fun _ e acc -> e.plan :: acc) t.tbl [])

let invalidate t ~root_id =
  List.fold_left
    (fun n plan ->
      if Annotation_memo.invalidate plan.annotations ~root_id then n + 1 else n)
    0 (plans t)

type repair_totals = {
  repaired : int;
  fallbacks : int;
  recomputed_nodes : int;
  reused_nodes : int;
}

let repair ?(plan_skip = fun _ -> None) t ~old_root_id ~spine new_root =
  List.fold_left
    (fun acc plan ->
      match
        Annotation_memo.repair ?skip:(plan_skip plan) plan.annotations plan.nfa
          ~old_root_id ~spine new_root
      with
      | `Absent -> acc
      | `Fallback -> { acc with fallbacks = acc.fallbacks + 1 }
      | `Repaired (st : Annotator.repair_stats) ->
        {
          acc with
          repaired = acc.repaired + 1;
          recomputed_nodes = acc.recomputed_nodes + st.Annotator.recomputed;
          reused_nodes = acc.reused_nodes + st.Annotator.reused;
        })
    { repaired = 0; fallbacks = 0; recomputed_nodes = 0; reused_nodes = 0 }
    (plans t)

let annotation_entries t =
  List.fold_left (fun n plan -> n + Annotation_memo.count plan.annotations) 0 (plans t)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  annotation_entries : int;
  composed_entries : int;
}

let stats t =
  let annotation_entries = annotation_entries t in
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
        annotation_entries;
        composed_entries = Hashtbl.length t.ctbl;
      })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      Hashtbl.reset t.ctbl)
