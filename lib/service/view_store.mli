open Xut_automata

(** Named stored views: [DEFVIEW name := <transform query>].

    A view is a {e virtual} transformed document — the transform is
    never materialized; queries against the view are answered by the
    Sec. 4 Compose method over the base document.  Definitions are
    validated and compiled at definition time (parse → fragment check →
    selecting NFA), so out-of-fragment definitions are rejected with a
    structured error instead of falling back at request time.

    A view's base — the [doc("X")] of its definition — may name a stored
    document or another view (views-on-views), forming chains resolved
    to a base document plus an update stack.  Bases may be defined
    {e late}: a view over a not-yet-loaded document is legal and simply
    answers Unknown_document until the document is loaded. *)

type view = {
  name : string;
  source : string;      (** the exact transform-query text *)
  base : string;        (** a document name or another view's name *)
  update : Core.Transform_ast.update;
  nfa : Selecting_nfa.t;
  generation : int;     (** store-wide monotone; bumped on redefinition *)
  memo : Annotation_memo.t;
      (** innermost-level TD-BU oracle tables over the base document *)
  products : Product_memo.t;
      (** NFA x schema products for this view's own NFA — the innermost
          update's, the only level that runs against the schema-validated
          base document *)
}

type error =
  [ `Parse of string      (** bad transform syntax *)
  | `Compose of string    (** outside the composable fragment *)
  | `Cycle of string list (** the base chain would loop: the path *)
  ]

type t

val create : unit -> t

val define : t -> name:string -> source:string -> (view * bool, error) result
(** Define or redefine [name].  The [bool] is [true] on redefinition
    (the caller must then invalidate dependent composed plans).  The
    definition is rejected — and the existing definition, if any, left
    untouched — when the transform does not parse, falls outside the
    composable fragment, or its base chain would reach back to [name]. *)

val undefine : t -> name:string -> bool
(** [false] when no such view existed. *)

val find : t -> string -> view option
val names : t -> string list

type chain = { base : string; levels : view list }
(** A resolved chain: the base {e document} name and the views applied
    to it, innermost (closest to the document) first. *)

val resolve : t -> string -> chain option
(** [None] when [name] is not a view.  A dangling base (neither document
    nor view) terminates the chain as a document name — serving then
    reports Unknown_document. *)

val depth : t -> string -> int

val dependents : t -> string -> string list
(** Every view whose chain passes through [name] (a document or view),
    including [name] itself when it is a view — the reverse-reachability
    set the invalidation walk on document lifecycle events uses. *)

val signature : chain -> string
(** Composed-plan cache key material: the base document name plus each
    level's [name\@generation].  Document generations are deliberately
    excluded — composed plans depend on the definitions only; content
    changes invalidate annotation memos, never compositions. *)

type info = { i_name : string; i_base : string; i_depth : int; i_generation : int }

val infos : t -> info list
(** Sorted by name, for LISTVIEWS and STATS. *)
