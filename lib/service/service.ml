open Core

type request =
  | Load of { name : string; file : string }
  | Unload of { name : string }
  | Transform of { doc : string; engine : Engine.algo; query : string }
  | Count of { doc : string; engine : Engine.algo; query : string }
  | Stats

type response = (string, string) result

type t = {
  store : Doc_store.t;
  cache : Plan_cache.t;
  metrics : Metrics.t;
  pool : (request, string) Worker_pool.t;
}

(* Engines that consume the selecting NFA take the precompiled one from
   the plan; TD-BU additionally reuses the memoized bottom-up annotation
   of the stored document.  The others (Naive, snapshot copy, reference,
   SAX) only need the parsed AST. *)
let run_plan (plan : Plan_cache.plan) engine root =
  let update = plan.Plan_cache.query.Transform_ast.update in
  match (engine : Engine.algo) with
  | Engine.Gentop -> Top_down.run plan.Plan_cache.nfa update root
  | Engine.Td_bu ->
    let table = Plan_cache.annotation plan root in
    Top_down.run
      ~checkp:(Xut_automata.Annotator.checkp table plan.Plan_cache.nfa)
      plan.Plan_cache.nfa update root
  | other -> Engine.transform other update root

let evaluate ~store ~cache ~metrics ~doc ~engine ~query =
  match Doc_store.find store doc with
  | None -> failwith (Printf.sprintf "no document %S (LOAD it first)" doc)
  | Some root ->
    let plan, outcome = Plan_cache.find_or_compile cache query in
    (match outcome with
    | Plan_cache.Hit -> Metrics.incr_cache_hits metrics
    | Plan_cache.Miss -> Metrics.incr_cache_misses metrics);
    run_plan plan engine root

let handle ~store ~cache ~metrics = function
  | Load { name; file } -> begin
    match Doc_store.load_file store ~name file with
    | Ok info ->
      Printf.sprintf "loaded %s elements=%d" info.Doc_store.name info.Doc_store.elements
    | Error msg -> failwith msg
  end
  | Unload { name } ->
    if Doc_store.evict store name then Printf.sprintf "unloaded %s" name
    else failwith (Printf.sprintf "no document %S" name)
  | Transform { doc; engine; query } ->
    Xut_xml.Serialize.element_to_string (evaluate ~store ~cache ~metrics ~doc ~engine ~query)
  | Count { doc; engine; query } ->
    Printf.sprintf "elements=%d"
      (Xut_xml.Node.element_count
         (Xut_xml.Node.Element (evaluate ~store ~cache ~metrics ~doc ~engine ~query)))
  | Stats ->
    let b = Buffer.create 512 in
    Buffer.add_string b (Metrics.dump metrics);
    let cs = Plan_cache.stats cache in
    Printf.bprintf b "\nplan_cache entries=%d capacity=%d evictions=%d" cs.Plan_cache.entries
      cs.Plan_cache.capacity cs.Plan_cache.evictions;
    List.iter
      (fun name ->
        match Doc_store.info store name with
        | Some i -> Printf.bprintf b "\ndoc %s elements=%d" i.Doc_store.name i.Doc_store.elements
        | None -> ())
      (Doc_store.names store);
    Buffer.contents b

let create ?(domains = 1) ?(cache_capacity = 128) ?(queue_capacity = 64) () =
  let store = Doc_store.create () in
  let cache = Plan_cache.create ~capacity:cache_capacity in
  let metrics = Metrics.create () in
  let handler req =
    Metrics.incr_requests metrics;
    let t0 = Unix.gettimeofday () in
    let finish () = Metrics.record_latency metrics (Unix.gettimeofday () -. t0) in
    match handle ~store ~cache ~metrics req with
    | payload ->
      finish ();
      payload
    | exception e ->
      finish ();
      Metrics.incr_errors metrics;
      raise e
  in
  let pool =
    Worker_pool.create
      ~on_enqueue:(fun () -> Metrics.queue_enter metrics)
      ~on_dequeue:(fun () -> Metrics.queue_leave metrics)
      ~domains ~queue_capacity handler
  in
  { store; cache; metrics; pool }

let submit t req = Worker_pool.submit t.pool req
let await = Worker_pool.await
let call t req = Worker_pool.call t.pool req
let metrics t = t.metrics
let cache_stats t = Plan_cache.stats t.cache
let store t = t.store
let shutdown t = Worker_pool.shutdown t.pool

(* ---- the line protocol of [xut serve] ---- *)

let parse_request line =
  let line = String.trim line in
  let split2 s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let verb, rest = split2 line in
  match String.uppercase_ascii verb with
  | "LOAD" -> begin
    match split2 rest with
    | "", _ -> Error "usage: LOAD <name> <file>"
    | name, file when file <> "" -> Ok (Load { name; file })
    | _ -> Error "usage: LOAD <name> <file>"
  end
  | "UNLOAD" ->
    if rest = "" then Error "usage: UNLOAD <name>" else Ok (Unload { name = rest })
  | ("TRANSFORM" | "COUNT") as verb -> begin
    match split2 rest with
    | name, rest' when name <> "" && rest' <> "" -> begin
      let engine_s, query = split2 rest' in
      match Engine.of_string engine_s with
      | None -> Error (Printf.sprintf "unknown engine %S" engine_s)
      | Some engine ->
        if query = "" then Error (Printf.sprintf "usage: %s <name> <engine> <query>" verb)
        else if verb = "COUNT" then Ok (Count { doc = name; engine; query })
        else Ok (Transform { doc = name; engine; query })
    end
    | _ -> Error (Printf.sprintf "usage: %s <name> <engine> <query>" verb)
  end
  | "STATS" -> Ok Stats
  | "" -> Error "empty request"
  | v -> Error (Printf.sprintf "unknown request %S (LOAD|UNLOAD|TRANSFORM|COUNT|STATS)" v)
