open Core

(* What a Transform/Count runs against: a stored document, or a stored
   view answered via Sec. 4 composition over its base document. *)
type target = Doc of string | View of string

type request =
  | Load of { name : string; file : string; schema : string option }
  | Unload of { name : string }
  | Transform of { target : target; engine : Engine.algo; query : string }
  | Count of { target : target; engine : Engine.algo; query : string }
  | Apply of { doc : string; query : string }
  | Commit of { doc : string; query : string }
  | Defview of { name : string; query : string }
  | Undefview of { name : string }
  | Listviews
  | Stats
  | Batch of request list

type err_code =
  | Unknown_document
  | Query_parse_error
  | Eval_error
  | Conflict
  | Overloaded
  | Bad_request
  | View_compose_error
  | Statically_empty

type view_info = { v_name : string; v_base : string; v_depth : int; v_generation : int }

type payload =
  | Doc_loaded of
      { name : string;
        elements : int;
        reloaded : bool;
        generation : int;
        schema : string option
      }
  | Doc_unloaded of { name : string }
  | Tree of string
  | Element_count of int
  | Applied of { doc : string; primitives : int; collapsed : int; conflicts : string list }
  | Committed of
      { doc : string; primitives : int; collapsed : int; elements : int; generation : int }
  | View_defined of
      { name : string; base : string; depth : int; generation : int; redefined : bool }
  | View_undefined of { name : string }
  | View_list of view_info list
  | Stats_dump of string
  | Batch_results of response list
  | Stream_done of { bytes : int; chunks : int }

and response =
  | Ok of payload
  | Error of { code : err_code; message : string }

let err_code_name = function
  | Unknown_document -> "unknown-document"
  | Query_parse_error -> "query-parse-error"
  | Eval_error -> "eval-error"
  | Conflict -> "conflict"
  | Overloaded -> "overloaded"
  | Bad_request -> "bad-request"
  | View_compose_error -> "view-compose-error"
  | Statically_empty -> "statically-empty"

let err_code_of_name = function
  | "unknown-document" -> Some Unknown_document
  | "query-parse-error" -> Some Query_parse_error
  | "eval-error" -> Some Eval_error
  | "conflict" -> Some Conflict
  | "overloaded" -> Some Overloaded
  | "bad-request" -> Some Bad_request
  | "view-compose-error" -> Some View_compose_error
  | "statically-empty" -> Some Statically_empty
  | _ -> None

let error code fmt = Printf.ksprintf (fun message -> Error { code; message }) fmt

let rec render_response = function
  | Ok p -> Stdlib.Ok (render_payload p)
  | Error { code; message } ->
    Stdlib.Error (Printf.sprintf "%s: %s" (err_code_name code) message)

and render_payload = function
  | Doc_loaded { name; elements; reloaded; generation = _; schema } ->
    (* the fresh-load string is the pre-redesign protocol text; a reload
       is flagged so scripted clients can tell the tree was swapped, and
       a schema binding is echoed so they can tell validation took *)
    let base =
      if reloaded then Printf.sprintf "loaded %s elements=%d reloaded=true" name elements
      else Printf.sprintf "loaded %s elements=%d" name elements
    in
    (match schema with None -> base | Some s -> base ^ " schema=" ^ s)
  | Doc_unloaded { name } -> Printf.sprintf "unloaded %s" name
  | Tree s -> s
  | Element_count n -> Printf.sprintf "elements=%d" n
  | Applied { doc; primitives; collapsed; conflicts } ->
    let base =
      Printf.sprintf "apply %s primitives=%d collapsed=%d conflicts=%d" doc primitives
        collapsed (List.length conflicts)
    in
    if conflicts = [] then base else base ^ ": " ^ String.concat "; " conflicts
  | Committed { doc; primitives; collapsed; elements; generation } ->
    Printf.sprintf "committed %s primitives=%d collapsed=%d elements=%d generation=%d" doc
      primitives collapsed elements generation
  | View_defined { name; base; depth; generation; redefined } ->
    let base_s =
      Printf.sprintf "defview %s base=%s depth=%d generation=%d" name base depth generation
    in
    if redefined then base_s ^ " redefined=true" else base_s
  | View_undefined { name } -> Printf.sprintf "undefview %s" name
  | View_list views ->
    String.concat "\n"
      (Printf.sprintf "views %d" (List.length views)
      :: List.map
           (fun v ->
             Printf.sprintf "view %s base=%s depth=%d generation=%d" v.v_name v.v_base
               v.v_depth v.v_generation)
           views)
  | Stats_dump s -> s
  | Stream_done { bytes; chunks } -> Printf.sprintf "streamed bytes=%d chunks=%d" bytes chunks
  | Batch_results rs ->
    String.concat "\n"
      (List.map
         (fun r ->
           match render_response r with
           | Stdlib.Ok s -> "OK " ^ s
           | Stdlib.Error e -> "ERR " ^ e)
         rs)

(* What a worker actually dequeues: the request, plus — for the
   streaming result path — the consumer its chunks go to.  The stream
   half never crosses the wire (transports decode their own stream
   framing and supply [emit]); [request] stays pure data. *)
type stream_params = { emit : string -> unit; chunk_size : int }

(* Where a streamed-ingest transform reads from: a stored document, or
   a server-side file that is never materialized as a tree. *)
type stream_source = From_doc of string | From_file of string

type job =
  | Plain_job of request
  | Stream_job of request * stream_params
  | Ingest_job of { source : stream_source; query : string; params : stream_params }

type t = {
  store : Doc_store.t;
  cache : Plan_cache.t;
  views : View_store.t;
  metrics : Metrics.t;
  pool : (job, response) Worker_pool.t;
}

let default_chunk_size = Xut_xml.Serialize.Sink.default_chunk_size

(* ---------------- schema-aware static pruning ----------------

   When the target document was loaded under a schema, the plan's NFA is
   multiplied with it ({!Xut_schema.Schema.product}, memoized per plan):
   a statically-empty product rejects the request before any document
   work, and otherwise the product's skip-set becomes a per-request
   oracle the engines consult to share whole subtrees without visiting
   them.  The oracle also does the accounting: each [true] answer is one
   pruned subtree, whose exact element population comes from the
   binding's size table (work {e avoided}, measured in O(1)). *)

type pruning = {
  product : Xut_schema.Schema.product;
  skip : Xut_xml.Node.element -> bool;  (* counting oracle for DOM engines *)
}

(* The product of [nfa] with the binding's schema, or [None] when the
   document has no (live) schema or the product can prune nothing. *)
let pruning_for ~metrics (dinfo : Doc_store.info) sizes products nfa =
  match dinfo.Doc_store.schema with
  | None -> None
  | Some sname -> begin
    match Xut_schema.Schema.find sname with
    | None -> None
    | Some schema ->
      let product, built = Product_memo.get products schema nfa in
      if built then Metrics.incr_schema_products metrics;
      if
        Xut_schema.Schema.skip_count product = 0
        && not (Xut_schema.Schema.statically_empty product)
      then None
      else begin
        let size_of e =
          let whole () = Xut_xml.Node.element_count (Xut_xml.Node.Element e) in
          match sizes with
          | Some tbl ->
            (match Hashtbl.find_opt tbl (Xut_xml.Node.id e) with
            | Some n -> n
            | None -> whole ())
          | None -> whole ()
        in
        let skip e =
          if Xut_schema.Schema.skippable product (Xut_xml.Node.sym e) then begin
            Metrics.add_skipped metrics ~subtrees:1 ~nodes:(size_of e);
            true
          end
          else false
        in
        Some { product; skip }
      end
  end

(* The admission check: a Doc-target Transform/Count whose product is
   statically empty can never select anything in any document conforming
   to the schema — reject it before touching the tree. *)
let admit ~metrics (dinfo : Doc_store.info) pruning =
  match pruning with
  | Some p when Xut_schema.Schema.statically_empty p.product ->
    Metrics.incr_statically_empty metrics;
    Stdlib.Error
      (error Statically_empty
         "query selects nothing under schema %S (NFA x schema product is empty)"
         (Option.value ~default:"?" dinfo.Doc_store.schema))
  | _ -> Stdlib.Ok ()

(* Engines that consume the selecting NFA take the precompiled one from
   the plan; TD-BU additionally reuses the memoized bottom-up annotation
   of the stored document.  The others (Naive, snapshot copy, reference,
   SAX) only need the parsed AST. *)
let run_plan ?pruning (plan : Plan_cache.plan) engine root =
  let update = plan.Plan_cache.query.Transform_ast.update in
  let skip = Option.map (fun p -> p.skip) pruning in
  match (engine : Engine.algo) with
  | Engine.Gentop -> Top_down.run ?skip plan.Plan_cache.nfa update root
  | Engine.Td_bu ->
    let table = Plan_cache.annotation ?skip plan root in
    Top_down.run
      ~checkp:(Xut_automata.Annotator.checkp table plan.Plan_cache.nfa)
      ?skip plan.Plan_cache.nfa update root
  | other -> Engine.transform other update root

(* The zero-materialization counterpart of [run_plan]: the engines that
   can emit the result as events drive the serializer sink directly (no
   output tree, no monolithic string); the rest materialize their tree
   and hand it to the sink whole, still getting chunking, the pooled
   buffer and the escape fast path. *)
let run_plan_stream ~metrics ?pruning (plan : Plan_cache.plan) engine root sink =
  let update = plan.Plan_cache.query.Transform_ast.update in
  let events = Xut_xml.Serialize.Sink.event sink in
  let skip = Option.map (fun p -> p.skip) pruning in
  match (engine : Engine.algo) with
  | Engine.Gentop -> Top_down.stream ?skip plan.Plan_cache.nfa update root events
  | Engine.Td_bu ->
    let table = Plan_cache.annotation ?skip plan root in
    Top_down.stream
      ~checkp:(Xut_automata.Annotator.checkp table plan.Plan_cache.nfa)
      ?skip plan.Plan_cache.nfa update root events
  | Engine.Two_pass_sax ->
    (* same front end as [Sax_transform.transform]: the SAX passes need
       the NFA built from the raw path.  The skip-set is a property of
       the query's semantics under the schema, so it holds for this NFA
       too; the SAX engine consumes it by symbol and reports exact
       skip counts in its run stats. *)
    let nfa = Xut_automata.Selecting_nfa.of_path (Transform_ast.path update) in
    let sym_skip =
      Option.map
        (fun p sym -> Xut_schema.Schema.skippable p.product sym)
        pruning
    in
    let stats =
      Sax_transform.run ?skip:sym_skip nfa update
        ~source:(Xut_xml.Sax.events_of_tree root) ~sink:events
    in
    Metrics.add_skipped metrics ~subtrees:stats.Sax_transform.skipped_subtrees
      ~nodes:stats.Sax_transform.skipped_elements
  | other -> Xut_xml.Serialize.Sink.element sink (Engine.transform other update root)

let evaluate ~store ~cache ~metrics ~doc ~engine ~query =
  match Doc_store.snapshot store doc with
  | None -> Stdlib.Error (error Unknown_document "no document %S (LOAD it first)" doc)
  | Some (root, dinfo, sizes) -> begin
    match Plan_cache.find_or_compile cache query with
    | exception Transform_parser.Parse_error msg ->
      Stdlib.Error (error Query_parse_error "%s" msg)
    | exception e -> Stdlib.Error (error Query_parse_error "%s" (Printexc.to_string e))
    | plan, outcome -> begin
      (match outcome with
      | Plan_cache.Hit -> Metrics.incr_cache_hits metrics
      | Plan_cache.Miss -> Metrics.incr_cache_misses metrics);
      let pruning =
        pruning_for ~metrics dinfo sizes plan.Plan_cache.products plan.Plan_cache.nfa
      in
      match admit ~metrics dinfo pruning with
      | Stdlib.Error e -> Stdlib.Error e
      | Stdlib.Ok () ->
        (match run_plan ?pruning plan engine root with
        | out -> Stdlib.Ok out
        | exception Failure msg -> Stdlib.Error (error Eval_error "%s" msg)
        | exception e -> Stdlib.Error (error Eval_error "%s" (Printexc.to_string e)))
    end
  end

(* ---------------- stored-view serving ---------------- *)

(* Both the composed path and the materializing fallback render their
   answer through this, so the two are byte-identical by construction:
   one line per result item, serialized. *)
let render_value (v : Xut_xquery.Xq_value.t) =
  String.concat "\n"
    (List.map
       (fun item ->
         match item with
         | Xut_xquery.Xq_value.N n -> Xut_xml.Serialize.to_string n
         | Xut_xquery.Xq_value.D e -> Xut_xml.Serialize.element_to_string e
         | other -> Xut_xquery.Xq_value.string_of_item other)
       v)

let count_value (v : Xut_xquery.Xq_value.t) =
  List.fold_left
    (fun n item ->
      match item with
      | Xut_xquery.Xq_value.N node -> n + Xut_xml.Node.element_count node
      | Xut_xquery.Xq_value.D e -> n + Xut_xml.Node.element_count (Xut_xml.Node.Element e)
      | _ -> n + 1)
    0 v

(* The fallback: materialize the chain level by level, then evaluate the
   user query over the result.  Level 0 with TD-BU gets the memoized
   annotation oracle; the outer levels run over freshly built trees
   where no memo can help. *)
let materialize_chain ~engine (levels : View_store.view list) root =
  let apply_level i t (v : View_store.view) =
    match (engine : Engine.algo) with
    | Engine.Td_bu when i = 0 ->
      let table = Annotation_memo.find v.View_store.memo v.View_store.nfa t in
      Top_down.run
        ~checkp:(Xut_automata.Annotator.checkp table v.View_store.nfa)
        v.View_store.nfa v.View_store.update t
    | Engine.Gentop | Engine.Td_bu -> Top_down.run v.View_store.nfa v.View_store.update t
    | other -> Engine.transform other v.View_store.update t
  in
  List.fold_left (fun (i, t) v -> (i + 1, apply_level i t v)) (0, root) levels |> snd

let evaluate_view ~store ~cache ~views ~metrics ~name ~engine ~query =
  match View_store.resolve views name with
  | None -> Stdlib.Error (error Unknown_document "no view %S (DEFVIEW it first)" name)
  | Some chain -> begin
    match Doc_store.snapshot store chain.View_store.base with
    | None ->
      Stdlib.Error
        (error Unknown_document "no document %S (base of view %S; LOAD it first)"
           chain.View_store.base name)
    | Some (root, base_info, base_sizes) -> begin
      match Xut_xquery.Xq_parser.parse_expr query with
      | exception Xut_xquery.Xq_parser.Parse_error msg ->
        Stdlib.Error (error Query_parse_error "%s" msg)
      | exception e -> Stdlib.Error (error Query_parse_error "%s" (Printexc.to_string e))
      | expr -> begin
        let levels = chain.View_store.levels in
        let updates = List.map (fun (v : View_store.view) -> v.View_store.update) levels in
        let fallback () =
          Metrics.incr_compose_fallbacks metrics;
          match materialize_chain ~engine levels root with
          | materialized -> begin
            match
              Xut_xquery.Xq_eval.eval_expr
                (Xut_xquery.Xq_eval.env ~context:materialized ())
                expr
            with
            | v -> Stdlib.Ok v
            | exception Failure msg -> Stdlib.Error (error Eval_error "%s" msg)
            | exception e -> Stdlib.Error (error Eval_error "%s" (Printexc.to_string e))
          end
          | exception Failure msg -> Stdlib.Error (error Eval_error "%s" msg)
          | exception e -> Stdlib.Error (error Eval_error "%s" (Printexc.to_string e))
        in
        match User_query.of_expr expr with
        | Stdlib.Error _ ->
          (* not in the restricted user fragment: the Compose method
             does not apply, materialize instead *)
          fallback ()
        | Stdlib.Ok uq -> begin
          let key = View_store.signature chain ^ "||" ^ query in
          let deps =
            chain.View_store.base
            :: List.map (fun (v : View_store.view) -> v.View_store.name) levels
          in
          let composed, outcome =
            Plan_cache.find_or_compose cache ~key ~deps (fun () ->
                Composition.compose_stack updates uq)
          in
          match composed with
          | exception e -> Stdlib.Error (error Eval_error "%s" (Printexc.to_string e))
          | Stdlib.Error _ -> fallback ()
          | Stdlib.Ok c -> begin
            if outcome = Plan_cache.Miss then Metrics.incr_composed_plans metrics;
            Metrics.incr_view_hits metrics;
            (* the oracle answers level-0 qualifier checks over the base
               tree from the view's memoized annotation table; when the
               base document is schema-bound, the innermost update's own
               NFA x schema product prunes the table build (the table is
               identical either way — views are never rejected) *)
            let oracle =
              match (engine : Engine.algo), levels with
              | Engine.Td_bu, (inner : View_store.view) :: _ ->
                let skip =
                  Option.map
                    (fun p -> p.skip)
                    (pruning_for ~metrics base_info base_sizes inner.View_store.products
                       inner.View_store.nfa)
                in
                let table =
                  Annotation_memo.find ?skip inner.View_store.memo inner.View_store.nfa
                    root
                in
                Some (Xut_automata.Annotator.checkp table inner.View_store.nfa)
              | _ -> None
            in
            match Composition.run_composed ?oracle c ~doc:root with
            | v -> Stdlib.Ok v
            | exception Failure msg -> Stdlib.Error (error Eval_error "%s" msg)
            | exception e -> Stdlib.Error (error Eval_error "%s" (Printexc.to_string e))
          end
        end
      end
    end
  end

let handle_defview ~cache ~views ~metrics ~name ~query =
  match View_store.define views ~name ~source:query with
  | Stdlib.Error (`Parse m) -> error Query_parse_error "%s" m
  | Stdlib.Error (`Compose m) -> error View_compose_error "%s" m
  | Stdlib.Error (`Cycle path) ->
    error View_compose_error "view cycle: %s" (String.concat " -> " path)
  | Stdlib.Ok (v, redefined) ->
    Metrics.incr_view_defs metrics;
    if redefined then
      (* the definition changed: every composed plan over a chain through
         this name is stale (the generation in the cache key already
         misses, this reclaims the entries and counts the churn) *)
      Metrics.add_view_invalidations metrics (Plan_cache.invalidate_composed cache ~dep:name);
    Ok
      (View_defined
         {
           name;
           base = v.View_store.base;
           depth = View_store.depth views name;
           generation = v.View_store.generation;
           redefined;
         })

let handle_undefview ~cache ~views ~metrics ~name =
  if View_store.undefine views ~name then begin
    Metrics.add_view_invalidations metrics (Plan_cache.invalidate_composed cache ~dep:name);
    Ok (View_undefined { name })
  end
  else error Unknown_document "no view %S" name

let view_infos views =
  List.map
    (fun (i : View_store.info) ->
      {
        v_name = i.View_store.i_name;
        v_base = i.View_store.i_base;
        v_depth = i.View_store.i_depth;
        v_generation = i.View_store.i_generation;
      })
    (View_store.infos views)

(* The write path.  Both [APPLY] and [COMMIT] evaluate the query's
   updates into a pending list with snapshot semantics
   ({!Xut_update.Apply}); APPLY stops at the dry-run report, COMMIT
   materializes and swaps under {!Doc_store.commit}. *)
let parse_updates query =
  match Transform_parser.parse_updates query with
  | updates -> Stdlib.Ok updates
  | exception Transform_parser.Parse_error msg ->
    Stdlib.Error (error Query_parse_error "%s" msg)
  | exception e -> Stdlib.Error (error Query_parse_error "%s" (Printexc.to_string e))

let conflict_strings report =
  List.map Xut_update.Pending.render_conflict report.Xut_update.Apply.conflicts

let handle_apply ~store ~doc ~query =
  match parse_updates query with
  | Stdlib.Error e -> e
  | Stdlib.Ok updates -> begin
    match Doc_store.find store doc with
    | None -> error Unknown_document "no document %S (LOAD it first)" doc
    | Some root -> begin
      match Xut_update.Apply.stage updates root with
      | report, _ ->
        Ok
          (Applied
             {
               doc;
               primitives = report.Xut_update.Apply.primitives;
               collapsed = report.Xut_update.Apply.collapsed;
               conflicts = conflict_strings report;
             })
      | exception e -> error Eval_error "%s" (Printexc.to_string e)
    end
  end

let handle_commit ~store ~metrics ~doc ~query =
  match parse_updates query with
  | Stdlib.Error e -> e
  | Stdlib.Ok updates -> begin
    let result =
      Doc_store.commit store ~name:doc (fun _info root ->
          match Xut_update.Apply.run updates root with
          | Stdlib.Ok (report, materialized) ->
            let swap =
              Option.map
                (fun (root', diff) -> (root', Some diff.Xut_update.Apply.spine))
                materialized
            in
            Stdlib.Ok (swap, report)
          | Stdlib.Error report -> Stdlib.Error (`Conflict report)
          | exception Xut_update.Apply.Invalid msg -> Stdlib.Error (`Invalid msg)
          | exception e -> Stdlib.Error (`Invalid (Printexc.to_string e)))
    in
    match result with
    | Doc_store.Swapped (info, report) ->
      Metrics.commit_recorded metrics ~primitives:report.Xut_update.Apply.primitives;
      Ok
        (Committed
           {
             doc;
             primitives = report.Xut_update.Apply.primitives;
             collapsed = report.Xut_update.Apply.collapsed;
             elements = info.Doc_store.elements;
             generation = info.Doc_store.generation;
           })
    | Doc_store.Unchanged (info, report) ->
      Metrics.commit_noop metrics;
      Ok
        (Committed
           {
             doc;
             primitives = report.Xut_update.Apply.primitives;
             collapsed = report.Xut_update.Apply.collapsed;
             elements = info.Doc_store.elements;
             generation = info.Doc_store.generation;
           })
    | Doc_store.Rejected (`Conflict report) ->
      Metrics.commit_conflict metrics;
      error Conflict "%s" (String.concat "; " (conflict_strings report))
    | Doc_store.Rejected (`Invalid msg) -> error Eval_error "%s" msg
    | Doc_store.No_document -> error Unknown_document "no document %S (LOAD it first)" doc
  end

(* [depth] guards against nested batches; every arm returns a
   [response], so a worker can only die to a runtime error (and even
   that the pool turns into an [Error] future). *)
let rec handle ~store ~cache ~views ~metrics ~depth = function
  | Load { name; file; schema } -> begin
    match Doc_store.load_file store ~name ?schema file with
    | Stdlib.Ok (info, reloaded) ->
      Ok
        (Doc_loaded
           {
             name = info.Doc_store.name;
             elements = info.Doc_store.elements;
             reloaded;
             generation = info.Doc_store.generation;
             schema = info.Doc_store.schema;
           })
    | Stdlib.Error msg -> error Bad_request "%s" msg
  end
  | Unload { name } ->
    if Doc_store.evict store name then Ok (Doc_unloaded { name })
    else error Unknown_document "no document %S" name
  | Transform { target = Doc doc; engine; query } -> begin
    match evaluate ~store ~cache ~metrics ~doc ~engine ~query with
    | Stdlib.Ok out -> Ok (Tree (Xut_xml.Serialize.element_to_string out))
    | Stdlib.Error e -> e
  end
  | Transform { target = View name; engine; query } -> begin
    match evaluate_view ~store ~cache ~views ~metrics ~name ~engine ~query with
    | Stdlib.Ok v -> Ok (Tree (render_value v))
    | Stdlib.Error e -> e
  end
  | Count { target = Doc doc; engine; query } -> begin
    match evaluate ~store ~cache ~metrics ~doc ~engine ~query with
    | Stdlib.Ok out ->
      Ok (Element_count (Xut_xml.Node.element_count (Xut_xml.Node.Element out)))
    | Stdlib.Error e -> e
  end
  | Count { target = View name; engine; query } -> begin
    match evaluate_view ~store ~cache ~views ~metrics ~name ~engine ~query with
    | Stdlib.Ok v -> Ok (Element_count (count_value v))
    | Stdlib.Error e -> e
  end
  | Apply { doc; query } -> handle_apply ~store ~doc ~query
  | Commit { doc; query } -> handle_commit ~store ~metrics ~doc ~query
  | Defview { name; query } -> handle_defview ~cache ~views ~metrics ~name ~query
  | Undefview { name } -> handle_undefview ~cache ~views ~metrics ~name
  | Listviews -> Ok (View_list (view_infos views))
  | Stats ->
    let b = Buffer.create 512 in
    Buffer.add_string b (Metrics.dump metrics);
    let cs = Plan_cache.stats cache in
    Printf.bprintf b
      "\nplan_cache entries=%d capacity=%d evictions=%d annotation_entries=%d \
       composed_entries=%d"
      cs.Plan_cache.entries cs.Plan_cache.capacity cs.Plan_cache.evictions
      cs.Plan_cache.annotation_entries cs.Plan_cache.composed_entries;
    List.iter
      (fun name ->
        match Doc_store.info store name with
        | Some i ->
          Printf.bprintf b "\ndoc %s elements=%d generation=%d" i.Doc_store.name
            i.Doc_store.elements i.Doc_store.generation;
          (match i.Doc_store.schema with
          | Some s -> Printf.bprintf b " schema=%s" s
          | None -> ())
        | None -> ())
      (Doc_store.names store);
    List.iter
      (fun (i : View_store.info) ->
        Printf.bprintf b "\nview %s base=%s depth=%d generation=%d" i.View_store.i_name
          i.View_store.i_base i.View_store.i_depth i.View_store.i_generation)
      (View_store.infos views);
    Ok (Stats_dump (Buffer.contents b))
  | Batch reqs ->
    if depth > 0 then error Bad_request "nested batch"
    else
      Ok
        (Batch_results
           (List.map (handle ~store ~cache ~views ~metrics ~depth:(depth + 1)) reqs))

(* Streaming evaluation: chunks go to [emit] as they fill; the response
   carries only the totals.  An engine failure after chunks have gone
   out is reported as an [Error] response — transports turn that into a
   mid-stream error frame, in-process callers see partial output
   followed by the error. *)
let handle_streaming ~store ~cache ~metrics { emit; chunk_size } = function
  | Transform { target = View _; _ } ->
    error Bad_request "streaming a view target is not supported"
  | Transform { target = Doc doc; engine; query } -> begin
    match Doc_store.snapshot store doc with
    | None -> error Unknown_document "no document %S (LOAD it first)" doc
    | Some (root, dinfo, sizes) -> begin
      match Plan_cache.find_or_compile cache query with
      | exception Transform_parser.Parse_error msg -> error Query_parse_error "%s" msg
      | exception e -> error Query_parse_error "%s" (Printexc.to_string e)
      | plan, outcome -> begin
        (match outcome with
        | Plan_cache.Hit -> Metrics.incr_cache_hits metrics
        | Plan_cache.Miss -> Metrics.incr_cache_misses metrics);
        let pruning =
          pruning_for ~metrics dinfo sizes plan.Plan_cache.products plan.Plan_cache.nfa
        in
        match admit ~metrics dinfo pruning with
        | Stdlib.Error e -> e
        | Stdlib.Ok () -> begin
          Metrics.stream_started metrics;
          let sink =
            Xut_xml.Serialize.Sink.create ~chunk_size (fun chunk ->
                Metrics.stream_chunk metrics (String.length chunk);
                emit chunk)
          in
          match run_plan_stream ~metrics ?pruning plan engine root sink with
          | () ->
            let totals = Xut_xml.Serialize.Sink.close sink in
            Ok
              (Stream_done
                 { bytes = totals.Xut_xml.Serialize.Sink.bytes;
                   chunks = totals.Xut_xml.Serialize.Sink.chunks
                 })
          | exception e ->
            Xut_xml.Serialize.Sink.abort sink;
            (match e with
            | Failure msg -> error Eval_error "%s" msg
            | e -> error Eval_error "%s" (Printexc.to_string e))
        end
      end
    end
  end
  | Load _ | Unload _ | Count _ | Apply _ | Commit _ | Defview _ | Undefview _ | Listviews
  | Stats | Batch _ ->
    error Bad_request "only TRANSFORM can stream"

(* ---------------- streamed ingest ----------------

   TRANSFORM-STREAM: transform a source without materializing the input
   as a tree, when the plan admits it.  The classifier is
   {!Sax_transform.one_pass}: a plan with no qualifiers anywhere (no
   context qualifier, no qualifier-bearing NFA state) never consults the
   bottom-up truth table, so the top-down pass alone over a single
   forward read of the input is the whole transform — O(depth) memory,
   end to end ([streams_fused]).

   Shapes outside that fragment fall back automatically, with
   byte-identical output (same serializer sink, same transform
   semantics), counted in [stream_fallbacks]:

   - a FILE source with a trivially-true context qualifier runs the full
     two-pass SAX algorithm, reading the file twice (the paper's Fig. 14
     configuration) — a truth table but still no tree;
   - everything else (context qualifiers; qualifier-bearing plans over a
     stored document, whose tree already exists) uses the tree and
     streams only the output via [run_plan_stream]. *)
let handle_ingest ~store ~cache ~metrics { emit; chunk_size } ~source ~query =
  match Plan_cache.find_or_compile cache query with
  | exception Transform_parser.Parse_error msg -> error Query_parse_error "%s" msg
  | exception e -> error Query_parse_error "%s" (Printexc.to_string e)
  | plan, outcome -> begin
    (match outcome with
    | Plan_cache.Hit -> Metrics.incr_cache_hits metrics
    | Plan_cache.Miss -> Metrics.incr_cache_misses metrics);
    let update = plan.Plan_cache.query.Transform_ast.update in
    (* the SAX passes need the NFA built from the raw path, exactly as
       in [run_plan_stream]'s SAX arm *)
    let nfa = Xut_automata.Selecting_nfa.of_path (Transform_ast.path update) in
    let streamed body =
      Metrics.stream_started metrics;
      let sink =
        Xut_xml.Serialize.Sink.create ~chunk_size (fun chunk ->
            Metrics.stream_chunk metrics (String.length chunk);
            emit chunk)
      in
      match body sink with
      | () ->
        let totals = Xut_xml.Serialize.Sink.close sink in
        Ok
          (Stream_done
             { bytes = totals.Xut_xml.Serialize.Sink.bytes;
               chunks = totals.Xut_xml.Serialize.Sink.chunks
             })
      | exception e ->
        Xut_xml.Serialize.Sink.abort sink;
        (match e with
        | Xut_xml.Sax.Parse_error { line; col; msg } ->
          error Eval_error "parse error at %d:%d: %s" line col msg
        | Sys_error msg -> error Eval_error "%s" msg
        | Failure msg -> error Eval_error "%s" msg
        | e -> error Eval_error "%s" (Printexc.to_string e))
    in
    let count_sax_skips (stats : Sax_transform.run_stats) =
      Metrics.add_skipped metrics ~subtrees:stats.Sax_transform.skipped_subtrees
        ~nodes:stats.Sax_transform.skipped_elements
    in
    match source with
    | From_doc doc -> begin
      match Doc_store.snapshot store doc with
      | None -> error Unknown_document "no document %S (LOAD it first)" doc
      | Some (root, dinfo, sizes) -> begin
        let pruning =
          pruning_for ~metrics dinfo sizes plan.Plan_cache.products plan.Plan_cache.nfa
        in
        match admit ~metrics dinfo pruning with
        | Stdlib.Error e -> e
        | Stdlib.Ok () ->
          if Sax_transform.one_pass nfa then begin
            Metrics.incr_streams_fused metrics;
            let sym_skip =
              Option.map (fun p sym -> Xut_schema.Schema.skippable p.product sym) pruning
            in
            streamed (fun sink ->
                count_sax_skips
                  (Sax_transform.run_once ?skip:sym_skip nfa update
                     ~source:(Xut_xml.Sax.events_of_tree root)
                     ~sink:(Xut_xml.Serialize.Sink.event sink)))
          end
          else begin
            Metrics.incr_stream_fallbacks metrics;
            streamed (fun sink -> run_plan_stream ~metrics ?pruning plan Engine.Gentop root sink)
          end
      end
    end
    | From_file path ->
      if not (Sys.file_exists path) then error Eval_error "no such file %S" path
      else if Sax_transform.one_pass nfa then begin
        Metrics.incr_streams_fused metrics;
        streamed (fun sink ->
            count_sax_skips
              (Sax_transform.run_once nfa update
                 ~source:(fun h -> Xut_xml.Sax.parse_file path h)
                 ~sink:(Xut_xml.Serialize.Sink.event sink)))
      end
      else begin
        Metrics.incr_stream_fallbacks metrics;
        match Xut_automata.Selecting_nfa.ctx_qual nfa with
        | Xut_xpath.Ast.Q_true ->
          streamed (fun sink ->
              count_sax_skips
                (Sax_transform.run nfa update
                   ~source:(fun h -> Xut_xml.Sax.parse_file path h)
                   ~sink:(Xut_xml.Serialize.Sink.event sink)))
        | _ ->
          streamed (fun sink ->
              let root = Xut_xml.Dom.parse_file path in
              run_plan_stream ~metrics plan Engine.Gentop root sink)
      end
  end

let rec count_errors = function
  | Error _ -> 1
  | Ok (Batch_results rs) -> List.fold_left (fun n r -> n + count_errors r) 0 rs
  | Ok _ -> 0

let create ?(domains = 1) ?(cache_capacity = 128) ?(queue_capacity = 64) ?store_shards () =
  let store = Doc_store.create ?shards:store_shards () in
  let cache = Plan_cache.create ~capacity:cache_capacity in
  let views = View_store.create () in
  let metrics = Metrics.create () in
  (* The lifecycle hook: a document leaving the store (UNLOAD, or the
     old tree of a reload) takes exactly its annotation tables with it —
     per-doc eviction, never a whole-memo wipe.  A COMMIT that supplied
     its rebuilt-spine diff instead has every cached plan's table
     {e repaired} for the new root (the old root's table stays
     addressable for in-flight readers until the per-plan LRU drops it);
     a fallback eviction counts as an invalidation like any other.

     The same event walks the view-dependency graph: every view whose
     chain passes through the document has its annotation memo repaired
     (commit with a usable diff) or evicted, and an UNLOAD/reload also
     drops the composed plans addressed through the document — all
     counted as [view_invalidations].  A plain COMMIT keeps composed
     plans: they depend on the definitions, not on document content. *)
  Doc_store.subscribe store (fun ev ->
      if ev.Doc_store.schema_dropped then Metrics.incr_schema_bindings_dropped metrics;
      (* The schema captured at the swap (if the new tree still
         conforms): each repaired table's fresh-subtree annotation runs
         under the owning plan's skip-set, exactly as a from-scratch
         build would.  The oracle changes cost, never content, so the
         repaired table equals the unpruned one — repair_fallbacks stays
         0 with pruning on. *)
      let skip_against nfa products =
        match ev.Doc_store.schema with
        | None -> None
        | Some sname -> begin
          match Xut_schema.Schema.find sname with
          | None -> None
          | Some schema ->
            let product, built = Product_memo.get products schema nfa in
            if built then Metrics.incr_schema_products metrics;
            if Xut_schema.Schema.skip_count product = 0 then None
            else
              Some
                (fun e -> Xut_schema.Schema.skippable product (Xut_xml.Node.sym e))
        end
      in
      (match ev.Doc_store.repair with
      | Some hint ->
        let plan_skip (plan : Plan_cache.plan) =
          skip_against plan.Plan_cache.nfa plan.Plan_cache.products
        in
        let totals =
          Plan_cache.repair ~plan_skip cache ~old_root_id:ev.Doc_store.root_id
            ~spine:hint.Doc_store.spine hint.Doc_store.new_root
        in
        Metrics.add_repairs metrics ~repaired:totals.Plan_cache.repaired
          ~fallbacks:totals.Plan_cache.fallbacks
          ~recomputed:totals.Plan_cache.recomputed_nodes
          ~reused:totals.Plan_cache.reused_nodes;
        Metrics.add_invalidations metrics totals.Plan_cache.fallbacks
      | None ->
        Metrics.add_invalidations metrics
          (Plan_cache.invalidate cache ~root_id:ev.Doc_store.root_id));
      let view_churn = ref 0 in
      List.iter
        (fun vn ->
          match View_store.find views vn with
          | None -> ()
          | Some v -> (
            (* only views based directly on this document hold memo
               tables keyed by its root; for the rest this is a no-op *)
            match ev.Doc_store.repair with
            | Some hint -> (
              match
                Annotation_memo.repair
                  ?skip:(skip_against v.View_store.nfa v.View_store.products)
                  v.View_store.memo v.View_store.nfa
                  ~old_root_id:ev.Doc_store.root_id ~spine:hint.Doc_store.spine
                  hint.Doc_store.new_root
              with
              | `Absent -> ()
              | `Fallback | `Repaired _ -> incr view_churn)
            | None ->
              if Annotation_memo.invalidate v.View_store.memo ~root_id:ev.Doc_store.root_id
              then incr view_churn))
        (View_store.dependents views ev.Doc_store.name);
      (match ev.Doc_store.reason with
      | Doc_store.Unloaded | Doc_store.Replaced ->
        view_churn := !view_churn + Plan_cache.invalidate_composed cache ~dep:ev.Doc_store.name
      | Doc_store.Committed -> ());
      Metrics.add_view_invalidations metrics !view_churn);
  let handler job =
    Metrics.incr_requests metrics;
    let t0 = Unix.gettimeofday () in
    let resp =
      match job with
      | Plain_job req -> handle ~store ~cache ~views ~metrics ~depth:0 req
      | Stream_job (req, sp) -> handle_streaming ~store ~cache ~metrics sp req
      | Ingest_job { source; query; params } ->
        handle_ingest ~store ~cache ~metrics params ~source ~query
    in
    Metrics.record_latency metrics (Unix.gettimeofday () -. t0);
    for _ = 1 to count_errors resp do
      Metrics.incr_errors metrics
    done;
    resp
  in
  let pool =
    Worker_pool.create
      ~on_enqueue:(fun () -> Metrics.queue_enter metrics)
      ~on_dequeue:(fun () -> Metrics.queue_leave metrics)
      ~domains ~queue_capacity handler
  in
  { store; cache; views; metrics; pool }

(* The pool's own error channel ([('b, string) result]) only fires when
   an exception escapes the handler — the handler catches everything it
   expects, so this is the backstop mapping, plus the shut-down case. *)
type future =
  | Ready of response
  | Pending of (response, string) Stdlib.result Worker_pool.future

let submit_job t job =
  match Worker_pool.submit t.pool job with
  | fut -> Pending fut
  | exception Invalid_argument _ ->
    Ready (error Overloaded "service is shut down")

let submit t req = submit_job t (Plain_job req)

let submit_stream t ~doc ~engine ~query ?(chunk_size = default_chunk_size) emit =
  submit_job t
    (Stream_job
       ( Transform { target = Doc doc; engine; query },
         { emit; chunk_size = max 1 chunk_size } ))

let submit_ingest t ~source ~query ?(chunk_size = default_chunk_size) emit =
  submit_job t
    (Ingest_job { source; query; params = { emit; chunk_size = max 1 chunk_size } })

let flatten = function
  | Stdlib.Ok r -> r
  | Stdlib.Error msg -> error Eval_error "%s" msg

let await = function
  | Ready r -> r
  | Pending fut -> flatten (Worker_pool.await fut)

let peek = function
  | Ready r -> Some r
  | Pending fut -> Option.map flatten (Worker_pool.peek fut)

let call t req = await (submit t req)

let transform_stream t ~doc ~engine ~query ?chunk_size emit =
  await (submit_stream t ~doc ~engine ~query ?chunk_size emit)

let transform_ingest t ~source ~query ?chunk_size emit =
  await (submit_ingest t ~source ~query ?chunk_size emit)
let metrics t = t.metrics
let cache_stats t = Plan_cache.stats t.cache
let store t = t.store
let views t = t.views

(* Subscribers added here run after the service's own plan-cache hook,
   so by the time a transport broadcasts a notice the stale tables are
   already gone — a client acting on the notice sees fresh state. *)
let on_invalidate t f = Doc_store.subscribe t.store f
let shutdown t = Worker_pool.shutdown t.pool
