type 'r future = {
  fmu : Mutex.t;
  fcond : Condition.t;
  mutable value : 'r option;
}

type ('a, 'b) cell = { arg : 'a; future : ('b, string) result future }

type ('a, 'b) t = {
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : ('a, 'b) cell Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  n_domains : int;
  on_enqueue : unit -> unit;
  on_dequeue : unit -> unit;
}

let fulfil fut value =
  Mutex.lock fut.fmu;
  fut.value <- Some value;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmu

let await fut =
  Mutex.lock fut.fmu;
  let rec wait () =
    match fut.value with
    | Some v ->
      Mutex.unlock fut.fmu;
      v
    | None ->
      Condition.wait fut.fcond fut.fmu;
      wait ()
  in
  wait ()

let peek fut =
  Mutex.lock fut.fmu;
  let v = fut.value in
  Mutex.unlock fut.fmu;
  v

let worker_loop t f =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.mu
    done;
    if Queue.is_empty t.queue then begin
      (* closed and drained *)
      Mutex.unlock t.mu;
      ()
    end
    else begin
      let cell = Queue.pop t.queue in
      t.on_dequeue ();
      Condition.signal t.not_full;
      Mutex.unlock t.mu;
      (* Failure isolation: any exception from f becomes this request's
         error response; the worker itself never dies. *)
      let result =
        match f cell.arg with
        | v -> Ok v
        | exception Failure msg -> Error msg
        | exception e -> Error (Printexc.to_string e)
      in
      fulfil cell.future result;
      loop ()
    end
  in
  loop ()

let create ?(on_enqueue = Fun.id) ?(on_dequeue = Fun.id) ~domains ~queue_capacity f =
  if domains < 1 then invalid_arg "Worker_pool.create: domains < 1";
  if queue_capacity < 1 then invalid_arg "Worker_pool.create: queue_capacity < 1";
  let t =
    {
      mu = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      capacity = queue_capacity;
      closed = false;
      workers = [];
      n_domains = domains;
      on_enqueue;
      on_dequeue;
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t f));
  t

let submit t arg =
  let future = { fmu = Mutex.create (); fcond = Condition.create (); value = None } in
  Mutex.lock t.mu;
  while Queue.length t.queue >= t.capacity && not t.closed do
    Condition.wait t.not_full t.mu
  done;
  if t.closed then begin
    Mutex.unlock t.mu;
    invalid_arg "Worker_pool.submit: pool is shut down"
  end;
  Queue.push { arg; future } t.queue;
  t.on_enqueue ();
  Condition.signal t.not_empty;
  Mutex.unlock t.mu;
  future

let call t arg = await (submit t arg)

let domains t = t.n_domains

let shutdown t =
  Mutex.lock t.mu;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu;
  List.iter Domain.join workers
