open Xut_automata
open Xut_schema

(** Per-plan (and per-view) memo of {!Xut_schema.Schema.product}s, keyed
    by schema name.  Registered schemas are immutable, and a plan's NFA
    is fixed, so entries never invalidate; they die with the plan. *)

type t

val create : unit -> t

val get : t -> Schema.t -> Selecting_nfa.t -> Schema.product * bool
(** The product of [nfa] with [schema], computed and remembered on first
    use.  The [bool] is [true] when this call built it (the
    [schema_products] metric counts those). *)
