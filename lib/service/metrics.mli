(** Service-level metrics: request/error/cache counters, queue depth and
    a latency histogram, all domain-safe.

    Counters are [Atomic.t]; the histogram is a fixed array of atomic
    buckets on a power-of-two microsecond scale, so recording a latency
    is lock-free and quantiles are answered from the bucket counts
    without retaining per-request samples. *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr_requests : t -> unit
val incr_errors : t -> unit
val incr_cache_hits : t -> unit
val incr_cache_misses : t -> unit

val requests : t -> int
val errors : t -> int
val cache_hits : t -> int
val cache_misses : t -> int

(** {2 Queue depth}

    Maintained by the worker pool: {!queue_enter} on enqueue,
    {!queue_leave} on dequeue.  {!queue_depth} is the instantaneous
    depth, {!max_queue_depth} the high-water mark. *)

val queue_enter : t -> unit
val queue_leave : t -> unit
val queue_depth : t -> int
val max_queue_depth : t -> int

(** {2 Latency histogram} *)

val record_latency : t -> float -> unit
(** [record_latency m seconds] adds one observation. *)

(** {2 Transport counters}

    Maintained by the socket server ({!Xut_transport.Server}): accepted
    / rejected connections, the active-connection gauge, and framed
    traffic in both directions.  They live here rather than in the
    transport so one [STATS] request reports the whole serving path. *)

val conn_accepted : t -> unit
(** One accepted connection: bumps the accepted total and the active
    gauge. *)

val conn_closed : t -> unit
(** The accepted connection ended: drops the active gauge. *)

val conn_rejected : t -> unit
(** A connection was turned away at the limit (BUSY). *)

val frame_in : t -> int -> unit
(** One well-framed request of the given total size (header + payload)
    was read. *)

val frame_out : t -> int -> unit
(** One response frame of the given total size was written. *)

val frame_malformed : t -> unit
(** A frame failed header validation, payload decoding, or was
    truncated by a disconnect/timeout. *)

(** {2 Streaming counters}

    Maintained by the streaming result path ({!Service.transform_stream}
    and the transport's chunked replies): streams started, chunks
    handed to consumers, and payload bytes streamed. *)

val stream_started : t -> unit
val stream_chunk : t -> int -> unit
(** One chunk of the given payload size was handed to a consumer. *)

val streams : t -> int
val stream_chunks : t -> int
val stream_bytes : t -> int

val incr_streams_fused : t -> unit
(** A streaming-ingest request ran fused: one-pass SAX transform, no
    tree, no truth table. *)

val incr_stream_fallbacks : t -> unit
(** A streaming-ingest request could not run fused (the plan needs the
    bottom-up pass or a materialized tree) and was served — with
    byte-identical output — by a fallback path. *)

val streams_fused : t -> int
val stream_fallbacks : t -> int

val incr_schema_bindings_dropped : t -> unit
(** A COMMIT produced a document that no longer conforms to its bound
    schema, so the binding was dropped (see {!Doc_store.commit}). *)

val schema_bindings_dropped : t -> int

(** {2 Invalidation counters}

    Maintained by the service's document-lifecycle hook: every
    annotation table evicted from a cached plan because its document was
    unloaded or replaced counts here (surfaced as [doc_invalidations]
    in the STATS dump). *)

val add_invalidations : t -> int -> unit
val invalidations : t -> int

(** {2 Annotation-repair counters}

    Maintained by the commit-time repair hook: per-plan annotation
    tables carried across a commit by {!Plan_cache.repair}
    ([annotation_repairs]), tables evicted because the diff was
    degenerate ([repair_fallbacks]), and the summed entry counts the
    repairs recomputed versus carried over — the recomputed/reused ratio
    is the incrementality the repair path buys over full
    re-annotation. *)

val add_repairs :
  t -> repaired:int -> fallbacks:int -> recomputed:int -> reused:int -> unit

val annotation_repairs : t -> int
val repair_fallbacks : t -> int
val repair_recomputed_nodes : t -> int
val repair_reused_nodes : t -> int

(** {2 View counters}

    Maintained by the stored-view serving path: views (re)defined
    ([view_defs]), requests answered by a composed plan against a view
    ([view_hits]), compositions actually performed — not served from the
    composed-plan cache — ([composed_plans]), composed plans and view
    annotation memos dropped or repaired by the dependency-graph walk on
    document lifecycle events and view redefinitions
    ([view_invalidations]), and requests that fell back to naive
    materialization because the query or chain was outside the
    composable fragment ([compose_fallbacks] — the fallback used to be
    silent). *)

val incr_view_defs : t -> unit
val incr_view_hits : t -> unit
val incr_composed_plans : t -> unit
val add_view_invalidations : t -> int -> unit
val incr_compose_fallbacks : t -> unit

val view_defs : t -> int
val view_hits : t -> int
val composed_plans : t -> int
val view_invalidations : t -> int
val compose_fallbacks : t -> int

(** {2 Schema-pruning counters}

    Maintained by the schema-aware serving path: element subtrees the
    skip-set pruned without a visit ([skipped_subtrees]) and the exact
    number of elements inside them ([skipped_nodes], from the document's
    size table — work avoided, not done), requests rejected at admission
    because the NFA x schema product proved the query can select nothing
    ([statically_empty_rejections]), and products actually constructed —
    not served from a per-plan memo — ([schema_products]). *)

val add_skipped : t -> subtrees:int -> nodes:int -> unit
val incr_statically_empty : t -> unit
val incr_schema_products : t -> unit

val skipped_subtrees : t -> int
val skipped_nodes : t -> int
val statically_empty_rejections : t -> int
val schema_products : t -> int

(** {2 Commit counters}

    Maintained by the write path ([COMMIT] requests): effective commits
    (the document generation advanced), rejected commits (pending-list
    conflicts), and no-op commits (the query selected nothing, so no new
    tree exists and nothing changed).  [commits] therefore equals the
    generation delta attributable to the write path — the invariant the
    write-churn smoke asserts.  Effective commits also feed a
    power-of-two histogram of surviving pending-list lengths. *)

val commit_recorded : t -> primitives:int -> unit
(** One effective commit whose pending list held [primitives] surviving
    primitives. *)

val commit_conflict : t -> unit
val commit_noop : t -> unit

val commits : t -> int
val commit_conflicts : t -> int
val commit_noops : t -> int

val pending_count : t -> int
(** Commits recorded into the pending-list histogram (= {!commits}). *)

val pending_quantile : t -> float -> int
(** [pending_quantile m 0.95]: pending-list length at the given
    quantile, from the histogram buckets (bucket lower bound); [0] when
    empty. *)

val pending_max : t -> int
(** Longest surviving pending list committed, exactly. *)

val conns_accepted : t -> int
val conns_active : t -> int
val conns_rejected : t -> int
val frames_in : t -> int
val frames_out : t -> int
val frames_malformed : t -> int
val bytes_in : t -> int
val bytes_out : t -> int

val latency_count : t -> int

val quantile : t -> float -> float
(** [quantile m 0.95] returns an estimate (in seconds) of the given
    latency quantile, from the histogram buckets; [0.] when empty. *)

val max_latency : t -> float
(** Largest latency observed, exactly (in seconds). *)

val reset : t -> unit

val nfa_memo_stats : unit -> int * int
(** Process-wide selecting-NFA transition-memo [(hits, misses)]
    (approximate under concurrent domains). *)

val sym_stats : unit -> int * int
(** [(distinct symbols, intern calls)] of the global element-name symbol
    table; the gap between the two is the hit count. *)

val serialize_pool_stats : unit -> int * int
(** [(hits, misses)] of the process-wide serializer buffer pool
    ({!Xut_xml.Serialize.Pool}). *)

val dump : t -> string
(** Multi-line text rendering of every metric (the [STATS] payload),
    including the transition-memo and symbol-table counters above. *)
