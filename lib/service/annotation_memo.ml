open Xut_automata

(* Entries carry a recency stamp from a per-memo clock; overflow evicts
   only the least-recently-used document's table, and store-driven
   invalidation removes exactly the named document's. *)
type entry = { table : Annotator.table; mutable stamp : int }

type t = {
  mu : Mutex.t;
  docs : (int, entry) Hashtbl.t;
  mutable clock : int;
}

let create () = { mu = Mutex.create (); docs = Hashtbl.create 4; clock = 0 }

(* At most this many documents' annotation tables per memo; crossing the
   bound evicts the least recently used one, so the hot documents'
   tables survive a cold document passing through. *)
let capacity = 8

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun id e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (id, e.stamp))
      t.docs None
  in
  match victim with Some (id, _) -> Hashtbl.remove t.docs id | None -> ()

let find ?skip t nfa root =
  let id = Xut_xml.Node.id root in
  Mutex.lock t.mu;
  let cached =
    match Hashtbl.find_opt t.docs id with
    | Some e ->
      t.clock <- t.clock + 1;
      e.stamp <- t.clock;
      Some e.table
    | None -> None
  in
  Mutex.unlock t.mu;
  match cached with
  | Some table -> table
  | None ->
    (* Built outside the lock: concurrent misses on the same document may
       annotate twice; one insert wins and both tables are valid. *)
    let table = Annotator.annotate ?skip nfa root in
    Mutex.lock t.mu;
    if not (Hashtbl.mem t.docs id) then begin
      if Hashtbl.length t.docs >= capacity then evict_lru t;
      t.clock <- t.clock + 1;
      Hashtbl.add t.docs id { table; stamp = t.clock }
    end;
    Mutex.unlock t.mu;
    table

let count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.docs in
  Mutex.unlock t.mu;
  n

let invalidate t ~root_id =
  Mutex.lock t.mu;
  let present = Hashtbl.mem t.docs root_id in
  if present then Hashtbl.remove t.docs root_id;
  Mutex.unlock t.mu;
  present

(* Incremental maintenance across a commit: rebuild the table for the
   new root from the old root's table and the rebuilt-spine map, instead
   of letting the commit evict it.  The old entry is deliberately LEFT
   IN PLACE — readers that picked up the pre-commit snapshot before the
   swap still resolve its table (immutable, never repaired in place);
   the LRU drops it once younger roots push it out. *)
let repair ?skip t nfa ~old_root_id ~spine new_root =
  Mutex.lock t.mu;
  let old_entry = Hashtbl.find_opt t.docs old_root_id in
  Mutex.unlock t.mu;
  match old_entry with
  | None -> `Absent (* nothing cached for the departing tree: no work *)
  | Some { table = old_table; _ } -> begin
    (* Repair runs outside the lock, like [find]'s build: a racing
       reader of the old snapshot still hits the old entry meanwhile. *)
    match Annotator.repair ?skip nfa ~old_table ~spine new_root with
    | None ->
      (* degenerate diff (root replaced): fall back to eviction *)
      ignore (invalidate t ~root_id:old_root_id);
      `Fallback
    | Some (table, st) ->
      let new_id = Xut_xml.Node.id new_root in
      Mutex.lock t.mu;
      if not (Hashtbl.mem t.docs new_id) then begin
        if Hashtbl.length t.docs >= capacity then evict_lru t;
        t.clock <- t.clock + 1;
        Hashtbl.add t.docs new_id { table; stamp = t.clock }
      end;
      Mutex.unlock t.mu;
      `Repaired st
  end
