open Xut_xml

(* Expand one step from a document-ordered frontier of elements, keeping
   document order and removing duplicates (descendant steps can reach the
   same node along several routes). *)
let dedup elems =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun e ->
      let id = Node.id e in
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    elems

let rec descendant_or_self_acc acc e =
  let acc = e :: acc in
  List.fold_left descendant_or_self_acc acc (Node.child_elements e)

let rec select_from (frontier : Node.element list) (path : Ast.path) : Node.element list =
  match path with
  | [] -> frontier
  | { Ast.nav; quals } :: rest ->
    let expanded =
      match nav with
      | Ast.Self -> frontier
      | Ast.Label l ->
        List.concat_map
          (fun e -> List.filter (fun c -> String.equal (Node.name c) l) (Node.child_elements e))
          frontier
      | Ast.Wildcard -> List.concat_map Node.child_elements frontier
      | Ast.Descendant -> (
        (* descendants of a single element are unique by construction *)
        match frontier with
        | [ e ] -> List.rev (descendant_or_self_acc [] e)
        | _ -> dedup (List.concat_map (fun e -> List.rev (descendant_or_self_acc [] e)) frontier))
    in
    let filtered = List.filter (fun e -> List.for_all (check_qual e) quals) expanded in
    select_from filtered rest

and check_qual (n : Node.element) (q : Ast.qual) : bool =
  match q with
  | Ast.Q_true -> true
  | Ast.Q_label l -> String.equal (Node.name n) l
  | Ast.Q_and (a, b) -> check_qual n a && check_qual n b
  | Ast.Q_or (a, b) -> check_qual n a || check_qual n b
  | Ast.Q_not a -> not (check_qual n a)
  | Ast.Q_exists { spath; sattr } -> (
    let nodes = select_from [ n ] spath in
    match sattr with
    | None -> nodes <> []
    | Some a -> List.exists (fun e -> Node.attr e a <> None) nodes)
  | Ast.Q_cmp ({ spath; sattr }, op, v) ->
    let nodes = select_from [ n ] spath in
    let values =
      match sattr with
      | None -> List.map Node.text_content nodes
      | Some a -> List.filter_map (fun e -> Node.attr e a) nodes
    in
    List.exists (fun s -> Ast.compare_values op s v) values

(* A path ending in '//l' behind a child-only prefix: the prefix frontier
   sits at a single depth, so frontier subtrees are disjoint and one
   pre-order walk per frontier element yields the result in document order
   with no duplicates — skipping the materialized descendant list, the
   dedup table and the whole-document rank sort.  This is the shape of
   marker-cleanup updates (delete $a//x), which run on every commit. *)
let rec split_trailing_desc_label acc = function
  | [ { Ast.nav = Ast.Descendant; quals = dq }; { Ast.nav = Ast.Label l; quals = lq } ] ->
    Some (List.rev acc, dq, l, lq)
  | ({ Ast.nav = Ast.Label _ | Ast.Wildcard | Ast.Self; _ } as s) :: rest ->
    split_trailing_desc_label (s :: acc) rest
  | _ -> None

let rec quals_ok v = function
  | [] -> true
  | q :: rest -> check_qual v q && quals_ok v rest

let fused_descendant_label frontier dquals l lquals =
  let acc = ref [] in
  (* walk the raw child list: no per-node closure, no materialized
     child-element lists — the walk allocates only for matches *)
  let rec walk v =
    let v_ok = quals_ok v dquals in
    walk_children v_ok (Node.children v)
  and walk_children v_ok = function
    | [] -> ()
    | Node.Element c :: rest ->
      if v_ok && String.equal (Node.name c) l && quals_ok c lquals then acc := c :: !acc;
      walk c;
      walk_children v_ok rest
    | _ :: rest -> walk_children v_ok rest
  in
  List.iter walk frontier;
  List.rev !acc

let select_general ctx path =
  let result = dedup (select_from [ ctx ] path) in
  (* Child-only paths produce document order by construction; after a
     descendant step, later child steps can emit cousins out of order, so
     sort by pre-order rank. *)
  if List.exists (fun (s : Ast.step) -> s.nav = Ast.Descendant) path then begin
    let rank = Hashtbl.create 256 in
    let counter = ref 0 in
    Node.iter_elements
      (fun e ->
        Hashtbl.replace rank (Node.id e) !counter;
        incr counter)
      ctx;
    let key e = try Hashtbl.find rank (Node.id e) with Not_found -> max_int in
    List.stable_sort (fun a b -> compare (key a) (key b)) result
  end
  else result

let select ctx path =
  match split_trailing_desc_label [] path with
  | Some (prefix, dquals, l, lquals) ->
    fused_descendant_label (select_from [ ctx ] prefix) dquals l lquals
  | None -> select_general ctx path

let select_doc root path =
  (* Leading '.' steps qualify the virtual document node; an empty path
     (after normalization) denotes the document element itself. *)
  let norm = Norm.steps path in
  let doc = Node.element "#document" [ Node.Element root ] in
  if not (List.for_all (check_qual doc) norm.Norm.ctx_quals) then []
  else
    match norm.Norm.steps with
    | [] -> [ root ]
    | _ -> select doc (Norm.to_path norm)

let node_set_ids elems =
  let tbl = Hashtbl.create (List.length elems * 2) in
  List.iter (fun e -> Hashtbl.replace tbl (Node.id e) ()) elems;
  tbl
