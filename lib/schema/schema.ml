open Xut_xml
open Xut_automata

(* ---------------- grammar ---------------- *)

type rx =
  | Empty
  | Elem of string
  | Seq of rx list
  | Alt of rx list
  | Star of rx
  | Opt of rx
  | Plus of rx

type t = {
  s_name : string;
  s_root : Sym.t;
  (* reachability projection: declared symbol -> allowed child symbols *)
  s_children : (Sym.t, (Sym.t, unit) Hashtbl.t) Hashtbl.t;
}

let rec rx_syms acc = function
  | Empty -> acc
  | Elem n -> n :: acc
  | Seq l | Alt l -> List.fold_left rx_syms acc l
  | Star r | Opt r | Plus r -> rx_syms acc r

let define ~name ~root decls =
  let tbl : (Sym.t, (Sym.t, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create (List.length decls * 2)
  in
  let dup =
    List.fold_left
      (fun dup (n, _) ->
        let s = Sym.intern n in
        if Hashtbl.mem tbl s then Some n
        else begin
          Hashtbl.replace tbl s (Hashtbl.create 4);
          dup
        end)
      None decls
  in
  match dup with
  | Some n -> Error (Printf.sprintf "schema %s: duplicate declaration of %s" name n)
  | None ->
    let undeclared = ref None in
    List.iter
      (fun (n, rx) ->
        let parent = Sym.intern n in
        let kids = Hashtbl.find tbl parent in
        List.iter
          (fun child ->
            let cs = Sym.intern child in
            if not (Hashtbl.mem tbl cs) && !undeclared = None then
              undeclared := Some (child, n);
            Hashtbl.replace kids cs ())
          (rx_syms [] rx))
      decls;
    (match !undeclared with
    | Some (child, parent) ->
      Error
        (Printf.sprintf "schema %s: %s (in the content of %s) is not declared" name child
           parent)
    | None ->
      let root_sym = Sym.intern root in
      if not (Hashtbl.mem tbl root_sym) then
        Error (Printf.sprintf "schema %s: root %s is not declared" name root)
      else Ok { s_name = name; s_root = root_sym; s_children = tbl })

let name t = t.s_name
let root_sym t = t.s_root
let declared t s = Hashtbl.mem t.s_children s

let allowed t ~parent child =
  match Hashtbl.find_opt t.s_children parent with
  | None -> false
  | Some kids -> Hashtbl.mem kids child

let child_syms t parent =
  match Hashtbl.find_opt t.s_children parent with
  | None -> []
  | Some kids -> Hashtbl.fold (fun s () acc -> s :: acc) kids []

(* ---------------- registry ---------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let registry_mu = Mutex.create ()

let register t =
  Mutex.lock registry_mu;
  Hashtbl.replace registry t.s_name t;
  Mutex.unlock registry_mu

let find name =
  Mutex.lock registry_mu;
  let r = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mu;
  r

let registered () =
  Mutex.lock registry_mu;
  let r = Hashtbl.fold (fun n _ acc -> n :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort compare r

(* ---------------- validation ---------------- *)

exception Nonconforming of string

(* Conformance walk of a fresh subtree; records subtree element counts
   into [sizes] and returns the root's. *)
let rec check_subtree t sizes (e : Node.element) =
  let sym = Node.sym e in
  let sz =
    List.fold_left
      (fun acc c ->
        if not (allowed t ~parent:sym (Node.sym c)) then
          raise
            (Nonconforming
               (Printf.sprintf "element %s not allowed under %s (schema %s)" (Node.name c)
                  (Node.name e) t.s_name));
        acc + check_subtree t sizes c)
      1 (Node.child_elements e)
  in
  Hashtbl.replace sizes (Node.id e) sz;
  sz

let validate t root =
  if Node.sym root <> t.s_root then
    Error
      (Printf.sprintf "document element %s is not the schema root %s (schema %s)"
         (Node.name root) (Sym.name t.s_root) t.s_name)
  else
    let sizes = Hashtbl.create 1024 in
    match check_subtree t sizes root with
    | _ -> Ok sizes
    | exception Nonconforming msg -> Error msg

(* Incremental re-validation across a commit: shared subtrees kept their
   ids and were conforming before, and conformance is local to a parent
   and its direct children, so only rebuilt spine nodes (their child
   edges may have changed) and freshly inserted material need checking.
   The size table is maintained by the same walk, exactly as
   {!Xut_automata.Annotator.repair} maintains the annotation table. *)
let validate_commit t ~spine ~old_sizes new_root =
  if not (Hashtbl.mem spine (Node.id new_root)) then
    (* degenerate diff: the document element itself was replaced *)
    validate t new_root
  else if Node.sym new_root <> t.s_root then
    Error
      (Printf.sprintf "document element %s is not the schema root %s (schema %s)"
         (Node.name new_root) (Sym.name t.s_root) t.s_name)
  else begin
    let sizes = Hashtbl.copy old_sizes in
    let scrub oe = Node.iter_elements (fun x -> Hashtbl.remove sizes (Node.id x)) oe in
    let shared_size c =
      match Hashtbl.find_opt sizes (Node.id c) with
      | Some sz -> sz
      | None -> check_subtree t sizes c (* should not happen; stay exact *)
    in
    (* [oe]/[e]: an old spine element and its fresh rebuild. *)
    let rec pair oe e =
      Hashtbl.remove sizes (Node.id oe);
      let sym = Node.sym e in
      let old_kids = Node.child_elements oe in
      let old_by_id = Hashtbl.create (max 4 (List.length old_kids)) in
      List.iter (fun oc -> Hashtbl.replace old_by_id (Node.id oc) oc) old_kids;
      let surviving = Hashtbl.create 8 in
      let sz =
        List.fold_left
          (fun acc c ->
            if not (allowed t ~parent:sym (Node.sym c)) then
              raise
                (Nonconforming
                   (Printf.sprintf "element %s not allowed under %s (schema %s)"
                      (Node.name c) (Node.name e) t.s_name));
            let csz =
              if Hashtbl.mem old_by_id (Node.id c) then begin
                Hashtbl.replace surviving (Node.id c) ();
                shared_size c
              end
              else
                match Hashtbl.find_opt spine (Node.id c) with
                | Some oc when Hashtbl.mem old_by_id (Node.id oc) ->
                  Hashtbl.replace surviving (Node.id oc) ();
                  pair oc c
                | _ -> check_subtree t sizes c
            in
            acc + csz)
          1 (Node.child_elements e)
      in
      List.iter
        (fun oc -> if not (Hashtbl.mem surviving (Node.id oc)) then scrub oc)
        old_kids;
      Hashtbl.replace sizes (Node.id e) sz;
      sz
    in
    match pair (Hashtbl.find spine (Node.id new_root)) new_root with
    | _ -> Ok sizes
    | exception Nonconforming msg -> Error msg
  end

(* ---------------- the product ---------------- *)

(* A configuration is everything {!Annotator.annotate_subtree}'s
   recursion depends on at a node: the symbol, the NFA state set before
   consuming it, and the LQ seeds the parent demands.  The exploration
   below walks the schema graph with exactly the annotator's transition
   (so a conforming document can only ever realize explored
   configurations), then closes "contributes" under reachability. *)

type cfg = Sym.t * int list * int list

type cnode = {
  n_accepting : bool;
  n_hot : bool;  (* accepts, or demands qualifier seeds (writes entries) *)
  n_kids : cfg list;
  mutable n_contrib : bool;
}

type product = {
  p_empty : bool;
  p_skip : bool array;  (* indexed by Sym.t; out of range = not skippable *)
  p_skips : int;
  p_configs : int;
  p_capped : bool;
}

let config_cap = 4096

let top_quals nfa states' =
  let qs = Selecting_nfa.set_inter states' (Selecting_nfa.qual_states nfa) in
  if Selecting_nfa.set_is_empty qs then []
  else Selecting_nfa.set_fold (fun s acc -> Selecting_nfa.state_lq nfa s :: acc) qs []

let no_pruning ~capped ~configs =
  {
    p_empty = false;
    p_skip = [||];
    p_skips = 0;
    p_configs = configs;
    p_capped = capped;
  }

let product t nfa =
  let lq = Selecting_nfa.lq nfa in
  let nodes : (cfg, cnode) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let enqueue key states = Queue.push (key, states) queue in
  let start = Selecting_nfa.start nfa in
  enqueue (t.s_root, Selecting_nfa.set_to_list start, []) start;
  let capped = ref false in
  while not (Queue.is_empty queue) && not !capped do
    let ((sym, _, seeds) as key), states = Queue.pop queue in
    if not (Hashtbl.mem nodes key) then begin
      if Hashtbl.length nodes >= config_cap then capped := true
      else begin
        let states' = Selecting_nfa.next_unchecked nfa states sym in
        let all_seeds = List.sort_uniq compare (seeds @ top_quals nfa states') in
        let dead = Selecting_nfa.set_is_empty states' && all_seeds = [] in
        let accepting = (not dead) && Selecting_nfa.accepts_set nfa states' in
        let hot = accepting || all_seeds <> [] in
        let kids =
          if dead then []
          else begin
            let candidates =
              if all_seeds = [] then []
              else snd (Annotator.expand lq ~name:(Sym.name sym) all_seeds)
            in
            let states'_l = Selecting_nfa.set_to_list states' in
            List.map
              (fun child ->
                let kid_seeds =
                  List.filter
                    (fun p -> not (Xut_xpath.Lq.label_blocked lq p (Sym.name child)))
                    candidates
                in
                let kkey = (child, states'_l, kid_seeds) in
                if not (Hashtbl.mem nodes kkey) then enqueue kkey states';
                kkey)
              (child_syms t sym)
          end
        in
        Hashtbl.replace nodes key
          { n_accepting = accepting; n_hot = hot; n_kids = kids; n_contrib = hot }
      end
    end
  done;
  if !capped then no_pruning ~capped:true ~configs:(Hashtbl.length nodes)
  else begin
    (* contributes = hot \/ some child configuration contributes: a least
       fixpoint (the schema graph may be cyclic — parlist/listitem). *)
    let changed = ref true in
    while !changed do
      changed := false;
      Hashtbl.iter
        (fun _ n ->
          if
            (not n.n_contrib)
            && List.exists
                 (fun k ->
                   match Hashtbl.find_opt nodes k with
                   | Some kn -> kn.n_contrib
                   | None -> false)
                 n.n_kids
          then begin
            n.n_contrib <- true;
            changed := true
          end)
        nodes
    done;
    let any_accepting = ref false in
    Hashtbl.iter (fun _ n -> if n.n_accepting then any_accepting := true) nodes;
    let skip = Array.make (Sym.count ()) false in
    let reached = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (sym, _, _) n ->
        let all_cold =
          (match Hashtbl.find_opt reached sym with Some b -> b | None -> true)
          && not n.n_contrib
        in
        Hashtbl.replace reached sym all_cold)
      nodes;
    let skips = ref 0 in
    Hashtbl.iter
      (fun sym all_cold ->
        if all_cold && sym >= 0 && sym < Array.length skip then begin
          skip.(sym) <- true;
          incr skips
        end)
      reached;
    {
      p_empty = (not (Selecting_nfa.selects_context nfa)) && not !any_accepting;
      p_skip = skip;
      p_skips = !skips;
      p_configs = Hashtbl.length nodes;
      p_capped = false;
    }
  end

let statically_empty p = p.p_empty

let skippable p sym = sym >= 0 && sym < Array.length p.p_skip && p.p_skip.(sym)

let skip_count p = p.p_skips
let config_count p = p.p_configs
let capped p = p.p_capped
