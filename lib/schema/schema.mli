open Xut_xml
open Xut_automata

(** Regular-tree-grammar schemas and their static product with a
    selecting NFA.

    A schema maps every element symbol to the regular language of its
    element-child sequence (a {!rx}).  For the static analysis the
    grammar is compiled to its {e reachability projection}: per parent
    symbol, the set of child symbols its language mentions — a
    symbol-reachability automaton over interned {!Xut_xml.Sym.t}.
    Document validation enforces the same projection (child-symbol
    membership; order and cardinality of the declared language are not
    checked), which is exactly the invariant the product below relies
    on, so a validated binding is sufficient for sound pruning.  Text,
    comment and PI children are always permitted: the grammar constrains
    element structure only.

    {!product} intersects a schema with a per-plan
    {!Xut_automata.Selecting_nfa}: a breadth-first exploration of
    configurations [(symbol, NFA state set, demanded LQ seeds)] that
    mirrors, step for step, the recursion of
    {!Xut_automata.Annotator.annotate} — [next_unchecked] over the
    symbol, qualifier seeds propagated through
    {!Xut_automata.Annotator.expand} with [label_blocked]
    short-circuiting — but walks the schema graph instead of a concrete
    tree.  Because a conforming document only realizes parent/child
    edges the schema has, every (state set, seed set) the runtime passes
    can reach at a node is a subset of some explored configuration for
    that node's symbol, and both the transition function and acceptance
    are monotone in set inclusion.  Hence:

    - if no explored configuration accepts (and the path does not select
      the context node), the query selects nothing in {e any} conforming
      document — the {e statically-empty} verdict;
    - if every explored configuration of a symbol neither accepts, nor
      demands qualifier seeds, nor has a descendant configuration that
      does, then subtrees rooted at that symbol can never contribute a
      match, a qualifier entry, or an output change — the symbol is in
      the {e skip-set}, and the engines may share such subtrees without
      descending.  Skipping changes neither the annotation table (no
      seeds anywhere below means the unpruned pass writes no entries
      there) nor the transform output (no acceptance below means the
      subtree is returned shared either way), which is what keeps
      incremental repair and the memoized tables exact. *)

type rx =
  | Empty          (** no element children (text-only or empty content) *)
  | Elem of string
  | Seq of rx list
  | Alt of rx list
  | Star of rx
  | Opt of rx
  | Plus of rx

type t

val define : name:string -> root:string -> (string * rx) list -> (t, string) result
(** [define ~name ~root decls] builds a schema.  Every symbol mentioned
    in a content expression must itself be declared (closed grammar),
    [root] included; duplicate declarations are rejected. *)

val name : t -> string
val root_sym : t -> Sym.t
val declared : t -> Sym.t -> bool
val allowed : t -> parent:Sym.t -> Sym.t -> bool
(** Is [parent -> child] an edge of the reachability projection? *)

(** {2 Registry}

    A process-wide name -> schema table, so the service layer can
    resolve the [LOAD name file SCHEMA s] binding by name.  Built-ins
    (the XMark [site] schema) are registered by the CLI/tests at
    startup. *)

val register : t -> unit
(** Idempotent per name; re-registering replaces. *)

val find : string -> t option
val registered : unit -> string list

(** {2 Validation} *)

val validate : t -> Node.element -> ((int, int) Hashtbl.t, string) result
(** Conformance of a whole tree: the root's symbol is the schema root
    and every element's children are {!allowed} under it.  On success,
    returns the subtree-size table (element id -> number of elements in
    that subtree, root included) computed by the same walk — the O(1)
    lookup behind the [skipped_nodes] metric. *)

val validate_commit :
  t ->
  spine:(int, Node.element) Hashtbl.t ->
  old_sizes:(int, int) Hashtbl.t ->
  Node.element ->
  ((int, int) Hashtbl.t, string) result
(** Incremental re-validation across a commit whose materialization
    produced [spine] (fresh spine id -> replaced old element, as in
    {!Xut_update.Apply}).  Shared subtrees kept their ids and were valid
    before, so only rebuilt spine nodes and freshly inserted material
    are checked; the returned size table is the old one updated along
    the same walk (departed ids dropped).  [Error _] means the
    post-commit tree no longer conforms (the caller drops the schema
    binding; the commit itself stands). *)

(** {2 The product} *)

type product

val product : t -> Selecting_nfa.t -> product
(** Explore the configuration graph (capped — see {!capped}). *)

val statically_empty : product -> bool
(** No reachable configuration accepts and the path does not select the
    context node: the query selects nothing in any conforming
    document. *)

val skippable : product -> Sym.t -> bool
(** [true] iff subtrees rooted at this symbol can be shared without
    descending (see above).  Always [false] for symbols outside the
    explored region and for any symbol when the exploration was
    {!capped}. *)

val skip_count : product -> int
(** Number of skippable symbols (0 when {!capped}). *)

val config_count : product -> int

val capped : product -> bool
(** The exploration hit the configuration cap and the product degraded
    to the sound no-pruning answer ([statically_empty = false], empty
    skip-set). *)
